// Command netstat analyzes a collocation network edge list (Section V.B
// of the paper): degree distribution with power-law / truncated /
// exponential fits, local clustering coefficient histogram, and
// component structure.
//
// Usage:
//
//	netstat -n 20000 network.tsv
//	netstat net.gsnap
//
// The input may be a TSV edge list or a binary .gsnap snapshot; the
// format is sniffed from the file's magic bytes. -n sets the
// vertex-space size (the population) for TSV input; without it the
// largest person ID in the file is used. Snapshots carry their own
// vertex space.
//
// The report subcommand renders the JSON run report written by chisim
// and netsynth with -report as per-stage / per-rank timing tables:
//
//	netstat report run.json
//
// The trace subcommand renders the same report's cross-rank span dump
// as one trace tree — the coordinator's root span with every rank's
// remote spans grafted under it:
//
//	netstat trace run.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gstore"
	"repro/internal/netstat"
	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "report" {
		runReport(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTrace(os.Args[2:])
		return
	}

	n := flag.Int("n", 0, "population size (0 = infer from max person ID)")
	workers := flag.Int("workers", 4, "clustering workers")
	bins := flag.Int("bins", 20, "clustering histogram bins")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: netstat [flags] network.tsv|net.gsnap | netstat report run.json"))
	}

	snap, err := gstore.LoadGraphFile(flag.Arg(0), *n)
	if err != nil {
		fatal(err)
	}
	defer snap.Close()
	g := snap.Graph()

	fmt.Printf("network: %d vertices (%d with edges), %d edges, total weight %d\n",
		g.NumVertices(), g.VerticesWithEdges(), g.NumEdges(), g.TotalWeight())
	if secs := snap.Index().Sections(); secs != nil {
		fmt.Printf("snapshot: v%d, index sections: %v\n", snap.Version(), secs)
	} else if snap.Version() > 0 {
		fmt.Printf("snapshot: v%d, no index sections (reindex with: netserve -reindex %s)\n",
			snap.Version(), flag.Arg(0))
	}
	labels, comps := g.ConnectedComponents()
	_ = labels
	fmt.Printf("components: %d, giant component %d vertices\n", comps, g.GiantComponentSize())
	fmt.Printf("max degree: %d\n", g.MaxDegree())

	hist := g.DegreeHistogram()
	pts := netstat.DistributionDense(hist, g.NumVertices())
	fmt.Printf("\ndegree distribution (%d distinct degrees):\n", len(pts))
	show := pts
	if len(show) > 12 {
		show = show[:12]
	}
	for _, p := range show {
		fmt.Printf("  k=%-6d count=%-8d frac=%.6f\n", p.K, p.Count, p.Frac)
	}
	if len(pts) > 12 {
		fmt.Printf("  ... (%d more)\n", len(pts)-12)
	}

	if fit, err := netstat.FitPowerLaw(pts); err == nil {
		fmt.Printf("\npower law:   %s\n", fit)
	}
	if fit, err := netstat.FitTruncatedPowerLaw(pts); err == nil {
		fmt.Printf("truncated:   %s\n", fit)
	}
	if fit, err := netstat.FitExponential(pts); err == nil {
		fmt.Printf("exponential: %s\n", fit)
	}
	if alpha, err := netstat.AlphaMLEDense(hist, 5); err == nil {
		fmt.Printf("MLE alpha (k≥5): %.3f\n", alpha)
	}

	clust := g.ClusteringAll(*workers)
	var vals []float64
	atOne := 0
	mean := 0.0
	for v, c := range clust {
		if g.Degree(uint32(v)) >= 2 {
			vals = append(vals, c)
			mean += c
			if c >= 0.999999 {
				atOne++
			}
		}
	}
	if len(vals) > 0 {
		mean /= float64(len(vals))
	}
	fmt.Printf("\nlocal clustering (degree ≥ 2): mean %.3f, %d persons at c=1 (%.1f%%)\n",
		mean, atOne, 100*float64(atOne)/float64(max(len(vals), 1)))
	centers, counts := netstat.Histogram(vals, 0, 1, *bins)
	for i := range centers {
		fmt.Printf("  c≈%.3f %7d %s\n", centers[i], counts[i], bar(counts[i], counts))
	}
}

// runReport implements `netstat report run.json`: it reads the JSON run
// report produced by chisim/netsynth -report and renders the per-stage
// and per-rank timing tables plus the metric snapshot.
func runReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: netstat report run.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: netstat report run.json"))
	}
	rep, err := telemetry.ReadReportFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if err := rep.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// runTrace implements `netstat trace run.json`: it reads a run report
// carrying per-rank span dumps (written by a traced distributed
// netsynth run, directly or via netlaunch) and renders the distributed
// trace tree with per-rank annotations.
func runTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: netstat trace run.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: netstat trace run.json"))
	}
	rep, err := telemetry.ReadReportFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	if err := rep.RenderTrace(os.Stdout); err != nil {
		fatal(err)
	}
}

func bar(v int, all []int) string {
	maxC := 1
	for _, c := range all {
		if c > maxC {
			maxC = c
		}
	}
	n := v * 50 / maxC
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netstat:", err)
	os.Exit(1)
}
