// Command netsynth builds a person collocation network from chiSIM event
// logs (Section IV of the paper): per-place sparse collocation matrices,
// nnz load balancing across workers, parallel x·xᵀ, and reduction to a
// single sparse triangular adjacency matrix, which it writes as an edge
// list.
//
// Usage:
//
//	netsynth -t0 504 -t1 672 -o network.tsv logs/rank*.h5l
//
// Distributed usage (the paper runs the synthesis as batches of log
// files across cluster jobs): give every process the identical file
// list; files are striped across processes, partial networks are merged
// on rank 0, which writes the output.
//
//	netsynth -dist-host :7947 -dist-size 4 -o network.tsv logs/*.h5l  # rank 0
//	netsynth -dist-join host:7947 logs/*.h5l                          # ranks 1..3
//
// Under a supervisor (cmd/netlaunch), workers pin their rank with
// -dist-rank/-dist-token so a restarted process reclaims its dead slot
// mid-synthesis, and discover the coordinator with -dist-join @file
// (the address file rank 0 publishes with -dist-addr-file). Exit codes
// tell the supervisor what happened: 0 success, 2 cooperative drain
// after SIGINT/SIGTERM, 1 real failure.
//
// The output is a three-column TSV (person_i, person_j, hours) holding
// the strict upper triangle of the adjacency matrix.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/mpinet"
	"repro/internal/sparse"
	"repro/internal/supervise"
	"repro/internal/telemetry"

	// Link the full pipeline so every stage's telemetry series is
	// registered before the first /metrics scrape, even for stages this
	// binary does not exercise on a given run.
	_ "repro"
	_ "repro/internal/batch"
)

// parseBytes parses a byte size with an optional K/M/G suffix (powers
// of 1024), e.g. "64M" or "2G" or a plain byte count.
func parseBytes(s string) (int64, error) {
	if s == "" || s == "0" {
		return 0, nil
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid byte size %q", s)
	}
	return n * mult, nil
}

func main() {
	t0 := flag.Uint("t0", 0, "slice start hour (inclusive)")
	t1 := flag.Uint("t1", 168, "slice end hour (exclusive)")
	out := flag.String("o", "network.tsv", "output edge-list path")
	snapshot := flag.String("snapshot", "", "also write a binary .gsnap snapshot here (servable by netserve)")
	workers := flag.Int("workers", 0, "synthesis workers (0 = all CPUs)")
	balance := flag.String("balance", "nnz", "load balancing: nnz (paper) or none (naive)")
	memBudget := flag.String("mem-budget", "", "cap on materialized log-entry bytes, e.g. 64M or 2G (empty = unlimited); larger slices spill to place-sharded temp files")
	distHost := flag.String("dist-host", "", "host the TCP coordinator on this address (this process becomes rank 0)")
	distJoin := flag.String("dist-join", "", "join a TCP coordinator at this address or @file (rank assigned by coordinator unless -dist-rank is set)")
	distSize := flag.Int("dist-size", 0, "total process count when hosting")
	distRank := flag.Int("dist-rank", 0, "claim this specific rank when joining (0 = let the coordinator assign)")
	distToken := flag.Uint64("dist-token", 0, "rank claim token; a restarted process presenting the same token reclaims its slot")
	distAddrFile := flag.String("dist-addr-file", "", "rank 0: publish the coordinator's bound address to this file (for -dist-join @file)")
	distRoundTimeout := flag.Duration("dist-round-timeout", 0, "rank 0: declare the slowest rank failed when a collective stalls this long (0 = off)")
	follow := flag.Bool("follow", false, "tail the logs of a running simulation and publish one snapshot generation per window (requires -snapshot; -t1 0 means open-ended)")
	windowHours := flag.Uint("window", 24, "streaming window width in simulated hours (with -follow)")
	horizonHours := flag.Uint("horizon", core.DefaultStreamHorizon, "activity-span horizon in hours: a window closes once every log reaches window-end+horizon (with -follow)")
	decay := flag.Float64("decay", 1.0, "per-window decay of accumulated collocation weight in [0,1]: 1 = cumulative, 0 = independent windows (with -follow)")
	pollInterval := flag.Duration("poll", eventlog.DefaultTailPoll, "log tail poll interval (with -follow)")
	history := flag.Int("history", 0, "retain the last N published generations beside -snapshot as hard links (with -follow)")
	benchOut := flag.String("bench-out", "", "write streaming bench stats as JSON to this path (with -follow)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the synthesis to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile after the synthesis to this file")
	showStats := flag.Bool("stats", false, "print the per-stage statistics table after the run")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics (Prometheus), /snapshot, /debug/vars and /debug/pprof on this address and enable telemetry")
	telemetryAddrFile := flag.String("telemetry-addr-file", "", "publish the telemetry server's bound address to this file (for a supervisor's scraper)")
	reportPath := flag.String("report", "", "write a JSON run report to this path (render it with `netstat report` or `netstat trace`)")
	flag.Parse()

	telemetry.InstallFlightRecorder("netsynth", os.Stderr)
	if *telemetryAddr != "" {
		srv, err := telemetry.Default.Serve(*telemetryAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics\n", srv.Addr())
		if *telemetryAddrFile != "" {
			if err := supervise.WriteAddrFile(*telemetryAddrFile, srv.Addr()); err != nil {
				fatal(err)
			}
		}
	}
	if *reportPath != "" {
		telemetry.SetEnabled(true)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // up-to-date allocation data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}()

	paths := flag.Args()
	if len(paths) == 0 {
		fatal(fmt.Errorf("no log files given; usage: netsynth [flags] logs/rank*.h5l"))
	}
	mode := core.BalanceNNZ
	if *balance == "none" {
		mode = core.BalanceNone
	}
	budget, err := parseBytes(*memBudget)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{Workers: *workers, Balance: mode, MemBudgetBytes: budget}

	// SIGINT/SIGTERM cancel the synthesis: it aborts within one work
	// unit (or spill batch) and returns an error wrapping
	// context.Canceled. A second signal kills the process outright
	// (signal.NotifyContext restores default handling once canceled).
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSignals()

	if *follow {
		runFollow(ctx, paths, uint32(*t0), uint32(*t1), cfg, followOptions{
			Window: uint32(*windowHours), Horizon: uint32(*horizonHours),
			Decay: *decay, Poll: *pollInterval, History: *history,
			Snapshot: *snapshot, Out: *out, BenchOut: *benchOut,
		})
		return
	}

	if *distHost != "" || *distJoin != "" {
		runDistributed(ctx, paths, uint32(*t0), uint32(*t1), cfg, distOptions{
			Host: *distHost, Join: *distJoin, Size: *distSize,
			Rank: *distRank, Token: *distToken,
			AddrFile: *distAddrFile, RoundTimeout: *distRoundTimeout,
		}, *out, *snapshot, *reportPath)
		return
	}

	start := time.Now()
	tri, stats, err := core.SynthesizeFiles(ctx, paths, uint32(*t0), uint32(*t1), cfg)
	if err != nil {
		exitCanceled(err)
		fatal(err)
	}
	elapsed := time.Since(start)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := graph.WriteEdgeList(f, tri); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	writeSnapshot(*snapshot, tri)

	fmt.Printf("slice [%d,%d): %d entries at %d places, %d collocation nnz\n",
		*t0, *t1, stats.Entries, stats.Places, stats.TotalNNZ)
	fmt.Printf("network: %d vertices, %d edges, total weight %d\n",
		tri.Vertices(), tri.NNZ(), tri.TotalWeight())
	fmt.Printf("stage walls: load %s, build %s, gram %s, reduce %s (total %s)\n",
		stats.Load.Round(time.Millisecond), stats.Build.Round(time.Millisecond),
		stats.Gram.Round(time.Millisecond), stats.Reduce.Round(time.Millisecond),
		elapsed.Round(time.Millisecond))
	fmt.Printf("worker cost imbalance %.2f, idle fraction %.3f → %s\n",
		stats.CostImbalance(), stats.IdleFraction(), *out)
	if stats.Shards > 0 {
		fmt.Printf("mem budget %s: spilled %d bytes across %d place shards (spill wall %s)\n",
			*memBudget, stats.SpilledBytes, stats.Shards, stats.Spill.Round(time.Millisecond))
	}
	if *showStats {
		printStats(stats)
	}
	if *reportPath != "" {
		rep := telemetry.Default.Report("netsynth")
		rep.Stages = stats.StageReports()
		local := stats.RankReport(0, elapsed, 0)
		local.FaultsInjected = telemetry.C("fault_injected_total").Value()
		local.FaultsRecovered = telemetry.C("fault_recovered_total").Value()
		rep.Ranks = []telemetry.RankReport{local}
		if err := rep.WriteFile(*reportPath); err != nil {
			fatal(err)
		}
		fmt.Printf("run report → %s\n", *reportPath)
	}
}

// printStats renders the per-stage statistics table behind the -stats
// flag: stage walls, the work-unit partition (including how many places
// the balancer split into tiles), and the per-worker cost/busy columns.
func printStats(s *core.Stats) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "stage\twall\t\n")
	fmt.Fprintf(w, "load\t%s\t\n", s.Load.Round(time.Microsecond))
	fmt.Fprintf(w, "build\t%s\t\n", s.Build.Round(time.Microsecond))
	fmt.Fprintf(w, "gram\t%s\t\n", s.Gram.Round(time.Microsecond))
	fmt.Fprintf(w, "reduce\t%s\t\n", s.Reduce.Round(time.Microsecond))
	fmt.Fprintf(w, "\t\t\n")
	fmt.Fprintf(w, "slice hours\t%d\t\n", s.SliceHours)
	fmt.Fprintf(w, "log entries\t%d\t\n", s.Entries)
	fmt.Fprintf(w, "places\t%d\t\n", s.Places)
	fmt.Fprintf(w, "matrix nnz\t%d\t\n", s.TotalNNZ)
	fmt.Fprintf(w, "work units\t%d\t\n", s.WorkUnits)
	fmt.Fprintf(w, "split places\t%d\t\n", s.Splits)
	fmt.Fprintf(w, "cost imbalance\t%.3f\t\n", s.CostImbalance())
	fmt.Fprintf(w, "idle fraction\t%.3f\t\n", s.IdleFraction())
	fmt.Fprintf(w, "model speedup\t%.3f\t\n", s.ModelSpeedup())
	fmt.Fprintf(w, "\t\t\n")
	fmt.Fprintf(w, "worker\tcost\tbusy\n")
	for i := range s.WorkerCost {
		fmt.Fprintf(w, "%d\t%d\t%s\n", i, s.WorkerCost[i], s.WorkerBusy[i].Round(time.Microsecond))
	}
	w.Flush()
}

// distOptions bundles the supervisor-facing distributed flags so
// runDistributed's signature stays readable.
type distOptions struct {
	Host         string
	Join         string
	Size         int
	Rank         int
	Token        uint64
	AddrFile     string
	RoundTimeout time.Duration
}

// runDistributed stripes the log files across the processes of a TCP
// cluster; rank 0 merges the partial networks and writes the edge list.
func runDistributed(ctx context.Context, paths []string, t0, t1 uint32, cfg core.Config, dist distOptions, out, snapshot, reportPath string) {
	var node *mpinet.Node
	var err error
	if dist.Host != "" {
		if dist.Size < 1 {
			fatal(fmt.Errorf("-dist-host requires -dist-size"))
		}
		node, err = mpinet.Host(dist.Host, dist.Size, mpinet.Options{RoundTimeout: dist.RoundTimeout})
		if err == nil {
			fmt.Printf("rank 0 hosting on %s, waiting for %d peers\n", node.Addr(), dist.Size-1)
			if dist.AddrFile != "" {
				if werr := supervise.WriteAddrFile(dist.AddrFile, node.Addr()); werr != nil {
					node.Close()
					fatal(werr)
				}
			}
		}
	} else {
		addr, rerr := supervise.ResolveAddr(dist.Join, 30*time.Second)
		if rerr != nil {
			fatal(rerr)
		}
		node, err = mpinet.Join(addr, mpinet.Options{
			ClaimRank:  dist.Rank,
			ClaimToken: dist.Token,
		})
		if err == nil {
			fmt.Printf("joined as rank %d of %d\n", node.Rank(), node.Size())
		}
	}
	if err != nil {
		fatal(err)
	}
	defer node.Close()

	start := time.Now()
	tri, rep, err := core.SynthesizeDistributedReport(ctx, node, paths, t0, t1, cfg)
	if err != nil {
		exitCanceled(err)
		fatal(err)
	}
	fmt.Printf("rank %d done in %s\n", node.Rank(), time.Since(start).Round(time.Millisecond))
	if node.Rank() != 0 {
		return
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	if err := graph.WriteEdgeList(f, tri); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("network: %d vertices, %d edges, total weight %d → %s\n",
		tri.Vertices(), tri.NNZ(), tri.TotalWeight(), out)
	writeSnapshot(snapshot, tri)
	if reportPath != "" {
		if rep == nil {
			fmt.Fprintln(os.Stderr, "netsynth: rank report gather failed; no run report written")
			return
		}
		rep.Command = "netsynth"
		if err := rep.WriteFile(reportPath); err != nil {
			fatal(err)
		}
		fmt.Printf("run report → %s\n", reportPath)
	}
}

// followOptions bundles the streaming-mode flags so runFollow's
// signature stays readable.
type followOptions struct {
	Window   uint32
	Horizon  uint32
	Decay    float64
	Poll     time.Duration
	History  int
	Snapshot string
	Out      string
	BenchOut string
}

// decayRational converts the -decay fraction into the accumulator's
// fixed-point rational with a 2^16 denominator. 1.0 maps to the exact
// cumulative fold (num == den), 0.0 to independent windows.
func decayRational(d float64) (num, den uint64, err error) {
	if math.IsNaN(d) || d < 0 || d > 1 {
		return 0, 0, fmt.Errorf("-decay must be in [0,1], got %v", d)
	}
	den = 1 << 16
	return uint64(math.Round(d * float64(den))), den, nil
}

// runFollow is the streaming mode: it tails the (possibly still being
// written, possibly not yet existing) log files of a running
// simulation, synthesizes one network window at a time, and publishes
// every window's rolling network as a fresh snapshot generation via
// atomic rename — the contract netserve's watcher hot-swaps on with
// zero downtime. The stream ends when the logs are closed with valid
// footers and the slice is exhausted (or, with -t1 0, when the closed
// logs run out of activity).
func runFollow(ctx context.Context, paths []string, t0, t1 uint32, cfg core.Config, opt followOptions) {
	if opt.Snapshot == "" {
		fatal(fmt.Errorf("-follow requires -snapshot (the live path generations are published to)"))
	}
	num, den, err := decayRational(opt.Decay)
	if err != nil {
		fatal(err)
	}
	if t1 == 0 {
		t1 = core.StreamOpenEnd
	}

	pub := gstore.NewPublisher(opt.Snapshot, gstore.PublisherOptions{History: opt.History})
	srcs := eventlog.OpenTails(ctx, paths, t0, t1, eventlog.TailOptions{Poll: opt.Poll})

	var publishLat []time.Duration
	var lastNet *sparse.Tri
	start := time.Now()
	st, err := core.Stream(ctx, srcs, core.StreamConfig{
		T0: t0, T1: t1,
		WindowHours: opt.Window, HorizonHours: opt.Horizon,
		DecayNum: num, DecayDen: den,
		Synth: cfg,
		OnWindow: func(w core.WindowResult) error {
			info, perr := pub.PublishWithMeta(graph.FromTri(w.Net, 0), gstore.PublishMeta{
				WindowClosedAt: w.ClosedAt,
				LastEventHour:  w.W1,
			})
			if perr != nil {
				return perr
			}
			publishLat = append(publishLat, info.Elapsed)
			lastNet = w.Net
			fmt.Printf("published generation %d: window [%d,%d) — %d entries, net %d vertices %d edges, %d bytes in %s\n",
				info.Generation, w.W0, w.W1, w.Stats.Entries,
				w.Net.Vertices(), w.Net.NNZ(), info.Bytes, info.Elapsed.Round(time.Millisecond))
			return nil
		},
	})
	if err != nil {
		exitCanceled(err)
		fatal(err)
	}
	elapsed := time.Since(start)

	if lastNet != nil {
		f, err := os.Create(opt.Out)
		if err != nil {
			fatal(err)
		}
		if err := graph.WriteEdgeList(f, lastNet); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("final network: %d vertices, %d edges, total weight %d → %s\n",
			lastNet.Vertices(), lastNet.NNZ(), lastNet.TotalWeight(), opt.Out)
	}
	fmt.Printf("stream done: %d windows, %d entries (%d late), peak buffered %d, max stop hour %d in %s\n",
		st.Windows, st.Entries, st.LateEntries, st.PeakBuffered, st.MaxStop,
		elapsed.Round(time.Millisecond))
	if opt.BenchOut != "" {
		writeStreamBench(opt.BenchOut, st, publishLat, elapsed, map[string]string{
			"window":  strconv.FormatUint(uint64(opt.Window), 10),
			"horizon": strconv.FormatUint(uint64(opt.Horizon), 10),
			"decay":   strconv.FormatFloat(opt.Decay, 'g', -1, 64),
			"t0":      strconv.FormatUint(uint64(t0), 10),
			"t1":      strconv.FormatUint(uint64(t1), 10),
		})
	}
}

// streamBench is the JSON shape of -bench-out: streaming throughput,
// exact publish-latency quantiles over this run's publishes, and the
// process's peak RSS (the accumulator dominates it in follow mode).
type streamBench struct {
	// Meta is the shared BENCH_*.json provenance stamp.
	Meta telemetry.BenchMeta `json:"meta"`

	Windows        int     `json:"windows"`
	Entries        uint64  `json:"entries"`
	LateEntries    uint64  `json:"late_entries"`
	PeakBuffered   int     `json:"peak_buffered_entries"`
	WallSeconds    float64 `json:"wall_seconds"`
	WindowsPerHour float64 `json:"windows_per_hour"`
	PublishP50Ms   float64 `json:"publish_p50_ms"`
	PublishP99Ms   float64 `json:"publish_p99_ms"`
	PeakRSSBytes   int64   `json:"peak_rss_bytes"`
}

// quantileDur returns the exact q-quantile of a sorted sample.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func writeStreamBench(path string, st *core.StreamStats, lat []time.Duration, elapsed time.Duration, config map[string]string) {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b := streamBench{
		Meta:         telemetry.NewBenchMeta("netsynth -follow", config),
		Windows:      st.Windows,
		Entries:      st.Entries,
		LateEntries:  st.LateEntries,
		PeakBuffered: st.PeakBuffered,
		WallSeconds:  elapsed.Seconds(),
		PublishP50Ms: float64(quantileDur(lat, 0.50)) / float64(time.Millisecond),
		PublishP99Ms: float64(quantileDur(lat, 0.99)) / float64(time.Millisecond),
	}
	if elapsed > 0 {
		b.WindowsPerHour = float64(st.Windows) / elapsed.Hours()
	}
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil {
		b.PeakRSSBytes = ru.Maxrss * 1024 // linux reports KiB
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("stream bench → %s\n", path)
}

// writeSnapshot additionally persists the synthesized network as a
// binary .gsnap snapshot when -snapshot is given — the format netserve
// loads without re-parsing TSV. Snapshots are written as v2 with the
// precomputed index sections baked in, so the daemon's hot endpoints
// serve them as O(1) mmap reads with no warmup pass.
func writeSnapshot(path string, tri *sparse.Tri) {
	if path == "" {
		return
	}
	g := graph.FromTri(tri, 0)
	if err := gstore.WriteFileIndexed(path, g, gstore.IndexOptions{}); err != nil {
		fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("snapshot: %d bytes (v%d, indexed) → %s\n", fi.Size(), gstore.Version, path)
}

// exitCanceled recognizes the cooperative-cancellation error and exits
// with the dedicated drain code so a supervisor (cmd/netlaunch) can
// tell a deliberate interruption from a real failure.
func exitCanceled(err error) {
	if !errors.Is(err, context.Canceled) {
		return
	}
	fmt.Fprintf(os.Stderr, "netsynth: interrupted: %v\n", err)
	os.Exit(supervise.ExitCanceled)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netsynth:", err)
	os.Exit(1)
}
