// Command netsynth builds a person collocation network from chiSIM event
// logs (Section IV of the paper): per-place sparse collocation matrices,
// nnz load balancing across workers, parallel x·xᵀ, and reduction to a
// single sparse triangular adjacency matrix, which it writes as an edge
// list.
//
// Usage:
//
//	netsynth -t0 504 -t1 672 -o network.tsv logs/rank*.h5l
//
// Distributed usage (the paper runs the synthesis as batches of log
// files across cluster jobs): give every process the identical file
// list; files are striped across processes, partial networks are merged
// on rank 0, which writes the output.
//
//	netsynth -dist-host :7947 -dist-size 4 -o network.tsv logs/*.h5l  # rank 0
//	netsynth -dist-join host:7947 logs/*.h5l                          # ranks 1..3
//
// The output is a three-column TSV (person_i, person_j, hours) holding
// the strict upper triangle of the adjacency matrix.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mpinet"
)

func main() {
	t0 := flag.Uint("t0", 0, "slice start hour (inclusive)")
	t1 := flag.Uint("t1", 168, "slice end hour (exclusive)")
	out := flag.String("o", "network.tsv", "output edge-list path")
	workers := flag.Int("workers", 0, "synthesis workers (0 = all CPUs)")
	balance := flag.String("balance", "nnz", "load balancing: nnz (paper) or none (naive)")
	distHost := flag.String("dist-host", "", "host the TCP coordinator on this address (this process becomes rank 0)")
	distJoin := flag.String("dist-join", "", "join a TCP coordinator at this address")
	distSize := flag.Int("dist-size", 0, "total process count when hosting")
	flag.Parse()

	paths := flag.Args()
	if len(paths) == 0 {
		fatal(fmt.Errorf("no log files given; usage: netsynth [flags] logs/rank*.h5l"))
	}
	mode := core.BalanceNNZ
	if *balance == "none" {
		mode = core.BalanceNone
	}

	if *distHost != "" || *distJoin != "" {
		runDistributed(paths, uint32(*t0), uint32(*t1), core.Config{Workers: *workers, Balance: mode},
			*distHost, *distJoin, *distSize, *out)
		return
	}

	start := time.Now()
	tri, stats, err := core.SynthesizeFiles(paths, uint32(*t0), uint32(*t1), core.Config{
		Workers: *workers,
		Balance: mode,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := graph.WriteEdgeList(f, tri); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	fmt.Printf("slice [%d,%d): %d entries at %d places, %d collocation nnz\n",
		*t0, *t1, stats.Entries, stats.Places, stats.TotalNNZ)
	fmt.Printf("network: %d vertices, %d edges, total weight %d\n",
		tri.Vertices(), tri.NNZ(), tri.TotalWeight())
	fmt.Printf("stage walls: load %s, build %s, gram %s, reduce %s (total %s)\n",
		stats.Load.Round(time.Millisecond), stats.Build.Round(time.Millisecond),
		stats.Gram.Round(time.Millisecond), stats.Reduce.Round(time.Millisecond),
		elapsed.Round(time.Millisecond))
	fmt.Printf("worker cost imbalance %.2f, idle fraction %.3f → %s\n",
		stats.CostImbalance(), stats.IdleFraction(), *out)
}

// runDistributed stripes the log files across the processes of a TCP
// cluster; rank 0 merges the partial networks and writes the edge list.
func runDistributed(paths []string, t0, t1 uint32, cfg core.Config, hostAddr, joinAddr string, size int, out string) {
	var node *mpinet.Node
	var err error
	if hostAddr != "" {
		if size < 1 {
			fatal(fmt.Errorf("-dist-host requires -dist-size"))
		}
		node, err = mpinet.Host(hostAddr, size)
		if err == nil {
			fmt.Printf("rank 0 hosting on %s, waiting for %d peers\n", node.Addr(), size-1)
		}
	} else {
		node, err = mpinet.Join(joinAddr)
		if err == nil {
			fmt.Printf("joined as rank %d of %d\n", node.Rank(), node.Size())
		}
	}
	if err != nil {
		fatal(err)
	}
	defer node.Close()

	start := time.Now()
	tri, err := core.SynthesizeDistributed(node, paths, t0, t1, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rank %d done in %s\n", node.Rank(), time.Since(start).Round(time.Millisecond))
	if node.Rank() != 0 {
		return
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	if err := graph.WriteEdgeList(f, tri); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("network: %d vertices, %d edges, total weight %d → %s\n",
		tri.Vertices(), tri.NNZ(), tri.TotalWeight(), out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netsynth:", err)
	os.Exit(1)
}
