// Command netscenario runs scenario sweeps offline — the same
// internal/scenario engine netserve exposes over POST /v1/scenario, but
// driven from the command line against a snapshot file. Because both
// paths execute the identical deterministic runner, a sweep's outcome
// digest must agree between HTTP and CLI execution at any -slots value;
// check.sh asserts exactly that.
//
// Usage:
//
//	netscenario -snapshot net.gsnap -spec sweep.json -slots 8 -out result.json
//	netscenario -snapshot net.gsnap -spec - < sweep.json
//	netscenario -bench -bench-out BENCH_scenario.json
//
// The last line on stdout is always "digest <hex>" — the sha256 of the
// aggregated outcome, the handle scripts use to compare runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"repro/internal/gennet"
	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netscenario:", err)
	os.Exit(1)
}

func main() {
	snapshot := flag.String("snapshot", "", "snapshot (.gsnap) or TSV edge list to run against")
	specPath := flag.String("spec", "", "scenario spec JSON file ('-' = stdin)")
	slots := flag.Int("slots", runtime.NumCPU(), "concurrent replications")
	out := flag.String("out", "", "write the full result JSON here (default stdout summary only)")

	bench := flag.Bool("bench", false, "run the sweep benchmark suite and exit")
	benchOut := flag.String("bench-out", "BENCH_scenario.json", "bench: write the JSON report here")
	benchVertices := flag.Int("bench-vertices", 100_000, "bench: synthetic graph size when no -snapshot is given")
	benchSeed := flag.Int64("bench-seed", 1, "bench: graph + sweep seed")
	flag.Parse()

	// SIGINT/SIGTERM cancel a running sweep cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *bench {
		runBench(ctx, *snapshot, *benchOut, *benchVertices, *benchSeed, *slots)
		return
	}
	if *snapshot == "" || *specPath == "" {
		fatal(fmt.Errorf("usage: netscenario -snapshot net.gsnap -spec sweep.json (or -bench)"))
	}

	var raw []byte
	var err error
	if *specPath == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(*specPath)
	}
	if err != nil {
		fatal(err)
	}
	var spec scenario.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		fatal(fmt.Errorf("parsing spec: %w", err))
	}

	snap, err := gstore.LoadGraphFile(*snapshot, 0)
	if err != nil {
		fatal(err)
	}
	defer snap.Close()
	g := snap.Graph()

	res, err := scenario.Run(ctx, g, spec, scenario.Config{Slots: *slots})
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		b, merr := json.MarshalIndent(res, "", "  ")
		if merr != nil {
			fatal(merr)
		}
		if werr := os.WriteFile(*out, append(b, '\n'), 0o644); werr != nil {
			fatal(werr)
		}
	}
	fmt.Printf("%s sweep: %d jobs, %d steps in %.3fs (%.0f steps/s) over %d vertices\n",
		res.Outcome.Process, res.Jobs, res.StepsRun, res.WallSeconds, res.StepsPerSec,
		res.Outcome.Vertices)
	fmt.Printf("digest %s\n", res.Digest)
}

// benchProcess is the per-process section of BENCH_scenario.json.
type benchProcess struct {
	Process     string  `json:"process"`
	Jobs        int     `json:"jobs"`
	StepsRun    int64   `json:"steps_run"`
	WallSeconds float64 `json:"wall_seconds"`
	StepsPerSec float64 `json:"steps_per_sec"`
	Digest      string  `json:"digest"`
}

// benchReport is the BENCH_scenario.json schema.
type benchReport struct {
	Meta             telemetry.BenchMeta `json:"meta"`
	Vertices         int                 `json:"vertices"`
	Edges            int                 `json:"edges"`
	Jobs             int                 `json:"jobs"`
	StepsRun         int64               `json:"steps_run"`
	SweepWallSeconds float64             `json:"sweep_wall_seconds"`
	StepsPerSec      float64             `json:"scenario_steps_per_sec"`
	PerProcess       []benchProcess      `json:"per_process"`
}

// runBench sweeps all three processes over a snapshot (or a synthetic
// scale-free network) and writes the throughput report.
func runBench(ctx context.Context, snapshot, out string, vertices int, seed int64, slots int) {
	var g *graph.Graph
	if snapshot != "" {
		snap, err := gstore.LoadGraphFile(snapshot, 0)
		if err != nil {
			fatal(err)
		}
		defer snap.Close()
		g = snap.Graph()
	} else {
		// Same synthetic stand-in network the netserve selfbench uses:
		// Barabási–Albert topology, weights 1..500.
		tri, err := gennet.BarabasiAlbert(vertices, 4, rng.New(uint64(seed)))
		if err != nil {
			fatal(err)
		}
		src := rng.New(uint64(seed) + 1)
		for k := range tri.W {
			tri.W[k] = uint32(src.Intn(500) + 1)
		}
		g = graph.FromTri(tri, vertices)
	}
	fmt.Printf("bench graph: %d vertices, %d edges, %d slots\n", g.NumVertices(), g.NumEdges(), slots)

	seeds := scenario.Seeds{Policy: scenario.SeedTopDegree, Count: 5}
	specs := []scenario.Spec{
		{Process: scenario.ProcessSIR, Steps: 100, Seed: uint64(seed), Replications: 8,
			Beta: []float64{0.002, 0.005, 0.01}, InfectiousDays: []int{3, 6}, Seeds: seeds},
		{Process: scenario.ProcessSEIR, Steps: 100, Seed: uint64(seed), Replications: 8,
			Beta: []float64{0.005, 0.01}, InfectiousDays: []int{4}, IncubationDays: []int{0, 3}, Seeds: seeds},
		{Process: scenario.ProcessDiffusion, Steps: 40, Seed: uint64(seed), Replications: 8,
			Beta: []float64{0.001, 0.003}, Seeds: seeds},
	}

	report := benchReport{
		Meta: telemetry.NewBenchMeta("netscenario", map[string]string{
			"bench-vertices": strconv.Itoa(vertices),
			"bench-seed":     strconv.FormatInt(seed, 10),
			"slots":          strconv.Itoa(slots),
			"snapshot":       snapshot,
		}),
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
	}
	t0 := time.Now()
	for _, spec := range specs {
		res, err := scenario.Run(ctx, g, spec, scenario.Config{Slots: slots})
		if err != nil {
			fatal(err)
		}
		report.PerProcess = append(report.PerProcess, benchProcess{
			Process:     spec.Process,
			Jobs:        res.Jobs,
			StepsRun:    res.StepsRun,
			WallSeconds: res.WallSeconds,
			StepsPerSec: res.StepsPerSec,
			Digest:      res.Digest,
		})
		report.Jobs += res.Jobs
		report.StepsRun += res.StepsRun
		fmt.Printf("  %-9s %3d jobs  %8d steps  %7.3fs  %10.0f steps/s\n",
			spec.Process, res.Jobs, res.StepsRun, res.WallSeconds, res.StepsPerSec)
	}
	report.SweepWallSeconds = time.Since(t0).Seconds()
	if report.SweepWallSeconds > 0 {
		report.StepsPerSec = float64(report.StepsRun) / report.SweepWallSeconds
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d jobs, %.0f steps/s overall)\n", out, report.Jobs, report.StepsPerSec)
}
