// Command netlaunch runs the distributed pipeline as a supervised tree
// of OS processes: it spawns one chisim process per rank for the
// simulation phase and one netsynth process per rank for the synthesis
// phase, watches their exits, and applies the restart policy from
// internal/supervise — bounded exponential backoff with jitter,
// per-rank restart budgets, storm detection, and graceful degradation.
//
//	netlaunch -ranks 4 -persons 20000 -days 7 -workdir out
//
// The recovery strategy differs per phase. A simulation rank dying
// (even kill -9) aborts the gang promptly via mpinet's failure
// detector; netlaunch relaunches every rank with -resume, and
// abm.ResumeRank replays the logs to a state bit-identical to an
// uninterrupted run. A synthesis rank dying is restarted alone: its
// claim token lets it reclaim its slot in the running cluster, and if
// its restart budget runs out the survivors simply re-stripe its files
// (graceful degradation) — the output network is bit-identical either
// way.
//
// Chaos testing is built in: -kill-rank/-kill-after/-kill-phase aim a
// kill -9 at a rank a fixed delay after it starts, which is how
// scripts/check.sh proves crash-recovery end to end. -bench writes a
// machine-readable scale record (agent-steps/sec, phase walls, peak
// RSS per rank), and -report writes a run report whose supervision
// section `netstat report` renders.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

func main() {
	persons := flag.Int("persons", 20000, "synthetic population size")
	days := flag.Int("days", 7, "simulated days")
	seed := flag.Uint64("seed", 2017, "root random seed")
	ranks := flag.Int("ranks", 4, "rank process count (one OS process per rank, both phases)")
	t0 := flag.Uint("t0", 0, "synthesis slice start hour (inclusive)")
	t1 := flag.Uint("t1", 0, "synthesis slice end hour (exclusive; 0 = full run)")
	workdir := flag.String("workdir", "netlaunch-out", "working directory for logs, address files and outputs")
	out := flag.String("o", "", "output edge-list path (default workdir/network.tsv)")
	snapshot := flag.String("snapshot", "", "binary .gsnap snapshot path (default workdir/network.gsnap)")
	chisimBin := flag.String("chisim", "", "chisim binary (default: next to this executable, else $PATH)")
	netsynthBin := flag.String("netsynth", "", "netsynth binary (default: next to this executable, else $PATH)")
	maxRestarts := flag.Int("max-restarts", 3, "restart budget per rank (synthesis) / gang relaunch budget (simulation); negative disables restarts")
	backoffBase := flag.Duration("backoff-base", 250*time.Millisecond, "first restart delay (doubles per attempt, full jitter)")
	backoffCap := flag.Duration("backoff-cap", 5*time.Second, "restart delay cap")
	roundTimeout := flag.Duration("round-timeout", 0, "per-collective deadline: declare the slowest rank failed when a round stalls this long (0 = off)")
	hourDelay := flag.Duration("hour-delay", 0, "slow the simulation by this much per simulated hour (chaos/testing aid)")
	skipSim := flag.Bool("skip-sim", false, "reuse the event logs already in workdir/logs and run only the synthesis phase")
	killRank := flag.Int("kill-rank", -1, "chaos: kill -9 this rank once (-1 = off)")
	killAfter := flag.Duration("kill-after", 2*time.Second, "chaos: delay between the victim starting and the kill")
	killPhase := flag.String("kill-phase", "sim", "chaos: phase to kill in (sim or synth)")
	benchPath := flag.String("bench", "", "write a JSON scale record (agent-steps/sec, walls, peak RSS per rank) to this path")
	reportPath := flag.String("report", "", "write a JSON run report with the supervision section to this path (render with `netstat report` / `netstat trace`)")
	observeAddr := flag.String("observe-addr", "", "serve the cluster observability plane on this address: merged per-rank-labeled /metrics and a /cluster JSON summary")
	observeAddrFile := flag.String("observe-addr-file", "", "write the observe plane's bound address to this file (for :0 ephemeral ports)")
	scrapeInterval := flag.Duration("scrape-interval", time.Second, "how often the observe plane scrapes each rank's telemetry /snapshot")
	flag.Parse()

	if *ranks < 1 {
		fatal(fmt.Errorf("-ranks must be ≥ 1, got %d", *ranks))
	}
	if *killPhase != "sim" && *killPhase != "synth" {
		fatal(fmt.Errorf("-kill-phase must be sim or synth, got %q", *killPhase))
	}
	if *t1 == 0 {
		*t1 = uint(*days) * 24
	}
	if *out == "" {
		*out = filepath.Join(*workdir, "network.tsv")
	}
	if *snapshot == "" {
		*snapshot = filepath.Join(*workdir, "network.gsnap")
	}
	logsDir := filepath.Join(*workdir, "logs")
	if err := os.MkdirAll(logsDir, 0o755); err != nil {
		fatal(err)
	}
	simBin, err := resolveBin(*chisimBin, "chisim")
	if err != nil {
		fatal(err)
	}
	synthBin, err := resolveBin(*netsynthBin, "netsynth")
	if err != nil {
		fatal(err)
	}
	if *reportPath != "" {
		telemetry.SetEnabled(true)
	}

	// The observe plane: one scrape target for the whole run. Each
	// supervised rank gets a telemetry server plus an address file; the
	// observer merges their /snapshot scrapes into labeled /metrics and
	// a /cluster summary.
	var obs *observer
	if *observeAddr != "" {
		telemetry.SetEnabled(true)
		obs = newObserver(*workdir, *ranks, *scrapeInterval)
		if err := obs.start(*observeAddr, *observeAddrFile); err != nil {
			fatal(err)
		}
		defer obs.close()
	}

	// First SIGINT/SIGTERM propagates to the children as a cooperative
	// drain (they exit ExitCanceled); a second one kills netlaunch.
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSignals()

	chaos := &chaosKiller{phase: *killPhase, rank: *killRank, after: *killAfter}
	pol := supervise.Policy{
		MaxRestartsPerRank: *maxRestarts,
		BackoffBase:        *backoffBase,
		BackoffCap:         *backoffCap,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "netlaunch: "+format+"\n", args...)
		},
	}

	var supervision []telemetry.SupervisionReport
	var simWall time.Duration

	if !*skipSim {
		if obs != nil {
			obs.setPhase("sim")
		}
		simStart := time.Now()
		simRes, err := runSimPhase(ctx, simBin, logsDir, *workdir, simArgs{
			Persons: *persons, Days: *days, Seed: *seed, Ranks: *ranks,
			HourDelay: *hourDelay, RoundTimeout: *roundTimeout,
		}, pol, chaos, obs)
		simWall = time.Since(simStart)
		if simRes != nil {
			supervision = append(supervision, simRes.Report())
			if obs != nil {
				obs.addSupervision(simRes.Report())
			}
		}
		if err != nil {
			exitPhase("simulation", err)
		}
		fmt.Printf("netlaunch: simulation phase done in %s (%d gang restart(s))\n",
			simWall.Round(time.Millisecond), simRes.GangRestarts)
	}

	paths, err := filepath.Glob(filepath.Join(logsDir, "rank*.h5l"))
	if err != nil || len(paths) == 0 {
		fatal(fmt.Errorf("no event logs in %s (err=%v)", logsDir, err))
	}
	sort.Strings(paths)

	if obs != nil {
		obs.setPhase("synth")
	}
	// Rank 0 of the synthesis writes its run report — per-rank
	// busy/comm/idle walls, the cluster trace id, and every rank's span
	// trees — which netlaunch folds into its own report and /cluster
	// summary after the phase.
	synthReportPath := ""
	if obs != nil || *reportPath != "" {
		synthReportPath = filepath.Join(*workdir, "synth-report.json")
		os.Remove(synthReportPath)
	}
	synthStart := time.Now()
	synthRes, err := runSynthPhase(ctx, synthBin, *workdir, paths, synthArgs{
		T0: uint32(*t0), T1: uint32(*t1), Ranks: *ranks, Seed: *seed,
		Out: *out, Snapshot: *snapshot, RoundTimeout: *roundTimeout,
		ReportPath: synthReportPath,
	}, pol, chaos, obs)
	synthWall := time.Since(synthStart)
	if synthRes != nil {
		supervision = append(supervision, synthRes.Report())
		if obs != nil {
			obs.addSupervision(synthRes.Report())
		}
	}
	synthRep := readSynthReport(synthReportPath)
	if obs != nil && synthRep != nil {
		obs.setSynthReport(synthRep)
	}
	if err != nil {
		writeArtifacts(*benchPath, *reportPath, supervision, synthRep, benchInputs{
			Persons: *persons, Days: *days, Ranks: *ranks,
			SimWall: simWall, SynthWall: synthWall, SkippedSim: *skipSim,
		})
		exitPhase("synthesis", err)
	}
	fmt.Printf("netlaunch: synthesis phase done in %s (%d restart(s), degraded ranks %v)\n",
		synthWall.Round(time.Millisecond), synthRes.Restarts(), synthRes.DegradedRanks())
	fmt.Printf("netlaunch: network → %s (snapshot %s)\n", *out, *snapshot)

	writeArtifacts(*benchPath, *reportPath, supervision, synthRep, benchInputs{
		Persons: *persons, Days: *days, Ranks: *ranks,
		SimWall: simWall, SynthWall: synthWall, SkippedSim: *skipSim,
	})
	if obs != nil {
		obs.setPhase("done")
	}
}

// readSynthReport loads rank 0's synthesis run report, nil when the
// phase did not produce one (no -report/-observe-addr, or rank 0 died).
func readSynthReport(path string) *telemetry.Report {
	if path == "" {
		return nil
	}
	rep, err := telemetry.ReadReportFile(path)
	if err != nil {
		return nil
	}
	return rep
}

// simArgs/synthArgs carry the per-phase parameters into the spec
// builders.
type simArgs struct {
	Persons, Days, Ranks int
	Seed                 uint64
	HourDelay            time.Duration
	RoundTimeout         time.Duration
}

type synthArgs struct {
	T0, T1        uint32
	Ranks         int
	Seed          uint64
	Out, Snapshot string
	RoundTimeout  time.Duration
	// ReportPath, when set, makes rank 0 write its run report (rank
	// walls, trace id, span trees) there for netlaunch to fold in.
	ReportPath string
}

// claimToken derives a stable per-rank claim token from the run seed so
// a restarted process presents the identity its slot recorded.
func claimToken(seed uint64, rank int) uint64 {
	return seed*1_000_003 + uint64(rank) + 1
}

// runSimPhase supervises the simulation as a gang: any rank dying
// triggers a full relaunch with -resume, which replays every log to the
// canonical state.
func runSimPhase(ctx context.Context, bin, logsDir, workdir string, a simArgs, pol supervise.Policy, chaos *chaosKiller, obs *observer) (*supervise.Result, error) {
	addrFile := filepath.Join(workdir, "sim.addr")
	build := func(attempt int) []supervise.Spec {
		// A stale address file would point relaunched workers at the
		// dead coordinator; remove it before rank 0 rebinds.
		os.Remove(addrFile)
		common := []string{
			"-persons", fmt.Sprint(a.Persons),
			"-days", fmt.Sprint(a.Days),
			"-seed", fmt.Sprint(a.Seed),
			"-ranks", fmt.Sprint(a.Ranks),
			"-logdir", logsDir,
		}
		if a.HourDelay > 0 {
			common = append(common, "-hour-delay", a.HourDelay.String())
		}
		if attempt > 0 {
			common = append(common, "-resume")
		}
		specs := make([]supervise.Spec, a.Ranks)
		for r := 0; r < a.Ranks; r++ {
			args := append([]string(nil), common...)
			if obs != nil {
				args = append(args,
					"-telemetry-addr", "127.0.0.1:0",
					"-telemetry-addr-file", obs.telemetryAddrFile(r))
			}
			if r == 0 {
				args = append(args,
					"-dist-host", "127.0.0.1:0",
					"-dist-addr-file", addrFile)
				if a.RoundTimeout > 0 {
					args = append(args, "-dist-round-timeout", a.RoundTimeout.String())
				}
			} else {
				args = append(args,
					"-dist-join", "@"+addrFile,
					"-dist-rank", fmt.Sprint(r),
					"-dist-token", fmt.Sprint(claimToken(a.Seed, r)))
			}
			specs[r] = supervise.Spec{
				Rank: r, Token: claimToken(a.Seed, r),
				Path: bin, Args: args,
				Stdout: os.Stdout, Stderr: os.Stderr,
			}
		}
		return specs
	}
	pol.OnStart = chaos.hook("sim")
	s := supervise.New(build(0), pol)
	return s.RunGang(ctx, build)
}

// runSynthPhase supervises the synthesis with per-rank restarts: a dead
// worker reclaims its slot via its claim token, or — once its budget is
// spent — stays dead while the survivors re-stripe its files.
func runSynthPhase(ctx context.Context, bin, workdir string, paths []string, a synthArgs, pol supervise.Policy, chaos *chaosKiller, obs *observer) (*supervise.Result, error) {
	addrFile := filepath.Join(workdir, "synth.addr")
	os.Remove(addrFile)
	common := []string{
		"-t0", fmt.Sprint(a.T0),
		"-t1", fmt.Sprint(a.T1),
	}
	specs := make([]supervise.Spec, a.Ranks)
	for r := 0; r < a.Ranks; r++ {
		args := append([]string(nil), common...)
		if obs != nil {
			args = append(args,
				"-telemetry-addr", "127.0.0.1:0",
				"-telemetry-addr-file", obs.telemetryAddrFile(r))
		}
		if r == 0 {
			args = append(args,
				"-dist-host", "127.0.0.1:0",
				"-dist-size", fmt.Sprint(a.Ranks),
				"-dist-addr-file", addrFile,
				"-o", a.Out,
				"-snapshot", a.Snapshot)
			if a.RoundTimeout > 0 {
				args = append(args, "-dist-round-timeout", a.RoundTimeout.String())
			}
			if a.ReportPath != "" {
				args = append(args, "-report", a.ReportPath)
			}
		} else {
			args = append(args,
				"-dist-join", "@"+addrFile,
				"-dist-rank", fmt.Sprint(r),
				"-dist-token", fmt.Sprint(claimToken(a.Seed, r)))
		}
		args = append(args, paths...)
		specs[r] = supervise.Spec{
			Rank: r, Token: claimToken(a.Seed, r),
			Path: bin, Args: args,
			Stdout: os.Stdout, Stderr: os.Stderr,
		}
	}
	pol.OnStart = chaos.hook("synth")
	s := supervise.New(specs, pol)
	return s.RunPerRank(ctx)
}

// chaosKiller aims one kill -9 at a configured rank in a configured
// phase, a fixed delay after that rank's process starts. It fires at
// most once per netlaunch run, so the restarted incarnation survives.
type chaosKiller struct {
	phase string
	rank  int
	after time.Duration
	fired atomic.Bool
}

func (c *chaosKiller) hook(phase string) func(rank, pid int) {
	if c == nil || c.rank < 0 || c.phase != phase {
		return nil
	}
	return func(rank, pid int) {
		if rank != c.rank {
			return
		}
		if !c.fired.CompareAndSwap(false, true) {
			return
		}
		fmt.Fprintf(os.Stderr, "netlaunch: chaos: kill -9 rank %d (pid %d) in %s\n", rank, pid, c.after)
		faultinject.KillAfter(pid, c.after)
	}
}

// benchInputs feeds the BENCH_scale record.
type benchInputs struct {
	Persons, Days, Ranks int
	SimWall, SynthWall   time.Duration
	SkippedSim           bool
}

// benchRecord is the machine-readable scale record (-bench): the
// first-class numbers ROADMAP tracks for the scaling story.
type benchRecord struct {
	Meta          telemetry.BenchMeta `json:"meta"`
	CreatedUnixNs int64               `json:"created_unix_ns"`
	Persons       int                 `json:"persons"`
	Days          int                 `json:"days"`
	Ranks         int                 `json:"ranks"`
	// SimWallNs is the supervised simulation phase wall (0 when the
	// phase was skipped).
	SimWallNs int64 `json:"sim_wall_ns"`
	// AgentStepsPerSec is persons × simulated hours / sim wall — the
	// simulator's aggregate throughput under supervision.
	AgentStepsPerSec float64 `json:"agent_steps_per_sec"`
	// SynthWallNs is the supervised synthesis phase wall.
	SynthWallNs int64 `json:"synth_wall_ns"`
	// Supervision repeats the per-phase supervision outcome, including
	// peak RSS per rank.
	Supervision []telemetry.SupervisionReport `json:"supervision,omitempty"`
}

// writeArtifacts writes the -bench and -report outputs (either may be
// disabled); called on both success and synthesis failure so a chaos
// run that degrades still leaves its record.
func writeArtifacts(benchPath, reportPath string, supervision []telemetry.SupervisionReport, synthRep *telemetry.Report, in benchInputs) {
	if benchPath != "" {
		rec := benchRecord{
			Meta: telemetry.NewBenchMeta("netlaunch", map[string]string{
				"persons": fmt.Sprint(in.Persons),
				"days":    fmt.Sprint(in.Days),
				"ranks":   fmt.Sprint(in.Ranks),
			}),
			CreatedUnixNs: time.Now().UnixNano(),
			Persons:       in.Persons,
			Days:          in.Days,
			Ranks:         in.Ranks,
			SimWallNs:     int64(in.SimWall),
			SynthWallNs:   int64(in.SynthWall),
			Supervision:   supervision,
		}
		if !in.SkippedSim && in.SimWall > 0 {
			steps := float64(in.Persons) * float64(in.Days) * 24
			rec.AgentStepsPerSec = steps / in.SimWall.Seconds()
		}
		blob, err := json.MarshalIndent(rec, "", "  ")
		if err == nil {
			err = os.WriteFile(benchPath, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "netlaunch: writing bench record: %v\n", err)
		} else {
			fmt.Printf("netlaunch: bench record → %s\n", benchPath)
		}
	}
	if reportPath != "" {
		rep := telemetry.Default.Report("netlaunch")
		rep.Supervision = supervision
		if synthRep != nil {
			// Fold the rank-0 synthesis report in so one file carries the
			// whole run: netlaunch's own metrics plus the distributed
			// trace (rank walls, trace id, cross-rank spans).
			rep.TraceID = synthRep.TraceID
			rep.Ranks = synthRep.Ranks
			rep.Spans = append(rep.Spans, synthRep.Spans...)
			rep.Stages = append(rep.Stages, synthRep.Stages...)
		}
		if err := rep.WriteFile(reportPath); err != nil {
			fmt.Fprintf(os.Stderr, "netlaunch: writing report: %v\n", err)
		} else {
			fmt.Printf("netlaunch: run report → %s\n", reportPath)
		}
	}
}

// resolveBin finds a rank binary: an explicit flag wins; otherwise try
// next to this executable (the `go build -o bin/ ./...` layout), then
// fall back to $PATH.
func resolveBin(explicit, name string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), name)
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand, nil
		}
	}
	path, err := exec.LookPath(name)
	if err != nil {
		return "", fmt.Errorf("netlaunch: %s not found next to this executable or in $PATH (use -%s)", name, name)
	}
	return path, nil
}

// exitPhase reports a phase outcome and exits with the matching code:
// a cooperative cancellation is a drain (exit 2), not a failure.
func exitPhase(phase string, err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "netlaunch: %s phase interrupted\n", phase)
		os.Exit(supervise.ExitCanceled)
	}
	fatal(fmt.Errorf("%s phase: %w", phase, err))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netlaunch:", err)
	os.Exit(supervise.ExitFailure)
}
