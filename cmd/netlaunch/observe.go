package main

// The cluster observability plane: netlaunch is the only process that
// knows every rank of a run, so it is the natural single scrape target.
// With -observe-addr set, each supervised rank gets a telemetry server
// on an ephemeral port plus an address file; the observer polls those
// files, scrapes each rank's /snapshot (the registry's serializable
// form), and serves:
//
//   - /metrics  — every rank's series merged into one Prometheus
//     exposition, each sample labeled rank="N" (plus the launcher's own
//     registry as rank="launcher"). A dead or restarting rank keeps
//     serving its last good snapshot, marked stale via
//     netlaunch_scrape_age_seconds.
//   - /cluster  — a JSON roll-up: current phase, per-rank scrape
//     health, the supervision reports (restart counts, storms,
//     degradation), and — once the synthesis report lands — per-rank
//     busy/comm/idle walls with min/max/mean busy and the Fig.-style
//     imbalance ratio.
//
// Scrapes are best-effort by design: a rank between death and restart
// refuses connections, and a rank that has not bound yet has no
// address file. Neither is an error worth failing the run over.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/supervise"
	"repro/internal/telemetry"
)

var (
	mScrapes      = telemetry.C("netlaunch_scrape_total")
	mScrapeErrors = telemetry.C("netlaunch_scrape_errors_total")
)

// rankScrape is the last scrape outcome for one rank.
type rankScrape struct {
	Snap telemetry.Snapshot
	At   time.Time // when Snap was obtained; zero = never scraped
	Err  string    // last failure, "" when the last scrape succeeded
}

// observer runs the scrape loop and the aggregated HTTP endpoints.
type observer struct {
	workdir  string
	ranks    int
	interval time.Duration
	client   *http.Client

	mu          sync.Mutex
	phase       string
	scrapes     []rankScrape
	supervision []telemetry.SupervisionReport
	synthRep    *telemetry.Report

	srv  *http.Server
	ln   net.Listener
	stop chan struct{}
	done chan struct{}
}

func newObserver(workdir string, ranks int, interval time.Duration) *observer {
	if interval <= 0 {
		interval = time.Second
	}
	return &observer{
		workdir:  workdir,
		ranks:    ranks,
		interval: interval,
		client:   &http.Client{Timeout: 2 * time.Second},
		scrapes:  make([]rankScrape, ranks),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// telemetryAddrFile is the per-rank address file the observer polls.
// Both phases use the same name: the file always points at the rank's
// most recently bound telemetry server (restarts rewrite it), and a
// briefly stale address just yields one failed scrape.
func (o *observer) telemetryAddrFile(rank int) string {
	return fmt.Sprintf("%s/telemetry-rank%d.addr", o.workdir, rank)
}

// start binds the observe endpoint and launches the scrape loop.
func (o *observer) start(addr, addrFile string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("netlaunch: observe listen %s: %w", addr, err)
	}
	if addrFile != "" {
		if err := supervise.WriteAddrFile(addrFile, ln.Addr().String()); err != nil {
			ln.Close()
			return err
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", o.handleMetrics)
	mux.HandleFunc("/cluster", o.handleCluster)
	o.ln = ln
	o.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go o.srv.Serve(ln)
	go o.scrapeLoop()
	fmt.Printf("netlaunch: observe plane on http://%s/metrics (cluster summary at /cluster)\n", ln.Addr())
	return nil
}

// close stops the scrape loop and the HTTP server.
func (o *observer) close() {
	close(o.stop)
	<-o.done
	o.srv.Close()
}

func (o *observer) setPhase(phase string) {
	o.mu.Lock()
	o.phase = phase
	o.mu.Unlock()
}

func (o *observer) addSupervision(rep telemetry.SupervisionReport) {
	o.mu.Lock()
	o.supervision = append(o.supervision, rep)
	o.mu.Unlock()
}

func (o *observer) setSynthReport(rep *telemetry.Report) {
	o.mu.Lock()
	o.synthRep = rep
	o.mu.Unlock()
}

func (o *observer) scrapeLoop() {
	defer close(o.done)
	t := time.NewTicker(o.interval)
	defer t.Stop()
	o.scrapeAll()
	for {
		select {
		case <-o.stop:
			return
		case <-t.C:
			o.scrapeAll()
		}
	}
}

// scrapeAll fetches every rank's /snapshot, keeping the previous good
// snapshot on failure so /metrics never loses a rank that merely died
// between restarts.
func (o *observer) scrapeAll() {
	for r := 0; r < o.ranks; r++ {
		snap, err := o.scrapeRank(r)
		o.mu.Lock()
		if err != nil {
			o.scrapes[r].Err = err.Error()
		} else {
			o.scrapes[r] = rankScrape{Snap: snap, At: time.Now()}
		}
		o.mu.Unlock()
	}
}

func (o *observer) scrapeRank(rank int) (telemetry.Snapshot, error) {
	mScrapes.Inc()
	blob, err := os.ReadFile(o.telemetryAddrFile(rank))
	if err != nil {
		mScrapeErrors.Inc()
		return telemetry.Snapshot{}, fmt.Errorf("no address yet: %w", err)
	}
	addr := strings.TrimSpace(string(blob))
	resp, err := o.client.Get("http://" + addr + "/snapshot")
	if err != nil {
		mScrapeErrors.Inc()
		return telemetry.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		mScrapeErrors.Inc()
		return telemetry.Snapshot{}, fmt.Errorf("scrape rank %d: %s", rank, resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		mScrapeErrors.Inc()
		return telemetry.Snapshot{}, fmt.Errorf("scrape rank %d: %w", rank, err)
	}
	return snap, nil
}

// handleMetrics serves the merged, per-rank-labeled exposition: the
// union of every scraped rank's series plus the launcher's own
// registry, with per-rank scrape ages appended so staleness is visible
// on the same endpoint.
func (o *observer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	o.mu.Lock()
	snaps := make([]telemetry.LabeledSnapshot, 0, o.ranks+1)
	ages := make([]float64, o.ranks)
	for r := 0; r < o.ranks; r++ {
		ages[r] = -1
		if !o.scrapes[r].At.IsZero() {
			ages[r] = time.Since(o.scrapes[r].At).Seconds()
			snaps = append(snaps, telemetry.LabeledSnapshot{
				Labels: []telemetry.Label{{Name: "rank", Value: strconv.Itoa(r)}},
				Snap:   o.scrapes[r].Snap,
			})
		}
	}
	o.mu.Unlock()
	snaps = append(snaps, telemetry.LabeledSnapshot{
		Labels: []telemetry.Label{{Name: "rank", Value: "launcher"}},
		Snap:   telemetry.Default.Snapshot(),
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	telemetry.WriteClusterPrometheus(w, snaps)
	fmt.Fprintf(w, "# TYPE netlaunch_scrape_age_seconds gauge\n")
	for r, age := range ages {
		if age >= 0 {
			fmt.Fprintf(w, "netlaunch_scrape_age_seconds{rank=%q} %g\n", strconv.Itoa(r), age)
		}
	}
}

// clusterRank is one rank's row in the /cluster summary.
type clusterRank struct {
	Rank      int     `json:"rank"`
	Scraped   bool    `json:"scraped"`
	AgeS      float64 `json:"age_s,omitempty"`
	LastError string  `json:"last_error,omitempty"`
}

// clusterSynthesis is the post-synthesis roll-up of the /cluster
// summary, built from the rank-0 run report.
type clusterSynthesis struct {
	TraceID       string                 `json:"trace_id,omitempty"`
	Ranks         []telemetry.RankReport `json:"ranks"`
	BusyMinNs     int64                  `json:"busy_min_ns"`
	BusyMaxNs     int64                  `json:"busy_max_ns"`
	BusyMeanNs    int64                  `json:"busy_mean_ns"`
	BusyImbalance float64                `json:"busy_imbalance"`
}

// clusterSummary is the /cluster JSON document.
type clusterSummary struct {
	Phase       string                        `json:"phase"`
	Ranks       []clusterRank                 `json:"ranks"`
	Supervision []telemetry.SupervisionReport `json:"supervision,omitempty"`
	Synthesis   *clusterSynthesis             `json:"synthesis,omitempty"`
}

func (o *observer) handleCluster(w http.ResponseWriter, _ *http.Request) {
	o.mu.Lock()
	sum := clusterSummary{
		Phase:       o.phase,
		Ranks:       make([]clusterRank, o.ranks),
		Supervision: o.supervision,
	}
	for r := 0; r < o.ranks; r++ {
		cr := clusterRank{Rank: r, LastError: o.scrapes[r].Err}
		if !o.scrapes[r].At.IsZero() {
			cr.Scraped = true
			cr.AgeS = time.Since(o.scrapes[r].At).Seconds()
		}
		sum.Ranks[r] = cr
	}
	if o.synthRep != nil && len(o.synthRep.Ranks) > 0 {
		syn := &clusterSynthesis{TraceID: o.synthRep.TraceID, Ranks: o.synthRep.Ranks}
		var sumBusy int64
		syn.BusyMinNs = o.synthRep.Ranks[0].BusyNs
		for _, rr := range o.synthRep.Ranks {
			sumBusy += rr.BusyNs
			if rr.BusyNs < syn.BusyMinNs {
				syn.BusyMinNs = rr.BusyNs
			}
			if rr.BusyNs > syn.BusyMaxNs {
				syn.BusyMaxNs = rr.BusyNs
			}
		}
		syn.BusyMeanNs = sumBusy / int64(len(o.synthRep.Ranks))
		syn.BusyImbalance = telemetry.BusyImbalance(o.synthRep.Ranks)
		sum.Synthesis = syn
	}
	o.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sum)
}
