// Command experiments regenerates every table and figure of the paper's
// evaluation at a configurable scale and prints a markdown report.
//
// Usage:
//
//	experiments [-persons N] [-days D] [-ranks R] [-workers W]
//	            [-seed S] [-out DIR] [-exp ID[,ID...]]
//
// With no -exp, every experiment runs in DESIGN.md order. Artifacts
// (SVG figures, CSV series, simulation logs) are written under -out.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	scale := experiments.DefaultScale()
	persons := flag.Int("persons", scale.Persons, "synthetic population size")
	days := flag.Int("days", scale.Days, "simulated days (analysis uses the final week)")
	ranks := flag.Int("ranks", scale.Ranks, "simulated process count")
	workers := flag.Int("workers", scale.Workers, "synthesis worker count")
	seed := flag.Uint64("seed", scale.Seed, "root random seed")
	out := flag.String("out", "out", "artifact output directory")
	exp := flag.String("exp", "", "comma-separated experiment IDs (default: all): "+strings.Join(experiments.IDs(), ","))
	mdPath := flag.String("md", "", "also write the combined report to this markdown file")
	flag.Parse()

	scale.Persons, scale.Days, scale.Ranks, scale.Workers, scale.Seed = *persons, *days, *ranks, *workers, *seed

	runner, err := experiments.NewRunner(scale, *out)
	if err != nil {
		fatal(err)
	}

	var ids []string
	if *exp == "" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}

	var combined strings.Builder
	fmt.Fprintf(&combined, "# Experiment report — %d persons, %d days, %d ranks, %d workers, seed %d\n\n",
		scale.Persons, scale.Days, scale.Ranks, scale.Workers, scale.Seed)
	start := time.Now()
	for _, id := range ids {
		repStart := time.Now()
		rep, err := runner.Run(strings.TrimSpace(id))
		if err != nil {
			fatal(err)
		}
		text := rep.Render()
		fmt.Print(text)
		fmt.Printf("(%s in %s)\n\n", rep.ID, time.Since(repStart).Round(time.Millisecond))
		combined.WriteString(text)
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))

	if *mdPath != "" {
		if err := os.MkdirAll(filepath.Dir(*mdPath), 0o755); err != nil && filepath.Dir(*mdPath) != "." {
			fatal(err)
		}
		if err := os.WriteFile(*mdPath, []byte(combined.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *mdPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
