// Command chisim runs the chiSIM-style agent-based simulation: it
// generates a synthetic population, simulates daily activity schedules at
// one-hour resolution on a set of simulated ranks, and writes one
// event-based activity log per rank (Sections II-III of the paper).
//
// Usage (single process, ranks as goroutines):
//
//	chisim -persons 20000 -days 28 -ranks 16 -logdir logs
//
// Distributed usage (one OS process per rank, TCP transport; every
// process must receive identical -persons/-days/-seed values, which make
// them generate identical populations, schedules and place partitions):
//
//	chisim -persons 20000 -days 28 -ranks 4 -dist-host :7946 ...   # rank 0
//	chisim -persons 20000 -days 28 -ranks 4 -dist-join host:7946   # ranks 1..3
//
// Under a supervisor (cmd/netlaunch), each worker additionally pins its
// rank with -dist-rank/-dist-token so a restarted process reclaims its
// slot, and discovers the coordinator through -dist-join @file (the
// address file rank 0 publishes with -dist-addr-file). Exit codes tell
// the supervisor what happened: 0 success, 2 cooperative drain after
// SIGINT/SIGTERM, 1 real failure.
//
// A SIGINT or SIGTERM stops the run gracefully at the next simulated
// hour: every rank flushes and closes its log with a valid footer, and
// the run can be continued later with -resume. -resume also recovers
// from hard crashes (kill -9, power loss): each rank salvages the
// intact prefix of its log, the ranks agree on a common resume hour,
// and the finished logs match an uninterrupted run.
//
//	chisim -persons 20000 -days 28 -ranks 16 -logdir logs -resume
//
// The resulting logs/rankNNNN.h5l files feed cmd/netsynth.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro"
	"repro/internal/abm"
	"repro/internal/eventlog"
	"repro/internal/mpi"
	"repro/internal/mpinet"
	"repro/internal/schedule"
	"repro/internal/supervise"
	"repro/internal/telemetry"
)

// distOptions bundles the supervisor-facing distributed flags so
// runDistributed's signature stays readable.
type distOptions struct {
	Host         string
	Join         string
	Rank         int
	Token        uint64
	AddrFile     string
	RoundTimeout time.Duration
}

func main() {
	persons := flag.Int("persons", 20000, "synthetic population size")
	days := flag.Int("days", 28, "simulated days")
	ranks := flag.Int("ranks", 16, "simulated process count")
	seed := flag.Uint64("seed", 2017, "root random seed")
	logdir := flag.String("logdir", "logs", "directory for per-rank event logs")
	cache := flag.Int("cache", eventlog.DefaultCacheEntries, "logger cache entries before each chunked write")
	compress := flag.Bool("compress", false, "DEFLATE-compress log chunks")
	flushEvery := flag.Int("flush-every", 0, "make each rank's log durable every N simulated hours (0 = only when the cache fills); lets netsynth -follow tail a running simulation")
	resume := flag.Bool("resume", false, "continue a crashed or interrupted run from the logs in -logdir")
	distHost := flag.String("dist-host", "", "host the TCP coordinator on this address (this process becomes rank 0)")
	distJoin := flag.String("dist-join", "", "join a TCP coordinator at this address or @file (rank assigned by coordinator unless -dist-rank is set)")
	distRank := flag.Int("dist-rank", 0, "claim this specific rank when joining (0 = let the coordinator assign)")
	distToken := flag.Uint64("dist-token", 0, "rank claim token; a restarted process presenting the same token reclaims its slot")
	distAddrFile := flag.String("dist-addr-file", "", "rank 0: publish the coordinator's bound address to this file (for -dist-join @file)")
	distRoundTimeout := flag.Duration("dist-round-timeout", 0, "rank 0: declare the slowest rank failed when a collective stalls this long (0 = off)")
	hourDelay := flag.Duration("hour-delay", 0, "sleep this long per simulated hour (chaos/testing aid)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics (Prometheus), /snapshot, /debug/vars and /debug/pprof on this address and enable telemetry")
	telemetryAddrFile := flag.String("telemetry-addr-file", "", "publish the telemetry server's bound address to this file (for a supervisor's scraper)")
	reportPath := flag.String("report", "", "write a JSON run report to this path (render it with `netstat report`)")
	flag.Parse()

	telemetry.InstallFlightRecorder("chisim", os.Stderr)
	if *telemetryAddr != "" {
		srv, err := telemetry.Default.Serve(*telemetryAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics\n", srv.Addr())
		if *telemetryAddrFile != "" {
			if err := supervise.WriteAddrFile(*telemetryAddrFile, srv.Addr()); err != nil {
				fatal(err)
			}
		}
	}
	if *reportPath != "" {
		telemetry.SetEnabled(true)
	}

	p, err := repro.NewPipeline(repro.Config{
		Persons: *persons, Days: *days, Seed: *seed, Ranks: *ranks,
		CacheEntries: *cache, Compress: *compress, HourDelay: *hourDelay,
		FlushEvery: *flushEvery,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("population: %d persons, %d places, %d neighborhoods\n",
		p.Pop.NumPersons(), p.Pop.NumPlaces(), p.Pop.Neighborhoods())

	ctx := signalContext()

	if *distHost != "" || *distJoin != "" {
		runDistributed(ctx, p, distOptions{
			Host: *distHost, Join: *distJoin,
			Rank: *distRank, Token: *distToken,
			AddrFile: *distAddrFile, RoundTimeout: *distRoundTimeout,
		}, *ranks, *logdir, *resume, *hourDelay, uint32(*flushEvery), eventlog.Config{
			CacheEntries: *cache, Compress: *compress,
		}, *reportPath)
		return
	}

	start := time.Now()
	var res *abm.Result
	if *resume {
		var reports []*abm.ResumeReport
		res, reports, err = p.Resume(ctx, *logdir, nil)
		if err != nil {
			exitCanceled(err, *logdir)
			fatal(err)
		}
		printResumeReport(reports)
	} else {
		res, err = p.Simulate(ctx, *logdir)
		if err != nil {
			exitCanceled(err, *logdir)
			fatal(err)
		}
	}
	elapsed := time.Since(start)

	endHour := uint32(*days * schedule.HoursPerDay)
	if res.StoppedAt < endHour {
		fmt.Printf("stopped gracefully at hour %d of %d; rerun with -resume to continue\n",
			res.StoppedAt, endHour)
	}
	fmt.Printf("simulated %d hours on %d ranks in %s\n", res.Steps, *ranks, elapsed.Round(time.Millisecond))
	fmt.Printf("events logged: %d (%.2f per person-day), %d chunked writes\n",
		res.Entries, float64(res.Entries)/float64(*persons**days), res.Flushes)
	fmt.Printf("log volume: %.2f MB across %d files in %s\n",
		float64(res.LogBytes)/(1<<20), len(res.LogPaths), *logdir)
	fmt.Printf("agent moves: %d local, %d inter-rank migrations\n", res.LocalMoves, res.Migrations)

	if *reportPath != "" {
		rep := telemetry.Default.Report("chisim")
		rep.Ranks = rankReports(res.PerRank)
		if err := rep.WriteFile(*reportPath); err != nil {
			fatal(err)
		}
		fmt.Printf("run report → %s\n", *reportPath)
	}
}

// rankReports converts the simulation's per-rank counters into the
// report's rank roll-ups. Simulated ranks interleave computation with
// the hourly exchange, so the whole wall counts as busy; the exchange
// walls are visible separately in the abm_exchange_seconds series.
func rankReports(per []abm.RankResult) []telemetry.RankReport {
	out := make([]telemetry.RankReport, len(per))
	for i, rr := range per {
		out[i] = telemetry.RankReport{
			Rank:    i,
			WallNs:  int64(rr.WallNs),
			BusyNs:  int64(rr.WallNs),
			Entries: int64(rr.Entries),
		}
	}
	return out
}

// signalContext converts the first SIGINT/SIGTERM into a context
// cancellation — the simulation then stops at the next simulated hour
// with valid, resumable log footers — and lets a second signal kill the
// process the traditional way.
func signalContext() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "chisim: %v: stopping at the next simulated hour (repeat to kill)\n", s)
		cancel()
		<-sigs
		os.Exit(1)
	}()
	return ctx
}

// exitCanceled recognizes the cooperative-cancellation error, prints
// the resume hint, and exits with the dedicated drain code so a
// supervisor (cmd/netlaunch) can tell a deliberate interruption from a
// real failure: an interrupted run is a stopped run — the logs have
// valid footers — and must not consume the restart budget.
func exitCanceled(err error, logdir string) {
	if !errors.Is(err, context.Canceled) {
		return
	}
	fmt.Printf("interrupted; logs in %s are intact — rerun with -resume to continue (%v)\n", logdir, err)
	os.Exit(supervise.ExitCanceled)
}

func printResumeReport(reports []*abm.ResumeReport) {
	if len(reports) == 0 || reports[0] == nil {
		return
	}
	if reports[0].Restarted {
		fmt.Println("resume: nothing salvageable, restarted from hour 0")
		return
	}
	var recovered, dropped uint64
	for _, rep := range reports {
		recovered += rep.RecoveredEntries
		dropped += rep.DroppedEntries
	}
	fmt.Printf("resume: continued at hour %d (%d entries salvaged, %d beyond the boundary regenerated)\n",
		reports[0].StartHour, recovered, dropped)
}

// runDistributed executes one rank of the simulation in this process
// over the TCP transport, then gathers and prints the combined summary
// on rank 0.
func runDistributed(ctx context.Context, p *repro.Pipeline, dist distOptions, ranks int, logdir string, resume bool, hourDelay time.Duration, flushEvery uint32, logCfg eventlog.Config, reportPath string) {
	var node *mpinet.Node
	var err error
	if dist.Host != "" {
		node, err = mpinet.Host(dist.Host, ranks, mpinet.Options{RoundTimeout: dist.RoundTimeout})
		if err == nil {
			fmt.Printf("rank 0 hosting on %s, waiting for %d peers\n", node.Addr(), ranks-1)
			if dist.AddrFile != "" {
				if werr := supervise.WriteAddrFile(dist.AddrFile, node.Addr()); werr != nil {
					node.Close()
					fatal(werr)
				}
			}
		}
	} else {
		addr, rerr := supervise.ResolveAddr(dist.Join, 30*time.Second)
		if rerr != nil {
			fatal(rerr)
		}
		node, err = mpinet.Join(addr, mpinet.Options{
			ClaimRank:  dist.Rank,
			ClaimToken: dist.Token,
		})
		if err == nil {
			fmt.Printf("joined as rank %d of %d\n", node.Rank(), node.Size())
		}
	}
	if err != nil {
		fatal(err)
	}
	defer node.Close()

	if err := os.MkdirAll(logdir, 0o755); err != nil {
		fatal(err)
	}
	// Every process derives the identical spatial partition from the
	// shared seed; no partition data crosses the wire.
	assign := p.SpatialAssignment(node.Size())
	cfg := abm.RankConfig{
		Pop: p.Pop, Gen: p.Gen, Days: p.Days(), Assign: assign,
		LogPath:    filepath.Join(logdir, fmt.Sprintf("rank%04d.h5l", node.Rank())),
		Log:        logCfg,
		HourDelay:  hourDelay,
		FlushEvery: flushEvery,
	}
	start := time.Now()
	var rr abm.RankResult
	if resume {
		var rep *abm.ResumeReport
		rr, rep, err = abm.ResumeRank(ctx, mpi.Transport(node), cfg)
		if err == nil && rep != nil {
			printResumeReport([]*abm.ResumeReport{rep})
		}
	} else {
		rr, err = abm.RunRank(ctx, mpi.Transport(node), cfg)
	}
	if err != nil {
		// A cooperative cancellation still leaves every rank's log with
		// a valid footer; skipping the summary gather is consistent
		// across ranks because they all observed the same cancel flag.
		exitCanceled(err, logdir)
		fatal(err)
	}
	endHour := uint32(p.Days() * schedule.HoursPerDay)
	if rr.StoppedAt < endHour {
		fmt.Printf("rank %d: stopped gracefully at hour %d of %d; rerun with -resume to continue\n",
			node.Rank(), rr.StoppedAt, endHour)
	}
	fmt.Printf("rank %d: %d entries, %d migrations out, wall %s\n",
		node.Rank(), rr.Entries, rr.Migrations, time.Since(start).Round(time.Millisecond))

	all, err := node.Gather(ctx, rr.Encode())
	if err != nil {
		fatal(err)
	}
	if node.Rank() != 0 {
		return
	}
	var entries, bytes, migrations uint64
	perRank := make([]abm.RankResult, 0, len(all))
	for _, blob := range all {
		r, err := abm.DecodeRankResult(blob)
		if err != nil {
			fatal(err)
		}
		entries += r.Entries
		bytes += r.LogBytes
		migrations += r.Migrations
		perRank = append(perRank, r)
	}
	fmt.Printf("cluster total: %d entries, %.2f MB of logs, %d migrations across %d ranks\n",
		entries, float64(bytes)/(1<<20), migrations, node.Size())

	if reportPath != "" {
		rep := telemetry.Default.Report("chisim")
		rep.Ranks = rankReports(perRank)
		if err := rep.WriteFile(reportPath); err != nil {
			fatal(err)
		}
		fmt.Printf("run report → %s\n", reportPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chisim:", err)
	os.Exit(1)
}
