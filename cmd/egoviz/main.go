// Command egoviz extracts a radius-k ego network around a person from a
// collocation-network edge list, lays it out with the ForceAtlas2-style
// algorithm, and renders it to SVG — the paper's Figures 1-2 workflow
// (select individual → adjacent vertex sets V1, V2 → induced subgraph →
// Gephi Force Atlas 2).
//
// Usage:
//
//	egoviz -seed-person 123 -radius 2 -o ego.svg network.tsv
//	egoviz -seed-person 123 -radius 2 -o ego.svg net.gsnap
//
// The input may be a TSV edge list or a binary .gsnap snapshot; the
// format is sniffed from the file's magic bytes. With -seed-person -1,
// the vertex with the median degree is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/gstore"
	"repro/internal/layout"
)

func main() {
	person := flag.Int("seed-person", -1, "ego center (person ID); -1 = median-degree vertex")
	radius := flag.Int("radius", 2, "ego radius (graph hops)")
	out := flag.String("o", "ego.svg", "output SVG path")
	iters := flag.Int("iters", 150, "layout iterations")
	seed := flag.Uint64("seed", 1, "layout random seed")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: egoviz [flags] network.tsv|net.gsnap"))
	}

	snap, err := gstore.LoadGraphFile(flag.Arg(0), 0)
	if err != nil {
		fatal(err)
	}
	defer snap.Close()
	g := snap.Graph()

	center := uint32(0)
	if *person >= 0 {
		if *person >= g.NumVertices() {
			fatal(fmt.Errorf("person %d not in network (max %d)", *person, g.NumVertices()-1))
		}
		center = uint32(*person)
	} else {
		// Median-degree vertex among those with edges.
		type dv struct {
			v uint32
			d int
		}
		var ds []dv
		for v := 0; v < g.NumVertices(); v++ {
			if d := g.Degree(uint32(v)); d > 0 {
				ds = append(ds, dv{uint32(v), d})
			}
		}
		if len(ds) == 0 {
			fatal(fmt.Errorf("network has no edges"))
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
		center = ds[len(ds)/2].v
	}

	ego := g.Ego(center, *radius)
	sub, orig := g.Induced(ego)
	fmt.Printf("ego network of person %d (radius %d): %d nodes, %d edges\n",
		center, *radius, sub.NumVertices(), sub.NumEdges())

	start := time.Now()
	pos := layout.Layout(sub, layout.Config{Iterations: *iters, Seed: *seed})
	fmt.Printf("layout: %d iterations in %s\n", *iters, time.Since(start).Round(time.Millisecond))

	of, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	title := fmt.Sprintf("Ego network of person %d (radius %d): %d nodes, %d edges",
		center, *radius, sub.NumVertices(), sub.NumEdges())
	if err := layout.WriteSVG(of, sub, pos, layout.SVGOptions{Title: title}); err != nil {
		fatal(err)
	}
	if err := of.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d original IDs preserved in node order)\n", *out, len(orig))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "egoviz:", err)
	os.Exit(1)
}
