// Command contacts reconstructs a person's contact history from chiSIM
// event logs — the paper's Section II use case: "the log can be used to
// reconstruct all the agents that an agent had contact with over the
// course of an epidemic simulation".
//
// Usage:
//
//	contacts -person 123 -t0 0 -t1 168 [-top 20] logs/rank*.h5l
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/schedule"
	"repro/internal/trace"
)

func main() {
	person := flag.Int("person", 0, "person ID to query")
	t0 := flag.Uint("t0", 0, "window start hour (inclusive)")
	t1 := flag.Uint("t1", 168, "window end hour (exclusive)")
	top := flag.Int("top", 20, "show the N strongest contacts (0 = all)")
	flag.Parse()
	if flag.NArg() == 0 {
		fatal(fmt.Errorf("no log files given; usage: contacts [flags] logs/rank*.h5l"))
	}

	ix, err := trace.FromFiles(flag.Args())
	if err != nil {
		fatal(err)
	}

	entries := ix.Entries(uint32(*person), uint32(*t0), uint32(*t1))
	fmt.Printf("person %d: %d activity segments in window [%d,%d)\n",
		*person, len(entries), *t0, *t1)
	for _, e := range entries {
		fmt.Printf("  hours %3d-%-3d  %-12s place %d\n",
			e.Start, e.Stop, schedule.ActivityName(e.Activity), e.Place)
	}

	cs := ix.Contacts(uint32(*person), uint32(*t0), uint32(*t1))
	fmt.Printf("\n%d distinct contacts:\n", len(cs))
	shown := cs
	if *top > 0 && len(shown) > *top {
		shown = shown[:*top]
	}
	for _, c := range shown {
		fmt.Printf("  person %-7d %3d shared hours (first at hour %d, place %d)\n",
			c.Person, c.Hours, c.FirstHour, c.Place)
	}
	if len(cs) > len(shown) {
		fmt.Printf("  ... and %d more\n", len(cs)-len(shown))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "contacts:", err)
	os.Exit(1)
}
