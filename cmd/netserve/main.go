// Command netserve is the long-running query daemon over a synthesized
// collocation network: it loads a .gsnap snapshot (or TSV edge list),
// serves the /v1/* JSON query API, hot-reloads the snapshot on SIGHUP
// or when the file's mtime changes, and drains gracefully on
// SIGTERM/SIGINT.
//
// Usage:
//
//	netsynth -t0 504 -t1 672 -snapshot net.gsnap logs/rank*.h5l
//	netserve -snapshot net.gsnap -addr :8355
//	curl localhost:8355/v1/stats
//	curl localhost:8355/v1/ego/123?radius=2
//
// Endpoints: /v1/stats, /v1/degree/{id}, /v1/neighbors/{id},
// /v1/ego/{id}?radius=k, /v1/path?from=&to=[&weighted=1],
// /v1/degree-dist, /v1/clustering/{id}.
//
// Tooling modes:
//
//	netserve -convert network.tsv -snapshot net.gsnap   # TSV → indexed v2 snapshot
//	netserve -reindex net.gsnap                         # upgrade v1 → v2 in place (atomic)
//	netserve -selfbench -bench-out BENCH_serve.json     # load generator
//	netserve -get http://host:8355/v1/stats             # curl-free fetch
//
// Converted and reindexed snapshots carry the precomputed v2 index
// sections (degree, strength, clustering, top-32 neighbors, degree
// histogram, global stats), which the daemon serves as O(1) mmap reads.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gennet"
	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/netserve"
	"repro/internal/rng"
	"repro/internal/telemetry"

	// Register every pipeline stage's telemetry series so the first
	// /metrics scrape shows the full inventory.
	_ "repro"
	_ "repro/internal/batch"
)

func main() {
	snapshot := flag.String("snapshot", "", "snapshot (.gsnap) or TSV edge list to serve")
	addr := flag.String("addr", ":8355", "HTTP listen address")
	addrFile := flag.String("addr-file", "", "write the bound listen address to this file (for :0 ephemeral ports)")
	workers := flag.Int("workers", 0, "max concurrent query evaluations (0 = 2×CPUs)")
	cacheBytes := flag.Int64("cache-bytes", 32<<20, "result cache budget in bytes (negative disables)")
	reqTimeout := flag.Duration("request-timeout", 5*time.Second, "per-request deadline")
	watch := flag.Duration("watch", 2*time.Second, "snapshot mtime poll interval for hot reload (0 disables)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /snapshot, /debug/vars and /debug/pprof on this address and enable telemetry")
	accessLog := flag.String("access-log", "", "append one structured JSON line per request to this file ('-' = stderr; empty disables)")
	slowMs := flag.Int("slow-ms", 500, "flag access-log requests at or above this duration with \"slow\":true")

	convert := flag.String("convert", "", "convert this TSV edge list (or snapshot) to an indexed -snapshot and exit")
	reindex := flag.String("reindex", "", "rewrite this snapshot in place as v2 with baked index sections and exit")
	get := flag.String("get", "", "fetch this URL, print the body, and exit (curl-free smoke tests)")
	post := flag.String("post", "", "POST -body to this URL, print the body, and exit (curl-free smoke tests)")
	postBody := flag.String("body", "", "request body file for -post ('-' = stdin)")

	selfbench := flag.Bool("selfbench", false, "run the mixed-query load generator against an in-process server and exit")
	benchOut := flag.String("bench-out", "BENCH_serve.json", "selfbench: write the JSON report here")
	benchDur := flag.Duration("bench-duration", 5*time.Second, "selfbench: load duration")
	benchConc := flag.Int("bench-concurrency", 16, "selfbench: concurrent clients")
	benchVertices := flag.Int("bench-vertices", 1_000_000, "selfbench: synthetic graph size when no -snapshot is given")
	benchSeed := flag.Int64("bench-seed", 1, "selfbench: workload seed")
	flag.Parse()

	switch {
	case *get != "":
		runGet(*get)
	case *post != "":
		runPost(*post, *postBody)
	case *convert != "":
		runConvert(*convert, *snapshot)
	case *reindex != "":
		runReindex(*reindex)
	case *selfbench:
		runSelfbench(*snapshot, *benchOut, *benchDur, *benchConc, *benchVertices, *benchSeed,
			*workers, *cacheBytes, *reqTimeout, *telemetryAddr)
	default:
		runServe(*snapshot, *addr, *addrFile, *workers, *cacheBytes, *reqTimeout, *watch,
			*telemetryAddr, *accessLog, time.Duration(*slowMs)*time.Millisecond)
	}
}

// openAccessLog resolves the -access-log flag: empty disables, "-"
// logs to stderr, anything else appends to that file.
func openAccessLog(path string) io.Writer {
	switch path {
	case "":
		return nil
	case "-":
		return os.Stderr
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fatal(err)
	}
	return f
}

// runServe is the daemon mode.
func runServe(snapshot, addr, addrFile string, workers int, cacheBytes int64,
	reqTimeout, watch time.Duration, telemetryAddr, accessLog string, slowThreshold time.Duration) {
	if snapshot == "" {
		fatal(fmt.Errorf("no -snapshot given; usage: netserve -snapshot net.gsnap -addr :8355"))
	}
	telemetry.InstallFlightRecorder("netserve", os.Stderr)
	if telemetryAddr != "" {
		tsrv, err := telemetry.Default.Serve(telemetryAddr)
		if err != nil {
			fatal(err)
		}
		defer tsrv.Close()
		fmt.Printf("telemetry: http://%s/metrics\n", tsrv.Addr())
	}

	start := time.Now()
	srv, err := netserve.New(snapshot, netserve.Options{
		Workers:        workers,
		CacheBytes:     cacheBytes,
		RequestTimeout: reqTimeout,
		WatchInterval:  watch,
		AccessLog:      openAccessLog(accessLog),
		SlowThreshold:  slowThreshold,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	fmt.Printf("loaded %s in %s\n", snapshot, time.Since(start).Round(time.Millisecond))

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}
	g, gen, release := srv.Acquire()
	fmt.Printf("serving %d vertices / %d edges on http://%s (generation %d)\n",
		g.NumVertices(), g.NumEdges(), ln.Addr(), gen)
	release()

	// HardenedHandler adds the http.TimeoutHandler backstop for wedged
	// handlers and the Retry-After hint on 503 saturation responses.
	httpSrv := &http.Server{Handler: srv.HardenedHandler(), ReadHeaderTimeout: 5 * time.Second}

	// SIGHUP → hot reload; SIGTERM/SIGINT → graceful drain.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.Reload(); err != nil {
				fmt.Fprintln(os.Stderr, "netserve: reload failed, keeping current generation:", err)
				continue
			}
			fmt.Printf("reloaded snapshot (generation %d)\n", srv.Generation())
		}
	}()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case sig := <-stop:
		fmt.Printf("caught %s: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fatal(err)
		}
		fmt.Println("drained; bye")
	case err := <-errc:
		if err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

// runConvert rewrites an edge list (or snapshot) as an indexed v2
// .gsnap snapshot.
func runConvert(in, out string) {
	if out == "" {
		fatal(fmt.Errorf("-convert requires -snapshot OUT.gsnap"))
	}
	snap, err := gstore.LoadGraphFile(in, 0)
	if err != nil {
		fatal(err)
	}
	defer snap.Close()
	g := snap.Graph()
	if err := gstore.WriteFileIndexed(out, g, gstore.IndexOptions{}); err != nil {
		fatal(err)
	}
	fi, err := os.Stat(out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d vertices, %d edges → %s (%d bytes, v%d + index)\n",
		in, g.NumVertices(), g.NumEdges(), out, fi.Size(), gstore.Version)
}

// runReindex upgrades a snapshot in place to v2 with baked index
// sections. The write goes through the store's temp+fsync+rename path,
// so a crash mid-upgrade leaves the original file untouched, and a
// daemon watching the file mtime hot-reloads the indexed version.
func runReindex(path string) {
	snap, err := gstore.LoadGraphFile(path, 0)
	if err != nil {
		fatal(err)
	}
	g := snap.Graph()
	before := snap.SizeBytes()
	fromVersion := snap.Version()
	sections := snap.Index().Sections()
	if err := gstore.WriteFileIndexed(path, g, gstore.IndexOptions{}); err != nil {
		snap.Close()
		fatal(err)
	}
	snap.Close()
	re, err := gstore.LoadGraphFile(path, 0)
	if err != nil {
		fatal(fmt.Errorf("reindexed snapshot failed verification: %w", err))
	}
	defer re.Close()
	fmt.Printf("%s: v%d (%d sections, %d bytes) → v%d (%d sections, %d bytes)\n",
		path, fromVersion, len(sections), before,
		re.Version(), len(re.Index().Sections()), re.SizeBytes())
}

// runGet is a dependency-free HTTP GET for smoke tests on boxes
// without curl.
func runGet(url string) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(body)
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: %s", url, resp.Status))
	}
}

// runPost is the POST counterpart of runGet: body from a file (or
// stdin with "-"), response to stdout, non-200 is fatal.
func runPost(url, bodyPath string) {
	var body io.Reader = strings.NewReader("")
	switch bodyPath {
	case "":
	case "-":
		body = os.Stdin
	default:
		f, err := os.Open(bodyPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		body = f
	}
	client := &http.Client{Timeout: 10 * time.Minute}
	resp, err := client.Post(url, "application/json", body)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(out)
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("POST %s: %s", url, resp.Status))
	}
}

// runSelfbench starts an in-process server on an ephemeral port and
// drives the mixed-query load generator at it.
func runSelfbench(snapshot, out string, dur time.Duration, conc, vertices int, seed int64,
	workers int, cacheBytes int64, reqTimeout time.Duration, telemetryAddr string) {
	if telemetryAddr != "" {
		tsrv, err := telemetry.Default.Serve(telemetryAddr)
		if err != nil {
			fatal(err)
		}
		defer tsrv.Close()
		fmt.Printf("telemetry: http://%s/metrics\n", tsrv.Addr())
	}

	path := snapshot
	if path == "" {
		// Synthesize a scale-free stand-in network with weighted edges.
		tri, err := gennet.BarabasiAlbert(vertices, 4, rng.New(uint64(seed)))
		if err != nil {
			fatal(err)
		}
		src := rng.New(uint64(seed) + 1)
		for k := range tri.W {
			tri.W[k] = uint32(src.Intn(500) + 1)
		}
		g := graph.FromTri(tri, vertices)
		tmp, err := os.MkdirTemp("", "netserve-bench")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		path = tmp + "/bench.gsnap"
		if err := gstore.WriteFileIndexed(path, g, gstore.IndexOptions{}); err != nil {
			fatal(err)
		}
		fmt.Printf("synthetic network: %d vertices, %d edges → %s (indexed)\n",
			g.NumVertices(), g.NumEdges(), path)
	}

	srv, err := netserve.New(path, netserve.Options{
		Workers:        workers,
		CacheBytes:     cacheBytes,
		RequestTimeout: reqTimeout,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	served, _, release := srv.Acquire()
	defer release()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.HardenedHandler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	fmt.Printf("selfbench: %d clients for %s against http://%s\n", conc, dur, ln.Addr())
	res, err := netserve.RunLoad(context.Background(), "http://"+ln.Addr().String(), served,
		netserve.BenchConfig{Concurrency: conc, Duration: dur, Seed: seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d requests (%d errors) in %.2fs → %.0f qps\n",
		res.Requests, res.Errors, res.DurationSec, res.QPS)
	fmt.Printf("latency: p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
		res.P50Ms, res.P95Ms, res.P99Ms, res.MaxMs)
	res.HotAllocsPerOp = srv.HotAllocs()
	fmt.Printf("hot allocs/op: %v\n", res.HotAllocsPerOp)
	res.Meta = telemetry.NewBenchMeta("netserve -selfbench", map[string]string{
		"snapshot":    snapshot,
		"duration":    dur.String(),
		"concurrency": fmt.Sprint(conc),
		"vertices":    fmt.Sprint(vertices),
		"seed":        fmt.Sprint(seed),
	})
	if out != "" {
		if err := res.WriteFile(out); err != nil {
			fatal(err)
		}
		fmt.Printf("report → %s\n", out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netserve:", err)
	os.Exit(1)
}
