package repro

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sparse"
	"repro/internal/synthpop"
)

func TestNewPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(Config{Persons: 0, Days: 1}); err == nil {
		t.Error("zero persons accepted")
	}
	if _, err := NewPipeline(Config{Persons: 10, Days: 0}); err == nil {
		t.Error("zero days accepted")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	p, err := NewPipeline(Config{Persons: 1500, Days: 3, Seed: 9, Ranks: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := p.Simulate(context.Background(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if sim.Entries == 0 || len(sim.LogPaths) != 4 {
		t.Fatalf("simulation produced no logs: %+v", sim)
	}
	net, err := p.Synthesize(context.Background(), sim.LogPaths, 0, 72)
	if err != nil {
		t.Fatal(err)
	}
	if net.Tri.NNZ() == 0 {
		t.Fatal("empty network")
	}
	g := net.Graph()
	if g.NumVertices() != 1500 {
		t.Fatalf("graph over %d vertices, want population size 1500", g.NumVertices())
	}
	if g.NumEdges() != net.Tri.NNZ() {
		t.Fatal("graph edge count differs from adjacency nnz")
	}
	if pts := net.DegreeDistribution(); len(pts) == 0 {
		t.Fatal("empty degree distribution")
	}
}

// TestPipelineStreamFollowsLiveSimulation is the in-process version of
// the streaming smoke: a simulation with hourly durability flushes runs
// concurrently with a Stream tailing its (initially nonexistent) logs.
// The stream must emit one network per day-window and its cumulative
// result must be bit-identical to a batch synthesis of the same range
// after the fact.
func TestPipelineStreamFollowsLiveSimulation(t *testing.T) {
	const ranks, days = 2, 2
	p, err := NewPipeline(Config{
		Persons: 600, Days: days, Seed: 11, Ranks: ranks, Workers: 2, FlushEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := make([]string, ranks)
	for r := range paths {
		paths[r] = filepath.Join(dir, fmt.Sprintf("rank%04d.h5l", r))
	}

	simErr := make(chan error, 1)
	go func() {
		_, err := p.Simulate(context.Background(), dir)
		simErr <- err
	}()

	var last *sparse.Tri
	st, err := p.Stream(context.Background(), paths, StreamConfig{
		T0: 0, T1: days * 24, WindowHours: 24, Poll: 2 * time.Millisecond,
		OnWindow: func(w core.WindowResult) error {
			last = w.Net
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-simErr; err != nil {
		t.Fatal(err)
	}
	if st.Windows != days {
		t.Fatalf("streamed %d windows, want %d", st.Windows, days)
	}
	if st.LateEntries != 0 {
		t.Fatalf("%d late entries from simulator-ordered logs", st.LateEntries)
	}
	net, err := p.Synthesize(context.Background(), paths, 0, days*24)
	if err != nil {
		t.Fatal(err)
	}
	if last == nil || !last.Equal(net.Tri) {
		t.Fatal("live-streamed cumulative network differs from batch synthesis")
	}
}

func TestPipelineDeterministic(t *testing.T) {
	run := func() uint64 {
		p, err := NewPipeline(Config{Persons: 800, Days: 2, Seed: 5, Ranks: 3, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := p.Simulate(context.Background(), t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		net, err := p.Synthesize(context.Background(), sim.LogPaths, 0, 48)
		if err != nil {
			t.Fatal(err)
		}
		return net.Tri.TotalWeight() + uint64(net.Tri.NNZ())<<32
	}
	if run() != run() {
		t.Fatal("same-seed pipelines produced different networks")
	}
}

func TestAgeGroupNetworksPartitionEdges(t *testing.T) {
	p, err := NewPipeline(Config{Persons: 1200, Days: 2, Seed: 13, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := p.Simulate(context.Background(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	net, err := p.Synthesize(context.Background(), sim.LogPaths, 0, 48)
	if err != nil {
		t.Fatal(err)
	}
	per := p.AgeGroupNetworks(net)
	if len(per) != int(synthpop.NumAgeGroups) {
		t.Fatalf("got %d group networks", len(per))
	}
	groups := p.Pop.AgeGroups()
	within := 0
	for k := range net.Tri.I {
		if groups[net.Tri.I[k]] == groups[net.Tri.J[k]] {
			within++
		}
	}
	got := 0
	for gi, n := range per {
		got += n.Tri.NNZ()
		// Every edge in a group network connects two members of that
		// group.
		for k := range n.Tri.I {
			if int(groups[n.Tri.I[k]]) != gi || int(groups[n.Tri.J[k]]) != gi {
				t.Fatalf("group %d network contains out-of-group edge", gi)
			}
		}
	}
	if got != within {
		t.Fatalf("group networks hold %d edges, full network has %d within-group", got, within)
	}
}

func TestSpatialAssignmentCoversAllPlaces(t *testing.T) {
	p, err := NewPipeline(Config{Persons: 1000, Days: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	a := p.SpatialAssignment(4)
	if len(a) != p.Pop.NumPlaces() {
		t.Fatalf("assignment covers %d of %d places", len(a), p.Pop.NumPlaces())
	}
	if err := a.Validate(4); err != nil {
		t.Fatal(err)
	}
}

// TestConfigRejectsNegativeFields: every numeric Config field errors on
// a negative value instead of being coerced to its default.
func TestConfigRejectsNegativeFields(t *testing.T) {
	bad := []Config{
		{Persons: -1, Days: 1},
		{Persons: 10, Days: -1},
		{Persons: 10, Days: 1, Ranks: -2},
		{Persons: 10, Days: 1, Workers: -1},
		{Persons: 10, Days: 1, CacheEntries: -5},
		{Persons: 10, Days: 1, Neighborhoods: -1},
		{Persons: 10, Days: 1, MemBudgetBytes: -64},
	}
	for i, cfg := range bad {
		if _, err := NewPipeline(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
	// Zero values keep their pick-a-default meaning.
	if _, err := NewPipeline(Config{Persons: 50, Days: 1}); err != nil {
		t.Errorf("all-default config rejected: %v", err)
	}
}

// TestPipelineBudgetedSynthesis: MemBudgetBytes flows from the facade
// Config into the synthesis stage and reproduces the unbudgeted network.
func TestPipelineBudgetedSynthesis(t *testing.T) {
	mk := func(budget int64) *Pipeline {
		p, err := NewPipeline(Config{
			Persons: 800, Days: 2, Seed: 23, Ranks: 2, Workers: 2,
			MemBudgetBytes: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p := mk(0)
	sim, err := p.Simulate(context.Background(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Synthesize(context.Background(), sim.LogPaths, 0, 48)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mk(8<<10).Synthesize(context.Background(), sim.LogPaths, 0, 48)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Shards < 2 {
		t.Fatalf("budgeted pipeline used %d shards, want >= 2", got.Stats.Shards)
	}
	if !got.Tri.Equal(want.Tri) {
		t.Fatal("budgeted pipeline network differs from unbudgeted")
	}
}
