// Agegroups: the paper's Figure 5 analysis as a standalone program.
// The population's collocation network is disaggregated by age group —
// edges between groups are removed — and each group's within-group
// degree distribution is characterized. Children's distributions are
// flattened by school class-size caps; adult groups show the
// institutional outliers the paper attributes to universities, prisons
// and retirement communities.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"repro"
	"repro/internal/graph"
	"repro/internal/netstat"
	"repro/internal/synthpop"
)

func main() {
	log.SetFlags(0)

	p, err := repro.NewPipeline(repro.Config{
		Persons: 20000,
		Days:    7,
		Seed:    11,
		Ranks:   8,
	})
	if err != nil {
		log.Fatal(err)
	}
	logDir, err := os.MkdirTemp("", "agegroups-logs-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(logDir)

	sim, err := p.Simulate(context.Background(), logDir)
	if err != nil {
		log.Fatal(err)
	}
	net, err := p.Synthesize(context.Background(), sim.LogPaths, 0, 168)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full network: %d vertices, %d edges\n\n", net.Tri.Vertices(), net.Tri.NNZ())

	counts := p.Pop.AgeGroupCounts()
	for gi, groupNet := range p.AgeGroupNetworks(net) {
		group := synthpop.AgeGroup(gi)
		g := graph.FromTri(groupNet.Tri, p.Pop.NumPersons())
		pts := netstat.Distribution(g.DegreeDistribution(), counts[gi])
		fmt.Printf("age group %-5s  %6d persons  %8d within-group edges  max k %d\n",
			group, counts[gi], groupNet.Tri.NNZ(), g.MaxDegree())
		if len(pts) == 0 {
			continue
		}

		// Characterize the log-log shape: power-law slope and the
		// flatness of the low-degree head.
		if fit, err := netstat.FitPowerLaw(pts); err == nil {
			flat := "heavy-tailed"
			if fit.Alpha < 0.5 {
				flat = "nearly flat (the paper's school-cap signature)"
			}
			fmt.Printf("  power-law fit: α=%.2f R²=%.2f → %s\n", fit.Alpha, fit.R2, flat)
		}

		// Sketch the distribution in log-log bins.
		binned := netstat.LogBin(pts, 3)
		maxFrac := 0.0
		for _, pt := range binned {
			maxFrac = math.Max(maxFrac, pt.Frac)
		}
		for _, pt := range binned {
			w := int(50 * pt.Frac / maxFrac)
			fmt.Printf("  k≈%-5d %s\n", pt.K, hashes(w))
		}
		fmt.Println()
	}
}

func hashes(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
