// Streaming: live network synthesis from a running simulation. The
// quickstart simulates a whole week and then synthesizes once; here
// the simulation and the synthesis run concurrently — the simulator
// makes its event logs durable every simulated hour, and a Stream
// tails those logs and emits one network generation per simulated
// day while the simulation is still running. The final cumulative
// network is bit-identical to a batch synthesis of the same range.
//
// The CLI equivalent is `chisim -flush-every 1` in one terminal and
// `netsynth -follow -snapshot live.gsnap` in another, with netserve
// hot-loading each published generation (see README "Live streaming
// synthesis" and DESIGN.md §14).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/sparse"
)

func main() {
	log.SetFlags(0)

	// 1. Build the pipeline. FlushEvery: 1 makes every rank flush its
	//    event-log cache to a durable chunk each simulated hour, so a
	//    concurrent reader sees entries at a bounded simulated lag.
	const ranks, days = 4, 5
	p, err := repro.NewPipeline(repro.Config{
		Persons:    5000,
		Days:       days,
		Seed:       42,
		Ranks:      ranks,
		FlushEvery: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d persons, %d places, streaming %d days in %d-hour windows\n",
		p.Pop.NumPersons(), p.Pop.NumPlaces(), days, 24)

	// 2. The rank log paths are deterministic, so the stream can open
	//    its tails before the simulation has created the files.
	logDir, err := os.MkdirTemp("", "streaming-logs-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(logDir)
	paths := make([]string, ranks)
	for r := range paths {
		paths[r] = filepath.Join(logDir, fmt.Sprintf("rank%04d.h5l", r))
	}

	// 3. Run the simulation in the background.
	simErr := make(chan error, 1)
	go func() {
		_, err := p.Simulate(context.Background(), logDir)
		simErr <- err
	}()

	// 4. Follow the logs live: one window per simulated day, closed as
	//    soon as the activity horizon proves it complete. OnWindow fires
	//    in order while the simulation is still producing later days.
	start := time.Now()
	var last *sparse.Tri
	st, err := p.Stream(context.Background(), paths, repro.StreamConfig{
		T0: 0, T1: days * 24, WindowHours: 24,
		OnWindow: func(w core.WindowResult) error {
			last = w.Net
			fmt.Printf("  generation %d: hours [%3d,%3d) — window %d edges, rolling network %d edges (t+%s)\n",
				w.Index+1, w.W0, w.W1, w.Window.NNZ(), w.Net.NNZ(),
				time.Since(start).Round(time.Millisecond))
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := <-simErr; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d windows, %d entries (%d late), peak buffer %d entries\n",
		st.Windows, st.Entries, st.LateEntries, st.PeakBuffered)

	// 5. The stream dropped nothing: a batch synthesis of the same
	//    range reproduces the final rolling network bit for bit.
	net, err := p.Synthesize(context.Background(), paths, 0, days*24)
	if err != nil {
		log.Fatal(err)
	}
	if last == nil || !last.Equal(net.Tri) {
		log.Fatal("live-streamed network differs from batch synthesis")
	}
	fmt.Printf("batch synthesis of the same range: %d edges — bit-identical\n", net.Tri.NNZ())
}
