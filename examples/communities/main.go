// Communities: detects emergent macro-structure in the collocation
// network — the "community detection algorithms that can capture
// emergent macro level characteristics" route the paper's introduction
// describes — and compares the detected communities against the
// synthetic city's ground truth (households and neighborhoods) and
// against random network models that lack such structure.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/community"
	"repro/internal/gennet"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	log.SetFlags(0)

	p, err := repro.NewPipeline(repro.Config{
		Persons: 15000,
		Days:    7,
		Seed:    21,
		Ranks:   8,
	})
	if err != nil {
		log.Fatal(err)
	}
	logDir, err := os.MkdirTemp("", "communities-logs-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(logDir)

	sim, err := p.Simulate(context.Background(), logDir)
	if err != nil {
		log.Fatal(err)
	}
	net, err := p.Synthesize(context.Background(), sim.LogPaths, 0, 168)
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph()
	fmt.Printf("collocation network: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	src := rng.New(21)
	labels, q := community.Louvain(g, src)
	fmt.Printf("Louvain: %d communities, modularity %.3f\n", community.NumCommunities(labels), q)
	sizes := community.Sizes(labels)
	if len(sizes) > 8 {
		sizes = sizes[:8]
	}
	fmt.Printf("largest communities: %v\n\n", sizes)

	// Ground truth comparison.
	houses := make([]int, p.Pop.NumPersons())
	neighborhoods := make([]int, p.Pop.NumPersons())
	for i := range p.Pop.Persons {
		houses[i] = int(p.Pop.Persons[i].Home)
		neighborhoods[i] = int(p.Pop.Places[p.Pop.Persons[i].Home].Neighborhood)
	}
	fmt.Printf("alignment with ground truth (normalized mutual information):\n")
	fmt.Printf("  vs %5d households:    NMI %.3f\n", community.NumCommunities(houses), community.NMI(labels, houses))
	fmt.Printf("  vs %5d neighborhoods: NMI %.3f\n", p.Pop.Neighborhoods(), community.NMI(labels, neighborhoods))

	// Contrast: an Erdős–Rényi graph of the same size has no such
	// structure — low modularity, no alignment.
	er, err := gennet.ErdosRenyi(g.NumVertices(), g.NumEdges(), src)
	if err != nil {
		log.Fatal(err)
	}
	ger := graph.FromTri(er, g.NumVertices())
	erLabels, erQ := community.Louvain(ger, src)
	fmt.Printf("\nErdős–Rényi control (same n, m):\n")
	fmt.Printf("  %d communities, modularity %.3f, NMI vs neighborhoods %.3f\n",
		community.NumCommunities(erLabels), erQ, community.NMI(erLabels, neighborhoods))
	fmt.Println("\nthe collocation network's community structure is an emergent property of")
	fmt.Println("the simulated daily activities — it is not present in a random graph and")
	fmt.Println("was never given to the detector as input.")
}
