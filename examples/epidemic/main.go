// Epidemic: the motivating application of the paper's logging pipeline.
// An SEIR disease spreads over the simulated population's collocation
// structure, with each agent's disease state recorded as an extension
// column of the event log; afterwards the infection chain of the last
// case is traced back to patient zero twice — once from the model's
// ground truth, and once from the log files alone — the use-case the
// paper gives for agent event logs ("used to trace back to patient zero,
// the agent who initiated the disease outbreak").
//
// The second act synthesizes the collocation network from those same
// logs and re-runs the outbreak through internal/scenario — the exact
// engine netserve serves at POST /v1/scenario — sweeping transmissibility
// and comparing the baseline against a combined intervention (hub
// closure + vaccination + contact dampening). Running the example
// through the served engine rather than an ad-hoc driver means the two
// paths cannot drift; the printed outcome digest is reproducible across
// machines and worker counts.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/abm"
	"repro/internal/disease"
	"repro/internal/eventlog"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	const persons = 15000
	const days = 21
	p, err := repro.NewPipeline(repro.Config{
		Persons: persons,
		Days:    days,
		Seed:    7,
		Ranks:   8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Patient zero is a school child — classrooms are the densest
	// mixing sites in the synthetic city.
	model := disease.New(persons, disease.Config{
		Beta:            0.015,
		IncubationHours: 48,
		InfectiousHours: 96,
		Seed:            7,
	})
	var patientZero uint32
	for i := range p.Pop.Persons {
		if p.Pop.Persons[i].Age >= 6 && p.Pop.Persons[i].Age <= 14 {
			patientZero = uint32(i)
			break
		}
	}
	model.SeedCase(patientZero)
	fmt.Printf("patient zero: person %d (age %d)\n", patientZero, p.Pop.Persons[patientZero].Age)

	// Run the ABM with the disease hook, logging each agent's disease
	// state as an extension column (paper §III).
	logDir, err := os.MkdirTemp("", "epidemic-logs-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(logDir)
	res, err := abm.Run(context.Background(), abm.Config{
		Pop: p.Pop, Gen: p.Gen, Ranks: 8, Days: days,
		LogDir:   logDir,
		Log:      eventlog.Config{ExtColumns: []string{"disease"}},
		Interact: model.Hook(),
		LogExt: func(person, _ uint32) []uint32 {
			return []uint32{uint32(model.State(person))}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event log: %d entries with disease-state column, %.1f MB\n",
		res.Entries, float64(res.LogBytes)/(1<<20))

	s, e, i, r := model.Counts()
	fmt.Printf("after %d days: S=%d E=%d I=%d R=%d (%d total infections, %.1f%% attack rate)\n",
		days, s, e, i, r, model.TotalInfections(),
		100*float64(model.TotalInfections())/float64(persons))

	fmt.Println("\nepidemic curve (new infections per day):")
	for day, n := range model.EpidemicCurve(days) {
		fmt.Printf("  day %2d: %5d %s\n", day, n, bar(n, 60))
	}

	// Trace the most recently exposed person back to patient zero.
	var last uint32
	var lastHour uint32
	for q := uint32(0); q < persons; q++ {
		if model.State(q) != disease.Susceptible && model.ExposedAt(q) >= lastHour && q != patientZero {
			last, lastHour = q, model.ExposedAt(q)
		}
	}
	chain := model.TraceBack(last)
	fmt.Printf("\nmodel-truth trace-back of person %d (exposed hour %d, day %d):\n", last, lastHour, lastHour/24)
	for idx, pid := range chain {
		role := "case"
		if idx == len(chain)-1 {
			role = "patient zero"
		}
		fmt.Printf("  %2d. person %-6d exposed hour %-5d (%s)\n",
			idx, pid, model.ExposedAt(pid), role)
	}
	fmt.Printf("chain length: %d transmission generations\n", len(chain)-1)

	// Now reconstruct a chain for the same person from the LOG FILES
	// alone (the paper's actual claim: the log contains the complete
	// contact information).
	ix, err := trace.FromFiles(res.LogPaths)
	if err != nil {
		log.Fatal(err)
	}
	exposedAt := make(map[uint32]uint32)
	for q := uint32(0); q < persons; q++ {
		if model.State(q) != disease.Susceptible {
			exposedAt[q] = model.ExposedAt(q)
		}
	}
	logChain, err := trace.TraceToPatientZero(ix, exposedAt, 48, last)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlog-reconstructed trace-back of person %d:\n", last)
	for idx, pid := range logChain {
		contacts := ix.ContactsAt(pid, exposedAt[pid])
		fmt.Printf("  %2d. person %-6d exposed hour %-5d (%d contacts at that hour)\n",
			idx, pid, exposedAt[pid], len(contacts))
	}
	if logChain[len(logChain)-1] == patientZero {
		fmt.Println("log reconstruction reached the true patient zero ✓")
	} else {
		fmt.Printf("log reconstruction ended at person %d (an equally consistent chain)\n",
			logChain[len(logChain)-1])
	}

	// Act two: synthesize the endogenous network from the same logs and
	// replay the outbreak through the scenario engine — the served
	// POST /v1/scenario path — sweeping beta with and without a combined
	// intervention.
	net, err := p.Synthesize(context.Background(), res.LogPaths, 0, uint32(days*24))
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph()
	fmt.Printf("\nsynthesized network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	base := scenario.Spec{
		Process:        scenario.ProcessSEIR,
		Steps:          days,
		Seed:           7,
		Replications:   8,
		Beta:           []float64{0.01, 0.02, 0.04},
		InfectiousDays: []int{4},
		IncubationDays: []int{2},
		// Random seeds, not top-degree: the intervention closes the top
		// hubs, and seeding exactly the closed vertices would kill every
		// outbreak at step zero instead of showing the network effect.
		Seeds: scenario.Seeds{Policy: scenario.SeedRandom, Count: 5},
	}
	intervened := base
	intervened.Intervention = &scenario.Intervention{
		CloseTopDegree:    20,
		VaccinateFraction: 0.3,
		Dampen:            &scenario.Dampen{Num: 1, Den: 2},
	}
	baseRes, err := scenario.Run(context.Background(), g, base, scenario.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ivRes, err := scenario.Run(context.Background(), g, intervened, scenario.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nscenario sweep: SEIR over the synthesized network (8 replications/point)")
	fmt.Println("  beta    attack rate       with intervention (close 20 hubs, vax 30%, dampen 1/2)")
	for i, pt := range baseRes.Outcome.Points {
		iv := ivRes.Outcome.Points[i]
		fmt.Printf("  %.3f   %5.1f%% ± %4.1f%%    %5.1f%% ± %4.1f%%\n",
			pt.Beta, 100*pt.AttackRate.Mean, 100*pt.AttackRate.CI95,
			100*iv.AttackRate.Mean, 100*iv.AttackRate.CI95)
	}
	fmt.Printf("baseline digest:     %s\n", baseRes.Digest)
	fmt.Printf("intervention digest: %s\n", ivRes.Digest)
	fmt.Printf("(submit the same spec to a running netserve at POST /v1/scenario to get the same digests)\n")
}

func bar(n, scale int) string {
	w := n / scale
	if w > 60 {
		w = 60
	}
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
