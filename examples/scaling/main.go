// Scaling: the parallel-performance story of the paper's Section IV in
// one program. It runs the collocation-network synthesis at several
// worker counts (strong scaling), compares the paper's nnz load
// balancing against naive round-robin (the ablation Section IV.A.3 calls
// "crucial"), and compares spatial vs random place partitioning for the
// simulation itself.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/abm"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)

	p, err := repro.NewPipeline(repro.Config{
		Persons: 20000,
		Days:    7,
		Seed:    3,
		Ranks:   8,
	})
	if err != nil {
		log.Fatal(err)
	}
	logDir, err := os.MkdirTemp("", "scaling-logs-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(logDir)

	sim, err := p.Simulate(context.Background(), logDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d persons × %d hours; %d log entries\n\n",
		p.Pop.NumPersons(), sim.Steps, sim.Entries)

	// --- Strong scaling of the synthesis over workers. ---
	fmt.Println("synthesis strong scaling (gram+reduce wall):")
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		_, stats, err := core.SynthesizeFiles(context.Background(), sim.LogPaths, 0, 168, core.Config{Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		wall := stats.Gram + stats.Reduce
		if workers == 1 {
			base = wall
		}
		fmt.Printf("  %2d workers: %8s  speedup %.2fx\n",
			workers, wall.Round(time.Millisecond), float64(base)/float64(wall))
	}

	// --- Load-balancing ablation. ---
	fmt.Println("\nload balancing (8 workers):")
	for _, mode := range []core.BalanceMode{core.BalanceNNZ, core.BalanceNone} {
		_, stats, err := core.SynthesizeFiles(context.Background(), sim.LogPaths, 0, 168, core.Config{Workers: 8, Balance: mode})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s worker-cost imbalance %.2f, idle fraction %.3f\n",
			mode.String()+":", stats.CostImbalance(), stats.IdleFraction())
	}

	// --- Partitioning ablation for the simulation. ---
	fmt.Println("\nplace partitioning (8 ranks, 7 days):")
	edges, loads := partition.TransitionGraph(p.Pop, p.Gen, 7, p.Pop.NumPersons())
	for _, c := range []struct {
		name   string
		assign partition.Assignment
	}{
		{"spatial", partition.Spatial(p.Pop, edges, loads, 8)},
		{"random", partition.Random(p.Pop.NumPlaces(), 8)},
	} {
		res, err := abm.Run(context.Background(), abm.Config{
			Pop: p.Pop, Gen: p.Gen, Ranks: 8, Days: 7, Assign: c.assign,
		})
		if err != nil {
			log.Fatal(err)
		}
		total := res.Migrations + res.LocalMoves
		fmt.Printf("  %-8s %9d inter-rank migrations (%.1f%% of %d moves)\n",
			c.name+":", res.Migrations, 100*float64(res.Migrations)/float64(total), total)
		fmt.Printf("  %-8s per-rank roll-up: %s\n", "", rankRollup(res.PerRank))
	}
}

// rankRollup condenses the simulation's per-rank counters into one
// line: the rank-wall imbalance (max/mean, the Fig. 6/7 figure of
// merit, via telemetry.BusyImbalance) and the per-rank spread of
// outbound migrations.
func rankRollup(per []abm.RankResult) string {
	reports := make([]telemetry.RankReport, len(per))
	minM, maxM := uint64(0), uint64(0)
	for i, rr := range per {
		reports[i] = telemetry.RankReport{Rank: i, BusyNs: int64(rr.WallNs)}
		if i == 0 || rr.Migrations < minM {
			minM = rr.Migrations
		}
		if rr.Migrations > maxM {
			maxM = rr.Migrations
		}
	}
	return fmt.Sprintf("wall imbalance %.2f (max/mean over %d ranks), migrations out %d..%d",
		telemetry.BusyImbalance(reports), len(per), minM, maxM)
}
