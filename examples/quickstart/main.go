// Quickstart: the complete pipeline of the paper in one small program —
// generate a synthetic city, simulate a week of daily activities on
// simulated ranks with event-based logging, synthesize the person
// collocation network from the logs in parallel, and compute the
// headline network statistics.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)

	// 1. Build the pipeline: a 10,000-person city simulated for 7 days
	//    on 8 simulated ranks.
	p, err := repro.NewPipeline(repro.Config{
		Persons: 10000,
		Days:    7,
		Seed:    42,
		Ranks:   8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d persons, %d places, %d neighborhoods\n",
		p.Pop.NumPersons(), p.Pop.NumPlaces(), p.Pop.Neighborhoods())

	// 2. Run the ABM: every person follows their hourly activity
	//    schedule; each rank logs activity changes to its own file.
	logDir, err := os.MkdirTemp("", "quickstart-logs-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(logDir)

	start := time.Now()
	sim, err := p.Simulate(context.Background(), logDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d hours in %s: %d log entries (%.1f MB), %d migrations\n",
		sim.Steps, time.Since(start).Round(time.Millisecond),
		sim.Entries, float64(sim.LogBytes)/(1<<20), sim.Migrations)

	// 3. Synthesize the collocation network for the whole week.
	start = time.Now()
	net, err := p.Synthesize(context.Background(), sim.LogPaths, 0, 168)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network synthesized in %s: %d vertices, %d edges\n",
		time.Since(start).Round(time.Millisecond), net.Tri.Vertices(), net.Tri.NNZ())

	// 4. Analyze: degree distribution head and clustering.
	g := net.Graph()
	fmt.Printf("max degree %d, giant component %d of %d\n",
		g.MaxDegree(), g.GiantComponentSize(), g.NumVertices())

	pts := net.DegreeDistribution()
	fmt.Println("degree distribution head:")
	for _, pt := range pts {
		if pt.K > 7 {
			break
		}
		fmt.Printf("  k=%d: %d persons (%.4f)\n", pt.K, pt.Count, pt.Frac)
	}

	clust := g.ClusteringAll(4)
	mean, n := 0.0, 0
	for v, c := range clust {
		if g.Degree(uint32(v)) >= 2 {
			mean += c
			n++
		}
	}
	fmt.Printf("mean local clustering: %.3f over %d persons\n", mean/float64(n), n)
}
