package abm

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/faultinject"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/synthpop"
)

// resumeFixture is a small deterministic simulation: population,
// generator and an explicit assignment shared by the reference run and
// every crashed/resumed rerun (Run would otherwise recompute it).
type resumeFixture struct {
	pop    *synthpop.Population
	gen    *schedule.Generator
	assign partition.Assignment
	ranks  int
	days   int
}

func newResumeFixture(t *testing.T, seed uint64, ranks, days int) *resumeFixture {
	t.Helper()
	pop, err := synthpop.Generate(synthpop.Config{Persons: 300, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, seed)
	edges, loads := partition.TransitionGraph(pop, gen, days, pop.NumPersons())
	assign := partition.Spatial(pop, edges, loads, ranks)
	return &resumeFixture{pop: pop, gen: gen, assign: assign, ranks: ranks, days: days}
}

func (f *resumeFixture) rankConfig(logPath string) RankConfig {
	return RankConfig{
		Pop: f.pop, Gen: f.gen, Days: f.days, Assign: f.assign,
		LogPath: logPath,
		Log:     eventlog.Config{CacheEntries: 64},
	}
}

// reference runs the full healthy simulation and returns one log path
// per rank.
func (f *resumeFixture) reference(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, f.ranks)
	for r := range paths {
		paths[r] = filepath.Join(dir, fmt.Sprintf("rank%d.h5l", r))
	}
	world := mpi.NewWorld(f.ranks)
	err := world.Run(func(c *mpi.Comm) error {
		_, err := RunRank(context.Background(), mpi.AsTransport(c), f.rankConfig(paths[c.Rank()]))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

type loggedEntry struct {
	e   eventlog.Entry
	ext []uint32
}

func readLog(t *testing.T, path string) []loggedEntry {
	t.Helper()
	r, err := eventlog.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer r.Close()
	var out []loggedEntry
	err = r.ForEach(func(e eventlog.Entry, ext []uint32) error {
		out = append(out, loggedEntry{e: e, ext: append([]uint32{}, ext...)})
		return nil
	})
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return out
}

// expectSameLogs asserts the entry streams of got are bit-identical, in
// order, to those of want.
func expectSameLogs(t *testing.T, want, got []string) {
	t.Helper()
	for r := range want {
		w, g := readLog(t, want[r]), readLog(t, got[r])
		if len(w) != len(g) {
			t.Fatalf("rank %d: %d entries, reference has %d", r, len(g), len(w))
		}
		for i := range w {
			if w[i].e != g[i].e {
				t.Fatalf("rank %d entry %d: %+v, reference %+v", r, i, g[i].e, w[i].e)
			}
		}
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// truncateCopy copies src to dst keeping only the given fraction of its
// bytes — the on-disk shape of a rank killed mid-run (no footer, torn
// tail).
func truncateCopy(t *testing.T, src, dst string, frac float64) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	n := int(float64(len(b)) * frac)
	if err := os.WriteFile(dst, b[:n], 0o644); err != nil {
		t.Fatal(err)
	}
}

// resumeAll collectively resumes every rank and returns the per-rank
// reports.
func (f *resumeFixture) resumeAll(t *testing.T, paths []string) []*ResumeReport {
	t.Helper()
	reports := make([]*ResumeReport, f.ranks)
	var mu sync.Mutex
	world := mpi.NewWorld(f.ranks)
	err := world.Run(func(c *mpi.Comm) error {
		_, rep, err := ResumeRank(context.Background(), mpi.AsTransport(c), f.rankConfig(paths[c.Rank()]))
		mu.Lock()
		reports[c.Rank()] = rep
		mu.Unlock()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return reports
}

// TestResumeRankAfterTruncation is the headline crash test: every
// rank's log is torn at a different byte offset (as a kill -9 mid-run
// would leave them), and ResumeRank must regenerate logs bit-identical
// to an uninterrupted run.
func TestResumeRankAfterTruncation(t *testing.T) {
	f := newResumeFixture(t, 41, 3, 2)
	ref := f.reference(t)

	dir := t.TempDir()
	crashed := make([]string, f.ranks)
	fracs := []float64{0.55, 0.8, 0.35}
	for r := range crashed {
		crashed[r] = filepath.Join(dir, fmt.Sprintf("rank%d.h5l", r))
		truncateCopy(t, ref[r], crashed[r], fracs[r])
	}

	reports := f.resumeAll(t, crashed)

	endHour := uint32(f.days * schedule.HoursPerDay)
	m := reports[0].StartHour
	if m == 0 || m >= endHour {
		t.Fatalf("resume boundary %d not strictly inside the run (0, %d)", m, endHour)
	}
	for r, rep := range reports {
		if rep.StartHour != m {
			t.Fatalf("rank %d resumed at %d, rank 0 at %d", r, rep.StartHour, m)
		}
		if rep.Restarted {
			t.Fatalf("rank %d restarted; wanted a resume", r)
		}
		if rep.LocalMaxStop < m {
			t.Fatalf("rank %d: local max %d below boundary %d", r, rep.LocalMaxStop, m)
		}
	}
	expectSameLogs(t, ref, crashed)
}

// TestResumeRankAfterCrashFlush crashes a live single-rank run at its
// third cache flush via the fault injector, then resumes the genuinely
// crashed (footer-less) file and verifies bit-identical output.
func TestResumeRankAfterCrashFlush(t *testing.T) {
	defer faultinject.Reset()
	f := newResumeFixture(t, 42, 1, 2)
	ref := f.reference(t)

	path := filepath.Join(t.TempDir(), "crashed.h5l")
	faultinject.Arm(eventlog.CrashFlush, 3, faultinject.ErrInjected)
	err := mpi.NewWorld(1).Run(func(c *mpi.Comm) error {
		_, err := RunRank(context.Background(), mpi.AsTransport(c), f.rankConfig(path))
		return err
	})
	faultinject.Reset()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("crashed run error = %v, want injected crash", err)
	}
	if _, err := eventlog.Open(path); err == nil {
		t.Fatal("crashed log unexpectedly has a valid footer")
	}

	reports := f.resumeAll(t, []string{path})
	if reports[0].Restarted {
		t.Fatal("restarted; two full flushes should have been salvageable")
	}
	if reports[0].RecoveredEntries == 0 {
		t.Fatal("no entries salvaged from the crashed log")
	}
	expectSameLogs(t, ref, []string{path})
}

// TestResumeRankRestartsWhenOneLogIsGone: if any rank has nothing
// salvageable the boundary is hour 0 and every rank restarts from
// scratch, still converging on the reference output.
func TestResumeRankRestartsWhenOneLogIsGone(t *testing.T) {
	f := newResumeFixture(t, 43, 3, 1)
	ref := f.reference(t)

	dir := t.TempDir()
	crashed := make([]string, f.ranks)
	for r := range crashed {
		crashed[r] = filepath.Join(dir, fmt.Sprintf("rank%d.h5l", r))
		copyFile(t, ref[r], crashed[r])
	}
	// Rank 1's log is wiped out entirely.
	if err := os.WriteFile(crashed[1], nil, 0o644); err != nil {
		t.Fatal(err)
	}

	reports := f.resumeAll(t, crashed)
	for r, rep := range reports {
		if !rep.Restarted || rep.StartHour != 0 {
			t.Fatalf("rank %d: report %+v, want full restart at hour 0", r, rep)
		}
	}
	expectSameLogs(t, ref, crashed)
}

// TestResumeRankOnCompletedRun: resuming cleanly finished logs is a
// no-op-equivalent — the boundary is the final hour and the regenerated
// tail matches what was trimmed.
func TestResumeRankOnCompletedRun(t *testing.T) {
	f := newResumeFixture(t, 44, 2, 1)
	ref := f.reference(t)

	dir := t.TempDir()
	crashed := make([]string, f.ranks)
	for r := range crashed {
		crashed[r] = filepath.Join(dir, fmt.Sprintf("rank%d.h5l", r))
		copyFile(t, ref[r], crashed[r])
	}

	reports := f.resumeAll(t, crashed)
	endHour := uint32(f.days * schedule.HoursPerDay)
	for r, rep := range reports {
		if rep.StartHour != endHour {
			t.Fatalf("rank %d resumed at %d, want %d", r, rep.StartHour, endHour)
		}
	}
	expectSameLogs(t, ref, crashed)
}

// TestGracefulStopThenResume stops a run mid-flight via the Stop
// channel, checks all ranks leave at the same hour with valid footers,
// and then resumes to a bit-identical finish.
func TestGracefulStopThenResume(t *testing.T) {
	f := newResumeFixture(t, 45, 3, 3)
	ref := f.reference(t)

	dir := t.TempDir()
	paths := make([]string, f.ranks)
	for r := range paths {
		paths[r] = filepath.Join(dir, fmt.Sprintf("rank%d.h5l", r))
	}

	// The stop signal fires deterministically from inside the
	// simulation: the first logged entry whose activity ends at or
	// after hour 30 (on any rank) closes the channel.
	stop := make(chan struct{})
	var once sync.Once
	logExt := func(_ uint32, stopHour uint32) []uint32 {
		if stopHour >= 30 {
			once.Do(func() { close(stop) })
		}
		return nil
	}

	results := make([]RankResult, f.ranks)
	var mu sync.Mutex
	world := mpi.NewWorld(f.ranks)
	err := world.Run(func(c *mpi.Comm) error {
		cfg := f.rankConfig(paths[c.Rank()])
		cfg.Stop = stop
		cfg.LogExt = logExt
		rr, err := RunRank(context.Background(), mpi.AsTransport(c), cfg)
		mu.Lock()
		results[c.Rank()] = rr
		mu.Unlock()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	endHour := uint32(f.days * schedule.HoursPerDay)
	stoppedAt := results[0].StoppedAt
	if stoppedAt < 30 || stoppedAt >= endHour {
		t.Fatalf("stopped at hour %d, want within [30, %d)", stoppedAt, endHour)
	}
	for r, rr := range results {
		if rr.StoppedAt != stoppedAt {
			t.Fatalf("rank %d stopped at %d, rank 0 at %d", r, rr.StoppedAt, stoppedAt)
		}
	}
	// A graceful stop writes valid footers: the logs open cleanly.
	for _, p := range paths {
		r, err := eventlog.Open(p)
		if err != nil {
			t.Fatalf("stopped log %s has no valid footer: %v", p, err)
		}
		r.Close()
	}

	reports := f.resumeAll(t, paths)
	for r, rep := range reports {
		if rep.Restarted {
			t.Fatalf("rank %d restarted after a graceful stop", r)
		}
		if rep.StartHour > stoppedAt {
			t.Fatalf("rank %d resumed at %d, beyond the stop hour %d", r, rep.StartHour, stoppedAt)
		}
	}
	expectSameLogs(t, ref, paths)
}

// TestResumeRankValidation covers the misuse guards.
func TestResumeRankValidation(t *testing.T) {
	f := newResumeFixture(t, 46, 1, 1)
	run := func(mutate func(*RankConfig)) error {
		cfg := f.rankConfig(filepath.Join(t.TempDir(), "log.h5l"))
		mutate(&cfg)
		return mpi.NewWorld(1).Run(func(c *mpi.Comm) error {
			_, _, err := ResumeRank(context.Background(), mpi.AsTransport(c), cfg)
			return err
		})
	}
	if err := run(func(c *RankConfig) { c.LogPath = "" }); err == nil {
		t.Error("no error for missing LogPath")
	}
	if err := run(func(c *RankConfig) { c.FullStateLog = true }); err == nil {
		t.Error("no error for FullStateLog")
	}
	if err := run(func(c *RankConfig) { c.StartHour = 5 }); err == nil {
		t.Error("no error for preset StartHour")
	}
	if err := run(func(c *RankConfig) { c.Days = 0 }); err == nil {
		t.Error("no error for zero Days")
	}
}
