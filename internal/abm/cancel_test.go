package abm

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/schedule"
)

// TestRunCanceledBeforeStart: a pre-canceled context is rejected before
// any simulation work, with an error wrapping context.Canceled.
func TestRunCanceledBeforeStart(t *testing.T) {
	f := newResumeFixture(t, 61, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Config{
		Pop: f.pop, Gen: f.gen, Ranks: f.ranks, Days: f.days, Assign: f.assign,
		LogDir: t.TempDir(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCanceledMidRunIsResumable is the tentpole's simulation-side
// acceptance test: cancelling the context mid-run stops every rank at
// the next hour boundary, leaves logs with valid footers, returns an
// error wrapping context.Canceled — and a later Resume finishes the run
// with logs bit-identical to an uninterrupted one.
func TestRunCanceledMidRunIsResumable(t *testing.T) {
	f := newResumeFixture(t, 62, 3, 2)
	ref := f.reference(t)

	// The interaction hook fires during the simulated hours, so
	// cancelling from it is guaranteed to land mid-run: rank 0 pulls
	// the trigger partway through day 1.
	cancelHour := uint32(30)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logDir := t.TempDir()
	cfg := Config{
		Pop: f.pop, Gen: f.gen, Ranks: f.ranks, Days: f.days, Assign: f.assign,
		LogDir: logDir,
		Log:    eventlog.Config{CacheEntries: 64},
		Interact: func(rank int, hour, place uint32, occupants []uint32) {
			if hour >= cancelHour {
				cancel()
			}
		},
	}
	_, err := Run(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run err = %v, want context.Canceled", err)
	}

	// Every rank's log must have a valid footer: an interrupted run is
	// a stopped run, not a corrupted one.
	endHour := uint32(f.days * schedule.HoursPerDay)
	for r := 0; r < f.ranks; r++ {
		path := filepath.Join(logDir, fmt.Sprintf("rank%04d.h5l", r))
		rd, err := eventlog.Open(path)
		if err != nil {
			t.Fatalf("rank %d log after cancel: %v", r, err)
		}
		rd.Close()
	}

	// Resuming with a healthy context completes the run and the logs
	// match the uninterrupted reference bit for bit.
	cfg.Interact = nil
	res, reports, err := Resume(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Restarted {
		t.Fatal("resume restarted from scratch; the canceled run should have left a usable prefix")
	}
	// The boundary is the minimum over ranks of the last completed
	// stay, so it can trail the cancel hour — but it must be strictly
	// inside the run for the cancellation to have preserved progress.
	if reports[0].StartHour == 0 || reports[0].StartHour >= endHour {
		t.Fatalf("resume boundary %d, want in (0, %d)", reports[0].StartHour, endHour)
	}
	if res.StoppedAt != endHour {
		t.Fatalf("resumed run stopped at %d, want %d", res.StoppedAt, endHour)
	}
	got := make([]string, f.ranks)
	for r := range got {
		got[r] = filepath.Join(logDir, fmt.Sprintf("rank%04d.h5l", r))
	}
	expectSameLogs(t, ref, got)
}
