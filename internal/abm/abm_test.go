package abm

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/synthpop"
)

func testWorld(t testing.TB, persons int) (*synthpop.Population, *schedule.Generator) {
	t.Helper()
	pop, err := synthpop.Generate(synthpop.Config{Persons: persons, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return pop, schedule.NewGenerator(pop, 5)
}

func TestRunValidatesConfig(t *testing.T) {
	pop, gen := testWorld(t, 100)
	if _, err := Run(context.Background(), Config{Gen: gen, Ranks: 1, Days: 1}); err == nil {
		t.Error("missing Pop accepted")
	}
	if _, err := Run(context.Background(), Config{Pop: pop, Gen: gen, Ranks: 0, Days: 1}); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := Run(context.Background(), Config{Pop: pop, Gen: gen, Ranks: 1, Days: 0}); err == nil {
		t.Error("zero days accepted")
	}
	if _, err := Run(context.Background(), Config{Pop: pop, Gen: gen, Ranks: 1, Days: 1, Assign: partition.Assignment{0}}); err == nil {
		t.Error("short assignment accepted")
	}
}

// readAll merges all per-rank logs into an entry multiset.
func readAll(t testing.TB, paths []string) map[eventlog.Entry]int {
	t.Helper()
	got := make(map[eventlog.Entry]int)
	for _, p := range paths {
		r, err := eventlog.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.ForEach(func(e eventlog.Entry, _ []uint32) error {
			got[e]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		r.Close()
	}
	return got
}

// scheduleMultiset computes the expected event multiset directly from
// schedules, clipping the final segment at the horizon.
func scheduleMultiset(pop *synthpop.Population, gen *schedule.Generator, days int) map[eventlog.Entry]int {
	want := make(map[eventlog.Entry]int)
	end := uint32(days * schedule.HoursPerDay)
	for p := 0; p < pop.NumPersons(); p++ {
		for d := 0; d < days; d++ {
			for _, s := range gen.Day(uint32(p), d) {
				stop := s.Stop
				if stop > end {
					stop = end
				}
				want[eventlog.Entry{Start: s.Start, Stop: stop, Person: uint32(p), Activity: s.Activity, Place: s.Place}]++
			}
		}
	}
	return want
}

func TestLoggedEventsMatchSchedules(t *testing.T) {
	pop, gen := testWorld(t, 1500)
	res, err := Run(context.Background(), Config{
		Pop: pop, Gen: gen, Ranks: 4, Days: 2,
		LogDir: t.TempDir(), Log: eventlog.Config{CacheEntries: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, res.LogPaths)
	want := scheduleMultiset(pop, gen, 2)
	if len(got) != len(want) {
		t.Fatalf("distinct entries: got %d, want %d", len(got), len(want))
	}
	for e, n := range want {
		if got[e] != n {
			t.Fatalf("entry %+v: got %d, want %d", e, got[e], n)
		}
	}
}

func TestLogIndependentOfRankCount(t *testing.T) {
	pop, gen := testWorld(t, 1000)
	var sets []map[eventlog.Entry]int
	for _, ranks := range []int{1, 3, 8} {
		res, err := Run(context.Background(), Config{
			Pop: pop, Gen: gen, Ranks: ranks, Days: 2,
			LogDir: filepath.Join(t.TempDir(), "logs"),
			Log:    eventlog.Config{CacheEntries: 100},
		})
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, readAll(t, res.LogPaths))
	}
	for i := 1; i < len(sets); i++ {
		if len(sets[i]) != len(sets[0]) {
			t.Fatalf("rank-count variant %d differs in distinct entries", i)
		}
		for e, n := range sets[0] {
			if sets[i][e] != n {
				t.Fatalf("variant %d: entry %+v count %d != %d", i, e, sets[i][e], n)
			}
		}
	}
}

// TestFlushEveryLeavesEntriesIdentical: hour-aligned durability
// flushes change where chunk boundaries fall, never which entries are
// logged — the invariant that makes `chisim -flush-every` safe to turn
// on for live tailing.
func TestFlushEveryLeavesEntriesIdentical(t *testing.T) {
	pop, gen := testWorld(t, 800)
	base, err := Run(context.Background(), Config{
		Pop: pop, Gen: gen, Ranks: 2, Days: 2,
		LogDir: t.TempDir(), Log: eventlog.Config{CacheEntries: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	flushed, err := Run(context.Background(), Config{
		Pop: pop, Gen: gen, Ranks: 2, Days: 2, FlushEvery: 1,
		LogDir: t.TempDir(), Log: eventlog.Config{CacheEntries: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	if flushed.Flushes <= base.Flushes {
		t.Fatalf("FlushEvery 1 produced %d flushes vs %d without", flushed.Flushes, base.Flushes)
	}
	a, b := readAll(t, base.LogPaths), readAll(t, flushed.LogPaths)
	if len(a) != len(b) {
		t.Fatalf("distinct entries differ: %d vs %d", len(a), len(b))
	}
	for e, n := range a {
		if b[e] != n {
			t.Fatalf("entry %+v: count %d without flushes, %d with", e, n, b[e])
		}
	}
}

func TestLogIndependentOfAssignment(t *testing.T) {
	pop, gen := testWorld(t, 800)
	random := partition.Random(pop.NumPlaces(), 4)
	res1, err := Run(context.Background(), Config{
		Pop: pop, Gen: gen, Ranks: 4, Days: 1, Assign: random,
		LogDir: t.TempDir(), Log: eventlog.Config{CacheEntries: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(context.Background(), Config{
		Pop: pop, Gen: gen, Ranks: 4, Days: 1, // spatial default
		LogDir: t.TempDir(), Log: eventlog.Config{CacheEntries: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := readAll(t, res1.LogPaths), readAll(t, res2.LogPaths)
	if len(a) != len(b) {
		t.Fatal("assignments produced different event sets")
	}
	for e, n := range a {
		if b[e] != n {
			t.Fatalf("entry %+v differs across assignments", e)
		}
	}
}

func TestAgentConservationEveryHour(t *testing.T) {
	pop, gen := testWorld(t, 700)
	var mu sync.Mutex
	perHour := make(map[uint32]int)
	_, err := Run(context.Background(), Config{
		Pop: pop, Gen: gen, Ranks: 4, Days: 2,
		Interact: func(_ int, hour uint32, _ uint32, occ []uint32) {
			mu.Lock()
			perHour[hour] += len(occ)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for h := uint32(0); h < 48; h++ {
		if perHour[h] != pop.NumPersons() {
			t.Fatalf("hour %d: %d agents present, want %d", h, perHour[h], pop.NumPersons())
		}
	}
}

func TestAgentsAreWhereSchedulesSay(t *testing.T) {
	pop, gen := testWorld(t, 500)
	var mu sync.Mutex
	type key struct {
		hour   uint32
		person uint32
	}
	seen := make(map[key]uint32)
	_, err := Run(context.Background(), Config{
		Pop: pop, Gen: gen, Ranks: 3, Days: 1,
		Interact: func(_ int, hour uint32, place uint32, occ []uint32) {
			mu.Lock()
			for _, p := range occ {
				if prev, dup := seen[key{hour, p}]; dup {
					t.Errorf("person %d at two places (%d, %d) at hour %d", p, prev, place, hour)
				}
				seen[key{hour, p}] = place
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := uint32(0); p < uint32(pop.NumPersons()); p++ {
		for h := uint32(0); h < 24; h++ {
			wantPlace, _ := gen.PlaceAt(p, h)
			if got := seen[key{h, p}]; got != wantPlace {
				t.Fatalf("person %d hour %d at place %d, schedule says %d", p, h, got, wantPlace)
			}
		}
	}
}

func TestSpatialAssignmentReducesMigrations(t *testing.T) {
	pop, err := synthpop.Generate(synthpop.Config{Persons: 4000, Seed: 5, Neighborhoods: 8})
	if err != nil {
		t.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, 5)
	edges, loads := partition.TransitionGraph(pop, gen, 3, pop.NumPersons())
	spatial, err := Run(context.Background(), Config{Pop: pop, Gen: gen, Ranks: 4, Days: 3,
		Assign: partition.Spatial(pop, edges, loads, 4)})
	if err != nil {
		t.Fatal(err)
	}
	random, err := Run(context.Background(), Config{Pop: pop, Gen: gen, Ranks: 4, Days: 3,
		Assign: partition.Random(pop.NumPlaces(), 4)})
	if err != nil {
		t.Fatal(err)
	}
	if spatial.Migrations >= random.Migrations {
		t.Fatalf("spatial migrations %d not below random %d", spatial.Migrations, random.Migrations)
	}
	// Total moves are layout-invariant.
	if spatial.Migrations+spatial.LocalMoves != random.Migrations+random.LocalMoves {
		t.Fatalf("total moves differ: %d vs %d",
			spatial.Migrations+spatial.LocalMoves, random.Migrations+random.LocalMoves)
	}
}

func TestEntryCountScalesWithChangesPerDay(t *testing.T) {
	pop, gen := testWorld(t, 2000)
	const days = 7
	res, err := Run(context.Background(), Config{Pop: pop, Gen: gen, Ranks: 2, Days: days, LogDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	perPersonDay := float64(res.Entries) / float64(pop.NumPersons()*days)
	if perPersonDay < 2 || perPersonDay > 8 {
		t.Fatalf("entries/person/day = %.2f, want ≈5", perPersonDay)
	}
	// 20 bytes per entry dominates file size.
	if res.LogBytes < res.Entries*20 {
		t.Fatalf("log bytes %d below payload %d", res.LogBytes, res.Entries*20)
	}
}

func TestFullStateLogIsMuchLarger(t *testing.T) {
	pop, gen := testWorld(t, 300)
	const days = 2
	event, err := Run(context.Background(), Config{Pop: pop, Gen: gen, Ranks: 2, Days: days, LogDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(context.Background(), Config{Pop: pop, Gen: gen, Ranks: 2, Days: days, LogDir: t.TempDir(), FullStateLog: true})
	if err != nil {
		t.Fatal(err)
	}
	wantFull := uint64(pop.NumPersons() * days * schedule.HoursPerDay)
	if full.Entries != wantFull {
		t.Fatalf("full-state entries = %d, want %d", full.Entries, wantFull)
	}
	if full.Entries <= 3*event.Entries {
		t.Fatalf("full-state logging (%d) should dwarf event-based (%d)", full.Entries, event.Entries)
	}
}

func TestNoLogDirMeansNoFiles(t *testing.T) {
	pop, gen := testWorld(t, 200)
	res, err := Run(context.Background(), Config{Pop: pop, Gen: gen, Ranks: 2, Days: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LogPaths) != 0 || res.Entries != 0 || res.LogBytes != 0 {
		t.Fatalf("logging disabled but result reports logs: %+v", res)
	}
}

func TestSingleRankRuns(t *testing.T) {
	pop, gen := testWorld(t, 300)
	res, err := Run(context.Background(), Config{Pop: pop, Gen: gen, Ranks: 1, Days: 1, LogDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Fatalf("single rank migrated %d agents", res.Migrations)
	}
	if res.Entries == 0 {
		t.Fatal("no entries logged")
	}
}

func BenchmarkSimWeek5kPersons4Ranks(b *testing.B) {
	pop, err := synthpop.Generate(synthpop.Config{Persons: 5000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), Config{Pop: pop, Gen: gen, Ranks: 4, Days: 7}); err != nil {
			b.Fatal(err)
		}
	}
}
