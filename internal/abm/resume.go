// Crash recovery for simulation ranks.
//
// A killed run leaves each rank's event log without a footer and with up
// to one cache-worth of entries missing from its tail. ResumeRank turns
// that wreckage back into a running simulation:
//
//  1. Each rank salvages its own log (eventlog.Inspect) and finds the
//     largest Stop hour it still has on disk.
//  2. The ranks agree on a global resume boundary M — the MINIMUM of the
//     per-rank maxima — with one tiny Exchange. Entries are written in
//     nondecreasing Stop order and salvage recovers a prefix, so every
//     rank provably holds ALL entries with Stop < M.
//  3. Each rank trims its log back to the boundary
//     (eventlog.ResumeBefore with Stop >= M) and re-enters the hourly
//     loop at StartHour = M. Agent state at hour M-1 is reconstructed
//     from the deterministic schedule generator, so the rerun regenerates
//     exactly the trimmed-and-lost entries — no duplicates, no gaps — and
//     the finished logs are bit-equivalent in content to an uninterrupted
//     run.
//
// A graceful stop (RankConfig.Stop) produces logs that end cleanly at an
// hour boundary; ResumeRank continues them with zero dropped entries.
package abm

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/eventlog"
	"repro/internal/mpi"
	"repro/internal/schedule"
	"repro/internal/telemetry"
)

// mRecovered shares the fault_recovered_total series with the other
// recovery paths (core's distributed retry): any successful salvage of
// a crashed rank's log counts as one recovered fault.
var mRecovered = telemetry.C("fault_recovered_total")

// ResumeReport describes what ResumeRank salvaged and where it resumed.
type ResumeReport struct {
	// StartHour is the agreed global resume boundary M: simulation
	// recommenced at this hour on every rank.
	StartHour uint32
	// LocalMaxStop is the largest Stop hour salvaged from THIS rank's
	// log before the cross-rank agreement.
	LocalMaxStop uint32
	// RecoveredEntries and DroppedEntries are this rank's salvage
	// counts after trimming to the boundary.
	RecoveredEntries uint64
	DroppedEntries   uint64
	// Restarted reports that nothing usable was salvaged anywhere (some
	// rank's log was empty or unreadable) and the run restarted from
	// hour 0 with fresh logs.
	Restarted bool
}

// Resume continues a crashed or gracefully-stopped multi-goroutine run
// previously started by Run with the same Config (including LogDir,
// which must still hold the per-rank logs). It returns the aggregate
// result of the continued run plus one salvage report per rank.
func Resume(ctx context.Context, cfg Config) (*Result, []*ResumeReport, error) {
	return run(ctx, cfg, true)
}

// ResumeRank continues a crashed or gracefully-stopped simulation rank.
// It must be called collectively: every rank of the transport enters
// ResumeRank with identical Pop/Gen/Days/Assign (as for RunRank) and its
// own LogPath. See the package comment of this file for the protocol.
// Cancellation semantics match RunRank: a canceled ctx stops the rerun
// at the next hour boundary with resumable logs.
func ResumeRank(ctx context.Context, t mpi.Transport, cfg RankConfig) (RankResult, *ResumeReport, error) {
	var rr RankResult
	if err := ctx.Err(); err != nil {
		return rr, nil, fmt.Errorf("abm: resume canceled before start: %w", err)
	}
	if cfg.LogPath == "" {
		return rr, nil, fmt.Errorf("abm: ResumeRank requires a LogPath")
	}
	if cfg.FullStateLog {
		return rr, nil, fmt.Errorf("abm: ResumeRank does not support FullStateLog")
	}
	if cfg.Logger != nil || cfg.StartHour != 0 {
		return rr, nil, fmt.Errorf("abm: ResumeRank computes Logger and StartHour itself")
	}
	if cfg.Days <= 0 {
		return rr, nil, fmt.Errorf("abm: Days must be positive")
	}
	endHour := uint32(cfg.Days * schedule.HoursPerDay)

	// Step 1: local salvage scan (read-only). Any failure — missing
	// file, torn header, wrong schema — degrades to "nothing salvaged",
	// which forces a global restart rather than an inconsistent resume.
	var localMax uint32
	if info, err := eventlog.Inspect(cfg.LogPath); err == nil {
		localMax = info.MaxStop
	}
	if localMax > endHour {
		return rr, nil, fmt.Errorf("abm: log %s reaches hour %d, beyond the configured %d-hour run", cfg.LogPath, localMax, endHour)
	}

	// Step 2: agree on the boundary M = min over ranks.
	var word [4]byte
	binary.LittleEndian.PutUint32(word[:], localMax)
	out := make([][]byte, t.Size())
	for i := range out {
		out[i] = word[:]
	}
	// The boundary agreement must complete collectively even if ctx dies
	// between the entry check above and here, or the ranks would desync;
	// RunRank observes the cancellation at its first hourly alignment.
	in, err := t.Exchange(context.WithoutCancel(ctx), out)
	if err != nil {
		return rr, nil, fmt.Errorf("abm: resume boundary agreement: %w", err)
	}
	m := localMax
	for r, b := range in {
		if len(b) < 4 {
			return rr, nil, fmt.Errorf("abm: resume boundary from rank %d: short blob", r)
		}
		if v := binary.LittleEndian.Uint32(b); v < m {
			m = v
		}
	}

	report := &ResumeReport{StartHour: m, LocalMaxStop: localMax}

	// Step 3: trim to the boundary and rerun from there.
	var logger *eventlog.Logger
	if m == 0 {
		// Nothing salvageable somewhere: restart everywhere, truncating
		// whatever partial logs exist.
		report.Restarted = true
		logger, err = eventlog.Create(cfg.LogPath, cfg.Log)
		if err != nil {
			return rr, report, err
		}
	} else {
		lg, info, err := eventlog.ResumeBefore(cfg.LogPath, cfg.Log, func(e eventlog.Entry, _ []uint32) bool {
			return e.Stop >= m
		})
		if err != nil {
			return rr, report, err
		}
		logger = lg
		report.RecoveredEntries = info.RecoveredEntries
		report.DroppedEntries = info.DroppedEntries
	}

	cfg.Logger = logger
	cfg.StartHour = m
	rr, err = RunRank(ctx, t, cfg)
	if err == nil && !report.Restarted {
		mRecovered.Inc()
	}
	return rr, report, err
}
