// Package abm implements the chiSIM-style agent-based simulation at the
// heart of the paper: every person in the synthetic city follows their
// daily activity schedule at one-hour resolution, moving between places
// and interacting with the other agents present.
//
// The simulation runs on the mpi substrate exactly as the paper's Repast
// HPC deployment does: places are distributed among ranks by a
// partition.Assignment, each rank owns the agents currently located at
// its places, and agents migrate between ranks when their next activity's
// place is owned elsewhere. One event logger per rank records activity
// changes (Section III), so log files shard naturally across ranks.
//
// Because schedules are deterministic per (person, day) and independent
// of rank layout, the multiset of logged events — and therefore every
// network derived from the logs — is identical for any rank count and
// any place assignment. Tests rely on this invariant.
package abm

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/eventlog"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/synthpop"
	"repro/internal/telemetry"
)

// Telemetry series for the simulation stage. Counters are bumped once
// per rank run (batch adds), and the exchange stopwatch costs one
// atomic load per hour when telemetry is disabled.
var (
	mHours           = telemetry.C("abm_hours_total")
	mMigrations      = telemetry.C("abm_migrations_total")
	mLocalMoves      = telemetry.C("abm_local_moves_total")
	mRankRuns        = telemetry.C("abm_rank_runs_total")
	mExchangeSeconds = telemetry.H("abm_exchange_seconds")
)

// InteractFunc is called once per (rank, hour, place) with the agents
// present, after all migrations for the hour have completed. It runs on
// the owning rank's goroutine; implementations must not retain occupants.
type InteractFunc func(rank int, hour uint32, place uint32, occupants []uint32)

// Config configures a simulation run.
type Config struct {
	Pop *synthpop.Population
	Gen *schedule.Generator
	// Ranks is the number of simulated compute processes. Must be
	// positive.
	Ranks int
	// Assign maps each place to its owning rank. If nil, a spatial
	// partition is computed from a schedule sample.
	Assign partition.Assignment
	// Days is the simulated duration in days. Must be positive.
	Days int
	// LogDir, when non-empty, receives one event-log file per rank
	// (rank0000.h5l, ...). When empty, logging is disabled.
	LogDir string
	// Log configures the per-rank loggers (cache size, compression,
	// extension columns are not used by the core loop).
	Log eventlog.Config
	// FullStateLog switches from event-based logging to the naive
	// every-agent-every-step log the paper contrasts against (one entry
	// per agent per hour). Used by the A2 ablation.
	FullStateLog bool
	// Interact, when non-nil, is invoked for every occupied place at
	// every hour.
	Interact InteractFunc
	// LogExt, when non-nil, supplies the extension-column values for
	// each log entry (Section III: "Log entries can be extended by the
	// addition of other integer entries to support the logging of agent
	// properties such as a disease state"). It is called on the owning
	// rank's goroutine at the moment the entry is written; the returned
	// slice length must match Log.ExtColumns.
	LogExt func(person uint32, stopHour uint32) []uint32
	// Stop, when non-nil, requests a graceful stop of all ranks at the
	// next hour boundary once the channel is closed (or receives). The
	// logs are closed with valid footers and the run can be continued
	// later with Resume. See RankConfig.Stop.
	//
	// Stop is the "successful early exit" path: Run returns a nil error
	// with Result.StoppedAt < Days*24. Cancelling the ctx passed to Run
	// stops the simulation through the same hourly alignment but returns
	// an error wrapping context.Canceled; both leave resumable logs.
	Stop <-chan struct{}
	// HourDelay stretches the wall clock for chaos tests; see
	// RankConfig.HourDelay.
	HourDelay time.Duration
	// FlushEvery makes each rank flush its log cache to a durable chunk
	// every N simulated hours; see RankConfig.FlushEvery.
	FlushEvery uint32
}

// Result summarizes a run.
type Result struct {
	// LogPaths are the per-rank log files (empty when logging disabled).
	LogPaths []string
	// Entries is the total number of log entries written.
	Entries uint64
	// Flushes is the total number of chunked disk writes.
	Flushes uint64
	// LogBytes is the total size of the log files on disk.
	LogBytes uint64
	// Migrations counts agent moves between ranks.
	Migrations uint64
	// LocalMoves counts place changes that stayed on-rank.
	LocalMoves uint64
	// Steps is the number of simulated hours.
	Steps int
	// StoppedAt is the hour the run ended: Days*24 for a complete run,
	// less when a graceful stop was requested (identical on all ranks).
	StoppedAt uint32
	// PerRank holds each rank's individual counters (index = rank), the
	// raw material for per-rank imbalance roll-ups.
	PerRank []RankResult
}

// agent is the per-rank state of one person: their current activity
// segment. The schedule generator supplies the next segment on demand.
type agent struct {
	person uint32
	seg    schedule.Segment
}

// Run executes the simulation and returns aggregate statistics.
//
// Cancelling ctx stops every rank at the next hour boundary — logs are
// flushed and closed with valid footers, so the run remains resumable —
// and Run returns an error wrapping context.Canceled.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	res, _, err := run(ctx, cfg, false)
	return res, err
}

// run is the shared engine behind Run and Resume: it validates the
// configuration, derives the partition and per-rank log paths, and
// executes one goroutine per rank. When resume is true each rank goes
// through ResumeRank instead of RunRank and the per-rank salvage
// reports are returned alongside the result.
func run(ctx context.Context, cfg Config, resume bool) (*Result, []*ResumeReport, error) {
	if cfg.Pop == nil || cfg.Gen == nil {
		return nil, nil, fmt.Errorf("abm: Pop and Gen are required")
	}
	if cfg.Ranks <= 0 {
		return nil, nil, fmt.Errorf("abm: Ranks must be positive, got %d", cfg.Ranks)
	}
	if cfg.Days <= 0 {
		return nil, nil, fmt.Errorf("abm: Days must be positive, got %d", cfg.Days)
	}
	if resume && cfg.LogDir == "" {
		return nil, nil, fmt.Errorf("abm: Resume requires a LogDir")
	}
	assign := cfg.Assign
	if assign == nil {
		edges, loads := partition.TransitionGraph(cfg.Pop, cfg.Gen, minInt(cfg.Days, 7), cfg.Pop.NumPersons())
		assign = partition.Spatial(cfg.Pop, edges, loads, cfg.Ranks)
	}
	if len(assign) != cfg.Pop.NumPlaces() {
		return nil, nil, fmt.Errorf("abm: assignment covers %d places, population has %d", len(assign), cfg.Pop.NumPlaces())
	}
	if err := assign.Validate(cfg.Ranks); err != nil {
		return nil, nil, err
	}

	res := &Result{Steps: cfg.Days * schedule.HoursPerDay}
	logging := cfg.LogDir != ""
	if logging {
		if err := os.MkdirAll(cfg.LogDir, 0o755); err != nil {
			return nil, nil, err
		}
		res.LogPaths = make([]string, cfg.Ranks)
		for r := range res.LogPaths {
			res.LogPaths[r] = filepath.Join(cfg.LogDir, fmt.Sprintf("rank%04d.h5l", r))
		}
	}

	results := make([]RankResult, cfg.Ranks)
	var reports []*ResumeReport
	if resume {
		reports = make([]*ResumeReport, cfg.Ranks)
	}
	world := mpi.NewWorld(cfg.Ranks)
	err := world.Run(func(c *mpi.Comm) error {
		logPath := ""
		if logging {
			logPath = res.LogPaths[c.Rank()]
		}
		rc := RankConfig{
			Pop: cfg.Pop, Gen: cfg.Gen, Days: cfg.Days, Assign: assign,
			LogPath: logPath, Log: cfg.Log, FullStateLog: cfg.FullStateLog,
			Interact: cfg.Interact, LogExt: cfg.LogExt, Stop: cfg.Stop,
			HourDelay: cfg.HourDelay, FlushEvery: cfg.FlushEvery,
		}
		var rr RankResult
		var err error
		if resume {
			var rep *ResumeReport
			rr, rep, err = ResumeRank(ctx, mpi.AsTransport(c), rc)
			reports[c.Rank()] = rep
		} else {
			rr, err = RunRank(ctx, mpi.AsTransport(c), rc)
		}
		if err != nil {
			return err
		}
		results[c.Rank()] = rr
		return nil
	})
	if err != nil {
		return nil, reports, err
	}

	res.StoppedAt = results[0].StoppedAt
	res.PerRank = results
	for _, rr := range results {
		res.Entries += rr.Entries
		res.Flushes += rr.Flushes
		res.Migrations += rr.Migrations
		res.LocalMoves += rr.LocalMoves
		res.LogBytes += rr.LogBytes
	}
	return res, reports, nil
}

// RankConfig configures a single rank's simulation for RunRank. Unlike
// Config it names the rank's own log file explicitly (empty disables
// logging on this rank) because in a distributed deployment each process
// owns exactly one file.
type RankConfig struct {
	Pop          *synthpop.Population
	Gen          *schedule.Generator
	Days         int
	Assign       partition.Assignment
	LogPath      string
	Log          eventlog.Config
	FullStateLog bool
	Interact     InteractFunc
	LogExt       func(person uint32, stopHour uint32) []uint32

	// StartHour resumes the simulation at the given hour instead of 0:
	// the state at StartHour is reconstructed deterministically from the
	// schedule generator (each agent's segment is the one active at hour
	// StartHour-1) and only entries with Stop >= StartHour are logged.
	// Used by ResumeRank; must not exceed Days*24.
	StartHour uint32
	// Logger, when non-nil, is used instead of creating a fresh log at
	// LogPath — typically a logger returned by eventlog.ResumeBefore so
	// a crashed rank appends to its salvaged file. RunRank takes
	// ownership and closes it.
	Logger *eventlog.Logger
	// Stop, when non-nil, requests a graceful stop: the channel is
	// polled every simulated hour and a one-byte stop flag is exchanged
	// so ALL ranks leave the hourly loop at the same hour (collectives
	// stay aligned). The loggers are then flushed and closed with valid
	// footers, and the run can later be continued with ResumeRank.
	//
	// Context cancellation rides the same hourly flag exchange (flag 2
	// instead of 1, cancel winning over stop), so a cancelled rank and
	// its peers leave the loop at the same hour with equally valid,
	// resumable logs — the only difference is that RunRank then returns
	// an error wrapping context.Canceled.
	Stop <-chan struct{}
	// HourDelay, when positive, sleeps this long at the top of every
	// simulated hour. It exists for chaos testing: tiny populations
	// finish in milliseconds, too fast for an external fault (kill -9,
	// link cut) to reliably land mid-run, so the supervised smoke tests
	// stretch the wall clock deterministically with it.
	HourDelay time.Duration
	// FlushEvery, when positive, flushes the rank's log cache to a
	// durable chunk every FlushEvery simulated hours (in addition to the
	// cache-full and close-time flushes). A live consumer tailing the
	// log (eventlog.OpenTail) then sees entries at a bounded simulated
	// lag instead of waiting for the cache to fill; the cost is smaller
	// chunks. Zero keeps the batch behavior: flush only when the cache
	// fills or the run ends. The logged entries are identical either
	// way — only the chunk boundaries differ.
	FlushEvery uint32
}

// RankResult is one rank's counters.
type RankResult struct {
	Entries    uint64
	Flushes    uint64
	LogBytes   uint64
	Migrations uint64
	LocalMoves uint64
	// StoppedAt is the hour the run ended: Days*24 for a complete run,
	// less when a graceful stop was requested.
	StoppedAt uint32
	// WallNs is the rank's end-to-end wall clock in nanoseconds,
	// measured by RunRank/ResumeRank; per-rank walls expose simulation
	// load imbalance the summed counters hide.
	WallNs  uint64
	LogPath string
}

// Encode serializes the result for transport to rank 0 in a distributed
// deployment.
func (rr RankResult) Encode() []byte {
	out := make([]byte, 0, 7*8+len(rr.LogPath))
	var u [8]byte
	le := binary.LittleEndian
	for _, v := range [7]uint64{rr.Entries, rr.Flushes, rr.LogBytes, rr.Migrations, rr.LocalMoves, uint64(rr.StoppedAt), rr.WallNs} {
		le.PutUint64(u[:], v)
		out = append(out, u[:]...)
	}
	return append(out, rr.LogPath...)
}

// DecodeRankResult reverses Encode.
func DecodeRankResult(b []byte) (RankResult, error) {
	if len(b) < 7*8 {
		return RankResult{}, fmt.Errorf("abm: rank result blob of %d bytes too short", len(b))
	}
	le := binary.LittleEndian
	return RankResult{
		Entries:    le.Uint64(b[0:]),
		Flushes:    le.Uint64(b[8:]),
		LogBytes:   le.Uint64(b[16:]),
		Migrations: le.Uint64(b[24:]),
		LocalMoves: le.Uint64(b[32:]),
		StoppedAt:  uint32(le.Uint64(b[40:])),
		WallNs:     le.Uint64(b[48:]),
		LogPath:    string(b[56:]),
	}, nil
}

// agentBytes is the wire size of one migrating agent: person ID plus the
// four segment words.
const agentBytes = 20

func encodeAgents(agents []agent) []byte {
	out := make([]byte, 0, len(agents)*agentBytes)
	var u [4]byte
	le := binary.LittleEndian
	for _, a := range agents {
		for _, v := range [5]uint32{a.person, a.seg.Start, a.seg.Stop, a.seg.Activity, a.seg.Place} {
			le.PutUint32(u[:], v)
			out = append(out, u[:]...)
		}
	}
	return out
}

func decodeAgents(b []byte) ([]agent, error) {
	if len(b)%agentBytes != 0 {
		return nil, fmt.Errorf("abm: agent batch of %d bytes is not a multiple of %d", len(b), agentBytes)
	}
	le := binary.LittleEndian
	out := make([]agent, 0, len(b)/agentBytes)
	for off := 0; off < len(b); off += agentBytes {
		out = append(out, agent{
			person: le.Uint32(b[off:]),
			seg: schedule.Segment{
				Start:    le.Uint32(b[off+4:]),
				Stop:     le.Uint32(b[off+8:]),
				Activity: le.Uint32(b[off+12:]),
				Place:    le.Uint32(b[off+16:]),
			},
		})
	}
	return out, nil
}

// RunRank executes one rank of the simulation over any Transport — the
// in-process mpi world or the TCP-based mpinet for true multi-process
// deployment. All ranks must use identical Pop, Gen, Days and Assign
// values; determinism of the schedule generator guarantees they agree on
// every agent's behavior without further coordination.
//
// Cancelling ctx is observed at the next hour boundary: all ranks leave
// the loop together (via the hourly flag exchange), the logger is
// flushed and closed with a valid footer, and RunRank returns the
// partial RankResult alongside an error wrapping context.Canceled. The
// log on disk is indistinguishable from a graceful stop and can be
// continued with ResumeRank.
//
// Interact and LogExt hooks run with process-local state only: in a
// distributed deployment each process sees just the agents it hosts.
func RunRank(ctx context.Context, t mpi.Transport, cfg RankConfig) (rr RankResult, err error) {
	rank, size := t.Rank(), t.Size()
	// The rank span always measures wall time (even with telemetry
	// disabled) so RankResult.WallNs is unconditionally populated; the
	// roll-up counters are one batch add per rank run.
	_, spRank := telemetry.StartSpan(ctx, "abm/rank")
	defer func() {
		spRank.AddCount(int64(rr.Entries))
		rr.WallNs = uint64(spRank.End())
		mRankRuns.Inc()
		if hours := int64(rr.StoppedAt) - int64(cfg.StartHour); hours > 0 {
			mHours.Add(hours)
		}
		mMigrations.Add(int64(rr.Migrations))
		mLocalMoves.Add(int64(rr.LocalMoves))
	}()
	if err := ctx.Err(); err != nil {
		return rr, fmt.Errorf("abm: run canceled before start: %w", err)
	}
	if cfg.Pop == nil || cfg.Gen == nil {
		return rr, fmt.Errorf("abm: Pop and Gen are required")
	}
	if cfg.Days <= 0 {
		return rr, fmt.Errorf("abm: Days must be positive")
	}
	if err := cfg.Assign.Validate(size); err != nil {
		return rr, err
	}
	if len(cfg.Assign) != cfg.Pop.NumPlaces() {
		return rr, fmt.Errorf("abm: assignment covers %d places, population has %d", len(cfg.Assign), cfg.Pop.NumPlaces())
	}
	assign := cfg.Assign
	endHour := uint32(cfg.Days * schedule.HoursPerDay)
	if cfg.StartHour > endHour {
		return rr, fmt.Errorf("abm: StartHour %d beyond end of run (%d hours)", cfg.StartHour, endHour)
	}
	if cfg.StartHour > 0 && cfg.FullStateLog {
		return rr, fmt.Errorf("abm: resume (StartHour > 0) is not supported with FullStateLog")
	}

	logger := cfg.Logger
	if logger == nil && cfg.LogPath != "" {
		var err error
		logger, err = eventlog.Create(cfg.LogPath, cfg.Log)
		if err != nil {
			return rr, err
		}
	}
	if logger != nil {
		defer logger.Close()
		rr.LogPath = cfg.LogPath
	}
	logSegment := func(person uint32, s schedule.Segment, stop uint32) error {
		if logger == nil {
			return nil
		}
		var ext []uint32
		if cfg.LogExt != nil {
			ext = cfg.LogExt(person, stop)
		}
		return logger.Log(eventlog.Entry{
			Start:    s.Start,
			Stop:     stop,
			Person:   person,
			Activity: s.Activity,
			Place:    s.Place,
		}, ext...)
	}

	nextSegment := func(person uint32, hour uint32) schedule.Segment {
		day := int(hour) / schedule.HoursPerDay
		for _, s := range cfg.Gen.Day(person, day) {
			if hour >= s.Start && hour < s.Stop {
				return s
			}
		}
		// Schedules tile the day, so this is unreachable.
		panic(fmt.Sprintf("abm: person %d has no segment at hour %d", person, hour))
	}

	// Initial residency: each rank claims the agents whose current
	// segment is at one of its places. For a fresh run that is the first
	// segment of day 0; for a resumed run it is the segment active at
	// hour StartHour-1, which fully reconstructs the pre-crash state
	// because schedules are deterministic per (person, day).
	baseHour := uint32(0)
	if cfg.StartHour > 0 {
		baseHour = cfg.StartHour - 1
	}
	var local []agent
	for p := range cfg.Pop.Persons {
		seg := nextSegment(uint32(p), baseHour)
		if assign[seg.Place] == rank {
			local = append(local, agent{person: uint32(p), seg: seg})
		}
	}

	// Per-place occupancy, maintained incrementally only when an
	// interaction hook needs it.
	var occupants map[uint32][]uint32
	if cfg.Interact != nil {
		occupants = make(map[uint32][]uint32)
		for _, a := range local {
			occupants[a.seg.Place] = append(occupants[a.seg.Place], a.person)
		}
	}
	removeOccupant := func(place, person uint32) {
		if occupants == nil {
			return
		}
		list := occupants[place]
		for i, v := range list {
			if v == person {
				list[i] = list[len(list)-1]
				occupants[place] = list[:len(list)-1]
				return
			}
		}
	}

	// Under FullStateLog the event-based segment logging is replaced
	// by one entry per agent per hour, emitted at the bottom of the
	// hour loop.
	if cfg.FullStateLog {
		logSegment = func(uint32, schedule.Segment, uint32) error { return nil }
	}

	// Canonical per-hour iteration order. Agents arriving by migration
	// are appended to local in arrival order, which encodes the entire
	// migration history; a resumed rank rebuilds local from scratch and
	// would interleave the same hour's log entries differently. Sorting
	// by person at the top of every hour makes the entry order within an
	// hour a pure function of the simulation state, so resumed logs are
	// bit-identical in content to uninterrupted ones.
	sortLocal := func() {
		sort.Slice(local, func(i, j int) bool { return local[i].person < local[j].person })
	}

	// Cancellation and graceful stops share one alignment mechanism: a
	// one-byte flag exchanged at the top of every hour (0 = continue,
	// 1 = stop requested, 2 = context canceled; the max wins). The
	// alignment exchange itself runs under a context that cannot be
	// canceled — it is precisely the collective that lets every rank
	// agree to leave the loop together, so it must complete even when
	// this rank's ctx is already dead.
	alignCtx := context.WithoutCancel(ctx)
	stopped := false
	canceled := false
	pollFlags := cfg.Stop != nil || ctx.Done() != nil
	rr.StoppedAt = endHour
	for hour := cfg.StartHour; hour < endHour; hour++ {
		sortLocal()
		if cfg.HourDelay > 0 {
			time.Sleep(cfg.HourDelay)
		}
		if pollFlags {
			// Stop/cancel alignment: every rank contributes a flag each
			// hour; if ANY rank saw a signal, all ranks leave the loop
			// at the same hour, keeping the collective schedule
			// identical on every rank.
			var flag byte
			if cfg.Stop != nil {
				select {
				case <-cfg.Stop:
					flag = 1
				default:
				}
			}
			if ctx.Err() != nil {
				flag = 2
			}
			blobs := make([][]byte, size)
			for r := range blobs {
				blobs[r] = []byte{flag}
			}
			sw := telemetry.Clock()
			in, err := t.Exchange(alignCtx, blobs)
			sw.Observe(mExchangeSeconds)
			if err != nil {
				return rr, err
			}
			for _, b := range in {
				if len(b) > 0 && b[0] > flag {
					flag = b[0]
				}
			}
			if flag != 0 {
				stopped = true
				canceled = flag == 2
				rr.StoppedAt = hour
				break
			}
		}
		if hour > 0 {
			// Agents whose segment expired decide their next
			// activity and location.
			outbox := make([][]agent, size)
			kept := local[:0]
			for _, a := range local {
				if a.seg.Stop != hour {
					kept = append(kept, a)
					continue
				}
				if err := logSegment(a.person, a.seg, a.seg.Stop); err != nil {
					return rr, err
				}
				removeOccupant(a.seg.Place, a.person)
				next := nextSegment(a.person, hour)
				owner := assign[next.Place]
				a.seg = next
				if owner == rank {
					kept = append(kept, a)
					rr.LocalMoves++
					if occupants != nil {
						occupants[next.Place] = append(occupants[next.Place], a.person)
					}
				} else {
					outbox[owner] = append(outbox[owner], a)
					rr.Migrations++
				}
			}
			local = kept
			blobs := make([][]byte, size)
			for r := range outbox {
				if len(outbox[r]) > 0 {
					blobs[r] = encodeAgents(outbox[r])
				}
			}
			sw := telemetry.Clock()
			incoming, err := t.Exchange(alignCtx, blobs)
			sw.Observe(mExchangeSeconds)
			if err != nil {
				return rr, err
			}
			for _, blob := range incoming {
				batch, err := decodeAgents(blob)
				if err != nil {
					return rr, err
				}
				for _, a := range batch {
					local = append(local, a)
					if occupants != nil {
						occupants[a.seg.Place] = append(occupants[a.seg.Place], a.person)
					}
				}
			}
		}

		if cfg.Interact != nil {
			for place, who := range occupants {
				if len(who) > 0 {
					cfg.Interact(rank, hour, place, who)
				}
			}
		}

		if cfg.FullStateLog && logger != nil {
			for _, a := range local {
				e := eventlog.Entry{
					Start:    hour,
					Stop:     hour + 1,
					Person:   a.person,
					Activity: a.seg.Activity,
					Place:    a.seg.Place,
				}
				if err := logger.Log(e); err != nil {
					return rr, err
				}
			}
		}

		// Hour-aligned durability for live tailing: everything this hour
		// logged (entries with Stop <= hour) becomes a readable chunk.
		if cfg.FlushEvery > 0 && logger != nil && (hour+1)%cfg.FlushEvery == 0 {
			if err := logger.Flush(); err != nil {
				return rr, err
			}
		}
	}

	// Close out the final in-progress segments. After a graceful stop
	// the in-progress segments are NOT logged: the log then ends at an
	// hour boundary, exactly the shape ResumeRank restarts from.
	if !cfg.FullStateLog && !stopped {
		sortLocal()
		for _, a := range local {
			stop := a.seg.Stop
			if stop > endHour {
				stop = endHour
			}
			if err := logSegment(a.person, a.seg, stop); err != nil {
				return rr, err
			}
		}
	}
	if logger != nil {
		if err := logger.Flush(); err != nil {
			return rr, err
		}
		rr.Entries = logger.Logged()
		rr.Flushes = uint64(logger.Flushes())
		if err := logger.Close(); err != nil {
			return rr, err
		}
		if st, err := os.Stat(cfg.LogPath); err == nil {
			rr.LogBytes = uint64(st.Size())
		}
	}
	if canceled {
		// The logs above were flushed and closed with valid footers
		// before this return, so the run is resumable despite the error.
		cause := ctx.Err()
		if cause == nil {
			// A peer rank was canceled, not this one (distributed mode).
			cause = context.Canceled
		}
		return rr, fmt.Errorf("abm: run canceled at hour %d: %w", rr.StoppedAt, cause)
	}
	return rr, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
