// Package abm implements the chiSIM-style agent-based simulation at the
// heart of the paper: every person in the synthetic city follows their
// daily activity schedule at one-hour resolution, moving between places
// and interacting with the other agents present.
//
// The simulation runs on the mpi substrate exactly as the paper's Repast
// HPC deployment does: places are distributed among ranks by a
// partition.Assignment, each rank owns the agents currently located at
// its places, and agents migrate between ranks when their next activity's
// place is owned elsewhere. One event logger per rank records activity
// changes (Section III), so log files shard naturally across ranks.
//
// Because schedules are deterministic per (person, day) and independent
// of rank layout, the multiset of logged events — and therefore every
// network derived from the logs — is identical for any rank count and
// any place assignment. Tests rely on this invariant.
package abm

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/eventlog"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/synthpop"
)

// InteractFunc is called once per (rank, hour, place) with the agents
// present, after all migrations for the hour have completed. It runs on
// the owning rank's goroutine; implementations must not retain occupants.
type InteractFunc func(rank int, hour uint32, place uint32, occupants []uint32)

// Config configures a simulation run.
type Config struct {
	Pop *synthpop.Population
	Gen *schedule.Generator
	// Ranks is the number of simulated compute processes. Must be
	// positive.
	Ranks int
	// Assign maps each place to its owning rank. If nil, a spatial
	// partition is computed from a schedule sample.
	Assign partition.Assignment
	// Days is the simulated duration in days. Must be positive.
	Days int
	// LogDir, when non-empty, receives one event-log file per rank
	// (rank0000.h5l, ...). When empty, logging is disabled.
	LogDir string
	// Log configures the per-rank loggers (cache size, compression,
	// extension columns are not used by the core loop).
	Log eventlog.Config
	// FullStateLog switches from event-based logging to the naive
	// every-agent-every-step log the paper contrasts against (one entry
	// per agent per hour). Used by the A2 ablation.
	FullStateLog bool
	// Interact, when non-nil, is invoked for every occupied place at
	// every hour.
	Interact InteractFunc
	// LogExt, when non-nil, supplies the extension-column values for
	// each log entry (Section III: "Log entries can be extended by the
	// addition of other integer entries to support the logging of agent
	// properties such as a disease state"). It is called on the owning
	// rank's goroutine at the moment the entry is written; the returned
	// slice length must match Log.ExtColumns.
	LogExt func(person uint32, stopHour uint32) []uint32
}

// Result summarizes a run.
type Result struct {
	// LogPaths are the per-rank log files (empty when logging disabled).
	LogPaths []string
	// Entries is the total number of log entries written.
	Entries uint64
	// Flushes is the total number of chunked disk writes.
	Flushes uint64
	// LogBytes is the total size of the log files on disk.
	LogBytes uint64
	// Migrations counts agent moves between ranks.
	Migrations uint64
	// LocalMoves counts place changes that stayed on-rank.
	LocalMoves uint64
	// Steps is the number of simulated hours.
	Steps int
}

// agent is the per-rank state of one person: their current activity
// segment. The schedule generator supplies the next segment on demand.
type agent struct {
	person uint32
	seg    schedule.Segment
}

// Run executes the simulation and returns aggregate statistics.
func Run(cfg Config) (*Result, error) {
	if cfg.Pop == nil || cfg.Gen == nil {
		return nil, fmt.Errorf("abm: Pop and Gen are required")
	}
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("abm: Ranks must be positive, got %d", cfg.Ranks)
	}
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("abm: Days must be positive, got %d", cfg.Days)
	}
	assign := cfg.Assign
	if assign == nil {
		edges, loads := partition.TransitionGraph(cfg.Pop, cfg.Gen, minInt(cfg.Days, 7), cfg.Pop.NumPersons())
		assign = partition.Spatial(cfg.Pop, edges, loads, cfg.Ranks)
	}
	if len(assign) != cfg.Pop.NumPlaces() {
		return nil, fmt.Errorf("abm: assignment covers %d places, population has %d", len(assign), cfg.Pop.NumPlaces())
	}
	if err := assign.Validate(cfg.Ranks); err != nil {
		return nil, err
	}

	res := &Result{Steps: cfg.Days * schedule.HoursPerDay}
	logging := cfg.LogDir != ""
	if logging {
		if err := os.MkdirAll(cfg.LogDir, 0o755); err != nil {
			return nil, err
		}
		res.LogPaths = make([]string, cfg.Ranks)
		for r := range res.LogPaths {
			res.LogPaths[r] = filepath.Join(cfg.LogDir, fmt.Sprintf("rank%04d.h5l", r))
		}
	}

	results := make([]RankResult, cfg.Ranks)
	world := mpi.NewWorld(cfg.Ranks)
	err := world.Run(func(c *mpi.Comm) error {
		logPath := ""
		if logging {
			logPath = res.LogPaths[c.Rank()]
		}
		rr, err := RunRank(mpi.AsTransport(c), RankConfig{
			Pop: cfg.Pop, Gen: cfg.Gen, Days: cfg.Days, Assign: assign,
			LogPath: logPath, Log: cfg.Log, FullStateLog: cfg.FullStateLog,
			Interact: cfg.Interact, LogExt: cfg.LogExt,
		})
		if err != nil {
			return err
		}
		results[c.Rank()] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, rr := range results {
		res.Entries += rr.Entries
		res.Flushes += rr.Flushes
		res.Migrations += rr.Migrations
		res.LocalMoves += rr.LocalMoves
		res.LogBytes += rr.LogBytes
	}
	return res, nil
}

// RankConfig configures a single rank's simulation for RunRank. Unlike
// Config it names the rank's own log file explicitly (empty disables
// logging on this rank) because in a distributed deployment each process
// owns exactly one file.
type RankConfig struct {
	Pop          *synthpop.Population
	Gen          *schedule.Generator
	Days         int
	Assign       partition.Assignment
	LogPath      string
	Log          eventlog.Config
	FullStateLog bool
	Interact     InteractFunc
	LogExt       func(person uint32, stopHour uint32) []uint32
}

// RankResult is one rank's counters.
type RankResult struct {
	Entries    uint64
	Flushes    uint64
	LogBytes   uint64
	Migrations uint64
	LocalMoves uint64
	LogPath    string
}

// Encode serializes the result for transport to rank 0 in a distributed
// deployment.
func (rr RankResult) Encode() []byte {
	out := make([]byte, 0, 5*8+len(rr.LogPath))
	var u [8]byte
	le := binary.LittleEndian
	for _, v := range [5]uint64{rr.Entries, rr.Flushes, rr.LogBytes, rr.Migrations, rr.LocalMoves} {
		le.PutUint64(u[:], v)
		out = append(out, u[:]...)
	}
	return append(out, rr.LogPath...)
}

// DecodeRankResult reverses Encode.
func DecodeRankResult(b []byte) (RankResult, error) {
	if len(b) < 5*8 {
		return RankResult{}, fmt.Errorf("abm: rank result blob of %d bytes too short", len(b))
	}
	le := binary.LittleEndian
	return RankResult{
		Entries:    le.Uint64(b[0:]),
		Flushes:    le.Uint64(b[8:]),
		LogBytes:   le.Uint64(b[16:]),
		Migrations: le.Uint64(b[24:]),
		LocalMoves: le.Uint64(b[32:]),
		LogPath:    string(b[40:]),
	}, nil
}

// agentBytes is the wire size of one migrating agent: person ID plus the
// four segment words.
const agentBytes = 20

func encodeAgents(agents []agent) []byte {
	out := make([]byte, 0, len(agents)*agentBytes)
	var u [4]byte
	le := binary.LittleEndian
	for _, a := range agents {
		for _, v := range [5]uint32{a.person, a.seg.Start, a.seg.Stop, a.seg.Activity, a.seg.Place} {
			le.PutUint32(u[:], v)
			out = append(out, u[:]...)
		}
	}
	return out
}

func decodeAgents(b []byte) ([]agent, error) {
	if len(b)%agentBytes != 0 {
		return nil, fmt.Errorf("abm: agent batch of %d bytes is not a multiple of %d", len(b), agentBytes)
	}
	le := binary.LittleEndian
	out := make([]agent, 0, len(b)/agentBytes)
	for off := 0; off < len(b); off += agentBytes {
		out = append(out, agent{
			person: le.Uint32(b[off:]),
			seg: schedule.Segment{
				Start:    le.Uint32(b[off+4:]),
				Stop:     le.Uint32(b[off+8:]),
				Activity: le.Uint32(b[off+12:]),
				Place:    le.Uint32(b[off+16:]),
			},
		})
	}
	return out, nil
}

// RunRank executes one rank of the simulation over any Transport — the
// in-process mpi world or the TCP-based mpinet for true multi-process
// deployment. All ranks must use identical Pop, Gen, Days and Assign
// values; determinism of the schedule generator guarantees they agree on
// every agent's behavior without further coordination.
//
// Interact and LogExt hooks run with process-local state only: in a
// distributed deployment each process sees just the agents it hosts.
func RunRank(t mpi.Transport, cfg RankConfig) (RankResult, error) {
	rank, size := t.Rank(), t.Size()
	var rr RankResult
	if cfg.Pop == nil || cfg.Gen == nil {
		return rr, fmt.Errorf("abm: Pop and Gen are required")
	}
	if cfg.Days <= 0 {
		return rr, fmt.Errorf("abm: Days must be positive")
	}
	if err := cfg.Assign.Validate(size); err != nil {
		return rr, err
	}
	if len(cfg.Assign) != cfg.Pop.NumPlaces() {
		return rr, fmt.Errorf("abm: assignment covers %d places, population has %d", len(cfg.Assign), cfg.Pop.NumPlaces())
	}
	assign := cfg.Assign
	endHour := uint32(cfg.Days * schedule.HoursPerDay)

	var logger *eventlog.Logger
	if cfg.LogPath != "" {
		var err error
		logger, err = eventlog.Create(cfg.LogPath, cfg.Log)
		if err != nil {
			return rr, err
		}
		defer logger.Close()
		rr.LogPath = cfg.LogPath
	}
	logSegment := func(person uint32, s schedule.Segment, stop uint32) error {
		if logger == nil {
			return nil
		}
		var ext []uint32
		if cfg.LogExt != nil {
			ext = cfg.LogExt(person, stop)
		}
		return logger.Log(eventlog.Entry{
			Start:    s.Start,
			Stop:     stop,
			Person:   person,
			Activity: s.Activity,
			Place:    s.Place,
		}, ext...)
	}

	// Initial residency: each rank claims the agents whose first
	// segment is at one of its places.
	var local []agent
	for p := range cfg.Pop.Persons {
		seg := cfg.Gen.Day(uint32(p), 0)[0]
		if assign[seg.Place] == rank {
			local = append(local, agent{person: uint32(p), seg: seg})
		}
	}

	// Per-place occupancy, maintained incrementally only when an
	// interaction hook needs it.
	var occupants map[uint32][]uint32
	if cfg.Interact != nil {
		occupants = make(map[uint32][]uint32)
		for _, a := range local {
			occupants[a.seg.Place] = append(occupants[a.seg.Place], a.person)
		}
	}
	removeOccupant := func(place, person uint32) {
		if occupants == nil {
			return
		}
		list := occupants[place]
		for i, v := range list {
			if v == person {
				list[i] = list[len(list)-1]
				occupants[place] = list[:len(list)-1]
				return
			}
		}
	}

	nextSegment := func(person uint32, hour uint32) schedule.Segment {
		day := int(hour) / schedule.HoursPerDay
		for _, s := range cfg.Gen.Day(person, day) {
			if hour >= s.Start && hour < s.Stop {
				return s
			}
		}
		// Schedules tile the day, so this is unreachable.
		panic(fmt.Sprintf("abm: person %d has no segment at hour %d", person, hour))
	}

	// Under FullStateLog the event-based segment logging is replaced
	// by one entry per agent per hour, emitted at the bottom of the
	// hour loop.
	if cfg.FullStateLog {
		logSegment = func(uint32, schedule.Segment, uint32) error { return nil }
	}

	for hour := uint32(0); hour < endHour; hour++ {
		if hour > 0 {
			// Agents whose segment expired decide their next
			// activity and location.
			outbox := make([][]agent, size)
			kept := local[:0]
			for _, a := range local {
				if a.seg.Stop != hour {
					kept = append(kept, a)
					continue
				}
				if err := logSegment(a.person, a.seg, a.seg.Stop); err != nil {
					return rr, err
				}
				removeOccupant(a.seg.Place, a.person)
				next := nextSegment(a.person, hour)
				owner := assign[next.Place]
				a.seg = next
				if owner == rank {
					kept = append(kept, a)
					rr.LocalMoves++
					if occupants != nil {
						occupants[next.Place] = append(occupants[next.Place], a.person)
					}
				} else {
					outbox[owner] = append(outbox[owner], a)
					rr.Migrations++
				}
			}
			local = kept
			blobs := make([][]byte, size)
			for r := range outbox {
				if len(outbox[r]) > 0 {
					blobs[r] = encodeAgents(outbox[r])
				}
			}
			incoming, err := t.Exchange(blobs)
			if err != nil {
				return rr, err
			}
			for _, blob := range incoming {
				batch, err := decodeAgents(blob)
				if err != nil {
					return rr, err
				}
				for _, a := range batch {
					local = append(local, a)
					if occupants != nil {
						occupants[a.seg.Place] = append(occupants[a.seg.Place], a.person)
					}
				}
			}
		}

		if cfg.Interact != nil {
			for place, who := range occupants {
				if len(who) > 0 {
					cfg.Interact(rank, hour, place, who)
				}
			}
		}

		if cfg.FullStateLog && logger != nil {
			for _, a := range local {
				e := eventlog.Entry{
					Start:    hour,
					Stop:     hour + 1,
					Person:   a.person,
					Activity: a.seg.Activity,
					Place:    a.seg.Place,
				}
				if err := logger.Log(e); err != nil {
					return rr, err
				}
			}
		}
	}

	// Close out the final in-progress segments.
	if !cfg.FullStateLog {
		for _, a := range local {
			stop := a.seg.Stop
			if stop > endHour {
				stop = endHour
			}
			if err := logSegment(a.person, a.seg, stop); err != nil {
				return rr, err
			}
		}
	}
	if logger != nil {
		if err := logger.Flush(); err != nil {
			return rr, err
		}
		rr.Entries = logger.Logged()
		rr.Flushes = uint64(logger.Flushes())
		if err := logger.Close(); err != nil {
			return rr, err
		}
		if st, err := os.Stat(cfg.LogPath); err == nil {
			rr.LogBytes = uint64(st.Size())
		}
	}
	return rr, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
