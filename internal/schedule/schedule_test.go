package schedule

import (
	"testing"
	"testing/quick"

	"repro/internal/synthpop"
)

func testPop(t testing.TB, persons int) *synthpop.Population {
	t.Helper()
	pop, err := synthpop.Generate(synthpop.Config{Persons: persons, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestEveryDayTilesExactly(t *testing.T) {
	pop := testPop(t, 3000)
	g := NewGenerator(pop, 1)
	for p := uint32(0); p < uint32(pop.NumPersons()); p += 7 {
		for day := 0; day < 7; day++ {
			segs := g.Day(p, day)
			if err := Validate(segs, day); err != nil {
				t.Fatalf("person %d day %d: %v (segments %+v)", p, day, err, segs)
			}
		}
	}
}

func TestScheduleDeterministicPerPersonDay(t *testing.T) {
	pop := testPop(t, 1000)
	g1 := NewGenerator(pop, 5)
	g2 := NewGenerator(pop, 5)
	for p := uint32(0); p < 200; p++ {
		a := g1.Day(p, 3)
		b := g2.Day(p, 3)
		if len(a) != len(b) {
			t.Fatalf("person %d: lengths differ", p)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("person %d segment %d: %+v vs %+v", p, i, a[i], b[i])
			}
		}
	}
}

func TestScheduleIndependentOfQueryOrder(t *testing.T) {
	pop := testPop(t, 500)
	g := NewGenerator(pop, 5)
	// Query day 4 then day 2, compare with fresh generator querying in
	// the opposite order: schedules must not depend on call history.
	a4 := g.Day(10, 4)
	a2 := g.Day(10, 2)
	h := NewGenerator(pop, 5)
	b2 := h.Day(10, 2)
	b4 := h.Day(10, 4)
	for i := range a4 {
		if a4[i] != b4[i] {
			t.Fatal("day 4 schedule depends on query order")
		}
	}
	for i := range a2 {
		if a2[i] != b2[i] {
			t.Fatal("day 2 schedule depends on query order")
		}
	}
}

func TestSeedChangesSchedules(t *testing.T) {
	pop := testPop(t, 1000)
	g1 := NewGenerator(pop, 1)
	g2 := NewGenerator(pop, 2)
	diff := false
	for p := uint32(0); p < 300 && !diff; p++ {
		a, b := g1.Day(p, 0), g2.Day(p, 0)
		if len(a) != len(b) {
			diff = true
			break
		}
		for i := range a {
			if a[i] != b[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("seeds 1 and 2 produced identical schedules for 300 persons")
	}
}

func TestChildrenAttendTheirClassroomOnWeekdays(t *testing.T) {
	pop := testPop(t, 5000)
	g := NewGenerator(pop, 7)
	checked := 0
	for i := range pop.Persons {
		p := &pop.Persons[i]
		if p.Daytime == synthpop.NoPlace || pop.Places[p.Daytime].Type != synthpop.Classroom {
			continue
		}
		segs := g.Day(p.ID, 1) // Tuesday
		foundSchool := false
		for _, s := range segs {
			if s.Activity == ActSchool {
				foundSchool = true
				if s.Place != p.Daytime {
					t.Fatalf("person %d attends classroom %d, assigned %d", i, s.Place, p.Daytime)
				}
			}
		}
		if !foundSchool {
			t.Fatalf("school-age person %d has no school segment on a weekday", i)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no students checked")
	}
}

func TestNoSchoolOrWorkOnWeekends(t *testing.T) {
	pop := testPop(t, 5000)
	g := NewGenerator(pop, 7)
	for p := uint32(0); p < uint32(pop.NumPersons()); p += 3 {
		for _, day := range []int{5, 6} { // Saturday, Sunday
			for _, s := range g.Day(p, day) {
				if s.Activity == ActSchool || s.Activity == ActWork {
					t.Fatalf("person %d has %s on weekend day %d", p, ActivityName(s.Activity), day)
				}
			}
		}
	}
}

func TestInstitutionalizedStayAllDay(t *testing.T) {
	pop := testPop(t, 100000)
	g := NewGenerator(pop, 7)
	found := false
	for i := range pop.Persons {
		p := &pop.Persons[i]
		ht := pop.Places[p.Home].Type
		if ht != synthpop.Prison && ht != synthpop.RetirementHome {
			continue
		}
		found = true
		segs := g.Day(p.ID, 2)
		if len(segs) != 1 || segs[0].Activity != ActInstitution || segs[0].Place != p.Home {
			t.Fatalf("institutionalized person %d schedule: %+v", i, segs)
		}
	}
	if !found {
		t.Fatal("no institutionalized persons in test population")
	}
}

func TestWorkersWorkAtTheirWorkplace(t *testing.T) {
	pop := testPop(t, 5000)
	g := NewGenerator(pop, 7)
	workers := 0
	withWork := 0
	for i := range pop.Persons {
		p := &pop.Persons[i]
		if p.Daytime == synthpop.NoPlace {
			continue
		}
		dt := pop.Places[p.Daytime].Type
		if dt != synthpop.Workplace && dt != synthpop.Hospital {
			continue
		}
		workers++
		for _, s := range g.Day(p.ID, 0) {
			if s.Activity == ActWork {
				withWork++
				if s.Place != p.Daytime {
					t.Fatalf("worker %d works at %d, assigned %d", i, s.Place, p.Daytime)
				}
				break
			}
		}
	}
	if workers == 0 || withWork != workers {
		t.Fatalf("%d of %d workers have a weekday work segment", withWork, workers)
	}
}

func TestMeanChangesPerDayNearFive(t *testing.T) {
	pop := testPop(t, 20000)
	g := NewGenerator(pop, 7)
	mean := g.MeanChangesPerDay(7, 2000)
	// Paper assumes ~5 activity changes per person per day.
	if mean < 2.5 || mean > 7 {
		t.Fatalf("mean changes/day = %.2f, want roughly 5", mean)
	}
}

func TestPlaceAtConsistentWithDay(t *testing.T) {
	pop := testPop(t, 2000)
	g := NewGenerator(pop, 13)
	for p := uint32(0); p < 100; p++ {
		for day := 0; day < 3; day++ {
			segs := g.Day(p, day)
			for _, s := range segs {
				for h := s.Start; h < s.Stop; h++ {
					place, act := g.PlaceAt(p, h)
					if place != s.Place || act != s.Activity {
						t.Fatalf("PlaceAt(%d,%d) = (%d,%d), want (%d,%d)", p, h, place, act, s.Place, s.Activity)
					}
				}
			}
		}
	}
}

func TestSegmentsNeverRepeatPlaceActivity(t *testing.T) {
	// Adjacent segments with the same (activity, place) should have been
	// merged — that is what event-based logging requires.
	pop := testPop(t, 3000)
	g := NewGenerator(pop, 17)
	for p := uint32(0); p < uint32(pop.NumPersons()); p += 5 {
		for day := 0; day < 7; day++ {
			segs := g.Day(p, day)
			for i := 1; i < len(segs); i++ {
				if segs[i].Activity == segs[i-1].Activity && segs[i].Place == segs[i-1].Place {
					t.Fatalf("person %d day %d: unmerged adjacent segments %+v", p, day, segs)
				}
			}
		}
	}
}

func TestIsWeekend(t *testing.T) {
	for day, want := range map[int]bool{0: false, 4: false, 5: true, 6: true, 7: false, 12: true, 13: true} {
		if IsWeekend(day) != want {
			t.Errorf("IsWeekend(%d) = %v", day, IsWeekend(day))
		}
	}
}

func TestActivityName(t *testing.T) {
	if ActivityName(ActHome) != "home" || ActivityName(ActWork) != "work" {
		t.Fatal("activity names wrong")
	}
	if ActivityName(999) == "" {
		t.Fatal("unknown activity should format, not vanish")
	}
}

// Property: schedules tile the day for arbitrary seeds, persons and days.
func TestQuickTiling(t *testing.T) {
	pop := testPop(t, 2000)
	f := func(seed uint64, person uint16, day uint8) bool {
		g := NewGenerator(pop, seed)
		p := uint32(person) % uint32(pop.NumPersons())
		d := int(day % 28)
		return Validate(g.Day(p, d), d) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: all referenced places exist and all activities are known.
func TestQuickPlacesAndActivitiesValid(t *testing.T) {
	pop := testPop(t, 2000)
	g := NewGenerator(pop, 23)
	f := func(person uint16, day uint8) bool {
		p := uint32(person) % uint32(pop.NumPersons())
		for _, s := range g.Day(p, int(day%14)) {
			if int(s.Place) >= pop.NumPlaces() || s.Activity >= NumActivities {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDay(b *testing.B) {
	pop, err := synthpop.Generate(synthpop.Config{Persons: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	g := NewGenerator(pop, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Day(uint32(i%10000), i%28)
	}
}
