// Package schedule generates daily activity schedules for synthetic
// persons, the "a priori inputs" of the paper's ABM: a daily schedule for
// each person specifying the activity and associated location with
// one-hour time resolution.
//
// Schedules are generated lazily and deterministically per (person, day):
// the generator derives an independent random stream from (seed, person,
// day), so a person's schedule does not depend on how places are
// partitioned across ranks or in which order agents are stepped. This is
// the property that makes the end-to-end pipeline's output independent of
// the parallel layout — the invariant the synthesis tests check.
//
// Templates follow the person's demographic (school for children with
// capacity-capped classrooms, work for employed adults, retail and
// leisure trips, all-day institutional presence for prison/retirement
// residents), with an average of about five activity changes per person
// per day, matching the paper's log-sizing estimate.
package schedule

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/synthpop"
)

// Activity identifiers recorded in the event log.
const (
	ActHome uint32 = iota
	ActSchool
	ActWork
	ActShop
	ActLeisure
	ActInstitution
	NumActivities
)

var activityNames = [...]string{"home", "school", "work", "shop", "leisure", "institution"}

// ActivityName returns a human-readable label for an activity ID.
func ActivityName(a uint32) string {
	if int(a) < len(activityNames) {
		return activityNames[a]
	}
	return fmt.Sprintf("activity(%d)", a)
}

// HoursPerDay is the paper's one-hour time resolution.
const HoursPerDay = 24

// Segment is one contiguous activity block: the person performs Activity
// at Place during absolute hours [Start, Stop).
type Segment struct {
	Start    uint32
	Stop     uint32
	Activity uint32
	Place    uint32
}

// Generator produces per-person daily schedules.
type Generator struct {
	pop  *synthpop.Population
	seed uint64
}

// NewGenerator returns a schedule generator over pop, deterministic in
// seed.
func NewGenerator(pop *synthpop.Population, seed uint64) *Generator {
	return &Generator{pop: pop, seed: seed}
}

// dayRNG derives the independent stream for (person, day).
func (g *Generator) dayRNG(person uint32, day int) *rng.Source {
	// SplitMix-style mixing of the three coordinates.
	h := g.seed
	h ^= uint64(person) * 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h ^= uint64(day) * 0x94d049bb133111eb
	h = (h ^ (h >> 27)) * 0xff51afd7ed558ccd
	return rng.New(h ^ (h >> 31))
}

// homebodyShare is the fraction of persons without a daytime anchor who
// rarely leave home. This heterogeneity produces the large population of
// very low weekly degree (the flat head of the paper's Figure 3: degrees
// 1-7 each held by ~1e5 of 2.9M persons — people whose only weekly
// contacts are their household).
const homebodyShare = 0.45

// IsHomebody reports whether person has the low-mobility trait. The
// trait is a pure function of (seed, person), stable across days.
func (g *Generator) IsHomebody(person uint32) bool {
	h := g.seed ^ 0xabcdef123456789
	h ^= uint64(person) * 0xd6e8feb86659fd93
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return float64(h>>11)/(1<<53) < homebodyShare
}

// visitHome picks another person's home to visit (social call). Falls
// back to the visitor's own home when the draw lands on an institution.
func (g *Generator) visitHome(person uint32, r *rng.Source) uint32 {
	for attempt := 0; attempt < 4; attempt++ {
		other := uint32(r.Intn(g.pop.NumPersons()))
		if other == person {
			continue
		}
		home := g.pop.Persons[other].Home
		if g.pop.Places[home].Type == synthpop.Home {
			return home
		}
	}
	return g.pop.Persons[person].Home
}

// IsWeekend reports whether the given simulation day (0-based) falls on
// the weekend. Day 0 is a Monday.
func IsWeekend(day int) bool {
	d := day % 7
	return d == 5 || d == 6
}

// Day returns person's schedule for the given day as contiguous segments
// covering [day*24, (day+1)*24).
func (g *Generator) Day(person uint32, day int) []Segment {
	p := &g.pop.Persons[person]
	r := g.dayRNG(person, day)
	base := uint32(day * HoursPerDay)

	homeType := g.pop.Places[p.Home].Type
	if homeType == synthpop.Prison || homeType == synthpop.RetirementHome {
		return []Segment{{Start: base, Stop: base + HoursPerDay, Activity: ActInstitution, Place: p.Home}}
	}
	// Children below school age have no independent schedule: they stay
	// home. Their weekly contacts are exactly their household, which is
	// one of the sources of the clustering-coefficient-1 population in
	// the paper's Figure 4.
	if p.Age < 5 {
		return []Segment{{Start: base, Stop: base + HoursPerDay, Activity: ActHome, Place: p.Home}}
	}

	var segs []Segment
	add := func(stop uint32, act uint32, place uint32) {
		start := base
		if n := len(segs); n > 0 {
			start = segs[n-1].Stop
		}
		if stop <= start {
			return
		}
		// Merge with the previous segment when activity and place repeat,
		// mirroring the event-based logger's "log only changes" rule.
		if n := len(segs); n > 0 && segs[n-1].Activity == act && segs[n-1].Place == place {
			segs[n-1].Stop = stop
			return
		}
		segs = append(segs, Segment{Start: start, Stop: stop, Activity: act, Place: place})
	}
	retail := func() uint32 {
		neigh := g.pop.HomeNeighborhood(person)
		// Mostly local retail, occasionally a trip to another
		// neighborhood — the cross-neighborhood links of the network.
		if r.Bool(0.15) && g.pop.Neighborhoods() > 1 {
			neigh = r.Intn(g.pop.Neighborhoods())
		}
		list := g.pop.RetailByNeighborhood[neigh]
		return list[r.Intn(len(list))]
	}

	weekend := IsWeekend(day)
	daytimeType := synthpop.PlaceType(0xff)
	if p.Daytime != synthpop.NoPlace {
		daytimeType = g.pop.Places[p.Daytime].Type
	}

	switch {
	case daytimeType == synthpop.Classroom && !weekend:
		// School day: home, school, optional after-school trip, home.
		schoolStart := base + 8
		schoolEnd := base + 15
		if p.Age >= 15 {
			schoolEnd = base + 16
		}
		add(schoolStart, ActHome, p.Home)
		add(schoolEnd, ActSchool, p.Daytime)
		if r.Bool(0.35) {
			add(schoolEnd+1+uint32(r.Intn(2)), ActLeisure, retail())
		}
		add(base+HoursPerDay, ActHome, p.Home)

	case daytimeType == synthpop.University && !weekend:
		start := base + 9 + uint32(r.Intn(2))
		end := base + 15 + uint32(r.Intn(3))
		add(start, ActHome, p.Home)
		add(end, ActSchool, p.Daytime)
		if r.Bool(0.5) {
			add(end+1+uint32(r.Intn(3)), ActLeisure, retail())
		}
		add(base+HoursPerDay, ActHome, p.Home)

	case (daytimeType == synthpop.Workplace || daytimeType == synthpop.Hospital) && !weekend:
		start := base + 7 + uint32(r.Intn(3))
		end := start + 8 + uint32(r.Intn(2))
		add(start, ActHome, p.Home)
		add(end, ActWork, p.Daytime)
		if r.Bool(0.35) {
			add(end+1, ActShop, retail())
		}
		add(base+HoursPerDay, ActHome, p.Home)

	default:
		// Weekend for everyone, and weekdays for persons without a
		// daytime anchor: home with optional shopping and leisure trips.
		// Homebodies rarely go out at all; their weekly contacts reduce
		// to their household, which populates the low-degree head of the
		// network's degree distribution.
		homebody := g.IsHomebody(person)
		tripProb, maxTrips := 0.6, 2
		if homebody {
			tripProb, maxTrips = 0.15, 1
		}
		out := base + 10 + uint32(r.Intn(4))
		add(out, ActHome, p.Home)
		trips := 0
		if r.Bool(tripProb) {
			trips = 1 + r.Intn(maxTrips)
		}
		for k := 0; k < trips; k++ {
			// Homebodies mostly pay short visits to another household,
			// which adds only a handful of contacts; everyone else
			// mixes at retail.
			act, dest := ActShop, uint32(0)
			switch {
			case homebody && r.Bool(0.6):
				act, dest = ActLeisure, g.visitHome(person, r)
			case r.Bool(0.4):
				act, dest = ActLeisure, retail()
			default:
				dest = retail()
			}
			stop := segs[len(segs)-1].Stop + 1 + uint32(r.Intn(3))
			if stop > base+22 {
				break
			}
			add(stop, act, dest)
			// Return home between trips for a spell.
			gap := segs[len(segs)-1].Stop + 1 + uint32(r.Intn(2))
			if gap > base+23 {
				gap = base + 23
			}
			add(gap, ActHome, p.Home)
		}
		add(base+HoursPerDay, ActHome, p.Home)
	}

	return segs
}

// Validate checks that segs tile [day*24, (day+1)*24) exactly. It is
// exported for tests and debugging tools.
func Validate(segs []Segment, day int) error {
	base := uint32(day * HoursPerDay)
	if len(segs) == 0 {
		return fmt.Errorf("schedule: empty day")
	}
	if segs[0].Start != base {
		return fmt.Errorf("schedule: day starts at %d, want %d", segs[0].Start, base)
	}
	for i, s := range segs {
		if s.Stop <= s.Start {
			return fmt.Errorf("schedule: segment %d empty or inverted: [%d,%d)", i, s.Start, s.Stop)
		}
		if i > 0 && s.Start != segs[i-1].Stop {
			return fmt.Errorf("schedule: gap between segments %d and %d", i-1, i)
		}
	}
	if last := segs[len(segs)-1].Stop; last != base+HoursPerDay {
		return fmt.Errorf("schedule: day ends at %d, want %d", last, base+HoursPerDay)
	}
	return nil
}

// PlaceAt returns the place and activity person occupies at the given
// absolute hour, resolving the day's schedule.
func (g *Generator) PlaceAt(person uint32, hour uint32) (place, activity uint32) {
	day := int(hour) / HoursPerDay
	for _, s := range g.Day(person, day) {
		if hour >= s.Start && hour < s.Stop {
			return s.Place, s.Activity
		}
	}
	// Unreachable for valid schedules; fall back to home.
	return g.pop.Persons[person].Home, ActHome
}

// MeanChangesPerDay estimates the average number of activity changes per
// person per day over a sample, the quantity the paper's log-sizing
// arithmetic uses (≈5/day).
func (g *Generator) MeanChangesPerDay(days int, sample int) float64 {
	if sample > g.pop.NumPersons() {
		sample = g.pop.NumPersons()
	}
	total := 0
	for p := 0; p < sample; p++ {
		for d := 0; d < days; d++ {
			total += len(g.Day(uint32(p), d))
		}
	}
	return float64(total) / float64(sample*days)
}
