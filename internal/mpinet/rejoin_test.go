package mpinet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
)

func wantRankRevived(t *testing.T, err error, rank int) {
	t.Helper()
	rr, ok := mpi.AsRankRevived(err)
	if !ok {
		t.Fatalf("want RankRevivedError, got %v", err)
	}
	if rr.Rank != rank {
		t.Fatalf("want revived rank %d, got %d (%v)", rank, rr.Rank, err)
	}
}

// claimOpts returns fastOpts pinning a rank claim.
func claimOpts(rank int, token uint64) Options {
	o := fastOpts()
	o.ClaimRank = rank
	o.ClaimToken = token
	return o
}

// startClaimedCluster hosts a cluster whose clients each pin their rank
// with a distinct token (tokens[r] = base+r), the way netlaunch wires
// supervised rank processes.
func startClaimedCluster(t *testing.T, size int, base uint64) []*Node {
	t.Helper()
	host, err := Host("127.0.0.1:0", size, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, size)
	nodes[0] = host
	var wg sync.WaitGroup
	var mu sync.Mutex
	for r := 1; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			n, err := Join(host.Addr(), claimOpts(r, base+uint64(r)))
			if err != nil {
				t.Errorf("join rank %d: %v", r, err)
				return
			}
			if n.Rank() != r {
				t.Errorf("claimed rank %d, got %d", r, n.Rank())
			}
			mu.Lock()
			nodes[r] = n
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	return nodes
}

// convergeBarrier drives every node's Barrier through retries until a
// common round succeeds, returning the first revival error each rank
// observed along the way. After a rejoin, survivors each hold exactly
// one pending opRevive abort (delivered to their blocked collective or
// buffered for their next one); retrying past it re-aligns the cluster.
func convergeBarrier(t *testing.T, nodes []*Node) []error {
	t.Helper()
	seen := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		if n == nil {
			continue
		}
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			for tries := 0; tries < 20; tries++ {
				err := n.Barrier(context.Background())
				if err == nil {
					return
				}
				if _, ok := mpi.AsRankRevived(err); ok {
					if seen[i] == nil {
						seen[i] = err
					}
					continue
				}
				t.Errorf("rank %d: unexpected barrier error: %v", n.Rank(), err)
				return
			}
			t.Errorf("rank %d: barrier never converged", n.Rank())
		}(i, n)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	return seen
}

// TestRejoinReclaimsDeadSlot is the supervised-restart happy path: a
// rank dies, survivors observe the death, a new process claims the dead
// slot with the matching token, survivors observe the revival, and the
// full cluster completes collectives again.
func TestRejoinReclaimsDeadSlot(t *testing.T) {
	const size, base = 3, uint64(7000)
	nodes := startClaimedCluster(t, size, base)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()

	// Round 0: everyone up.
	for r, err := range barrierAll(nodes) {
		if err != nil {
			t.Fatalf("rank %d initial barrier: %v", r, err)
		}
	}

	// Rank 2 crashes.
	nodes[2].conn.Close()
	survivors := []*Node{nodes[0], nodes[1], nil}
	errs := barrierAll(survivors)
	wantRankFailed(t, errs[0], 2)
	wantRankFailed(t, errs[1], 2)

	// A survivors-only round succeeds (the cluster runs degraded).
	for r, err := range barrierAll(survivors) {
		if survivors[r] != nil && err != nil {
			t.Fatalf("rank %d degraded barrier: %v", r, err)
		}
	}

	// The supervised restart claims the slot back; each survivor's next
	// collective aborts with the typed revival error.
	rejoined, joinErr := Join(nodes[0].Addr(), claimOpts(2, base+2))
	if joinErr != nil {
		t.Fatalf("rejoin: %v", joinErr)
	}
	defer rejoined.Close()
	if rejoined.Rank() != 2 {
		t.Fatalf("rejoined as rank %d, want 2", rejoined.Rank())
	}
	if got := rejoined.InitialDead(); len(got) != 0 {
		t.Fatalf("rejoined InitialDead = %v, want empty", got)
	}

	nodes[2] = rejoined
	seen := convergeBarrier(t, nodes)
	wantRankRevived(t, seen[0], 2)
	wantRankRevived(t, seen[1], 2)
	if seen[2] != nil {
		t.Fatalf("rejoined rank saw a revival abort for itself: %v", seen[2])
	}

	// Full-strength rounds work again and stay round-aligned.
	for round := 0; round < 3; round++ {
		for r, err := range barrierAll(nodes) {
			if err != nil {
				t.Fatalf("round %d rank %d after rejoin: %v", round, r, err)
			}
		}
	}
}

// TestRejoinWrongTokenRejected: a claim on an owned slot with the wrong
// token must fail with the typed sentinel, without disturbing the
// cluster.
func TestRejoinWrongTokenRejected(t *testing.T) {
	const size, base = 3, uint64(9000)
	nodes := startClaimedCluster(t, size, base)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()

	nodes[1].conn.Close()
	errs := barrierAll([]*Node{nodes[0], nil, nodes[2]})
	wantRankFailed(t, errs[0], 1)
	wantRankFailed(t, errs[2], 1)

	if _, err := Join(nodes[0].Addr(), claimOpts(1, base+999)); !errors.Is(err, ErrClaimRejected) {
		t.Fatalf("wrong token: want ErrClaimRejected, got %v", err)
	}
	// Out-of-range claims are rejected too.
	if _, err := Join(nodes[0].Addr(), claimOpts(size+5, base+1)); !errors.Is(err, ErrClaimRejected) {
		t.Fatalf("out-of-range claim: want ErrClaimRejected, got %v", err)
	}

	// The cluster is unaffected: survivors still complete rounds.
	for r, err := range barrierAll([]*Node{nodes[0], nil, nodes[2]}) {
		if r != 1 && err != nil {
			t.Fatalf("rank %d after rejected claims: %v", r, err)
		}
	}
}

// TestRejoinHandshakeCarriesDeadSet: a rank rejoining a cluster that
// has OTHER dead ranks learns them from the handshake, so its view of
// the survivor set matches the incumbents'.
func TestRejoinHandshakeCarriesDeadSet(t *testing.T) {
	const size, base = 4, uint64(11000)
	nodes := startClaimedCluster(t, size, base)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()

	// Kill ranks 1 and 3; drive rounds until both deaths are delivered.
	nodes[1].conn.Close()
	nodes[3].conn.Close()
	dead := map[int]bool{}
	for tries := 0; len(dead) < 2 && tries < 10; tries++ {
		errs := barrierAll([]*Node{nodes[0], nil, nodes[2], nil})
		for _, err := range errs {
			if rf, ok := mpi.AsRankFailed(err); ok {
				dead[rf.Rank] = true
			}
		}
	}
	if !dead[1] || !dead[3] {
		t.Fatalf("deaths not observed: %v", dead)
	}

	rejoined, joinErr := Join(nodes[0].Addr(), claimOpts(1, base+1))
	if joinErr != nil {
		t.Fatalf("rejoin: %v", joinErr)
	}
	defer rejoined.Close()

	got := rejoined.InitialDead()
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("InitialDead = %v, want [3]", got)
	}

	// Survivors absorb the revival abort, then the three live ranks
	// complete a round together.
	nodes[1] = rejoined
	live := []*Node{nodes[0], nodes[1], nodes[2], nil}
	seen := convergeBarrier(t, live)
	wantRankRevived(t, seen[0], 1)
	wantRankRevived(t, seen[2], 1)
	for r, err := range barrierAll(live) {
		if r != 3 && err != nil {
			t.Fatalf("rank %d after rejoin: %v", r, err)
		}
	}
}

// TestRejoinSupersedesSilentConn: a rank whose process was killed
// silently (its TCP conn looks half-open) restarts and reclaims its
// slot while the old connection is still installed. The claim supersedes
// it: survivors see the death then the revival, and the cluster runs at
// full strength again.
func TestRejoinSupersedesSilentConn(t *testing.T) {
	const size, base = 3, uint64(13000)
	nodes := startClaimedCluster(t, size, base)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()
	for r, err := range barrierAll(nodes) {
		if err != nil {
			t.Fatalf("rank %d initial barrier: %v", r, err)
		}
	}

	// Restart rank 2 without the coordinator ever seeing its old conn
	// die: the replacement claim itself is the death signal.
	var rejoined *Node
	var joinErr error
	var jwg sync.WaitGroup
	jwg.Add(1)
	go func() {
		defer jwg.Done()
		rejoined, joinErr = Join(nodes[0].Addr(), claimOpts(2, base+2))
	}()
	// Survivors first absorb the supersession death, then the revival.
	sawFailed, sawRevived := false, false
	for tries := 0; !(sawFailed && sawRevived) && tries < 10; tries++ {
		errs := barrierAll([]*Node{nodes[0], nodes[1], nil})
		for _, err := range errs[:2] {
			if rf, ok := mpi.AsRankFailed(err); ok && rf.Rank == 2 {
				sawFailed = true
			}
			if rr, ok := mpi.AsRankRevived(err); ok && rr.Rank == 2 {
				sawRevived = true
			}
		}
	}
	jwg.Wait()
	if joinErr != nil {
		t.Fatalf("superseding rejoin: %v", joinErr)
	}
	if !sawFailed || !sawRevived {
		t.Fatalf("supersession not observed: failed=%v revived=%v", sawFailed, sawRevived)
	}
	nodes[2].conn.Close() // the half-open original; already superseded
	nodes[2] = rejoined

	for round := 0; round < 3; round++ {
		for r, err := range barrierAll(nodes) {
			if err != nil {
				t.Fatalf("round %d rank %d after supersession: %v", round, r, err)
			}
		}
	}
}

// TestRoundTimeoutDeclaresLaggardDead: with Options.RoundTimeout set, a
// rank that keeps heartbeating but never enters the collective is
// declared failed once the deadline passes, so a wedged-but-alive
// process cannot stall the cluster.
func TestRoundTimeoutDeclaresLaggardDead(t *testing.T) {
	opts := fastOpts()
	opts.RoundTimeout = 300 * time.Millisecond
	nodes := startCluster(t, 3, opts)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()

	// Rank 2 never calls Barrier; its heartbeat loop keeps it "alive".
	laggard := nodes[2].Rank()
	start := time.Now()
	errs := barrierAll([]*Node{nodes[0], nodes[1], nil})
	elapsed := time.Since(start)
	wantRankFailed(t, errs[0], laggard)
	wantRankFailed(t, errs[1], laggard)
	if elapsed > 5*time.Second {
		t.Fatalf("round timeout took %v, want ≈ RoundTimeout", elapsed)
	}

	// Survivors complete rounds afterwards.
	for r, err := range barrierAll([]*Node{nodes[0], nodes[1], nil}) {
		if r != 2 && err != nil {
			t.Fatalf("rank %d after laggard death: %v", r, err)
		}
	}
}

// TestRejoinDuringExchangeRestripes exercises the app-level contract:
// an Exchange aborted by a revival can be retried with the revived rank
// back in the stripe, and payloads route correctly afterwards.
func TestRejoinDuringExchangeRestripes(t *testing.T) {
	const size, base = 3, uint64(15000)
	nodes := startClaimedCluster(t, size, base)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()

	nodes[1].conn.Close()
	errs := barrierAll([]*Node{nodes[0], nil, nodes[2]})
	wantRankFailed(t, errs[0], 1)
	wantRankFailed(t, errs[2], 1)

	rejoined, joinErr := Join(nodes[0].Addr(), claimOpts(1, base+1))
	if joinErr != nil {
		t.Fatalf("rejoin: %v", joinErr)
	}
	defer rejoined.Close()
	nodes[1] = rejoined
	seen := convergeBarrier(t, nodes)
	wantRankRevived(t, seen[0], 1)
	wantRankRevived(t, seen[2], 1)

	// Personalized all-to-all across the restored membership.
	payload := func(src, dst int) []byte { return []byte{byte(src)<<4 | byte(dst)} }
	type res struct {
		in  [][]byte
		err error
	}
	results := make([]res, size)
	var wg sync.WaitGroup
	for r, n := range nodes {
		wg.Add(1)
		go func(r int, n *Node) {
			defer wg.Done()
			out := make([][]byte, size)
			for dst := 0; dst < size; dst++ {
				out[dst] = payload(r, dst)
			}
			in, err := n.Exchange(context.Background(), out)
			results[r] = res{in, err}
		}(r, n)
	}
	wg.Wait()
	for dst := 0; dst < size; dst++ {
		if results[dst].err != nil {
			t.Fatalf("rank %d exchange: %v", dst, results[dst].err)
		}
		for src := 0; src < size; src++ {
			got := results[dst].in[src]
			want := payload(src, dst)
			if len(got) != 1 || got[0] != want[0] {
				t.Fatalf("rank %d from %d: got %v want %v", dst, src, got, want)
			}
		}
	}
}
