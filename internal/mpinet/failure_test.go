package mpinet

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mpi"
)

// fastOpts makes failure detection quick enough for tests.
func fastOpts() Options {
	return Options{
		DialTimeout:       5 * time.Second,
		IOTimeout:         5 * time.Second,
		HeartbeatInterval: 30 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
	}
}

// startCluster hosts a size-rank cluster and joins size-1 clients,
// returning nodes indexed by rank.
func startCluster(t *testing.T, size int, opts Options) []*Node {
	t.Helper()
	host, err := Host("127.0.0.1:0", size, opts)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, size)
	nodes[0] = host
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 1; i < size; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := Join(host.Addr(), opts)
			if err != nil {
				t.Errorf("join: %v", err)
				return
			}
			mu.Lock()
			nodes[n.Rank()] = n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	return nodes
}

// barrierAll runs Barrier concurrently on the given nodes and returns
// the per-node errors.
func barrierAll(nodes []*Node) []error {
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		if n == nil {
			continue
		}
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			errs[i] = n.Barrier(context.Background())
		}(i, n)
	}
	wg.Wait()
	return errs
}

func wantRankFailed(t *testing.T, err error, rank int) {
	t.Helper()
	rf, ok := mpi.AsRankFailed(err)
	if !ok {
		t.Fatalf("error %v is not a RankFailedError", err)
	}
	if rf.Rank != rank {
		t.Fatalf("RankFailedError.Rank = %d, want %d", rf.Rank, rank)
	}
}

// TestRankDeathAbortAndRetry is the core failure-tolerance contract:
// when a rank dies, every survivor's pending collective returns a typed
// RankFailedError naming the same dead rank, and a retried collective
// completes among the survivors with nil blobs in the dead slots.
func TestRankDeathAbortAndRetry(t *testing.T) {
	const size = 3
	nodes := startCluster(t, size, fastOpts())
	defer func() {
		for i := size - 1; i >= 0; i-- {
			if nodes[i] != nil {
				nodes[i].Close()
			}
		}
	}()

	// Healthy round first.
	for i, err := range barrierAll(nodes) {
		if err != nil {
			t.Fatalf("healthy barrier rank %d: %v", i, err)
		}
	}

	// Kill rank 2.
	const victim = 2
	nodes[victim].Close()
	nodes[victim] = nil

	// Survivors' next collective fails, all naming rank 2.
	errs := barrierAll(nodes)
	for _, i := range []int{0, 1} {
		if errs[i] == nil {
			t.Fatalf("rank %d barrier succeeded after peer death", i)
		}
		wantRankFailed(t, errs[i], victim)
	}

	// Retry: succeeds among survivors.
	for i, err := range barrierAll(nodes) {
		if err != nil {
			t.Fatalf("retry barrier rank %d: %v", i, err)
		}
	}

	// Exchange delivers nil from the dead rank.
	exErrs := make([]error, size)
	ins := make([][][]byte, size)
	var wg sync.WaitGroup
	for i, n := range nodes {
		if n == nil {
			continue
		}
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			out := make([][]byte, size)
			for dst := range out {
				out[dst] = []byte{byte(i), byte(dst)}
			}
			ins[i], exErrs[i] = n.Exchange(context.Background(), out)
		}(i, n)
	}
	wg.Wait()
	for _, i := range []int{0, 1} {
		if exErrs[i] != nil {
			t.Fatalf("exchange rank %d: %v", i, exErrs[i])
		}
		if len(ins[i][victim]) != 0 {
			t.Errorf("rank %d received %v from dead rank", i, ins[i][victim])
		}
		for _, src := range []int{0, 1} {
			want := []byte{byte(src), byte(i)}
			if string(ins[i][src]) != string(want) {
				t.Errorf("rank %d from %d = %v, want %v", i, src, ins[i][src], want)
			}
		}
	}

	// Gather leaves the dead slot nil on rank 0.
	gaErrs := make([]error, size)
	var gathered [][]byte
	for i, n := range nodes {
		if n == nil {
			continue
		}
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			var g [][]byte
			g, gaErrs[i] = n.Gather(context.Background(), []byte{byte(100 + i)})
			if i == 0 {
				gathered = g
			}
		}(i, n)
	}
	wg.Wait()
	for _, i := range []int{0, 1} {
		if gaErrs[i] != nil {
			t.Fatalf("gather rank %d: %v", i, gaErrs[i])
		}
	}
	if len(gathered) != size {
		t.Fatalf("gather result has %d slots", len(gathered))
	}
	if len(gathered[victim]) != 0 {
		t.Errorf("gather slot for dead rank = %v", gathered[victim])
	}
	for _, i := range []int{0, 1} {
		if len(gathered[i]) != 1 || gathered[i][0] != byte(100+i) {
			t.Errorf("gather[%d] = %v", i, gathered[i])
		}
	}
}

// TestTwoDeathsNearSimultaneous kills two ranks at once; survivors keep
// retrying and must observe exactly the two dead ranks (in any order)
// before the barrier completes again.
func TestTwoDeathsNearSimultaneous(t *testing.T) {
	const size = 4
	nodes := startCluster(t, size, fastOpts())
	defer func() {
		for i := size - 1; i >= 0; i-- {
			if nodes[i] != nil {
				nodes[i].Close()
			}
		}
	}()
	for i, err := range barrierAll(nodes) {
		if err != nil {
			t.Fatalf("healthy barrier rank %d: %v", i, err)
		}
	}
	nodes[1].Close()
	nodes[1] = nil
	nodes[3].Close()
	nodes[3] = nil

	seen := map[int]map[int]bool{0: {}, 2: {}}
	for attempt := 0; attempt < 10; attempt++ {
		errs := barrierAll(nodes)
		if errs[0] == nil && errs[2] == nil {
			break
		}
		for _, i := range []int{0, 2} {
			if errs[i] == nil {
				continue
			}
			rf, ok := mpi.AsRankFailed(errs[i])
			if !ok {
				t.Fatalf("rank %d: non-typed error %v", i, errs[i])
			}
			seen[i][rf.Rank] = true
		}
		if attempt == 9 {
			t.Fatal("barrier never recovered after two deaths")
		}
	}
	for _, i := range []int{0, 2} {
		if !seen[i][1] || !seen[i][3] || len(seen[i]) != 2 {
			t.Errorf("rank %d observed dead ranks %v, want {1,3}", i, seen[i])
		}
	}
}

// TestSilentRankDetectedByHeartbeat joins a rank that never sends
// anything (heartbeats disabled on its side) and verifies the
// coordinator's failure detector declares it dead rather than letting
// the survivors hang.
func TestSilentRankDetectedByHeartbeat(t *testing.T) {
	opts := fastOpts()
	host, err := Host("127.0.0.1:0", 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	silent := opts
	silent.DisableHeartbeat = true
	client, err := Join(host.Addr(), silent)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	done := make(chan error, 1)
	go func() { done <- host.Barrier(context.Background()) }()
	select {
	case err := <-done:
		wantRankFailed(t, err, 1)
	case <-time.After(10 * time.Second):
		t.Fatal("barrier hung: failure detector never fired")
	}
}

// TestFlakyConnTornFrame severs a client's connection mid-frame using
// the deterministic fault injector: the victim's own collective fails,
// and the survivors see a typed abort naming the victim.
func TestFlakyConnTornFrame(t *testing.T) {
	const size = 3
	opts := fastOpts()
	host, err := Host("127.0.0.1:0", size, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	victimOpts := opts
	victimOpts.DisableHeartbeat = true // all written bytes budget to the torn frame
	var flaky *faultinject.FlakyConn
	victimOpts.WrapConn = func(c net.Conn) net.Conn {
		// The 16-byte join hello goes through intact; the cut lands 6
		// bytes into the first collective frame.
		flaky = faultinject.NewFlakyConn(c, faultinject.ConnFaults{CutAfterWriteBytes: helloSize + 6})
		return flaky
	}
	victim, err := Join(host.Addr(), victimOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	bystander, err := Join(host.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer bystander.Close()

	var wg sync.WaitGroup
	var hostErr, byErr, vicErr error
	wg.Add(3)
	go func() { defer wg.Done(); hostErr = host.Barrier(context.Background()) }()
	go func() { defer wg.Done(); byErr = bystander.Barrier(context.Background()) }()
	go func() { defer wg.Done(); vicErr = victim.Barrier(context.Background()) }()
	wg.Wait()

	if vicErr == nil {
		t.Fatal("victim's barrier succeeded through a severed conn")
	}
	if !flaky.Severed() {
		t.Fatal("fault never fired")
	}
	wantRankFailed(t, hostErr, victim.Rank())
	wantRankFailed(t, byErr, victim.Rank())

	// Survivors recover.
	survivors := []*Node{host, bystander}
	var wg2 sync.WaitGroup
	errs := make([]error, 2)
	for i, n := range survivors {
		wg2.Add(1)
		go func(i int, n *Node) { defer wg2.Done(); errs[i] = n.Barrier(context.Background()) }(i, n)
	}
	wg2.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("survivor %d retry: %v", i, err)
		}
	}
}

// TestJoinFailsFastWhenRefused bounds Join's retry loop by DialTimeout.
func TestJoinFailsFastWhenRefused(t *testing.T) {
	opts := Options{DialTimeout: 300 * time.Millisecond}
	start := time.Now()
	_, err := Join("127.0.0.1:1", opts) // nothing listens on port 1
	if err == nil {
		t.Fatal("Join to dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Join took %v, want ~%v", elapsed, opts.DialTimeout)
	}
}

// TestJoinRetriesUntilHostAppears starts the coordinator after a delay;
// Join's backoff loop must ride it out.
func TestJoinRetriesUntilHostAppears(t *testing.T) {
	// Reserve a port, free it, and host there shortly after.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	hostCh := make(chan *Node, 1)
	go func() {
		time.Sleep(250 * time.Millisecond)
		h, err := Host(addr, 2, fastOpts())
		if err != nil {
			t.Errorf("late host: %v", err)
			hostCh <- nil
			return
		}
		hostCh <- h
	}()
	n, err := Join(addr, fastOpts())
	if err != nil {
		t.Fatalf("Join did not ride out the late host: %v", err)
	}
	defer n.Close()
	host := <-hostCh
	if host == nil {
		t.FailNow()
	}
	defer host.Close()
	for i, err := range barrierAll([]*Node{host, n}) {
		if err != nil {
			t.Fatalf("rank %d barrier: %v", i, err)
		}
	}
}

// TestJoinFlakyConnDuringHandshake severs the joiner's connection
// mid-handshake (after 4 of the 12 handshake bytes): Join must return
// an error promptly instead of hanging on the half-read handshake.
func TestJoinFlakyConnDuringHandshake(t *testing.T) {
	opts := fastOpts()
	opts.IOTimeout = 500 * time.Millisecond
	host, err := Host("127.0.0.1:0", 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	joinOpts := opts
	joinOpts.WrapConn = func(c net.Conn) net.Conn {
		return faultinject.NewFlakyConn(c, faultinject.ConnFaults{CutAfterReadBytes: 4})
	}
	start := time.Now()
	n, err := Join(host.Addr(), joinOpts)
	if err == nil {
		n.Close()
		t.Fatal("Join succeeded through a connection severed mid-handshake")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Join took %v to fail; the torn handshake should bound it by IOTimeout", elapsed)
	}
}

// TestCollectivesAfterAllClientsDead degenerates the cluster to rank 0
// alone; collectives must still complete locally.
func TestCollectivesAfterAllClientsDead(t *testing.T) {
	const size = 3
	nodes := startCluster(t, size, fastOpts())
	defer nodes[0].Close()
	nodes[1].Close()
	nodes[2].Close()
	host := nodes[0]

	deadline := time.Now().Add(10 * time.Second)
	for {
		err := host.Barrier(context.Background())
		if err == nil {
			break
		}
		if _, ok := mpi.AsRankFailed(err); !ok {
			t.Fatalf("non-typed error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("barrier never recovered with rank 0 alone")
		}
	}
	got, err := host.Gather(context.Background(), []byte{42})
	if err != nil {
		t.Fatalf("solo gather: %v", err)
	}
	if len(got) != size || got[0][0] != 42 || got[1] != nil || got[2] != nil {
		t.Fatalf("solo gather = %v", got)
	}
}

func TestRankFailedErrorMessage(t *testing.T) {
	e := &mpi.RankFailedError{Rank: 3, Op: "Gather", Err: fmt.Errorf("boom")}
	if e.Error() == "" || e.Unwrap() == nil {
		t.Fatal("degenerate error formatting")
	}
	coord := &mpi.RankFailedError{Rank: -1, Op: "Barrier"}
	if coord.Error() == "" {
		t.Fatal("empty coordinator-failure message")
	}
}
