package mpinet

// Coordinator-death chaos test: the Host lives in a real child OS
// process and is killed with SIGKILL while the clients sit inside a
// collective. Every client must surface a typed *mpi.RankFailedError
// promptly — within the heartbeat window — rather than hanging on the
// half-open connection.

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/supervise"
)

const helperHostEnv = "MPINET_HELPER_HOST"

// TestHelperHost is not a test: it is the child-process body for
// TestCoordinatorKilledMidCollective. It hosts a 3-rank cluster on an
// ephemeral port, publishes the address, and barriers forever — until
// its parent kills it.
func TestHelperHost(t *testing.T) {
	addrFile := os.Getenv(helperHostEnv)
	if addrFile == "" {
		t.Skip("helper process body; set " + helperHostEnv + " to run")
	}
	host, err := Host("127.0.0.1:0", 3, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	if err := supervise.WriteAddrFile(addrFile, host.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for {
		if err := host.Barrier(ctx); err != nil {
			return
		}
	}
}

func TestCoordinatorKilledMidCollective(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "host.addr")
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperHost", "-test.v")
	cmd.Env = append(os.Environ(), helperHostEnv+"="+addrFile)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
		}
		cmd.Wait()
	}()

	addr, err := supervise.ResolveAddr("@"+addrFile, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	a, err := Join(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Join(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// One healthy round proves the cluster is up.
	ctx := context.Background()
	var wg sync.WaitGroup
	for _, n := range []*Node{a, b} {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			if err := n.Barrier(ctx); err != nil {
				t.Errorf("healthy barrier: %v", err)
			}
		}(n)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Enter the next collective, then kill -9 the coordinator while the
	// clients are blocked in it. (The helper's own barrier loop means
	// the round cannot complete without the coordinator's contribution
	// from a process that no longer exists.)
	type res struct {
		err     error
		elapsed time.Duration
	}
	results := make(chan res, 2)
	start := time.Now()
	for _, n := range []*Node{a, b} {
		go func(n *Node) {
			err := n.Barrier(ctx)
			// One barrier may complete (the helper contributed before
			// dying); the next one cannot.
			for err == nil {
				err = n.Barrier(ctx)
			}
			results <- res{err, time.Since(start)}
		}(n)
	}
	time.Sleep(50 * time.Millisecond) // let both clients block in the round
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	killed = true

	// Every client gets a typed error well within the heartbeat window
	// (plus scheduling slack) — no hang on the half-open connection.
	budget := opts.HeartbeatTimeout + 3*time.Second
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			rf, ok := mpi.AsRankFailed(r.err)
			if !ok {
				t.Fatalf("client error not typed: %v", r.err)
			}
			if rf.Rank != -1 && rf.Rank != 0 {
				t.Fatalf("blamed rank %d, want coordinator (-1 or 0)", rf.Rank)
			}
			if r.elapsed > budget {
				t.Fatalf("detection took %v, budget %v", r.elapsed, budget)
			}
		case <-time.After(budget + 2*time.Second):
			t.Fatal("client still hanging after coordinator kill")
		}
	}
}
