// Package mpinet is a TCP-based implementation of the mpi.Transport
// interface, letting the simulation's ranks run as separate OS processes
// — the "distributed compute cluster" deployment of the paper — instead
// of goroutines inside one process.
//
// Topology is a star: rank 0 hosts a coordinator that the other ranks
// join. Collectives (Barrier, Exchange, Gather) are synchronous rounds:
// every rank submits one frame, the coordinator routes, every rank
// receives its reply. Because the simulation already requires all ranks
// to enter every collective in the same order, the star adds no extra
// synchronization constraints; it trades the O(P²) connection mesh of
// real MPI for implementation clarity at the modest rank counts this
// reproduction targets.
//
// # Failure model
//
// A rank that dies (connection reset, premature EOF, heartbeat timeout)
// does not hang the cluster. The coordinator aborts the round in
// progress, marks the rank dead, and broadcasts an error frame carrying
// the failed rank's identity to every survivor, whose pending collective
// returns a typed *mpi.RankFailedError. Every survivor receives the same
// rank in the same order, so failure-aware callers (such as
// core.SynthesizeDistributed) can deterministically agree on how to
// redistribute the dead rank's work and retry. Subsequent collectives
// run among the survivors; a dead rank contributes nil blobs.
//
// Round consistency across aborts is kept by a sequence number stamped
// on every frame: both sides count one round per collective call
// (successful or aborted), so a contribution from before an abort is
// recognizably stale and discarded rather than corrupting a retry.
//
// Liveness is coordinator-driven: clients heartbeat the coordinator so
// silent deaths are detected even mid-computation, and the coordinator
// heartbeats blocked clients so a rank waiting in a collective can
// distinguish "peers are slow" from "coordinator is gone". An optional
// per-collective deadline (Options.RoundTimeout) additionally bounds the
// skew between the first and last rank entering a round: laggards past
// the deadline are declared failed, so a wedged rank cannot stall the
// cluster forever even while its heartbeats keep flowing.
//
// # Rank discovery and rejoin
//
// The coordinator keeps accepting connections for its whole lifetime,
// and every joiner presents a claim: a (rank, token) pair. A fresh
// cluster member claims rank -1 (assigned the next free slot) or pins a
// specific slot; either way the slot records the presented token as its
// identity. A later Join claiming a DEAD slot with the matching token
// reclaims it — a supervised restart of a crashed rank process rejoins
// the running cluster instead of being rejected. The revival aborts the
// round in progress exactly like a death does, except survivors receive
// a typed *mpi.RankRevivedError naming the returning rank, so
// failure-tolerant callers can put it back into the work distribution.
// The rejoiner's handshake reply carries the coordinator's current round
// sequence and the set of currently-dead ranks, so the revived process
// is round-aligned and membership-aligned from its first collective
// (exposed via Node.InitialDead / mpi.DeadRankser). A claim with a stale
// or wrong token is rejected with ErrClaimRejected.
//
// # Wire format
//
// Every frame is length-prefixed
//
//	frameLen u32 | op u8 | seq u32 | nblobs u32 | { blobLen u32 | blob }*
//
// with all integers little-endian. The join handshake is client-first:
//
//	client → coordinator: magic "CSIM" | claim i32 | token u64
//	coordinator → client: magic "CSIM" | rank u32 | size u32 | seq u32 |
//	                      ndead u32 | { deadRank u32 }*
//
// A rejected claim is answered with magic "CNO!" in the reply header.
package mpinet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// Telemetry series for the network transport: one round per collective
// (Barrier/Exchange/Gather each consume exactly one), payload bytes as
// sent, failures as observed by the coordinator's detector, rejoins as
// accepted by the claim validator.
var (
	mRounds       = telemetry.C("mpinet_rounds_total")
	mBytesSent    = telemetry.C("mpinet_bytes_sent_total")
	mRankFailures = telemetry.C("mpinet_rank_failures_total")
	mRankRejoins  = telemetry.C("mpinet_rank_rejoins_total")
	mRoundSeconds = telemetry.H("mpinet_round_seconds")
)

const (
	handshakeMagic = "CSIM"
	rejectMagic    = "CNO!"
)

// helloSize is the client hello: magic, claim i32, token u64.
const helloSize = 4 + 4 + 8

// replyHdrSize is the coordinator reply header: magic, rank, size, seq,
// ndead. A dead-rank list of ndead u32s follows.
const replyHdrSize = 4 + 4 + 4 + 4 + 4

// ErrClaimRejected is returned by Join when the coordinator refuses the
// presented rank claim (wrong token, slot already owned by a live peer
// with a different identity, or no free slot for an anonymous join).
// The rejection is permanent: retrying the same claim cannot succeed.
var ErrClaimRejected = errors.New("mpinet: join claim rejected")

// Collective opcodes.
const (
	opBarrier byte = iota + 1
	opExchange
	opGather
	opHeartbeat // liveness signal; never part of a round
	opError     // round abort: blobs[0] = failed rank (int32 LE)
	opRevive    // round abort: blobs[0] = rejoined rank (int32 LE)
)

func opName(op byte) string {
	switch op {
	case opBarrier:
		return "Barrier"
	case opExchange:
		return "Exchange"
	case opGather:
		return "Gather"
	default:
		return fmt.Sprintf("op%d", op)
	}
}

// maxFrame bounds a single frame to guard against corrupt length
// prefixes (256 MiB is far above any batch the simulation exchanges).
const maxFrame = 256 << 20

// frameHdrSize is op + seq + traceID + spanID + nblobs. The two 64-bit
// trace fields piggyback span context on every collective (zero when
// telemetry is off); both sides of a launch run the same binary (the
// supervisor builds once and spawns), so the header change is lockstep
// by construction.
const frameHdrSize = 1 + 4 + 8 + 8 + 4

// Options tunes the transport's robustness machinery. The zero value of
// each field selects its default; use Host(addr, size, opts) / Join(addr,
// opts) to apply.
type Options struct {
	// DialTimeout is Join's total retry budget when the coordinator is
	// not yet listening (exponential backoff with jitter underneath) and
	// the coordinator's window for accepting the initial joins. Default
	// 15s.
	DialTimeout time.Duration
	// IOTimeout is the per-frame write deadline and the handshake read
	// deadline. Default 30s.
	IOTimeout time.Duration
	// HeartbeatInterval is how often liveness frames are sent in both
	// directions. Default 500ms.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a peer may stay silent before being
	// declared dead. Default 5s.
	HeartbeatTimeout time.Duration
	// RoundTimeout, when positive, is the coordinator's per-collective
	// deadline: once the first contribution of a round arrives, the
	// remaining live ranks (other than rank 0, which hosts the clock)
	// must contribute within this window or the lowest-numbered laggard
	// is declared failed. It bounds the compute skew the cluster
	// tolerates between ranks, so set it well above the slowest rank's
	// longest inter-collective stretch — including any supervised
	// restart it may be recovering through. Zero disables (default).
	RoundTimeout time.Duration
	// DisableHeartbeat turns the failure detector off entirely; dead
	// ranks are then only detected by connection errors.
	DisableHeartbeat bool
	// ClaimRank, when positive, pins the rank this Join claims instead
	// of accepting coordinator assignment — a supervisor restarting a
	// crashed rank process claims the dead slot back. Zero joins
	// anonymously. Join only.
	ClaimRank int
	// ClaimToken is the identity presented with the claim. The slot
	// records the token of its first claimant; reclaiming a dead slot
	// requires the matching token. Join only.
	ClaimToken uint64
	// WrapConn, when non-nil, wraps the dialed connection before use —
	// a fault-injection hook for chaos tests (see
	// faultinject.NewFlakyConn). Join only.
	WrapConn func(net.Conn) net.Conn
}

func withDefaults(opts []Options) Options {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 15 * time.Second
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 30 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 5 * time.Second
	}
	return o
}

// frame is one collective contribution or reply. traceID/spanID carry
// the distributed trace context (zero when untraced): contributions are
// stamped from the sending node's trace state, and the coordinator
// copies the initiator's context onto every reply so worker ranks learn
// the coordinator's root span without an extra round.
type frame struct {
	op      byte
	seq     uint32
	traceID uint64
	spanID  uint64
	blobs   [][]byte
}

func writeFrame(w *bufio.Writer, f frame) error {
	total := frameHdrSize
	for _, b := range f.blobs {
		total += 4 + len(b)
	}
	if total > maxFrame {
		return fmt.Errorf("mpinet: frame of %d bytes exceeds limit", total)
	}
	var u32 [4]byte
	var u64 [8]byte
	le := binary.LittleEndian
	le.PutUint32(u32[:], uint32(total))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	if err := w.WriteByte(f.op); err != nil {
		return err
	}
	le.PutUint32(u32[:], f.seq)
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	le.PutUint64(u64[:], f.traceID)
	if _, err := w.Write(u64[:]); err != nil {
		return err
	}
	le.PutUint64(u64[:], f.spanID)
	if _, err := w.Write(u64[:]); err != nil {
		return err
	}
	le.PutUint32(u32[:], uint32(len(f.blobs)))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	for _, b := range f.blobs {
		le.PutUint32(u32[:], uint32(len(b)))
		if _, err := w.Write(u32[:]); err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) (frame, error) {
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return frame{}, err
	}
	le := binary.LittleEndian
	total := le.Uint32(u32[:])
	if total < frameHdrSize || total > maxFrame {
		return frame{}, fmt.Errorf("mpinet: bad frame length %d", total)
	}
	body := make([]byte, total)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	f := frame{
		op:      body[0],
		seq:     le.Uint32(body[1:5]),
		traceID: le.Uint64(body[5:13]),
		spanID:  le.Uint64(body[13:21]),
	}
	if f.op == 0 || f.op > opRevive {
		// On-the-wire corruption: reject the frame so the connection is
		// declared dead instead of a bogus opcode entering a round.
		return frame{}, fmt.Errorf("mpinet: bad opcode %d", f.op)
	}
	n := le.Uint32(body[21:25])
	off := uint32(frameHdrSize)
	for i := uint32(0); i < n; i++ {
		if off+4 > total {
			return frame{}, fmt.Errorf("mpinet: truncated frame")
		}
		bl := le.Uint32(body[off:])
		off += 4
		if off+bl > total || off+bl < off {
			return frame{}, fmt.Errorf("mpinet: truncated blob")
		}
		f.blobs = append(f.blobs, body[off:off+bl])
		off += bl
	}
	return f, nil
}

// rankFrame builds a round-abort broadcast (opError or opRevive)
// carrying one rank identity.
func rankFrame(op byte, seq uint32, rank int) frame {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(int32(rank)))
	return frame{op: op, seq: seq, blobs: [][]byte{b[:]}}
}

// frameRank decodes the rank identity of an opError/opRevive frame.
func frameRank(f frame) int {
	if len(f.blobs) < 1 || len(f.blobs[0]) < 4 {
		return -1
	}
	return int(int32(binary.LittleEndian.Uint32(f.blobs[0])))
}

// contribution is one rank's collective input arriving at the
// coordinator. p identifies the connection incarnation it came from, so
// a stale error from a superseded connection cannot kill a revived
// rank's fresh one (nil for rank 0's local contributions).
type contribution struct {
	rank int
	f    frame
	err  error
	p    *peer
}

// joinReq is one validated client hello awaiting the run loop's
// membership decision.
type joinReq struct {
	conn  net.Conn
	claim int
	token uint64
}

// peer is the coordinator's per-client connection state.
type peer struct {
	conn     net.Conn
	bw       *bufio.Writer
	wmu      sync.Mutex // serializes reply and heartbeat writes
	lastSeen atomic.Int64
	dead     atomic.Bool
}

// send writes one frame to the peer under its write lock with deadline.
func (p *peer) send(f frame, timeout time.Duration) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.conn.SetWriteDeadline(time.Now().Add(timeout))
	err := writeFrame(p.bw, f)
	p.conn.SetWriteDeadline(time.Time{})
	return err
}

// Node is one rank's handle; it implements mpi.Transport and
// mpi.TraceCarrier.
type Node struct {
	rank, size int
	opts       Options
	seq        uint32 // next collective round number

	// Distributed trace context (mpi.TraceCarrier): stamped on outgoing
	// contributions, refreshed from nonzero reply headers.
	traceID atomic.Uint64
	spanID  atomic.Uint64

	// Client side (rank > 0).
	conn        net.Conn
	br          *bufio.Reader
	bw          *bufio.Writer
	wmu         sync.Mutex // serializes collective and heartbeat writes
	hbStop      chan struct{}
	hbOnce      sync.Once
	initialDead []int

	// Coordinator side (rank 0).
	coord *coordinator
}

type coordinator struct {
	ln   net.Listener
	size int
	opts Options

	mu    sync.Mutex // guards peers slots for the failure detector
	peers []*peer    // index 0 unused

	// Membership bookkeeping, owned by the run loop.
	claimed    []bool   // slot has recorded an identity
	tokens     []uint64 // identity recorded at first claim
	firstJoins int      // slots filled at least once
	joinsDone  atomic.Bool

	contribs  chan contribution
	joins     chan *joinReq
	replies   []chan frame // only [0] is used: rank 0's local delivery
	done      chan struct{}
	closeOnce sync.Once
	errs      chan error
}

var errHeartbeatExpired = errors.New("mpinet: heartbeat timeout")
var errRoundExpired = errors.New("mpinet: collective round deadline exceeded")

// stop records err (best effort), signals shutdown and releases the
// sockets. Safe to call from any goroutine, any number of times.
func (c *coordinator) stop(err error) {
	if err != nil {
		select {
		case c.errs <- err:
		default:
		}
	}
	c.closeOnce.Do(func() { close(c.done) })
	c.teardown()
}

// Host listens on addr, waits for size-1 ranks to join, and returns the
// rank-0 Node. Size must be at least 1; with size 1 the transport is
// fully local. The coordinator keeps accepting connections after the
// initial join phase so restarted ranks can reclaim their slots (see
// the package comment on rejoin).
func Host(addr string, size int, opts ...Options) (*Node, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpinet: size must be ≥ 1, got %d", size)
	}
	o := withDefaults(opts)
	c := &coordinator{
		size:     size,
		opts:     o,
		contribs: make(chan contribution, 2*size+2),
		joins:    make(chan *joinReq, size),
		replies:  make([]chan frame, size),
		done:     make(chan struct{}),
		errs:     make(chan error, size),
	}
	// replies[0] must absorb one abort broadcast per possible membership
	// event without blocking the round loop, even if rank 0 is between
	// collectives at the time (deaths and revivals both broadcast).
	c.replies[0] = make(chan frame, 2*size+2)
	node := &Node{rank: 0, size: size, opts: o, coord: c}
	if size == 1 {
		go c.run()
		return node, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.ln = ln
	c.peers = make([]*peer, size)
	c.claimed = make([]bool, size)
	c.tokens = make([]uint64, size)
	// The initial join phase runs under the dial deadline; once every
	// slot has joined at least once the run loop clears it and the
	// listener stays open for rejoins.
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(o.DialTimeout))
	}
	go c.acceptLoop()
	go c.run()
	if !o.DisableHeartbeat {
		go c.heartbeatLoop()
	}
	return node, nil
}

// acceptLoop admits connections for the coordinator's whole lifetime.
// An accept error during the initial join phase is fatal (some rank
// never arrived before the join deadline); afterwards it only disables
// rejoins.
func (c *coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.done:
				return
			default:
			}
			if !c.joinsDone.Load() {
				c.stop(fmt.Errorf("mpinet: accepting joins: %w", err))
			}
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		go c.handleHello(conn)
	}
}

// handleHello reads one client hello off its own goroutine (so a stalled
// joiner cannot head-of-line block other joins) and posts the claim to
// the run loop, which owns membership.
func (c *coordinator) handleHello(conn net.Conn) {
	var hello [helloSize]byte
	conn.SetReadDeadline(time.Now().Add(c.opts.IOTimeout))
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if string(hello[:4]) != handshakeMagic {
		conn.Close()
		return
	}
	le := binary.LittleEndian
	jr := &joinReq{
		conn:  conn,
		claim: int(int32(le.Uint32(hello[4:]))),
		token: le.Uint64(hello[8:]),
	}
	select {
	case c.joins <- jr:
	case <-c.done:
		conn.Close()
	}
}

// reject answers a refused claim and closes the connection.
func (c *coordinator) reject(conn net.Conn) {
	var b [replyHdrSize]byte
	copy(b[:4], rejectMagic)
	conn.SetWriteDeadline(time.Now().Add(c.opts.IOTimeout))
	conn.Write(b[:])
	conn.Close()
}

// Join dials the coordinator at addr and returns this process's Node.
// The rank is the claimed one (Options.ClaimRank) or assigned by the
// coordinator. Dialing retries with exponential backoff plus jitter
// until Options.DialTimeout elapses, so ranks can be launched in any
// order without a thundering-herd of reconnects. A refused claim
// returns an error wrapping ErrClaimRejected and is not retried.
func Join(addr string, opts ...Options) (*Node, error) {
	o := withDefaults(opts)
	var conn net.Conn
	deadline := time.Now().Add(o.DialTimeout)
	backoff := 10 * time.Millisecond
	const backoffCap = time.Second
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	attempts := 0
	var err error
	for {
		attempts++
		conn, err = net.DialTimeout("tcp", addr, o.IOTimeout)
		if err == nil {
			break
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("mpinet: joining %s: %d attempts over %v: %w",
				addr, attempts, o.DialTimeout, err)
		}
		// Full jitter on top of the exponential base keeps simultaneous
		// joiners from hammering the coordinator in lockstep.
		sleep := backoff + time.Duration(rng.Int63n(int64(backoff)))
		if sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
		if backoff < backoffCap {
			backoff *= 2
		}
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if o.WrapConn != nil {
		conn = o.WrapConn(conn)
	}
	le := binary.LittleEndian

	// Client hello: present the claim.
	claim := o.ClaimRank
	if claim <= 0 {
		claim = -1
	}
	var hello [helloSize]byte
	copy(hello[:4], handshakeMagic)
	le.PutUint32(hello[4:], uint32(int32(claim)))
	le.PutUint64(hello[8:], o.ClaimToken)
	conn.SetWriteDeadline(time.Now().Add(o.IOTimeout))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mpinet: handshake: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})

	// Coordinator reply: assigned rank, cluster geometry, round
	// alignment, and the current dead set.
	var hdr [replyHdrSize]byte
	conn.SetReadDeadline(time.Now().Add(o.IOTimeout))
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mpinet: handshake: %w", err)
	}
	switch string(hdr[:4]) {
	case handshakeMagic:
	case rejectMagic:
		conn.Close()
		if o.ClaimRank > 0 {
			return nil, fmt.Errorf("mpinet: claiming rank %d: %w", o.ClaimRank, ErrClaimRejected)
		}
		return nil, fmt.Errorf("mpinet: joining %s: %w", addr, ErrClaimRejected)
	default:
		conn.Close()
		return nil, fmt.Errorf("mpinet: bad handshake magic %q", hdr[:4])
	}
	rank := int(le.Uint32(hdr[4:]))
	size := int(le.Uint32(hdr[8:]))
	seq := le.Uint32(hdr[12:])
	ndead := int(le.Uint32(hdr[16:]))
	if ndead < 0 || ndead > size {
		conn.Close()
		return nil, fmt.Errorf("mpinet: handshake reports %d dead ranks of %d", ndead, size)
	}
	var initialDead []int
	if ndead > 0 {
		buf := make([]byte, 4*ndead)
		if _, err := io.ReadFull(conn, buf); err != nil {
			conn.Close()
			return nil, fmt.Errorf("mpinet: handshake dead set: %w", err)
		}
		for i := 0; i < ndead; i++ {
			initialDead = append(initialDead, int(le.Uint32(buf[4*i:])))
		}
	}
	conn.SetReadDeadline(time.Time{})
	n := &Node{
		rank:        rank,
		size:        size,
		opts:        o,
		seq:         seq,
		conn:        conn,
		br:          bufio.NewReaderSize(conn, 1<<16),
		bw:          bufio.NewWriterSize(conn, 1<<16),
		hbStop:      make(chan struct{}),
		initialDead: initialDead,
	}
	if !o.DisableHeartbeat {
		go n.heartbeatLoop()
	}
	return n, nil
}

// heartbeatLoop (client side) keeps the coordinator's failure detector
// fed while this rank computes between collectives.
func (n *Node) heartbeatLoop() {
	t := time.NewTicker(n.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.hbStop:
			return
		case <-t.C:
		}
		n.wmu.Lock()
		n.conn.SetWriteDeadline(time.Now().Add(n.opts.HeartbeatInterval))
		err := writeFrame(n.bw, frame{op: opHeartbeat})
		n.conn.SetWriteDeadline(time.Time{})
		n.wmu.Unlock()
		if err != nil {
			return // conn is dead; the next collective will surface it
		}
	}
}

// heartbeatLoop (coordinator side) does two jobs per tick: declare
// silent clients dead (feeding the round loop an error contribution) and
// send liveness frames to healthy clients so ranks blocked in a
// collective don't mistake slow peers for a dead coordinator.
func (c *coordinator) heartbeatLoop() {
	t := time.NewTicker(c.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		c.mu.Lock()
		peers := append([]*peer(nil), c.peers...)
		c.mu.Unlock()
		now := time.Now()
		for r, p := range peers {
			if p == nil || p.dead.Load() {
				continue
			}
			if now.Sub(time.Unix(0, p.lastSeen.Load())) > c.opts.HeartbeatTimeout {
				p.dead.Store(true)
				select {
				case c.contribs <- contribution{rank: r, err: errHeartbeatExpired, p: p}:
				case <-c.done:
					return
				}
				continue
			}
			// Ignore write errors here: a failed heartbeat write means
			// the conn is dying, which readLoop reports authoritatively.
			_ = p.send(frame{op: opHeartbeat}, c.opts.HeartbeatInterval)
		}
	}
}

// readLoop feeds one client's frames into the coordinator.
func (c *coordinator) readLoop(rank int, p *peer) {
	br := bufio.NewReaderSize(p.conn, 1<<16)
	for {
		f, err := readFrame(br)
		if err != nil {
			select {
			case c.contribs <- contribution{rank: rank, err: err, p: p}:
			case <-c.done:
			}
			return
		}
		p.lastSeen.Store(time.Now().UnixNano())
		if f.op == opHeartbeat {
			continue
		}
		select {
		case c.contribs <- contribution{rank: rank, f: f, p: p}:
		case <-c.done:
			return
		}
	}
}

// currentPeer returns the installed connection for a rank.
func (c *coordinator) currentPeer(rank int) *peer {
	if rank <= 0 || c.peers == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peers[rank]
}

// markDead flags a rank's peer and closes its socket (waking its
// readLoop and failing any in-flight write). When p is non-nil only
// that incarnation is touched, so a death reported against a superseded
// connection cannot take down a revived rank's fresh one.
func (c *coordinator) markDead(rank int, p *peer) {
	if p == nil {
		p = c.currentPeer(rank)
	}
	if p != nil {
		if !p.dead.Swap(true) {
			mRankFailures.Inc()
		}
		p.conn.Close()
	}
}

// broadcast delivers a round-abort frame to every live rank. Ranks
// whose notification cannot be delivered are themselves marked dead and
// returned for follow-up aborts.
func (c *coordinator) broadcast(alive []bool, f frame) (more []int) {
	for r := range alive {
		if !alive[r] {
			continue
		}
		if r == 0 {
			select {
			case c.replies[0] <- f:
			case <-c.done:
			}
			continue
		}
		p := c.currentPeer(r)
		if p == nil {
			continue
		}
		if err := p.send(f, c.opts.IOTimeout); err != nil {
			alive[r] = false
			c.markDead(r, p)
			more = append(more, r)
		}
	}
	return more
}

// joinClass is the run loop's membership decision for one claim.
type joinClass int

const (
	joinReject    joinClass = iota // refused; connection already answered
	joinFresh                      // new member, no round abort needed
	joinRevive                     // dead slot reclaimed: abort + opRevive
	joinSupersede                  // live slot reclaimed: death + revival
)

// classify decides what a claim means given the current membership.
// Anonymous claims (claim < 0) get the lowest never-claimed slot.
// Explicit claims record their token on first use and must match it
// afterwards. Only the run loop calls this.
func (c *coordinator) classify(jr *joinReq, alive []bool) joinClass {
	if jr.claim < 0 {
		for r := 1; r < c.size; r++ {
			if !c.claimed[r] {
				jr.claim = r
				c.claimed[r] = true
				c.tokens[r] = jr.token
				if alive[r] {
					return joinFresh
				}
				return joinRevive // declared dead before ever joining
			}
		}
		c.reject(jr.conn)
		return joinReject
	}
	if jr.claim == 0 || jr.claim >= c.size {
		c.reject(jr.conn)
		return joinReject
	}
	r := jr.claim
	if !c.claimed[r] {
		c.claimed[r] = true
		c.tokens[r] = jr.token
		if alive[r] {
			return joinFresh
		}
		return joinRevive
	}
	if c.tokens[r] != jr.token {
		c.reject(jr.conn)
		return joinReject
	}
	if !alive[r] {
		return joinRevive
	}
	if c.currentPeer(r) == nil {
		return joinFresh // claimed but never installed; cannot happen today
	}
	// The slot's owner reconnected while its old connection still looks
	// alive (e.g. half-open after a silent kill): the old incarnation is
	// implicitly dead.
	return joinSupersede
}

// install publishes a joined connection as rank jr.claim: it sends the
// handshake reply (rank, size, current seq, dead set), registers the
// peer, and starts its read loop. It returns false if the handshake
// could not be delivered, in which case the connection is abandoned and
// the slot keeps its previous state.
func (c *coordinator) install(jr *joinReq, seq uint32, alive []bool) bool {
	r := jr.claim
	le := binary.LittleEndian
	var deadSet []int
	for i := range alive {
		if !alive[i] && i != r {
			deadSet = append(deadSet, i)
		}
	}
	buf := make([]byte, replyHdrSize+4*len(deadSet))
	copy(buf[:4], handshakeMagic)
	le.PutUint32(buf[4:], uint32(r))
	le.PutUint32(buf[8:], uint32(c.size))
	le.PutUint32(buf[12:], seq)
	le.PutUint32(buf[16:], uint32(len(deadSet)))
	for i, d := range deadSet {
		le.PutUint32(buf[replyHdrSize+4*i:], uint32(d))
	}
	jr.conn.SetWriteDeadline(time.Now().Add(c.opts.IOTimeout))
	if _, err := jr.conn.Write(buf); err != nil {
		jr.conn.Close()
		return false
	}
	jr.conn.SetWriteDeadline(time.Time{})
	p := &peer{conn: jr.conn, bw: bufio.NewWriterSize(jr.conn, 1<<16)}
	p.lastSeen.Store(time.Now().UnixNano())
	c.mu.Lock()
	first := c.peers[r] == nil
	c.peers[r] = p
	c.mu.Unlock()
	if first {
		c.firstJoins++
		if c.firstJoins == c.size-1 {
			// Initial join phase complete: lift the join deadline and
			// keep listening for rejoins.
			c.joinsDone.Store(true)
			if tl, ok := c.ln.(*net.TCPListener); ok {
				tl.SetDeadline(time.Time{})
			}
		}
	}
	go c.readLoop(r, p)
	return true
}

// run processes collective rounds until teardown. Round protocol: one
// contribution per live rank, all carrying the current sequence number;
// any membership change aborts the round — survivors get an opError
// (death) or opRevive (rejoin) frame — and bumps the sequence so stale
// retransmissions are discarded.
func (c *coordinator) run() {
	size := c.size
	alive := make([]bool, size)
	for i := range alive {
		alive[i] = true
	}
	var seq uint32
	var pendingDead []int
	var pendingRevive []*joinReq
	for {
		if len(pendingDead) > 0 {
			f := pendingDead[0]
			pendingDead = append(pendingDead[:0], pendingDead[1:]...)
			pendingDead = append(pendingDead, c.broadcast(alive, rankFrame(opError, seq, f))...)
			seq++
			continue
		}
		if len(pendingRevive) > 0 {
			jr := pendingRevive[0]
			pendingRevive = pendingRevive[1:]
			// Announce the revival (aborting the round in progress), then
			// install the rejoiner aligned to the post-abort sequence.
			pendingDead = append(pendingDead, c.broadcast(alive, rankFrame(opRevive, seq, jr.claim))...)
			seq++
			if c.install(jr, seq, alive) {
				alive[jr.claim] = true
				mRankRejoins.Inc()
			}
			continue
		}
		need := 0
		for _, a := range alive {
			if a {
				need++
			}
		}
		// Collect one contribution per live rank for round seq.
		round := make([]frame, size)
		have := make([]bool, size)
		failed := -1
		var revive *joinReq
		var roundTimer *time.Timer
		var timerC <-chan time.Time
	collect:
		for got := 0; got < need; {
			select {
			case ct := <-c.contribs:
				if ct.rank < 0 || ct.rank >= size || !alive[ct.rank] {
					continue // late traffic from an already-dead rank
				}
				if ct.err != nil {
					if ct.p != nil && c.currentPeer(ct.rank) != ct.p {
						continue // stale incarnation; the slot was reclaimed
					}
					alive[ct.rank] = false
					c.markDead(ct.rank, ct.p)
					failed = ct.rank
					break collect
				}
				if ct.f.seq != seq {
					if ct.f.seq < seq {
						continue // stale contribution from an aborted round
					}
					c.stop(fmt.Errorf("mpinet: rank %d ahead of round (seq %d, coordinator at %d)", ct.rank, ct.f.seq, seq))
					return
				}
				if have[ct.rank] {
					c.stop(fmt.Errorf("mpinet: rank %d contributed twice to round %d", ct.rank, seq))
					return
				}
				round[ct.rank] = ct.f
				have[ct.rank] = true
				got++
				if got == 1 && c.opts.RoundTimeout > 0 {
					roundTimer = time.NewTimer(c.opts.RoundTimeout)
					timerC = roundTimer.C
				}
			case jr := <-c.joins:
				switch c.classify(jr, alive) {
				case joinFresh:
					c.install(jr, seq, alive)
					// No abort: the slot was already counted alive, the
					// round simply waits for its first contribution.
				case joinRevive:
					revive = jr
					break collect
				case joinSupersede:
					old := c.currentPeer(jr.claim)
					alive[jr.claim] = false
					c.markDead(jr.claim, old)
					failed = jr.claim
					revive = jr
					break collect
				case joinReject:
					// Answered and closed by classify.
				}
			case <-timerC:
				// Per-collective deadline: the slowest live rank (rank 0
				// hosts the clock and is exempt) is declared failed.
				lag := -1
				for r := 1; r < size; r++ {
					if alive[r] && !have[r] {
						lag = r
						break
					}
				}
				if lag < 0 {
					roundTimer.Reset(c.opts.RoundTimeout)
					continue
				}
				alive[lag] = false
				c.markDead(lag, c.currentPeer(lag))
				failed = lag
				break collect
			case <-c.done:
				if roundTimer != nil {
					roundTimer.Stop()
				}
				return
			}
		}
		if roundTimer != nil {
			roundTimer.Stop()
		}
		if failed >= 0 {
			pendingDead = append(pendingDead, failed)
		}
		if revive != nil {
			pendingRevive = append(pendingRevive, revive)
		}
		if failed >= 0 || revive != nil {
			continue
		}
		// All live ranks must be in the same collective.
		op := byte(0)
		for r := 0; r < size; r++ {
			if !alive[r] {
				continue
			}
			if op == 0 {
				op = round[r].op
			} else if round[r].op != op {
				c.stop(fmt.Errorf("mpinet: collective mismatch: op %d vs rank %d in op %d", op, r, round[r].op))
				return
			}
		}
		// Trace context for the replies: the first live contribution
		// carrying one (in practice rank 0, the round initiator). Worker
		// ranks pick it up from the reply header.
		var tID, sID uint64
		for r := 0; r < size; r++ {
			if alive[r] && round[r].traceID != 0 {
				tID, sID = round[r].traceID, round[r].spanID
				break
			}
		}
		// Route. Dead ranks contribute nil blobs and receive nothing.
		out := make([]frame, size)
		switch op {
		case opBarrier:
			for r := range out {
				out[r] = frame{op: op, seq: seq, traceID: tID, spanID: sID}
			}
		case opExchange:
			for dst := 0; dst < size; dst++ {
				if !alive[dst] {
					continue
				}
				blobs := make([][]byte, size)
				for src := 0; src < size; src++ {
					if alive[src] && dst < len(round[src].blobs) {
						blobs[src] = round[src].blobs[dst]
					}
				}
				out[dst] = frame{op: op, seq: seq, traceID: tID, spanID: sID, blobs: blobs}
			}
		case opGather:
			blobs := make([][]byte, size)
			for src := 0; src < size; src++ {
				if alive[src] && len(round[src].blobs) > 0 {
					blobs[src] = round[src].blobs[0]
				}
			}
			out[0] = frame{op: op, seq: seq, traceID: tID, spanID: sID, blobs: blobs}
			for r := 1; r < size; r++ {
				out[r] = frame{op: op, seq: seq, traceID: tID, spanID: sID}
			}
		default:
			c.stop(fmt.Errorf("mpinet: unknown op %d", op))
			return
		}
		// Deliver. A failed delivery marks the rank dead; the round
		// still counts as complete for everyone else, and the death is
		// announced at the top of the next iteration.
		for r := 0; r < size; r++ {
			if !alive[r] {
				continue
			}
			if r == 0 {
				select {
				case c.replies[0] <- out[0]:
				case <-c.done:
					return
				}
				continue
			}
			p := c.currentPeer(r)
			if p == nil {
				continue
			}
			if err := p.send(out[r], c.opts.IOTimeout); err != nil {
				alive[r] = false
				c.markDead(r, p)
				pendingDead = append(pendingDead, r)
			}
		}
		seq++
	}
}

func (c *coordinator) teardown() {
	if c.ln != nil {
		c.ln.Close()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.peers {
		if p != nil {
			p.conn.Close()
		}
	}
}

// Rank returns this node's rank.
func (n *Node) Rank() int { return n.rank }

// Size returns the number of participating ranks.
func (n *Node) Size() int { return n.size }

// InitialDead returns the ranks that were already declared dead when
// this node joined (empty for an initial join). It implements
// mpi.DeadRankser so failure-tolerant callers can seed their survivor
// set consistently with the incumbents after a rejoin.
func (n *Node) InitialDead() []int {
	return append([]int(nil), n.initialDead...)
}

// failErr wraps a transport-level failure where no specific rank can be
// blamed (from this node's point of view the coordinator is gone).
func failErr(op string, err error) error {
	return &mpi.RankFailedError{Rank: -1, Op: op, Err: err}
}

// ctxErr wraps a context cancellation observed during a collective. It
// is deliberately NOT a *mpi.RankFailedError: cancellation is this
// process's own decision, so failure-tolerant callers (which retry on
// rank deaths) must see it as a plain abort and give up.
func ctxErr(op string, err error) error {
	return fmt.Errorf("mpinet: %s: %w", op, err)
}

// roundTrip submits f for the next round and waits for the reply.
// Heartbeat frames are skipped; an opError reply is surfaced as a
// *mpi.RankFailedError naming the dead rank, an opRevive reply as a
// *mpi.RankRevivedError naming the returning one.
//
// Cancellation joins the existing failure machinery: on the coordinator
// rank the reply wait selects on ctx.Done alongside the shutdown
// channel; on client ranks a context.AfterFunc forces the blocked frame
// read to fail by expiring the read deadline — the same wake-up path the
// heartbeat failure detector uses — and the resulting read error is
// attributed to the context rather than to a peer. A node whose
// collective was canceled is no longer round-aligned with the cluster
// and must be Closed; the survivors' failure detector then reclassifies
// this rank as dead, exactly as for a crash.
func (n *Node) roundTrip(ctx context.Context, f frame) (frame, error) {
	op := opName(f.op)
	if err := ctx.Err(); err != nil {
		return frame{}, ctxErr(op, err)
	}
	mRounds.Inc()
	var outBytes int64
	for _, b := range f.blobs {
		outBytes += int64(len(b))
	}
	mBytesSent.Add(outBytes)
	sw := telemetry.Clock()
	defer sw.Observe(mRoundSeconds)
	f.seq = n.seq
	n.seq++ // one round consumed per call, successful or aborted
	f.traceID = n.traceID.Load()
	f.spanID = n.spanID.Load()
	if n.coord != nil {
		select {
		case n.coord.contribs <- contribution{rank: 0, f: f}:
		case <-ctx.Done():
			return frame{}, ctxErr(op, ctx.Err())
		case <-n.coord.done:
			return frame{}, failErr(op, n.coordErr())
		}
		select {
		case rep := <-n.coord.replies[0]:
			switch rep.op {
			case opError:
				return frame{}, &mpi.RankFailedError{Rank: frameRank(rep), Op: op}
			case opRevive:
				return frame{}, &mpi.RankRevivedError{Rank: frameRank(rep), Op: op}
			}
			n.noteTrace(rep)
			return rep, nil
		case <-ctx.Done():
			return frame{}, ctxErr(op, ctx.Err())
		case <-n.coord.done:
			return frame{}, failErr(op, n.coordErr())
		}
	}
	if ctx.Done() != nil {
		// Wake the blocked read below the moment the context dies. The
		// deadline is left expired on purpose: the node is out of the
		// round protocol after a cancellation and must not be reused.
		stop := context.AfterFunc(ctx, func() {
			n.conn.SetReadDeadline(time.Unix(1, 0))
		})
		defer stop()
	}
	n.wmu.Lock()
	n.conn.SetWriteDeadline(time.Now().Add(n.opts.IOTimeout))
	err := writeFrame(n.bw, f)
	n.conn.SetWriteDeadline(time.Time{})
	n.wmu.Unlock()
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return frame{}, ctxErr(op, cerr)
		}
		return frame{}, failErr(op, err)
	}
	for {
		if !n.opts.DisableHeartbeat {
			// The coordinator heartbeats at HeartbeatInterval, so a
			// healthy link always delivers SOMETHING well within the
			// timeout, no matter how slow the other ranks are.
			n.conn.SetReadDeadline(time.Now().Add(n.opts.HeartbeatTimeout))
		}
		rep, err := readFrame(n.br)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return frame{}, ctxErr(op, cerr)
			}
			return frame{}, failErr(op, err)
		}
		switch rep.op {
		case opHeartbeat:
			continue
		case opError:
			n.conn.SetReadDeadline(time.Time{})
			return frame{}, &mpi.RankFailedError{Rank: frameRank(rep), Op: op}
		case opRevive:
			n.conn.SetReadDeadline(time.Time{})
			return frame{}, &mpi.RankRevivedError{Rank: frameRank(rep), Op: op}
		default:
			n.conn.SetReadDeadline(time.Time{})
			n.noteTrace(rep)
			return rep, nil
		}
	}
}

// noteTrace records the trace context carried by a reply frame.
// Replies echo the round initiator's context, so after its first
// collective every worker knows the coordinator's live root span.
func (n *Node) noteTrace(rep frame) {
	if rep.traceID != 0 {
		n.traceID.Store(rep.traceID)
		n.spanID.Store(rep.spanID)
	}
}

// SetTraceContext sets the span context stamped on this node's
// outgoing collectives (mpi.TraceCarrier). Rank 0 calls it with its
// root span; zero traceID clears.
func (n *Node) SetTraceContext(traceID, spanID uint64) {
	n.traceID.Store(traceID)
	n.spanID.Store(spanID)
}

// TraceContext returns the node's current trace context: what was set
// locally, or the last nonzero context observed on a reply.
func (n *Node) TraceContext() (traceID, spanID uint64) {
	return n.traceID.Load(), n.spanID.Load()
}

func (n *Node) coordErr() error {
	select {
	case err := <-n.coord.errs:
		return err
	default:
		return fmt.Errorf("mpinet: coordinator stopped")
	}
}

// Barrier blocks until every live rank has entered the barrier.
func (n *Node) Barrier(ctx context.Context) error {
	_, err := n.roundTrip(ctx, frame{op: opBarrier})
	return err
}

// Exchange performs a personalized all-to-all of byte blobs. Blobs from
// ranks that have died are delivered as nil.
func (n *Node) Exchange(ctx context.Context, out [][]byte) ([][]byte, error) {
	if len(out) != n.size {
		return nil, fmt.Errorf("mpinet: Exchange with %d blobs for %d ranks", len(out), n.size)
	}
	rep, err := n.roundTrip(ctx, frame{op: opExchange, blobs: out})
	if err != nil {
		return nil, err
	}
	if len(rep.blobs) != n.size {
		return nil, fmt.Errorf("mpinet: Exchange reply has %d blobs", len(rep.blobs))
	}
	return rep.blobs, nil
}

// Gather collects every live rank's blob on rank 0 (dead ranks' slots
// are nil).
func (n *Node) Gather(ctx context.Context, blob []byte) ([][]byte, error) {
	rep, err := n.roundTrip(ctx, frame{op: opGather, blobs: [][]byte{blob}})
	if err != nil {
		return nil, err
	}
	if n.rank != 0 {
		return nil, nil
	}
	if len(rep.blobs) != n.size {
		return nil, fmt.Errorf("mpinet: Gather reply has %d blobs", len(rep.blobs))
	}
	return rep.blobs, nil
}

// Close releases the node's connection. Rank 0's Close tears the whole
// coordinator down; call it only after every rank has finished its
// collectives.
func (n *Node) Close() error {
	if n.coord != nil {
		n.coord.stop(nil)
		return nil
	}
	n.hbOnce.Do(func() {
		if n.hbStop != nil {
			close(n.hbStop)
		}
	})
	return n.conn.Close()
}

// Addr returns the coordinator's listen address (rank 0 only), useful
// when hosting on ":0".
func (n *Node) Addr() string {
	if n.coord != nil && n.coord.ln != nil {
		return n.coord.ln.Addr().String()
	}
	return ""
}
