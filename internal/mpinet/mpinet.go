// Package mpinet is a TCP-based implementation of the mpi.Transport
// interface, letting the simulation's ranks run as separate OS processes
// — the "distributed compute cluster" deployment of the paper — instead
// of goroutines inside one process.
//
// Topology is a star: rank 0 hosts a coordinator that the other ranks
// join. Collectives (Barrier, Exchange, Gather) are synchronous rounds:
// every rank submits one frame, the coordinator routes, every rank
// receives its reply. Because the simulation already requires all ranks
// to enter every collective in the same order, the star adds no extra
// synchronization constraints; it trades the O(P²) connection mesh of
// real MPI for implementation clarity at the modest rank counts this
// reproduction targets.
//
// # Failure model
//
// A rank that dies (connection reset, premature EOF, heartbeat timeout)
// does not hang the cluster. The coordinator aborts the round in
// progress, marks the rank dead, and broadcasts an error frame carrying
// the failed rank's identity to every survivor, whose pending collective
// returns a typed *mpi.RankFailedError. Every survivor receives the same
// rank in the same order, so failure-aware callers (such as
// core.SynthesizeDistributed) can deterministically agree on how to
// redistribute the dead rank's work and retry. Subsequent collectives
// run among the survivors; a dead rank contributes nil blobs.
//
// Round consistency across aborts is kept by a sequence number stamped
// on every frame: both sides count one round per collective call
// (successful or aborted), so a contribution from before an abort is
// recognizably stale and discarded rather than corrupting a retry.
//
// Liveness is coordinator-driven: clients heartbeat the coordinator so
// silent deaths are detected even mid-computation, and the coordinator
// heartbeats blocked clients so a rank waiting in a collective can
// distinguish "peers are slow" from "coordinator is gone".
//
// # Wire format
//
// Every frame is length-prefixed
//
//	frameLen u32 | op u8 | seq u32 | nblobs u32 | { blobLen u32 | blob }*
//
// with all integers little-endian. The handshake after connect is
//
//	magic "CSIM" | rank u32 | size u32
//
// from coordinator to client.
package mpinet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// Telemetry series for the network transport: one round per collective
// (Barrier/Exchange/Gather each consume exactly one), payload bytes as
// sent, failures as observed by the coordinator's detector.
var (
	mRounds       = telemetry.C("mpinet_rounds_total")
	mBytesSent    = telemetry.C("mpinet_bytes_sent_total")
	mRankFailures = telemetry.C("mpinet_rank_failures_total")
	mRoundSeconds = telemetry.H("mpinet_round_seconds")
)

const handshakeMagic = "CSIM"

// Collective opcodes.
const (
	opBarrier byte = iota + 1
	opExchange
	opGather
	opHeartbeat // liveness signal; never part of a round
	opError     // round abort: blobs[0] = failed rank (int32 LE)
)

func opName(op byte) string {
	switch op {
	case opBarrier:
		return "Barrier"
	case opExchange:
		return "Exchange"
	case opGather:
		return "Gather"
	default:
		return fmt.Sprintf("op%d", op)
	}
}

// maxFrame bounds a single frame to guard against corrupt length
// prefixes (256 MiB is far above any batch the simulation exchanges).
const maxFrame = 256 << 20

// frameHdrSize is op + seq + nblobs.
const frameHdrSize = 1 + 4 + 4

// Options tunes the transport's robustness machinery. The zero value of
// each field selects its default; use Host(addr, size, opts) / Join(addr,
// opts) to apply.
type Options struct {
	// DialTimeout is Join's total retry budget when the coordinator is
	// not yet listening (exponential backoff with jitter underneath) and
	// the coordinator's window for accepting all joins. Default 15s.
	DialTimeout time.Duration
	// IOTimeout is the per-frame write deadline and the handshake read
	// deadline. Default 30s.
	IOTimeout time.Duration
	// HeartbeatInterval is how often liveness frames are sent in both
	// directions. Default 500ms.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a peer may stay silent before being
	// declared dead. Default 5s.
	HeartbeatTimeout time.Duration
	// DisableHeartbeat turns the failure detector off entirely; dead
	// ranks are then only detected by connection errors.
	DisableHeartbeat bool
	// WrapConn, when non-nil, wraps the dialed connection before use —
	// a fault-injection hook for chaos tests (see
	// faultinject.NewFlakyConn). Join only.
	WrapConn func(net.Conn) net.Conn
}

func withDefaults(opts []Options) Options {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 15 * time.Second
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 30 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 5 * time.Second
	}
	return o
}

// frame is one collective contribution or reply.
type frame struct {
	op    byte
	seq   uint32
	blobs [][]byte
}

func writeFrame(w *bufio.Writer, f frame) error {
	total := frameHdrSize
	for _, b := range f.blobs {
		total += 4 + len(b)
	}
	if total > maxFrame {
		return fmt.Errorf("mpinet: frame of %d bytes exceeds limit", total)
	}
	var u32 [4]byte
	le := binary.LittleEndian
	le.PutUint32(u32[:], uint32(total))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	if err := w.WriteByte(f.op); err != nil {
		return err
	}
	le.PutUint32(u32[:], f.seq)
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	le.PutUint32(u32[:], uint32(len(f.blobs)))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	for _, b := range f.blobs {
		le.PutUint32(u32[:], uint32(len(b)))
		if _, err := w.Write(u32[:]); err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) (frame, error) {
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return frame{}, err
	}
	le := binary.LittleEndian
	total := le.Uint32(u32[:])
	if total < frameHdrSize || total > maxFrame {
		return frame{}, fmt.Errorf("mpinet: bad frame length %d", total)
	}
	body := make([]byte, total)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	f := frame{op: body[0], seq: le.Uint32(body[1:5])}
	n := le.Uint32(body[5:9])
	off := uint32(frameHdrSize)
	for i := uint32(0); i < n; i++ {
		if off+4 > total {
			return frame{}, fmt.Errorf("mpinet: truncated frame")
		}
		bl := le.Uint32(body[off:])
		off += 4
		if off+bl > total || off+bl < off {
			return frame{}, fmt.Errorf("mpinet: truncated blob")
		}
		f.blobs = append(f.blobs, body[off:off+bl])
		off += bl
	}
	return f, nil
}

// errorFrame builds the round-abort broadcast for a failed rank.
func errorFrame(seq uint32, failed int) frame {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(int32(failed)))
	return frame{op: opError, seq: seq, blobs: [][]byte{b[:]}}
}

// failedRank decodes an opError frame.
func failedRank(f frame) int {
	if len(f.blobs) < 1 || len(f.blobs[0]) < 4 {
		return -1
	}
	return int(int32(binary.LittleEndian.Uint32(f.blobs[0])))
}

// contribution is one rank's collective input arriving at the
// coordinator.
type contribution struct {
	rank int
	f    frame
	err  error
}

// peer is the coordinator's per-client connection state.
type peer struct {
	conn     net.Conn
	bw       *bufio.Writer
	wmu      sync.Mutex // serializes reply and heartbeat writes
	lastSeen atomic.Int64
	dead     atomic.Bool
}

// send writes one frame to the peer under its write lock with deadline.
func (p *peer) send(f frame, timeout time.Duration) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.conn.SetWriteDeadline(time.Now().Add(timeout))
	err := writeFrame(p.bw, f)
	p.conn.SetWriteDeadline(time.Time{})
	return err
}

// Node is one rank's handle; it implements mpi.Transport.
type Node struct {
	rank, size int
	opts       Options
	seq        uint32 // next collective round number

	// Client side (rank > 0).
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	wmu    sync.Mutex // serializes collective and heartbeat writes
	hbStop chan struct{}
	hbOnce sync.Once

	// Coordinator side (rank 0).
	coord *coordinator
}

type coordinator struct {
	ln   net.Listener
	opts Options

	mu    sync.Mutex // guards peers slots for the failure detector
	peers []*peer    // index 0 unused

	contribs  chan contribution
	replies   []chan frame // only [0] is used: rank 0's local delivery
	done      chan struct{}
	closeOnce sync.Once
	errs      chan error
}

var errHeartbeatExpired = errors.New("mpinet: heartbeat timeout")

// stop records err (best effort), signals shutdown and releases the
// sockets. Safe to call from any goroutine, any number of times.
func (c *coordinator) stop(err error) {
	if err != nil {
		select {
		case c.errs <- err:
		default:
		}
	}
	c.closeOnce.Do(func() { close(c.done) })
	c.teardown()
}

// Host listens on addr, waits for size-1 ranks to join, and returns the
// rank-0 Node. Size must be at least 1; with size 1 the transport is
// fully local.
func Host(addr string, size int, opts ...Options) (*Node, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpinet: size must be ≥ 1, got %d", size)
	}
	o := withDefaults(opts)
	c := &coordinator{
		opts:     o,
		contribs: make(chan contribution, 2*size+2),
		replies:  make([]chan frame, size),
		done:     make(chan struct{}),
		errs:     make(chan error, size),
	}
	// replies[0] must absorb one abort broadcast per possible rank death
	// without blocking the round loop, even if rank 0 is between
	// collectives at the time.
	c.replies[0] = make(chan frame, size+1)
	node := &Node{rank: 0, size: size, opts: o, coord: c}
	if size == 1 {
		go c.run(size)
		return node, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.ln = ln
	c.peers = make([]*peer, size)
	// Accept joins in the background so callers can publish Addr()
	// before the other ranks dial in; the first collective blocks until
	// everyone has joined, because the round needs all contributions.
	go func() {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(time.Now().Add(o.DialTimeout))
		}
		for r := 1; r < size; r++ {
			conn, err := ln.Accept()
			if err != nil {
				c.stop(fmt.Errorf("mpinet: accepting rank %d/%d: %w", r, size-1, err))
				return
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			// Handshake: assign the next rank.
			var hs [12]byte
			copy(hs[:4], handshakeMagic)
			binary.LittleEndian.PutUint32(hs[4:], uint32(r))
			binary.LittleEndian.PutUint32(hs[8:], uint32(size))
			conn.SetWriteDeadline(time.Now().Add(o.IOTimeout))
			if _, err := conn.Write(hs[:]); err != nil {
				c.stop(err)
				return
			}
			conn.SetWriteDeadline(time.Time{})
			p := &peer{conn: conn, bw: bufio.NewWriterSize(conn, 1<<16)}
			p.lastSeen.Store(time.Now().UnixNano())
			c.mu.Lock()
			c.peers[r] = p
			c.mu.Unlock()
			go c.readLoop(r, p)
		}
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(time.Time{})
		}
		c.run(size)
	}()
	if !o.DisableHeartbeat {
		go c.heartbeatLoop()
	}
	return node, nil
}

// Join dials the coordinator at addr and returns this process's Node.
// The coordinator assigns the rank. Dialing retries with exponential
// backoff plus jitter until Options.DialTimeout elapses, so ranks can be
// launched in any order without a thundering-herd of reconnects.
func Join(addr string, opts ...Options) (*Node, error) {
	o := withDefaults(opts)
	var conn net.Conn
	deadline := time.Now().Add(o.DialTimeout)
	backoff := 10 * time.Millisecond
	const backoffCap = time.Second
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	attempts := 0
	var err error
	for {
		attempts++
		conn, err = net.DialTimeout("tcp", addr, o.IOTimeout)
		if err == nil {
			break
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("mpinet: joining %s: %d attempts over %v: %w",
				addr, attempts, o.DialTimeout, err)
		}
		// Full jitter on top of the exponential base keeps simultaneous
		// joiners from hammering the coordinator in lockstep.
		sleep := backoff + time.Duration(rng.Int63n(int64(backoff)))
		if sleep > remain {
			sleep = remain
		}
		time.Sleep(sleep)
		if backoff < backoffCap {
			backoff *= 2
		}
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if o.WrapConn != nil {
		conn = o.WrapConn(conn)
	}
	var hs [12]byte
	conn.SetReadDeadline(time.Now().Add(o.IOTimeout))
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mpinet: handshake: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	if string(hs[:4]) != handshakeMagic {
		conn.Close()
		return nil, fmt.Errorf("mpinet: bad handshake magic %q", hs[:4])
	}
	rank := int(binary.LittleEndian.Uint32(hs[4:]))
	size := int(binary.LittleEndian.Uint32(hs[8:]))
	n := &Node{
		rank:   rank,
		size:   size,
		opts:   o,
		conn:   conn,
		br:     bufio.NewReaderSize(conn, 1<<16),
		bw:     bufio.NewWriterSize(conn, 1<<16),
		hbStop: make(chan struct{}),
	}
	if !o.DisableHeartbeat {
		go n.heartbeatLoop()
	}
	return n, nil
}

// heartbeatLoop (client side) keeps the coordinator's failure detector
// fed while this rank computes between collectives.
func (n *Node) heartbeatLoop() {
	t := time.NewTicker(n.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.hbStop:
			return
		case <-t.C:
		}
		n.wmu.Lock()
		n.conn.SetWriteDeadline(time.Now().Add(n.opts.HeartbeatInterval))
		err := writeFrame(n.bw, frame{op: opHeartbeat})
		n.conn.SetWriteDeadline(time.Time{})
		n.wmu.Unlock()
		if err != nil {
			return // conn is dead; the next collective will surface it
		}
	}
}

// heartbeatLoop (coordinator side) does two jobs per tick: declare
// silent clients dead (feeding the round loop an error contribution) and
// send liveness frames to healthy clients so ranks blocked in a
// collective don't mistake slow peers for a dead coordinator.
func (c *coordinator) heartbeatLoop() {
	t := time.NewTicker(c.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		c.mu.Lock()
		peers := append([]*peer(nil), c.peers...)
		c.mu.Unlock()
		now := time.Now()
		for r, p := range peers {
			if p == nil || p.dead.Load() {
				continue
			}
			if now.Sub(time.Unix(0, p.lastSeen.Load())) > c.opts.HeartbeatTimeout {
				p.dead.Store(true)
				select {
				case c.contribs <- contribution{rank: r, err: errHeartbeatExpired}:
				case <-c.done:
					return
				}
				continue
			}
			// Ignore write errors here: a failed heartbeat write means
			// the conn is dying, which readLoop reports authoritatively.
			_ = p.send(frame{op: opHeartbeat}, c.opts.HeartbeatInterval)
		}
	}
}

// readLoop feeds one client's frames into the coordinator.
func (c *coordinator) readLoop(rank int, p *peer) {
	br := bufio.NewReaderSize(p.conn, 1<<16)
	for {
		f, err := readFrame(br)
		if err != nil {
			select {
			case c.contribs <- contribution{rank: rank, err: err}:
			case <-c.done:
			}
			return
		}
		p.lastSeen.Store(time.Now().UnixNano())
		if f.op == opHeartbeat {
			continue
		}
		select {
		case c.contribs <- contribution{rank: rank, f: f}:
		case <-c.done:
			return
		}
	}
}

// markDead flags a rank's peer and closes its socket (waking its
// readLoop and failing any in-flight write).
func (c *coordinator) markDead(rank int) {
	if rank <= 0 || c.peers == nil {
		return
	}
	c.mu.Lock()
	p := c.peers[rank]
	c.mu.Unlock()
	if p != nil {
		if !p.dead.Swap(true) {
			mRankFailures.Inc()
		}
		p.conn.Close()
	}
}

// broadcastAbort tells every live rank that `failed` died during round
// seq. Ranks whose notification cannot be delivered are themselves
// marked dead and returned for follow-up aborts.
func (c *coordinator) broadcastAbort(alive []bool, seq uint32, failed int) (more []int) {
	ef := errorFrame(seq, failed)
	for r := range alive {
		if !alive[r] {
			continue
		}
		if r == 0 {
			select {
			case c.replies[0] <- ef:
			case <-c.done:
			}
			continue
		}
		c.mu.Lock()
		p := c.peers[r]
		c.mu.Unlock()
		if p == nil {
			continue
		}
		if err := p.send(ef, c.opts.IOTimeout); err != nil {
			alive[r] = false
			c.markDead(r)
			more = append(more, r)
		}
	}
	return more
}

// run processes collective rounds until teardown. Round protocol: one
// contribution per live rank, all carrying the current sequence number;
// any death aborts the round (survivors get an opError frame) and bumps
// the sequence so stale retransmissions are discarded.
func (c *coordinator) run(size int) {
	alive := make([]bool, size)
	for i := range alive {
		alive[i] = true
	}
	var seq uint32
	var pendingDead []int
	for {
		if len(pendingDead) > 0 {
			f := pendingDead[0]
			pendingDead = append(pendingDead[:0], pendingDead[1:]...)
			pendingDead = append(pendingDead, c.broadcastAbort(alive, seq, f)...)
			seq++
			continue
		}
		need := 0
		for _, a := range alive {
			if a {
				need++
			}
		}
		// Collect one contribution per live rank for round seq.
		round := make([]frame, size)
		have := make([]bool, size)
		failed := -1
		for got := 0; got < need; {
			var ct contribution
			select {
			case ct = <-c.contribs:
			case <-c.done:
				return
			}
			if ct.rank < 0 || ct.rank >= size || !alive[ct.rank] {
				continue // late traffic from an already-dead rank
			}
			if ct.err != nil {
				alive[ct.rank] = false
				c.markDead(ct.rank)
				failed = ct.rank
				break
			}
			if ct.f.seq != seq {
				if ct.f.seq < seq {
					continue // stale contribution from an aborted round
				}
				c.stop(fmt.Errorf("mpinet: rank %d ahead of round (seq %d, coordinator at %d)", ct.rank, ct.f.seq, seq))
				return
			}
			if have[ct.rank] {
				c.stop(fmt.Errorf("mpinet: rank %d contributed twice to round %d", ct.rank, seq))
				return
			}
			round[ct.rank] = ct.f
			have[ct.rank] = true
			got++
		}
		if failed >= 0 {
			pendingDead = append(pendingDead, failed)
			continue
		}
		// All live ranks must be in the same collective.
		op := byte(0)
		for r := 0; r < size; r++ {
			if !alive[r] {
				continue
			}
			if op == 0 {
				op = round[r].op
			} else if round[r].op != op {
				c.stop(fmt.Errorf("mpinet: collective mismatch: op %d vs rank %d in op %d", op, r, round[r].op))
				return
			}
		}
		// Route. Dead ranks contribute nil blobs and receive nothing.
		out := make([]frame, size)
		switch op {
		case opBarrier:
			for r := range out {
				out[r] = frame{op: op, seq: seq}
			}
		case opExchange:
			for dst := 0; dst < size; dst++ {
				if !alive[dst] {
					continue
				}
				blobs := make([][]byte, size)
				for src := 0; src < size; src++ {
					if alive[src] && dst < len(round[src].blobs) {
						blobs[src] = round[src].blobs[dst]
					}
				}
				out[dst] = frame{op: op, seq: seq, blobs: blobs}
			}
		case opGather:
			blobs := make([][]byte, size)
			for src := 0; src < size; src++ {
				if alive[src] && len(round[src].blobs) > 0 {
					blobs[src] = round[src].blobs[0]
				}
			}
			out[0] = frame{op: op, seq: seq, blobs: blobs}
			for r := 1; r < size; r++ {
				out[r] = frame{op: op, seq: seq}
			}
		default:
			c.stop(fmt.Errorf("mpinet: unknown op %d", op))
			return
		}
		// Deliver. A failed delivery marks the rank dead; the round
		// still counts as complete for everyone else, and the death is
		// announced at the top of the next iteration.
		for r := 0; r < size; r++ {
			if !alive[r] {
				continue
			}
			if r == 0 {
				select {
				case c.replies[0] <- out[0]:
				case <-c.done:
					return
				}
				continue
			}
			c.mu.Lock()
			p := c.peers[r]
			c.mu.Unlock()
			if p == nil {
				continue
			}
			if err := p.send(out[r], c.opts.IOTimeout); err != nil {
				alive[r] = false
				c.markDead(r)
				pendingDead = append(pendingDead, r)
			}
		}
		seq++
	}
}

func (c *coordinator) teardown() {
	if c.ln != nil {
		c.ln.Close()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.peers {
		if p != nil {
			p.conn.Close()
		}
	}
}

// Rank returns this node's rank.
func (n *Node) Rank() int { return n.rank }

// Size returns the number of participating ranks.
func (n *Node) Size() int { return n.size }

// failErr wraps a transport-level failure where no specific rank can be
// blamed (from this node's point of view the coordinator is gone).
func failErr(op string, err error) error {
	return &mpi.RankFailedError{Rank: -1, Op: op, Err: err}
}

// ctxErr wraps a context cancellation observed during a collective. It
// is deliberately NOT a *mpi.RankFailedError: cancellation is this
// process's own decision, so failure-tolerant callers (which retry on
// rank deaths) must see it as a plain abort and give up.
func ctxErr(op string, err error) error {
	return fmt.Errorf("mpinet: %s: %w", op, err)
}

// roundTrip submits f for the next round and waits for the reply.
// Heartbeat frames are skipped; an opError reply is surfaced as a
// *mpi.RankFailedError naming the dead rank.
//
// Cancellation joins the existing failure machinery: on the coordinator
// rank the reply wait selects on ctx.Done alongside the shutdown
// channel; on client ranks a context.AfterFunc forces the blocked frame
// read to fail by expiring the read deadline — the same wake-up path the
// heartbeat failure detector uses — and the resulting read error is
// attributed to the context rather than to a peer. A node whose
// collective was canceled is no longer round-aligned with the cluster
// and must be Closed; the survivors' failure detector then reclassifies
// this rank as dead, exactly as for a crash.
func (n *Node) roundTrip(ctx context.Context, f frame) (frame, error) {
	op := opName(f.op)
	if err := ctx.Err(); err != nil {
		return frame{}, ctxErr(op, err)
	}
	mRounds.Inc()
	var outBytes int64
	for _, b := range f.blobs {
		outBytes += int64(len(b))
	}
	mBytesSent.Add(outBytes)
	sw := telemetry.Clock()
	defer sw.Observe(mRoundSeconds)
	f.seq = n.seq
	n.seq++ // one round consumed per call, successful or aborted
	if n.coord != nil {
		select {
		case n.coord.contribs <- contribution{rank: 0, f: f}:
		case <-ctx.Done():
			return frame{}, ctxErr(op, ctx.Err())
		case <-n.coord.done:
			return frame{}, failErr(op, n.coordErr())
		}
		select {
		case rep := <-n.coord.replies[0]:
			if rep.op == opError {
				return frame{}, &mpi.RankFailedError{Rank: failedRank(rep), Op: op}
			}
			return rep, nil
		case <-ctx.Done():
			return frame{}, ctxErr(op, ctx.Err())
		case <-n.coord.done:
			return frame{}, failErr(op, n.coordErr())
		}
	}
	if ctx.Done() != nil {
		// Wake the blocked read below the moment the context dies. The
		// deadline is left expired on purpose: the node is out of the
		// round protocol after a cancellation and must not be reused.
		stop := context.AfterFunc(ctx, func() {
			n.conn.SetReadDeadline(time.Unix(1, 0))
		})
		defer stop()
	}
	n.wmu.Lock()
	n.conn.SetWriteDeadline(time.Now().Add(n.opts.IOTimeout))
	err := writeFrame(n.bw, f)
	n.conn.SetWriteDeadline(time.Time{})
	n.wmu.Unlock()
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return frame{}, ctxErr(op, cerr)
		}
		return frame{}, failErr(op, err)
	}
	for {
		if !n.opts.DisableHeartbeat {
			// The coordinator heartbeats at HeartbeatInterval, so a
			// healthy link always delivers SOMETHING well within the
			// timeout, no matter how slow the other ranks are.
			n.conn.SetReadDeadline(time.Now().Add(n.opts.HeartbeatTimeout))
		}
		rep, err := readFrame(n.br)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return frame{}, ctxErr(op, cerr)
			}
			return frame{}, failErr(op, err)
		}
		switch rep.op {
		case opHeartbeat:
			continue
		case opError:
			n.conn.SetReadDeadline(time.Time{})
			return frame{}, &mpi.RankFailedError{Rank: failedRank(rep), Op: op}
		default:
			n.conn.SetReadDeadline(time.Time{})
			return rep, nil
		}
	}
}

func (n *Node) coordErr() error {
	select {
	case err := <-n.coord.errs:
		return err
	default:
		return fmt.Errorf("mpinet: coordinator stopped")
	}
}

// Barrier blocks until every live rank has entered the barrier.
func (n *Node) Barrier(ctx context.Context) error {
	_, err := n.roundTrip(ctx, frame{op: opBarrier})
	return err
}

// Exchange performs a personalized all-to-all of byte blobs. Blobs from
// ranks that have died are delivered as nil.
func (n *Node) Exchange(ctx context.Context, out [][]byte) ([][]byte, error) {
	if len(out) != n.size {
		return nil, fmt.Errorf("mpinet: Exchange with %d blobs for %d ranks", len(out), n.size)
	}
	rep, err := n.roundTrip(ctx, frame{op: opExchange, blobs: out})
	if err != nil {
		return nil, err
	}
	if len(rep.blobs) != n.size {
		return nil, fmt.Errorf("mpinet: Exchange reply has %d blobs", len(rep.blobs))
	}
	return rep.blobs, nil
}

// Gather collects every live rank's blob on rank 0 (dead ranks' slots
// are nil).
func (n *Node) Gather(ctx context.Context, blob []byte) ([][]byte, error) {
	rep, err := n.roundTrip(ctx, frame{op: opGather, blobs: [][]byte{blob}})
	if err != nil {
		return nil, err
	}
	if n.rank != 0 {
		return nil, nil
	}
	if len(rep.blobs) != n.size {
		return nil, fmt.Errorf("mpinet: Gather reply has %d blobs", len(rep.blobs))
	}
	return rep.blobs, nil
}

// Close releases the node's connection. Rank 0's Close tears the whole
// coordinator down; call it only after every rank has finished its
// collectives.
func (n *Node) Close() error {
	if n.coord != nil {
		n.coord.stop(nil)
		return nil
	}
	n.hbOnce.Do(func() {
		if n.hbStop != nil {
			close(n.hbStop)
		}
	})
	return n.conn.Close()
}

// Addr returns the coordinator's listen address (rank 0 only), useful
// when hosting on ":0".
func (n *Node) Addr() string {
	if n.coord != nil && n.coord.ln != nil {
		return n.coord.ln.Addr().String()
	}
	return ""
}
