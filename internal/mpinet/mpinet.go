// Package mpinet is a TCP-based implementation of the mpi.Transport
// interface, letting the simulation's ranks run as separate OS processes
// — the "distributed compute cluster" deployment of the paper — instead
// of goroutines inside one process.
//
// Topology is a star: rank 0 hosts a coordinator that the other ranks
// join. Collectives (Barrier, Exchange, Gather) are synchronous rounds:
// every rank submits one frame, the coordinator routes, every rank
// receives its reply. Because the simulation already requires all ranks
// to enter every collective in the same order, the star adds no extra
// synchronization constraints; it trades the O(P²) connection mesh of
// real MPI for implementation clarity at the modest rank counts this
// reproduction targets.
//
// Wire format: every frame is length-prefixed
//
//	frameLen u32 | op u8 | nblobs u32 | { blobLen u32 | blob }*
//
// with all integers little-endian. The handshake after connect is
//
//	magic "CSIM" | rank u32 | size u32
//
// from coordinator to client.
package mpinet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

const handshakeMagic = "CSIM"

// Collective opcodes.
const (
	opBarrier byte = iota + 1
	opExchange
	opGather
)

// maxFrame bounds a single frame to guard against corrupt length
// prefixes (256 MiB is far above any batch the simulation exchanges).
const maxFrame = 256 << 20

// frame is one collective contribution or reply.
type frame struct {
	op    byte
	blobs [][]byte
}

func writeFrame(w *bufio.Writer, f frame) error {
	total := 1 + 4
	for _, b := range f.blobs {
		total += 4 + len(b)
	}
	if total > maxFrame {
		return fmt.Errorf("mpinet: frame of %d bytes exceeds limit", total)
	}
	var u32 [4]byte
	le := binary.LittleEndian
	le.PutUint32(u32[:], uint32(total))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	if err := w.WriteByte(f.op); err != nil {
		return err
	}
	le.PutUint32(u32[:], uint32(len(f.blobs)))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	for _, b := range f.blobs {
		le.PutUint32(u32[:], uint32(len(b)))
		if _, err := w.Write(u32[:]); err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) (frame, error) {
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return frame{}, err
	}
	le := binary.LittleEndian
	total := le.Uint32(u32[:])
	if total < 5 || total > maxFrame {
		return frame{}, fmt.Errorf("mpinet: bad frame length %d", total)
	}
	body := make([]byte, total)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	f := frame{op: body[0]}
	n := le.Uint32(body[1:5])
	off := uint32(5)
	for i := uint32(0); i < n; i++ {
		if off+4 > total {
			return frame{}, fmt.Errorf("mpinet: truncated frame")
		}
		bl := le.Uint32(body[off:])
		off += 4
		if off+bl > total {
			return frame{}, fmt.Errorf("mpinet: truncated blob")
		}
		f.blobs = append(f.blobs, body[off:off+bl])
		off += bl
	}
	return f, nil
}

// contribution is one rank's collective input arriving at the
// coordinator.
type contribution struct {
	rank int
	f    frame
	err  error
}

// Node is one rank's handle; it implements mpi.Transport.
type Node struct {
	rank, size int

	// Client side (rank > 0).
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// Coordinator side (rank 0).
	coord *coordinator
}

type coordinator struct {
	ln net.Listener

	mu    sync.Mutex // guards conns
	conns []net.Conn // index 0 unused

	contribs  chan contribution
	replies   []chan frame // per rank; rank 0's reply read locally
	done      chan struct{}
	closeOnce sync.Once
	errs      chan error
}

// stop records err (best effort), signals shutdown and releases the
// sockets. Safe to call from any goroutine, any number of times.
func (c *coordinator) stop(err error) {
	if err != nil {
		select {
		case c.errs <- err:
		default:
		}
	}
	c.closeOnce.Do(func() { close(c.done) })
	c.teardown()
}

// Host listens on addr, waits for size-1 ranks to join, and returns the
// rank-0 Node. Size must be at least 1; with size 1 the transport is
// fully local.
func Host(addr string, size int) (*Node, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpinet: size must be ≥ 1, got %d", size)
	}
	c := &coordinator{
		contribs: make(chan contribution, size),
		replies:  make([]chan frame, size),
		done:     make(chan struct{}),
		errs:     make(chan error, size),
	}
	for i := range c.replies {
		c.replies[i] = make(chan frame, 1)
	}
	if size == 1 {
		go c.run(size)
		return &Node{rank: 0, size: size, coord: c}, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.ln = ln
	c.conns = make([]net.Conn, size)
	// Accept joins in the background so callers can publish Addr()
	// before the other ranks dial in; the first collective blocks until
	// everyone has joined, because the round needs all contributions.
	go func() {
		for r := 1; r < size; r++ {
			conn, err := ln.Accept()
			if err != nil {
				c.stop(err)
				return
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			// Handshake: assign the next rank.
			var hs [12]byte
			copy(hs[:4], handshakeMagic)
			binary.LittleEndian.PutUint32(hs[4:], uint32(r))
			binary.LittleEndian.PutUint32(hs[8:], uint32(size))
			if _, err := conn.Write(hs[:]); err != nil {
				c.stop(err)
				return
			}
			c.mu.Lock()
			c.conns[r] = conn
			c.mu.Unlock()
			go c.readLoop(r, conn)
		}
		c.run(size)
	}()
	return &Node{rank: 0, size: size, coord: c}, nil
}

// Join dials the coordinator at addr and returns this process's Node.
// The coordinator assigns the rank.
func Join(addr string) (*Node, error) {
	var conn net.Conn
	var err error
	// The coordinator may not be listening yet; retry briefly.
	for attempt := 0; attempt < 50; attempt++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("mpinet: joining %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	var hs [12]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mpinet: handshake: %w", err)
	}
	if string(hs[:4]) != handshakeMagic {
		conn.Close()
		return nil, fmt.Errorf("mpinet: bad handshake magic %q", hs[:4])
	}
	rank := int(binary.LittleEndian.Uint32(hs[4:]))
	size := int(binary.LittleEndian.Uint32(hs[8:]))
	return &Node{
		rank: rank,
		size: size,
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}, nil
}

// readLoop feeds one client's frames into the coordinator.
func (c *coordinator) readLoop(rank int, conn net.Conn) {
	br := bufio.NewReaderSize(conn, 1<<16)
	for {
		f, err := readFrame(br)
		if err != nil {
			select {
			case c.contribs <- contribution{rank: rank, err: err}:
			case <-c.done:
			}
			return
		}
		select {
		case c.contribs <- contribution{rank: rank, f: f}:
		case <-c.done:
			return
		}
	}
}

// run processes collective rounds until teardown.
func (c *coordinator) run(size int) {
	writers := make([]*bufio.Writer, size)
	c.mu.Lock()
	for r := 1; r < size; r++ {
		if c.conns != nil && c.conns[r] != nil {
			writers[r] = bufio.NewWriterSize(c.conns[r], 1<<16)
		}
	}
	c.mu.Unlock()
	fail := c.stop
	for {
		// Collect one contribution per rank.
		round := make([]frame, size)
		for got := 0; got < size; got++ {
			var ct contribution
			select {
			case ct = <-c.contribs:
			case <-c.done:
				return
			}
			if ct.err != nil {
				if ct.err == io.EOF && got == 0 && ct.rank != 0 {
					// Orderly shutdown: a client closed between rounds.
					fail(io.EOF)
					return
				}
				fail(fmt.Errorf("mpinet: rank %d: %w", ct.rank, ct.err))
				return
			}
			round[ct.rank] = ct.f
		}
		op := round[0].op
		for r := 1; r < size; r++ {
			if round[r].op != op {
				fail(fmt.Errorf("mpinet: collective mismatch: rank 0 in op %d, rank %d in op %d", op, r, round[r].op))
				return
			}
		}
		// Route.
		out := make([]frame, size)
		switch op {
		case opBarrier:
			for r := range out {
				out[r] = frame{op: op}
			}
		case opExchange:
			for dst := 0; dst < size; dst++ {
				blobs := make([][]byte, size)
				for src := 0; src < size; src++ {
					if dst < len(round[src].blobs) {
						blobs[src] = round[src].blobs[dst]
					}
				}
				out[dst] = frame{op: op, blobs: blobs}
			}
		case opGather:
			blobs := make([][]byte, size)
			for src := 0; src < size; src++ {
				if len(round[src].blobs) > 0 {
					blobs[src] = round[src].blobs[0]
				}
			}
			out[0] = frame{op: op, blobs: blobs}
			for r := 1; r < size; r++ {
				out[r] = frame{op: op}
			}
		default:
			fail(fmt.Errorf("mpinet: unknown op %d", op))
			return
		}
		// Deliver.
		for r := 0; r < size; r++ {
			if r == 0 || writers[r] == nil {
				select {
				case c.replies[r] <- out[r]:
				case <-c.done:
					return
				}
				continue
			}
			if err := writeFrame(writers[r], out[r]); err != nil {
				fail(fmt.Errorf("mpinet: reply to rank %d: %w", r, err))
				return
			}
		}
	}
}

func (c *coordinator) teardown() {
	if c.ln != nil {
		c.ln.Close()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, conn := range c.conns {
		if conn != nil {
			conn.Close()
		}
	}
}

// Rank returns this node's rank.
func (n *Node) Rank() int { return n.rank }

// Size returns the number of participating ranks.
func (n *Node) Size() int { return n.size }

// roundTrip submits f and waits for the reply.
func (n *Node) roundTrip(f frame) (frame, error) {
	if n.coord != nil {
		select {
		case n.coord.contribs <- contribution{rank: 0, f: f}:
		case <-n.coord.done:
			return frame{}, n.coordErr()
		}
		select {
		case rep := <-n.coord.replies[0]:
			return rep, nil
		case <-n.coord.done:
			return frame{}, n.coordErr()
		}
	}
	if err := writeFrame(n.bw, f); err != nil {
		return frame{}, err
	}
	return readFrame(n.br)
}

func (n *Node) coordErr() error {
	select {
	case err := <-n.coord.errs:
		return err
	default:
		return fmt.Errorf("mpinet: coordinator stopped")
	}
}

// Barrier blocks until every rank has entered the barrier.
func (n *Node) Barrier() error {
	_, err := n.roundTrip(frame{op: opBarrier})
	return err
}

// Exchange performs a personalized all-to-all of byte blobs.
func (n *Node) Exchange(out [][]byte) ([][]byte, error) {
	if len(out) != n.size {
		return nil, fmt.Errorf("mpinet: Exchange with %d blobs for %d ranks", len(out), n.size)
	}
	rep, err := n.roundTrip(frame{op: opExchange, blobs: out})
	if err != nil {
		return nil, err
	}
	if len(rep.blobs) != n.size {
		return nil, fmt.Errorf("mpinet: Exchange reply has %d blobs", len(rep.blobs))
	}
	return rep.blobs, nil
}

// Gather collects every rank's blob on rank 0.
func (n *Node) Gather(blob []byte) ([][]byte, error) {
	rep, err := n.roundTrip(frame{op: opGather, blobs: [][]byte{blob}})
	if err != nil {
		return nil, err
	}
	if n.rank != 0 {
		return nil, nil
	}
	if len(rep.blobs) != n.size {
		return nil, fmt.Errorf("mpinet: Gather reply has %d blobs", len(rep.blobs))
	}
	return rep.blobs, nil
}

// Close releases the node's connection. Rank 0's Close tears the whole
// coordinator down; call it only after every rank has finished its
// collectives.
func (n *Node) Close() error {
	if n.coord != nil {
		n.coord.stop(nil)
		return nil
	}
	return n.conn.Close()
}

// Addr returns the coordinator's listen address (rank 0 only), useful
// when hosting on ":0".
func (n *Node) Addr() string {
	if n.coord != nil && n.coord.ln != nil {
		return n.coord.ln.Addr().String()
	}
	return ""
}
