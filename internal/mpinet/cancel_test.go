package mpinet

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/mpi"
)

// TestCollectivesCanceledBeforeStart: a pre-canceled context makes
// every collective return promptly with an error wrapping
// context.Canceled — and NOT a rank-failure, so distributed retry
// logic treats cancellation as fatal rather than as a dead peer.
func TestCollectivesCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cluster(t, 2, func(n *Node) error {
		for name, call := range map[string]func() error{
			"Barrier": func() error { return n.Barrier(ctx) },
			"Gather": func() error {
				_, err := n.Gather(ctx, []byte("x"))
				return err
			},
			"Exchange": func() error {
				_, err := n.Exchange(ctx, make([][]byte, n.Size()))
				return err
			},
		} {
			err := call()
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s: err = %v, want context.Canceled", name, err)
			}
			var rf *mpi.RankFailedError
			if errors.As(err, &rf) {
				t.Errorf("%s: cancellation misreported as rank failure: %v", name, err)
			}
		}
		return nil
	})
}

// TestBarrierCanceledMidCollective: rank 1 never enters the barrier;
// rank 0, blocked inside it, must be released by its context rather
// than hanging until the failure detector trips.
func TestBarrierCanceledMidCollective(t *testing.T) {
	// A long suspect timeout ensures the context, not the heartbeat
	// detector, is what unblocks the stuck rank.
	cluster(t, 2, func(n *Node) error {
		if n.Rank() != 0 {
			// Rank 1 sits out; its only job is to keep the cluster
			// alive while rank 0 blocks.
			time.Sleep(300 * time.Millisecond)
			return nil
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(50 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		err := n.Barrier(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("stuck barrier err = %v, want context.Canceled", err)
		}
		if wall := time.Since(start); wall > 5*time.Second {
			t.Errorf("cancellation took %s; should release the collective promptly", wall)
		}
		return nil
	})
}
