package mpinet

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/abm"
	"repro/internal/eventlog"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/synthpop"
)

var _ mpi.Transport = (*Node)(nil)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	in := frame{op: opExchange, blobs: [][]byte{{1, 2, 3}, nil, {}, {9}}}
	if err := writeFrame(w, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if out.op != in.op || len(out.blobs) != len(in.blobs) {
		t.Fatalf("frame = %+v", out)
	}
	if !bytes.Equal(out.blobs[0], []byte{1, 2, 3}) || !bytes.Equal(out.blobs[3], []byte{9}) {
		t.Fatalf("blobs = %v", out.blobs)
	}
	if len(out.blobs[1]) != 0 || len(out.blobs[2]) != 0 {
		t.Fatal("empty blobs not preserved as empty")
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	// Absurd length prefix.
	data := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(data))); err == nil {
		t.Fatal("garbage length accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, frame{op: opBarrier}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(trunc))); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// cluster starts a size-rank TCP cluster on loopback and runs fn on
// every rank concurrently.
func cluster(t *testing.T, size int, fn func(n *Node) error) {
	t.Helper()
	host, err := Host("127.0.0.1:0", size)
	if err != nil {
		t.Fatal(err)
	}
	addr := host.Addr()
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 1; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			n, err := Join(addr)
			if err != nil {
				errs[r] = err
				return
			}
			defer n.Close()
			errs[r] = fn(n)
		}(r)
	}
	errs[0] = fn(host)
	wg.Wait()
	host.Close()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestHostValidation(t *testing.T) {
	if _, err := Host("127.0.0.1:0", 0); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestSingleRankLocalOnly(t *testing.T) {
	n, err := Host("", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Rank() != 0 || n.Size() != 1 {
		t.Fatal("identity wrong")
	}
	if err := n.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := n.Exchange(context.Background(), [][]byte{{7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], []byte{7}) {
		t.Fatalf("self-exchange = %v", got)
	}
}

func TestRanksAssignedUniquely(t *testing.T) {
	const size = 5
	var mu sync.Mutex
	seen := map[int]bool{}
	cluster(t, size, func(n *Node) error {
		mu.Lock()
		defer mu.Unlock()
		if seen[n.Rank()] {
			return fmt.Errorf("duplicate rank %d", n.Rank())
		}
		seen[n.Rank()] = true
		if n.Size() != size {
			return fmt.Errorf("size %d", n.Size())
		}
		return nil
	})
	if len(seen) != size {
		t.Fatalf("ranks = %v", seen)
	}
}

func TestBarrierRounds(t *testing.T) {
	cluster(t, 4, func(n *Node) error {
		for i := 0; i < 50; i++ {
			if err := n.Barrier(context.Background()); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestExchangeRouting(t *testing.T) {
	const size = 4
	cluster(t, size, func(n *Node) error {
		// Rank r sends byte [r, dst] to each dst.
		out := make([][]byte, size)
		for dst := 0; dst < size; dst++ {
			out[dst] = []byte{byte(n.Rank()), byte(dst)}
		}
		in, err := n.Exchange(context.Background(), out)
		if err != nil {
			return err
		}
		for src := 0; src < size; src++ {
			want := []byte{byte(src), byte(n.Rank())}
			if !bytes.Equal(in[src], want) {
				return fmt.Errorf("rank %d: from %d got %v, want %v", n.Rank(), src, in[src], want)
			}
		}
		return nil
	})
}

func TestExchangeRepeatedRounds(t *testing.T) {
	const size = 3
	cluster(t, size, func(n *Node) error {
		for round := 0; round < 30; round++ {
			out := make([][]byte, size)
			for dst := 0; dst < size; dst++ {
				out[dst] = []byte{byte(round), byte(n.Rank()), byte(dst)}
			}
			in, err := n.Exchange(context.Background(), out)
			if err != nil {
				return err
			}
			for src := 0; src < size; src++ {
				if len(in[src]) != 3 || in[src][0] != byte(round) || in[src][1] != byte(src) {
					return fmt.Errorf("round %d rank %d: bad blob %v", round, n.Rank(), in[src])
				}
			}
		}
		return nil
	})
}

func TestExchangeArityError(t *testing.T) {
	n, err := Host("", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.Exchange(context.Background(), make([][]byte, 3)); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestGather(t *testing.T) {
	const size = 4
	cluster(t, size, func(n *Node) error {
		got, err := n.Gather(context.Background(), []byte{byte(10 + n.Rank())})
		if err != nil {
			return err
		}
		if n.Rank() != 0 {
			if got != nil {
				return fmt.Errorf("non-root received gather data")
			}
			return nil
		}
		for r := 0; r < size; r++ {
			if len(got[r]) != 1 || got[r][0] != byte(10+r) {
				return fmt.Errorf("gather[%d] = %v", r, got[r])
			}
		}
		return nil
	})
}

func TestMixedCollectiveSequence(t *testing.T) {
	cluster(t, 3, func(n *Node) error {
		if err := n.Barrier(context.Background()); err != nil {
			return err
		}
		if _, err := n.Exchange(context.Background(), make([][]byte, 3)); err != nil {
			return err
		}
		if _, err := n.Gather(context.Background(), []byte{1}); err != nil {
			return err
		}
		return n.Barrier(context.Background())
	})
}

// TestABMOverTCPMatchesInProcess runs the same simulation through the
// in-process transport and through real TCP loopback connections, and
// requires bit-identical event logs.
func TestABMOverTCPMatchesInProcess(t *testing.T) {
	pop, err := synthpop.Generate(synthpop.Config{Persons: 800, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, 77)
	const ranks = 4
	const days = 2
	edges, loads := partition.TransitionGraph(pop, gen, days, pop.NumPersons())
	assign := partition.Spatial(pop, edges, loads, ranks)

	// Reference: in-process run.
	ref, err := abm.Run(context.Background(), abm.Config{
		Pop: pop, Gen: gen, Ranks: ranks, Days: days, Assign: assign,
		LogDir: t.TempDir(), Log: eventlog.Config{CacheEntries: 64},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Distributed: each rank a goroutine with its own TCP connection.
	dir := t.TempDir()
	host, err := Host("127.0.0.1:0", ranks)
	if err != nil {
		t.Fatal(err)
	}
	addr := host.Addr()
	results := make([]abm.RankResult, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	runRank := func(n *Node) (abm.RankResult, error) {
		return abm.RunRank(context.Background(), n, abm.RankConfig{
			Pop: pop, Gen: gen, Days: days, Assign: assign,
			LogPath: filepath.Join(dir, fmt.Sprintf("rank%04d.h5l", n.Rank())),
			Log:     eventlog.Config{CacheEntries: 64},
		})
	}
	for r := 1; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			n, err := Join(addr)
			if err != nil {
				errs[r] = err
				return
			}
			defer n.Close()
			results[n.Rank()], errs[r] = runRank(n)
		}(r)
	}
	results[0], errs[0] = runRank(host)
	wg.Wait()
	host.Close()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	// Compare event multisets.
	read := func(paths []string) map[eventlog.Entry]int {
		got := map[eventlog.Entry]int{}
		for _, p := range paths {
			rd, err := eventlog.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := rd.ForEach(func(e eventlog.Entry, _ []uint32) error {
				got[e]++
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			rd.Close()
		}
		return got
	}
	var tcpPaths []string
	var totalMig uint64
	for _, rr := range results {
		tcpPaths = append(tcpPaths, rr.LogPath)
		totalMig += rr.Migrations
	}
	a := read(ref.LogPaths)
	b := read(tcpPaths)
	if len(a) != len(b) {
		t.Fatalf("distinct entries differ: %d vs %d", len(a), len(b))
	}
	for e, nExpect := range a {
		if b[e] != nExpect {
			t.Fatalf("entry %+v: in-process %d, TCP %d", e, nExpect, b[e])
		}
	}
	if totalMig != ref.Migrations {
		t.Fatalf("migrations differ: TCP %d, in-process %d", totalMig, ref.Migrations)
	}
}

func TestClientDisconnectSurfacesError(t *testing.T) {
	host, err := Host("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	n, err := Join(host.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Client leaves without completing any collective.
	n.Close()
	if err := host.Barrier(context.Background()); err == nil {
		t.Fatal("barrier succeeded after peer disconnect")
	}
}
