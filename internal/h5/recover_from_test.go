package h5

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestRecoverFromCursor is the incremental-tail contract: scanning a
// complete file from the end of chunk i yields exactly the chunks
// after i, and the durable cursor always lands on the same end offset
// as a full recovery — it never regresses.
func TestRecoverFromCursor(t *testing.T) {
	for _, flags := range allFlagSets {
		path := filepath.Join(t.TempDir(), "t.h5l")
		chunks := randChunks(9, 7)
		_, ends := buildFile(t, path, flags, chunks)
		full, err := Recover(path)
		if err != nil {
			t.Fatalf("flags %#x: %v", flags, err)
		}

		for i, pos := range ends {
			s, err := RecoverFrom(path, pos)
			if err != nil {
				t.Fatalf("flags %#x pos %d: %v", flags, pos, err)
			}
			if !s.Complete() {
				t.Fatalf("flags %#x pos %d: complete file not recognized", flags, pos)
			}
			if want := len(chunks) - (i + 1); s.Chunks() != want {
				t.Fatalf("flags %#x from chunk %d end: %d chunks, want %d", flags, i, s.Chunks(), want)
			}
			if s.End() != full.End() {
				t.Fatalf("flags %#x pos %d: cursor %d, full recovery says %d", flags, pos, s.End(), full.End())
			}
			if s.Chunks() == 0 {
				continue
			}
			r, err := s.Reader()
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < s.Chunks(); k++ {
				got, err := r.ReadChunk(k)
				if err != nil || !bytes.Equal(got, chunks[i+1+k]) {
					t.Fatalf("flags %#x from chunk %d end: chunk %d mismatch: %v", flags, i, k, err)
				}
			}
			r.Close()
		}

		// From position 0 (and from inside the header, which clamps) the
		// scan is a full recovery.
		for _, pos := range []int64{0, 4} {
			s, err := RecoverFrom(path, pos)
			if err != nil {
				t.Fatal(err)
			}
			if s.Chunks() != len(chunks) {
				t.Fatalf("flags %#x pos %d: %d chunks, want all %d", flags, pos, s.Chunks(), len(chunks))
			}
		}
	}
}

// TestRecoverFromTornFile: on a footer-less file cut mid-chunk, the
// incremental scan salvages exactly the intact chunks past the cursor
// and reports the file incomplete — the state a live tail sees between
// a writer's flushes.
func TestRecoverFromTornFile(t *testing.T) {
	for _, flags := range allFlagSets {
		path := filepath.Join(t.TempDir(), "t.h5l")
		chunks := randChunks(13, 5)
		data, ends := buildFile(t, path, flags, chunks)

		// Keep everything up to mid-way through the last chunk, no footer.
		cut := ends[len(ends)-2] + (ends[len(ends)-1]-ends[len(ends)-2])/2
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		s, err := RecoverFrom(path, ends[1]) // cursor after chunk 1
		if err != nil {
			t.Fatalf("flags %#x: %v", flags, err)
		}
		if s.Complete() {
			t.Fatalf("flags %#x: torn file reported complete", flags)
		}
		// Chunks 2 and 3 are intact past the cursor; the torn chunk 4 is
		// not salvaged and the cursor stops at chunk 3's end.
		if s.Chunks() != 2 {
			t.Fatalf("flags %#x: salvaged %d chunks, want 2", flags, s.Chunks())
		}
		if s.End() != ends[len(ends)-2] {
			t.Fatalf("flags %#x: cursor %d, want %d", flags, s.End(), ends[len(ends)-2])
		}
		r, err := s.Reader()
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			got, err := r.ReadChunk(k)
			if err != nil || !bytes.Equal(got, chunks[2+k]) {
				t.Fatalf("flags %#x: salvaged chunk %d mismatch: %v", flags, k, err)
			}
		}
		r.Close()

		// Resuming from the torn scan's own cursor finds nothing new.
		again, err := RecoverFrom(path, s.End())
		if err != nil {
			t.Fatal(err)
		}
		if again.Chunks() != 0 || again.End() != s.End() {
			t.Fatalf("flags %#x: rescan from cursor found %d chunks, cursor %d → %d",
				flags, again.Chunks(), s.End(), again.End())
		}
	}
}
