package h5

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/rng"
)

var allFlagSets = []uint16{0, FlagDeflate, FlagCRC32, FlagDeflate | FlagCRC32}

// buildFile writes a file with the given chunks and returns its bytes
// plus the end offset of every chunk (offset just past chunk i).
func buildFile(t *testing.T, path string, flags uint16, chunks [][]byte) (data []byte, chunkEnds []int64) {
	t.Helper()
	w, err := Create(path, testSchema, flags)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if err := w.WriteChunk(c); err != nil {
			t.Fatal(err)
		}
		chunkEnds = append(chunkEnds, int64(w.offset))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, chunkEnds
}

func TestRecoverCompleteFile(t *testing.T) {
	for _, flags := range allFlagSets {
		path := filepath.Join(t.TempDir(), "t.h5l")
		chunks := randChunks(11, 5)
		writeFile(t, path, flags, chunks)
		s, err := Recover(path)
		if err != nil {
			t.Fatalf("flags %#x: %v", flags, err)
		}
		if !s.Complete() {
			t.Fatalf("flags %#x: complete file not recognized", flags)
		}
		if s.Chunks() != len(chunks) || s.TruncatedBytes() != 0 {
			t.Fatalf("flags %#x: chunks=%d truncated=%d", flags, s.Chunks(), s.TruncatedBytes())
		}
		r, err := s.Reader()
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range chunks {
			got, err := r.ReadChunk(i)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("flags %#x: chunk %d: %v", flags, i, err)
			}
		}
		r.Close()
	}
}

// The core salvage property: truncating a valid file at EVERY byte
// offset and running Recover always yields exactly the longest intact
// chunk prefix — never a partial or corrupt chunk, never fewer chunks
// than fully present.
func TestRecoverTruncatedAtEveryByte(t *testing.T) {
	for _, flags := range allFlagSets {
		dir := t.TempDir()
		full := filepath.Join(dir, "full.h5l")
		chunks := randChunks(12, 6)
		data, ends := buildFile(t, full, flags, chunks)
		headerEnd := ends[0] - chunkStride(uint32(len(chunks[0])), flags)
		if flags&FlagDeflate != 0 {
			// Compressed sizes differ; recompute header end from chunk 0
			// meta via Recover on the full file.
			s, err := Recover(full)
			if err != nil {
				t.Fatal(err)
			}
			headerEnd = s.dataStart()
		}

		trunc := filepath.Join(dir, "trunc.h5l")
		for cut := int64(0); cut <= int64(len(data)); cut++ {
			if err := os.WriteFile(trunc, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Recover(trunc)
			if cut < headerEnd {
				// Header incomplete: unrecoverable, must error (not
				// misparse).
				if err == nil {
					t.Fatalf("flags %#x cut %d: truncated header accepted", flags, cut)
				}
				continue
			}
			if err != nil {
				t.Fatalf("flags %#x cut %d: %v", flags, cut, err)
			}
			want := 0
			for _, e := range ends {
				if e <= cut {
					want++
				}
			}
			if s.Chunks() != want {
				t.Fatalf("flags %#x cut %d: recovered %d chunks, want %d", flags, cut, s.Chunks(), want)
			}
			r, err := s.Reader()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < want; i++ {
				got, err := r.ReadChunk(i)
				if err != nil || !bytes.Equal(got, chunks[i]) {
					t.Fatalf("flags %#x cut %d: salvaged chunk %d corrupt: %v", flags, cut, i, err)
				}
			}
			r.Close()
		}
	}
}

func TestRecoverStopsAtBitFlip(t *testing.T) {
	// With CRC, a flipped payload byte in chunk 2 of a crashed file must
	// limit the salvage to chunks 0-1.
	for _, flags := range []uint16{FlagCRC32, FlagCRC32 | FlagDeflate} {
		dir := t.TempDir()
		path := filepath.Join(dir, "t.h5l")
		chunks := randChunks(13, 5)
		data, ends := buildFile(t, path, flags, chunks)
		// Simulate crash: drop index+footer, then flip a byte inside
		// chunk 2's payload.
		crashed := data[:ends[len(ends)-1]]
		flipAt := ends[1] + chunkHdrSize + 3
		crashed[flipAt] ^= 0x40
		if err := os.WriteFile(path, crashed, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Recover(path)
		if err != nil {
			t.Fatal(err)
		}
		if s.Chunks() != 2 {
			t.Fatalf("flags %#x: salvaged %d chunks past a bit flip, want 2", flags, s.Chunks())
		}
	}
}

func TestReadChunkDetectsCorruptionViaCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	chunks := randChunks(14, 3)
	data, ends := buildFile(t, path, FlagCRC32, chunks)
	data[ends[0]+chunkHdrSize+1] ^= 0x01 // flip byte in chunk 1 payload
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadChunk(0); err != nil {
		t.Fatalf("intact chunk rejected: %v", err)
	}
	if _, err := r.ReadChunk(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt chunk read succeeded: %v", err)
	}
}

func TestRecoverResumeAppend(t *testing.T) {
	for _, flags := range allFlagSets {
		dir := t.TempDir()
		path := filepath.Join(dir, "t.h5l")
		chunks := randChunks(15, 4)
		data, ends := buildFile(t, path, flags, chunks)
		// Crash mid-chunk-3: keep chunks 0-2 plus half of chunk 3.
		cut := ends[2] + (ends[3]-ends[2])/2
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Recover(path)
		if err != nil {
			t.Fatal(err)
		}
		if s.Chunks() != 3 {
			t.Fatalf("flags %#x: salvaged %d chunks, want 3", flags, s.Chunks())
		}
		if s.TruncatedBytes() == 0 {
			t.Fatalf("flags %#x: torn tail not reported", flags)
		}
		w, err := s.Resume(s.Chunks())
		if err != nil {
			t.Fatal(err)
		}
		extra := randChunks(16, 2)
		for _, c := range extra {
			if err := w.WriteChunk(c); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// The resumed file is a normal, footer-complete file containing
		// chunks 0-2 plus the two appended ones.
		r, err := Open(path)
		if err != nil {
			t.Fatalf("flags %#x: resumed file unreadable: %v", flags, err)
		}
		want := append(append([][]byte{}, chunks[:3]...), extra...)
		if r.NumChunks() != len(want) {
			t.Fatalf("flags %#x: %d chunks, want %d", flags, r.NumChunks(), len(want))
		}
		for i, wc := range want {
			got, err := r.ReadChunk(i)
			if err != nil || !bytes.Equal(got, wc) {
				t.Fatalf("flags %#x chunk %d: %v", flags, i, err)
			}
		}
		r.Close()
	}
}

func TestResumeKeepFewerChunks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	chunks := randChunks(17, 4)
	writeFile(t, path, FlagCRC32, chunks)
	s, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Resume(2) // drop chunks 2,3 even though intact
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumChunks() != 2 {
		t.Fatalf("NumChunks = %d, want 2", r.NumChunks())
	}
	if _, err := s.Resume(5); err == nil {
		t.Fatal("keep beyond salvage accepted")
	}
	if _, err := s.Resume(-1); err == nil {
		t.Fatal("negative keep accepted")
	}
}

func TestRecoverEmptyCrashedFile(t *testing.T) {
	// A file that crashed before writing any chunk: header only.
	dir := t.TempDir()
	path := filepath.Join(dir, "t.h5l")
	data, _ := buildFile(t, path, FlagCRC32, randChunks(18, 1))
	s0, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := s0.dataStart()
	if err := os.WriteFile(path, data[:headerEnd], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Chunks() != 0 || s.Records() != 0 {
		t.Fatalf("chunks=%d records=%d, want 0", s.Chunks(), s.Records())
	}
	w, err := s.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err != nil {
		t.Fatalf("resumed-from-empty file unreadable: %v", err)
	}
}

// Corrupt / hostile index entries must be rejected with descriptive
// errors, not undefined behaviour.
func TestNewReaderRejectsCorruptIndex(t *testing.T) {
	base := func(t *testing.T) ([]byte, int64) {
		path := filepath.Join(t.TempDir(), "t.h5l")
		data, ends := buildFile(t, path, 0, randChunks(19, 2))
		_ = ends
		indexOff := int64(len(data)) - footerSize - 2*20
		return data, indexOff
	}
	le := binary.LittleEndian
	cases := []struct {
		name  string
		patch func(data []byte, indexOff int64)
	}{
		{"offset into header", func(d []byte, io int64) {
			le.PutUint64(d[io:], 2) // points inside the magic
		}},
		{"offset overflow", func(d []byte, io int64) {
			le.PutUint64(d[io:], 1<<63)
		}},
		{"length past index", func(d []byte, io int64) {
			le.PutUint32(d[io+8:], 1<<30)
		}},
		{"zero records", func(d []byte, io int64) {
			le.PutUint32(d[io+16:], 0)
		}},
		{"record accounting mismatch", func(d []byte, io int64) {
			le.PutUint32(d[io+16:], 7) // rawLen no longer records*20
		}},
		{"raw length not multiple of record size", func(d []byte, io int64) {
			le.PutUint32(d[io+12:], 21)
		}},
		{"stored/raw mismatch uncompressed", func(d []byte, io int64) {
			cl := le.Uint32(d[io+8:])
			le.PutUint32(d[io+12:], cl+20)
			le.PutUint32(d[io+16:], (cl+20)/20)
		}},
		{"second chunk overlaps first", func(d []byte, io int64) {
			first := le.Uint64(d[io:])
			le.PutUint64(d[io+20:], first+1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, indexOff := base(t)
			tc.patch(data, indexOff)
			_, err := NewReader(bytes.NewReader(data), int64(len(data)))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corrupt index accepted or wrong error: %v", err)
			}
		})
	}
}

func TestNewReaderRejectsCorruptFooterGeometry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	data, _ := buildFile(t, path, 0, randChunks(20, 1))
	le := binary.LittleEndian
	// Index offset pointing inside the header but with matching size
	// arithmetic is impossible; instead test the overflow guard.
	d := append([]byte(nil), data...)
	le.PutUint64(d[len(d)-footerSize:], 1<<63)
	if _, err := NewReader(bytes.NewReader(d), int64(len(d))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("overflowing index offset accepted: %v", err)
	}
}

// Fuzz-style property: random mutations of a valid file never crash the
// reader — they either open cleanly or return an error.
func TestNewReaderRandomMutationsNeverPanic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	data, _ := buildFile(t, path, FlagCRC32, randChunks(21, 3))
	r := rng.New(99)
	for trial := 0; trial < 2000; trial++ {
		d := append([]byte(nil), data...)
		for flips := 0; flips <= r.Intn(4); flips++ {
			d[r.Intn(len(d))] ^= byte(1 + r.Uint64()%255)
		}
		rd, err := NewReader(bytes.NewReader(d), int64(len(d)))
		if err != nil {
			continue
		}
		// Opened: every chunk read must either succeed or error cleanly.
		for i := 0; i < rd.NumChunks(); i++ {
			rd.ReadChunk(i) //nolint:errcheck
		}
	}
}

// Chaos: a writer dying mid-chunk (torn write) leaves a file whose
// salvage is exactly the chunks written before the failure.
func TestWriterCrashMidChunkSalvage(t *testing.T) {
	for _, flags := range allFlagSets {
		dir := t.TempDir()
		path := filepath.Join(dir, "t.h5l")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		// Budget: header + 2 chunks + part of the 3rd.
		chunks := randChunks(22, 4)
		probe, probeEnds := buildFile(t, filepath.Join(dir, "probe.h5l"), flags, chunks)
		_ = probe
		budget := probeEnds[1] + (probeEnds[2]-probeEnds[1])/3
		fw := &faultinject.FlakyWriter{W: f, FailAfter: budget, Short: true}
		w, err := NewWriter(fw, testSchema, flags)
		if err != nil {
			t.Fatal(err)
		}
		var failedAt int
		for i, c := range chunks {
			if err := w.WriteChunk(c); err != nil {
				failedAt = i
				break
			}
		}
		f.Close()
		if failedAt != 2 {
			t.Fatalf("flags %#x: writer failed at chunk %d, want 2", flags, failedAt)
		}
		s, err := Recover(path)
		if err != nil {
			t.Fatal(err)
		}
		if s.Chunks() != 2 {
			t.Fatalf("flags %#x: salvaged %d chunks after torn write, want 2", flags, s.Chunks())
		}
		r, err := s.Reader()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			got, err := r.ReadChunk(i)
			if err != nil || !bytes.Equal(got, chunks[i]) {
				t.Fatalf("flags %#x: salvaged chunk %d wrong: %v", flags, i, err)
			}
		}
		r.Close()
	}
}

// Crash points compiled into the writer fire on schedule.
func TestWriterCrashPoints(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	path := filepath.Join(t.TempDir(), "t.h5l")
	w, err := Create(path, testSchema, FlagCRC32)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(CrashWriteChunk, 2, nil)
	if err := w.WriteChunk(make([]byte, 20)); err != nil {
		t.Fatalf("chunk 1 failed early: %v", err)
	}
	if err := w.WriteChunk(make([]byte, 20)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("crash point did not fire: %v", err)
	}
	faultinject.Reset()
	faultinject.Arm(CrashClose, 1, nil)
	if err := w.Close(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("close crash point did not fire: %v", err)
	}
	faultinject.Reset()
	// The file has one chunk and no footer: salvage finds it.
	s, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Complete() || s.Chunks() != 1 {
		t.Fatalf("salvage after crash-point close: complete=%v chunks=%d", s.Complete(), s.Chunks())
	}
}

func TestNewWriterRejectsUnknownFlags(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, testSchema, 1<<7); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
