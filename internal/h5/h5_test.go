package h5

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

var testSchema = Schema{RecordSize: 20, Columns: []string{"start", "stop", "person", "activity", "place"}}

func writeFile(t *testing.T, path string, flags uint16, chunks [][]byte) {
	t.Helper()
	w, err := Create(path, testSchema, flags)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if err := w.WriteChunk(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func randChunks(seed uint64, n int) [][]byte {
	r := rng.New(seed)
	chunks := make([][]byte, n)
	for i := range chunks {
		records := 1 + r.Intn(50)
		c := make([]byte, records*20)
		for k := range c {
			c[k] = byte(r.Uint64())
		}
		chunks[i] = c
	}
	return chunks
}

func TestRoundTrip(t *testing.T) {
	for _, flags := range []uint16{0, FlagDeflate} {
		path := filepath.Join(t.TempDir(), "t.h5l")
		chunks := randChunks(1, 7)
		writeFile(t, path, flags, chunks)

		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if r.NumChunks() != len(chunks) {
			t.Fatalf("flags %d: NumChunks = %d, want %d", flags, r.NumChunks(), len(chunks))
		}
		for i, want := range chunks {
			got, err := r.ReadChunk(i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("flags %d: chunk %d differs", flags, i)
			}
		}
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	writeFile(t, path, 0, randChunks(2, 1))
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	s := r.Schema()
	if s.RecordSize != 20 {
		t.Errorf("RecordSize = %d, want 20", s.RecordSize)
	}
	if len(s.Columns) != 5 || s.Columns[0] != "start" || s.Columns[4] != "place" {
		t.Errorf("Columns = %v", s.Columns)
	}
}

func TestEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	writeFile(t, path, 0, nil)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumChunks() != 0 || r.NumRecords() != 0 {
		t.Fatal("empty file should have no chunks or records")
	}
}

func TestNumRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	writeFile(t, path, 0, [][]byte{make([]byte, 20*3), make([]byte, 20*5)})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumRecords() != 8 {
		t.Fatalf("NumRecords = %d, want 8", r.NumRecords())
	}
	if r.ChunkRecords(0) != 3 || r.ChunkRecords(1) != 5 {
		t.Fatal("per-chunk record counts wrong")
	}
}

func TestForEachChunkOrderAndConcatenation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	chunks := randChunks(3, 5)
	writeFile(t, path, FlagDeflate, chunks)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var want, got []byte
	for _, c := range chunks {
		want = append(want, c...)
	}
	err = r.ForEachChunk(func(i int, p []byte) error {
		got = append(got, p...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("iteration does not equal concatenation of chunks")
	}
}

func TestRandomAccessEqualsSequential(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	chunks := randChunks(4, 9)
	writeFile(t, path, FlagDeflate, chunks)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Read in a scrambled order.
	for _, i := range []int{8, 0, 4, 2, 7, 1, 3, 6, 5} {
		got, err := r.ReadChunk(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, chunks[i]) {
			t.Fatalf("random-access chunk %d differs", i)
		}
	}
}

func TestWriteChunkValidation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testSchema, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(nil); err == nil {
		t.Error("empty chunk accepted")
	}
	if err := w.WriteChunk(make([]byte, 19)); err == nil {
		t.Error("non-multiple chunk accepted")
	}
	if err := w.WriteChunk(make([]byte, 40)); err != nil {
		t.Errorf("valid chunk rejected: %v", err)
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testSchema, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(make([]byte, 20)); err == nil {
		t.Fatal("write after close accepted")
	}
	// Idempotent close.
	if err := w.Close(); err != nil {
		t.Fatalf("second close errored: %v", err)
	}
}

func TestBadRecordSize(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Schema{RecordSize: 0}, 0); err == nil {
		t.Fatal("zero record size accepted")
	}
}

func TestReadChunkOutOfRange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	writeFile(t, path, 0, randChunks(5, 2))
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadChunk(-1); err == nil {
		t.Error("chunk -1 accepted")
	}
	if _, err := r.ReadChunk(2); err == nil {
		t.Error("chunk past end accepted")
	}
}

func TestCorruptFooterRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	writeFile(t, path, 0, randChunks(6, 2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // clobber footer magic
	if _, err := NewReader(bytes.NewReader(data), int64(len(data))); err == nil {
		t.Fatal("corrupt footer accepted")
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	writeFile(t, path, 0, randChunks(7, 3))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 10, len(data) / 2, len(data) - 1} {
		trunc := data[:cut]
		if _, err := NewReader(bytes.NewReader(trunc), int64(len(trunc))); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestCorruptHeaderMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	writeFile(t, path, 0, randChunks(8, 1))
	data, _ := os.ReadFile(path)
	data[0] = 'X'
	if _, err := NewReader(bytes.NewReader(data), int64(len(data))); err == nil {
		t.Fatal("corrupt header magic accepted")
	}
}

func TestWriterAccessors(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testSchema, FlagDeflate)
	if err != nil {
		t.Fatal(err)
	}
	if w.Schema().RecordSize != 20 || len(w.Schema().Columns) != 5 {
		t.Fatal("writer schema accessor wrong")
	}
	if w.Chunks() != 0 {
		t.Fatal("fresh writer reports chunks")
	}
	if err := w.WriteChunk(make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if w.Chunks() != 1 {
		t.Fatalf("Chunks = %d, want 1", w.Chunks())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.h5l")
	writeFile(t, path, FlagDeflate, randChunks(21, 1))
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Flags()&FlagDeflate == 0 {
		t.Fatal("deflate flag not round-tripped")
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "absent.h5l")); err == nil {
		t.Fatal("missing file opened")
	}
}

func TestCreateInMissingDirectory(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "no", "such", "dir", "f.h5l"), testSchema, 0); err == nil {
		t.Fatal("create in missing directory succeeded")
	}
}

func TestCreateRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.h5l")
	if _, err := Create(path, Schema{RecordSize: 0}, 0); err == nil {
		t.Fatal("bad schema accepted by Create")
	}
	// The file must not linger half-written as a usable artifact.
	if _, err := Open(path); err == nil {
		t.Fatal("half-written file opened successfully")
	}
}

func TestCompressionShrinksRepetitiveData(t *testing.T) {
	dir := t.TempDir()
	// Highly repetitive payload compresses well.
	chunk := bytes.Repeat([]byte{1, 2, 3, 4}, 20*100/4)
	p0 := filepath.Join(dir, "raw.h5l")
	p1 := filepath.Join(dir, "def.h5l")
	writeFile(t, p0, 0, [][]byte{chunk})
	writeFile(t, p1, FlagDeflate, [][]byte{chunk})
	s0, _ := os.Stat(p0)
	s1, _ := os.Stat(p1)
	if s1.Size() >= s0.Size() {
		t.Fatalf("deflate file (%d) not smaller than raw (%d)", s1.Size(), s0.Size())
	}
}

// Property: any sequence of random chunks round-trips bit-exactly under
// both flag settings.
func TestQuickRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n := 0
	f := func(seed uint64, deflate bool) bool {
		n++
		path := filepath.Join(dir, "q.h5l")
		r := rng.New(seed)
		nchunks := r.Intn(5)
		chunks := make([][]byte, nchunks)
		for i := range chunks {
			c := make([]byte, (1+r.Intn(30))*20)
			for k := range c {
				c[k] = byte(r.Uint64())
			}
			chunks[i] = c
		}
		flags := uint16(0)
		if deflate {
			flags = FlagDeflate
		}
		w, err := Create(path, testSchema, flags)
		if err != nil {
			return false
		}
		for _, c := range chunks {
			if err := w.WriteChunk(c); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		rd, err := Open(path)
		if err != nil {
			return false
		}
		defer rd.Close()
		if rd.NumChunks() != nchunks {
			return false
		}
		for i, want := range chunks {
			got, err := rd.ReadChunk(i)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteChunk10k(b *testing.B) {
	chunk := make([]byte, 20*10000)
	w, err := Create(filepath.Join(b.TempDir(), "b.h5l"), testSchema, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.SetBytes(int64(len(chunk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteChunk(chunk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteChunk10kDeflate(b *testing.B) {
	chunk := make([]byte, 20*10000)
	r := rng.New(1)
	for i := range chunk {
		chunk[i] = byte(r.Intn(4)) // compressible but non-trivial
	}
	w, err := Create(filepath.Join(b.TempDir(), "b.h5l"), testSchema, FlagDeflate)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.SetBytes(int64(len(chunk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteChunk(chunk); err != nil {
			b.Fatal(err)
		}
	}
}
