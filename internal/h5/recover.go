// Crash recovery for H5-lite files.
//
// A process that dies mid-run leaves its log file without the chunk
// index and footer that Writer.Close appends — under the original reader
// such a file is unreadable, losing a whole rank's worth of simulation
// history. Because every chunk is self-delimiting (a 12-byte header
// declaring its stored length, optionally followed by a CRC-32 trailer),
// the intact prefix of a crashed file can be rebuilt by scanning chunk
// headers from the end of the file header and validating each chunk:
// structurally (lengths, record accounting, fit within the file) and,
// when the file carries FlagCRC32 or FlagDeflate, byte-exactly
// (checksum / full decompression).
//
// Recover returns a Salvage describing the longest intact chunk prefix.
// From it callers can obtain a read-only Reader over the salvaged chunks
// or a Writer that truncates the torn tail and continues appending —
// the basis of eventlog.Resume.
package h5

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Salvage describes the intact chunk prefix of an H5-lite file, obtained
// by Recover. It is a plain description: the file is not modified until
// Resume is called.
type Salvage struct {
	path     string
	schema   Schema
	flags    uint16
	index    []chunkMeta
	end      int64 // file offset just past the last intact chunk
	size     int64 // size of the file as found on disk
	complete bool  // the file had a valid index and footer
}

// Schema returns the salvaged file's record schema.
func (s *Salvage) Schema() Schema { return s.schema }

// Flags returns the salvaged file's flag word.
func (s *Salvage) Flags() uint16 { return s.flags }

// Chunks returns the number of intact chunks.
func (s *Salvage) Chunks() int { return len(s.index) }

// Records returns the total record count across intact chunks.
func (s *Salvage) Records() uint64 {
	var n uint64
	for _, c := range s.index {
		n += uint64(c.records)
	}
	return n
}

// Complete reports whether the file was closed properly (valid footer);
// if true, no data was lost and Recover degenerated to a normal open.
func (s *Salvage) Complete() bool { return s.complete }

// End returns the file offset just past the last intact chunk. It is a
// durable cursor: passing it to RecoverFrom later re-scans only chunks
// appended after this Salvage was taken, making repeated tailing of a
// growing file O(new data) instead of O(file) per poll.
func (s *Salvage) End() int64 { return s.end }

// TruncatedBytes returns the number of torn tail bytes that will be
// discarded by Resume (zero for complete files, where only the index and
// footer follow the last chunk).
func (s *Salvage) TruncatedBytes() int64 {
	if s.complete {
		return 0
	}
	return s.size - s.end
}

// Reader opens a read-only view over the intact chunk prefix. It works
// whether or not the file has a footer; the caller must Close it.
func (s *Salvage) Reader() (*Reader, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	return &Reader{
		r:        f,
		closer:   f,
		schema:   s.schema,
		flags:    s.flags,
		index:    append([]chunkMeta(nil), s.index...),
		compress: s.flags&FlagDeflate != 0,
		crc:      s.flags&FlagCRC32 != 0,
	}, nil
}

// Resume truncates the file to its first keep intact chunks (discarding
// the torn tail and any stale index/footer) and returns a Writer
// positioned to append chunk keep+1 onward. Closing the returned Writer
// writes a fresh index and footer covering both the salvaged and the
// newly appended chunks. keep must be in [0, Chunks()].
func (s *Salvage) Resume(keep int) (*Writer, error) {
	if keep < 0 || keep > len(s.index) {
		return nil, fmt.Errorf("h5: resume keep %d out of range [0,%d]", keep, len(s.index))
	}
	end := s.dataStart()
	if keep > 0 {
		last := s.index[keep-1]
		end = int64(last.offset) + chunkStride(last.compLen, s.flags) - chunkHdrSize
	}
	f, err := os.OpenFile(s.path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{
		w:        f,
		closer:   f,
		schema:   s.schema,
		flags:    s.flags,
		compress: s.flags&FlagDeflate != 0,
		crc:      s.flags&FlagCRC32 != 0,
		offset:   uint64(end),
		index:    append([]chunkMeta(nil), s.index[:keep]...),
	}, nil
}

// dataStart returns the offset of the first chunk (end of header).
func (s *Salvage) dataStart() int64 {
	if len(s.index) > 0 {
		return int64(s.index[0].offset) - chunkHdrSize
	}
	// Recompute from the schema: magic+version+flags+recordSize+ncols
	// plus the column table.
	off := int64(4 + 2 + 2 + 4 + 2)
	for _, c := range s.schema.Columns {
		off += 2 + int64(len(c))
	}
	return off
}

// Recover scans path and returns a Salvage over its longest intact chunk
// prefix. Files with a valid footer are accepted wholesale (their index
// is still bounds-validated); footer-less files — crashed or truncated —
// are scanned chunk by chunk. Recover never modifies the file.
func Recover(path string) (*Salvage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()

	schema, flags, headerEnd, err := readHeader(f, size)
	if err != nil {
		return nil, err // unrecoverable: cannot even interpret records
	}

	// Fast path: intact footer and valid index.
	if r, err := NewReader(f, size); err == nil {
		return &Salvage{
			path:     path,
			schema:   r.schema,
			flags:    r.flags,
			index:    r.index,
			end:      endOfChunks(r.index, r.flags, headerEnd),
			size:     size,
			complete: true,
		}, nil
	}

	// Salvage scan over self-delimiting chunk headers.
	index, end := scanChunks(f, size, headerEnd, schema, flags)
	return &Salvage{
		path:   path,
		schema: schema,
		flags:  flags,
		index:  index,
		end:    end,
		size:   size,
	}, nil
}

// RecoverFrom is Recover restricted to the chunks at or after file
// offset pos, which must be a value previously returned by Salvage.End
// on the same file (or zero / any offset at or before the first chunk,
// which degenerates to a full Recover). It exists for tailing a file
// that is still being written: each poll revalidates only the newly
// appended chunks instead of re-checksumming the whole file.
//
// The returned Salvage's index covers only the new chunks, so Chunks
// and Records count new data and Reader reads just the new suffix.
// Such a partial Salvage is for reading and cursor advancement only —
// do not call Resume on it (Resume's index would be missing the chunks
// before pos).
func RecoverFrom(path string, pos int64) (*Salvage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()

	schema, flags, headerEnd, err := readHeader(f, size)
	if err != nil {
		return nil, err
	}
	if pos < headerEnd {
		pos = headerEnd
	}

	// Fast path: intact footer and valid index — keep only the suffix at
	// or after pos. chunkMeta offsets point at payloads, so the chunk
	// itself starts chunkHdrSize earlier.
	if r, err := NewReader(f, size); err == nil {
		idx := r.index
		for len(idx) > 0 && int64(idx[0].offset)-chunkHdrSize < pos {
			idx = idx[1:]
		}
		return &Salvage{
			path:     path,
			schema:   r.schema,
			flags:    r.flags,
			index:    append([]chunkMeta(nil), idx...),
			end:      endOfChunks(r.index, r.flags, headerEnd),
			size:     size,
			complete: true,
		}, nil
	}

	// Salvage scan restricted to the suffix starting at pos.
	index, end := scanChunks(f, size, pos, schema, flags)
	return &Salvage{
		path:   path,
		schema: schema,
		flags:  flags,
		index:  index,
		end:    end,
		size:   size,
	}, nil
}

// endOfChunks returns the offset just past the last chunk.
func endOfChunks(index []chunkMeta, flags uint16, headerEnd int64) int64 {
	if len(index) == 0 {
		return headerEnd
	}
	last := index[len(index)-1]
	return int64(last.offset) + chunkStride(last.compLen, flags) - chunkHdrSize
}

// scanChunks walks the chunk region from headerEnd, validating each
// self-delimiting chunk, and returns the longest intact prefix plus the
// offset just past it.
func scanChunks(r io.ReaderAt, size, headerEnd int64, schema Schema, flags uint16) ([]chunkMeta, int64) {
	le := binary.LittleEndian
	rs := uint32(schema.RecordSize)
	compress := flags&FlagDeflate != 0
	crc := flags&FlagCRC32 != 0

	var index []chunkMeta
	pos := headerEnd
	var hdr [chunkHdrSize]byte
	for {
		if pos+chunkHdrSize > size {
			break
		}
		if _, err := r.ReadAt(hdr[:], pos); err != nil {
			break
		}
		compLen := le.Uint32(hdr[0:4])
		rawLen := le.Uint32(hdr[4:8])
		records := le.Uint32(hdr[8:12])
		// Structural validation.
		if records == 0 || rawLen == 0 {
			break
		}
		if rawLen%rs != 0 || rawLen/rs != records {
			break
		}
		if !compress && compLen != rawLen {
			break
		}
		if compress && compLen == 0 {
			break
		}
		stride := chunkStride(compLen, flags)
		if pos+stride > size {
			break // torn tail: chunk declared longer than the file
		}
		// Content validation.
		stored := make([]byte, compLen)
		if _, err := r.ReadAt(stored, pos+chunkHdrSize); err != nil {
			break
		}
		if crc {
			var sum [crcSize]byte
			if _, err := r.ReadAt(sum[:], pos+chunkHdrSize+int64(compLen)); err != nil {
				break
			}
			if crc32.ChecksumIEEE(stored) != le.Uint32(sum[:]) {
				break
			}
		}
		if compress {
			// Fully decompress to prove integrity (cheap relative to a
			// recovery event; skippable only if the CRC already vouched
			// for the bytes, but the CRC covers the stored form, so
			// decompression is still the only proof of the raw length).
			fr := flate.NewReader(bytes.NewReader(stored))
			n, err := io.Copy(io.Discard, fr)
			fr.Close()
			if err != nil || n != int64(rawLen) {
				break
			}
		}
		index = append(index, chunkMeta{
			offset:  uint64(pos + chunkHdrSize),
			compLen: compLen,
			rawLen:  rawLen,
			records: records,
		})
		pos += stride
	}
	return index, pos
}
