// Package h5 implements "H5-lite", a minimal chunked binary container
// standing in for the serial HDF5 library the paper uses for log output.
//
// The format preserves the properties the paper relies on:
//
//   - Chunked writes: a full logger cache is appended as one chunk with a
//     single write call (fast write performance).
//   - Compact binary storage, optionally DEFLATE-compressed per chunk.
//   - Fast index-based reads: a chunk index written at the end of the file
//     allows random access to any chunk without scanning (helpful when
//     loading files later for analysis), as well as cheap sequential
//     iteration.
//   - Self-description: a fixed record size and column names are stored in
//     the header so analysis tools can interpret the records.
//
// File layout:
//
//	header : magic "H5LT" | version u16 | flags u16 | recordSize u32 |
//	         ncols u16 | {nameLen u16, name bytes} × ncols
//	chunks : {compLen u32 | rawLen u32 | records u32 | payload [| crc u32]} × nchunks
//	index  : {offset u64 | compLen u32 | rawLen u32 | records u32} × nchunks
//	footer : indexOffset u64 | nchunks u32 | magic "H5IX"
//
// The optional per-chunk crc u32 trailer (CRC-32/IEEE over the stored
// payload) is present when FlagCRC32 is set in the header flags; it
// protects long-running logs against silent corruption and lets the
// salvage scanner (Recover) distinguish intact chunks from torn tails in
// a crashed, footer-less file. Because every chunk is self-delimiting
// (12-byte header + declared payload length), a file whose process died
// before Close can be rebuilt from its longest intact chunk prefix.
//
// All integers are little-endian.
package h5

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Telemetry series for the storage layer. Chunk granularity (one count
// per WriteChunk/ReadChunk, i.e. per logger cache flush or index read)
// keeps the per-record hot paths free of telemetry.
var (
	mChunksWritten = telemetry.C("h5_chunks_written_total")
	mBytesWritten  = telemetry.C("h5_bytes_written_total")
	mChunksRead    = telemetry.C("h5_chunks_read_total")
	mBytesRead     = telemetry.C("h5_bytes_read_total")
)

const (
	headerMagic = "H5LT"
	footerMagic = "H5IX"
	version     = 1

	// FlagDeflate enables per-chunk DEFLATE compression.
	FlagDeflate uint16 = 1 << 0
	// FlagCRC32 appends a CRC-32/IEEE checksum trailer to every chunk.
	// Readers verify it on every chunk read; Recover uses it to validate
	// salvaged chunks. Files without the flag read exactly as before.
	FlagCRC32 uint16 = 1 << 1

	footerSize = 8 + 4 + 4
	// chunkHdrSize is the self-delimiting per-chunk header:
	// compLen u32 | rawLen u32 | records u32.
	chunkHdrSize = 12
	crcSize      = 4
)

// knownFlags is the mask of flags this implementation understands.
const knownFlags = FlagDeflate | FlagCRC32

// ErrCorrupt is returned when a file fails structural validation.
var ErrCorrupt = errors.New("h5: corrupt file")

// Crash-point names compiled into the writer, for chaos tests
// (see internal/faultinject).
const (
	CrashWriteChunk = "h5.writechunk"
	CrashClose      = "h5.close"
)

// chunkMeta is one index entry describing a stored chunk.
type chunkMeta struct {
	offset  uint64 // file offset of the chunk payload (after its header)
	compLen uint32 // stored payload length
	rawLen  uint32 // decompressed payload length
	records uint32 // number of fixed-size records in the chunk
}

// Schema describes the fixed-width records stored in a file.
type Schema struct {
	// RecordSize is the size in bytes of one record. Chunk payloads must
	// be a whole number of records.
	RecordSize int
	// Columns are human-readable column names, stored for
	// self-description (mirroring HDF5 dataset attributes).
	Columns []string
}

// Writer appends chunks to an H5-lite file.
type Writer struct {
	w        io.Writer
	closer   io.Closer
	schema   Schema
	flags    uint16
	compress bool
	crc      bool
	offset   uint64
	index    []chunkMeta
	closed   bool
	// scratch buffers reused across chunks
	comp bytes.Buffer
}

// Create creates path and returns a Writer over it.
func Create(path string, schema Schema, flags uint16) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, schema, flags)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.closer = f
	return w, nil
}

// NewWriter writes the header to w and returns a Writer. If w is also an
// io.Closer it is NOT closed by Writer.Close; use Create for that.
func NewWriter(w io.Writer, schema Schema, flags uint16) (*Writer, error) {
	if schema.RecordSize <= 0 {
		return nil, fmt.Errorf("h5: record size must be positive, got %d", schema.RecordSize)
	}
	if flags&^knownFlags != 0 {
		return nil, fmt.Errorf("h5: unknown flags %#x", flags&^knownFlags)
	}
	hw := &Writer{
		w: w, schema: schema, flags: flags,
		compress: flags&FlagDeflate != 0,
		crc:      flags&FlagCRC32 != 0,
	}
	var hdr bytes.Buffer
	hdr.WriteString(headerMagic)
	le := binary.LittleEndian
	var u16 [2]byte
	var u32 [4]byte
	le.PutUint16(u16[:], version)
	hdr.Write(u16[:])
	le.PutUint16(u16[:], flags)
	hdr.Write(u16[:])
	le.PutUint32(u32[:], uint32(schema.RecordSize))
	hdr.Write(u32[:])
	if len(schema.Columns) > 0xffff {
		return nil, fmt.Errorf("h5: too many columns: %d", len(schema.Columns))
	}
	le.PutUint16(u16[:], uint16(len(schema.Columns)))
	hdr.Write(u16[:])
	for _, c := range schema.Columns {
		if len(c) > 0xffff {
			return nil, fmt.Errorf("h5: column name too long: %d bytes", len(c))
		}
		le.PutUint16(u16[:], uint16(len(c)))
		hdr.Write(u16[:])
		hdr.WriteString(c)
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return nil, err
	}
	hw.offset = uint64(hdr.Len())
	return hw, nil
}

// Schema returns the schema the writer was created with.
func (w *Writer) Schema() Schema { return w.schema }

// Chunks returns the number of chunks written so far.
func (w *Writer) Chunks() int { return len(w.index) }

// WriteChunk appends one chunk containing len(payload)/RecordSize
// records. The payload length must be a positive multiple of RecordSize.
func (w *Writer) WriteChunk(payload []byte) error {
	if w.closed {
		return errors.New("h5: write on closed writer")
	}
	if err := faultinject.Hit(CrashWriteChunk); err != nil {
		return err
	}
	rs := w.schema.RecordSize
	if len(payload) == 0 || len(payload)%rs != 0 {
		return fmt.Errorf("h5: chunk payload %d bytes is not a positive multiple of record size %d", len(payload), rs)
	}
	records := uint32(len(payload) / rs)

	stored := payload
	if w.compress {
		w.comp.Reset()
		fw, err := flate.NewWriter(&w.comp, flate.BestSpeed)
		if err != nil {
			return err
		}
		if _, err := fw.Write(payload); err != nil {
			return err
		}
		if err := fw.Close(); err != nil {
			return err
		}
		stored = w.comp.Bytes()
	}

	var hdr [chunkHdrSize]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], uint32(len(stored)))
	le.PutUint32(hdr[4:], uint32(len(payload)))
	le.PutUint32(hdr[8:], records)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(stored); err != nil {
		return err
	}
	stride := uint64(chunkHdrSize + len(stored))
	if w.crc {
		var sum [crcSize]byte
		le.PutUint32(sum[:], crc32.ChecksumIEEE(stored))
		if _, err := w.w.Write(sum[:]); err != nil {
			return err
		}
		stride += crcSize
	}
	w.index = append(w.index, chunkMeta{
		offset:  w.offset + chunkHdrSize,
		compLen: uint32(len(stored)),
		rawLen:  uint32(len(payload)),
		records: records,
	})
	w.offset += stride
	mChunksWritten.Inc()
	mBytesWritten.Add(int64(stride))
	return nil
}

// Close writes the chunk index and footer. If the writer was opened with
// Create, the underlying file is closed too. Close is idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	if err := faultinject.Hit(CrashClose); err != nil {
		return err
	}
	w.closed = true
	var buf bytes.Buffer
	le := binary.LittleEndian
	var u32 [4]byte
	var u64 [8]byte
	for _, c := range w.index {
		le.PutUint64(u64[:], c.offset)
		buf.Write(u64[:])
		le.PutUint32(u32[:], c.compLen)
		buf.Write(u32[:])
		le.PutUint32(u32[:], c.rawLen)
		buf.Write(u32[:])
		le.PutUint32(u32[:], c.records)
		buf.Write(u32[:])
	}
	le.PutUint64(u64[:], w.offset)
	buf.Write(u64[:])
	le.PutUint32(u32[:], uint32(len(w.index)))
	buf.Write(u32[:])
	buf.WriteString(footerMagic)
	if _, err := w.w.Write(buf.Bytes()); err != nil {
		return err
	}
	if w.closer != nil {
		return w.closer.Close()
	}
	return nil
}

// Reader provides indexed and sequential access to an H5-lite file.
type Reader struct {
	r        io.ReaderAt
	closer   io.Closer
	schema   Schema
	flags    uint16
	index    []chunkMeta
	compress bool
	crc      bool
}

// Open opens path for reading.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// readHeader parses the fixed header and column names, returning the
// schema, the flag word, and the file offset of the first chunk.
func readHeader(r io.ReaderAt, size int64) (Schema, uint16, int64, error) {
	le := binary.LittleEndian
	fixed := make([]byte, 4+2+2+4+2)
	if size < int64(len(fixed)) {
		return Schema{}, 0, 0, fmt.Errorf("%w: file too small (%d bytes)", ErrCorrupt, size)
	}
	if _, err := r.ReadAt(fixed, 0); err != nil {
		return Schema{}, 0, 0, err
	}
	if string(fixed[0:4]) != headerMagic {
		return Schema{}, 0, 0, fmt.Errorf("%w: bad header magic", ErrCorrupt)
	}
	if v := le.Uint16(fixed[4:6]); v != version {
		return Schema{}, 0, 0, fmt.Errorf("h5: unsupported version %d", v)
	}
	flags := le.Uint16(fixed[6:8])
	if flags&^knownFlags != 0 {
		return Schema{}, 0, 0, fmt.Errorf("h5: unknown flags %#x", flags&^knownFlags)
	}
	recordSize := le.Uint32(fixed[8:12])
	ncols := le.Uint16(fixed[12:14])
	if recordSize == 0 {
		return Schema{}, 0, 0, fmt.Errorf("%w: zero record size", ErrCorrupt)
	}
	cols := make([]string, 0, ncols)
	off := int64(len(fixed))
	var l2 [2]byte
	for i := 0; i < int(ncols); i++ {
		if off+2 > size {
			return Schema{}, 0, 0, fmt.Errorf("%w: truncated column table", ErrCorrupt)
		}
		if _, err := r.ReadAt(l2[:], off); err != nil {
			return Schema{}, 0, 0, err
		}
		n := int(le.Uint16(l2[:]))
		off += 2
		if off+int64(n) > size {
			return Schema{}, 0, 0, fmt.Errorf("%w: truncated column name %d", ErrCorrupt, i)
		}
		name := make([]byte, n)
		if _, err := r.ReadAt(name, off); err != nil {
			return Schema{}, 0, 0, err
		}
		off += int64(n)
		cols = append(cols, string(name))
	}
	return Schema{RecordSize: int(recordSize), Columns: cols}, flags, off, nil
}

// chunkStride returns the on-disk size of a chunk with the given stored
// payload length under the given flags.
func chunkStride(compLen uint32, flags uint16) int64 {
	s := int64(chunkHdrSize) + int64(compLen)
	if flags&FlagCRC32 != 0 {
		s += crcSize
	}
	return s
}

// validateIndex checks every index entry against the file geometry:
// chunk payloads must lie entirely between the end of the header and the
// start of the index, with no arithmetic overflow, and the record
// accounting must be internally consistent. It returns descriptive
// ErrCorrupt errors so hostile or damaged index entries never cause
// undefined behaviour (huge allocations, negative offsets, reads inside
// the header).
func validateIndex(index []chunkMeta, recordSize uint32, headerEnd, indexOffset int64, flags uint16) error {
	for i, c := range index {
		if c.offset > uint64(1)<<62 {
			return fmt.Errorf("%w: chunk %d offset %d overflows", ErrCorrupt, i, c.offset)
		}
		start := int64(c.offset) - chunkHdrSize
		if start < headerEnd {
			return fmt.Errorf("%w: chunk %d offset %d points before data section (header ends at %d)", ErrCorrupt, i, c.offset, headerEnd)
		}
		end := start + chunkStride(c.compLen, flags)
		if end > indexOffset {
			return fmt.Errorf("%w: chunk %d [%d,%d) overlaps index at %d", ErrCorrupt, i, start, end, indexOffset)
		}
		if c.records == 0 {
			return fmt.Errorf("%w: chunk %d has zero records", ErrCorrupt, i)
		}
		if c.rawLen%recordSize != 0 || c.rawLen/recordSize != c.records {
			return fmt.Errorf("%w: chunk %d record accounting (%d raw bytes, %d records, record size %d)", ErrCorrupt, i, c.rawLen, c.records, recordSize)
		}
		if flags&FlagDeflate == 0 && c.compLen != c.rawLen {
			return fmt.Errorf("%w: chunk %d stored length %d differs from raw length %d in uncompressed file", ErrCorrupt, i, c.compLen, c.rawLen)
		}
		if i > 0 && int64(c.offset) < int64(index[i-1].offset)+int64(index[i-1].compLen) {
			return fmt.Errorf("%w: chunk %d overlaps chunk %d", ErrCorrupt, i, i-1)
		}
	}
	return nil
}

// NewReader parses the header and index from r, which must contain a
// complete file of the given size.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	if size < int64(len(headerMagic))+footerSize {
		return nil, fmt.Errorf("%w: file too small (%d bytes)", ErrCorrupt, size)
	}
	le := binary.LittleEndian

	// Footer.
	foot := make([]byte, footerSize)
	if _, err := r.ReadAt(foot, size-footerSize); err != nil {
		return nil, err
	}
	if string(foot[12:16]) != footerMagic {
		return nil, fmt.Errorf("%w: bad footer magic", ErrCorrupt)
	}
	indexOffset := le.Uint64(foot[0:8])
	nchunks := le.Uint32(foot[8:12])
	indexBytes := int64(nchunks) * 20
	if indexOffset > uint64(1)<<62 {
		return nil, fmt.Errorf("%w: index offset %d overflows", ErrCorrupt, indexOffset)
	}
	if int64(indexOffset)+indexBytes+footerSize != size {
		return nil, fmt.Errorf("%w: index does not fit file size", ErrCorrupt)
	}

	// Header.
	schema, flags, headerEnd, err := readHeader(r, size)
	if err != nil {
		return nil, err
	}
	if int64(indexOffset) < headerEnd {
		return nil, fmt.Errorf("%w: index offset %d inside header (ends at %d)", ErrCorrupt, indexOffset, headerEnd)
	}

	// Index.
	idx := make([]byte, indexBytes)
	if _, err := r.ReadAt(idx, int64(indexOffset)); err != nil {
		return nil, err
	}
	index := make([]chunkMeta, nchunks)
	for i := range index {
		e := idx[i*20:]
		index[i] = chunkMeta{
			offset:  le.Uint64(e[0:8]),
			compLen: le.Uint32(e[8:12]),
			rawLen:  le.Uint32(e[12:16]),
			records: le.Uint32(e[16:20]),
		}
	}
	if err := validateIndex(index, uint32(schema.RecordSize), headerEnd, int64(indexOffset), flags); err != nil {
		return nil, err
	}

	return &Reader{
		r:        r,
		schema:   schema,
		flags:    flags,
		index:    index,
		compress: flags&FlagDeflate != 0,
		crc:      flags&FlagCRC32 != 0,
	}, nil
}

// Schema returns the file's record schema.
func (r *Reader) Schema() Schema { return r.schema }

// Flags returns the file's flag word.
func (r *Reader) Flags() uint16 { return r.flags }

// NumChunks returns the number of chunks in the file.
func (r *Reader) NumChunks() int { return len(r.index) }

// NumRecords returns the total number of records across all chunks.
func (r *Reader) NumRecords() uint64 {
	var n uint64
	for _, c := range r.index {
		n += uint64(c.records)
	}
	return n
}

// ChunkRecords returns the record count of chunk i.
func (r *Reader) ChunkRecords(i int) int { return int(r.index[i].records) }

// ReadChunk returns the decompressed payload of chunk i — the
// index-based random access that motivated the paper's HDF5 choice.
func (r *Reader) ReadChunk(i int) ([]byte, error) {
	if i < 0 || i >= len(r.index) {
		return nil, fmt.Errorf("h5: chunk %d out of range [0,%d)", i, len(r.index))
	}
	c := r.index[i]
	stored := make([]byte, c.compLen)
	if _, err := r.r.ReadAt(stored, int64(c.offset)); err != nil {
		return nil, err
	}
	if r.crc {
		var sum [crcSize]byte
		if _, err := r.r.ReadAt(sum[:], int64(c.offset)+int64(c.compLen)); err != nil {
			return nil, err
		}
		if got, want := crc32.ChecksumIEEE(stored), binary.LittleEndian.Uint32(sum[:]); got != want {
			return nil, fmt.Errorf("%w: chunk %d checksum mismatch (stored %#x, computed %#x)", ErrCorrupt, i, want, got)
		}
	}
	mChunksRead.Inc()
	mBytesRead.Add(int64(c.compLen))
	if !r.compress {
		if uint32(len(stored)) != c.rawLen {
			return nil, fmt.Errorf("%w: chunk %d length mismatch", ErrCorrupt, i)
		}
		return stored, nil
	}
	fr := flate.NewReader(bytes.NewReader(stored))
	defer fr.Close()
	raw := make([]byte, c.rawLen)
	if _, err := io.ReadFull(fr, raw); err != nil {
		return nil, fmt.Errorf("%w: chunk %d: %v", ErrCorrupt, i, err)
	}
	return raw, nil
}

// ForEachChunk invokes fn for every chunk payload in order, stopping and
// returning the first error.
func (r *Reader) ForEachChunk(fn func(chunk int, payload []byte) error) error {
	for i := range r.index {
		p, err := r.ReadChunk(i)
		if err != nil {
			return err
		}
		if err := fn(i, p); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the underlying file if the reader was created by Open.
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}
