package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestStatsDegenerateRuns pins the edge-case semantics of the imbalance
// metrics: runs with no workers, zero work units, or a single worker
// must report well-defined numbers — never NaN or Inf from a 0/0.
func TestStatsDegenerateRuns(t *testing.T) {
	cases := []struct {
		name    string
		stats   Stats
		idle    float64
		imb     float64
		speedup float64
	}{
		{
			name:    "zero value (no workers at all)",
			stats:   Stats{},
			idle:    0,
			imb:     0,
			speedup: 1,
		},
		{
			name: "workers but zero work units",
			stats: Stats{
				WorkerCost: []int{0, 0, 0},
				WorkerBusy: []time.Duration{0, 0, 0},
			},
			idle:    0,
			imb:     0,
			speedup: 1,
		},
		{
			name: "single worker",
			stats: Stats{
				WorkerCost: []int{40},
				WorkerBusy: []time.Duration{time.Millisecond},
			},
			idle:    0,
			imb:     1,
			speedup: 1,
		},
		{
			name: "perfectly balanced pair",
			stats: Stats{
				WorkerCost: []int{10, 10},
				WorkerBusy: []time.Duration{time.Millisecond, time.Millisecond},
			},
			idle:    0,
			imb:     1,
			speedup: 2,
		},
		{
			name: "skewed pair",
			stats: Stats{
				WorkerCost: []int{30, 10},
				WorkerBusy: []time.Duration{3 * time.Millisecond, time.Millisecond},
			},
			idle:    1.0 / 3.0,
			imb:     1.5,
			speedup: 4.0 / 3.0,
		},
		{
			name: "one worker idle the whole stage",
			stats: Stats{
				WorkerCost: []int{20, 0},
				WorkerBusy: []time.Duration{2 * time.Millisecond, 0},
			},
			idle:    0.5,
			imb:     2,
			speedup: 1,
		},
	}
	const eps = 1e-12
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.stats.IdleFraction()
			if math.IsNaN(got) || math.IsInf(got, 0) || math.Abs(got-c.idle) > eps {
				t.Errorf("IdleFraction = %v, want %v", got, c.idle)
			}
			got = c.stats.CostImbalance()
			if math.IsNaN(got) || math.IsInf(got, 0) || math.Abs(got-c.imb) > eps {
				t.Errorf("CostImbalance = %v, want %v", got, c.imb)
			}
			got = c.stats.ModelSpeedup()
			if math.IsNaN(got) || math.IsInf(got, 0) || math.Abs(got-c.speedup) > eps {
				t.Errorf("ModelSpeedup = %v, want %v", got, c.speedup)
			}
		})
	}
}

func TestStatsStageReports(t *testing.T) {
	var nilStats *Stats
	if got := nilStats.StageReports(); got != nil {
		t.Fatalf("nil Stats produced stage reports: %+v", got)
	}
	s := &Stats{
		Entries:      42,
		TotalNNZ:     99,
		WorkUnits:    7,
		Shards:       2,
		SpilledBytes: 4096,
		Load:         time.Millisecond,
		Build:        2 * time.Millisecond,
		Gram:         3 * time.Millisecond,
		Reduce:       4 * time.Millisecond,
		Spill:        5 * time.Millisecond,
	}
	reps := s.StageReports()
	want := []telemetry.StageReport{
		{Name: "synth/load", WallNs: int64(time.Millisecond), Count: 42},
		{Name: "synth/build", WallNs: int64(2 * time.Millisecond), Count: 99},
		{Name: "synth/gram", WallNs: int64(3 * time.Millisecond), Count: 7},
		{Name: "synth/reduce", WallNs: int64(4 * time.Millisecond)},
		{Name: "synth/spill", WallNs: int64(5 * time.Millisecond), Count: 2, Bytes: 4096},
	}
	if len(reps) != len(want) {
		t.Fatalf("got %d stage reports, want %d", len(reps), len(want))
	}
	for i := range want {
		if reps[i] != want[i] {
			t.Errorf("stage %d: got %+v, want %+v", i, reps[i], want[i])
		}
	}
}

func TestStatsRankReport(t *testing.T) {
	s := &Stats{
		Entries:   10,
		Places:    3,
		WorkUnits: 4,
		Splits:    1,
		Load:      time.Millisecond,
		Gram:      2 * time.Millisecond,
	}
	rr := s.RankReport(2, 10*time.Millisecond, time.Millisecond)
	if rr.Rank != 2 || rr.Entries != 10 || rr.Places != 3 || rr.WorkUnits != 4 || rr.Splits != 1 {
		t.Fatalf("rank report counters wrong: %+v", rr)
	}
	if rr.BusyNs != int64(3*time.Millisecond) {
		t.Fatalf("BusyNs = %d, want %d", rr.BusyNs, int64(3*time.Millisecond))
	}
	if rr.CommNs != int64(time.Millisecond) {
		t.Fatalf("CommNs = %d", rr.CommNs)
	}
	if rr.IdleNs != int64(6*time.Millisecond) {
		t.Fatalf("IdleNs = %d, want %d", rr.IdleNs, int64(6*time.Millisecond))
	}

	// Busy exceeding wall (parallel stages) clamps idle at zero.
	rr = s.RankReport(0, time.Millisecond, 0)
	if rr.IdleNs != 0 {
		t.Fatalf("clamped IdleNs = %d, want 0", rr.IdleNs)
	}

	// A nil Stats (rank without files) reports pure comm/idle.
	var nilStats *Stats
	rr = nilStats.RankReport(1, 4*time.Millisecond, time.Millisecond)
	if rr.BusyNs != 0 || rr.Entries != 0 {
		t.Fatalf("nil Stats rank report has work: %+v", rr)
	}
	if rr.IdleNs != int64(3*time.Millisecond) {
		t.Fatalf("nil Stats IdleNs = %d", rr.IdleNs)
	}
}
