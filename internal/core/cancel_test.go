package core

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/eventlog"
)

// TestSynthesizeCanceledBeforeStart: a context canceled before the call
// yields an error wrapping context.Canceled from every entry point.
func TestSynthesizeCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	entries := randomEntries(1, 50)
	if _, _, err := SynthesizeEntries(ctx, entries, 0, 48, Config{}); !errors.Is(err, context.Canceled) {
		t.Errorf("SynthesizeEntries: err = %v, want context.Canceled", err)
	}

	dir := t.TempDir()
	path := writeEntriesLog(t, dir, "a.h5l", entries)
	if _, _, err := SynthesizeFiles(ctx, []string{path}, 0, 48, Config{}); !errors.Is(err, context.Canceled) {
		t.Errorf("SynthesizeFiles: err = %v, want context.Canceled", err)
	}
	if _, _, err := SynthesizeFiles(ctx, []string{path}, 0, 48, Config{MemBudgetBytes: 64}); !errors.Is(err, context.Canceled) {
		t.Errorf("SynthesizeFiles(budgeted): err = %v, want context.Canceled", err)
	}
	if _, err := SynthesizeSeries(ctx, []string{path}, 0, 48, 24, Config{}); !errors.Is(err, context.Canceled) {
		t.Errorf("SynthesizeSeries: err = %v, want context.Canceled", err)
	}
}

// cancelWorkload builds a slice of entries spread over many places so
// the synthesis has many work units to check the cancellation flag
// between.
func cancelWorkload(places, personsPerPlace int) []eventlog.Entry {
	entries := make([]eventlog.Entry, 0, places*personsPerPlace)
	person := uint32(0)
	for p := 0; p < places; p++ {
		for q := 0; q < personsPerPlace; q++ {
			entries = append(entries, eventlog.Entry{
				Start: 0, Stop: 48, Person: person, Place: uint32(p),
			})
			person++
		}
	}
	return entries
}

// TestSynthesizeCanceledMidRun cancels the context while the synthesis
// is running and requires it to abort (within one work unit) with an
// error wrapping context.Canceled. The workload grows until the cancel
// reliably lands mid-run, so the test cannot flake on fast machines.
func TestSynthesizeCanceledMidRun(t *testing.T) {
	for _, size := range []int{400, 1600, 6400, 25600} {
		entries := cancelWorkload(size, 40)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		start := time.Now()
		go func() {
			_, _, err := SynthesizeEntries(ctx, entries, 0, 48, Config{Workers: 2})
			done <- err
		}()
		time.Sleep(2 * time.Millisecond)
		cancel()
		err := <-done
		if err == nil {
			// Finished before the cancel landed; retry with a larger
			// workload.
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-run err = %v, want context.Canceled", err)
		}
		if wall := time.Since(start); wall > 5*time.Second {
			t.Fatalf("cancellation took %s; should abort within one work unit", wall)
		}
		return
	}
	t.Skip("synthesis finished before cancellation on every workload size")
}

// TestSynthesizeBudgetedCanceledMidSpill cancels during a budgeted run
// and checks that the error wraps context.Canceled and the spill
// directory is cleaned up.
func TestSynthesizeBudgetedCanceledMidSpill(t *testing.T) {
	dir := t.TempDir()
	spillDir := t.TempDir()
	for _, size := range []int{200, 800, 3200} {
		entries := cancelWorkload(size, 30)
		path := writeEntriesLog(t, dir, "w.h5l", entries)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, _, err := SynthesizeFiles(ctx, []string{path}, 0, 48,
				Config{Workers: 2, MemBudgetBytes: 1 << 12, SpillDir: spillDir})
			done <- err
		}()
		time.Sleep(2 * time.Millisecond)
		cancel()
		err := <-done
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("budgeted mid-run err = %v, want context.Canceled", err)
		}
		left, rdErr := os.ReadDir(spillDir)
		if rdErr != nil {
			t.Fatal(rdErr)
		}
		if len(left) != 0 {
			t.Fatalf("spill dir not cleaned after cancel: %d entries", len(left))
		}
		return
	}
	t.Skip("budgeted synthesis finished before cancellation on every workload size")
}
