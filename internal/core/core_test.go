package core

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/abm"
	"repro/internal/eventlog"
	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/schedule"
	"repro/internal/sparse"
	"repro/internal/synthpop"
)

// bruteForce computes pair weights by simulating occupancy hour by hour.
func bruteForce(entries []eventlog.Entry, t0, t1 uint32) map[[2]uint32]uint32 {
	out := make(map[[2]uint32]uint32)
	for h := t0; h < t1; h++ {
		at := make(map[uint32][]uint32) // place -> persons (deduped)
		seen := make(map[[2]uint32]bool)
		for _, e := range entries {
			if e.Start <= h && h < e.Stop {
				k := [2]uint32{e.Place, e.Person}
				if !seen[k] {
					seen[k] = true
					at[e.Place] = append(at[e.Place], e.Person)
				}
			}
		}
		for _, persons := range at {
			for i := 0; i < len(persons); i++ {
				for j := i + 1; j < len(persons); j++ {
					a, b := persons[i], persons[j]
					if a > b {
						a, b = b, a
					}
					out[[2]uint32{a, b}]++
				}
			}
		}
	}
	return out
}

func randomEntries(seed uint64, n int) []eventlog.Entry {
	r := rng.New(seed)
	entries := make([]eventlog.Entry, n)
	for i := range entries {
		start := uint32(r.Intn(48))
		entries[i] = eventlog.Entry{
			Start:    start,
			Stop:     start + 1 + uint32(r.Intn(12)),
			Person:   uint32(r.Intn(25)),
			Activity: uint32(r.Intn(4)),
			Place:    uint32(r.Intn(8)),
		}
	}
	return entries
}

func TestSynthesizeMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		entries := randomEntries(seed, 120)
		tri, stats, err := SynthesizeEntries(context.Background(), entries, 0, 48, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(entries, 0, 48)
		if tri.NNZ() != len(want) {
			t.Fatalf("seed %d: %d edges, want %d", seed, tri.NNZ(), len(want))
		}
		for pair, w := range want {
			if got := tri.Weight(pair[0], pair[1]); got != w {
				t.Fatalf("seed %d: weight(%d,%d) = %d, want %d", seed, pair[0], pair[1], got, w)
			}
		}
		if stats.Entries != len(entries) {
			t.Fatalf("stats.Entries = %d", stats.Entries)
		}
	}
}

func TestSliceClipping(t *testing.T) {
	// One pair collocated over hours 0..10; slicing [4,8) must count 4.
	entries := []eventlog.Entry{
		{Start: 0, Stop: 10, Person: 1, Place: 7},
		{Start: 0, Stop: 10, Person: 2, Place: 7},
	}
	tri, _, err := SynthesizeEntries(context.Background(), entries, 4, 8, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tri.Weight(1, 2); got != 4 {
		t.Fatalf("clipped weight = %d, want 4", got)
	}
}

func TestEntriesOutsideSliceIgnored(t *testing.T) {
	entries := []eventlog.Entry{
		{Start: 0, Stop: 5, Person: 1, Place: 7},
		{Start: 0, Stop: 5, Person: 2, Place: 7},
		{Start: 10, Stop: 20, Person: 3, Place: 7},
	}
	tri, stats, err := SynthesizeEntries(context.Background(), entries, 10, 20, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tri.NNZ() != 0 {
		t.Fatalf("edges from outside slice: %d", tri.NNZ())
	}
	if stats.Entries != 1 {
		t.Fatalf("stats.Entries = %d, want 1", stats.Entries)
	}
}

func TestEmptySliceRejected(t *testing.T) {
	if _, _, err := SynthesizeEntries(context.Background(), nil, 10, 10, Config{}); err == nil {
		t.Fatal("empty slice accepted")
	}
	if _, _, err := SynthesizeEntries(context.Background(), nil, 10, 5, Config{}); err == nil {
		t.Fatal("inverted slice accepted")
	}
}

func TestNoEntriesYieldsEmptyNetwork(t *testing.T) {
	tri, stats, err := SynthesizeEntries(context.Background(), nil, 0, 24, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tri.NNZ() != 0 || stats.Places != 0 || stats.TotalNNZ != 0 {
		t.Fatal("empty input produced a non-empty network")
	}
}

func TestResultIndependentOfWorkers(t *testing.T) {
	entries := randomEntries(77, 400)
	var ref *sparse.Tri
	for _, workers := range []int{1, 2, 3, 8, 16} {
		tri, _, err := SynthesizeEntries(context.Background(), entries, 0, 60, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = tri
			continue
		}
		if !tri.Equal(ref) {
			t.Fatalf("workers=%d produced a different network", workers)
		}
	}
}

func TestResultIndependentOfBalanceMode(t *testing.T) {
	entries := randomEntries(88, 400)
	a, _, err := SynthesizeEntries(context.Background(), entries, 0, 60, Config{Workers: 4, Balance: BalanceNNZ})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SynthesizeEntries(context.Background(), entries, 0, 60, Config{Workers: 4, Balance: BalanceNone})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("balance mode changed the network")
	}
}

func TestWorkerNNZAccounting(t *testing.T) {
	entries := randomEntries(99, 500)
	_, stats, err := SynthesizeEntries(context.Background(), entries, 0, 60, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range stats.WorkerCost {
		sum += n
	}
	if sum == 0 {
		t.Fatal("no worker cost recorded")
	}
	if imb := stats.CostImbalance(); imb < 1 {
		t.Fatalf("CostImbalance = %v < 1", imb)
	}
}

func TestBalancedBeatsNaiveOnSkewedPlaces(t *testing.T) {
	// One huge place plus many tiny ones: round-robin gives the huge
	// place plus an equal share of tiny ones to one worker.
	var entries []eventlog.Entry
	for p := uint32(0); p < 40; p++ {
		entries = append(entries, eventlog.Entry{Start: 0, Stop: 24, Person: p, Place: 999})
	}
	for p := uint32(100); p < 140; p++ {
		entries = append(entries, eventlog.Entry{Start: 0, Stop: 2, Person: p, Place: p})
	}
	_, balanced, err := SynthesizeEntries(context.Background(), entries, 0, 24, Config{Workers: 4, Balance: BalanceNNZ})
	if err != nil {
		t.Fatal(err)
	}
	_, naive, err := SynthesizeEntries(context.Background(), entries, 0, 24, Config{Workers: 4, Balance: BalanceNone})
	if err != nil {
		t.Fatal(err)
	}
	if balanced.CostImbalance() > naive.CostImbalance() {
		t.Fatalf("balanced imbalance %.2f worse than naive %.2f",
			balanced.CostImbalance(), naive.CostImbalance())
	}
}

// megaPlaceEntries builds one dominating place with many persons on
// distinct schedules (so clique compression cannot collapse it) plus a
// scattering of small places — the shape that forces the balancer to
// split the mega-place's pairwise loop into tiles.
func megaPlaceEntries() []eventlog.Entry {
	r := rng.New(31)
	var entries []eventlog.Entry
	for p := uint32(0); p < 120; p++ {
		// Two random intervals per person: schedules differ, so the
		// mega-place stays ~120 distinct row groups.
		for k := 0; k < 2; k++ {
			start := uint32(r.Intn(40))
			entries = append(entries, eventlog.Entry{
				Start: start, Stop: start + 1 + uint32(r.Intn(8)),
				Person: p, Place: 7,
			})
		}
	}
	for p := uint32(200); p < 220; p++ {
		entries = append(entries, eventlog.Entry{Start: 0, Stop: 3, Person: p, Place: p})
	}
	return entries
}

// TestSplitWorkUnitsBitIdentical is the satellite property test for work
// unit splitting: with a mega-place that exceeds the per-worker budget,
// the balancer must actually split (Splits > 0), the split partition
// must flatten the cost imbalance, and the synthesized network must stay
// bit-for-bit identical to the unsplit single-worker run at every worker
// count.
func TestSplitWorkUnitsBitIdentical(t *testing.T) {
	entries := megaPlaceEntries()
	ref, refStats, err := SynthesizeEntries(context.Background(), entries, 0, 48, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if refStats.Splits != 0 {
		t.Fatalf("single worker should not split, got %d splits", refStats.Splits)
	}
	if ref.NNZ() == 0 {
		t.Fatal("mega-place scenario produced an empty network")
	}
	splitSeen := false
	for workers := 2; workers <= 8; workers++ {
		tri, stats, err := SynthesizeEntries(context.Background(), entries, 0, 48, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !tri.Equal(ref) {
			t.Fatalf("workers=%d: split synthesis differs from unsplit reference", workers)
		}
		if stats.Splits > 0 {
			splitSeen = true
			if stats.WorkUnits <= stats.Places {
				t.Fatalf("workers=%d: %d splits but only %d work units for %d places",
					workers, stats.Splits, stats.WorkUnits, stats.Places)
			}
			// Splitting exists precisely to flatten the partition: the
			// dominant place alone outweighs the per-worker budget, so
			// post-split imbalance must stay near 1.0.
			if im := stats.CostImbalance(); im > 1.5 {
				t.Fatalf("workers=%d: post-split cost imbalance %.2f", workers, im)
			}
		}
	}
	if !splitSeen {
		t.Fatal("no worker count triggered a split; scenario too small")
	}
}

func TestIdleFractionBounds(t *testing.T) {
	entries := randomEntries(11, 300)
	_, stats, err := SynthesizeEntries(context.Background(), entries, 0, 48, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if f := stats.IdleFraction(); f < 0 || f >= 1 {
		t.Fatalf("IdleFraction = %v out of [0,1)", f)
	}
}

func TestBalanceModeString(t *testing.T) {
	if BalanceNNZ.String() != "nnz" || BalanceNone.String() != "none" {
		t.Fatal("BalanceMode strings wrong")
	}
}

// End-to-end: simulate, log, synthesize from files, and compare against
// a brute-force recomputation from the schedules themselves.
func TestEndToEndFromSimulationLogs(t *testing.T) {
	pop, err := synthpop.Generate(synthpop.Config{Persons: 600, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, 21)
	res, err := abm.Run(context.Background(), abm.Config{
		Pop: pop, Gen: gen, Ranks: 4, Days: 2,
		LogDir: t.TempDir(), Log: eventlog.Config{CacheEntries: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	const t0, t1 = 0, 48
	tri, stats, err := SynthesizeFiles(context.Background(), res.LogPaths, t0, t1, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries == 0 || tri.NNZ() == 0 {
		t.Fatal("end-to-end network is empty")
	}

	// Brute force from schedules: who shares a place at each hour.
	want := make(map[[2]uint32]uint32)
	for h := uint32(t0); h < t1; h++ {
		at := make(map[uint32][]uint32)
		for p := 0; p < pop.NumPersons(); p++ {
			place, _ := gen.PlaceAt(uint32(p), h)
			at[place] = append(at[place], uint32(p))
		}
		for _, persons := range at {
			for i := 0; i < len(persons); i++ {
				for j := i + 1; j < len(persons); j++ {
					want[[2]uint32{persons[i], persons[j]}]++
				}
			}
		}
	}
	if tri.NNZ() != len(want) {
		t.Fatalf("network has %d edges, schedules imply %d", tri.NNZ(), len(want))
	}
	for pair, w := range want {
		if got := tri.Weight(pair[0], pair[1]); got != w {
			t.Fatalf("pair %v: weight %d, want %d", pair, got, w)
		}
	}
}

func TestSynthesizeFilesMatchesMergedEntries(t *testing.T) {
	pop, err := synthpop.Generate(synthpop.Config{Persons: 400, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, 31)
	res, err := abm.Run(context.Background(), abm.Config{
		Pop: pop, Gen: gen, Ranks: 3, Days: 1, LogDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	perFile, _, err := SynthesizeFiles(context.Background(), res.LogPaths, 0, 24, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var all []eventlog.Entry
	for _, p := range res.LogPaths {
		r, err := eventlog.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		es, err := r.TimeSlice(0, 24)
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, es...)
	}
	merged, _, err := SynthesizeEntries(context.Background(), all, 0, 24, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !perFile.Equal(merged) {
		t.Fatal("per-file synthesis + sum differs from merged-entry synthesis")
	}
}

func TestSynthesizeSeriesSumsToWhole(t *testing.T) {
	pop, err := synthpop.Generate(synthpop.Config{Persons: 400, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, 41)
	res, err := abm.Run(context.Background(), abm.Config{Pop: pop, Gen: gen, Ranks: 2, Days: 3, LogDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// Daily slices over three days.
	daily, err := SynthesizeSeries(context.Background(), res.LogPaths, 0, 72, 24, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(daily) != 3 {
		t.Fatalf("got %d slices, want 3", len(daily))
	}
	whole, _, err := SynthesizeFiles(context.Background(), res.LogPaths, 0, 72, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.MergeTris(daily...).Equal(whole) {
		t.Fatal("daily slices do not sum to the whole-window network")
	}
	// A ragged final slice must clip, not extend.
	ragged, err := SynthesizeSeries(context.Background(), res.LogPaths, 0, 60, 24, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ragged) != 3 {
		t.Fatalf("ragged window: %d slices, want 3 (24+24+12)", len(ragged))
	}
}

func TestSynthesizeSeriesValidation(t *testing.T) {
	if _, err := SynthesizeSeries(context.Background(), []string{"x"}, 0, 24, 0, Config{}); err == nil {
		t.Error("zero sliceHours accepted")
	}
	if _, err := SynthesizeSeries(context.Background(), []string{"x"}, 24, 24, 8, Config{}); err == nil {
		t.Error("empty window accepted")
	}
}

func TestSynthesizeFilesEmptyList(t *testing.T) {
	if _, _, err := SynthesizeFiles(context.Background(), nil, 0, 24, Config{}); err == nil {
		t.Fatal("empty file list accepted")
	}
}

// Property: for random entry sets, synthesis equals brute force.
func TestQuickSynthesisCorrect(t *testing.T) {
	f := func(seed uint64) bool {
		entries := randomEntries(seed, 60)
		tri, _, err := SynthesizeEntries(context.Background(), entries, 0, 48, Config{Workers: 3})
		if err != nil {
			return false
		}
		want := bruteForce(entries, 0, 48)
		if tri.NNZ() != len(want) {
			return false
		}
		for pair, w := range want {
			if tri.Weight(pair[0], pair[1]) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: doubling a time slice into two halves and summing the halves
// equals synthesizing the full slice (additivity over time).
func TestQuickTimeAdditivity(t *testing.T) {
	f := func(seed uint64) bool {
		entries := randomEntries(seed, 100)
		full, _, err := SynthesizeEntries(context.Background(), entries, 0, 48, Config{Workers: 2})
		if err != nil {
			return false
		}
		a, _, err := SynthesizeEntries(context.Background(), entries, 0, 24, Config{Workers: 2})
		if err != nil {
			return false
		}
		b, _, err := SynthesizeEntries(context.Background(), entries, 24, 48, Config{Workers: 2})
		if err != nil {
			return false
		}
		return sparse.SumTris(a, b).Equal(full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeDistributedMatchesSerial(t *testing.T) {
	pop, err := synthpop.Generate(synthpop.Config{Persons: 500, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, 51)
	res, err := abm.Run(context.Background(), abm.Config{Pop: pop, Gen: gen, Ranks: 5, Days: 2, LogDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := SynthesizeFiles(context.Background(), res.LogPaths, 0, 48, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Distributed over 3 in-process ranks (5 files striped across them).
	world := mpi.NewWorld(3)
	results := make([]*sparse.Tri, 3)
	err = world.Run(func(c *mpi.Comm) error {
		tri, err := SynthesizeDistributed(context.Background(), mpi.AsTransport(c), res.LogPaths, 0, 48, Config{Workers: 1})
		if err != nil {
			return err
		}
		results[c.Rank()] = tri
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[1] != nil || results[2] != nil {
		t.Fatal("non-root ranks received a network")
	}
	if results[0] == nil || !results[0].Equal(serial) {
		t.Fatal("distributed synthesis differs from serial")
	}
}

func TestSynthesizeDistributedEmptyPaths(t *testing.T) {
	world := mpi.NewWorld(1)
	err := world.Run(func(c *mpi.Comm) error {
		_, err := SynthesizeDistributed(context.Background(), mpi.AsTransport(c), nil, 0, 24, Config{})
		if err == nil {
			t.Error("empty path list accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeDistributedMoreRanksThanFiles(t *testing.T) {
	pop, err := synthpop.Generate(synthpop.Config{Persons: 300, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, 52)
	res, err := abm.Run(context.Background(), abm.Config{Pop: pop, Gen: gen, Ranks: 2, Days: 1, LogDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := SynthesizeFiles(context.Background(), res.LogPaths, 0, 24, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 6 ranks, 2 files: four ranks contribute empty partials.
	world := mpi.NewWorld(6)
	var got *sparse.Tri
	err = world.Run(func(c *mpi.Comm) error {
		tri, err := SynthesizeDistributed(context.Background(), mpi.AsTransport(c), res.LogPaths, 0, 24, Config{Workers: 1})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			got = tri
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(serial) {
		t.Fatal("oversubscribed distributed synthesis differs from serial")
	}
}
