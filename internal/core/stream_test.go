package core

import (
	"context"
	"testing"

	"repro/internal/eventlog"
	"repro/internal/schedule"
	"repro/internal/sparse"
)

// openSources opens each closed log as an EntrySource over [t0, t1).
func openSources(t *testing.T, paths []string, t0, t1 uint32) []eventlog.EntrySource {
	t.Helper()
	srcs := make([]eventlog.EntrySource, len(paths))
	for i, p := range paths {
		s, err := eventlog.OpenSource(p, t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = s
	}
	return srcs
}

// pairWeight returns the weight of edge (i, j) in the strict upper
// triangle, or 0 if absent.
func pairWeight(tri *sparse.Tri, i, j uint32) uint32 {
	for k := range tri.I {
		if tri.I[k] == i && tri.J[k] == j {
			return tri.W[k]
		}
	}
	return 0
}

// TestStreamWindowsBitIdenticalToBatch is the tentpole acceptance
// oracle: with decay 0 (independent windows), every window a stream
// emits over closed simulation logs must be bit-identical to an
// independent batch synthesis of the same window — across multiple
// window widths and worker counts.
func TestStreamWindowsBitIdenticalToBatch(t *testing.T) {
	paths := simLogs(t, 81, 400, 3, 2)
	t1 := uint32(2 * schedule.HoursPerDay)
	for _, window := range []uint32{12, 24} {
		for _, workers := range []int{1, 3} {
			var wins []WindowResult
			st, err := Stream(context.Background(), openSources(t, paths, 0, t1), StreamConfig{
				T0: 0, T1: t1, WindowHours: window,
				DecayNum: 0, DecayDen: 1,
				Synth: Config{Workers: workers},
				OnWindow: func(w WindowResult) error {
					wins = append(wins, w)
					return nil
				},
			})
			if err != nil {
				t.Fatalf("window %d workers %d: %v", window, workers, err)
			}
			if want := int(t1 / window); st.Windows != want {
				t.Fatalf("window %d workers %d: %d windows, want %d", window, workers, st.Windows, want)
			}
			for _, w := range wins {
				want, _, err := SynthesizeFiles(context.Background(), paths, w.W0, w.W1, Config{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !w.Window.Equal(want) {
					t.Fatalf("window [%d,%d) workers %d: streamed window differs from batch synthesis",
						w.W0, w.W1, workers)
				}
				// Decay 0: the running network IS the window network.
				if !w.Net.Equal(want) {
					t.Fatalf("window [%d,%d): decay-0 running network differs from the window", w.W0, w.W1)
				}
			}
		}
	}
}

// TestStreamCumulativeBitIdenticalToBatch: with decay 1 (cumulative),
// the running network after window k must be bit-identical to one
// batch synthesis of the whole advanced range [0, w1_k).
func TestStreamCumulativeBitIdenticalToBatch(t *testing.T) {
	paths := simLogs(t, 83, 400, 2, 2)
	t1 := uint32(2 * schedule.HoursPerDay)
	for _, window := range []uint32{12, 24} {
		for _, workers := range []int{1, 3} {
			_, err := Stream(context.Background(), openSources(t, paths, 0, t1), StreamConfig{
				T0: 0, T1: t1, WindowHours: window,
				DecayNum: 1, DecayDen: 1,
				Synth: Config{Workers: workers},
				OnWindow: func(w WindowResult) error {
					want, _, err := SynthesizeFiles(context.Background(), paths, 0, w.W1, Config{Workers: workers})
					if err != nil {
						return err
					}
					if !w.Net.Equal(want) {
						t.Fatalf("window %d workers %d: cumulative network after [0,%d) differs from batch",
							window, workers, w.W1)
					}
					return nil
				},
			})
			if err != nil {
				t.Fatalf("window %d workers %d: %v", window, workers, err)
			}
		}
	}
}

// TestDecaySingleWindowEqualsBatch is the satellite property: decay
// 1.0 with a single window spanning the whole slice is exactly the
// batch synthesis — same Tri, bit for bit.
func TestDecaySingleWindowEqualsBatch(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		entries := randomEntries(seed, 300)
		acc, err := NewWindowAccumulator(1, 1, 1, Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := acc.Ingest(0, entries); err != nil {
			t.Fatal(err)
		}
		win, _, err := acc.Advance(context.Background(), 0, 60)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := SynthesizeEntries(context.Background(), entries, 0, 60, Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !win.Equal(want) {
			t.Fatalf("seed %d: single-window Advance differs from batch", seed)
		}
		if !acc.Emit().Equal(want) {
			t.Fatalf("seed %d: Emit after one cumulative window differs from batch", seed)
		}
	}
}

// TestDecayHalfLifeGolden pins the fixed-point decay arithmetic across
// three windows with hand-computed weights: half-life decay is
// floor(w/2) per window, and pairs whose weight reaches zero are
// dropped from the running network entirely.
func TestDecayHalfLifeGolden(t *testing.T) {
	colo := func(p1, p2, place, start, stop uint32) []eventlog.Entry {
		return []eventlog.Entry{
			{Start: start, Stop: stop, Person: p1, Place: place},
			{Start: start, Stop: stop, Person: p2, Place: place},
		}
	}
	var entries []eventlog.Entry
	entries = append(entries, colo(1, 2, 7, 0, 4)...)   // window 0: weight 4
	entries = append(entries, colo(3, 4, 9, 2, 3)...)   // window 0: weight 1, then forgotten
	entries = append(entries, colo(1, 2, 7, 12, 17)...) // window 1: weight 5
	entries = append(entries, colo(1, 2, 7, 24, 27)...) // window 2: weight 3

	acc, err := NewWindowAccumulator(1, 32768, 65536, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Ingest(0, entries); err != nil {
		t.Fatal(err)
	}

	steps := []struct{ w0, w1, win, run uint32 }{
		{0, 12, 4, 4},  // first window: no decay applied yet
		{12, 24, 5, 7}, // floor(4/2) + 5
		{24, 36, 3, 6}, // floor(7/2) + 3
	}
	for _, s := range steps {
		win, _, err := acc.Advance(context.Background(), s.w0, s.w1)
		if err != nil {
			t.Fatal(err)
		}
		if got := pairWeight(win, 1, 2); got != s.win {
			t.Fatalf("window [%d,%d): pair weight %d, want %d", s.w0, s.w1, got, s.win)
		}
		if got := pairWeight(acc.Emit(), 1, 2); got != s.run {
			t.Fatalf("after [%d,%d): running weight %d, want %d", s.w0, s.w1, got, s.run)
		}
	}
	if got := pairWeight(acc.Emit(), 3, 4); got != 0 {
		t.Fatalf("pair (3,4) should have decayed to zero, has weight %d", got)
	}
	if nnz := acc.Emit().NNZ(); nnz != 1 {
		t.Fatalf("running network has %d edges, want 1 (decayed pair dropped, not kept at 0)", nnz)
	}
	if acc.Buffered() != 0 {
		t.Fatalf("%d entries still buffered after their windows closed", acc.Buffered())
	}
}

// TestStreamOpenEndStopsAfterData: T1 = StreamOpenEnd follows the
// sources to EOF and stops after the last window containing activity;
// the cumulative result still matches a batch synthesis of the covered
// range.
func TestStreamOpenEndStopsAfterData(t *testing.T) {
	dir := t.TempDir()
	entries := randomEntries(5, 400) // activity within [0, 60)
	half := len(entries) / 2
	paths := []string{
		writeEntriesLog(t, dir, "a.h5l", entries[:half]),
		writeEntriesLog(t, dir, "b.h5l", entries[half:]),
	}
	// randomEntries logs are not in nondecreasing-Stop order, so the
	// horizon close rule does not apply; EOF-only closing is exact for
	// any order (the same choice SynthesizeSeries makes).
	var last WindowResult
	st, err := Stream(context.Background(), openSources(t, paths, 0, StreamOpenEnd), StreamConfig{
		T0: 0, T1: StreamOpenEnd, WindowHours: 24, HorizonHours: HorizonEOF,
		Synth: Config{Workers: 2},
		OnWindow: func(w WindowResult) error {
			last = w
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Windows != 3 { // [0,24) [24,48) [48,72) cover Stop < 60, then data runs out
		t.Fatalf("open-ended stream emitted %d windows, want 3", st.Windows)
	}
	if last.W1 < st.MaxStop {
		t.Fatalf("last window ends at %d, before the last activity at %d", last.W1, st.MaxStop)
	}
	want, _, err := SynthesizeFiles(context.Background(), paths, 0, last.W1, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !last.Net.Equal(want) {
		t.Fatal("open-ended cumulative network differs from batch synthesis of the covered range")
	}
}

// TestStreamShortHorizonCountsLate: a horizon smaller than the true
// maximum activity span makes windows close early; the stream must
// still complete and account for every entry that missed its window.
func TestStreamShortHorizonCountsLate(t *testing.T) {
	paths := simLogs(t, 91, 300, 2, 1)
	t1 := uint32(schedule.HoursPerDay)
	st, err := Stream(context.Background(), openSources(t, paths, 0, t1), StreamConfig{
		T0: 0, T1: t1, WindowHours: 6, HorizonHours: 1,
		Synth: Config{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.LateEntries == 0 {
		t.Fatal("horizon 1 with multi-hour activities should have produced late entries")
	}
	if st.Windows != 4 {
		t.Fatalf("%d windows, want 4", st.Windows)
	}
}

// TestAccumulatorLateIngestStillContributes: entries ingested after
// their window closed are counted late but still land in every later
// window they overlap.
func TestAccumulatorLateIngestStillContributes(t *testing.T) {
	acc, err := NewWindowAccumulator(1, 1, 1, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := acc.Advance(context.Background(), 0, 12); err != nil {
		t.Fatal(err)
	}
	// Starts at hour 10 (before the frontier), runs through hour 15.
	late := []eventlog.Entry{
		{Start: 10, Stop: 15, Person: 1, Place: 3},
		{Start: 10, Stop: 15, Person: 2, Place: 3},
	}
	if err := acc.Ingest(0, late); err != nil {
		t.Fatal(err)
	}
	if acc.LateEntries() != 2 {
		t.Fatalf("late count %d, want 2", acc.LateEntries())
	}
	win, _, err := acc.Advance(context.Background(), 12, 24)
	if err != nil {
		t.Fatal(err)
	}
	if got := pairWeight(win, 1, 2); got != 3 { // [12,15) of the late overlap
		t.Fatalf("late entries contributed weight %d to [12,24), want 3", got)
	}
}

// TestAccumulatorValidation covers the constructor and state-machine
// guards.
func TestAccumulatorValidation(t *testing.T) {
	if _, err := NewWindowAccumulator(0, 1, 1, Config{}); err == nil {
		t.Fatal("zero segments accepted")
	}
	if _, err := NewWindowAccumulator(1, 1, 0, Config{}); err == nil {
		t.Fatal("zero decay denominator accepted")
	}
	if _, err := NewWindowAccumulator(1, 3, 2, Config{}); err == nil {
		t.Fatal("amplifying decay accepted")
	}
	acc, err := NewWindowAccumulator(2, 1, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Ingest(2, nil); err == nil {
		t.Fatal("out-of-range segment accepted")
	}
	if _, _, err := acc.Advance(context.Background(), 5, 5); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, _, err := acc.Advance(context.Background(), 0, 12); err != nil {
		t.Fatal(err)
	}
	if _, _, err := acc.Advance(context.Background(), 6, 18); err == nil {
		t.Fatal("window regressing behind the frontier accepted")
	}
}

// TestStreamValidation covers the driver's input guards.
func TestStreamValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Stream(ctx, nil, StreamConfig{T0: 0, T1: 24, WindowHours: 24}); err == nil {
		t.Fatal("no sources accepted")
	}
	src := func() []eventlog.EntrySource {
		return []eventlog.EntrySource{eventlog.SliceSource(ctx, nil, 0, 24)}
	}
	if _, err := Stream(ctx, src(), StreamConfig{T0: 0, T1: 24}); err == nil {
		t.Fatal("zero window width accepted")
	}
	if _, err := Stream(ctx, src(), StreamConfig{T0: 24, T1: 24, WindowHours: 6}); err == nil {
		t.Fatal("empty range accepted")
	}
}
