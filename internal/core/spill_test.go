package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/abm"
	"repro/internal/eventlog"
	"repro/internal/schedule"
	"repro/internal/synthpop"
)

// writeEntriesLog writes the given entries to a fresh log file and
// returns its path.
func writeEntriesLog(t *testing.T, dir, name string, entries []eventlog.Entry) string {
	t.Helper()
	path := filepath.Join(dir, name)
	l, err := eventlog.Create(path, eventlog.Config{CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := l.Log(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// simLogs runs a small simulation and returns its per-rank log paths.
func simLogs(t *testing.T, seed uint64, persons, ranks, days int) []string {
	t.Helper()
	pop, err := synthpop.Generate(synthpop.Config{Persons: persons, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, seed)
	res, err := abm.Run(context.Background(), abm.Config{
		Pop: pop, Gen: gen, Ranks: ranks, Days: days, LogDir: t.TempDir(),
		// A small cache yields many chunks per log, so crash-salvage
		// tests find intact prefixes to recover.
		Log: eventlog.Config{CacheEntries: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.LogPaths
}

// TestBudgetedSynthesisBitIdentical is the tentpole acceptance test: a
// memory budget small enough to force the place-sharded spill path must
// produce a network bit-identical to the unbudgeted in-memory path.
func TestBudgetedSynthesisBitIdentical(t *testing.T) {
	paths := simLogs(t, 71, 500, 3, 2)
	t1 := uint32(2 * schedule.HoursPerDay)

	want, wantStats, err := SynthesizeFiles(context.Background(), paths, 0, t1, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if wantStats.Shards != 0 {
		t.Fatalf("unbudgeted run spilled: %d shards", wantStats.Shards)
	}

	// Budget a small fraction of the slice so the planner must build
	// several shards.
	budget := int64(wantStats.Entries) * eventlog.BaseEntrySize / 4
	got, stats, err := SynthesizeFiles(context.Background(), paths, 0, t1,
		Config{Workers: 3, MemBudgetBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards < 2 {
		t.Fatalf("budget %d produced %d shards, want >= 2", budget, stats.Shards)
	}
	if stats.SpilledBytes == 0 {
		t.Fatal("no bytes recorded as spilled")
	}
	if stats.Entries != wantStats.Entries || stats.Places != wantStats.Places {
		t.Fatalf("budgeted stats (%d entries, %d places) != unbudgeted (%d, %d)",
			stats.Entries, stats.Places, wantStats.Entries, wantStats.Places)
	}
	if !got.Equal(want) {
		t.Fatal("budgeted synthesis differs from the in-memory path")
	}
}

// TestBudgetedSynthesisProperty sweeps random entry sets and budgets:
// every budget, from absurdly tight to generous, must reproduce the
// unbudgeted network exactly.
func TestBudgetedSynthesisProperty(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		dir := t.TempDir()
		entries := randomEntries(seed, 400)
		half := len(entries) / 2
		paths := []string{
			writeEntriesLog(t, dir, "a.h5l", entries[:half]),
			writeEntriesLog(t, dir, "b.h5l", entries[half:]),
		}
		want, _, err := SynthesizeFiles(context.Background(), paths, 0, 60, Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range []int64{1, 512, 4 << 10, 1 << 20} {
			got, stats, err := SynthesizeFiles(context.Background(), paths, 0, 60,
				Config{Workers: 2, MemBudgetBytes: budget})
			if err != nil {
				t.Fatalf("seed %d budget %d: %v", seed, budget, err)
			}
			if !got.Equal(want) {
				t.Fatalf("seed %d budget %d (shards %d): network differs from unbudgeted",
					seed, budget, stats.Shards)
			}
		}
	}
}

// TestBudgetedSynthesisOnSalvagedLogs feeds the spill path logs that
// went through crash salvage: a torn (footer-less) log is recovered by
// eventlog.Resume and the salvaged file must synthesize identically
// with and without a budget.
func TestBudgetedSynthesisOnSalvagedLogs(t *testing.T) {
	paths := simLogs(t, 73, 400, 2, 1)

	// Tear one log mid-file, then salvage it the way a resumed run
	// would, leaving a valid footer over the recovered prefix.
	dir := t.TempDir()
	torn := filepath.Join(dir, "torn.h5l")
	b, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, b[:len(b)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := eventlog.Open(torn); err == nil {
		t.Fatal("torn log unexpectedly opens cleanly")
	}
	l, info, err := eventlog.Resume(torn, eventlog.Config{CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	if info.RecoveredEntries == 0 {
		t.Fatal("salvage recovered no entries")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	salvaged := []string{torn, paths[1]}
	want, _, err := SynthesizeFiles(context.Background(), salvaged, 0, 24, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := SynthesizeFiles(context.Background(), salvaged, 0, 24,
		Config{Workers: 2, MemBudgetBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards < 2 {
		t.Fatalf("budget produced %d shards, want >= 2", stats.Shards)
	}
	if !got.Equal(want) {
		t.Fatal("budgeted synthesis of salvaged logs differs from in-memory path")
	}
}

// TestBudgetLargeEnoughStaysInMemory: when the whole slice fits inside
// the budget no shards are created and no bytes spill.
func TestBudgetLargeEnoughStaysInMemory(t *testing.T) {
	dir := t.TempDir()
	entries := randomEntries(3, 200)
	path := writeEntriesLog(t, dir, "a.h5l", entries)

	want, _, err := SynthesizeFiles(context.Background(), []string{path}, 0, 60, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := SynthesizeFiles(context.Background(), []string{path}, 0, 60,
		Config{MemBudgetBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 0 || stats.SpilledBytes != 0 {
		t.Fatalf("generous budget spilled anyway: %d shards, %d bytes",
			stats.Shards, stats.SpilledBytes)
	}
	if !got.Equal(want) {
		t.Fatal("generous-budget synthesis differs from unbudgeted")
	}
}

// TestBudgetedLeavesNoSpillFiles: the temporary spill directory must be
// gone after a budgeted run, success or not.
func TestBudgetedLeavesNoSpillFiles(t *testing.T) {
	dir := t.TempDir()
	spillDir := t.TempDir()
	entries := randomEntries(5, 300)
	path := writeEntriesLog(t, dir, "a.h5l", entries)

	_, stats, err := SynthesizeFiles(context.Background(), []string{path}, 0, 60,
		Config{MemBudgetBytes: 256, SpillDir: spillDir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards < 2 {
		t.Fatalf("got %d shards, want >= 2", stats.Shards)
	}
	left, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("spill dir not cleaned up: %d entries remain", len(left))
	}
}

// TestConfigValidateRejectsNegatives: negative numeric configuration is
// an error, not a silent default.
func TestConfigValidateRejectsNegatives(t *testing.T) {
	if _, _, err := SynthesizeEntries(context.Background(), nil, 0, 24, Config{Workers: -1}); err == nil {
		t.Error("negative Workers accepted")
	}
	if _, _, err := SynthesizeEntries(context.Background(), nil, 0, 24, Config{MemBudgetBytes: -1}); err == nil {
		t.Error("negative MemBudgetBytes accepted")
	}
	if _, _, err := SynthesizeFiles(context.Background(), []string{"x"}, 0, 24, Config{Workers: -3}); err == nil {
		t.Error("SynthesizeFiles: negative Workers accepted")
	}
}
