package core

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/abm"
	"repro/internal/faultinject"
	"repro/internal/mpi"
	"repro/internal/mpinet"
	"repro/internal/schedule"
	"repro/internal/sparse"
	"repro/internal/synthpop"
)

// buildLogs runs a small ABM and returns its per-rank log paths plus the
// reference network synthesized serially.
func buildLogs(t *testing.T, seed int64) ([]string, *sparse.Tri) {
	t.Helper()
	pop, err := synthpop.Generate(synthpop.Config{Persons: 400, Seed: uint64(seed)})
	if err != nil {
		t.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, uint64(seed))
	res, err := abm.Run(context.Background(), abm.Config{Pop: pop, Gen: gen, Ranks: 5, Days: 2, LogDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := SynthesizeFiles(context.Background(), res.LogPaths, 0, 48, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res.LogPaths, serial
}

// TestSynthesizeDistributedSurvivesRankDeath kills one rank before it
// contributes anything; the survivors must re-stripe its files and
// produce the bit-identical network.
func TestSynthesizeDistributedSurvivesRankDeath(t *testing.T) {
	paths, serial := buildLogs(t, 91)

	opts := mpinet.Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
	}
	const size = 3
	host, err := mpinet.Host("127.0.0.1:0", size, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	survivor, err := mpinet.Join(host.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	victim, err := mpinet.Join(host.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	victimRank := victim.Rank()
	// The victim dies before participating in any collective.
	victim.Close()

	var wg sync.WaitGroup
	var hostTri, survTri *sparse.Tri
	var hostErr, survErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		hostTri, hostErr = SynthesizeDistributed(context.Background(), host, paths, 0, 48, Config{Workers: 1})
	}()
	go func() {
		defer wg.Done()
		survTri, survErr = SynthesizeDistributed(context.Background(), survivor, paths, 0, 48, Config{Workers: 1})
	}()
	wg.Wait()

	if hostErr != nil {
		t.Fatalf("rank 0: %v", hostErr)
	}
	if survErr != nil {
		t.Fatalf("rank %d: %v", survivor.Rank(), survErr)
	}
	if survTri != nil {
		t.Error("non-root rank received a network")
	}
	if hostTri == nil || !hostTri.Equal(serial) {
		t.Fatalf("network after rank %d death differs from healthy reference", victimRank)
	}
}

// TestSynthesizeDistributedSurvivesMidGatherDeath severs the victim's
// connection mid-frame during its Gather contribution (a deterministic
// torn frame via the fault injector): the survivors see the abort, retry
// with the victim's files re-assigned, and still produce the
// bit-identical network.
func TestSynthesizeDistributedSurvivesMidGatherDeath(t *testing.T) {
	paths, serial := buildLogs(t, 92)

	opts := mpinet.Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
	}
	const size = 3
	host, err := mpinet.Host("127.0.0.1:0", size, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	survivor, err := mpinet.Join(host.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()

	victimOpts := opts
	victimOpts.DisableHeartbeat = true // all written bytes budget to the torn frame
	victimOpts.WrapConn = func(c net.Conn) net.Conn {
		// The Gather frame (header + marshaled partial matrix) is far
		// larger than 64 bytes, so the cut tears it mid-frame.
		return faultinject.NewFlakyConn(c, faultinject.ConnFaults{CutAfterWriteBytes: 64})
	}
	victim, err := mpinet.Join(host.Addr(), victimOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()

	var wg sync.WaitGroup
	var hostTri *sparse.Tri
	var hostErr, survErr, vicErr error
	wg.Add(3)
	go func() {
		defer wg.Done()
		hostTri, hostErr = SynthesizeDistributed(context.Background(), host, paths, 0, 48, Config{Workers: 1})
	}()
	go func() {
		defer wg.Done()
		_, survErr = SynthesizeDistributed(context.Background(), survivor, paths, 0, 48, Config{Workers: 1})
	}()
	go func() {
		defer wg.Done()
		_, vicErr = SynthesizeDistributed(context.Background(), victim, paths, 0, 48, Config{Workers: 1})
	}()
	wg.Wait()

	if vicErr == nil {
		t.Fatal("victim's synthesis succeeded through a severed conn")
	}
	if hostErr != nil {
		t.Fatalf("rank 0: %v", hostErr)
	}
	if survErr != nil {
		t.Fatalf("survivor: %v", survErr)
	}
	if hostTri == nil || !hostTri.Equal(serial) {
		t.Fatal("network after mid-gather death differs from healthy reference")
	}
}

// TestSynthesizeDistributedRetriesDisabled: with MaxRankRetries < 0 the
// first failure is returned as-is (typed), with no retry.
func TestSynthesizeDistributedRetriesDisabled(t *testing.T) {
	paths, _ := buildLogs(t, 93)

	opts := mpinet.Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
	}
	host, err := mpinet.Host("127.0.0.1:0", 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	victim, err := mpinet.Join(host.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	victim.Close()

	_, err = SynthesizeDistributed(context.Background(), host, paths, 0, 48, Config{Workers: 1, MaxRankRetries: -1})
	if err == nil {
		t.Fatal("synthesis succeeded with retries disabled and a dead peer")
	}
	if rf, ok := mpi.AsRankFailed(err); !ok || rf.Rank != 1 {
		t.Fatalf("error = %v, want RankFailedError{Rank:1}", err)
	}
}

// TestSynthesizeDistributedAbsorbsRejoin is the supervised-restart
// story end to end at the synthesis layer: a rank dies, a replacement
// process reclaims its slot with the rank claim token, survivors absorb
// the typed revival and put the rank back into the stripe, the rejoined
// rank seeds its membership view from the join handshake — and the
// merged network is still bit-identical to the serial reference.
func TestSynthesizeDistributedAbsorbsRejoin(t *testing.T) {
	paths, serial := buildLogs(t, 95)

	opts := mpinet.Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
	}
	const size = 3
	const token = uint64(4242)
	host, err := mpinet.Host("127.0.0.1:0", size, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	survivor, err := mpinet.Join(host.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	claimed := opts
	claimed.ClaimRank = 2
	claimed.ClaimToken = token
	victim, err := mpinet.Join(host.Addr(), claimed)
	if err != nil {
		t.Fatal(err)
	}
	victimRank := victim.Rank()
	victim.Close()

	// Drive rounds until both survivors have observed the death, so the
	// revival below is the only membership event left in flight.
	for tries := 0; tries < 10; tries++ {
		var wg sync.WaitGroup
		var hostErr, survErr error
		wg.Add(2)
		go func() { defer wg.Done(); hostErr = host.Barrier(context.Background()) }()
		go func() { defer wg.Done(); survErr = survivor.Barrier(context.Background()) }()
		wg.Wait()
		if rf, ok := mpi.AsRankFailed(hostErr); ok && rf.Rank == victimRank {
			if rf2, ok2 := mpi.AsRankFailed(survErr); !ok2 || rf2.Rank != victimRank {
				t.Fatalf("survivors disagree on the death: %v vs %v", hostErr, survErr)
			}
			break
		}
		if hostErr != nil {
			t.Fatalf("unexpected barrier error: %v", hostErr)
		}
	}

	// The supervised restart reclaims the slot. Each survivor now holds
	// one buffered revival abort for its next collective.
	revived, err := mpinet.Join(host.Addr(), claimed)
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	defer revived.Close()
	if got := revived.InitialDead(); len(got) != 0 {
		t.Fatalf("InitialDead = %v, want empty (only this rank had died)", got)
	}

	var wg sync.WaitGroup
	tris := make([]*sparse.Tri, size)
	errs := make([]error, size)
	nodes := []*mpinet.Node{host, survivor, revived}
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *mpinet.Node) {
			defer wg.Done()
			tris[i], errs[i] = SynthesizeDistributed(context.Background(), n, paths, 0, 48, Config{Workers: 1})
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", nodes[i].Rank(), err)
		}
	}
	if tris[0] == nil || !tris[0].Equal(serial) {
		t.Fatal("network after rejoin differs from healthy reference")
	}
}
