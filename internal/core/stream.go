package core

// Streaming synthesis: the batch pipeline's one-shot Gram/coalesce
// accumulation, refactored into an incremental consumer.
//
// The batch entry points (SynthesizeFiles, SynthesizeEntries) read a
// closed time slice and emit exactly one network. A live pipeline
// inverts both assumptions: entries arrive as the simulation emits
// them, and a new network generation must be published every window of
// simulated time. This file provides the two pieces:
//
//   - Accumulator: the windowed state machine. Ingest buffers entries
//     per source segment (the per-file dedup domain of the batch path),
//     Advance closes one time window — synthesizing exactly the batch
//     pipeline's stages over the buffered entries restricted to that
//     window, then folding the window network into an exponentially
//     decaying running network — and Emit returns the current running
//     network. Decay is deterministic fixed-point arithmetic
//     (floor(w·num/den) per window), so streamed outputs admit the same
//     bit-identity oracles as the batch path: decay 1 makes the running
//     network after window k bit-identical to a batch synthesis of
//     [t0, w1_k), and decay 0 makes each window bit-identical to an
//     independent batch synthesis of that window.
//
//   - Stream: the driver. It round-robins over a set of EntrySources
//     (closed files or live eventlog.OpenTail tails), ingests batches,
//     and closes window [w0, w1) exactly when it is provably complete:
//     either every source has reported an entry with Stop ≥ w1 +
//     horizon — sound because event logs are written in nondecreasing
//     Stop order and no activity spans more than horizon hours — or
//     every source hit EOF, which is exact regardless of order or
//     horizon. Entries that can no longer contribute to any future
//     window (Stop ≤ w1) are evicted as windows close, so a stream's
//     resident entry set is bounded by the window+horizon span, not the
//     log size — the whole-file materialization of the old batch path
//     is gone (SynthesizeFiles and SynthesizeSeries are now thin
//     clients of this machinery).

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/eventlog"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

var (
	mStreamWindows  = telemetry.C("stream_windows_total")
	mStreamLate     = telemetry.C("stream_late_entries_total")
	mStreamIngested = telemetry.C("stream_ingested_entries_total")
	mStreamBuffered = telemetry.G("stream_buffered_entries")
	mWindowSeconds  = telemetry.H("stream_window_seconds")
)

// An Accumulator consumes log-entry batches incrementally and emits a
// collocation network per closed time window. Implementations maintain
// whatever per-segment state the dedup domain requires; the contract
// every implementation shares:
//
//	Ingest(seg, batch)  buffer entries from source segment seg (copied;
//	                    the batch may be reused by the caller).
//	Advance(ctx, w0, w1) close window [w0, w1): synthesize the buffered
//	                    entries restricted to it, fold the result into
//	                    the running network, release entries that no
//	                    future window can see, and return the window's
//	                    own network.
//	Emit()              the running (decayed) network as of the last
//	                    Advance. The returned matrix is never mutated by
//	                    later calls — callers may retain it.
type Accumulator interface {
	Ingest(seg int, batch []eventlog.Entry) error
	Advance(ctx context.Context, w0, w1 uint32) (*sparse.Tri, *Stats, error)
	Emit() *sparse.Tri
}

// WindowAccumulator is the standard Accumulator: per-segment entry
// buffers (segments are the batch pipeline's per-file dedup domains, so
// streamed windows coalesce exactly like batch runs), windowed
// synthesis through the same stage 1b–4 kernels as the batch path, and
// deterministic fixed-point exponential decay of the running network.
type WindowAccumulator struct {
	cfg                Config
	decayNum, decayDen uint64
	segs               [][]eventlog.Entry
	net                *sparse.Tri // running decayed network; nil before the first Advance
	frontier           uint32      // end of the last advanced window
	late               uint64
	buffered           int
}

// NewWindowAccumulator returns a WindowAccumulator over `segments`
// entry sources. The running network decays by floor(w·decayNum/
// decayDen) each Advance before the new window is added: num==den keeps
// the cumulative sum (bit-identical to batch synthesis of the full
// advanced range), num==0 makes every window independent, and anything
// in between is an exponential half-life in window units. Weights that
// decay to zero are dropped from the running network (the pair is
// forgotten). decayNum > decayDen (amplification) is rejected.
func NewWindowAccumulator(segments int, decayNum, decayDen uint64, cfg Config) (*WindowAccumulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if segments <= 0 {
		return nil, fmt.Errorf("core: accumulator needs at least one segment, got %d", segments)
	}
	if decayDen == 0 {
		return nil, fmt.Errorf("core: decay denominator must be positive")
	}
	if decayNum > decayDen {
		return nil, fmt.Errorf("core: decay %d/%d would amplify weights", decayNum, decayDen)
	}
	return &WindowAccumulator{
		cfg:      cfg,
		decayNum: decayNum,
		decayDen: decayDen,
		segs:     make([][]eventlog.Entry, segments),
	}, nil
}

// Ingest buffers a batch of entries from segment seg. The batch is
// copied, honoring the EntrySource contract that batches are only valid
// until the next Next. Entries starting before the accumulator's
// frontier arrived too late for already-closed windows; they still
// contribute to every remaining window they overlap, and are counted in
// LateEntries (and stream_late_entries_total) because the closed
// windows missed them.
func (a *WindowAccumulator) Ingest(seg int, batch []eventlog.Entry) error {
	if seg < 0 || seg >= len(a.segs) {
		return fmt.Errorf("core: ingest into segment %d of %d", seg, len(a.segs))
	}
	for _, e := range batch {
		if e.Start < a.frontier {
			a.late++
			mStreamLate.Inc()
		}
	}
	a.segs[seg] = append(a.segs[seg], batch...)
	a.buffered += len(batch)
	mStreamIngested.Add(int64(len(batch)))
	mStreamBuffered.Set(int64(a.buffered))
	return nil
}

// Advance closes the window [w0, w1): it synthesizes the buffered
// entries restricted to the window (per segment, coalesced once across
// segments — the exact shape of the batch per-file loop, so the result
// is bit-identical to SynthesizeFiles over the same entries and
// window), folds it into the decayed running network, and evicts
// entries no future window can overlap. Windows must advance
// monotonically: w0 ≥ the previous w1.
func (a *WindowAccumulator) Advance(ctx context.Context, w0, w1 uint32) (*sparse.Tri, *Stats, error) {
	if w1 <= w0 {
		return nil, nil, fmt.Errorf("core: empty window [%d,%d)", w0, w1)
	}
	if w0 < a.frontier {
		return nil, nil, fmt.Errorf("core: window [%d,%d) starts before frontier %d", w0, w1, a.frontier)
	}
	sw := telemetry.Clock()
	all := sparse.GetEntries()
	agg := &Stats{SliceHours: int(w1 - w0)}
	for seg, entries := range a.segs {
		var stats *Stats
		var err error
		all, stats, err = synthesizeEntriesInto(ctx, all, entries, w0, w1, a.cfg)
		if err != nil {
			sparse.PutEntries(all)
			return nil, nil, fmt.Errorf("core: window [%d,%d) segment %d: %w", w0, w1, seg, err)
		}
		agg.add(stats)
	}
	win := sparse.TriFromEntries(all)
	sparse.PutEntries(all)

	// Fold into the running network: decay, then add. The fold is pure —
	// previously emitted networks are never mutated.
	switch {
	case a.net == nil || a.decayNum == 0:
		a.net = win
	case a.decayNum == a.decayDen:
		a.net = sparse.MergeTris(a.net, win)
	default:
		a.net = sparse.MergeTris(scaleTri(a.net, a.decayNum, a.decayDen), win)
	}

	// Evict entries that stopped at or before the new frontier: no
	// window [w1, ∞) can overlap them. This is the bound that replaces
	// the batch path's whole-slice materialization.
	a.frontier = w1
	a.buffered = 0
	for seg, entries := range a.segs {
		kept := entries[:0]
		for _, e := range entries {
			if e.Stop > w1 {
				kept = append(kept, e)
			}
		}
		a.segs[seg] = kept
		a.buffered += len(kept)
	}
	mStreamBuffered.Set(int64(a.buffered))
	mStreamWindows.Inc()
	sw.Observe(mWindowSeconds)
	return win, agg, nil
}

// Emit returns the running decayed network as of the last Advance (nil
// before the first). The matrix is immutable from the accumulator's
// side; callers may retain or serialize it freely.
func (a *WindowAccumulator) Emit() *sparse.Tri { return a.net }

// Buffered returns the number of entries currently resident across all
// segment buffers.
func (a *WindowAccumulator) Buffered() int { return a.buffered }

// LateEntries returns how many ingested entries started before an
// already-closed window (see Ingest).
func (a *WindowAccumulator) LateEntries() uint64 { return a.late }

// scaleTri returns a new Tri with every weight scaled to
// floor(w·num/den), dropping pairs whose weight reaches zero. The input
// is not modified.
func scaleTri(t *sparse.Tri, num, den uint64) *sparse.Tri {
	out := &sparse.Tri{
		I: make([]uint32, 0, len(t.I)),
		J: make([]uint32, 0, len(t.J)),
		W: make([]uint32, 0, len(t.W)),
	}
	for k := range t.I {
		if w := uint32(uint64(t.W[k]) * num / den); w > 0 {
			out.I = append(out.I, t.I[k])
			out.J = append(out.J, t.J[k])
			out.W = append(out.W, w)
		}
	}
	return out
}

// DefaultStreamHorizon is the window-close horizon (in hours) used when
// StreamConfig.HorizonHours is zero. The synthetic-population schedule
// generator tiles each person's day with activities, so no single
// activity spans more than 24 hours — an entry overlapping window
// [w0, w1) therefore has Stop > w0 ≥ w1 − window and certainly
// Stop > w1 − 24… more usefully: once a source has logged an entry with
// Stop ≥ w1 + 24, every later entry of that source (logs are
// nondecreasing in Stop) has Start = Stop − span ≥ w1, so the window is
// complete.
const DefaultStreamHorizon = 24

// HorizonEOF disables horizon-based window closing: windows close only
// when every source reaches EOF. Exact for any entry order (no
// nondecreasing-Stop assumption), at the cost of buffering each
// source's full overlap of [T0, T1) before the first window closes.
const HorizonEOF = ^uint32(0)

// StreamOpenEnd as StreamConfig.T1 means "until every source ends":
// windows are emitted until the sources' data runs out rather than up
// to a fixed hour.
const StreamOpenEnd = ^uint32(0)

// StreamConfig configures a streaming synthesis run.
type StreamConfig struct {
	// T0, T1 bound the synthesized range in simulation hours. T1 =
	// StreamOpenEnd follows the sources until EOF and stops after the
	// last window containing data; a finite T1 emits every window of
	// [T0, T1), including trailing empty ones.
	T0, T1 uint32
	// WindowHours is the emission cadence: one network per window.
	WindowHours uint32
	// HorizonHours bounds the activity span assumed when deciding a
	// window is complete (see DefaultStreamHorizon); zero selects the
	// default, HorizonEOF closes windows only at source EOF.
	HorizonHours uint32
	// DecayNum/DecayDen set the per-window weight decay of the running
	// network (see NewWindowAccumulator). Both zero selects 1/1 — the
	// cumulative network.
	DecayNum, DecayDen uint64
	// Synth configures the per-window synthesis.
	Synth Config
	// OnWindow is called after each window closes, in window order, with
	// the window's own network, the running network, and the window's
	// synthesis stats. Returning an error aborts the stream with that
	// error. The Window and Net matrices are the callback's to retain.
	OnWindow func(WindowResult) error
}

// WindowResult is one closed window of a streaming synthesis.
type WindowResult struct {
	// Index is the zero-based window number.
	Index int
	// W0, W1 bound the closed window in simulation hours.
	W0, W1 uint32
	// Window is the network of this window alone.
	Window *sparse.Tri
	// Net is the running decayed network including this window.
	Net *sparse.Tri
	// Stats reports the window's synthesis stages.
	Stats *Stats
	// ClosedAt is the wall-clock instant the window closed (every
	// source had contributed past the horizon or ended), before the
	// window's synthesis ran. Publishers use it to measure end-to-end
	// close → durable freshness.
	ClosedAt time.Time
}

// StreamStats summarizes a completed streaming synthesis.
type StreamStats struct {
	// Windows is the number of windows emitted.
	Windows int
	// Entries is the total number of entries ingested.
	Entries uint64
	// LateEntries counts entries that arrived after their window closed
	// (nonzero only when HorizonHours underestimates the true maximum
	// activity span).
	LateEntries uint64
	// PeakBuffered is the high-water mark of resident buffered entries.
	PeakBuffered int
	// MaxStop is the largest Stop hour seen across all sources.
	MaxStop uint32
}

// Stream drives a set of entry sources through a WindowAccumulator,
// invoking cfg.OnWindow once per closed window. Sources may be closed
// files or live tails (eventlog.OpenTail); Stream closes every source
// before returning. A window [w0, w1) closes when every source has
// either reported an entry with Stop ≥ w1 + horizon (sound for
// nondecreasing-Stop logs, which is how the simulator writes them) or
// reached EOF. Cancelling ctx aborts between batches — and, because a
// live tail's Next observes the same ctx, also while blocked waiting
// for simulation output — with an error wrapping context.Canceled.
func Stream(ctx context.Context, srcs []eventlog.EntrySource, cfg StreamConfig) (*StreamStats, error) {
	defer func() {
		for _, s := range srcs {
			s.Close()
		}
	}()
	if len(srcs) == 0 {
		return nil, fmt.Errorf("core: no entry sources given")
	}
	if cfg.WindowHours == 0 {
		return nil, fmt.Errorf("core: WindowHours must be positive")
	}
	if cfg.T1 <= cfg.T0 {
		return nil, fmt.Errorf("core: empty stream range [%d,%d)", cfg.T0, cfg.T1)
	}
	horizon := cfg.HorizonHours
	if horizon == 0 {
		horizon = DefaultStreamHorizon
	}
	num, den := cfg.DecayNum, cfg.DecayDen
	if num == 0 && den == 0 {
		num, den = 1, 1
	}
	acc, err := NewWindowAccumulator(len(srcs), num, den, cfg.Synth)
	if err != nil {
		return nil, err
	}

	st := &StreamStats{}
	alive := make([]bool, len(srcs))
	maxStop := make([]uint32, len(srcs))
	live := len(srcs)
	for i := range alive {
		alive[i] = true
	}

	lo := cfg.T0
	for lo < cfg.T1 {
		if live == 0 && cfg.T1 == StreamOpenEnd && st.MaxStop <= lo {
			break // open-ended stream: data ran out
		}
		hi := lo + cfg.WindowHours
		if hi > cfg.T1 || hi < lo { // clamp, incl. uint32 overflow
			hi = cfg.T1
		}
		closeAt := hi + horizon
		if closeAt < hi { // saturate
			closeAt = ^uint32(0)
		}
		// Pull every source until it can no longer contribute to
		// [lo, hi): it has logged past the horizon, or it ended.
		for si, src := range srcs {
			for alive[si] && (horizon == HorizonEOF || maxStop[si] < closeAt) {
				batch, nerr := src.Next()
				if nerr == io.EOF {
					alive[si] = false
					live--
					break
				}
				if nerr != nil {
					return st, fmt.Errorf("core: stream source %d: %w", si, nerr)
				}
				if ierr := acc.Ingest(si, batch); ierr != nil {
					return st, ierr
				}
				st.Entries += uint64(len(batch))
				for _, e := range batch {
					if e.Stop > maxStop[si] {
						maxStop[si] = e.Stop
					}
				}
				if maxStop[si] > st.MaxStop {
					st.MaxStop = maxStop[si]
				}
				if b := acc.Buffered(); b > st.PeakBuffered {
					st.PeakBuffered = b
				}
			}
		}
		closedAt := time.Now()
		win, wstats, aerr := acc.Advance(ctx, lo, hi)
		if aerr != nil {
			return st, aerr
		}
		st.Windows++
		st.LateEntries = acc.LateEntries()
		if cfg.OnWindow != nil {
			if cerr := cfg.OnWindow(WindowResult{
				Index:    st.Windows - 1,
				W0:       lo,
				W1:       hi,
				Window:   win,
				Net:      acc.Emit(),
				Stats:    wstats,
				ClosedAt: closedAt,
			}); cerr != nil {
				return st, cerr
			}
		}
		lo = hi
	}
	return st, nil
}
