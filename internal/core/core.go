// Package core implements the paper's primary contribution: parallel
// synthesis of person collocation networks from simulation event logs
// (Section IV).
//
// The pipeline mirrors the paper's four steps:
//
//  1. Data loading — log entries are read from per-rank H5-lite files and
//     sub-set to the requested time slice (the paper's data.table step).
//  2. Collocation matrix creation — for every place occurring in the
//     slice, a sparse binary p×t matrix x is built in parallel, with a 1
//     wherever a person was present at the place during a time slot.
//  3. Load balancing — the per-place matrices are partitioned across
//     workers by nonzero count (LPT), the step the paper calls "crucial
//     to achieve even load balancing": collocated-person counts per place
//     range from a single individual to tens of thousands.
//  4. Adjacency creation and reduction — each worker computes A_l = x·xᵀ
//     for its places, accumulating into a private sparse triangular
//     matrix; worker matrices are then reduced into the final A = Σ A_l.
//
// Workers are goroutines standing in for the paper's SNOW/Rmpi worker
// processes. The result is provably independent of the worker count; the
// tests check bit-for-bit equality across worker counts and against a
// brute-force simulator trace.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/eventlog"
	"repro/internal/mpi"
	"repro/internal/sparse"
)

// BalanceMode selects how per-place matrices are assigned to workers in
// stage 4.
type BalanceMode int

const (
	// BalanceNNZ partitions matrices by nonzero count, largest first
	// (the paper's method).
	BalanceNNZ BalanceMode = iota
	// BalanceNone assigns places to workers round-robin in place-ID
	// order — the ablation baseline the paper warns about, under which
	// "some workers would sit idle while others would be working for
	// extended periods".
	BalanceNone
)

func (m BalanceMode) String() string {
	switch m {
	case BalanceNNZ:
		return "nnz"
	case BalanceNone:
		return "none"
	default:
		return fmt.Sprintf("balancemode(%d)", int(m))
	}
}

// Config configures a synthesis run.
type Config struct {
	// Workers is the parallel worker count; zero selects GOMAXPROCS.
	Workers int
	// Balance selects the stage-4 load-balancing strategy.
	Balance BalanceMode
	// MaxRankRetries bounds how many rank failures SynthesizeDistributed
	// absorbs before giving up: each detected failure re-stripes the dead
	// rank's log files over the survivors and retries. Zero selects the
	// transport size (every peer may die once); negative disables
	// failure tolerance entirely.
	MaxRankRetries int
}

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Stats reports what a synthesis run did, including the per-worker busy
// times that expose load imbalance.
type Stats struct {
	// Entries is the number of log entries that overlapped the slice.
	Entries int
	// Places is the number of distinct places in the slice.
	Places int
	// SliceHours is the width t of the collocation matrices.
	SliceHours int
	// TotalNNZ is the summed nonzero count of all collocation matrices.
	TotalNNZ int
	// WorkerCost is the pairwise-work weight assigned to each stage-4
	// worker by the balancer.
	WorkerCost []int
	// WorkerBusy is each stage-4 worker's gram-computation time.
	WorkerBusy []time.Duration
	// Load, Build, Gram, Reduce are per-stage wall times.
	Load, Build, Gram, Reduce time.Duration
}

// IdleFraction returns the mean fraction of stage-4 wall time workers
// spent idle: 1 - mean(busy)/max(busy). Zero when perfectly balanced.
func (s *Stats) IdleFraction() float64 {
	if len(s.WorkerBusy) == 0 {
		return 0
	}
	var max, sum time.Duration
	for _, b := range s.WorkerBusy {
		sum += b
		if b > max {
			max = b
		}
	}
	if max == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.WorkerBusy))
	return 1 - mean/float64(max)
}

// CostImbalance returns max(worker cost)/mean(worker cost); 1.0 is
// perfectly balanced.
func (s *Stats) CostImbalance() float64 {
	if len(s.WorkerCost) == 0 {
		return 1
	}
	max, sum := 0, 0
	for _, n := range s.WorkerCost {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(s.WorkerCost))
	return float64(max) / mean
}

// ModelSpeedup returns total worker cost divided by the maximum worker
// cost — the stage-4 speedup the partition would achieve on perfectly
// parallel hardware. Unlike wall-clock measurements it is independent of
// the host's core count.
func (s *Stats) ModelSpeedup() float64 {
	if len(s.WorkerCost) == 0 {
		return 1
	}
	max, sum := 0, 0
	for _, n := range s.WorkerCost {
		sum += n
		if n > max {
			max = n
		}
	}
	if max == 0 {
		return 1
	}
	return float64(sum) / float64(max)
}

// SynthesizeEntries builds the collocation network for the time slice
// [t0, t1) from in-memory log entries.
func SynthesizeEntries(entries []eventlog.Entry, t0, t1 uint32, cfg Config) (*sparse.Tri, *Stats, error) {
	if t1 <= t0 {
		return nil, nil, fmt.Errorf("core: empty time slice [%d,%d)", t0, t1)
	}
	stats := &Stats{SliceHours: int(t1 - t0)}

	// Stage 1b: sub-set to the slice and group by place.
	start := time.Now()
	byPlace := make(map[uint32][]eventlog.Entry)
	for _, e := range entries {
		if e.Start < t1 && e.Stop > t0 {
			byPlace[e.Place] = append(byPlace[e.Place], e)
			stats.Entries++
		}
	}
	placeIDs := make([]uint32, 0, len(byPlace))
	for p := range byPlace {
		placeIDs = append(placeIDs, p)
	}
	sort.Slice(placeIDs, func(i, j int) bool { return placeIDs[i] < placeIDs[j] })
	stats.Places = len(placeIDs)
	stats.Load = time.Since(start)

	// Stage 2: per-place collocation matrices, built in parallel.
	start = time.Now()
	mats := buildCollocationMatrices(byPlace, placeIDs, t0, t1, cfg.workers())
	for _, m := range mats {
		stats.TotalNNZ += m.nnz
	}
	stats.Build = time.Since(start)

	// Stage 3: partition matrices across workers.
	assignments := balance(mats, cfg.workers(), cfg.Balance)
	stats.WorkerCost = make([]int, len(assignments))
	for w, list := range assignments {
		for _, m := range list {
			stats.WorkerCost[w] += m.cost
		}
	}

	// Stage 4: parallel x·xᵀ. Each worker appends pair entries to a
	// private slice and coalesces it into a sorted triangular matrix —
	// "each worker finally sums the set of adjacency matrices it has
	// created".
	start = time.Now()
	tris := make([]*sparse.Tri, len(assignments))
	stats.WorkerBusy = make([]time.Duration, len(assignments))
	var wg sync.WaitGroup
	for w := range assignments {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := time.Now()
			var entries []sparse.Entry
			for _, m := range assignments[w] {
				entries = m.bm.GramAppend(entries)
			}
			tris[w] = sparse.TriFromEntries(entries)
			stats.WorkerBusy[w] = time.Since(t)
		}(w)
	}
	wg.Wait()
	stats.Gram = time.Since(start)

	// ... and reduction of the worker matrices to a single adjacency
	// matrix on the root.
	start = time.Now()
	final := sparse.MergeTris(tris...)
	stats.Reduce = time.Since(start)

	return final, stats, nil
}

// placeMatrix pairs a place's collocation matrix with its balancing
// weights: nnz (set bits, reported in Stats.TotalNNZ) and cost, the
// pairwise-work estimate the balancer uses. The paper balances on "the
// number of nonzero elements ... the amount of collocated persons at
// that location"; since the x·xᵀ work is quadratic in the collocated
// person count, the LPT weight is that count squared (times the bitset
// width).
type placeMatrix struct {
	place uint32
	bm    *sparse.BitMatrix
	nnz   int
	cost  int
}

// buildCollocationMatrices runs stage 2 with a bounded worker pool.
func buildCollocationMatrices(byPlace map[uint32][]eventlog.Entry, placeIDs []uint32, t0, t1 uint32, workers int) []placeMatrix {
	mats := make([]placeMatrix, len(placeIDs))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(placeIDs) {
					return
				}
				place := placeIDs[i]
				bm := sparse.NewBitMatrix(int(t1 - t0))
				for _, e := range byPlace[place] {
					lo, hi := e.Start, e.Stop
					if lo < t0 {
						lo = t0
					}
					if hi > t1 {
						hi = t1
					}
					bm.SetRange(e.Person, int(lo-t0), int(hi-t0))
				}
				mats[i] = placeMatrix{place: place, bm: bm, nnz: bm.NNZ(), cost: bm.GramCost()}
			}
		}()
	}
	wg.Wait()
	return mats
}

// balance implements stage 3. BalanceNNZ uses longest-processing-time
// greedy assignment on the pairwise-work weight; BalanceNone splits the
// place list into contiguous equal-count chunks, which is what a naive
// parallel map (R SNOW's clusterSplit, the paper's implied baseline)
// does.
func balance(mats []placeMatrix, workers int, mode BalanceMode) [][]placeMatrix {
	out := make([][]placeMatrix, workers)
	switch mode {
	case BalanceNone:
		chunk := (len(mats) + workers - 1) / workers
		for i, m := range mats {
			w := 0
			if chunk > 0 {
				w = i / chunk
			}
			if w >= workers {
				w = workers - 1
			}
			out[w] = append(out[w], m)
		}
	default: // BalanceNNZ
		order := make([]int, len(mats))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return mats[order[a]].cost > mats[order[b]].cost })
		loads := make([]int, workers)
		for _, i := range order {
			least := 0
			for w := 1; w < workers; w++ {
				if loads[w] < loads[least] {
					least = w
				}
			}
			out[least] = append(out[least], mats[i])
			loads[least] += mats[i].cost
		}
	}
	return out
}

// SynthesizeFile builds the collocation network for [t0, t1) from one
// log file.
func SynthesizeFile(path string, t0, t1 uint32, cfg Config) (*sparse.Tri, *Stats, error) {
	r, err := eventlog.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer r.Close()
	loadStart := time.Now()
	entries, err := r.TimeSlice(t0, t1)
	if err != nil {
		return nil, nil, err
	}
	load := time.Since(loadStart)
	tri, stats, err := SynthesizeEntries(entries, t0, t1, cfg)
	if stats != nil {
		stats.Load += load
	}
	return tri, stats, err
}

// SynthesizeDistributed runs the synthesis across the ranks of a
// Transport: with all ranks healthy, rank r processes the log files
// paths[r], paths[r+size], ... (the paper's batching of log files across
// cluster jobs), each rank reduces its files to one partial adjacency
// matrix, and rank 0 gathers and merges the partials into the complete
// network. Only rank 0 receives the result; other ranks return
// (nil, nil).
//
// Every rank must pass the identical paths slice; files a rank cannot
// reach locally are simply assigned to the ranks that can reach them by
// ordering paths accordingly.
//
// # Failure tolerance
//
// When a collective reports a dead peer (a typed *mpi.RankFailedError,
// as mpinet produces), the survivors re-stripe the complete paths slice
// over the remaining live ranks and retry, up to Config.MaxRankRetries
// times. The transport guarantees every survivor observes the same
// failed rank per aborted round, so all survivors recompute the same
// assignment without further communication and the merged result is
// bit-identical to a healthy run — provided the dead rank's files remain
// reachable by the survivors (e.g. on shared storage). Unattributable
// failures (the coordinator itself is gone) are returned as-is.
func SynthesizeDistributed(t mpi.Transport, paths []string, t0, t1 uint32, cfg Config) (*sparse.Tri, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("core: no log files given")
	}
	size := t.Size()
	retries := cfg.MaxRankRetries
	if retries == 0 {
		retries = size
	}
	dead := make([]bool, size)
	failures := 0
	for {
		// Live ranks, in rank order; identical on every survivor because
		// the transport reports every death to every survivor in the
		// same round order.
		alive := make([]int, 0, size)
		slot := -1
		for r := 0; r < size; r++ {
			if dead[r] {
				continue
			}
			if r == t.Rank() {
				slot = len(alive)
			}
			alive = append(alive, r)
		}
		if slot < 0 {
			// This rank was declared dead by the cluster (e.g. a false
			// positive of the failure detector); its contributions are
			// being discarded, so stop rather than burn cycles.
			return nil, fmt.Errorf("core: rank %d was declared failed by the cluster", t.Rank())
		}
		var mine []string
		for i := slot; i < len(paths); i += len(alive) {
			mine = append(mine, paths[i])
		}
		partial := sparse.NewAccum().Tri()
		if len(mine) > 0 {
			var err error
			partial, _, err = SynthesizeFiles(mine, t0, t1, cfg)
			if err != nil {
				return nil, err
			}
		}
		blob, err := partial.MarshalBinary()
		if err != nil {
			return nil, err
		}
		gathered, err := t.Gather(blob)
		if err != nil {
			rf, ok := mpi.AsRankFailed(err)
			if !ok || rf.Rank < 0 || rf.Rank >= size || retries < 0 {
				return nil, err
			}
			failures++
			if failures > retries {
				return nil, fmt.Errorf("core: giving up after %d rank failures: %w", failures, err)
			}
			dead[rf.Rank] = true
			continue // re-stripe over the survivors and retry
		}
		if t.Rank() != 0 {
			return nil, nil
		}
		tris := make([]*sparse.Tri, 0, len(alive))
		for _, r := range alive {
			if gathered[r] == nil {
				// Cannot happen under mpinet's ordering guarantees (a
				// completed round has contributions from every rank this
				// side believes alive); other survivors have already
				// returned, so retrying here could hang. Fail loudly.
				return nil, fmt.Errorf("core: live rank %d produced no partial", r)
			}
			var tr sparse.Tri
			if err := tr.UnmarshalBinary(gathered[r]); err != nil {
				return nil, fmt.Errorf("core: partial from rank %d: %w", r, err)
			}
			tris = append(tris, &tr)
		}
		return sparse.MergeTris(tris...), nil
	}
}

// SynthesizeSeries builds one collocation network per consecutive time
// slice of width sliceHours covering [t0, t1) — the paper's "arbitrary
// time granularity, e.g., hourly, daily, weekly or monthly aggregates".
// The final slice is clipped at t1. Summing the returned networks (for
// example with sparse.MergeTris) equals a single synthesis over the full
// window.
func SynthesizeSeries(paths []string, t0, t1, sliceHours uint32, cfg Config) ([]*sparse.Tri, error) {
	if sliceHours == 0 {
		return nil, fmt.Errorf("core: sliceHours must be positive")
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("core: empty window [%d,%d)", t0, t1)
	}
	var out []*sparse.Tri
	for lo := t0; lo < t1; lo += sliceHours {
		hi := lo + sliceHours
		if hi > t1 {
			hi = t1
		}
		tri, _, err := SynthesizeFiles(paths, lo, hi, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, tri)
	}
	return out, nil
}

// SynthesizeFiles processes each log file independently (the paper's
// per-file batching) and sums the per-file adjacency matrices into the
// complete network. Files are processed sequentially; parallelism lives
// inside each file's synthesis, matching the paper's batch structure.
// The returned Stats aggregates all files.
func SynthesizeFiles(paths []string, t0, t1 uint32, cfg Config) (*sparse.Tri, *Stats, error) {
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("core: no log files given")
	}
	var tris []*sparse.Tri
	agg := &Stats{SliceHours: int(t1 - t0)}
	for _, p := range paths {
		tri, stats, err := SynthesizeFile(p, t0, t1, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("core: %s: %w", p, err)
		}
		tris = append(tris, tri)
		agg.Entries += stats.Entries
		agg.Places += stats.Places
		agg.TotalNNZ += stats.TotalNNZ
		agg.Load += stats.Load
		agg.Build += stats.Build
		agg.Gram += stats.Gram
		agg.Reduce += stats.Reduce
		// Per-worker loads sum element-wise across files (the worker
		// count is fixed by cfg, so slots line up).
		if agg.WorkerCost == nil {
			agg.WorkerCost = make([]int, len(stats.WorkerCost))
			agg.WorkerBusy = make([]time.Duration, len(stats.WorkerBusy))
		}
		for w := range stats.WorkerCost {
			agg.WorkerCost[w] += stats.WorkerCost[w]
			agg.WorkerBusy[w] += stats.WorkerBusy[w]
		}
	}
	start := time.Now()
	total := sparse.MergeTris(tris...)
	agg.Reduce += time.Since(start)
	return total, agg, nil
}
