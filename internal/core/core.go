// Package core implements the paper's primary contribution: parallel
// synthesis of person collocation networks from simulation event logs
// (Section IV).
//
// The pipeline mirrors the paper's four steps:
//
//  1. Data loading — log entries are read from per-rank H5-lite files and
//     sub-set to the requested time slice (the paper's data.table step).
//  2. Collocation matrix creation — for every place occurring in the
//     slice, a sparse binary p×t matrix x is built in parallel, with a 1
//     wherever a person was present at the place during a time slot.
//  3. Load balancing — the per-place matrices are partitioned across
//     workers by nonzero count (LPT), the step the paper calls "crucial
//     to achieve even load balancing": collocated-person counts per place
//     range from a single individual to tens of thousands.
//  4. Adjacency creation and reduction — each worker computes A_l = x·xᵀ
//     for its places, accumulating into a private sparse triangular
//     matrix; worker matrices are then reduced into the final A = Σ A_l.
//
// Workers are goroutines standing in for the paper's SNOW/Rmpi worker
// processes. The result is provably independent of the worker count; the
// tests check bit-for-bit equality across worker counts and against a
// brute-force simulator trace.
package core

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eventlog"
	"repro/internal/mpi"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// Telemetry series for the synthesis stage (naming scheme
// stage_metric_unit; see internal/telemetry). The stage-wall histograms
// (synth_load_seconds, ...) are fed by the spans started in
// synthesizeEntriesInto; registering them here makes the full schema
// visible on /metrics before the first run.
var (
	mEntries      = telemetry.C("synth_entries_total")
	mPlaces       = telemetry.C("synth_places_total")
	mNNZ          = telemetry.C("synth_nnz_total")
	mWorkUnits    = telemetry.C("synth_work_units_total")
	mSplits       = telemetry.C("synth_splits_total")
	mShards       = telemetry.C("synth_shards_total")
	mSpillBytes   = telemetry.C("synth_spill_bytes_total")
	mRankRetries  = telemetry.C("synth_rank_retries_total")
	mRankRevived  = telemetry.C("synth_rank_revivals_total")
	mRecovered    = telemetry.C("fault_recovered_total")
	mUnitSeconds  = telemetry.H("synth_gram_unit_seconds")
	mGatherBytes  = telemetry.C("synth_gather_bytes_total")
	_             = telemetry.H("synth_load_seconds")
	_             = telemetry.H("synth_build_seconds")
	_             = telemetry.H("synth_gram_seconds")
	_             = telemetry.H("synth_reduce_seconds")
	mSpillSeconds = telemetry.H("synth_spill_seconds")
	mCommSeconds  = telemetry.H("synth_comm_seconds")
	mMergeSeconds = telemetry.H("synth_merge_seconds")
)

// BalanceMode selects how per-place matrices are assigned to workers in
// stage 4.
type BalanceMode int

const (
	// BalanceNNZ partitions matrices by nonzero count, largest first
	// (the paper's method).
	BalanceNNZ BalanceMode = iota
	// BalanceNone assigns places to workers round-robin in place-ID
	// order — the ablation baseline the paper warns about, under which
	// "some workers would sit idle while others would be working for
	// extended periods".
	BalanceNone
)

func (m BalanceMode) String() string {
	switch m {
	case BalanceNNZ:
		return "nnz"
	case BalanceNone:
		return "none"
	default:
		return fmt.Sprintf("balancemode(%d)", int(m))
	}
}

// Config configures a synthesis run.
type Config struct {
	// Workers is the parallel worker count; zero selects GOMAXPROCS.
	Workers int
	// Balance selects the stage-4 load-balancing strategy.
	Balance BalanceMode
	// MaxRankRetries bounds how many rank failures SynthesizeDistributed
	// absorbs before giving up: each detected failure re-stripes the dead
	// rank's log files over the survivors and retries. Zero selects the
	// transport size (every peer may die once); negative disables
	// failure tolerance entirely.
	MaxRankRetries int
	// MemBudgetBytes caps the approximate bytes of log-entry data the
	// file-based synthesis entry points materialize at once. Zero means
	// unlimited — the in-memory fast path. When the [t0, t1) slice of
	// the input files exceeds the budget, entries are spilled to
	// place-sharded temporary files, each shard is synthesized
	// independently, and the shard networks are merged; the output is
	// bit-identical to the in-memory path (places partition across
	// shards and weight summation commutes). Negative is invalid.
	MemBudgetBytes int64
	// SpillDir is the directory the budgeted path creates its shard
	// spill files under; empty selects the OS temp dir. The spill
	// directory is removed when synthesis finishes.
	SpillDir string
}

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Validate rejects nonsensical numeric configuration instead of
// silently coercing it: Workers and MemBudgetBytes must be
// non-negative. (A negative MaxRankRetries is meaningful — it disables
// failure tolerance — and zero values select defaults as documented.)
func (c *Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be non-negative, got %d", c.Workers)
	}
	if c.MemBudgetBytes < 0 {
		return fmt.Errorf("core: MemBudgetBytes must be non-negative, got %d", c.MemBudgetBytes)
	}
	return nil
}

// ctxErr returns nil while ctx is live and a wrapped cancellation error
// (matching errors.Is(err, context.Canceled/DeadlineExceeded)) once it
// is not.
func ctxErr(ctx context.Context, op string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %s canceled: %w", op, err)
	}
	return nil
}

// Stats reports what a synthesis run did, including the per-worker busy
// times that expose load imbalance.
type Stats struct {
	// Entries is the number of log entries that overlapped the slice.
	Entries int
	// Places is the number of distinct places in the slice.
	Places int
	// SliceHours is the width t of the collocation matrices.
	SliceHours int
	// TotalNNZ is the summed nonzero count of all collocation matrices.
	TotalNNZ int
	// WorkerCost is the pairwise-work weight assigned to each stage-4
	// worker by the balancer.
	WorkerCost []int
	// WorkerBusy is each stage-4 worker's gram-computation time.
	WorkerBusy []time.Duration
	// Splits is the number of mega-places whose pairwise loop the
	// balancer split into block×block tiles because a single place
	// exceeded the per-worker cost budget.
	Splits int
	// WorkUnits is the total number of stage-4 work units after
	// splitting (≥ Places when places were split).
	WorkUnits int
	// Load, Build, Gram, Reduce are per-stage wall times.
	Load, Build, Gram, Reduce time.Duration
	// Shards is the number of place shards the budgeted spill path
	// synthesized independently; zero when no Config.MemBudgetBytes was
	// set or the whole slice fit within it.
	Shards int
	// SpilledBytes is the total size of the shard spill files written
	// by the budgeted path.
	SpilledBytes uint64
	// Spill is the wall time spent counting, routing and re-reading
	// spilled entries (zero on the in-memory path).
	Spill time.Duration
}

// add accumulates the per-batch stats st into the aggregate s. Worker
// slices sum element-wise; the worker count is fixed by Config, so the
// slots line up across batches.
func (s *Stats) add(st *Stats) {
	s.Entries += st.Entries
	s.Places += st.Places
	s.TotalNNZ += st.TotalNNZ
	s.Splits += st.Splits
	s.WorkUnits += st.WorkUnits
	s.Load += st.Load
	s.Build += st.Build
	s.Gram += st.Gram
	s.Reduce += st.Reduce
	if s.WorkerCost == nil {
		s.WorkerCost = make([]int, len(st.WorkerCost))
		s.WorkerBusy = make([]time.Duration, len(st.WorkerBusy))
	}
	for w := range st.WorkerCost {
		s.WorkerCost[w] += st.WorkerCost[w]
		s.WorkerBusy[w] += st.WorkerBusy[w]
	}
}

// IdleFraction returns the mean fraction of stage-4 wall time workers
// spent idle: 1 - mean(busy)/max(busy). Zero when perfectly balanced.
//
// Degenerate runs are well-defined rather than NaN: a run with no
// workers, no work units, or a single worker (mean == max by
// construction) reports 0 — there is no imbalance to measure.
func (s *Stats) IdleFraction() float64 {
	if len(s.WorkerBusy) == 0 {
		return 0
	}
	var max, sum time.Duration
	for _, b := range s.WorkerBusy {
		sum += b
		if b > max {
			max = b
		}
	}
	if max == 0 {
		// Zero work units: no worker was ever busy, so no division —
		// 0/0 here must not surface as NaN.
		return 0
	}
	mean := float64(sum) / float64(len(s.WorkerBusy))
	return 1 - mean/float64(max)
}

// CostImbalance returns max(worker cost)/mean(worker cost); 1.0 is
// perfectly balanced.
//
// Degenerate runs are well-defined rather than NaN or a misleading
// "perfectly balanced": a run with no workers or zero total cost (no
// work units) reports 0, meaning "nothing to measure". Any run with
// actual work reports ≥ 1.
func (s *Stats) CostImbalance() float64 {
	if len(s.WorkerCost) == 0 {
		return 0
	}
	max, sum := 0, 0
	for _, n := range s.WorkerCost {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.WorkerCost))
	return float64(max) / mean
}

// ModelSpeedup returns total worker cost divided by the maximum worker
// cost — the stage-4 speedup the partition would achieve on perfectly
// parallel hardware. Unlike wall-clock measurements it is independent of
// the host's core count.
func (s *Stats) ModelSpeedup() float64 {
	if len(s.WorkerCost) == 0 {
		return 1
	}
	max, sum := 0, 0
	for _, n := range s.WorkerCost {
		sum += n
		if n > max {
			max = n
		}
	}
	if max == 0 {
		return 1
	}
	return float64(sum) / float64(max)
}

// StageReports converts the per-stage wall clocks into telemetry stage
// reports, in pipeline order. Every stage is named even at zero wall so
// run reports always show the full pipeline shape.
func (s *Stats) StageReports() []telemetry.StageReport {
	if s == nil {
		return nil
	}
	return []telemetry.StageReport{
		{Name: "synth/load", WallNs: s.Load.Nanoseconds(), Count: int64(s.Entries)},
		{Name: "synth/build", WallNs: s.Build.Nanoseconds(), Count: int64(s.TotalNNZ)},
		{Name: "synth/gram", WallNs: s.Gram.Nanoseconds(), Count: int64(s.WorkUnits)},
		{Name: "synth/reduce", WallNs: s.Reduce.Nanoseconds()},
		{Name: "synth/spill", WallNs: s.Spill.Nanoseconds(), Count: int64(s.Shards), Bytes: int64(s.SpilledBytes)},
	}
}

// RankReport rolls one rank's synthesis up into a telemetry rank
// report: busy is the sum of the stage walls, comm the time inside
// collectives, and idle the remainder of the rank's end-to-end wall
// (clamped at zero — stage parallelism can make busy exceed wall).
// A nil receiver (a rank that processed no files) reports zero work.
func (s *Stats) RankReport(rank int, wall, comm time.Duration) telemetry.RankReport {
	rep := telemetry.RankReport{
		Rank:   rank,
		WallNs: wall.Nanoseconds(),
		CommNs: comm.Nanoseconds(),
	}
	var busy time.Duration
	if s != nil {
		busy = s.Load + s.Build + s.Gram + s.Reduce + s.Spill
		rep.Entries = int64(s.Entries)
		rep.Places = int64(s.Places)
		rep.WorkUnits = int64(s.WorkUnits)
		rep.Splits = int64(s.Splits)
	}
	rep.BusyNs = busy.Nanoseconds()
	if idle := wall - busy - comm; idle > 0 {
		rep.IdleNs = idle.Nanoseconds()
	}
	return rep
}

// SynthesizeEntries builds the collocation network for the time slice
// [t0, t1) from in-memory log entries. Cancelling ctx aborts the
// synthesis within one stage-4 work unit; the returned error then wraps
// context.Canceled (or DeadlineExceeded).
func SynthesizeEntries(ctx context.Context, entries []eventlog.Entry, t0, t1 uint32, cfg Config) (*sparse.Tri, *Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	all, stats, err := synthesizeEntriesInto(ctx, sparse.GetEntries(), entries, t0, t1, cfg)
	if err != nil {
		sparse.PutEntries(all)
		return nil, nil, err
	}
	_, spReduce := telemetry.StartSpan(ctx, "synth/reduce")
	final := sparse.TriFromEntries(all)
	sparse.PutEntries(all)
	stats.Reduce += spReduce.End()
	return final, stats, nil
}

// synthesizeEntriesInto runs stages 1b–4 of the synthesis for one batch
// of log entries, appending the resulting raw pair entries to dst
// instead of coalescing them. Callers coalesce with TriFromEntries —
// once per batch (SynthesizeEntries) or once across many batches
// (SynthesizeFiles), which is what makes the cross-file reduction a
// single radix pass instead of a k-way merge of per-file matrices.
func synthesizeEntriesInto(ctx context.Context, dst []sparse.Entry, entries []eventlog.Entry, t0, t1 uint32, cfg Config) ([]sparse.Entry, *Stats, error) {
	if t1 <= t0 {
		return dst, nil, fmt.Errorf("core: empty time slice [%d,%d)", t0, t1)
	}
	if err := ctxErr(ctx, "synthesis"); err != nil {
		return dst, nil, err
	}
	stats := &Stats{SliceHours: int(t1 - t0)}

	// Stage 1b: sub-set to the slice and group by place. A counting pass
	// sizes one shared backing array, so the per-place buckets are
	// capacity-exact sub-slices of a single allocation instead of
	// thousands of independently grown ones.
	//
	// Each stage is measured through a telemetry span; Stats reads the
	// span walls, so the per-run Stats and the registry's cumulative
	// synth_*_seconds histograms are views over the same measurement.
	_, spLoad := telemetry.StartSpan(ctx, "synth/load")
	idx := make(map[uint32]int32) // place ID -> dense bucket index
	var placeIDs []uint32
	var counts []int
	// entryIdx records each kept entry's bucket, so the fill pass below
	// needs no map lookups at all.
	entryIdx := make([]int32, 0, len(entries))
	for _, e := range entries {
		if e.Start >= t1 || e.Stop <= t0 {
			entryIdx = append(entryIdx, -1)
			continue
		}
		stats.Entries++
		d, ok := idx[e.Place]
		if !ok {
			d = int32(len(counts))
			idx[e.Place] = d
			counts = append(counts, 0)
			placeIDs = append(placeIDs, e.Place)
		}
		counts[d]++
		entryIdx = append(entryIdx, d)
	}
	perm := make([]int32, len(placeIDs))
	for k := range perm {
		perm[k] = int32(k)
	}
	sort.Slice(perm, func(a, b int) bool { return placeIDs[perm[a]] < placeIDs[perm[b]] })
	backing := make([]eventlog.Entry, stats.Entries)
	buckets := make([][]eventlog.Entry, len(placeIDs)) // dense-index order
	sortedIDs := make([]uint32, len(placeIDs))
	off := 0
	for k, d := range perm {
		sortedIDs[k] = placeIDs[d]
		buckets[d] = backing[off : off : off+counts[d]]
		off += counts[d]
	}
	for k, e := range entries {
		if d := entryIdx[k]; d >= 0 {
			buckets[d] = append(buckets[d], e)
		}
	}
	byPlace := make(map[uint32][]eventlog.Entry, len(placeIDs))
	for d, p := range placeIDs {
		byPlace[p] = buckets[d]
	}
	placeIDs = sortedIDs
	stats.Places = len(placeIDs)
	spLoad.AddCount(int64(stats.Entries))
	stats.Load = spLoad.End()
	mEntries.Add(int64(stats.Entries))
	mPlaces.Add(int64(stats.Places))

	// Stage 2: per-place collocation matrices, built in parallel.
	_, spBuild := telemetry.StartSpan(ctx, "synth/build")
	mats, err := buildCollocationMatrices(ctx, byPlace, placeIDs, t0, t1, cfg.workers())
	if err != nil {
		spBuild.End()
		return dst, nil, err
	}
	for _, m := range mats {
		stats.TotalNNZ += m.nnz
	}
	spBuild.AddCount(int64(stats.TotalNNZ))
	stats.Build = spBuild.End()
	mNNZ.Add(int64(stats.TotalNNZ))

	// Stage 3: partition work units across workers. Places whose
	// clique-compressed cost exceeds the per-worker budget are split
	// into block×block tiles of their pairwise loop so one mega-place
	// cannot serialize stage 4.
	assignments, splits := balance(mats, cfg.workers(), cfg.Balance)
	stats.Splits = splits
	stats.WorkerCost = make([]int, len(assignments))
	for w, list := range assignments {
		stats.WorkUnits += len(list)
		for _, u := range list {
			stats.WorkerCost[w] += u.cost
		}
	}
	mWorkUnits.Add(int64(stats.WorkUnits))
	mSplits.Add(int64(splits))

	// Stage 4: parallel x·xᵀ through the clique-compressed tile kernel.
	// Each worker appends raw pair entries to a pooled slice — "each
	// worker finally sums the set of adjacency matrices it has created".
	// Cancellation is observed between work units: every worker re-reads
	// a shared flag before starting a tile, so a canceled synthesis stops
	// within one unit of compute.
	_, spGram := telemetry.StartSpan(ctx, "synth/gram")
	bufs := make([][]sparse.Entry, len(assignments))
	stats.WorkerBusy = make([]time.Duration, len(assignments))
	var canceled atomic.Bool
	var wg sync.WaitGroup
	for w := range assignments {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := time.Now()
			buf := sparse.GetEntries()
			for _, u := range assignments[w] {
				if canceled.Load() {
					break
				}
				if ctx.Err() != nil {
					canceled.Store(true)
					break
				}
				sw := telemetry.Clock()
				buf = u.bm.GramTileAppend(buf, u.p0, u.p1, u.q0, u.q1)
				sw.Observe(mUnitSeconds)
			}
			bufs[w] = buf
			stats.WorkerBusy[w] = time.Since(t)
		}(w)
	}
	wg.Wait()
	// The per-place matrices are dead now; recycle them (and their row
	// bitsets) for the next file or slice.
	for _, m := range mats {
		m.bm.Recycle()
	}
	spGram.AddCount(int64(stats.WorkUnits))
	stats.Gram = spGram.End()
	if canceled.Load() {
		for _, b := range bufs {
			sparse.PutEntries(b)
		}
		return dst, nil, ctxErr(ctx, "synthesis")
	}

	// Reduce (first half): concatenate the workers' entries onto dst.
	// The caller's single TriFromEntries coalesce replaces the
	// per-worker sort plus k-way merge — same total sort work (radix
	// passes are linear in the entry count) but no intermediate matrices
	// — and stays bit-identical for any worker count or balance mode
	// because the tile cover reproduces the untiled entry multiset and
	// weight summation is commutative.
	_, spReduce := telemetry.StartSpan(ctx, "synth/reduce")
	for _, b := range bufs {
		dst = append(dst, b...)
		sparse.PutEntries(b)
	}
	stats.Reduce = spReduce.End()

	return dst, stats, nil
}

// placeMatrix pairs a place's collocation matrix with its balancing
// weights: nnz (set bits, reported in Stats.TotalNNZ) and cost, the
// pairwise-work estimate the balancer uses. The paper balances on "the
// number of nonzero elements ... the amount of collocated persons at
// that location"; since the x·xᵀ work is quadratic in the collocated
// person count, the LPT weight is that count squared (times the bitset
// width).
type placeMatrix struct {
	place uint32
	bm    *sparse.BitMatrix
	nnz   int
	cost  int
}

// buildCollocationMatrices runs stage 2 with a bounded worker pool.
// Cancellation is observed between places: on a dead ctx the pool stops
// handing out work, the matrices built so far are recycled, and a
// wrapped cancellation error is returned.
func buildCollocationMatrices(ctx context.Context, byPlace map[uint32][]eventlog.Entry, placeIDs []uint32, t0, t1 uint32, workers int) ([]placeMatrix, error) {
	mats := make([]placeMatrix, len(placeIDs))
	var canceled atomic.Bool
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if canceled.Load() {
					return
				}
				if ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(placeIDs) {
					return
				}
				place := placeIDs[i]
				bm := sparse.GetBitMatrix(int(t1 - t0))
				for _, e := range byPlace[place] {
					lo, hi := e.Start, e.Stop
					if lo < t0 {
						lo = t0
					}
					if hi > t1 {
						hi = t1
					}
					bm.SetRange(e.Person, int(lo-t0), int(hi-t0))
				}
				// GramCost triggers the clique compression here, inside
				// the per-place build worker, so stage 4 can share the
				// cached compression across goroutines safely.
				mats[i] = placeMatrix{place: place, bm: bm, nnz: bm.NNZ(), cost: bm.GramCost()}
			}
		}()
	}
	wg.Wait()
	if canceled.Load() {
		for _, m := range mats {
			if m.bm != nil {
				m.bm.Recycle()
			}
		}
		return nil, ctxErr(ctx, "collocation build")
	}
	return mats, nil
}

// workUnit is one stage-4 task: a block×block tile [p0,p1)×[q0,q1) of a
// place's pairwise loop in the clique-compressed π row order. A whole
// (unsplit) place is the full tile (0, rows, 0, rows). Because any
// diagonal/disjoint tiling of the upper triangle reproduces the untiled
// entry multiset exactly (see sparse.GramTileAppend), work units can be
// scattered across workers without changing the synthesized network.
type workUnit struct {
	bm             *sparse.BitMatrix
	p0, p1, q0, q1 int
	cost           int
}

func wholePlace(m placeMatrix) workUnit {
	rows := m.bm.Rows()
	return workUnit{bm: m.bm, p0: 0, p1: rows, q0: 0, q1: rows, cost: m.cost}
}

// splitBlocks picks the number of row blocks for a mega-place so its
// nb·(nb+1)/2 tiles each land near a quarter of the per-worker budget —
// small enough for LPT to even out, large enough to bound scheduling
// overhead.
func splitBlocks(cost, budget, rows int) int {
	nb := 2
	for nb*(nb+1)/2 < 4*cost/budget && nb < 16 {
		nb++
	}
	if nb > rows {
		nb = rows
	}
	return nb
}

// balance implements stage 3. BalanceNNZ uses longest-processing-time
// greedy assignment on the clique-compressed work weight, first
// splitting any place whose cost exceeds the per-worker budget
// (totalCost/workers) into block×block tiles so a single mega-place no
// longer serializes stage 4. BalanceNone assigns whole places in
// contiguous equal-count chunks with no splitting, which is what a naive
// parallel map (R SNOW's clusterSplit, the paper's implied baseline)
// does. The second return is the number of places that were split.
func balance(mats []placeMatrix, workers int, mode BalanceMode) ([][]workUnit, int) {
	out := make([][]workUnit, workers)
	if mode == BalanceNone {
		chunk := (len(mats) + workers - 1) / workers
		for i, m := range mats {
			w := 0
			if chunk > 0 {
				w = i / chunk
			}
			if w >= workers {
				w = workers - 1
			}
			out[w] = append(out[w], wholePlace(m))
		}
		return out, 0
	}
	// BalanceNNZ: build the work-unit list, splitting over-budget places.
	total := 0
	for _, m := range mats {
		total += m.cost
	}
	budget := 0
	if workers > 1 {
		budget = total / workers
	}
	units := make([]workUnit, 0, len(mats))
	splits := 0
	for _, m := range mats {
		rows := m.bm.Rows()
		if budget <= 0 || m.cost <= budget || rows < 2 {
			units = append(units, wholePlace(m))
			continue
		}
		splits++
		nb := splitBlocks(m.cost, budget, rows)
		bounds := make([]int, nb+1)
		for b := 0; b <= nb; b++ {
			bounds[b] = rows * b / nb
		}
		for bi := 0; bi < nb; bi++ {
			for bj := bi; bj < nb; bj++ {
				u := workUnit{
					bm: m.bm,
					p0: bounds[bi], p1: bounds[bi+1],
					q0: bounds[bj], q1: bounds[bj+1],
				}
				u.cost = m.bm.GramTileCost(u.p0, u.p1, u.q0, u.q1)
				units = append(units, u)
			}
		}
	}
	// LPT greedy assignment over the (possibly split) units.
	order := make([]int, len(units))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return units[order[a]].cost > units[order[b]].cost })
	loads := make([]int, workers)
	for _, i := range order {
		least := 0
		for w := 1; w < workers; w++ {
			if loads[w] < loads[least] {
				least = w
			}
		}
		out[least] = append(out[least], units[i])
		loads[least] += units[i].cost
	}
	return out, splits
}

// SynthesizeFile builds the collocation network for [t0, t1) from one
// log file. It honors Config.MemBudgetBytes exactly as SynthesizeFiles
// does.
func SynthesizeFile(ctx context.Context, path string, t0, t1 uint32, cfg Config) (*sparse.Tri, *Stats, error) {
	return SynthesizeFiles(ctx, []string{path}, t0, t1, cfg)
}

// SynthesizeDistributed runs the synthesis across the ranks of a
// Transport: with all ranks healthy, rank r processes the log files
// paths[r], paths[r+size], ... (the paper's batching of log files across
// cluster jobs), each rank reduces its files to one partial adjacency
// matrix, and rank 0 gathers and merges the partials into the complete
// network. Only rank 0 receives the result; other ranks return
// (nil, nil).
//
// Every rank must pass the identical paths slice; files a rank cannot
// reach locally are simply assigned to the ranks that can reach them by
// ordering paths accordingly.
//
// # Failure tolerance
//
// When a collective reports a dead peer (a typed *mpi.RankFailedError,
// as mpinet produces), the survivors re-stripe the complete paths slice
// over the remaining live ranks and retry, up to Config.MaxRankRetries
// times. The transport guarantees every survivor observes the same
// failed rank per aborted round, so all survivors recompute the same
// assignment without further communication and the merged result is
// bit-identical to a healthy run — provided the dead rank's files remain
// reachable by the survivors (e.g. on shared storage). Unattributable
// failures (the coordinator itself is gone) are returned as-is.
//
// Membership can also grow back: when a supervised restart reclaims a
// dead slot, survivors observe a typed *mpi.RankRevivedError and put the
// rank back into the stripe (without consuming the retry budget), and
// the rejoined rank itself seeds its dead set from the transport's
// mpi.DeadRankser view so everyone stripes identically. Degradation via
// re-striping and recovery via rejoin therefore produce the same final
// network, differing only in wall clock.
// Cancelling ctx aborts the local synthesis within one work unit and
// the gather collective at the transport's cancellation granularity;
// the resulting error wraps context.Canceled and is NOT treated as a
// rank failure (no re-striping).
func SynthesizeDistributed(ctx context.Context, t mpi.Transport, paths []string, t0, t1 uint32, cfg Config) (*sparse.Tri, error) {
	tri, _, err := SynthesizeDistributedReport(ctx, t, paths, t0, t1, cfg)
	return tri, err
}

// SynthesizeDistributedReport is SynthesizeDistributed plus
// observability: after the result gather succeeds, every live rank
// contributes a telemetry.RankReport (wall, busy, comm, idle, entries,
// faults) through one extra best-effort gather, and rank 0 assembles
// them — together with its own stage walls and the process-local
// registry snapshot — into a run report. The report gather is
// best-effort: a failure there never fails a synthesis whose result was
// already gathered, it only yields a nil report. Non-zero ranks return
// (nil, nil, nil).
func SynthesizeDistributedReport(ctx context.Context, t mpi.Transport, paths []string, t0, t1 uint32, cfg Config) (*sparse.Tri, *telemetry.Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("core: no log files given")
	}
	rankStart := time.Now()
	var comm time.Duration
	size := t.Size()
	retries := cfg.MaxRankRetries
	if retries == 0 {
		retries = size
	}
	// Rank 0 roots the distributed trace and advertises its span context
	// on the transport, which piggybacks it on every collective reply;
	// worker ranks stamp their local span trees with the learned context
	// and ship them home inside their rank reports, so the whole cluster
	// round renders as one tree under this span.
	var rootSpan *telemetry.Span
	if t.Rank() == 0 {
		ctx, rootSpan = telemetry.StartSpan(ctx, "synth/distributed")
		if tc, ok := t.(mpi.TraceCarrier); ok {
			tc.SetTraceContext(rootSpan.TraceID(), rootSpan.SpanID())
		}
	}
	dead := make([]bool, size)
	// A rank that rejoined a running cluster (supervised restart) learns
	// the already-dead membership from its join handshake; seeding from
	// it makes this rank's first stripe agree with the incumbents'.
	if dr, ok := t.(mpi.DeadRankser); ok {
		for _, r := range dr.InitialDead() {
			if r >= 0 && r < size {
				dead[r] = true
			}
		}
	}
	failures := 0
	for {
		if err := ctxErr(ctx, "distributed synthesis"); err != nil {
			return nil, nil, err
		}
		// Live ranks, in rank order; identical on every survivor because
		// the transport reports every death to every survivor in the
		// same round order.
		alive := make([]int, 0, size)
		slot := -1
		for r := 0; r < size; r++ {
			if dead[r] {
				continue
			}
			if r == t.Rank() {
				slot = len(alive)
			}
			alive = append(alive, r)
		}
		if slot < 0 {
			// This rank was declared dead by the cluster (e.g. a false
			// positive of the failure detector); its contributions are
			// being discarded, so stop rather than burn cycles.
			return nil, nil, fmt.Errorf("core: rank %d was declared failed by the cluster", t.Rank())
		}
		var mine []string
		for i := slot; i < len(paths); i += len(alive) {
			mine = append(mine, paths[i])
		}
		// One span per attempt. On rank 0 it nests under the root span
		// through ctx; on workers it becomes a local root whose report is
		// stitched into the cluster trace by the coordinator.
		attemptCtx, attemptSpan := telemetry.StartSpan(ctx, "synth/rank")
		attemptSpan.SetRank(t.Rank())
		partial := sparse.NewAccum().Tri()
		var stats *Stats
		if len(mine) > 0 {
			var err error
			partial, stats, err = SynthesizeFiles(attemptCtx, mine, t0, t1, cfg)
			if err != nil {
				attemptSpan.End()
				return nil, nil, err
			}
		}
		blob, err := partial.MarshalBinary()
		if err != nil {
			attemptSpan.End()
			return nil, nil, err
		}
		mGatherBytes.Add(int64(len(blob)))
		attemptSpan.AddBytes(int64(len(blob)))
		gStart := time.Now()
		gathered, err := t.Gather(attemptCtx, blob)
		gWall := time.Since(gStart)
		comm += gWall
		mCommSeconds.Observe(gWall)
		attemptSpan.End()
		if err != nil {
			if rr, ok := mpi.AsRankRevived(err); ok && rr.Rank > 0 && rr.Rank < size {
				// A supervised restart reclaimed a dead slot mid-round:
				// put the rank back into the stripe and retry. Revivals
				// never consume the retry budget — they shrink the
				// degradation, and each one was preceded by a death that
				// already paid for it.
				dead[rr.Rank] = false
				mRankRevived.Inc()
				continue
			}
			rf, ok := mpi.AsRankFailed(err)
			if !ok || rf.Rank < 0 || rf.Rank >= size || retries < 0 {
				return nil, nil, err
			}
			failures++
			if failures > retries {
				return nil, nil, fmt.Errorf("core: giving up after %d rank failures: %w", failures, err)
			}
			dead[rf.Rank] = true
			mRankRetries.Inc()
			continue // re-stripe over the survivors and retry
		}
		if failures > 0 {
			// The round completed despite earlier rank deaths: every
			// absorbed failure counts as recovered.
			mRecovered.Add(int64(failures))
		}

		// Result round done — roll this rank's run up and gather the rank
		// reports. Every live rank reaches this point in the same round,
		// so the extra collective stays aligned; its failure is swallowed
		// (the synthesis result is already safe).
		local := stats.RankReport(t.Rank(), time.Since(rankStart), comm)
		local.FaultsInjected = telemetry.C("fault_injected_total").Value()
		local.FaultsRecovered = telemetry.C("fault_recovered_total").Value()
		if t.Rank() != 0 && attemptSpan.SpanID() != 0 {
			// The result gather's reply delivered the coordinator's trace
			// context; stamp it onto the local span tree and ship the tree
			// with the rank report. Rank 0's tree is already rooted locally.
			rep := attemptSpan.Report()
			rep.Rank = t.Rank()
			if tc, ok := t.(mpi.TraceCarrier); ok {
				tid, sid := tc.TraceContext()
				rep.TraceID = telemetry.FormatID(tid)
				rep.ParentID = telemetry.FormatID(sid)
				local.TraceID = rep.TraceID
			}
			local.Spans = []telemetry.SpanReport{rep}
		}
		var repBlob []byte
		if b, err := telemetry.EncodeRank(local); err == nil {
			repBlob = b
		}
		repGathered, repErr := t.Gather(ctx, repBlob)

		if t.Rank() != 0 {
			return nil, nil, nil
		}
		tris := make([]*sparse.Tri, 0, len(alive))
		for _, r := range alive {
			if gathered[r] == nil {
				// Cannot happen under mpinet's ordering guarantees (a
				// completed round has contributions from every rank this
				// side believes alive); other survivors have already
				// returned, so retrying here could hang. Fail loudly.
				return nil, nil, fmt.Errorf("core: live rank %d produced no partial", r)
			}
			var tr sparse.Tri
			if err := tr.UnmarshalBinary(gathered[r]); err != nil {
				return nil, nil, fmt.Errorf("core: partial from rank %d: %w", r, err)
			}
			tris = append(tris, &tr)
		}
		mStart := time.Now()
		total := sparse.MergeTris(tris...)
		mMergeSeconds.Observe(time.Since(mStart))

		// End the root span before snapshotting so the coordinator's tree
		// is retained and the worker trees can graft under it.
		rootSpan.End()
		var report *telemetry.Report
		if repErr == nil {
			report = telemetry.Default.Report("synthesize-distributed")
			report.Stages = stats.StageReports()
			report.TraceID = telemetry.FormatID(rootSpan.TraceID())
			var remote []telemetry.SpanReport
			for _, r := range alive {
				rr, err := telemetry.DecodeRank(repGathered[r])
				if err != nil {
					continue // a rank's report is best-effort
				}
				remote = append(remote, rr.Spans...)
				rr.Spans = nil // the trees live in report.Spans, stitched
				report.Ranks = append(report.Ranks, rr)
			}
			report.AttachRemoteSpans(telemetry.FormatID(rootSpan.SpanID()), remote)
		}
		return total, report, nil
	}
}

// SynthesizeSeries builds one collocation network per consecutive time
// slice of width sliceHours covering [t0, t1) — the paper's "arbitrary
// time granularity, e.g., hourly, daily, weekly or monthly aggregates".
// The final slice is clipped at t1. Summing the returned networks (for
// example with sparse.MergeTris) equals a single synthesis over the full
// window.
//
// The series is a client of the streaming engine (see stream.go): each
// log file is read from disk exactly once into accumulator segments,
// and every slice is one window Advance, with buffered entries evicted
// as slices close. Windows decay to nothing between slices (decay 0) —
// each returned network covers its slice alone.
//
// Cancellation is observed between slices, between batches and within a
// slice's synthesis at work-unit granularity.
func SynthesizeSeries(ctx context.Context, paths []string, t0, t1, sliceHours uint32, cfg Config) ([]*sparse.Tri, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sliceHours == 0 {
		return nil, fmt.Errorf("core: sliceHours must be positive")
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("core: empty window [%d,%d)", t0, t1)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("core: no log files given")
	}
	srcs := make([]eventlog.EntrySource, len(paths))
	for i, p := range paths {
		src, err := eventlog.OpenSource(p, t0, t1)
		if err != nil {
			for _, s := range srcs[:i] {
				s.Close()
			}
			return nil, fmt.Errorf("core: %s: %w", p, err)
		}
		srcs[i] = src
	}
	var out []*sparse.Tri
	_, err := Stream(ctx, srcs, StreamConfig{
		T0:          t0,
		T1:          t1,
		WindowHours: sliceHours,
		// Windows are independent slices, and closed files carry no
		// ordering guarantee, so decay to nothing between windows and
		// close windows only at EOF (exact for any entry order).
		DecayNum:     0,
		DecayDen:     1,
		HorizonHours: HorizonEOF,
		Synth:        cfg,
		OnWindow: func(w WindowResult) error {
			out = append(out, w.Window)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SynthesizeFiles processes each log file independently (the paper's
// per-file batching) and sums the per-file adjacency matrices into the
// complete network. Files are processed sequentially; parallelism lives
// inside each file's synthesis, matching the paper's batch structure.
// The returned Stats aggregates all files.
//
// When Config.MemBudgetBytes is set and the [t0, t1) slice exceeds it,
// entries are spilled to place-sharded temporary files and each shard
// is synthesized independently under the budget; see the package
// DESIGN notes. The output is bit-identical either way. Cancelling ctx
// aborts within one stage-4 work unit (in-memory) or one shard/batch
// (spill) with an error wrapping context.Canceled.
func SynthesizeFiles(ctx context.Context, paths []string, t0, t1 uint32, cfg Config) (*sparse.Tri, *Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("core: no log files given")
	}
	if t1 <= t0 {
		return nil, nil, fmt.Errorf("core: empty time slice [%d,%d)", t0, t1)
	}
	if cfg.MemBudgetBytes > 0 {
		return synthesizeFilesBudgeted(ctx, paths, t0, t1, cfg)
	}
	return synthesizeFilesInMemory(ctx, paths, t0, t1, cfg)
}

// synthesizeFilesInMemory is the fast path: a one-window stream. Each
// file's slice is streamed batch-wise into a WindowAccumulator segment
// and a single Advance over [t0, t1) runs the synthesis — per file,
// with one radix coalesce across all files, exactly the shape the
// one-shot batch loop had before it was extracted into the accumulator.
func synthesizeFilesInMemory(ctx context.Context, paths []string, t0, t1 uint32, cfg Config) (*sparse.Tri, *Stats, error) {
	acc, err := NewWindowAccumulator(len(paths), 1, 1, cfg)
	if err != nil {
		return nil, nil, err
	}
	var load time.Duration
	for i, p := range paths {
		err := func() error {
			src, err := eventlog.OpenSource(p, t0, t1)
			if err != nil {
				return err
			}
			defer src.Close()
			loadStart := time.Now()
			for {
				batch, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
				if err := acc.Ingest(i, batch); err != nil {
					return err
				}
			}
			load += time.Since(loadStart)
			return nil
		}()
		if err != nil {
			return nil, nil, fmt.Errorf("core: %s: %w", p, err)
		}
	}
	total, stats, err := acc.Advance(ctx, t0, t1)
	if err != nil {
		return nil, nil, err
	}
	stats.Load += load
	return total, stats, nil
}

// spillCacheEntries sizes the spill writers' in-memory caches. Small:
// with S shards open at once during routing, cache memory is
// S * spillCacheEntries * 20 bytes.
const spillCacheEntries = 4096

// shardTargetBytes derives the per-shard entry-byte target from the
// budget. Materialized shard entries are only part of the working set —
// collocation bitsets, clique compressions and raw pair entries ride on
// top — so a shard gets a quarter of the budget, keeping the whole
// synthesis comfortably inside it.
func shardTargetBytes(budget int64) int64 {
	t := budget / 4
	if t < eventlog.BaseEntrySize {
		t = eventlog.BaseEntrySize
	}
	return t
}

// planShards groups places into shards whose summed entry bytes stay
// near target, first-fit-decreasing: places are sorted by entry count
// (descending, place ID ascending on ties — deterministic) and each is
// placed in the first shard with room, or a new shard. A single place
// larger than the target gets its own shard; it will materialize over
// target but there is no smaller unit of work (a place's matrix is
// indivisible). Returns the place→shard map and the shard count.
func planShards(counts map[uint32]int64, target int64) (map[uint32]int, int) {
	places := make([]uint32, 0, len(counts))
	for p := range counts {
		places = append(places, p)
	}
	sort.Slice(places, func(a, b int) bool {
		ca, cb := counts[places[a]], counts[places[b]]
		if ca != cb {
			return ca > cb
		}
		return places[a] < places[b]
	})
	shardOf := make(map[uint32]int, len(places))
	var loads []int64
	for _, p := range places {
		need := counts[p] * eventlog.BaseEntrySize
		s := -1
		for i, l := range loads {
			if l+need <= target {
				s = i
				break
			}
		}
		if s < 0 {
			s = len(loads)
			loads = append(loads, 0)
		}
		loads[s] += need
		shardOf[p] = s
	}
	return shardOf, len(loads)
}

// synthesizeFilesBudgeted is the bounded-memory path. Three passes:
//
//  1. Count — stream every file's slice once, tallying entries per
//     place (O(places) memory).
//  2. Route — if the whole slice fits the budget, fall back to the
//     in-memory path; otherwise stream again, appending each entry to
//     its place-shard's spill file (an ordinary eventlog file, checksums
//     off) and recording per-(shard, file) entry counts.
//  3. Synthesize — each shard is read back (≤ the shard target),
//     resegmented by originating file, and synthesized segment by
//     segment exactly as the in-memory path synthesizes files. The
//     per-file segmentation is what keeps the output bit-identical: a
//     collocation bit dedupes within one file's matrix but not across
//     files, so shard synthesis must see the same (file, place) entry
//     groups the in-memory path sees.
//
// Shard networks are merged with the tournament merge; since shards
// partition the place set and edge-weight summation is commutative and
// associative, the merged network equals the single-coalesce result
// bit for bit.
func synthesizeFilesBudgeted(ctx context.Context, paths []string, t0, t1 uint32, cfg Config) (*sparse.Tri, *Stats, error) {
	// The spill span covers passes 1 and 2 (count + route); the pass-3
	// re-reads are charged to Stats.Spill and the synth_spill_seconds
	// histogram per shard below.
	_, spSpill := telemetry.StartSpan(ctx, "synth/spill")

	// Pass 1: per-place entry counts for the slice.
	counts := make(map[uint32]int64)
	var totalEntries int64
	for _, p := range paths {
		src, err := eventlog.OpenSource(p, t0, t1)
		if err != nil {
			return nil, nil, fmt.Errorf("core: %s: %w", p, err)
		}
		for {
			batch, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				src.Close()
				return nil, nil, fmt.Errorf("core: %s: %w", p, err)
			}
			if err := ctxErr(ctx, "spill count"); err != nil {
				src.Close()
				return nil, nil, err
			}
			totalEntries += int64(len(batch))
			for _, e := range batch {
				counts[e.Place]++
			}
		}
		if err := src.Close(); err != nil {
			return nil, nil, fmt.Errorf("core: %s: %w", p, err)
		}
	}
	if totalEntries*eventlog.BaseEntrySize <= cfg.MemBudgetBytes {
		// Everything fits: take the fast path, charging the counting
		// pass to Spill so the budget machinery's cost stays visible.
		elapsed := spSpill.End()
		tri, stats, err := synthesizeFilesInMemory(ctx, paths, t0, t1, cfg)
		if stats != nil {
			stats.Spill += elapsed
		}
		return tri, stats, err
	}

	shardOf, nShards := planShards(counts, shardTargetBytes(cfg.MemBudgetBytes))

	// Pass 2: route entries to per-shard spill files.
	dir, err := os.MkdirTemp(cfg.SpillDir, "core-spill-*")
	if err != nil {
		return nil, nil, fmt.Errorf("core: spill dir: %w", err)
	}
	defer os.RemoveAll(dir)
	shardPath := func(s int) string {
		return filepath.Join(dir, fmt.Sprintf("shard%04d.h5l", s))
	}
	writers := make([]*eventlog.Logger, nShards)
	closeWriters := func() {
		for i, w := range writers {
			if w != nil {
				w.Close()
				writers[i] = nil
			}
		}
	}
	defer closeWriters()
	for s := range writers {
		writers[s], err = eventlog.Create(shardPath(s), eventlog.Config{
			CacheEntries:     spillCacheEntries,
			DisableChecksums: true,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("core: spill shard %d: %w", s, err)
		}
	}
	// segs[s][f] is how many entries of shard s came from paths[f], in
	// file order — the resegmentation boundaries for pass 3.
	segs := make([][]int64, nShards)
	for s := range segs {
		segs[s] = make([]int64, len(paths))
	}
	for fi, p := range paths {
		src, err := eventlog.OpenSource(p, t0, t1)
		if err != nil {
			return nil, nil, fmt.Errorf("core: %s: %w", p, err)
		}
		ferr := func() error {
			for {
				batch, err := src.Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				if err := ctxErr(ctx, "spill route"); err != nil {
					return err
				}
				for _, e := range batch {
					s := shardOf[e.Place]
					if err := writers[s].Log(e); err != nil {
						return err
					}
					segs[s][fi]++
				}
			}
		}()
		cerr := src.Close()
		if ferr == nil {
			ferr = cerr
		}
		if ferr != nil {
			return nil, nil, fmt.Errorf("core: %s: %w", p, ferr)
		}
	}
	agg := &Stats{SliceHours: int(t1 - t0), Shards: nShards}
	for s, w := range writers {
		if err := w.Close(); err != nil {
			return nil, nil, fmt.Errorf("core: spill shard %d: %w", s, err)
		}
		writers[s] = nil
		if st, err := os.Stat(shardPath(s)); err == nil {
			agg.SpilledBytes += uint64(st.Size())
		}
	}
	spSpill.AddCount(int64(nShards))
	spSpill.AddBytes(int64(agg.SpilledBytes))
	agg.Spill = spSpill.End()
	mShards.Add(int64(nShards))
	mSpillBytes.Add(int64(agg.SpilledBytes))

	// Pass 3: synthesize each shard independently, then merge.
	tris := make([]*sparse.Tri, 0, nShards)
	for s := 0; s < nShards; s++ {
		readStart := time.Now()
		src, err := eventlog.OpenSource(shardPath(s), 0, t1)
		if err != nil {
			return nil, nil, fmt.Errorf("core: spill shard %d: %w", s, err)
		}
		entries, err := eventlog.ReadAll(src)
		cerr := src.Close()
		if err == nil {
			err = cerr
		}
		if err != nil {
			return nil, nil, fmt.Errorf("core: spill shard %d: %w", s, err)
		}
		os.Remove(shardPath(s))
		readWall := time.Since(readStart)
		agg.Spill += readWall
		mSpillSeconds.Observe(readWall)
		dst := sparse.GetEntries()
		var off int64
		for fi := range paths {
			n := segs[s][fi]
			if n == 0 {
				continue
			}
			seg := entries[off : off+n]
			off += n
			var st *Stats
			dst, st, err = synthesizeEntriesInto(ctx, dst, seg, t0, t1, cfg)
			if err != nil {
				sparse.PutEntries(dst)
				return nil, nil, fmt.Errorf("core: %s (shard %d): %w", paths[fi], s, err)
			}
			agg.add(st)
		}
		start := time.Now()
		tris = append(tris, sparse.TriFromEntries(dst))
		sparse.PutEntries(dst)
		agg.Reduce += time.Since(start)
	}
	start := time.Now()
	total := sparse.MergeTrisParallel(cfg.workers(), tris...)
	merge := time.Since(start)
	agg.Reduce += merge
	mMergeSeconds.Observe(merge)
	return total, agg, nil
}
