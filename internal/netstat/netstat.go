// Package netstat computes the degree-distribution statistics and model
// fits of the paper's Section V.B: log-log degree distributions, power
// law / truncated power law / exponential fits (Figure 3), and
// within-age-group disaggregation (Figure 5).
package netstat

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sparse"
)

// Point is one point of a degree distribution: Count vertices have
// degree K; Frac is Count scaled by the population size, matching the
// paper's "vertex degree distribution fraction, scaled by the total
// number of persons".
type Point struct {
	K     int
	Count int
	Frac  float64
}

// Distribution converts a degree histogram (degree → vertex count) into
// sorted points over k ≥ 1, with fractions relative to total. If total
// is 0 the sum of all counts (including degree 0) is used.
func Distribution(hist map[int]int, total int) []Point {
	if total == 0 {
		for _, c := range hist {
			total += c
		}
	}
	pts := make([]Point, 0, len(hist))
	for k, c := range hist {
		if k < 1 || c == 0 {
			continue
		}
		pts = append(pts, Point{K: k, Count: c, Frac: float64(c) / float64(total)})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].K < pts[j].K })
	return pts
}

// DistributionDense converts a dense degree histogram (slot k = number
// of vertices with degree k, as produced by graph.DegreeHistogram) into
// sorted points over k ≥ 1, with fractions relative to total. If total
// is 0 the sum of all slots (including degree 0) is used. Unlike the
// map-based Distribution it iterates in degree order, so the output is
// deterministic without a sort.
func DistributionDense(hist []int, total int) []Point {
	if total == 0 {
		for _, c := range hist {
			total += c
		}
	}
	var pts []Point
	for k, c := range hist {
		if k < 1 || c == 0 {
			continue
		}
		pts = append(pts, Point{K: k, Count: c, Frac: float64(c) / float64(total)})
	}
	return pts
}

// LogBin merges points into logarithmically spaced bins (binsPerDecade
// bins per factor of 10), averaging fractions within each bin. It
// de-noises the sparse tail of a log-log plot.
func LogBin(pts []Point, binsPerDecade int) []Point {
	if binsPerDecade <= 0 || len(pts) == 0 {
		return pts
	}
	type bin struct {
		sumK, sumFrac float64
		count, n      int
	}
	bins := make(map[int]*bin)
	for _, p := range pts {
		idx := int(math.Floor(math.Log10(float64(p.K)) * float64(binsPerDecade)))
		b := bins[idx]
		if b == nil {
			b = &bin{}
			bins[idx] = b
		}
		b.sumK += float64(p.K)
		b.sumFrac += p.Frac
		b.count += p.Count
		b.n++
	}
	idxs := make([]int, 0, len(bins))
	for i := range bins {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]Point, 0, len(idxs))
	for _, i := range idxs {
		b := bins[i]
		out = append(out, Point{
			K:     int(b.sumK / float64(b.n)),
			Count: b.count,
			Frac:  b.sumFrac / float64(b.n),
		})
	}
	return out
}

// Fit holds the parameters of one fitted distribution model and its
// goodness of fit (R² of log-fraction residuals).
type Fit struct {
	// Model is "powerlaw", "truncated" or "exponential".
	Model string
	// Alpha is the power-law exponent (0 for exponential).
	Alpha float64
	// Kc is the cutoff degree (0 for pure power law).
	Kc float64
	// C is the log-space intercept.
	C float64
	// R2 is the coefficient of determination in log space.
	R2 float64
}

// Eval returns the model's predicted fraction at degree k.
func (f Fit) Eval(k float64) float64 {
	switch f.Model {
	case "powerlaw":
		return math.Exp(f.C) * math.Pow(k, -f.Alpha)
	case "truncated":
		return math.Exp(f.C) * math.Pow(k, -f.Alpha) * math.Exp(-k/f.Kc)
	case "exponential":
		return math.Exp(f.C) * math.Exp(-k/f.Kc)
	default:
		return math.NaN()
	}
}

func (f Fit) String() string {
	switch f.Model {
	case "powerlaw":
		return fmt.Sprintf("p(k) ~ k^-%.3f (R²=%.3f)", f.Alpha, f.R2)
	case "truncated":
		return fmt.Sprintf("p(k) ~ k^-%.3f exp(-k/%.1f) (R²=%.3f)", f.Alpha, f.Kc, f.R2)
	case "exponential":
		return fmt.Sprintf("p(k) ~ exp(-k/%.1f) (R²=%.3f)", f.Kc, f.R2)
	default:
		return "unfitted"
	}
}

// designRow is one regression observation: y = Σ beta_i * x_i.
type designRow struct {
	x []float64
	y float64
}

// solveLeastSquares solves the normal equations XᵀX β = Xᵀy by Gaussian
// elimination with partial pivoting; dimensions are tiny (≤3).
func solveLeastSquares(rows []designRow, dim int) ([]float64, bool) {
	a := make([][]float64, dim)
	for i := range a {
		a[i] = make([]float64, dim+1)
	}
	for _, r := range rows {
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				a[i][j] += r.x[i] * r.x[j]
			}
			a[i][dim] += r.x[i] * r.y
		}
	}
	for col := 0; col < dim; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < dim; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			return nil, false
		}
		for r := 0; r < dim; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= dim; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	beta := make([]float64, dim)
	for i := range beta {
		beta[i] = a[i][dim] / a[i][i]
	}
	return beta, true
}

// r2 computes the coefficient of determination of predictions vs
// observations.
func r2(obs, pred []float64) float64 {
	var mean float64
	for _, y := range obs {
		mean += y
	}
	mean /= float64(len(obs))
	var ssRes, ssTot float64
	for i, y := range obs {
		ssRes += (y - pred[i]) * (y - pred[i])
		ssTot += (y - mean) * (y - mean)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// logPoints extracts the (k, ln frac) observations with positive
// fractions.
func logPoints(pts []Point) (ks, logf []float64) {
	for _, p := range pts {
		if p.Frac > 0 && p.K >= 1 {
			ks = append(ks, float64(p.K))
			logf = append(logf, math.Log(p.Frac))
		}
	}
	return
}

// FitPowerLaw least-squares fits ln p = C - α·ln k.
func FitPowerLaw(pts []Point) (Fit, error) {
	ks, logf := logPoints(pts)
	if len(ks) < 2 {
		return Fit{}, fmt.Errorf("netstat: need ≥2 points to fit, have %d", len(ks))
	}
	rows := make([]designRow, len(ks))
	for i := range ks {
		rows[i] = designRow{x: []float64{1, math.Log(ks[i])}, y: logf[i]}
	}
	beta, ok := solveLeastSquares(rows, 2)
	if !ok {
		return Fit{}, fmt.Errorf("netstat: singular power-law fit")
	}
	f := Fit{Model: "powerlaw", C: beta[0], Alpha: -beta[1]}
	pred := make([]float64, len(ks))
	for i := range ks {
		pred[i] = beta[0] + beta[1]*math.Log(ks[i])
	}
	f.R2 = r2(logf, pred)
	return f, nil
}

// FitTruncatedPowerLaw least-squares fits ln p = C - α·ln k - k/κ, the
// paper's p(k) ~ k^-α e^(-k/κ) form.
func FitTruncatedPowerLaw(pts []Point) (Fit, error) {
	ks, logf := logPoints(pts)
	if len(ks) < 3 {
		return Fit{}, fmt.Errorf("netstat: need ≥3 points to fit, have %d", len(ks))
	}
	rows := make([]designRow, len(ks))
	for i := range ks {
		rows[i] = designRow{x: []float64{1, math.Log(ks[i]), ks[i]}, y: logf[i]}
	}
	beta, ok := solveLeastSquares(rows, 3)
	if !ok {
		return Fit{}, fmt.Errorf("netstat: singular truncated fit")
	}
	kc := math.Inf(1)
	if beta[2] < 0 {
		kc = -1 / beta[2]
	}
	f := Fit{Model: "truncated", C: beta[0], Alpha: -beta[1], Kc: kc}
	pred := make([]float64, len(ks))
	for i := range ks {
		pred[i] = beta[0] + beta[1]*math.Log(ks[i]) + beta[2]*ks[i]
	}
	f.R2 = r2(logf, pred)
	return f, nil
}

// FitExponential least-squares fits ln p = C - k/κ.
func FitExponential(pts []Point) (Fit, error) {
	ks, logf := logPoints(pts)
	if len(ks) < 2 {
		return Fit{}, fmt.Errorf("netstat: need ≥2 points to fit, have %d", len(ks))
	}
	rows := make([]designRow, len(ks))
	for i := range ks {
		rows[i] = designRow{x: []float64{1, ks[i]}, y: logf[i]}
	}
	beta, ok := solveLeastSquares(rows, 2)
	if !ok {
		return Fit{}, fmt.Errorf("netstat: singular exponential fit")
	}
	kc := math.Inf(1)
	if beta[1] < 0 {
		kc = -1 / beta[1]
	}
	f := Fit{Model: "exponential", C: beta[0], Kc: kc}
	pred := make([]float64, len(ks))
	for i := range ks {
		pred[i] = beta[0] + beta[1]*ks[i]
	}
	f.R2 = r2(logf, pred)
	return f, nil
}

// AlphaMLE returns the discrete power-law exponent maximum-likelihood
// estimate α = 1 + n/Σ ln(k_i/(kmin-1/2)) over degrees ≥ kmin
// (Clauset-Shalizi-Newman approximation).
func AlphaMLE(hist map[int]int, kmin int) (float64, error) {
	if kmin < 1 {
		kmin = 1
	}
	var n int
	var sum float64
	for k, c := range hist {
		if k < kmin || c == 0 {
			continue
		}
		n += c
		sum += float64(c) * math.Log(float64(k)/(float64(kmin)-0.5))
	}
	if n == 0 || sum == 0 {
		return 0, fmt.Errorf("netstat: no degrees ≥ %d", kmin)
	}
	return 1 + float64(n)/sum, nil
}

// AlphaMLEDense is AlphaMLE over a dense degree histogram (slot k =
// vertex count at degree k).
func AlphaMLEDense(hist []int, kmin int) (float64, error) {
	if kmin < 1 {
		kmin = 1
	}
	var n int
	var sum float64
	for k := kmin; k < len(hist); k++ {
		c := hist[k]
		if c == 0 {
			continue
		}
		n += c
		sum += float64(c) * math.Log(float64(k)/(float64(kmin)-0.5))
	}
	if n == 0 || sum == 0 {
		return 0, fmt.Errorf("netstat: no degrees ≥ %d", kmin)
	}
	return 1 + float64(n)/sum, nil
}

// WithinGroup restricts a collocation network to edges whose endpoints
// share a group label — the paper's Figure 5 construction ("edges
// between age groups are removed") — returning one Tri per group.
// groups[i] is person i's group in [0, numGroups); persons whose ID is
// outside groups get no edges.
func WithinGroup(t *sparse.Tri, groups []int, numGroups int) []*sparse.Tri {
	out := make([]*sparse.Tri, numGroups)
	for g := 0; g < numGroups; g++ {
		gg := g
		out[g] = t.Filter(func(i, j uint32) bool {
			if int(i) >= len(groups) || int(j) >= len(groups) {
				return false
			}
			return groups[i] == gg && groups[j] == gg
		})
	}
	return out
}

// Histogram bins values into nbins equal-width bins over [lo, hi],
// returning bin centers and counts. Used for the paper's Figure 4
// clustering-coefficient histogram.
func Histogram(values []float64, lo, hi float64, nbins int) (centers []float64, counts []int) {
	if nbins <= 0 || hi <= lo {
		return nil, nil
	}
	centers = make([]float64, nbins)
	counts = make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for i := range centers {
		centers[i] = lo + (float64(i)+0.5)*width
	}
	for _, v := range values {
		if v < lo || v > hi {
			continue
		}
		b := int((v - lo) / width)
		if b == nbins { // v == hi lands in the last bin
			b = nbins - 1
		}
		counts[b]++
	}
	return centers, counts
}
