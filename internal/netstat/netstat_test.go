package netstat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// synthPoints evaluates a known model at degrees 1..n to produce exact
// observations for fit-recovery tests.
func synthPoints(n int, f func(k float64) float64) []Point {
	pts := make([]Point, 0, n)
	for k := 1; k <= n; k++ {
		pts = append(pts, Point{K: k, Count: 1, Frac: f(float64(k))})
	}
	return pts
}

func TestDistributionSortedAndFractions(t *testing.T) {
	hist := map[int]int{3: 5, 1: 10, 0: 100, 7: 1}
	pts := Distribution(hist, 0)
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3 (degree 0 excluded)", len(pts))
	}
	if pts[0].K != 1 || pts[1].K != 3 || pts[2].K != 7 {
		t.Fatalf("points not sorted: %v", pts)
	}
	total := 116.0
	if math.Abs(pts[0].Frac-10/total) > 1e-12 {
		t.Fatalf("frac = %v, want %v", pts[0].Frac, 10/total)
	}
}

func TestDistributionExplicitTotal(t *testing.T) {
	pts := Distribution(map[int]int{2: 5}, 50)
	if math.Abs(pts[0].Frac-0.1) > 1e-12 {
		t.Fatalf("frac = %v, want 0.1", pts[0].Frac)
	}
}

func TestFitPowerLawRecovery(t *testing.T) {
	// Exact power law with α = 1.5: fit must recover it.
	pts := synthPoints(100, func(k float64) float64 { return 0.3 * math.Pow(k, -1.5) })
	fit, err := FitPowerLaw(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-1.5) > 1e-9 {
		t.Fatalf("alpha = %v, want 1.5", fit.Alpha)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Fatalf("R² = %v, want 1", fit.R2)
	}
	if math.Abs(fit.Eval(10)-0.3*math.Pow(10, -1.5)) > 1e-12 {
		t.Fatalf("Eval mismatch")
	}
}

func TestFitTruncatedRecovery(t *testing.T) {
	// Paper's Figure 3 overlay: α = 1.25, κ = 1000.
	pts := synthPoints(2000, func(k float64) float64 {
		return 0.5 * math.Pow(k, -1.25) * math.Exp(-k/1000)
	})
	fit, err := FitTruncatedPowerLaw(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-1.25) > 1e-6 {
		t.Fatalf("alpha = %v, want 1.25", fit.Alpha)
	}
	if math.Abs(fit.Kc-1000) > 1 {
		t.Fatalf("kc = %v, want 1000", fit.Kc)
	}
}

func TestFitExponentialRecovery(t *testing.T) {
	pts := synthPoints(200, func(k float64) float64 { return 0.2 * math.Exp(-k/35) })
	fit, err := FitExponential(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Kc-35) > 1e-6 {
		t.Fatalf("kc = %v, want 35", fit.Kc)
	}
}

func TestTruncatedBeatsPureOnRolledOffData(t *testing.T) {
	// Data with an exponential roll-off: the truncated model must fit
	// at least as well (the paper's observation about the tail).
	pts := synthPoints(500, func(k float64) float64 {
		return math.Pow(k, -1.3) * math.Exp(-k/120)
	})
	pure, err := FitPowerLaw(pts)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := FitTruncatedPowerLaw(pts)
	if err != nil {
		t.Fatal(err)
	}
	if trunc.R2 < pure.R2 {
		t.Fatalf("truncated R² %v below pure %v", trunc.R2, pure.R2)
	}
}

func TestFitErrorsOnTooFewPoints(t *testing.T) {
	one := []Point{{K: 1, Count: 1, Frac: 0.5}}
	if _, err := FitPowerLaw(one); err == nil {
		t.Error("power-law fit of 1 point accepted")
	}
	two := append(one, Point{K: 2, Count: 1, Frac: 0.25})
	if _, err := FitTruncatedPowerLaw(two); err == nil {
		t.Error("truncated fit of 2 points accepted")
	}
	if _, err := FitExponential(one); err == nil {
		t.Error("exponential fit of 1 point accepted")
	}
}

func TestFitStrings(t *testing.T) {
	pts := synthPoints(50, func(k float64) float64 { return math.Pow(k, -2) })
	fit, _ := FitPowerLaw(pts)
	if fit.String() == "" || fit.Model != "powerlaw" {
		t.Fatal("fit string empty")
	}
}

func TestAlphaMLE(t *testing.T) {
	// Build a histogram sampled from a discrete power law α=2.2 via
	// Zipf and check the MLE lands near it.
	r := rng.New(7)
	z := rng.NewZipf(2.2, 10000)
	hist := make(map[int]int)
	for i := 0; i < 200000; i++ {
		hist[z.Sample(r)]++
	}
	alpha, err := AlphaMLE(hist, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-2.2) > 0.15 {
		t.Fatalf("MLE alpha = %v, want ≈2.2", alpha)
	}
}

func TestAlphaMLEEmpty(t *testing.T) {
	if _, err := AlphaMLE(map[int]int{1: 5}, 10); err == nil {
		t.Fatal("MLE with no qualifying degrees accepted")
	}
}

func TestWithinGroup(t *testing.T) {
	acc := sparse.NewAccum()
	acc.Add(0, 1, 5) // both group 0
	acc.Add(2, 3, 7) // both group 1
	acc.Add(1, 2, 9) // cross-group: must vanish everywhere
	tri := acc.Tri()
	groups := []int{0, 0, 1, 1}
	per := WithinGroup(tri, groups, 2)
	if per[0].NNZ() != 1 || per[0].Weight(0, 1) != 5 {
		t.Fatalf("group 0 network wrong: %+v", per[0])
	}
	if per[1].NNZ() != 1 || per[1].Weight(2, 3) != 7 {
		t.Fatalf("group 1 network wrong")
	}
	if per[0].Weight(1, 2) != 0 && per[1].Weight(1, 2) != 0 {
		t.Fatal("cross-group edge survived")
	}
}

func TestWithinGroupOutOfRangePersons(t *testing.T) {
	acc := sparse.NewAccum()
	acc.Add(0, 99, 1) // person 99 has no group label
	per := WithinGroup(acc.Tri(), []int{0}, 1)
	if per[0].NNZ() != 0 {
		t.Fatal("edge with unlabeled endpoint survived")
	}
}

func TestLogBinReducesPoints(t *testing.T) {
	var pts []Point
	for k := 1; k <= 1000; k++ {
		pts = append(pts, Point{K: k, Count: 1, Frac: 1.0 / float64(k)})
	}
	binned := LogBin(pts, 5)
	if len(binned) >= len(pts) {
		t.Fatalf("binning did not reduce: %d -> %d", len(pts), len(binned))
	}
	for i := 1; i < len(binned); i++ {
		if binned[i-1].K >= binned[i].K {
			t.Fatal("binned points not increasing in K")
		}
	}
	// Total count preserved.
	total := 0
	for _, p := range binned {
		total += p.Count
	}
	if total != 1000 {
		t.Fatalf("binned count = %d, want 1000", total)
	}
}

func TestLogBinPassThrough(t *testing.T) {
	pts := []Point{{K: 1, Count: 1, Frac: 0.1}}
	if got := LogBin(pts, 0); len(got) != 1 {
		t.Fatal("binsPerDecade=0 should pass through")
	}
	if got := LogBin(nil, 5); got != nil {
		t.Fatal("empty input should pass through")
	}
}

func TestHistogram(t *testing.T) {
	values := []float64{0, 0.1, 0.5, 0.99, 1.0, 1.0}
	centers, counts := Histogram(values, 0, 1, 4)
	if len(centers) != 4 || len(counts) != 4 {
		t.Fatal("wrong bin count")
	}
	// 0 and 0.1 → bin 0; 0.5 → bin 2; 0.99 and both 1.0 → bin 3.
	if counts[0] != 2 || counts[1] != 0 || counts[2] != 1 || counts[3] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	if math.Abs(centers[0]-0.125) > 1e-12 {
		t.Fatalf("centers = %v", centers)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if c, n := Histogram(nil, 0, 1, 0); c != nil || n != nil {
		t.Fatal("nbins=0 should return nil")
	}
	if c, n := Histogram(nil, 1, 1, 4); c != nil || n != nil {
		t.Fatal("hi<=lo should return nil")
	}
}

// Property: the power-law fit recovers arbitrary (α, C) exactly from
// noiseless data.
func TestQuickPowerLawRecovery(t *testing.T) {
	f := func(a8, c8 uint8) bool {
		alpha := 0.5 + float64(a8%30)/10 // 0.5 .. 3.4
		c := 0.01 + float64(c8%50)/100
		pts := synthPoints(80, func(k float64) float64 { return c * math.Pow(k, -alpha) })
		fit, err := FitPowerLaw(pts)
		if err != nil {
			return false
		}
		return math.Abs(fit.Alpha-alpha) < 1e-6 && fit.R2 > 0.999999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram counts always sum to the number of in-range values.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		values := make([]float64, 100)
		for i := range values {
			values[i] = r.Float64()
		}
		_, counts := Histogram(values, 0, 1, 10)
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionDenseMatchesMap(t *testing.T) {
	// A dense histogram and its map equivalent must produce identical
	// point sets.
	dense := []int{100, 10, 0, 5, 0, 0, 0, 1} // degrees 0..7
	m := map[int]int{0: 100, 1: 10, 3: 5, 7: 1}
	dp := DistributionDense(dense, 0)
	mp := Distribution(m, 0)
	if len(dp) != len(mp) {
		t.Fatalf("dense %d points vs map %d", len(dp), len(mp))
	}
	for i := range dp {
		if dp[i] != mp[i] {
			t.Fatalf("point %d: dense %+v vs map %+v", i, dp[i], mp[i])
		}
	}
	// Already sorted by construction.
	for i := 1; i < len(dp); i++ {
		if dp[i-1].K >= dp[i].K {
			t.Fatalf("dense points not strictly increasing in K: %v", dp)
		}
	}
}

func TestDistributionDenseExplicitTotal(t *testing.T) {
	pts := DistributionDense([]int{0, 0, 5}, 50)
	if len(pts) != 1 || math.Abs(pts[0].Frac-0.1) > 1e-12 {
		t.Fatalf("pts = %v, want single point with frac 0.1", pts)
	}
	if got := DistributionDense(nil, 0); len(got) != 0 {
		t.Fatalf("empty histogram produced points: %v", got)
	}
}

func TestAlphaMLEDenseMatchesMap(t *testing.T) {
	r := rng.New(11)
	z := rng.NewZipf(2.2, 10000)
	m := make(map[int]int)
	maxK := 0
	for i := 0; i < 100000; i++ {
		k := z.Sample(r)
		m[k]++
		if k > maxK {
			maxK = k
		}
	}
	dense := make([]int, maxK+1)
	for k, c := range m {
		dense[k] = c
	}
	am, err1 := AlphaMLE(m, 3)
	ad, err2 := AlphaMLEDense(dense, 3)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(am-ad) > 1e-12 {
		t.Fatalf("dense MLE %v differs from map MLE %v", ad, am)
	}
}

func TestAlphaMLEDenseEmpty(t *testing.T) {
	if _, err := AlphaMLEDense([]int{0, 5}, 10); err == nil {
		t.Fatal("dense MLE with no qualifying degrees accepted")
	}
	if _, err := AlphaMLEDense(nil, 1); err == nil {
		t.Fatal("dense MLE on nil histogram accepted")
	}
}
