// Package sparse implements the sparse-matrix machinery behind the
// collocation-network synthesis described in the paper.
//
// The central objects are:
//
//   - BitMatrix: the sparse binary p×t "collocation matrix" x for a single
//     place — row i is a bitset over the time slots during which person i
//     was present at the place.
//   - Gram: the product A_l = x·xᵀ, an upper-triangular weighted adjacency
//     whose (i,j) entry counts the time slots persons i and j shared the
//     place.
//   - Accum / Tri: accumulation of per-place adjacencies into the final
//     sparse upper-triangular p×p adjacency matrix A = Σ_l A_l.
//
// Persons inside a BitMatrix are indexed locally (0..rows-1) with a
// parallel slice of global person IDs, because any single place is visited
// by a tiny fraction of the population; this is what makes the per-place
// matrices "quite sparse" in the paper's terms.
package sparse

import (
	"fmt"
	"math/bits"
)

// BitMatrix is a binary matrix over rows of fixed bit-width, used as the
// per-place person×time collocation matrix. Rows are added lazily: a
// person gets a row on first Set.
type BitMatrix struct {
	cols  int      // number of time slots t
	words int      // ceil(cols/64)
	ids   []uint32 // global person ID per local row
	rows  [][]uint64
	// index maps global person ID -> epoch<<32 | local row. Entries from
	// earlier epochs are stale and treated as absent, which lets a pooled
	// matrix reset in O(1) (bump epoch) instead of clearing the map —
	// clear(map) sweeps bucket capacity, which for a recycled matrix
	// reflects the largest place it ever held, not the current one.
	index map[uint32]uint64
	epoch uint32

	// grp caches the row-group compression (identical bitsets deduped)
	// computed by Compress; any mutation invalidates it.
	grp *rowGroups

	// Row storage is carved from arena blocks rather than allocated per
	// row: cur is the active block (len = words in use) and blocks holds
	// filled predecessors. Carving keeps rows contiguous in memory for
	// the Gram kernels and lets reset() reclaim all rows with one memclr
	// per block instead of one per row.
	cur    []uint64
	blocks [][]uint64
}

// NewBitMatrix returns an empty matrix with the given number of columns
// (time slots). Columns must be positive.
func NewBitMatrix(cols int) *BitMatrix {
	if cols <= 0 {
		panic("sparse: NewBitMatrix with non-positive cols")
	}
	return &BitMatrix{
		cols:  cols,
		words: (cols + 63) / 64,
		index: make(map[uint32]uint64),
		epoch: 1, // 0 is never a live epoch, so zero map values are stale
	}
}

// lookup returns person's local row index, or -1 if the person has no
// row in the current epoch.
func (m *BitMatrix) lookup(person uint32) int {
	if v, ok := m.index[person]; ok && uint32(v>>32) == m.epoch {
		return int(uint32(v))
	}
	return -1
}

// Cols returns the number of time-slot columns.
func (m *BitMatrix) Cols() int { return m.cols }

// Rows returns the number of distinct persons with at least one Set call.
func (m *BitMatrix) Rows() int { return len(m.ids) }

// IDs returns the global person ID for each local row. The slice is owned
// by the matrix and must not be modified.
func (m *BitMatrix) IDs() []uint32 { return m.ids }

func (m *BitMatrix) row(person uint32) []uint64 {
	m.grp = nil // any write invalidates the cached compression
	if i := m.lookup(person); i >= 0 {
		return m.rows[i]
	}
	r := m.newRow()
	m.index[person] = uint64(m.epoch)<<32 | uint64(uint32(len(m.ids)))
	m.ids = append(m.ids, person)
	m.rows = append(m.rows, r)
	return r
}

// newRow carves a zeroed words-wide row from the arena, growing it with
// doubling blocks as needed. Existing rows keep pointing into earlier
// blocks, so growth never invalidates them.
func (m *BitMatrix) newRow() []uint64 {
	if len(m.cur)+m.words > cap(m.cur) {
		size := 2 * cap(m.cur)
		if min := 16 * m.words; size < min {
			size = min
		}
		if m.cur != nil {
			m.blocks = append(m.blocks, m.cur)
		}
		m.cur = make([]uint64, 0, size)
	}
	n := len(m.cur)
	m.cur = m.cur[:n+m.words]
	return m.cur[n : n+m.words : n+m.words]
}

// Set marks person as present during time slot t. It panics if t is out
// of range.
func (m *BitMatrix) Set(person uint32, t int) {
	if t < 0 || t >= m.cols {
		panic(fmt.Sprintf("sparse: Set time %d out of [0,%d)", t, m.cols))
	}
	m.row(person)[t>>6] |= 1 << (uint(t) & 63)
}

// SetRange marks person as present for every slot in [start, stop).
// Slots outside [0, cols) are clipped. An empty or inverted range is a
// no-op and allocates no row.
func (m *BitMatrix) SetRange(person uint32, start, stop int) {
	if start < 0 {
		start = 0
	}
	if stop > m.cols {
		stop = m.cols
	}
	if start >= stop {
		return
	}
	r := m.row(person)
	// Fill word by word.
	for start < stop {
		w := start >> 6
		lo := uint(start) & 63
		hi := uint(64)
		if (w<<6)+64 > stop {
			hi = uint(stop - w<<6)
		}
		var mask uint64
		if hi == 64 {
			mask = ^uint64(0) << lo
		} else {
			mask = (1<<hi - 1) &^ (1<<lo - 1)
		}
		r[w] |= mask
		start = (w + 1) << 6
	}
}

// Get reports whether person was present at slot t. A person never Set
// reports false everywhere.
func (m *BitMatrix) Get(person uint32, t int) bool {
	if t < 0 || t >= m.cols {
		return false
	}
	i := m.lookup(person)
	if i < 0 {
		return false
	}
	return m.rows[i][t>>6]&(1<<(uint(t)&63)) != 0
}

// NNZ returns the total number of set bits — the matrix's nonzero count,
// which the paper uses as the load-balancing weight for a place.
func (m *BitMatrix) NNZ() int {
	n := 0
	for _, r := range m.rows {
		for _, w := range r {
			n += bits.OnesCount64(w)
		}
	}
	return n
}

// RowNNZ returns the number of set bits in person's row (their total
// presence time at this place), or 0 if the person has no row.
func (m *BitMatrix) RowNNZ(person uint32) int {
	i := m.lookup(person)
	if i < 0 {
		return 0
	}
	n := 0
	for _, w := range m.rows[i] {
		n += bits.OnesCount64(w)
	}
	return n
}

// Entry is one weighted upper-triangular adjacency element: persons I < J
// were collocated for W time slots.
type Entry struct {
	I, J uint32
	W    uint32
}

// Gram computes the strict upper triangle of x·xᵀ: one Entry per pair of
// persons with at least one shared time slot, weighted by the number of
// shared slots. Entries are emitted with I < J in global-ID order within
// each pair; the overall sequence order is unspecified.
//
// The diagonal of x·xᵀ (each person's own presence time) is intentionally
// omitted: the collocation network has no self-loops.
func (m *BitMatrix) Gram() []Entry {
	var out []Entry
	n := len(m.rows)
	for a := 0; a < n; a++ {
		ra := m.rows[a]
		for b := a + 1; b < n; b++ {
			rb := m.rows[b]
			w := 0
			for k := 0; k < m.words; k++ {
				w += bits.OnesCount64(ra[k] & rb[k])
			}
			if w == 0 {
				continue
			}
			i, j := m.ids[a], m.ids[b]
			if i > j {
				i, j = j, i
			}
			out = append(out, Entry{I: i, J: j, W: uint32(w)})
		}
	}
	return out
}

// GramInto is like Gram but accumulates directly into acc, avoiding the
// intermediate entry slice. This is the hot path of the synthesis
// pipeline.
func (m *BitMatrix) GramInto(acc *Accum) {
	n := len(m.rows)
	for a := 0; a < n; a++ {
		ra := m.rows[a]
		for b := a + 1; b < n; b++ {
			rb := m.rows[b]
			w := 0
			for k := 0; k < m.words; k++ {
				w += bits.OnesCount64(ra[k] & rb[k])
			}
			if w != 0 {
				acc.Add(m.ids[a], m.ids[b], uint32(w))
			}
		}
	}
}

// GramAppend appends the strict-upper-triangle entries of x·xᵀ to dst
// and returns the extended slice. It is the allocation-light variant of
// Gram used by the synthesis hot path: workers accumulate entries into a
// reusable slice and coalesce once at the end instead of paying a hash
// lookup per pair.
func (m *BitMatrix) GramAppend(dst []Entry) []Entry {
	n := len(m.rows)
	for a := 0; a < n; a++ {
		ra := m.rows[a]
		for b := a + 1; b < n; b++ {
			rb := m.rows[b]
			w := 0
			for k := 0; k < m.words; k++ {
				w += bits.OnesCount64(ra[k] & rb[k])
			}
			if w == 0 {
				continue
			}
			i, j := m.ids[a], m.ids[b]
			if i > j {
				i, j = j, i
			}
			dst = append(dst, Entry{I: i, J: j, W: uint32(w)})
		}
	}
	return dst
}

// GramCost estimates the work of the clique-compressed Gram kernel
// (GramCliqueAppend): one AND+popcount per distinct-bitset group pair —
// g·(g-1)/2 · words word operations — plus one append per emitted pair
// entry, bounded by p·(p-1)/2. This replaces the dense rows²·words
// estimate so the LPT balancer sees the true post-compression work: a
// household of 40 identical schedules now costs ~780 appends, not
// 40²·words bit operations. GramCost triggers Compress, so calling it
// before handing the matrix to concurrent workers also makes the cached
// compression safe to share.
func (m *BitMatrix) GramCost() int {
	g := m.compress().groups()
	p := len(m.rows)
	return g*(g-1)/2*m.words + p*(p-1)/2
}
