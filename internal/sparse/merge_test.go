package sparse

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestTriFromEntriesNormalizesAndSums(t *testing.T) {
	es := []Entry{
		{I: 5, J: 2, W: 3}, // reversed pair
		{I: 2, J: 5, W: 4}, // duplicate of the above
		{I: 7, J: 7, W: 9}, // self-pair: dropped
		{I: 1, J: 3, W: 1},
	}
	tr := TriFromEntries(es)
	if tr.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", tr.NNZ())
	}
	if tr.Weight(2, 5) != 7 {
		t.Fatalf("weight(2,5) = %d, want 7", tr.Weight(2, 5))
	}
	if tr.Weight(1, 3) != 1 {
		t.Fatalf("weight(1,3) = %d", tr.Weight(1, 3))
	}
	if tr.Weight(7, 7) != 0 {
		t.Fatal("self-pair survived")
	}
	// Sorted invariant.
	for k := 1; k < tr.NNZ(); k++ {
		prev := uint64(tr.I[k-1])<<32 | uint64(tr.J[k-1])
		cur := uint64(tr.I[k])<<32 | uint64(tr.J[k])
		if prev >= cur {
			t.Fatal("TriFromEntries output not sorted")
		}
	}
}

func TestTriFromEntriesEmpty(t *testing.T) {
	if tr := TriFromEntries(nil); tr.NNZ() != 0 {
		t.Fatal("empty input produced entries")
	}
}

func TestMergeTrisBasic(t *testing.T) {
	a := NewAccum()
	a.Add(1, 2, 3)
	a.Add(5, 9, 1)
	b := NewAccum()
	b.Add(1, 2, 4)
	b.Add(0, 7, 2)
	m := MergeTris(a.Tri(), b.Tri())
	if m.NNZ() != 3 {
		t.Fatalf("merged NNZ = %d, want 3", m.NNZ())
	}
	if m.Weight(1, 2) != 7 || m.Weight(5, 9) != 1 || m.Weight(0, 7) != 2 {
		t.Fatalf("merged weights wrong: %+v", m)
	}
}

func TestMergeTrisNilAndEmpty(t *testing.T) {
	a := NewAccum()
	a.Add(1, 2, 3)
	m := MergeTris(nil, a.Tri(), NewAccum().Tri())
	if m.NNZ() != 1 || m.Weight(1, 2) != 3 {
		t.Fatalf("merge with nil/empty inputs wrong: %+v", m)
	}
	if MergeTris().NNZ() != 0 {
		t.Fatal("zero-input merge should be empty")
	}
}

// Property: MergeTris equals SumTris on arbitrary sorted inputs.
func TestQuickMergeEqualsSum(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		mk := func() *Tri {
			acc := NewAccum()
			for k := 0; k < r.Intn(40); k++ {
				acc.Add(uint32(r.Intn(15)), uint32(r.Intn(15)), uint32(1+r.Intn(4)))
			}
			return acc.Tri()
		}
		ts := []*Tri{mk(), mk(), mk()}
		return MergeTris(ts...).Equal(SumTris(ts...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: TriFromEntries equals an Accum over the same entries.
func TestQuickTriFromEntriesEqualsAccum(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(60)
		es := make([]Entry, n)
		acc := NewAccum()
		for k := 0; k < n; k++ {
			e := Entry{I: uint32(r.Intn(12)), J: uint32(r.Intn(12)), W: uint32(1 + r.Intn(5))}
			es[k] = e
			acc.Add(e.I, e.J, e.W)
		}
		return TriFromEntries(es).Equal(acc.Tri())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGramAppendMatchesGram(t *testing.T) {
	r := rng.New(3)
	m := NewBitMatrix(168)
	for p := 0; p < 25; p++ {
		id := uint32(r.Intn(30))
		start := r.Intn(160)
		m.SetRange(id, start, start+1+r.Intn(8))
	}
	fromGram := NewAccum()
	fromGram.AddEntries(m.Gram())
	appended := TriFromEntries(m.GramAppend(nil))
	if !appended.Equal(fromGram.Tri()) {
		t.Fatal("GramAppend differs from Gram")
	}
}

func TestGramAppendExtendsDst(t *testing.T) {
	m := NewBitMatrix(8)
	m.SetRange(1, 0, 4)
	m.SetRange(2, 2, 6)
	pre := []Entry{{I: 9, J: 10, W: 1}}
	out := m.GramAppend(pre)
	if len(out) != 2 {
		t.Fatalf("GramAppend len = %d, want 2", len(out))
	}
	if out[0] != (Entry{I: 9, J: 10, W: 1}) {
		t.Fatal("existing entries clobbered")
	}
	if out[1] != (Entry{I: 1, J: 2, W: 2}) {
		t.Fatalf("appended entry = %+v", out[1])
	}
}

func TestFilterTri(t *testing.T) {
	acc := NewAccum()
	acc.Add(1, 2, 5)
	acc.Add(3, 4, 6)
	acc.Add(1, 4, 7)
	tr := acc.Tri()
	fromOne := tr.Filter(func(i, j uint32) bool { return i == 1 })
	if fromOne.NNZ() != 2 || fromOne.Weight(1, 2) != 5 || fromOne.Weight(1, 4) != 7 || fromOne.Weight(3, 4) != 0 {
		t.Fatalf("filtered = %+v", fromOne)
	}
	none := tr.Filter(func(i, j uint32) bool { return false })
	if none.NNZ() != 0 {
		t.Fatal("filter-all-out kept entries")
	}
	all := tr.Filter(func(i, j uint32) bool { return true })
	if !all.Equal(tr) {
		t.Fatal("filter-keep-all changed entries")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := NewAccum()
	a.Add(1, 2, 3)
	b := NewAccum()
	b.Add(1, 2, 4)
	if a.Tri().Equal(b.Tri()) {
		t.Fatal("different weights reported equal")
	}
	c := NewAccum()
	c.Add(1, 3, 3)
	if a.Tri().Equal(c.Tri()) {
		t.Fatal("different pairs reported equal")
	}
}

func TestNewBitMatrixPanicsOnNonPositiveCols(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBitMatrix(0) did not panic")
		}
	}()
	NewBitMatrix(0)
}

func TestTriBinaryRoundTrip(t *testing.T) {
	acc := NewAccum()
	acc.Add(1, 2, 3)
	acc.Add(1000000, 2000000, 7)
	tr := acc.Tri()
	blob, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Tri
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(tr) {
		t.Fatal("binary round trip changed the matrix")
	}
	// Empty matrix.
	empty := NewAccum().Tri()
	blob, _ = empty.MarshalBinary()
	var backEmpty Tri
	if err := backEmpty.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if backEmpty.NNZ() != 0 {
		t.Fatal("empty round trip gained entries")
	}
}

func TestTriUnmarshalRejectsCorrupt(t *testing.T) {
	var tr Tri
	if err := tr.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil blob accepted")
	}
	if err := tr.UnmarshalBinary([]byte{5, 0, 0, 0, 1}); err == nil {
		t.Fatal("length-mismatched blob accepted")
	}
}
