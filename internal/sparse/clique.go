package sparse

import (
	"encoding/binary"
	"math/bits"
	"sort"
)

// rowGroups is the clique compression of a BitMatrix: rows with identical
// bitsets are deduped into groups. At the places that dominate the
// synthesis workload (homes, workplaces, schools) most occupants share
// the same arrival/departure hours, so the number of distinct bitsets g
// is far smaller than the person count p. The Gram product then needs one
// AND+popcount per *group* pair instead of per *person* pair — O(g²·words)
// bit work instead of O(p²·words) — while the pair emission stays exact:
// every member pair of a group pair shares the group-level weight, and
// intra-group pairs form a clique weighted by the group's own popcount.
//
// Rows are re-ordered into a flat permutation (order) in which each
// group's members are contiguous; start[g] is the permuted index of group
// g's first member. This "π order" is what the splittable tile kernel
// addresses: any block×block tile of π indices can be computed
// independently, enabling a single mega-place to be spread across
// workers.
type rowGroups struct {
	rep   []int32 // representative row index per group
	pop   []int32 // popcount of the group's shared bitset
	start []int32 // π start index per group, len = groups+1, start[G] = rows
	order []int32 // π index -> original row index, len = rows
}

// groups returns the number of distinct bitsets.
func (g *rowGroups) groups() int { return len(g.rep) }

// Compress computes (and caches) the row-group clique compression. The
// result is invalidated by any subsequent Set/SetRange. Compress is
// idempotent and cheap when cached; callers that share a BitMatrix across
// goroutines must call it (or GramCost, which calls it) before the
// concurrent phase, since the lazy computation is not synchronized.
func (m *BitMatrix) Compress() {
	m.compress()
}

func (m *BitMatrix) compress() *rowGroups {
	if m.grp != nil {
		return m.grp
	}
	g := &rowGroups{order: make([]int32, len(m.rows))}
	idx := make(map[string]int32, len(m.rows))
	buf := make([]byte, 8*m.words)
	members := make([][]int32, 0, len(m.rows))
	for r, row := range m.rows {
		for k, w := range row {
			binary.LittleEndian.PutUint64(buf[8*k:], w)
		}
		gi, ok := idx[string(buf)]
		if !ok {
			gi = int32(len(g.rep))
			idx[string(buf)] = gi
			g.rep = append(g.rep, int32(r))
			pop := 0
			for _, w := range row {
				pop += bits.OnesCount64(w)
			}
			g.pop = append(g.pop, int32(pop))
			members = append(members, nil)
		}
		members[gi] = append(members[gi], int32(r))
	}
	g.start = make([]int32, len(g.rep)+1)
	pos := int32(0)
	for gi, ms := range members {
		g.start[gi] = pos
		copy(g.order[pos:], ms)
		pos += int32(len(ms))
	}
	g.start[len(g.rep)] = pos
	m.grp = g
	return g
}

// NumGroups returns the number of distinct row bitsets (the g of the
// clique-compressed Gram kernel). It triggers Compress.
func (m *BitMatrix) NumGroups() int { return m.compress().groups() }

// andPop returns the popcount of ra & rb.
func andPop(ra, rb []uint64) int {
	w := 0
	for k := range ra {
		w += bits.OnesCount64(ra[k] & rb[k])
	}
	return w
}

// GramCliqueAppend appends the strict-upper-triangle entries of x·xᵀ to
// dst using the clique-compressed kernel and returns the extended slice.
// The emitted entry multiset is identical to GramAppend's (order aside):
// every pair with a shared slot appears exactly once with the same
// weight, so TriFromEntries over either kernel's output is bit-identical.
func (m *BitMatrix) GramCliqueAppend(dst []Entry) []Entry {
	n := len(m.rows)
	return m.GramTileAppend(dst, 0, n, 0, n)
}

// GramTileAppend appends the Gram entries of one block×block tile of the
// pairwise loop: all pairs (a, b) whose π indices (the group-contiguous
// row order established by Compress) satisfy πa ∈ [p0,p1), πb ∈ [q0,q1)
// and πa < πb. Tiles must be diagonal (p0==q0, p1==q1) or disjoint with
// q0 ≥ p1; a set of tiles that exactly covers the upper triangle of the
// π×π square therefore reproduces GramCliqueAppend entry-for-entry, which
// is what lets the balancer split one mega-place across workers without
// changing the synthesized network.
func (m *BitMatrix) GramTileAppend(dst []Entry, p0, p1, q0, q1 int) []Entry {
	g := m.compress()
	n := len(m.rows)
	p0, p1 = clampRange(p0, p1, n)
	q0, q1 = clampRange(q0, q1, n)
	if p0 >= p1 || q0 >= q1 {
		return dst
	}
	gaFirst := findGroup(g, p0)
	for ga := gaFirst; ga < g.groups() && int(g.start[ga]) < p1; ga++ {
		// Sub-span of group ga's members inside [p0, p1).
		aLo, aHi := intersect(int(g.start[ga]), int(g.start[ga+1]), p0, p1)
		if aLo >= aHi {
			continue
		}
		ra := m.rows[g.rep[ga]]
		// Intra-group clique: pairs inside ga restricted to the tile.
		// Both halves of the pair must come from this tile's spans with
		// πa < πb; the diagonal tile contributes the (aLo..aHi) triangle,
		// and an off-diagonal tile contributes the aSpan×bSpan rectangle
		// when the group straddles the tile boundary.
		if w := uint32(g.pop[ga]); w != 0 {
			bLo, bHi := intersect(int(g.start[ga]), int(g.start[ga+1]), q0, q1)
			for pa := aLo; pa < aHi; pa++ {
				ia := m.ids[g.order[pa]]
				lo := bLo
				if pa+1 > lo {
					lo = pa + 1
				}
				for pb := lo; pb < bHi; pb++ {
					i, j := ia, m.ids[g.order[pb]]
					if i > j {
						i, j = j, i
					}
					dst = append(dst, Entry{I: i, J: j, W: w})
				}
			}
		}
		// Inter-group products: one AND+popcount per group pair, emitted
		// for every member pair inside the tile spans.
		gbFirst := findGroup(g, q0)
		if gbFirst <= ga {
			gbFirst = ga + 1
		}
		for gb := gbFirst; gb < g.groups() && int(g.start[gb]) < q1; gb++ {
			bLo, bHi := intersect(int(g.start[gb]), int(g.start[gb+1]), q0, q1)
			if bLo >= bHi {
				continue
			}
			w := uint32(andPop(ra, m.rows[g.rep[gb]]))
			if w == 0 {
				continue
			}
			for pa := aLo; pa < aHi; pa++ {
				ia := m.ids[g.order[pa]]
				for pb := bLo; pb < bHi; pb++ {
					i, j := ia, m.ids[g.order[pb]]
					if i > j {
						i, j = j, i
					}
					dst = append(dst, Entry{I: i, J: j, W: w})
				}
			}
		}
	}
	return dst
}

func clampRange(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// intersect clips the span [lo, hi) to [p0, p1).
func intersect(lo, hi, p0, p1 int) (int, int) {
	if lo < p0 {
		lo = p0
	}
	if hi > p1 {
		hi = p1
	}
	return lo, hi
}

// findGroup returns the index of the group whose π span contains p (or
// the first group starting at/after p when p is a span boundary).
func findGroup(g *rowGroups, p int) int {
	// start is sorted; find the last group with start <= p.
	i := sort.Search(g.groups(), func(k int) bool { return int(g.start[k+1]) > p })
	return i
}

// GramTileCost estimates the work of GramTileAppend over the same tile,
// in the same unit as GramCost: AND·popcount word operations plus emitted
// entries. The balancer uses it to weigh split work units.
func (m *BitMatrix) GramTileCost(p0, p1, q0, q1 int) int {
	g := m.compress()
	n := len(m.rows)
	p0, p1 = clampRange(p0, p1, n)
	q0, q1 = clampRange(q0, q1, n)
	if p0 >= p1 || q0 >= q1 {
		return 0
	}
	gA := groupsOverlapping(g, p0, p1)
	gB := groupsOverlapping(g, q0, q1)
	var pairWork, emit int
	if p0 == q0 && p1 == q1 { // diagonal tile
		pairWork = gA * (gA - 1) / 2 * m.words
		np := p1 - p0
		emit = np * (np - 1) / 2
	} else { // disjoint tile
		pairWork = gA * gB * m.words
		emit = (p1 - p0) * (q1 - q0)
	}
	return pairWork + emit
}

func groupsOverlapping(g *rowGroups, p0, p1 int) int {
	if p0 >= p1 {
		return 0
	}
	return findGroup(g, p1-1) - findGroup(g, p0) + 1
}
