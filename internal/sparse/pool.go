package sparse

// This file implements buffer reuse for the synthesis hot path: the
// per-place BitMatrices and per-worker entry slices are otherwise
// allocated and dropped once per (file, slice) pass, which at scale makes
// the garbage collector a fifth pipeline stage. The pools below let the
// core pipeline recycle both across places, files and slices.

import "sync"

// entryPool recycles the per-worker Entry slices that GramTileAppend
// fills and TriFromEntries consumes.
var entryPool = sync.Pool{}

// GetEntries returns an empty Entry slice, reusing pooled capacity when
// available. Pair every GetEntries with a PutEntries once the slice's
// contents are no longer referenced.
func GetEntries() []Entry {
	if v := entryPool.Get(); v != nil {
		return (*(v.(*[]Entry)))[:0]
	}
	return nil
}

// PutEntries returns an Entry slice's capacity to the pool. The caller
// must not use the slice afterwards.
func PutEntries(es []Entry) {
	if cap(es) == 0 {
		return
	}
	es = es[:0]
	entryPool.Put(&es)
}

// matrixPool recycles whole BitMatrices including their row bitsets.
var matrixPool = sync.Pool{}

// GetBitMatrix returns an empty BitMatrix with the given column count,
// drawing structure and row bitsets from the pool when available. It is
// a drop-in replacement for NewBitMatrix on hot paths; pair it with
// Recycle.
func GetBitMatrix(cols int) *BitMatrix {
	if v := matrixPool.Get(); v != nil {
		m := v.(*BitMatrix)
		m.reset(cols)
		return m
	}
	return NewBitMatrix(cols)
}

// Recycle clears the matrix and returns it (and its row bitsets) to the
// pool. The caller must not use the matrix, its IDs slice, or any slice
// previously obtained from it afterwards.
func (m *BitMatrix) Recycle() {
	matrixPool.Put(m)
}

// reset restores the matrix to the empty state for the given column
// count, recycling the row arena. Because rows are carved from shared
// blocks, reclaiming them is one memclr per block — not one per row —
// and the blocks are width-agnostic, so a column-count change reuses
// them too.
func (m *BitMatrix) reset(cols int) {
	if cols <= 0 {
		panic("sparse: reset with non-positive cols")
	}
	// cur always has the largest capacity (blocks double), so keeping
	// just cur converges to a single right-sized block after a few uses.
	clear(m.cur)
	m.cur = m.cur[:0]
	for i := range m.blocks {
		m.blocks[i] = nil
	}
	m.blocks = m.blocks[:0]
	m.rows = m.rows[:0]
	m.ids = m.ids[:0]
	// Bumping the epoch invalidates every index entry in O(1); see the
	// index field's doc comment. On the (practically unreachable) wrap to
	// 0, fall back to clearing so stale epoch-0 values cannot alias.
	m.epoch++
	if m.epoch == 0 {
		clear(m.index)
		m.epoch = 1
	}
	m.grp = nil
	m.cols = cols
	m.words = (cols + 63) / 64
}
