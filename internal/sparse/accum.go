package sparse

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"slices"
)

// Accum accumulates weighted upper-triangular adjacency entries. Each
// worker in the synthesis pipeline owns one Accum; Accums are then merged
// pairwise (the paper's "reduce to a single adjacency matrix" step) and
// finalized into a Tri.
//
// Keys pack (i, j) with i < j into a single uint64, so accumulation is a
// single map operation per collocated pair.
type Accum struct {
	m map[uint64]uint32
}

// NewAccum returns an empty accumulator.
func NewAccum() *Accum {
	return &Accum{m: make(map[uint64]uint32)}
}

func packKey(i, j uint32) uint64 {
	if i > j {
		i, j = j, i
	}
	return uint64(i)<<32 | uint64(j)
}

// Add accumulates weight w onto the (i, j) pair. i and j are normalized
// so that Add(i, j, w) and Add(j, i, w) hit the same cell; self-pairs
// (i == j) are ignored, as the collocation network has no self-loops.
func (a *Accum) Add(i, j uint32, w uint32) {
	if i == j {
		return
	}
	a.m[packKey(i, j)] += w
}

// AddEntries accumulates a batch of entries.
func (a *Accum) AddEntries(es []Entry) {
	for _, e := range es {
		a.Add(e.I, e.J, e.W)
	}
}

// Weight returns the accumulated weight for the pair (i, j), 0 if absent.
func (a *Accum) Weight(i, j uint32) uint32 {
	if i == j {
		return 0
	}
	return a.m[packKey(i, j)]
}

// NNZ returns the number of distinct pairs accumulated so far.
func (a *Accum) NNZ() int { return len(a.m) }

// Merge folds other into a, leaving other unchanged.
func (a *Accum) Merge(other *Accum) {
	for k, w := range other.m {
		a.m[k] += w
	}
}

// Tri converts the accumulator into a finalized triangular matrix. The
// accumulator remains valid afterwards.
func (a *Accum) Tri() *Tri {
	t := &Tri{
		I: make([]uint32, 0, len(a.m)),
		J: make([]uint32, 0, len(a.m)),
		W: make([]uint32, 0, len(a.m)),
	}
	keys := make([]uint64, 0, len(a.m))
	for k := range a.m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		t.I = append(t.I, uint32(k>>32))
		t.J = append(t.J, uint32(k&0xffffffff))
		t.W = append(t.W, a.m[k])
	}
	return t
}

// Tri is a finalized sparse upper-triangular adjacency matrix in
// coordinate form, sorted by (I, J) with I < J. It fully defines the
// undirected weighted collocation network: entry k says persons I[k] and
// J[k] were collocated for W[k] time slots.
type Tri struct {
	I, J []uint32
	W    []uint32
}

// NNZ returns the number of stored (strictly upper-triangular) entries,
// i.e. the number of undirected edges.
func (t *Tri) NNZ() int { return len(t.I) }

// Weight returns the weight of pair (i, j), or 0 if the pair is absent.
// It runs in O(log nnz) via binary search on the sorted entries.
func (t *Tri) Weight(i, j uint32) uint32 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	key := uint64(i)<<32 | uint64(j)
	lo, hi := 0, len(t.I)
	for lo < hi {
		mid := (lo + hi) / 2
		k := uint64(t.I[mid])<<32 | uint64(t.J[mid])
		switch {
		case k < key:
			lo = mid + 1
		case k > key:
			hi = mid
		default:
			return t.W[mid]
		}
	}
	return 0
}

// TotalWeight returns the sum of all edge weights (total collocated
// person-pair hours).
func (t *Tri) TotalWeight() uint64 {
	var s uint64
	for _, w := range t.W {
		s += uint64(w)
	}
	return s
}

// MaxVertex returns the largest person ID referenced, or 0 if empty.
func (t *Tri) MaxVertex() uint32 {
	var m uint32
	for k := range t.I {
		if t.J[k] > m {
			m = t.J[k] // J > I always, so J suffices
		}
	}
	return m
}

// Vertices returns the number of distinct person IDs that appear in at
// least one entry. For the dense ID spaces produced by simulations it
// marks IDs in a bitset and popcounts — no hashing, no sorting; when the
// ID space is much larger than the entry count (sparse external IDs) it
// falls back to a sort-and-count pass over the collected IDs.
func (t *Tri) Vertices() int {
	if len(t.I) == 0 {
		return 0
	}
	max := int(t.MaxVertex())
	// Bitset words needed vs. the 2·nnz IDs a sort pass would touch.
	if words := max/64 + 1; words <= 4*len(t.I)+1024 {
		bs := make([]uint64, words)
		for k := range t.I {
			bs[t.I[k]>>6] |= 1 << (t.I[k] & 63)
			bs[t.J[k]>>6] |= 1 << (t.J[k] & 63)
		}
		n := 0
		for _, w := range bs {
			n += bits.OnesCount64(w)
		}
		return n
	}
	ids := make([]uint32, 0, 2*len(t.I))
	ids = append(ids, t.I...)
	ids = append(ids, t.J...)
	slices.Sort(ids)
	n := 1
	for k := 1; k < len(ids); k++ {
		if ids[k] != ids[k-1] {
			n++
		}
	}
	return n
}

// TriFromEntries builds a Tri from unsorted entries, normalizing pair
// order, dropping self-pairs, and summing duplicates. The input slice is
// reordered in place. Large inputs are sorted with an LSD radix sort on
// the packed (I, J) key — O(n) passes instead of O(n log n) comparisons —
// which is the coalescing step of every stage-4 synthesis worker.
func TriFromEntries(es []Entry) *Tri {
	kept := es[:0]
	for _, e := range es {
		if e.I == e.J {
			continue
		}
		if e.I > e.J {
			e.I, e.J = e.J, e.I
		}
		kept = append(kept, e)
	}
	es = kept
	if len(es) >= radixMinLen {
		radixSortEntries(es)
	} else {
		slices.SortFunc(es, func(a, b Entry) int {
			ka, kb := entryKey(a), entryKey(b)
			switch {
			case ka < kb:
				return -1
			case ka > kb:
				return 1
			default:
				return 0
			}
		})
	}
	// Count distinct keys first so the output slices are allocated once
	// at exactly the coalesced size and filled with indexed writes — the
	// second pass over the (now cache-warm) entries is far cheaper than
	// append-growth reallocations.
	uniq := 0
	for k := range es {
		if k == 0 || entryKey(es[k]) != entryKey(es[k-1]) {
			uniq++
		}
	}
	t := &Tri{
		I: make([]uint32, uniq),
		J: make([]uint32, uniq),
		W: make([]uint32, uniq),
	}
	n := -1
	for k, e := range es {
		if k == 0 || entryKey(e) != entryKey(es[k-1]) {
			n++
			t.I[n], t.J[n], t.W[n] = e.I, e.J, e.W
		} else {
			t.W[n] += e.W
		}
	}
	return t
}

// SumTris sums any number of triangular matrices element-wise — the
// paper's final cross-log-file aggregation step A = Σ A_file.
func SumTris(ts ...*Tri) *Tri {
	acc := NewAccum()
	for _, t := range ts {
		if t == nil {
			continue
		}
		for k := range t.I {
			acc.Add(t.I[k], t.J[k], t.W[k])
		}
	}
	return acc.Tri()
}

// MarshalBinary serializes the matrix as nnz | I... | J... | W...
// (little-endian u32 words) for transport between the processes of a
// distributed synthesis run.
func (t *Tri) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4+12*len(t.I))
	le := binary.LittleEndian
	le.PutUint32(out, uint32(len(t.I)))
	off := 4
	for _, col := range [][]uint32{t.I, t.J, t.W} {
		for _, v := range col {
			le.PutUint32(out[off:], v)
			off += 4
		}
	}
	return out, nil
}

// UnmarshalBinary reverses MarshalBinary.
func (t *Tri) UnmarshalBinary(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("sparse: Tri blob too short")
	}
	le := binary.LittleEndian
	n := int(le.Uint32(b))
	if uint64(len(b)) != 4+12*uint64(uint32(n)) {
		return fmt.Errorf("sparse: Tri blob of %d bytes does not hold %d entries", len(b), n)
	}
	t.I = make([]uint32, n)
	t.J = make([]uint32, n)
	t.W = make([]uint32, n)
	off := 4
	for _, col := range [][]uint32{t.I, t.J, t.W} {
		for k := range col {
			col[k] = le.Uint32(b[off:])
			off += 4
		}
	}
	return nil
}

// Filter returns a new Tri containing only the entries for which keep
// returns true — used e.g. to restrict a collocation network to edges
// within one demographic group (the paper's Figure 5).
func (t *Tri) Filter(keep func(i, j uint32) bool) *Tri {
	out := &Tri{}
	for k := range t.I {
		if keep(t.I[k], t.J[k]) {
			out.I = append(out.I, t.I[k])
			out.J = append(out.J, t.J[k])
			out.W = append(out.W, t.W[k])
		}
	}
	return out
}

// Equal reports whether two triangular matrices contain exactly the same
// entries with the same weights.
func (t *Tri) Equal(o *Tri) bool {
	if len(t.I) != len(o.I) {
		return false
	}
	for k := range t.I {
		if t.I[k] != o.I[k] || t.J[k] != o.J[k] || t.W[k] != o.W[k] {
			return false
		}
	}
	return true
}
