package sparse

import (
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func slicesSortFunc(es []Entry) {
	slices.SortFunc(es, func(a, b Entry) int {
		ka, kb := entryKey(a), entryKey(b)
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		default:
			return 0
		}
	})
}

// randomMatrix builds a random BitMatrix whose rows fall into a bounded
// number of distinct bitset patterns, so group sizes vary.
func randomMatrix(r *rng.Source, persons, patterns, cols int) *BitMatrix {
	m := NewBitMatrix(cols)
	// Pre-generate the patterns as (start, stop) unions.
	type span struct{ lo, hi int }
	pats := make([][]span, patterns)
	for p := range pats {
		n := 1 + r.Intn(3)
		for k := 0; k < n; k++ {
			lo := r.Intn(cols)
			pats[p] = append(pats[p], span{lo, lo + 1 + r.Intn(cols/2+1)})
		}
	}
	for id := 0; id < persons; id++ {
		pat := pats[r.Intn(patterns)]
		for _, s := range pat {
			m.SetRange(uint32(id), s.lo, s.hi)
		}
	}
	return m
}

// TestGramCliqueMatchesDenseRandom: the clique-compressed kernel must be
// bit-identical to the dense pairwise kernel (and to the brute-force
// dense reference) on random matrices.
func TestGramCliqueMatchesDenseRandom(t *testing.T) {
	r := rng.New(4242)
	for trial := 0; trial < 40; trial++ {
		cols := 1 + r.Intn(200)
		persons := r.Intn(30)
		patterns := 1 + r.Intn(6)
		m := randomMatrix(r, persons, patterns, cols)
		dense := TriFromEntries(m.GramAppend(nil))
		clique := TriFromEntries(m.GramCliqueAppend(nil))
		if !clique.Equal(dense) {
			t.Fatalf("trial %d (p=%d g=%d): clique kernel differs from dense", trial, m.Rows(), m.NumGroups())
		}
		// Cross-check against the brute-force dense reference too.
		want := denseGram(m)
		if clique.NNZ() != len(want) {
			t.Fatalf("trial %d: clique nnz %d, dense reference %d", trial, clique.NNZ(), len(want))
		}
		for k, w := range want {
			if got := clique.Weight(uint32(k>>32), uint32(k&0xffffffff)); got != w {
				t.Fatalf("trial %d: weight mismatch %d != %d", trial, got, w)
			}
		}
	}
}

// Extreme: every row identical — one group, pure clique emission.
func TestGramCliqueAllIdenticalRows(t *testing.T) {
	m := NewBitMatrix(168)
	for id := uint32(0); id < 25; id++ {
		m.SetRange(id, 8, 17)
	}
	if g := m.NumGroups(); g != 1 {
		t.Fatalf("identical rows formed %d groups, want 1", g)
	}
	dense := TriFromEntries(m.GramAppend(nil))
	clique := TriFromEntries(m.GramCliqueAppend(nil))
	if !clique.Equal(dense) {
		t.Fatal("clique kernel differs from dense on identical rows")
	}
	if clique.NNZ() != 25*24/2 {
		t.Fatalf("clique nnz = %d, want %d", clique.NNZ(), 25*24/2)
	}
	for k := range clique.W {
		if clique.W[k] != 9 {
			t.Fatalf("clique weight %d, want 9", clique.W[k])
		}
	}
}

// Extreme: every row distinct — p groups, degenerates to the dense loop.
func TestGramCliqueAllDistinctRows(t *testing.T) {
	m := NewBitMatrix(300)
	for id := uint32(0); id < 20; id++ {
		m.SetRange(id, int(id), int(id)+30)
	}
	if g := m.NumGroups(); g != 20 {
		t.Fatalf("distinct rows formed %d groups, want 20", g)
	}
	dense := TriFromEntries(m.GramAppend(nil))
	clique := TriFromEntries(m.GramCliqueAppend(nil))
	if !clique.Equal(dense) {
		t.Fatal("clique kernel differs from dense on distinct rows")
	}
}

func TestGramCliqueEmptyMatrix(t *testing.T) {
	m := NewBitMatrix(24)
	if out := m.GramCliqueAppend(nil); len(out) != 0 {
		t.Fatalf("empty matrix emitted %d entries", len(out))
	}
	if m.NumGroups() != 0 {
		t.Fatal("empty matrix has groups")
	}
	if m.GramCost() != 0 {
		t.Fatal("empty matrix has nonzero cost")
	}
}

// Compression must be invalidated by mutation.
func TestCompressInvalidatedByMutation(t *testing.T) {
	m := NewBitMatrix(48)
	m.SetRange(1, 0, 10)
	m.SetRange(2, 0, 10)
	if g := m.NumGroups(); g != 1 {
		t.Fatalf("groups = %d, want 1", g)
	}
	m.Set(2, 20) // rows 1 and 2 now differ
	if g := m.NumGroups(); g != 2 {
		t.Fatalf("groups after mutation = %d, want 2", g)
	}
	dense := TriFromEntries(m.GramAppend(nil))
	clique := TriFromEntries(m.GramCliqueAppend(nil))
	if !clique.Equal(dense) {
		t.Fatal("stale compression survived a mutation")
	}
}

// tileCover builds a set of diagonal + disjoint tiles covering the upper
// triangle of the π×π square with nb row blocks.
func tileCover(rows, nb int) [][4]int {
	if nb < 1 {
		nb = 1
	}
	bounds := make([]int, nb+1)
	for b := 0; b <= nb; b++ {
		bounds[b] = rows * b / nb
	}
	var tiles [][4]int
	for bi := 0; bi < nb; bi++ {
		for bj := bi; bj < nb; bj++ {
			tiles = append(tiles, [4]int{bounds[bi], bounds[bi+1], bounds[bj], bounds[bj+1]})
		}
	}
	return tiles
}

// TestGramTilesReproduceWhole: any block×block tiling of the pairwise
// loop must reproduce the untiled result bit-for-bit after coalescing.
func TestGramTilesReproduceWhole(t *testing.T) {
	r := rng.New(777)
	for trial := 0; trial < 30; trial++ {
		m := randomMatrix(r, 1+r.Intn(40), 1+r.Intn(8), 1+r.Intn(170))
		whole := TriFromEntries(m.GramCliqueAppend(nil))
		for _, nb := range []int{1, 2, 3, 5, 8} {
			var es []Entry
			var costSum int
			for _, tile := range tileCover(m.Rows(), nb) {
				es = m.GramTileAppend(es, tile[0], tile[1], tile[2], tile[3])
				costSum += m.GramTileCost(tile[0], tile[1], tile[2], tile[3])
			}
			tiled := TriFromEntries(es)
			if !tiled.Equal(whole) {
				t.Fatalf("trial %d: %d-block tiling differs from whole (p=%d g=%d)",
					trial, nb, m.Rows(), m.NumGroups())
			}
			if whole.NNZ() > 0 && costSum <= 0 {
				t.Fatalf("trial %d: tiling cost %d not positive", trial, costSum)
			}
		}
	}
}

// Property: quick-check the tiling invariance once more over the full
// input space quick generates.
func TestQuickGramTileInvariance(t *testing.T) {
	f := func(seed uint64, nbRaw uint8) bool {
		r := rng.New(seed)
		m := randomMatrix(r, r.Intn(25), 1+r.Intn(5), 1+r.Intn(100))
		nb := 1 + int(nbRaw%6)
		whole := TriFromEntries(m.GramCliqueAppend(nil))
		var es []Entry
		for _, tile := range tileCover(m.Rows(), nb) {
			es = m.GramTileAppend(es, tile[0], tile[1], tile[2], tile[3])
		}
		return TriFromEntries(es).Equal(whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGramCostCompressed(t *testing.T) {
	// 10 identical rows: g = 1, cost = pure emission p(p-1)/2.
	m := NewBitMatrix(168)
	for id := uint32(0); id < 10; id++ {
		m.SetRange(id, 0, 8)
	}
	if got, want := m.GramCost(), 45; got != want {
		t.Fatalf("identical-rows GramCost = %d, want %d", got, want)
	}
	// 10 distinct rows: g = 10, cost adds the pairwise AND work.
	d := NewBitMatrix(168)
	for id := uint32(0); id < 10; id++ {
		d.SetRange(id, int(id), int(id)+8)
	}
	if got, want := d.GramCost(), 45*d.words+45; got != want {
		t.Fatalf("distinct-rows GramCost = %d, want %d", got, want)
	}
	if m.GramCost() >= d.GramCost() {
		t.Fatal("compressed place should cost less than uncompressed")
	}
}

func TestBitMatrixPoolRoundTrip(t *testing.T) {
	r := rng.New(31337)
	build := func(m *BitMatrix, seed uint64) {
		q := rng.New(seed)
		for k := 0; k < 30; k++ {
			id := uint32(q.Intn(20))
			lo := q.Intn(100)
			m.SetRange(id, lo, lo+1+q.Intn(20))
		}
	}
	for trial := 0; trial < 10; trial++ {
		cols := 50 + r.Intn(200)
		seed := uint64(trial)
		fresh := NewBitMatrix(cols)
		build(fresh, seed)
		want := TriFromEntries(fresh.GramCliqueAppend(nil))

		pooled := GetBitMatrix(cols)
		build(pooled, seed)
		got := TriFromEntries(pooled.GramCliqueAppend(nil))
		if !got.Equal(want) {
			t.Fatalf("trial %d: pooled matrix differs from fresh", trial)
		}
		if pooled.NNZ() != fresh.NNZ() {
			t.Fatalf("trial %d: pooled nnz %d != fresh %d", trial, pooled.NNZ(), fresh.NNZ())
		}
		pooled.Recycle()
	}
}

func TestEntryPoolRoundTrip(t *testing.T) {
	es := GetEntries()
	es = append(es, Entry{I: 1, J: 2, W: 3})
	PutEntries(es)
	es2 := GetEntries()
	if len(es2) != 0 {
		t.Fatalf("pooled entries not reset: len %d", len(es2))
	}
	PutEntries(es2)
	PutEntries(nil) // must not panic
}

// --- Benchmarks -------------------------------------------------------

// benchCliqueMatrix builds an identical-rows place: p persons who all
// share the same month-long schedule bitset (the home/work shape that
// dominates real logs).
func benchCliqueMatrix(p, cols, patterns int) *BitMatrix {
	r := rng.New(9)
	m := NewBitMatrix(cols)
	starts := make([]int, patterns)
	for i := range starts {
		starts[i] = r.Intn(cols / 2)
	}
	for id := 0; id < p; id++ {
		lo := starts[id%patterns]
		m.SetRange(uint32(id), lo, lo+cols/3)
	}
	m.Compress()
	return m
}

// BenchmarkGramKernel contrasts the dense pairwise kernel with the
// clique-compressed one (and its tiled variant) on an identical-rows
// place of 300 persons over a 4-week window.
func BenchmarkGramKernel(b *testing.B) {
	const persons, cols = 300, 672
	ident := benchCliqueMatrix(persons, cols, 1)
	mixed := benchCliqueMatrix(persons, cols, 16)
	bench := func(name string, m *BitMatrix, fn func(dst []Entry) []Entry) {
		b.Run(name, func(b *testing.B) {
			var dst []Entry
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = fn(dst[:0])
			}
			b.ReportMetric(float64(len(dst)), "entries")
		})
	}
	bench("dense", ident, ident.GramAppend)
	bench("clique", ident, ident.GramCliqueAppend)
	bench("split", ident, func(dst []Entry) []Entry {
		for _, tile := range tileCover(ident.Rows(), 4) {
			dst = ident.GramTileAppend(dst, tile[0], tile[1], tile[2], tile[3])
		}
		return dst
	})
	bench("dense16groups", mixed, mixed.GramAppend)
	bench("clique16groups", mixed, mixed.GramCliqueAppend)
}

func benchTris(k, nnz int) []*Tri {
	r := rng.New(uint64(k)*1000 + uint64(nnz))
	ts := make([]*Tri, k)
	for i := range ts {
		acc := NewAccum()
		for e := 0; e < nnz; e++ {
			acc.Add(uint32(r.Intn(5000)), uint32(r.Intn(5000)), uint32(1+r.Intn(8)))
		}
		ts[i] = acc.Tri()
	}
	return ts
}

// BenchmarkMerge contrasts the legacy linear best-head scan with the
// tournament tree and the parallel pairwise merge at k=16 inputs.
func BenchmarkMerge(b *testing.B) {
	ts := benchTris(16, 20000)
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mergeTrisScan(ts...)
		}
	})
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MergeTris(ts...)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MergeTrisParallel(8, ts...)
		}
	})
}

func sortEntriesStd(es []Entry) {
	slicesSortFunc(es)
}

// BenchmarkCoalesce contrasts the comparison sort with the radix sort on
// a worker-sized entry batch.
func BenchmarkCoalesce(b *testing.B) {
	r := rng.New(5)
	base := make([]Entry, 200000)
	for k := range base {
		base[k] = Entry{I: uint32(r.Intn(5000)), J: uint32(r.Intn(5000)), W: 1}
	}
	scratch := make([]Entry, len(base))
	b.Run("radix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, base)
			radixSortEntries(scratch)
		}
	})
	b.Run("stdsort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, base)
			sortEntriesStd(scratch)
		}
	})
}
