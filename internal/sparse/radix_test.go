package sparse

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRadixSortMatchesComparisonSort(t *testing.T) {
	r := rng.New(606)
	for trial := 0; trial < 20; trial++ {
		n := radixMinLen + r.Intn(4000)
		a := make([]Entry, n)
		for k := range a {
			// Mix small and huge IDs so high digit passes are exercised
			// in some trials and skipped in others.
			var i, j uint32
			if trial%2 == 0 {
				i, j = uint32(r.Intn(500)), uint32(r.Intn(500))
			} else {
				i, j = uint32(r.Uint64()), uint32(r.Uint64())
			}
			a[k] = Entry{I: i, J: j, W: uint32(r.Intn(100))}
		}
		b := append([]Entry(nil), a...)
		radixSortEntries(a)
		slicesSortFunc(b)
		for k := range a {
			if entryKey(a[k]) != entryKey(b[k]) {
				t.Fatalf("trial %d: radix order diverges at %d: %x != %x",
					trial, k, entryKey(a[k]), entryKey(b[k]))
			}
		}
	}
}

// TestRadixSort16MatchesComparisonSort covers the large-input 16-bit
// digit variant, which kicks in at radix16MinLen entries.
func TestRadixSort16MatchesComparisonSort(t *testing.T) {
	r := rng.New(607)
	for trial := 0; trial < 4; trial++ {
		n := radix16MinLen + r.Intn(radix16MinLen)
		a := make([]Entry, n)
		for k := range a {
			// Small IDs skip the high 16-bit digits; huge IDs force all
			// four passes.
			var i, j uint32
			if trial%2 == 0 {
				i, j = uint32(r.Intn(5000)), uint32(r.Intn(5000))
			} else {
				i, j = uint32(r.Uint64()), uint32(r.Uint64())
			}
			a[k] = Entry{I: i, J: j, W: uint32(r.Intn(100))}
		}
		b := append([]Entry(nil), a...)
		radixSortEntries(a)
		slicesSortFunc(b)
		for k := range a {
			if entryKey(a[k]) != entryKey(b[k]) {
				t.Fatalf("trial %d: 16-bit radix order diverges at %d", trial, k)
			}
		}
	}
	// All-identical keys at 16-bit scale: every pass skipped.
	same := make([]Entry, radix16MinLen)
	for k := range same {
		same[k] = Entry{I: 5, J: 6, W: 1}
	}
	radixSortEntries(same)
	for _, e := range same {
		if e.I != 5 || e.J != 6 {
			t.Fatal("identical-key 16-bit sort corrupted entries")
		}
	}
}

func TestRadixSortDegenerateInputs(t *testing.T) {
	radixSortEntries(nil)
	one := []Entry{{I: 3, J: 9, W: 1}}
	radixSortEntries(one)
	if one[0] != (Entry{I: 3, J: 9, W: 1}) {
		t.Fatal("single-entry sort changed the entry")
	}
	// All-identical keys: every pass is skipped.
	same := make([]Entry, 1000)
	for k := range same {
		same[k] = Entry{I: 7, J: 8, W: uint32(k)}
	}
	radixSortEntries(same)
	var sum uint64
	for _, e := range same {
		if e.I != 7 || e.J != 8 {
			t.Fatal("identical-key sort corrupted entries")
		}
		sum += uint64(e.W)
	}
	if sum != 999*1000/2 {
		t.Fatal("identical-key sort lost weights")
	}
}

// Property: the tournament-tree MergeTris equals the legacy linear scan
// on arbitrary inputs, including nils, empties and duplicate keys.
func TestQuickMergeTournamentEqualsScan(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		r := rng.New(seed)
		k := 1 + int(kRaw%9)
		ts := make([]*Tri, k)
		for i := range ts {
			switch r.Intn(5) {
			case 0:
				ts[i] = nil
			case 1:
				ts[i] = &Tri{}
			default:
				acc := NewAccum()
				for e := 0; e < r.Intn(50); e++ {
					acc.Add(uint32(r.Intn(12)), uint32(r.Intn(12)), uint32(1+r.Intn(5)))
				}
				ts[i] = acc.Tri()
			}
		}
		want := mergeTrisScan(ts...)
		if !MergeTris(ts...).Equal(want) {
			return false
		}
		return MergeTrisParallel(4, ts...).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTrisDoesNotAliasSingleInput(t *testing.T) {
	acc := NewAccum()
	acc.Add(1, 2, 3)
	in := acc.Tri()
	for _, out := range []*Tri{MergeTris(in), MergeTrisParallel(4, in)} {
		if !out.Equal(in) {
			t.Fatal("single-input merge changed entries")
		}
		out.W[0] = 99
		if in.W[0] != 3 {
			t.Fatal("merge output aliases its input")
		}
		in.W[0] = 3
	}
}

func TestMergeTrisParallelManyInputs(t *testing.T) {
	// MergeTrisParallel clamps its worker count to GOMAXPROCS, so raise
	// it for the test's duration: on a single-CPU host the pairwise
	// parallel rounds would otherwise never be exercised.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	ts := benchTris(13, 200)
	want := mergeTrisScan(ts...)
	for _, workers := range []int{0, 1, 2, 3, 8, 32} {
		if got := MergeTrisParallel(workers, ts...); !got.Equal(want) {
			t.Fatalf("workers=%d: parallel merge differs from scan", workers)
		}
	}
}

// FuzzTriBinaryRoundTrip fuzzes UnmarshalBinary with arbitrary blobs:
// either it errors, or re-marshalling reproduces the input bytes exactly.
func FuzzTriBinaryRoundTrip(f *testing.F) {
	acc := NewAccum()
	acc.Add(1, 2, 3)
	acc.Add(4, 5, 6)
	seed, _ := acc.Tri().MarshalBinary()
	f.Add(seed)
	empty, _ := NewAccum().Tri().MarshalBinary()
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})                  // truncated: claims 1 entry, no payload
	f.Add([]byte{255, 255, 255, 255, 0, 1, 2}) // huge count, tiny blob
	f.Fuzz(func(t *testing.T, blob []byte) {
		var tr Tri
		if err := tr.UnmarshalBinary(blob); err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		out, err := tr.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(out, blob) {
			t.Fatalf("round trip changed bytes: %x -> %x", blob, out)
		}
	})
}

// FuzzTriFromEntries fuzzes the radix-coalesce path against the Accum
// oracle on arbitrary entry bytes.
func FuzzTriFromEntries(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, rep uint8) {
		var es []Entry
		acc := NewAccum()
		for off := 0; off+12 <= len(raw) && len(es) < 2000; off += 12 {
			e := Entry{
				I: binary.LittleEndian.Uint32(raw[off:]),
				J: binary.LittleEndian.Uint32(raw[off+4:]),
				W: binary.LittleEndian.Uint32(raw[off+8:]),
			}
			for k := 0; k <= int(rep%4); k++ {
				es = append(es, e)
				acc.Add(e.I, e.J, e.W)
			}
		}
		if !TriFromEntries(es).Equal(acc.Tri()) {
			t.Fatal("TriFromEntries differs from Accum oracle")
		}
	})
}
