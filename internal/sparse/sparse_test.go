package sparse

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// denseGram is the brute-force reference: builds the dense p×t matrix and
// multiplies, returning weights indexed by packed (i<<32|j) with i<j.
func denseGram(m *BitMatrix) map[uint64]uint32 {
	ids := m.IDs()
	out := make(map[uint64]uint32)
	for a := 0; a < len(ids); a++ {
		for b := a + 1; b < len(ids); b++ {
			w := uint32(0)
			for t := 0; t < m.Cols(); t++ {
				if m.Get(ids[a], t) && m.Get(ids[b], t) {
					w++
				}
			}
			if w > 0 {
				i, j := ids[a], ids[b]
				if i > j {
					i, j = j, i
				}
				out[uint64(i)<<32|uint64(j)] = w
			}
		}
	}
	return out
}

func TestBitMatrixSetGet(t *testing.T) {
	m := NewBitMatrix(100)
	m.Set(7, 0)
	m.Set(7, 63)
	m.Set(7, 64)
	m.Set(7, 99)
	for _, tt := range []struct {
		slot int
		want bool
	}{{0, true}, {1, false}, {63, true}, {64, true}, {65, false}, {99, true}} {
		if got := m.Get(7, tt.slot); got != tt.want {
			t.Errorf("Get(7,%d) = %v, want %v", tt.slot, got, tt.want)
		}
	}
	if m.Get(8, 0) {
		t.Error("unset person reports presence")
	}
	if m.Rows() != 1 {
		t.Errorf("Rows() = %d, want 1", m.Rows())
	}
}

func TestBitMatrixGetOutOfRange(t *testing.T) {
	m := NewBitMatrix(10)
	m.Set(1, 5)
	if m.Get(1, -1) || m.Get(1, 10) {
		t.Error("out-of-range Get should be false")
	}
}

func TestBitMatrixSetPanicsOutOfRange(t *testing.T) {
	m := NewBitMatrix(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Set out of range did not panic")
		}
	}()
	m.Set(1, 10)
}

func TestSetRangeMatchesSetLoop(t *testing.T) {
	for _, c := range []struct{ start, stop int }{
		{0, 1}, {0, 64}, {0, 65}, {3, 61}, {63, 65}, {64, 128}, {5, 200},
		{100, 150}, {-5, 10}, {160, 300}, {10, 10}, {20, 5},
	} {
		a := NewBitMatrix(168)
		b := NewBitMatrix(168)
		a.SetRange(42, c.start, c.stop)
		lo, hi := c.start, c.stop
		if lo < 0 {
			lo = 0
		}
		if hi > 168 {
			hi = 168
		}
		for s := lo; s < hi; s++ {
			b.Set(42, s)
		}
		for s := 0; s < 168; s++ {
			if a.Get(42, s) != b.Get(42, s) {
				t.Fatalf("range [%d,%d): slot %d mismatch", c.start, c.stop, s)
			}
		}
		if a.NNZ() != b.NNZ() {
			t.Fatalf("range [%d,%d): nnz %d != %d", c.start, c.stop, a.NNZ(), b.NNZ())
		}
	}
}

func TestSetRangeEmptyAllocatesNoRow(t *testing.T) {
	m := NewBitMatrix(24)
	m.SetRange(9, 10, 10)
	m.SetRange(9, 30, 40)
	if m.Rows() != 0 {
		t.Fatalf("empty SetRange created %d rows", m.Rows())
	}
}

func TestNNZAndRowNNZ(t *testing.T) {
	m := NewBitMatrix(168)
	m.SetRange(1, 0, 10)
	m.SetRange(2, 5, 20)
	m.Set(2, 5) // duplicate set must not double count
	if got := m.NNZ(); got != 25 {
		t.Errorf("NNZ = %d, want 25", got)
	}
	if got := m.RowNNZ(1); got != 10 {
		t.Errorf("RowNNZ(1) = %d, want 10", got)
	}
	if got := m.RowNNZ(2); got != 15 {
		t.Errorf("RowNNZ(2) = %d, want 15", got)
	}
	if got := m.RowNNZ(99); got != 0 {
		t.Errorf("RowNNZ(99) = %d, want 0", got)
	}
}

func TestGramSimple(t *testing.T) {
	// Persons 10 and 20 overlap at slots 2,3; person 30 never overlaps.
	m := NewBitMatrix(8)
	m.SetRange(10, 0, 4)
	m.SetRange(20, 2, 6)
	m.SetRange(30, 7, 8)
	es := m.Gram()
	if len(es) != 1 {
		t.Fatalf("Gram returned %d entries, want 1: %v", len(es), es)
	}
	e := es[0]
	if e.I != 10 || e.J != 20 || e.W != 2 {
		t.Fatalf("Gram entry = %+v, want {10 20 2}", e)
	}
}

func TestGramOrderedPairs(t *testing.T) {
	// Insertion order must not affect I<J normalization.
	m := NewBitMatrix(4)
	m.Set(50, 1)
	m.Set(3, 1)
	es := m.Gram()
	if len(es) != 1 || es[0].I != 3 || es[0].J != 50 {
		t.Fatalf("Gram = %v, want single {3 50 1}", es)
	}
}

func TestGramMatchesDenseRandom(t *testing.T) {
	r := rng.New(1234)
	for trial := 0; trial < 30; trial++ {
		cols := 1 + r.Intn(170)
		m := NewBitMatrix(cols)
		persons := 1 + r.Intn(12)
		for p := 0; p < persons; p++ {
			id := uint32(r.Intn(40))
			n := r.Intn(5)
			for k := 0; k < n; k++ {
				start := r.Intn(cols)
				m.SetRange(id, start, start+1+r.Intn(10))
			}
		}
		want := denseGram(m)
		acc := NewAccum()
		acc.AddEntries(m.Gram())
		if acc.NNZ() != len(want) {
			t.Fatalf("trial %d: nnz %d != dense %d", trial, acc.NNZ(), len(want))
		}
		for k, w := range want {
			i, j := uint32(k>>32), uint32(k&0xffffffff)
			if got := acc.Weight(i, j); got != w {
				t.Fatalf("trial %d: weight(%d,%d) = %d, want %d", trial, i, j, got, w)
			}
		}
	}
}

func TestGramIntoMatchesGram(t *testing.T) {
	r := rng.New(99)
	m := NewBitMatrix(168)
	for p := 0; p < 20; p++ {
		id := uint32(r.Intn(30))
		start := r.Intn(160)
		m.SetRange(id, start, start+1+r.Intn(8))
	}
	a1 := NewAccum()
	a1.AddEntries(m.Gram())
	a2 := NewAccum()
	m.GramInto(a2)
	if !a1.Tri().Equal(a2.Tri()) {
		t.Fatal("GramInto differs from Gram")
	}
}

func TestAccumAddSymmetricAndSelf(t *testing.T) {
	a := NewAccum()
	a.Add(5, 9, 2)
	a.Add(9, 5, 3)
	a.Add(7, 7, 100) // self-loop ignored
	if got := a.Weight(5, 9); got != 5 {
		t.Errorf("Weight(5,9) = %d, want 5", got)
	}
	if got := a.Weight(9, 5); got != 5 {
		t.Errorf("Weight(9,5) = %d, want 5", got)
	}
	if got := a.Weight(7, 7); got != 0 {
		t.Errorf("self weight = %d, want 0", got)
	}
	if a.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1", a.NNZ())
	}
}

func TestAccumMerge(t *testing.T) {
	a := NewAccum()
	b := NewAccum()
	a.Add(1, 2, 3)
	b.Add(1, 2, 4)
	b.Add(3, 4, 1)
	a.Merge(b)
	if got := a.Weight(1, 2); got != 7 {
		t.Errorf("merged weight(1,2) = %d, want 7", got)
	}
	if got := a.Weight(3, 4); got != 1 {
		t.Errorf("merged weight(3,4) = %d, want 1", got)
	}
	// b unchanged
	if got := b.Weight(1, 2); got != 4 {
		t.Errorf("source accum mutated: weight(1,2) = %d, want 4", got)
	}
}

func TestTriSortedAndLookup(t *testing.T) {
	a := NewAccum()
	a.Add(9, 1, 2)
	a.Add(3, 7, 5)
	a.Add(1, 2, 1)
	tr := a.Tri()
	if tr.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", tr.NNZ())
	}
	for k := 1; k < tr.NNZ(); k++ {
		prev := uint64(tr.I[k-1])<<32 | uint64(tr.J[k-1])
		cur := uint64(tr.I[k])<<32 | uint64(tr.J[k])
		if prev >= cur {
			t.Fatal("Tri entries not strictly sorted")
		}
	}
	if tr.Weight(1, 9) != 2 || tr.Weight(9, 1) != 2 {
		t.Error("Weight lookup failed for (1,9)")
	}
	if tr.Weight(2, 9) != 0 {
		t.Error("absent pair should weigh 0")
	}
	if tr.Weight(3, 3) != 0 {
		t.Error("diagonal should weigh 0")
	}
}

func TestTriStats(t *testing.T) {
	a := NewAccum()
	a.Add(1, 2, 3)
	a.Add(2, 5, 4)
	tr := a.Tri()
	if got := tr.TotalWeight(); got != 7 {
		t.Errorf("TotalWeight = %d, want 7", got)
	}
	if got := tr.MaxVertex(); got != 5 {
		t.Errorf("MaxVertex = %d, want 5", got)
	}
	if got := tr.Vertices(); got != 3 {
		t.Errorf("Vertices = %d, want 3", got)
	}
}

func TestTriEmptyStats(t *testing.T) {
	tr := NewAccum().Tri()
	if tr.NNZ() != 0 || tr.TotalWeight() != 0 || tr.MaxVertex() != 0 || tr.Vertices() != 0 {
		t.Fatal("empty Tri stats not all zero")
	}
}

func TestSumTris(t *testing.T) {
	a := NewAccum()
	a.Add(1, 2, 3)
	b := NewAccum()
	b.Add(1, 2, 4)
	b.Add(8, 9, 1)
	s := SumTris(a.Tri(), b.Tri(), nil)
	if got := s.Weight(1, 2); got != 7 {
		t.Errorf("sum weight(1,2) = %d, want 7", got)
	}
	if got := s.Weight(8, 9); got != 1 {
		t.Errorf("sum weight(8,9) = %d, want 1", got)
	}
	if s.NNZ() != 2 {
		t.Errorf("sum NNZ = %d, want 2", s.NNZ())
	}
}

// Property: merging accumulators in any grouping yields the same Tri —
// the tree-reduction used by the pipeline is order-independent.
func TestQuickMergeAssociativity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		entries := make([]Entry, 30)
		for k := range entries {
			i := uint32(r.Intn(20))
			j := uint32(r.Intn(20))
			entries[k] = Entry{I: i, J: j, W: uint32(1 + r.Intn(5))}
		}
		// Grouping 1: all into one.
		a := NewAccum()
		a.AddEntries(entries)
		// Grouping 2: three accums merged pairwise.
		p1, p2, p3 := NewAccum(), NewAccum(), NewAccum()
		p1.AddEntries(entries[:10])
		p2.AddEntries(entries[10:20])
		p3.AddEntries(entries[20:])
		p2.Merge(p3)
		p1.Merge(p2)
		return a.Tri().Equal(p1.Tri())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gram weight of a pair equals the bit-overlap of their rows.
func TestQuickGramPairOverlap(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := NewBitMatrix(168)
		for k := 0; k < 10; k++ {
			m.SetRange(1, r.Intn(168), r.Intn(168))
			m.SetRange(2, r.Intn(168), r.Intn(168))
		}
		overlap := uint32(0)
		for s := 0; s < 168; s++ {
			if m.Get(1, s) && m.Get(2, s) {
				overlap++
			}
		}
		acc := NewAccum()
		m.GramInto(acc)
		return acc.Weight(1, 2) == overlap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGramCostMonotonic(t *testing.T) {
	small := NewBitMatrix(168)
	small.Set(1, 0)
	big := NewBitMatrix(168)
	for p := uint32(0); p < 10; p++ {
		big.Set(p, 0)
	}
	if small.GramCost() >= big.GramCost() {
		t.Fatal("GramCost should grow with row count")
	}
}

func BenchmarkGram100Persons(b *testing.B) {
	r := rng.New(7)
	m := NewBitMatrix(168)
	for p := uint32(0); p < 100; p++ {
		start := r.Intn(160)
		m.SetRange(p, start, start+8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := NewAccum()
		m.GramInto(acc)
	}
}

func BenchmarkAccumAdd(b *testing.B) {
	a := NewAccum()
	for i := 0; i < b.N; i++ {
		a.Add(uint32(i%1000), uint32((i*7)%1000), 1)
	}
}
