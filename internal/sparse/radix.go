package sparse

// This file holds the reduction kernels of the synthesis pipeline: an LSD
// radix sort on the packed (I,J) key that replaces the comparison sort in
// TriFromEntries, and tournament-tree / parallel pairwise merges that
// replace the O(total·k) linear best-head scan in MergeTris.

import (
	"runtime"
	"sync"
)

func entryKey(e Entry) uint64 { return uint64(e.I)<<32 | uint64(e.J) }

// radixMinLen is the input size below which the O(n log n) comparison
// sort beats the 8-pass counting sort's fixed costs.
const radixMinLen = 256

// radix16MinLen is the input size at which the 16-bit-digit variant's
// larger histograms (256 KiB per varying digit to zero and prefix-scan)
// pay for halving the number of scatter passes.
const radix16MinLen = 1 << 15

// hist16Pool recycles the 16-bit-digit histograms (4 × 64Ki counters =
// 1 MiB) so large sorts do not allocate them per call.
var hist16Pool = sync.Pool{New: func() any { return new([4][1 << 16]int32) }}

// radixSortEntries sorts es ascending by packed (I, J) key using an LSD
// radix sort with 8-bit digits. Passes whose digit is constant across the
// whole input (common: the high ID bytes of a simulation population are
// mostly zero) are skipped. The sort is stable within each pass, which is
// what makes LSD correct; ties in the full key need no particular order
// because TriFromEntries sums their weights commutatively.
func radixSortEntries(es []Entry) {
	n := len(es)
	if n < 2 {
		return
	}
	if n >= radix16MinLen {
		radixSortEntries16(es)
		return
	}
	// A cheap OR/AND pre-pass finds the digits that actually vary across
	// the input: a digit is uniform iff its bits agree between the OR and
	// AND of all keys. Simulation IDs rarely fill all four bytes, so this
	// typically eliminates half or more of the histogram increments — the
	// dominant fixed cost of the sort.
	orK, andK := uint64(0), ^uint64(0)
	for _, e := range es {
		k := entryKey(e)
		orK |= k
		andK &= k
	}
	diff := orK ^ andK
	var digitBuf [8]uint
	nd := 0
	for d := uint(0); d < 8; d++ {
		if byte(diff>>(8*d)) != 0 {
			digitBuf[nd] = d
			nd++
		}
	}
	if nd == 0 {
		return // all keys identical: already sorted
	}
	digits := digitBuf[:nd]
	// One shared histogram pass counting only the varying digits.
	var counts [8][256]int
	for _, e := range es {
		k := entryKey(e)
		for _, d := range digits {
			counts[d][byte(k>>(8*d))]++
		}
	}
	buf := GetEntries()
	if cap(buf) < n {
		buf = make([]Entry, n)
	}
	buf = buf[:n]
	src, dst := es, buf
	for _, d := range digits {
		c := &counts[d]
		// Exclusive prefix sums -> bucket offsets.
		var offs [256]int
		sum := 0
		for b := 0; b < 256; b++ {
			offs[b] = sum
			sum += c[b]
		}
		shift := 8 * d
		for _, e := range src {
			b := byte(entryKey(e) >> shift)
			dst[offs[b]] = e
			offs[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &es[0] {
		copy(es, src)
	}
	PutEntries(buf)
}

// radixSortEntries16 is the large-input variant of radixSortEntries: LSD
// radix with 16-bit digits, so a full u64 key needs at most 4 scatter
// passes and the simulation-typical key (two IDs under 2^16) needs 2.
// Uniform digits are skipped exactly as in the 8-bit variant.
func radixSortEntries16(es []Entry) {
	n := len(es)
	orK, andK := uint64(0), ^uint64(0)
	for _, e := range es {
		k := entryKey(e)
		orK |= k
		andK &= k
	}
	diff := orK ^ andK
	var digitBuf [4]uint
	nd := 0
	for d := uint(0); d < 4; d++ {
		if uint16(diff>>(16*d)) != 0 {
			digitBuf[nd] = d
			nd++
		}
	}
	if nd == 0 {
		return // all keys identical: already sorted
	}
	digits := digitBuf[:nd]
	counts := hist16Pool.Get().(*[4][1 << 16]int32)
	for _, d := range digits {
		c := &counts[d]
		for b := range c {
			c[b] = 0
		}
	}
	for _, e := range es {
		k := entryKey(e)
		for _, d := range digits {
			counts[d][uint16(k>>(16*d))]++
		}
	}
	buf := GetEntries()
	if cap(buf) < n {
		buf = make([]Entry, n)
	}
	buf = buf[:n]
	src, dst := es, buf
	for _, d := range digits {
		c := &counts[d]
		// Exclusive prefix sums in place -> bucket offsets.
		sum := int32(0)
		for b := range c {
			cnt := c[b]
			c[b] = sum
			sum += cnt
		}
		shift := 16 * d
		for _, e := range src {
			b := uint16(entryKey(e) >> shift)
			dst[c[b]] = e
			c[b]++
		}
		src, dst = dst, src
	}
	hist16Pool.Put(counts)
	if &src[0] != &es[0] {
		copy(es, src)
	}
	PutEntries(buf)
}

// mergeTrisScan is the pre-tournament reference reduction: an O(total·k)
// linear best-head scan. It is retained for the BenchmarkMerge baseline
// and as an oracle in the merge property tests.
func mergeTrisScan(ts ...*Tri) *Tri {
	heads := make([]int, len(ts))
	total := 0
	for _, t := range ts {
		if t != nil {
			total += t.NNZ()
		}
	}
	out := &Tri{
		I: make([]uint32, 0, total),
		J: make([]uint32, 0, total),
		W: make([]uint32, 0, total),
	}
	for {
		best := -1
		var bestKey uint64
		for i, t := range ts {
			if t == nil || heads[i] >= t.NNZ() {
				continue
			}
			key := uint64(t.I[heads[i]])<<32 | uint64(t.J[heads[i]])
			if best == -1 || key < bestKey {
				best, bestKey = i, key
			}
		}
		if best == -1 {
			return out
		}
		t := ts[best]
		k := heads[best]
		heads[best]++
		n := len(out.I)
		if n > 0 && out.I[n-1] == t.I[k] && out.J[n-1] == t.J[k] {
			out.W[n-1] += t.W[k]
			continue
		}
		out.I = append(out.I, t.I[k])
		out.J = append(out.J, t.J[k])
		out.W = append(out.W, t.W[k])
	}
}

// merge2 merges two sorted Tris, summing weights of shared pairs. The
// output is written with indexed stores into exactly-presized slices and
// trimmed once at the end.
func merge2(a, b *Tri) *Tri {
	na, nb := a.NNZ(), b.NNZ()
	oi := make([]uint32, na+nb)
	oj := make([]uint32, na+nb)
	ow := make([]uint32, na+nb)
	i, j, k := 0, 0, 0
	for i < na && j < nb {
		ka := uint64(a.I[i])<<32 | uint64(a.J[i])
		kb := uint64(b.I[j])<<32 | uint64(b.J[j])
		switch {
		case ka < kb:
			oi[k], oj[k], ow[k] = a.I[i], a.J[i], a.W[i]
			i++
		case kb < ka:
			oi[k], oj[k], ow[k] = b.I[j], b.J[j], b.W[j]
			j++
		default:
			oi[k], oj[k], ow[k] = a.I[i], a.J[i], a.W[i]+b.W[j]
			i++
			j++
		}
		k++
	}
	k += copy(oi[k:], a.I[i:])
	copy(oj[k-(na-i):], a.J[i:])
	copy(ow[k-(na-i):], a.W[i:])
	k += copy(oi[k:], b.I[j:])
	copy(oj[k-(nb-j):], b.J[j:])
	copy(ow[k-(nb-j):], b.W[j:])
	return &Tri{I: oi[:k], J: oj[:k], W: ow[:k]}
}

// copyTri returns a defensive copy so MergeTris(t) never aliases its
// input.
func copyTri(t *Tri) *Tri {
	out := &Tri{
		I: make([]uint32, len(t.I)),
		J: make([]uint32, len(t.J)),
		W: make([]uint32, len(t.W)),
	}
	copy(out.I, t.I)
	copy(out.J, t.J)
	copy(out.W, t.W)
	return out
}

// mergeTournament k-way merges k ≥ 3 sorted inputs through a complete
// binary tournament tree: each pop takes the overall winner and replays
// only its leaf-to-root path, so the reduction is O(total·log k) instead
// of the linear scan's O(total·k).
func mergeTournament(live []*Tri) *Tri {
	k := len(live)
	total := 0
	for _, t := range live {
		total += t.NNZ()
	}
	out := &Tri{
		I: make([]uint32, 0, total),
		J: make([]uint32, 0, total),
		W: make([]uint32, 0, total),
	}
	// keyInf marks exhausted (or padding) streams. No real entry can hold
	// it: Tri entries are strictly I < J, and keyInf would require
	// I == J == MaxUint32.
	const keyInf = ^uint64(0)
	heads := make([]int, k)
	m := 1
	for m < k {
		m <<= 1
	}
	// keys[s] caches stream s's current packed key so the path replay is
	// pure integer compares — no bounds checks or indirection per node.
	keys := make([]uint64, m)
	for s := 0; s < m; s++ {
		if s < k && live[s].NNZ() > 0 {
			keys[s] = uint64(live[s].I[0])<<32 | uint64(live[s].J[0])
		} else {
			keys[s] = keyInf
		}
	}
	node := make([]int32, 2*m) // node[1] = overall winner; leaves at m..
	for i := 0; i < m; i++ {
		node[m+i] = int32(i)
	}
	for i := m - 1; i >= 1; i-- {
		a, b := node[2*i], node[2*i+1]
		if keys[b] < keys[a] {
			node[i] = b
		} else {
			node[i] = a
		}
	}
	for {
		s := node[1]
		if keys[s] == keyInf {
			return out
		}
		t := live[s]
		h := heads[s]
		heads[s]++
		n := len(out.I)
		if n > 0 && out.I[n-1] == t.I[h] && out.J[n-1] == t.J[h] {
			out.W[n-1] += t.W[h]
		} else {
			out.I = append(out.I, t.I[h])
			out.J = append(out.J, t.J[h])
			out.W = append(out.W, t.W[h])
		}
		if h+1 < t.NNZ() {
			keys[s] = uint64(t.I[h+1])<<32 | uint64(t.J[h+1])
		} else {
			keys[s] = keyInf
		}
		// Replay the path from stream s's leaf to the root.
		for i := (m + int(s)) >> 1; i >= 1; i >>= 1 {
			a, b := node[2*i], node[2*i+1]
			if keys[b] < keys[a] {
				node[i] = b
			} else {
				node[i] = a
			}
		}
	}
}

// MergeTris k-way merges already-sorted triangular matrices, summing
// weights of entries present in several inputs — the reduction step of
// the synthesis pipeline (Tri is always sorted, so inputs from Accum.Tri
// or TriFromEntries qualify). Nil and empty inputs are skipped. The merge
// runs through a tournament tree, so it costs O(total·log k) comparisons;
// see MergeTrisParallel for the worker-parallel variant.
func MergeTris(ts ...*Tri) *Tri {
	live := make([]*Tri, 0, len(ts))
	for _, t := range ts {
		if t != nil && t.NNZ() > 0 {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return &Tri{}
	case 1:
		return copyTri(live[0])
	case 2:
		return merge2(live[0], live[1])
	}
	return mergeTournament(live)
}

// mergeFanIn is the stream count at which MergeTrisParallel stops doing
// parallel pairwise rounds and finishes with a single tournament pass.
// Pairwise rounds rewrite the full payload once per round, so for small k
// the extra memory traffic costs more than the parallelism saves; one
// k-way tournament pass over the survivors writes the output exactly
// once.
const mergeFanIn = 4

// MergeTrisParallel reduces the inputs by a hybrid merge tree: parallel
// pairwise rounds (bounded by workers) shrink the stream count while it
// is large, and once at most mergeFanIn streams remain a single serial
// tournament pass produces the output. The result is bit-identical to
// MergeTris: sorted-merge with weight summation is associative and
// commutative, so the reduction order does not matter. workers ≤ 1 falls
// back to the serial tournament merge, as does a single-CPU process:
// pairwise rounds rewrite the payload once per round, which only pays
// off when the merges actually run concurrently.
func MergeTrisParallel(workers int, ts ...*Tri) *Tri {
	live := make([]*Tri, 0, len(ts))
	for _, t := range ts {
		if t != nil && t.NNZ() > 0 {
			live = append(live, t)
		}
	}
	if p := runtime.GOMAXPROCS(0); p < workers {
		workers = p
	}
	if workers <= 1 || len(live) <= mergeFanIn {
		return MergeTris(live...)
	}
	sem := make(chan struct{}, workers)
	for len(live) > mergeFanIn {
		next := make([]*Tri, (len(live)+1)/2)
		var wg sync.WaitGroup
		for i := 0; i+1 < len(live); i += 2 {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				next[i/2] = merge2(live[i], live[i+1])
				<-sem
			}(i)
		}
		if len(live)%2 == 1 {
			next[len(next)-1] = live[len(live)-1]
		}
		wg.Wait()
		live = next
	}
	// The final fan-in never aliases an input when len(live) ≥ 2 (merge2
	// and the tournament both allocate); MergeTris's single-input case
	// copies defensively itself.
	return MergeTris(live...)
}
