// Package batch simulates a shared-cluster batch queue, reproducing the
// paper's Section V observation about job-size strategy: the synthesis
// workload was split into "several smaller jobs of 64 processes",
// because those "are generally processed more quickly in the queue than
// one large job of 1024 processes".
//
// The simulator is event-driven over a fixed pool of process slots with
// two scheduling policies: strict FIFO and EASY backfill (a later job may
// start early only if it cannot delay the reservation of the queue
// head). Both are standard policies on production clusters like the
// Blues machine used in the paper.
package batch

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/telemetry"
)

// Telemetry series for the batch-queue simulator.
var (
	mJobs        = telemetry.C("batch_jobs_total")
	mSimulations = telemetry.C("batch_simulations_total")
	mSimSeconds  = telemetry.H("batch_simulate_seconds")
)

// Policy selects the queue scheduling discipline.
type Policy int

const (
	// FIFO starts jobs strictly in submission order.
	FIFO Policy = iota
	// Backfill is FIFO plus EASY backfill: a queued job may jump ahead
	// if it fits in currently idle slots and finishes before the queue
	// head's reservation time (or uses slots the head will not need).
	Backfill
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Backfill:
		return "backfill"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Job is one batch submission.
type Job struct {
	// ID identifies the job in results.
	ID int
	// Procs is the number of process slots required.
	Procs int
	// Duration is the run time once started.
	Duration float64
	// Submit is the submission time.
	Submit float64
}

// Result records when a job started and finished.
type Result struct {
	Job
	Start, Finish float64
}

// Simulate runs the queue until every job completes and returns results
// in the order of the input jobs. It returns an error if any job needs
// more slots than the cluster has. Cancelling ctx aborts the event loop
// between events with an error wrapping context.Canceled.
func Simulate(ctx context.Context, slots int, jobs []Job, policy Policy) ([]Result, error) {
	sw := telemetry.Clock()
	if slots <= 0 {
		return nil, fmt.Errorf("batch: cluster must have positive slots")
	}
	for _, j := range jobs {
		if j.Procs <= 0 || j.Procs > slots {
			return nil, fmt.Errorf("batch: job %d needs %d of %d slots", j.ID, j.Procs, slots)
		}
		if j.Duration < 0 || j.Submit < 0 {
			return nil, fmt.Errorf("batch: job %d has negative duration or submit time", j.ID)
		}
	}

	// Pending jobs ordered by submission (stable for ties).
	pending := make([]Job, len(jobs))
	copy(pending, jobs)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].Submit < pending[j].Submit })

	type running struct {
		job    Job
		finish float64
	}
	var queue []Job // submitted, not yet started, FIFO order
	var active []running
	free := slots
	now := 0.0
	results := make(map[int]Result, len(jobs))

	finishSmallest := func() float64 {
		min := -1.0
		for _, r := range active {
			if min < 0 || r.finish < min {
				min = r.finish
			}
		}
		return min
	}

	start := func(j Job) {
		free -= j.Procs
		active = append(active, running{job: j, finish: now + j.Duration})
		results[j.ID] = Result{Job: j, Start: now, Finish: now + j.Duration}
	}

	// tryStart launches every queued job the policy allows at `now`.
	tryStart := func() {
		for len(queue) > 0 && queue[0].Procs <= free {
			start(queue[0])
			queue = queue[1:]
		}
		if policy != Backfill || len(queue) == 0 {
			return
		}
		// EASY backfill: compute the head's reservation.
		head := queue[0]
		fins := make([]running, len(active))
		copy(fins, active)
		sort.Slice(fins, func(i, j int) bool { return fins[i].finish < fins[j].finish })
		avail := free
		shadow := now
		for _, r := range fins {
			if avail >= head.Procs {
				break
			}
			avail += r.job.Procs
			shadow = r.finish
		}
		// Slots left over at the shadow time after the head starts.
		extra := avail - head.Procs
		for i := 1; i < len(queue); {
			j := queue[i]
			if j.Procs <= free && (now+j.Duration <= shadow || j.Procs <= extra) {
				if j.Procs <= extra {
					extra -= j.Procs
				}
				start(j)
				queue = append(queue[:i], queue[i+1:]...)
				continue
			}
			i++
		}
	}

	for len(pending) > 0 || len(queue) > 0 || len(active) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("batch: simulation canceled at t=%g: %w", now, err)
		}
		// Advance to the next event: a submission or a completion.
		next := -1.0
		if len(pending) > 0 {
			next = pending[0].Submit
		}
		if f := finishSmallest(); f >= 0 && (next < 0 || f < next) {
			next = f
		}
		if next < now {
			next = now
		}
		now = next

		// Process completions at `now`.
		kept := active[:0]
		for _, r := range active {
			if r.finish <= now {
				free += r.job.Procs
			} else {
				kept = append(kept, r)
			}
		}
		active = kept

		// Process submissions at `now`.
		for len(pending) > 0 && pending[0].Submit <= now {
			queue = append(queue, pending[0])
			pending = pending[1:]
		}

		tryStart()
	}

	out := make([]Result, len(jobs))
	for i, j := range jobs {
		out[i] = results[j.ID]
	}
	sw.Observe(mSimSeconds)
	mSimulations.Inc()
	mJobs.Add(int64(len(jobs)))
	return out, nil
}

// Makespan returns the latest finish time among the results with the
// given IDs (all results when ids is nil).
func Makespan(results []Result, ids map[int]bool) float64 {
	max := 0.0
	for _, r := range results {
		if ids != nil && !ids[r.ID] {
			continue
		}
		if r.Finish > max {
			max = r.Finish
		}
	}
	return max
}

// WaitTime returns the mean queue wait of the results with the given IDs
// (all results when ids is nil).
func WaitTime(results []Result, ids map[int]bool) float64 {
	sum, n := 0.0, 0
	for _, r := range results {
		if ids != nil && !ids[r.ID] {
			continue
		}
		sum += r.Start - r.Submit
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
