package batch

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(context.Background(), 0, nil, FIFO); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := Simulate(context.Background(), 10, []Job{{ID: 1, Procs: 11, Duration: 1}}, FIFO); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := Simulate(context.Background(), 10, []Job{{ID: 1, Procs: 0, Duration: 1}}, FIFO); err == nil {
		t.Error("zero-proc job accepted")
	}
	if _, err := Simulate(context.Background(), 10, []Job{{ID: 1, Procs: 1, Duration: -1}}, FIFO); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestSingleJobRunsImmediately(t *testing.T) {
	res, err := Simulate(context.Background(), 16, []Job{{ID: 1, Procs: 8, Duration: 5, Submit: 2}}, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Start != 2 || res[0].Finish != 7 {
		t.Fatalf("result = %+v", res[0])
	}
}

func TestJobsShareClusterConcurrently(t *testing.T) {
	jobs := []Job{
		{ID: 1, Procs: 8, Duration: 10},
		{ID: 2, Procs: 8, Duration: 10},
	}
	res, err := Simulate(context.Background(), 16, jobs, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Start != 0 || res[1].Start != 0 {
		t.Fatalf("both jobs should start at 0: %+v", res)
	}
}

func TestFIFOQueuesWhenFull(t *testing.T) {
	jobs := []Job{
		{ID: 1, Procs: 16, Duration: 10},
		{ID: 2, Procs: 16, Duration: 10},
	}
	res, err := Simulate(context.Background(), 16, jobs, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Start != 10 || res[1].Finish != 20 {
		t.Fatalf("second job should queue: %+v", res[1])
	}
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	// Big head blocks a small job even though slots are idle.
	jobs := []Job{
		{ID: 1, Procs: 12, Duration: 10, Submit: 0},
		{ID: 2, Procs: 16, Duration: 5, Submit: 1},
		{ID: 3, Procs: 2, Duration: 1, Submit: 2},
	}
	res, err := Simulate(context.Background(), 16, jobs, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	// Job 2 can only start at 10; job 3 must wait behind it under FIFO.
	if res[1].Start != 10 {
		t.Fatalf("job 2 start = %v, want 10", res[1].Start)
	}
	if res[2].Start != 15 {
		t.Fatalf("job 3 start = %v, want 15 (behind job 2)", res[2].Start)
	}
}

func TestBackfillFillsIdleSlots(t *testing.T) {
	// Same scenario: backfill lets the tiny job run in the idle slots
	// because it finishes before the head's reservation at t=10.
	jobs := []Job{
		{ID: 1, Procs: 12, Duration: 10, Submit: 0},
		{ID: 2, Procs: 16, Duration: 5, Submit: 1},
		{ID: 3, Procs: 2, Duration: 1, Submit: 2},
	}
	res, err := Simulate(context.Background(), 16, jobs, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	if res[2].Start != 2 {
		t.Fatalf("job 3 start = %v, want 2 (backfilled)", res[2].Start)
	}
	// And the head must not be delayed.
	if res[1].Start != 10 {
		t.Fatalf("head delayed by backfill: start = %v", res[1].Start)
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	// A long backfill candidate that would overlap the head's
	// reservation must NOT start.
	jobs := []Job{
		{ID: 1, Procs: 12, Duration: 10, Submit: 0},
		{ID: 2, Procs: 16, Duration: 5, Submit: 1},
		{ID: 3, Procs: 6, Duration: 50, Submit: 2},
	}
	res, err := Simulate(context.Background(), 16, jobs, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Start != 10 {
		t.Fatalf("head start = %v, want 10", res[1].Start)
	}
	if res[2].Start < 15 {
		t.Fatalf("long job backfilled at %v and would delay head", res[2].Start)
	}
}

func TestNoOverlapExceedsSlots(t *testing.T) {
	r := rng.New(9)
	var jobs []Job
	for i := 0; i < 60; i++ {
		jobs = append(jobs, Job{
			ID:       i,
			Procs:    1 + r.Intn(16),
			Duration: float64(1 + r.Intn(20)),
			Submit:   float64(r.Intn(50)),
		})
	}
	for _, policy := range []Policy{FIFO, Backfill} {
		res, err := Simulate(context.Background(), 16, jobs, policy)
		if err != nil {
			t.Fatal(err)
		}
		// Check capacity at every start event.
		for _, probe := range res {
			used := 0
			for _, r2 := range res {
				if r2.Start <= probe.Start && probe.Start < r2.Finish {
					used += r2.Procs
				}
			}
			if used > 16 {
				t.Fatalf("policy %v: %d slots used at t=%v", policy, used, probe.Start)
			}
		}
	}
}

func TestSmallBatchesBeatOneBigJob(t *testing.T) {
	// The paper's scenario: a busy cluster (steady background of small
	// jobs) plus our workload, submitted either as 16 jobs of 64 procs
	// or one job of 1024 procs. Small jobs thread through the backfill
	// holes; the big job must drain the whole machine.
	r := rng.New(42)
	const slots = 1024
	makeBackground := func() []Job {
		var jobs []Job
		for i := 0; i < 300; i++ {
			jobs = append(jobs, Job{
				ID:       1000 + i,
				Procs:    16 * (1 + r.Intn(8)),
				Duration: float64(10 + r.Intn(50)),
				Submit:   float64(r.Intn(400)),
			})
		}
		return jobs
	}

	background := makeBackground()
	ours := map[int]bool{}

	// Variant A: 16 × 64 procs, 30 min each.
	var small []Job
	for i := 0; i < 16; i++ {
		small = append(small, Job{ID: i, Procs: 64, Duration: 30, Submit: 100})
		ours[i] = true
	}
	resA, err := Simulate(context.Background(), slots, append(append([]Job{}, background...), small...), Backfill)
	if err != nil {
		t.Fatal(err)
	}
	makespanA := Makespan(resA, ours)

	// Variant B: 1 × 1024 procs, 30 min.
	big := []Job{{ID: 0, Procs: 1024, Duration: 30, Submit: 100}}
	resB, err := Simulate(context.Background(), slots, append(append([]Job{}, background...), big...), Backfill)
	if err != nil {
		t.Fatal(err)
	}
	makespanB := Makespan(resB, map[int]bool{0: true})

	if makespanA >= makespanB {
		t.Fatalf("16×64 makespan %v not better than 1×1024 %v", makespanA, makespanB)
	}
}

func TestMakespanAndWaitHelpers(t *testing.T) {
	res := []Result{
		{Job: Job{ID: 1, Submit: 0}, Start: 2, Finish: 10},
		{Job: Job{ID: 2, Submit: 1}, Start: 5, Finish: 20},
	}
	if Makespan(res, nil) != 20 {
		t.Fatal("makespan wrong")
	}
	if Makespan(res, map[int]bool{1: true}) != 10 {
		t.Fatal("filtered makespan wrong")
	}
	if WaitTime(res, nil) != 3 { // (2 + 4) / 2
		t.Fatalf("wait = %v, want 3", WaitTime(res, nil))
	}
	if WaitTime(nil, nil) != 0 {
		t.Fatal("empty wait should be 0")
	}
}

// Property: every job eventually runs, starts at/after submission, and
// conservation holds (finish = start + duration).
func TestQuickAllJobsComplete(t *testing.T) {
	f := func(seed uint64, policyBit bool) bool {
		r := rng.New(seed)
		policy := FIFO
		if policyBit {
			policy = Backfill
		}
		var jobs []Job
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			jobs = append(jobs, Job{
				ID:       i,
				Procs:    1 + r.Intn(32),
				Duration: float64(r.Intn(30)),
				Submit:   float64(r.Intn(100)),
			})
		}
		res, err := Simulate(context.Background(), 32, jobs, policy)
		if err != nil || len(res) != n {
			return false
		}
		for i, rr := range res {
			if rr.ID != jobs[i].ID {
				return false
			}
			if rr.Start < rr.Submit {
				return false
			}
			if rr.Finish != rr.Start+rr.Duration {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// EASY backfill guarantees only that the queue head's reservation is
// never delayed; global makespan can regress on adversarial workloads.
// Over an ensemble of random workloads, though, it must win or tie the
// overwhelming majority of the time and never lose catastrophically —
// that is why production clusters (like the paper's) run it.
func TestBackfillBeatsFIFOOnEnsemble(t *testing.T) {
	wins, ties, losses := 0, 0, 0
	for seed := uint64(0); seed < 200; seed++ {
		r := rng.New(seed)
		var jobs []Job
		for i := 0; i < 20; i++ {
			jobs = append(jobs, Job{
				ID:       i,
				Procs:    1 + r.Intn(16),
				Duration: float64(1 + r.Intn(20)),
				Submit:   float64(r.Intn(30)),
			})
		}
		fifo, err1 := Simulate(context.Background(), 16, jobs, FIFO)
		bf, err2 := Simulate(context.Background(), 16, jobs, Backfill)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		mf, mb := Makespan(fifo, nil), Makespan(bf, nil)
		switch {
		case mb < mf-1e-9:
			wins++
		case mb > mf+1e-9:
			losses++
			if mb > 1.5*mf {
				t.Fatalf("seed %d: backfill makespan %v catastrophically worse than FIFO %v", seed, mb, mf)
			}
		default:
			ties++
		}
	}
	if losses > wins {
		t.Fatalf("backfill lost more often than it won: %d wins, %d ties, %d losses", wins, ties, losses)
	}
	if wins == 0 {
		t.Fatal("backfill never improved a workload; the backfill path is likely inert")
	}
}

// TestSimulateCanceled: a canceled context aborts the event loop with
// an error wrapping context.Canceled.
func TestSimulateCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Simulate(ctx, 16, []Job{{ID: 1, Procs: 8, Duration: 5}}, FIFO)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMakespanAndWaitEdgeCases: empty result sets, empty (non-nil)
// filters, and filters matching nothing — the scenario engine feeds
// these helpers arbitrary id subsets.
func TestMakespanAndWaitEdgeCases(t *testing.T) {
	res := []Result{
		{Job: Job{ID: 1, Submit: 0}, Start: 2, Finish: 10},
		{Job: Job{ID: 2, Submit: 1}, Start: 5, Finish: 20},
	}
	if Makespan(nil, nil) != 0 {
		t.Fatal("makespan of no results should be 0")
	}
	// A non-nil empty filter means "none of them", not "all of them".
	if Makespan(res, map[int]bool{}) != 0 {
		t.Fatal("empty filter should select nothing")
	}
	if WaitTime(res, map[int]bool{}) != 0 {
		t.Fatal("empty-filter wait should be 0")
	}
	// Filter naming only absent ids.
	if Makespan(res, map[int]bool{99: true}) != 0 || WaitTime(res, map[int]bool{99: true}) != 0 {
		t.Fatal("filter matching nothing should yield 0")
	}
	// A filter entry explicitly set false is excluded too.
	if Makespan(res, map[int]bool{1: false, 2: true}) != 20 {
		t.Fatal("false filter entries must not match")
	}
}

// countdownCtx cancels after its Err method has been consulted n times,
// letting the test abort Simulate partway through the event loop rather
// than before it starts.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining > 0 {
		c.remaining--
		return nil
	}
	return context.Canceled
}

// TestSimulateCanceledMidGrid: cancellation between events aborts with
// context.Canceled and reports how far the simulated clock got.
func TestSimulateCanceledMidGrid(t *testing.T) {
	jobs := make([]Job, 50)
	for i := range jobs {
		jobs[i] = Job{ID: i, Procs: 2, Duration: float64(i%7 + 1), Submit: float64(i)}
	}
	ctx := &countdownCtx{Context: context.Background(), remaining: 10}
	_, err := Simulate(ctx, 4, jobs, Backfill)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The same workload with an honest context completes.
	res, err := Simulate(context.Background(), 4, jobs, Backfill)
	if err != nil || len(res) != len(jobs) {
		t.Fatalf("uncancelled run failed: %v", err)
	}
}
