// Package disease implements an SEIR infectious-disease process running
// on top of the ABM's collocation structure — the application chiSIM was
// generalized from ("an extension of an infectious disease transmission
// model"). It also provides the patient-zero trace-back the paper gives
// as the motivating use of agent event logs: reconstructing who infected
// whom back to the agent who initiated the outbreak.
//
// The model plugs into abm.Run as an InteractFunc. Transmission draws
// are derived deterministically from (seed, hour, place, person), so an
// epidemic is bit-reproducible regardless of rank count or place
// assignment — the same property the logging pipeline relies on.
// Interact callbacks run concurrently across ranks, but any person
// occupies exactly one place per hour, so per-person state is touched by
// exactly one goroutine per hour.
package disease

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/abm"
	"repro/internal/rng"
)

// State is a person's SEIR compartment.
type State uint8

// SEIR compartments.
const (
	Susceptible State = iota
	Exposed
	Infectious
	Recovered
)

func (s State) String() string {
	switch s {
	case Susceptible:
		return "S"
	case Exposed:
		return "E"
	case Infectious:
		return "I"
	case Recovered:
		return "R"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// NoInfector marks a person with no recorded infector (never infected,
// or an index case).
const NoInfector = int32(-1)

// Config parameterizes the epidemic.
type Config struct {
	// Beta is the per-infectious-contact-hour transmission probability.
	Beta float64
	// IncubationHours is the E→I delay.
	IncubationHours uint32
	// InfectiousHours is the I→R duration.
	InfectiousHours uint32
	// Seed drives all transmission draws.
	Seed uint64
}

// Model is the epidemic state for a population.
type Model struct {
	cfg Config

	state      []State
	exposedAt  []uint32
	infector   []int32
	infections atomic.Int64
}

// New creates a model with everyone susceptible.
func New(numPersons int, cfg Config) *Model {
	m := &Model{
		cfg:       cfg,
		state:     make([]State, numPersons),
		exposedAt: make([]uint32, numPersons),
		infector:  make([]int32, numPersons),
	}
	for i := range m.infector {
		m.infector[i] = NoInfector
	}
	return m
}

// SeedCase makes person an index case: immediately infectious at hour 0
// with no recorded infector.
func (m *Model) SeedCase(person uint32) {
	m.state[person] = Infectious
	m.exposedAt[person] = 0
	m.infections.Add(1)
}

// drawRNG derives a deterministic stream for (hour, place, person).
// Keying draws by person makes transmission independent of the order in
// which occupants are listed, which varies with rank layout.
func (m *Model) drawRNG(hour, place, person uint32) *rng.Source {
	h := m.cfg.Seed
	h ^= uint64(hour) * 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h ^= uint64(place) * 0x94d049bb133111eb
	h = (h ^ (h >> 27)) * 0xff51afd7ed558ccd
	h ^= uint64(person) * 0xd6e8feb86659fd93
	h = (h ^ (h >> 29)) * 0x9e3779b97f4a7c15
	return rng.New(h ^ (h >> 31))
}

// Hook returns the InteractFunc to pass to abm.Run.
func (m *Model) Hook() abm.InteractFunc {
	return func(_ int, hour uint32, place uint32, occupants []uint32) {
		// Progress compartments first: each person is seen exactly once
		// per hour, so their clock advances exactly once per hour.
		var infectious []uint32
		for _, p := range occupants {
			switch m.state[p] {
			case Exposed:
				if hour-m.exposedAt[p] >= m.cfg.IncubationHours {
					m.state[p] = Infectious
				}
			case Infectious:
				if hour-m.exposedAt[p] >= m.cfg.IncubationHours+m.cfg.InfectiousHours {
					m.state[p] = Recovered
				}
			}
			if m.state[p] == Infectious {
				infectious = append(infectious, p)
			}
		}
		if len(infectious) == 0 {
			return
		}
		sort.Slice(infectious, func(a, b int) bool { return infectious[a] < infectious[b] })
		// Per-contact-hour transmission: each susceptible occupant
		// escapes all infectious contacts independently.
		pInfect := 1 - math.Pow(1-m.cfg.Beta, float64(len(infectious)))
		for _, p := range occupants {
			if m.state[p] != Susceptible {
				continue
			}
			r := m.drawRNG(hour, place, p)
			if !r.Bool(pInfect) {
				continue
			}
			m.state[p] = Exposed
			m.exposedAt[p] = hour
			m.infector[p] = int32(infectious[r.Intn(len(infectious))])
			m.infections.Add(1)
		}
	}
}

// State returns person's current compartment.
func (m *Model) State(person uint32) State { return m.state[person] }

// ExposedAt returns the hour person was exposed (meaningful only when
// State != Susceptible).
func (m *Model) ExposedAt(person uint32) uint32 { return m.exposedAt[person] }

// Infector returns who infected person, or NoInfector.
func (m *Model) Infector(person uint32) int32 { return m.infector[person] }

// TotalInfections returns how many persons have ever been infected
// (including index cases).
func (m *Model) TotalInfections() int64 { return m.infections.Load() }

// Counts returns the current compartment sizes.
func (m *Model) Counts() (s, e, i, r int) {
	for _, st := range m.state {
		switch st {
		case Susceptible:
			s++
		case Exposed:
			e++
		case Infectious:
			i++
		case Recovered:
			r++
		}
	}
	return
}

// TraceBack follows the infection chain from person to the index case,
// returning the chain starting with person and ending at patient zero —
// the paper's "trace back to patient zero" log application. It returns
// nil if person was never infected.
func (m *Model) TraceBack(person uint32) []uint32 {
	if m.state[person] == Susceptible {
		return nil
	}
	chain := []uint32{person}
	seen := map[uint32]bool{person: true}
	for {
		next := m.infector[chain[len(chain)-1]]
		if next == NoInfector {
			return chain
		}
		p := uint32(next)
		if seen[p] {
			// Defensive: infection chains are acyclic by construction
			// (infectors predate infectees), but never loop forever.
			return chain
		}
		seen[p] = true
		chain = append(chain, p)
	}
}

// EpidemicCurve bins infections by day, returning new infections per day
// over the given horizon.
func (m *Model) EpidemicCurve(days int) []int {
	out := make([]int, days)
	for p, st := range m.state {
		if st == Susceptible {
			continue
		}
		d := int(m.exposedAt[p]) / 24 // index cases land on day 0
		if d < days {
			out[d]++
		}
	}
	return out
}
