package disease

import (
	"context"
	"testing"

	"repro/internal/abm"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/schedule"
	"repro/internal/sparse"
	"repro/internal/synthpop"
)

func epidemicWorld(t testing.TB, persons int) (*synthpop.Population, *schedule.Generator) {
	t.Helper()
	pop, err := synthpop.Generate(synthpop.Config{Persons: persons, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	return pop, schedule.NewGenerator(pop, 8)
}

func defaultCfg() Config {
	return Config{Beta: 0.03, IncubationHours: 24, InfectiousHours: 72, Seed: 99}
}

func runEpidemic(t testing.TB, pop *synthpop.Population, gen *schedule.Generator, ranks, days int, cfg Config, seeds ...uint32) *Model {
	t.Helper()
	m := New(pop.NumPersons(), cfg)
	for _, s := range seeds {
		m.SeedCase(s)
	}
	_, err := abm.Run(context.Background(), abm.Config{
		Pop: pop, Gen: gen, Ranks: ranks, Days: days, Interact: m.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEpidemicSpreads(t *testing.T) {
	pop, gen := epidemicWorld(t, 2000)
	m := runEpidemic(t, pop, gen, 4, 7, defaultCfg(), 0, 1, 2)
	if m.TotalInfections() <= 3 {
		t.Fatalf("epidemic did not spread beyond %d index cases", m.TotalInfections())
	}
	s, e, i, r := m.Counts()
	if s+e+i+r != pop.NumPersons() {
		t.Fatalf("compartments sum to %d, want %d", s+e+i+r, pop.NumPersons())
	}
}

func TestNoSeedNoEpidemic(t *testing.T) {
	pop, gen := epidemicWorld(t, 500)
	m := runEpidemic(t, pop, gen, 2, 3, defaultCfg())
	if m.TotalInfections() != 0 {
		t.Fatalf("%d infections with no index case", m.TotalInfections())
	}
	s, _, _, _ := m.Counts()
	if s != pop.NumPersons() {
		t.Fatal("someone left susceptible state without a seed")
	}
}

func TestZeroBetaOnlySeedsInfected(t *testing.T) {
	pop, gen := epidemicWorld(t, 500)
	cfg := defaultCfg()
	cfg.Beta = 0
	m := runEpidemic(t, pop, gen, 2, 3, cfg, 7)
	if m.TotalInfections() != 1 {
		t.Fatalf("beta=0 produced %d infections", m.TotalInfections())
	}
}

func TestDeterministicAcrossRankCounts(t *testing.T) {
	pop, gen := epidemicWorld(t, 1200)
	m1 := runEpidemic(t, pop, gen, 1, 5, defaultCfg(), 0)
	m4 := runEpidemic(t, pop, gen, 4, 5, defaultCfg(), 0)
	if m1.TotalInfections() != m4.TotalInfections() {
		t.Fatalf("infections differ across rank counts: %d vs %d",
			m1.TotalInfections(), m4.TotalInfections())
	}
	for p := uint32(0); p < uint32(pop.NumPersons()); p++ {
		if m1.State(p) != m4.State(p) {
			t.Fatalf("person %d state differs: %v vs %v", p, m1.State(p), m4.State(p))
		}
		if m1.Infector(p) != m4.Infector(p) {
			t.Fatalf("person %d infector differs: %d vs %d", p, m1.Infector(p), m4.Infector(p))
		}
	}
}

func TestProgressionSEIR(t *testing.T) {
	pop, gen := epidemicWorld(t, 1500)
	cfg := defaultCfg()
	cfg.Beta = 0.08
	// Long run: the index cases must have recovered.
	m := runEpidemic(t, pop, gen, 2, 14, cfg, 0)
	if m.State(0) != Recovered {
		t.Fatalf("index case state after 14 days = %v, want R", m.State(0))
	}
	// Everyone infected must have a consistent infector chain.
	for p := uint32(0); p < uint32(pop.NumPersons()); p++ {
		if m.State(p) == Susceptible {
			if m.Infector(p) != NoInfector {
				t.Fatalf("susceptible person %d has infector %d", p, m.Infector(p))
			}
			continue
		}
		if inf := m.Infector(p); inf != NoInfector {
			// The infector must have been exposed strictly earlier.
			if m.ExposedAt(uint32(inf)) > m.ExposedAt(p) {
				t.Fatalf("person %d exposed at %d by %d exposed at %d",
					p, m.ExposedAt(p), inf, m.ExposedAt(uint32(inf)))
			}
		}
	}
}

func TestTraceBackReachesPatientZero(t *testing.T) {
	pop, gen := epidemicWorld(t, 2000)
	cfg := defaultCfg()
	cfg.Beta = 0.08
	m := runEpidemic(t, pop, gen, 4, 10, cfg, 42)
	traced := 0
	for p := uint32(0); p < uint32(pop.NumPersons()); p++ {
		if m.State(p) == Susceptible || p == 42 {
			continue
		}
		chain := m.TraceBack(p)
		if chain == nil {
			t.Fatalf("infected person %d has no chain", p)
		}
		if chain[0] != p {
			t.Fatalf("chain starts at %d, want %d", chain[0], p)
		}
		if chain[len(chain)-1] != 42 {
			t.Fatalf("chain for %d ends at %d, want patient zero 42 (chain %v)", p, chain[len(chain)-1], chain)
		}
		traced++
	}
	if traced == 0 {
		t.Fatal("epidemic too small to exercise trace-back")
	}
}

func TestTraceBackOfSusceptibleIsNil(t *testing.T) {
	m := New(10, defaultCfg())
	if m.TraceBack(3) != nil {
		t.Fatal("susceptible trace-back should be nil")
	}
}

func TestTraceBackOfIndexCase(t *testing.T) {
	m := New(10, defaultCfg())
	m.SeedCase(5)
	chain := m.TraceBack(5)
	if len(chain) != 1 || chain[0] != 5 {
		t.Fatalf("index chain = %v", chain)
	}
}

func TestEpidemicCurveSumsToInfections(t *testing.T) {
	pop, gen := epidemicWorld(t, 1500)
	cfg := defaultCfg()
	cfg.Beta = 0.05
	const days = 7
	m := runEpidemic(t, pop, gen, 2, days, cfg, 0, 1)
	curve := m.EpidemicCurve(days)
	total := 0
	for _, c := range curve {
		total += c
	}
	if int64(total) != m.TotalInfections() {
		t.Fatalf("curve sums to %d, infections %d", total, m.TotalInfections())
	}
	if curve[0] < 2 {
		t.Fatalf("day 0 should include the 2 index cases, got %d", curve[0])
	}
}

func TestHigherBetaInfectsMore(t *testing.T) {
	pop, gen := epidemicWorld(t, 1500)
	low := defaultCfg()
	low.Beta = 0.005
	high := defaultCfg()
	high.Beta = 0.1
	ml := runEpidemic(t, pop, gen, 2, 7, low, 0)
	mh := runEpidemic(t, pop, gen, 2, 7, high, 0)
	if mh.TotalInfections() <= ml.TotalInfections() {
		t.Fatalf("beta 0.1 infected %d, beta 0.005 infected %d",
			mh.TotalInfections(), ml.TotalInfections())
	}
}

func TestStateStrings(t *testing.T) {
	if Susceptible.String() != "S" || Exposed.String() != "E" ||
		Infectious.String() != "I" || Recovered.String() != "R" {
		t.Fatal("state strings wrong")
	}
}

func BenchmarkEpidemicWeek(b *testing.B) {
	pop, err := synthpop.Generate(synthpop.Config{Persons: 3000, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(pop.NumPersons(), defaultCfg())
		m.SeedCase(0)
		if _, err := abm.Run(context.Background(), abm.Config{Pop: pop, Gen: gen, Ranks: 4, Days: 7, Interact: m.Hook()}); err != nil {
			b.Fatal(err)
		}
	}
}

func graphFromEdges(edges [][3]uint32, n int) *graph.Graph {
	acc := sparse.NewAccum()
	for _, e := range edges {
		acc.Add(e[0], e[1], e[2])
	}
	return graph.FromTri(acc.Tri(), n)
}

func TestSpreadOnGraphChain(t *testing.T) {
	// Chain with overwhelming weights: infection marches one hop per day.
	g := graphFromEdges([][3]uint32{{0, 1, 1000}, {1, 2, 1000}, {2, 3, 1000}}, 4)
	res := SpreadOnGraph(g, GraphSpreadConfig{Beta: 0.9, InfectiousDays: 2, Steps: 10, Seed: 1}, []uint32{0})
	if res.TotalInfected != 4 {
		t.Fatalf("infected %d of 4", res.TotalInfected)
	}
	if res.NewPerStep[0] != 1 || res.NewPerStep[1] != 1 {
		t.Fatalf("per-step = %v", res.NewPerStep)
	}
}

func TestSpreadOnGraphZeroBeta(t *testing.T) {
	g := graphFromEdges([][3]uint32{{0, 1, 10}}, 2)
	res := SpreadOnGraph(g, GraphSpreadConfig{Beta: 0, InfectiousDays: 3, Steps: 10, Seed: 1}, []uint32{0})
	if res.TotalInfected != 1 {
		t.Fatalf("beta=0 infected %d", res.TotalInfected)
	}
}

func TestSpreadOnGraphIsolatedSeed(t *testing.T) {
	g := graphFromEdges([][3]uint32{{1, 2, 5}}, 3)
	res := SpreadOnGraph(g, GraphSpreadConfig{Beta: 0.5, InfectiousDays: 3, Steps: 10, Seed: 1}, []uint32{0})
	if res.TotalInfected != 1 {
		t.Fatalf("isolated seed infected %d", res.TotalInfected)
	}
}

func TestSpreadOnGraphDeterministic(t *testing.T) {
	g := graphFromEdges([][3]uint32{
		{0, 1, 3}, {1, 2, 2}, {2, 3, 4}, {0, 3, 1}, {1, 3, 2},
	}, 4)
	cfg := GraphSpreadConfig{Beta: 0.2, InfectiousDays: 2, Steps: 20, Seed: 9}
	a := SpreadOnGraph(g, cfg, []uint32{0})
	b := SpreadOnGraph(g, cfg, []uint32{0})
	if a.TotalInfected != b.TotalInfected || a.PeakStep != b.PeakStep {
		t.Fatal("graph spread not deterministic")
	}
}

func TestSpreadOnGraphDuplicateSeeds(t *testing.T) {
	g := graphFromEdges([][3]uint32{{0, 1, 1}}, 2)
	res := SpreadOnGraph(g, GraphSpreadConfig{Beta: 0, InfectiousDays: 1, Steps: 5, Seed: 1}, []uint32{0, 0})
	if res.TotalInfected != 1 {
		t.Fatalf("duplicate seed double-counted: %d", res.TotalInfected)
	}
}

// TestSpreadOnGraphDuplicateSeedsStochastic is the regression test for
// the duplicate-seed bug: a repeated id used to enter the active list
// twice, double-decrementing daysLeft (early recovery) and drawing
// twice per neighbor (shifted rng stream). A duplicated seed list must
// behave exactly like the deduplicated one under stochastic spread.
func TestSpreadOnGraphDuplicateSeedsStochastic(t *testing.T) {
	var edges [][3]uint32
	const n = 80
	src := rng.New(5)
	for i := uint32(1); i < n; i++ {
		edges = append(edges, [3]uint32{uint32(src.Intn(int(i))), i, uint32(src.Intn(30) + 1)})
	}
	g := graphFromEdges(edges, n)
	cfg := GraphSpreadConfig{Beta: 0.05, InfectiousDays: 3, Steps: 25, Seed: 17}
	want := SpreadOnGraph(g, cfg, []uint32{0})
	got := SpreadOnGraph(g, cfg, []uint32{0, 0})
	if got.TotalInfected != want.TotalInfected || got.PeakStep != want.PeakStep {
		t.Fatalf("duplicate seeds changed the epidemic: %+v vs %+v", got, want)
	}
	for i := range want.NewPerStep {
		if got.NewPerStep[i] != want.NewPerStep[i] {
			t.Fatalf("curves diverge at step %d:\n[0,0] %v\n[0]   %v", i, got.NewPerStep, want.NewPerStep)
		}
	}
}

// BenchmarkSpreadOnGraph exercises the hot transmission loop; the
// per-weight probability cache turned its math.Pow into a slice read.
func BenchmarkSpreadOnGraph(b *testing.B) {
	var edges [][3]uint32
	const n = 5000
	src := rng.New(9)
	for i := uint32(1); i < n; i++ {
		for k := 0; k < 4; k++ {
			edges = append(edges, [3]uint32{uint32(src.Intn(int(i))), i, uint32(src.Intn(500) + 1)})
		}
	}
	g := graphFromEdges(edges, n)
	cfg := GraphSpreadConfig{Beta: 0.002, InfectiousDays: 4, Steps: 50, Seed: 23}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpreadOnGraph(g, cfg, []uint32{0, 1, 2})
	}
}

func TestSpreadHigherOnDenserGraph(t *testing.T) {
	src := rng.New(31)
	// Sparse: ring. Dense: ring + many chords.
	var ring, dense [][3]uint32
	const n = 200
	for i := uint32(0); i < n; i++ {
		ring = append(ring, [3]uint32{i, (i + 1) % n, 2})
	}
	dense = append(dense, ring...)
	for k := 0; k < 400; k++ {
		a, b := uint32(src.Intn(n)), uint32(src.Intn(n))
		if a != b {
			dense = append(dense, [3]uint32{a, b, 2})
		}
	}
	cfg := GraphSpreadConfig{Beta: 0.15, InfectiousDays: 3, Steps: 40, Seed: 5}
	sparse := SpreadOnGraph(graphFromEdges(ring, n), cfg, []uint32{0})
	rich := SpreadOnGraph(graphFromEdges(dense, n), cfg, []uint32{0})
	if rich.TotalInfected <= sparse.TotalInfected {
		t.Fatalf("dense graph infected %d, ring %d", rich.TotalInfected, sparse.TotalInfected)
	}
}
