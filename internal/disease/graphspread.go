package disease

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// GraphSpreadConfig parameterizes an epidemic run on a static contact
// network (as used by the "theoretical epidemiology simulation models"
// the paper's conclusion discusses, in contrast to the full ABM).
type GraphSpreadConfig struct {
	// Beta is the per-contact-hour daily transmission probability: a
	// neighbor with edge weight w is infected with 1-(1-Beta)^w per day.
	Beta float64
	// InfectiousDays is how many steps a node stays infectious.
	InfectiousDays int
	// Steps is the number of simulated days.
	Steps int
	// Seed drives the draws.
	Seed uint64
}

// GraphSpreadResult summarizes an epidemic on a static network.
type GraphSpreadResult struct {
	// NewPerStep is the number of new infections per day.
	NewPerStep []int
	// TotalInfected counts everyone ever infected, including seeds.
	TotalInfected int
	// PeakStep is the day with the most new infections.
	PeakStep int
}

// SpreadOnGraph runs a discrete-time SIR process over a static weighted
// contact network: each day, every infectious node transmits to each
// susceptible neighbor independently with probability 1-(1-Beta)^weight,
// then recovers after InfectiousDays. The paper's conclusion argues this
// model's outcome depends on using realistic network structure; the E5
// experiment quantifies that by running the same process on the
// simulated collocation network and on degree- or size-matched random
// networks.
func SpreadOnGraph(g *graph.Graph, cfg GraphSpreadConfig, seeds []uint32) GraphSpreadResult {
	src := rng.New(cfg.Seed)
	const (
		susceptible = 0
		infectious  = 1
		recovered   = 2
	)
	state := make([]uint8, g.NumVertices())
	daysLeft := make([]int, g.NumVertices())
	res := GraphSpreadResult{NewPerStep: make([]int, cfg.Steps)}
	var active []uint32
	for _, s := range seeds {
		// The state check also dedupes: a repeated seed id is already
		// infectious on its second appearance, so it joins the active
		// list exactly once and its daysLeft clock ticks once per step.
		if state[s] == susceptible {
			state[s] = infectious
			daysLeft[s] = cfg.InfectiousDays
			res.TotalInfected++
			if cfg.Steps > 0 {
				res.NewPerStep[0]++
			}
			active = append(active, s)
		}
	}
	// probFor caches 1-(1-Beta)^w per weight: collocation weights are
	// small integers, so the inner loop's math.Pow becomes a slice read.
	// Each entry is computed with the exact expression the loop used, so
	// results are bit-identical.
	oneMinusBeta := 1 - cfg.Beta
	probs := []float64{0}
	probFor := func(w uint32) float64 {
		if w >= 1<<22 {
			return 1 - math.Pow(oneMinusBeta, float64(w))
		}
		for int(w) >= len(probs) {
			probs = append(probs, math.NaN())
		}
		if math.IsNaN(probs[w]) {
			probs[w] = 1 - math.Pow(oneMinusBeta, float64(w))
		}
		return probs[w]
	}
	for step := 1; step < cfg.Steps; step++ {
		var newlyInfected []uint32
		for _, v := range active {
			row, wts := g.Neighbors(v)
			for k, u := range row {
				if state[u] != susceptible {
					continue
				}
				if src.Bool(probFor(wts[k])) {
					state[u] = infectious
					daysLeft[u] = cfg.InfectiousDays
					newlyInfected = append(newlyInfected, u)
				}
			}
		}
		res.NewPerStep[step] = len(newlyInfected)
		res.TotalInfected += len(newlyInfected)
		// Recoveries.
		kept := active[:0]
		for _, v := range active {
			daysLeft[v]--
			if daysLeft[v] > 0 {
				kept = append(kept, v)
			} else {
				state[v] = recovered
			}
		}
		active = append(kept, newlyInfected...)
		if len(active) == 0 {
			break
		}
	}
	for step, n := range res.NewPerStep {
		if n > res.NewPerStep[res.PeakStep] {
			res.PeakStep = step
		}
	}
	return res
}
