package telemetry

import (
	"context"
	"testing"
	"time"
)

// TestSpanNesting builds a three-level span tree and asserts the
// hierarchy invariant: every child's wall clock is ≤ its parent's.
func TestSpanNesting(t *testing.T) {
	r := New()
	ctx := context.Background()

	ctx, root := r.StartSpan(ctx, "pipeline/run")
	cctx, child := r.StartSpan(ctx, "synth/file")
	_, grand := r.StartSpan(cctx, "synth/gram")
	time.Sleep(2 * time.Millisecond)
	grand.AddCount(7)
	grand.AddBytes(1024)
	gw := grand.End()
	time.Sleep(time.Millisecond)
	cw := child.End()
	rw := root.End()

	if gw > cw || cw > rw {
		t.Fatalf("span walls not nested: grand %v, child %v, root %v", gw, cw, rw)
	}
	if gw <= 0 {
		t.Fatalf("grandchild wall = %v, want > 0", gw)
	}

	roots := r.RootSpans()
	if len(roots) != 1 {
		t.Fatalf("got %d root spans, want 1", len(roots))
	}
	rep := roots[0]
	if rep.Name != "pipeline/run" || len(rep.Children) != 1 {
		t.Fatalf("unexpected root: %+v", rep)
	}
	c := rep.Children[0]
	if c.Name != "synth/file" || len(c.Children) != 1 {
		t.Fatalf("unexpected child: %+v", c)
	}
	g := c.Children[0]
	if g.Name != "synth/gram" || g.Count != 7 || g.Bytes != 1024 {
		t.Fatalf("unexpected grandchild: %+v", g)
	}
	if g.WallNs > c.WallNs || c.WallNs > rep.WallNs {
		t.Fatalf("report walls not nested: %d %d %d", g.WallNs, c.WallNs, rep.WallNs)
	}

	// Ending publishes into the histogram named after the span.
	if got := r.Histogram("synth_gram_seconds").Count(); got != 1 {
		t.Fatalf("synth_gram_seconds count = %d, want 1", got)
	}
}

func TestSpanDisabledStillMeasures(t *testing.T) {
	r := New()
	r.SetEnabled(false)
	ctx, sp := r.StartSpan(context.Background(), "synth/load")
	if ctx != context.Background() {
		t.Fatal("disabled StartSpan wrapped the context")
	}
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < 500*time.Microsecond {
		t.Fatalf("disabled span wall = %v, want ≥ 0.5ms", d)
	}
	if len(r.RootSpans()) != 0 {
		t.Fatal("disabled span was retained")
	}
	if r.Histogram("synth_load_seconds").Count() != 0 {
		t.Fatal("disabled span published to a histogram")
	}
	// End is idempotent and nil-safe.
	first := sp.End()
	if again := sp.End(); again != first {
		t.Fatalf("second End = %v, want %v", again, first)
	}
	var nilSpan *Span
	if nilSpan.End() != 0 || nilSpan.Wall() != 0 || nilSpan.Name() != "" {
		t.Fatal("nil span misbehaved")
	}
	nilSpan.AddBytes(1)
	nilSpan.AddCount(1)
}

func TestSpanFromContext(t *testing.T) {
	r := New()
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context carried a span")
	}
	ctx, sp := r.StartSpan(context.Background(), "a")
	if SpanFromContext(ctx) != sp {
		t.Fatal("context did not carry the started span")
	}
	sp.End()
}

func TestRootSpanRetentionBound(t *testing.T) {
	r := New()
	for i := 0; i < maxRootSpans+10; i++ {
		_, sp := r.StartSpan(context.Background(), "x")
		sp.End()
	}
	if got := len(r.RootSpans()); got != maxRootSpans {
		t.Fatalf("retained %d roots, want %d", got, maxRootSpans)
	}
}

func TestHistName(t *testing.T) {
	if got := HistName("synth/gram"); got != "synth_gram_seconds" {
		t.Fatalf("HistName = %q", got)
	}
}
