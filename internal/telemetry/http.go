package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the opt-in live-introspection endpoint behind
// -telemetry-addr. It serves
//
//	/metrics      Prometheus text exposition of the registry
//	/snapshot     the registry Snapshot as JSON (exact bucket counts —
//	              what cmd/netlaunch scrapes to build its merged view)
//	/debug/vars   expvar JSON (the registry snapshot under "telemetry")
//	/debug/pprof  the standard net/http/pprof profiles
//
// on its own mux, so mounting it never pollutes http.DefaultServeMux
// routes beyond what importing net/http/pprof already does.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// expvarOnce guards the process-global expvar.Publish: expvar panics on
// duplicate names, and two Serve calls (tests, restarts) must not crash.
var expvarOnce sync.Once

// Serve starts the Default registry's HTTP endpoint on addr (e.g.
// ":9090" or "127.0.0.1:0") and enables the registry — an endpoint over
// frozen zero series would be useless. It returns immediately; the
// listener runs until Close.
func Serve(addr string) (*Server, error) { return Default.Serve(addr) }

// Serve starts the registry's HTTP endpoint on addr. See the
// package-level Serve.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.SetEnabled(true)
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any { return r.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
