package telemetry

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// This file implements the SIGQUIT flight recorder: a signal handler
// that dumps the registry's current state — the full Prometheus
// exposition plus every retained root span tree — to a writer
// (stderr), without terminating the process. A wedged distributed run
// becomes diagnosable with `kill -QUIT <pid>` per rank: the operator
// sees which stage each rank is stuck in and what it had counted so
// far, where the Go runtime's default SIGQUIT reaction would have
// destroyed the process to print goroutines.

// flightOnce guards signal.Notify registration per process; repeated
// installs (tests, both phases of a command) just swap the sink.
var (
	flightOnce sync.Once
	flightMu   sync.Mutex
	flightReg  *Registry
	flightTool string
	flightW    io.Writer
)

// InstallFlightRecorder wires the registry to the process's SIGQUIT
// handler on the Default registry.
func InstallFlightRecorder(tool string, w io.Writer) {
	Default.InstallFlightRecorder(tool, w)
}

// InstallFlightRecorder arranges for SIGQUIT to dump this registry's
// metrics snapshot and retained root span trees to w, tagged with the
// tool name. The process keeps running afterwards. Installing again
// replaces the registry/tool/writer; the signal handler itself is
// registered once per process.
func (r *Registry) InstallFlightRecorder(tool string, w io.Writer) {
	if w == nil {
		w = os.Stderr
	}
	flightMu.Lock()
	flightReg, flightTool, flightW = r, tool, w
	flightMu.Unlock()
	flightOnce.Do(func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGQUIT)
		go func() {
			for range ch {
				flightMu.Lock()
				reg, name, sink := flightReg, flightTool, flightW
				flightMu.Unlock()
				DumpFlightRecord(sink, reg, name)
			}
		}()
	})
}

// DumpFlightRecord writes one flight-recorder frame: a header, the
// Prometheus exposition of the registry, and the retained root span
// trees rendered the way `netstat trace` renders them. It is the
// SIGQUIT payload but is also callable directly (tests, crash paths).
func DumpFlightRecord(w io.Writer, r *Registry, tool string) {
	fmt.Fprintf(w, "\n==== flight record: %s pid=%d %s ====\n",
		tool, os.Getpid(), time.Now().UTC().Format(time.RFC3339Nano))
	if !r.Enabled() {
		fmt.Fprintln(w, "(telemetry disabled; enable with -telemetry-addr or -report)")
	}
	if err := r.WritePrometheus(w); err != nil {
		fmt.Fprintf(w, "flight record: metrics: %v\n", err)
	}
	roots := r.RootSpans()
	if len(roots) > 0 {
		fmt.Fprintf(w, "---- %d retained span tree(s) ----\n", len(roots))
		for _, sp := range roots {
			renderSpanTree(w, sp, "", 0)
		}
	}
	fmt.Fprintf(w, "==== end flight record ====\n")
}
