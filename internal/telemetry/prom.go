package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-buckets plus _sum/_count.
// Series are emitted in lexical name order so the output is
// deterministic (the golden test relies on it). Durations are exposed
// in seconds, matching the *_seconds naming scheme.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	for _, name := range sortedKeys(snap.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, snap.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		if err := writePromHistogram(w, name, snap.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i := 0; i < NumBuckets && i < len(h.BucketCounts); i++ {
		cum += h.BucketCounts[i]
		le := formatSeconds(BucketBound(i))
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatSeconds(h.SumNs)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	return err
}

// formatSeconds renders a nanosecond quantity as seconds with the
// shortest exact float representation (strconv 'g', precision -1).
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}
