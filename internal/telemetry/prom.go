package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-buckets plus _sum/_count.
// Series are emitted in lexical name order so the output is
// deterministic (the golden test relies on it). Durations are exposed
// in seconds, matching the *_seconds naming scheme.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	return WriteSnapshotPrometheus(w, snap, nil)
}

// Label is one exposition label. Labels are kept as an ordered slice
// (not a map) so rendered output is deterministic.
type Label struct {
	Name  string
	Value string
}

// escapeLabelValue applies the Prometheus text-format label-value
// escaping: backslash, double quote and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// renderLabels renders `a="x",b="y"` (no braces) or "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		// Not %q: Go quoting would re-escape the backslashes that
		// escapeLabelValue just produced (and escape characters the
		// Prometheus text format passes through verbatim).
		parts[i] = l.Name + `="` + escapeLabelValue(l.Value) + `"`
	}
	return strings.Join(parts, ",")
}

// labelSuffix renders the full `{...}` sample suffix, or "".
func labelSuffix(labels []Label) string {
	body := renderLabels(labels)
	if body == "" {
		return ""
	}
	return "{" + body + "}"
}

// WriteSnapshotPrometheus renders one snapshot with the given labels
// attached to every sample — the single-process exposition is the
// nil-labels case, and netlaunch uses rank labels to distinguish
// processes on its merged endpoint.
func WriteSnapshotPrometheus(w io.Writer, snap Snapshot, labels []Label) error {
	ls := labelSuffix(labels)
	for _, name := range sortedKeys(snap.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", name, name, ls, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", name, name, ls, snap.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		if err := writePromHistogram(w, name, snap.Histograms[name], labels); err != nil {
			return err
		}
	}
	return nil
}

// LabeledSnapshot pairs one process's snapshot with the labels that
// identify it on a merged exposition (typically rank="N").
type LabeledSnapshot struct {
	Labels []Label
	Snap   Snapshot
}

// WriteClusterPrometheus renders several labeled snapshots as one valid
// exposition: each metric name gets a single # TYPE line followed by
// one labeled sample (or labeled bucket set) per snapshot that carries
// the series. Snapshot order is preserved per series, so scrapers see
// ranks in rank order when the caller sorts its inputs.
func WriteClusterPrometheus(w io.Writer, snaps []LabeledSnapshot) error {
	type kind struct {
		typ string // "counter", "gauge", "histogram"
	}
	kinds := map[string]kind{}
	for _, s := range snaps {
		for name := range s.Snap.Counters {
			kinds[name] = kind{"counter"}
		}
		for name := range s.Snap.Gauges {
			kinds[name] = kind{"gauge"}
		}
		for name := range s.Snap.Histograms {
			kinds[name] = kind{"histogram"}
		}
	}
	names := make([]string, 0, len(kinds))
	for n := range kinds {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		k := kinds[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, k.typ); err != nil {
			return err
		}
		for _, s := range snaps {
			switch k.typ {
			case "counter":
				v, ok := s.Snap.Counters[name]
				if !ok {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s%s %d\n", name, labelSuffix(s.Labels), v); err != nil {
					return err
				}
			case "gauge":
				v, ok := s.Snap.Gauges[name]
				if !ok {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s%s %d\n", name, labelSuffix(s.Labels), v); err != nil {
					return err
				}
			case "histogram":
				h, ok := s.Snap.Histograms[name]
				if !ok {
					continue
				}
				if err := writePromHistogram(w, name, h, s.Labels); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writePromHistogram emits one histogram's cumulative buckets, sum and
// count, with labels (plus le) on every sample. The # TYPE line is the
// caller's responsibility so merged expositions can share it.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot, labels []Label) error {
	base := renderLabels(labels)
	sep := ""
	if base != "" {
		sep = ","
	}
	var cum int64
	for i := 0; i < NumBuckets && i < len(h.BucketCounts); i++ {
		cum += h.BucketCounts[i]
		le := formatSeconds(BucketBound(i))
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, base, sep, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, base, sep, h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelSuffix(labels), formatSeconds(h.SumNs)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelSuffix(labels), h.Count)
	return err
}

// formatSeconds renders a nanosecond quantity as seconds with the
// shortest exact float representation (strconv 'g', precision -1).
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}
