package telemetry

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("x_total")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("y")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestDisabledRegistryIsNoop(t *testing.T) {
	r := New()
	r.SetEnabled(false)
	c := r.Counter("x_total")
	c.Add(10)
	r.Gauge("y").Set(3)
	h := r.Histogram("z_seconds")
	h.Observe(time.Second)
	sw := r.Clock()
	if sw.start != 0 {
		t.Fatal("Clock on a disabled registry read the clock")
	}
	if d := sw.Observe(h); d != 0 {
		t.Fatalf("disabled stopwatch observed %v", d)
	}
	if c.Value() != 0 || r.Gauge("y").Value() != 0 || h.Count() != 0 {
		t.Fatal("disabled registry recorded values")
	}
	// Nil handles are safe too.
	var nc *Counter
	nc.Add(1)
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("q_seconds")
	// 100 observations spread over two decades.
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 4*time.Microsecond || p50 > 16*time.Microsecond {
		t.Fatalf("p50 = %v, want ≈10µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 4*time.Millisecond || p99 > 17*time.Millisecond {
		t.Fatalf("p99 = %v, want ≈10ms", p99)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramOverflow(t *testing.T) {
	r := New()
	h := r.Histogram("o_seconds")
	h.Observe(time.Duration(BucketBound(NumBuckets-1)) * 4) // beyond the finite range
	if got, want := h.Quantile(0.5), time.Duration(BucketBound(NumBuckets-1)); got != want {
		t.Fatalf("overflow quantile = %v, want %v", got, want)
	}
}

// TestRegistryConcurrency hammers one registry from GOMAXPROCS
// goroutines — metric creation, counter adds, histogram observes, and
// concurrent snapshot/exposition readers — and checks the totals. Run
// with -race this is the registry's data-race proof.
func TestRegistryConcurrency(t *testing.T) {
	r := New()
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hammer_total")
			h := r.Histogram("hammer_seconds")
			g := r.Gauge("hammer_gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				g.Set(int64(i))
				// Exercise registration under contention too.
				r.Counter(fmt.Sprintf("shared_%d_total", i%8)).Inc()
				if i%500 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Errorf("WritePrometheus: %v", err)
						return
					}
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	want := int64(workers * perWorker)
	if got := r.Counter("hammer_total").Value(); got != want {
		t.Fatalf("hammer_total = %d, want %d", got, want)
	}
	if got := r.Histogram("hammer_seconds").Count(); got != want {
		t.Fatalf("hammer_seconds count = %d, want %d", got, want)
	}
	var shared int64
	for i := 0; i < 8; i++ {
		shared += r.Counter(fmt.Sprintf("shared_%d_total", i)).Value()
	}
	if shared != want {
		t.Fatalf("shared counters sum = %d, want %d", shared, want)
	}
}

func TestSnapshotIsConsistentCopy(t *testing.T) {
	r := New()
	r.Counter("a_total").Add(5)
	r.Histogram("b_seconds").Observe(3 * time.Millisecond)
	s := r.Snapshot()
	r.Counter("a_total").Add(100)
	if s.Counters["a_total"] != 5 {
		t.Fatalf("snapshot mutated: %d", s.Counters["a_total"])
	}
	if s.Histograms["b_seconds"].Count != 1 {
		t.Fatalf("histogram snapshot count = %d", s.Histograms["b_seconds"].Count)
	}
	if len(s.Histograms["b_seconds"].BucketCounts) != NumBuckets+1 {
		t.Fatalf("bucket count slice length %d", len(s.Histograms["b_seconds"].BucketCounts))
	}
}

func TestNumSeries(t *testing.T) {
	r := New()
	r.Counter("a_total")
	r.Gauge("b")
	r.Histogram("c_seconds")
	if n := r.NumSeries(); n != 3 {
		t.Fatalf("NumSeries = %d, want 3", n)
	}
}
