// Package telemetry is the pipeline's zero-dependency observability
// spine: a lock-cheap metrics registry (counters, gauges, timing
// histograms with quantile estimation), hierarchical spans carried
// through context.Context, per-rank roll-ups, a Prometheus/expvar/pprof
// HTTP endpoint, and a machine-readable JSON run report.
//
// # Naming scheme
//
// Every metric name follows stage_metric_unit:
//
//	synth_gram_seconds        timing histogram of the stage-4 kernel
//	eventlog_flush_bytes_total  counter of flushed log bytes
//	abm_hours_total           counter of simulated hours
//
// Counters end in _total, timing histograms in _seconds, gauges in a
// bare unit. The stage prefixes are abm, eventlog, h5, synth, mpinet,
// mpi, fault, batch and analysis — one per pipeline layer.
//
// # Cost model
//
// The registry is disabled by default. Disabled, every instrumentation
// site costs a single atomic load (the shared enabled flag) and no
// clock reads, so production binaries that never pass -telemetry-addr
// pay nothing measurable. Enabled, a counter add is one atomic add and
// a histogram observation is two atomic adds plus a bucket index — no
// locks on the hot path. Registration (Counter/Gauge/Histogram lookup)
// takes a read lock and is meant to be done once, at package init or
// before a loop, never per operation. The enforced budget is ≤ 5%
// overhead on BenchmarkT3Synthesis with telemetry enabled (see
// scripts/check.sh).
//
// Metrics are identified by name alone: two packages that register the
// same name share the same series. Recovery sites, for example, all
// count into fault_recovered_total without importing each other.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Default is the process-wide registry every package-level helper
// (C, G, H, StartSpan, Serve) uses. It starts disabled; commands enable
// it with SetEnabled(true) when -telemetry-addr or -report is given.
var Default = newRegistry(false)

// Registry holds a process's metric series and completed root spans.
// All methods are safe for concurrent use.
type Registry struct {
	enabled atomic.Bool

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	rootMu sync.Mutex
	roots  []*Span
}

// New returns a fresh, enabled registry — the form tests use so they
// never race on Default's cumulative counters.
func New() *Registry { return newRegistry(true) }

func newRegistry(enabled bool) *Registry {
	r := &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
	r.enabled.Store(enabled)
	return r
}

// SetEnabled turns the registry's instrumentation on or off. Metric
// handles stay valid either way; disabled handles are no-ops.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether instrumentation is live.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// SetEnabled enables or disables the Default registry.
func SetEnabled(on bool) { Default.SetEnabled(on) }

// Enabled reports whether the Default registry is live.
func Enabled() bool { return Default.Enabled() }

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing series. The zero-cost contract:
// Add on a disabled registry is one atomic load and a branch.
type Counter struct {
	name string
	r    *Registry
	v    atomic.Int64
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{name: name, r: r}
	r.counters[name] = c
	return c
}

// C returns the named counter of the Default registry.
func C(name string) *Counter { return Default.Counter(name) }

// Name returns the series name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n when the registry is enabled.
func (c *Counter) Add(n int64) {
	if c == nil || !c.r.enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a series that can go up and down (e.g. armed fault points).
type Gauge struct {
	name string
	r    *Registry
	v    atomic.Int64
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{name: name, r: r}
	r.gauges[name] = g
	return g
}

// G returns the named gauge of the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// Name returns the series name.
func (g *Gauge) Name() string { return g.name }

// Set stores v when the registry is enabled.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.r.enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta when the registry is enabled.
func (g *Gauge) Add(delta int64) {
	if g == nil || !g.r.enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// ---------------------------------------------------------------------------
// Histogram

// NumBuckets is the number of finite histogram buckets. Bucket i covers
// durations up to 1µs·2^i, so the finite range spans 1µs to ~36min;
// observations beyond the last bound land in the overflow (+Inf)
// bucket. Boundaries are fixed so histograms from different ranks
// merge by element-wise addition.
const NumBuckets = 31

// BucketBound returns the inclusive upper bound of finite bucket i in
// nanoseconds.
func BucketBound(i int) int64 { return int64(1000) << uint(i) }

// Histogram is a timing histogram with exponential buckets and
// p50/p95/p99 estimation. Observations are lock-free: one bucket
// atomic add plus sum/count atomic adds.
type Histogram struct {
	name    string
	r       *Registry
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [NumBuckets + 1]atomic.Int64
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{name: name, r: r}
	r.hists[name] = h
	return h
}

// H returns the named histogram of the Default registry.
func H(name string) *Histogram { return Default.Histogram(name) }

// Name returns the series name.
func (h *Histogram) Name() string { return h.name }

// bucketIndex maps a duration in nanoseconds to its bucket.
func bucketIndex(ns int64) int {
	for i := 0; i < NumBuckets; i++ {
		if ns <= BucketBound(i) {
			return i
		}
	}
	return NumBuckets // overflow
}

// Observe records one duration when the registry is enabled.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil || !h.r.enabled.Load() {
		return
	}
	h.observe(int64(d))
}

// observe records unconditionally (internal; used once gating already
// happened).
func (h *Histogram) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear
// interpolation within the target bucket. It returns 0 for an empty
// histogram and the last finite bound for observations that overflowed.
func (h *Histogram) Quantile(q float64) time.Duration {
	var counts [NumBuckets + 1]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	return time.Duration(quantileFromBuckets(counts[:], h.count.Load(), q))
}

// quantileFromBuckets is the shared quantile estimator over a per-bucket
// (non-cumulative) count slice — the same math backs live Histograms and
// merged HistogramSnapshots, so a cluster roll-up reports quantiles the
// way any single rank would.
func quantileFromBuckets(counts []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i <= NumBuckets && i < len(counts); i++ {
		n := counts[i]
		if cum+n < target {
			cum += n
			continue
		}
		if i == NumBuckets {
			return BucketBound(NumBuckets - 1)
		}
		lo := int64(0)
		if i > 0 {
			lo = BucketBound(i - 1)
		}
		hi := BucketBound(i)
		if n == 0 {
			return hi
		}
		frac := float64(target-cum) / float64(n)
		return int64(float64(lo) + frac*float64(hi-lo))
	}
	return BucketBound(NumBuckets - 1)
}

// ---------------------------------------------------------------------------
// Stopwatch

// Stopwatch times one operation with no cost when the registry is
// disabled: Clock() then reads no clock and Observe() is a no-op.
//
//	sw := telemetry.Clock()
//	... work ...
//	sw.Observe(hist)
type Stopwatch struct {
	start int64 // UnixNano; 0 = disabled at Clock() time
}

// Clock starts a stopwatch if the Default registry is enabled.
func Clock() Stopwatch { return Default.Clock() }

// Clock starts a stopwatch if the registry is enabled.
func (r *Registry) Clock() Stopwatch {
	if !r.enabled.Load() {
		return Stopwatch{}
	}
	return Stopwatch{start: time.Now().UnixNano()}
}

// Observe records the elapsed time into h. A stopwatch started while
// disabled records nothing.
func (sw Stopwatch) Observe(h *Histogram) time.Duration {
	if sw.start == 0 || h == nil {
		return 0
	}
	d := time.Now().UnixNano() - sw.start
	if h.r.enabled.Load() {
		h.observe(d)
	}
	return time.Duration(d)
}

// ---------------------------------------------------------------------------
// Snapshots

// HistogramSnapshot is a point-in-time copy of one histogram, with
// pre-computed quantiles. BucketCounts are per-bucket (not cumulative),
// index NumBuckets being the overflow bucket; they are retained so
// snapshots from several ranks can be merged exactly.
type HistogramSnapshot struct {
	Count        int64   `json:"count"`
	SumNs        int64   `json:"sum_ns"`
	P50Ns        int64   `json:"p50_ns"`
	P95Ns        int64   `json:"p95_ns"`
	P99Ns        int64   `json:"p99_ns"`
	BucketCounts []int64 `json:"bucket_counts"`
}

// Snapshot is a point-in-time copy of a whole registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every series. The maps are always non-nil so the
// snapshot round-trips through JSON unchanged.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:        h.count.Load(),
			SumNs:        h.sum.Load(),
			P50Ns:        int64(h.Quantile(0.50)),
			P95Ns:        int64(h.Quantile(0.95)),
			P99Ns:        int64(h.Quantile(0.99)),
			BucketCounts: make([]int64, NumBuckets+1),
		}
		for i := range hs.BucketCounts {
			hs.BucketCounts[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Merge combines two histogram snapshots by element-wise bucket
// addition and recomputes the quantiles from the merged buckets. The
// bucket boundaries are fixed (BucketBound), so the merge is exact:
// associative, commutative, and identical to having observed both
// series into one histogram. Short or missing bucket slices (e.g. a
// snapshot decoded from an older producer) are treated as zeros.
func (h HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	m := HistogramSnapshot{
		Count:        h.Count + o.Count,
		SumNs:        h.SumNs + o.SumNs,
		BucketCounts: make([]int64, NumBuckets+1),
	}
	for i := range m.BucketCounts {
		if i < len(h.BucketCounts) {
			m.BucketCounts[i] += h.BucketCounts[i]
		}
		if i < len(o.BucketCounts) {
			m.BucketCounts[i] += o.BucketCounts[i]
		}
	}
	m.P50Ns = quantileFromBuckets(m.BucketCounts, m.Count, 0.50)
	m.P95Ns = quantileFromBuckets(m.BucketCounts, m.Count, 0.95)
	m.P99Ns = quantileFromBuckets(m.BucketCounts, m.Count, 0.99)
	return m
}

// Merge combines two registry snapshots: counters and gauges add,
// histograms merge bucket-exactly. Neither input is mutated. Adding
// gauges is the useful cluster semantic (armed fault points, staleness
// milliseconds summed across ranks are still inspectable per rank on
// the labeled exposition).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	m := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)+len(o.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)+len(o.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)+len(o.Histograms)),
	}
	for k, v := range s.Counters {
		m.Counters[k] = v
	}
	for k, v := range o.Counters {
		m.Counters[k] += v
	}
	for k, v := range s.Gauges {
		m.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		m.Gauges[k] += v
	}
	for k, v := range s.Histograms {
		m.Histograms[k] = v.Merge(HistogramSnapshot{})
	}
	for k, v := range o.Histograms {
		if prev, ok := m.Histograms[k]; ok {
			m.Histograms[k] = prev.Merge(v)
		} else {
			m.Histograms[k] = HistogramSnapshot{}.Merge(v)
		}
	}
	return m
}

// MergeSnapshots folds any number of snapshots into one (the netlaunch
// cluster roll-up). Zero inputs yield an empty, non-nil-map snapshot.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	m := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range snaps {
		m = m.Merge(s)
	}
	return m
}

// sortedKeys returns the map's keys in lexical order — the exposition
// and report renderers need deterministic output.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// NumSeries returns the number of distinct registered series names.
func (r *Registry) NumSeries() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.counters) + len(r.gauges) + len(r.hists)
}
