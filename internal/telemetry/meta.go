package telemetry

import (
	"runtime"
	"time"
)

// BenchMetaSchema versions the shared BENCH_*.json metadata block; bump
// it when the block's shape changes.
const BenchMetaSchema = 1

// BenchMeta is the provenance stamp every BENCH_*.json writer embeds
// under "meta": which tool produced the file, with what configuration,
// on which toolchain. Benchmark files without it are bare numbers that
// cannot be compared across machines or commits.
type BenchMeta struct {
	Schema        int               `json:"schema"`
	Tool          string            `json:"tool"`
	GoVersion     string            `json:"go_version"`
	GOMAXPROCS    int               `json:"gomaxprocs"`
	NumCPU        int               `json:"num_cpu"`
	CreatedUnixNs int64             `json:"created_unix_ns"`
	Config        map[string]string `json:"config,omitempty"`
}

// NewBenchMeta stamps a metadata block for tool with the given config
// echo (flag name → value as given).
func NewBenchMeta(tool string, config map[string]string) BenchMeta {
	return BenchMeta{
		Schema:        BenchMetaSchema,
		Tool:          tool,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		CreatedUnixNs: time.Now().UnixNano(),
		Config:        config,
	}
}
