package telemetry

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements hierarchical spans. A span attributes wall
// clock, bytes and a count to one named region of the pipeline
// ("synth/gram", "abm/rank", ...). Spans nest through context.Context:
// StartSpan on a context that already carries a live span records the
// new span as its child, so a run produces a tree
//
//	pipeline/synthesize
//	└── synth/file
//	    ├── synth/load
//	    ├── synth/build
//	    ├── synth/gram
//	    └── synth/reduce
//
// Ending a span publishes its wall time into the histogram named after
// it (slashes become underscores, "_seconds" appended: "synth/gram" →
// synth_gram_seconds), so span timings appear on /metrics with no
// extra instrumentation.
//
// Cost contract: a span ALWAYS measures its wall time — callers such as
// core.Stats read durations from spans whether or not telemetry is
// enabled, which is what makes Stats a per-run view over the same
// measurements the registry publishes. Publication (histogram observe,
// tree linkage, root retention) happens only when the registry is
// enabled; disabled, StartSpan allocates one small struct, reads the
// clock once, and returns the caller's context unchanged (no
// context.WithValue allocation).

type spanKey struct{}

// maxRootSpans bounds how many completed root spans a registry retains
// (newest win); a long-lived server must not accumulate span trees
// without bound.
const maxRootSpans = 64

// Span is one timed region. Bytes and Count accumulate attributed
// volume (log bytes flushed, entries processed, ...). A Span's methods
// are safe on a nil receiver, so call sites never need to check.
type Span struct {
	name   string
	reg    *Registry
	parent *Span
	start  time.Time

	bytes atomic.Int64
	count atomic.Int64
	ended atomic.Bool
	wall  atomic.Int64 // ns, set once by End

	mu       sync.Mutex
	children []*Span
}

// StartSpan begins a span on the Default registry.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return Default.StartSpan(ctx, name)
}

// StartSpan begins a named span. The returned context carries the span
// so nested StartSpan calls build a tree; pass it down the existing
// context plumbing. Always call End (or EndSpan) exactly once.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{name: name, reg: r, start: time.Now()}
	if !r.enabled.Load() {
		return ctx, sp
	}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok {
		sp.parent = parent
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SpanFromContext returns the innermost live span carried by ctx, or
// nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// AddBytes attributes n bytes to the span.
func (s *Span) AddBytes(n int64) {
	if s == nil {
		return
	}
	s.bytes.Add(n)
}

// AddCount attributes n items to the span.
func (s *Span) AddCount(n int64) {
	if s == nil {
		return
	}
	s.count.Add(n)
}

// Wall returns the span's wall time: the final duration once ended,
// the running duration before.
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	if s.ended.Load() {
		return time.Duration(s.wall.Load())
	}
	return time.Since(s.start)
}

// End stops the span, returning its wall time. When the registry is
// enabled the wall time is observed into the span's histogram
// (HistName) and the span is linked under its parent — or retained as
// a root span for the run report when it has none. End is idempotent.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	if !s.ended.CompareAndSwap(false, true) {
		return time.Duration(s.wall.Load())
	}
	d := time.Since(s.start)
	s.wall.Store(int64(d))
	if s.reg != nil && s.reg.enabled.Load() {
		s.reg.Histogram(HistName(s.name)).observe(int64(d))
		if s.parent != nil {
			s.parent.mu.Lock()
			s.parent.children = append(s.parent.children, s)
			s.parent.mu.Unlock()
		} else {
			s.reg.addRoot(s)
		}
	}
	return d
}

// HistName maps a span name to its histogram series:
// "synth/gram" → "synth_gram_seconds".
func HistName(span string) string {
	return strings.ReplaceAll(span, "/", "_") + "_seconds"
}

func (r *Registry) addRoot(s *Span) {
	r.rootMu.Lock()
	defer r.rootMu.Unlock()
	r.roots = append(r.roots, s)
	if n := len(r.roots) - maxRootSpans; n > 0 {
		r.roots = append(r.roots[:0], r.roots[n:]...)
	}
}

// SpanReport is the serializable form of a completed span subtree.
type SpanReport struct {
	Name     string       `json:"name"`
	WallNs   int64        `json:"wall_ns"`
	Bytes    int64        `json:"bytes,omitempty"`
	Count    int64        `json:"count,omitempty"`
	Children []SpanReport `json:"children,omitempty"`
}

// Report snapshots the span subtree. Children appear in the order they
// ended.
func (s *Span) Report() SpanReport {
	rep := SpanReport{
		Name:   s.name,
		WallNs: int64(s.Wall()),
		Bytes:  s.bytes.Load(),
		Count:  s.count.Load(),
	}
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		rep.Children = append(rep.Children, c.Report())
	}
	return rep
}

// RootSpans returns reports for the retained completed root spans,
// oldest first.
func (r *Registry) RootSpans() []SpanReport {
	r.rootMu.Lock()
	roots := append([]*Span(nil), r.roots...)
	r.rootMu.Unlock()
	out := make([]SpanReport, 0, len(roots))
	for _, s := range roots {
		out = append(out, s.Report())
	}
	return out
}
