package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestSnapshotEndpoint checks that /snapshot serves the registry's
// serializable form: a JSON Snapshot that decodes back to exactly what
// Registry.Snapshot returns, exact bucket counts included. This is the
// contract cmd/netlaunch's scrape loop depends on.
func TestSnapshotEndpoint(t *testing.T) {
	r := New()
	r.Counter("obs_entries_total").Add(42)
	r.Gauge("obs_depth").Set(-7)
	h := r.Histogram("obs_round_seconds")
	h.Observe(3 * time.Millisecond)
	h.Observe(90 * time.Millisecond)
	h.Observe(2 * time.Hour) // overflow bucket

	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/snapshot content type %q", ct)
	}
	var got Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r.Snapshot()) {
		t.Fatalf("decoded /snapshot differs from Registry.Snapshot:\n got %+v\nwant %+v",
			got, r.Snapshot())
	}
	if got.Histograms["obs_round_seconds"].BucketCounts[NumBuckets] != 1 {
		t.Fatal("overflow observation lost in the wire snapshot")
	}
}

// TestPrometheusLabelEscaping pins the text-format escaping rules for
// label values: backslash, double quote and newline must be escaped,
// everything else passed through.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("esc_total").Add(1)
	var b strings.Builder
	err := WriteSnapshotPrometheus(&b, r.Snapshot(), []Label{
		{Name: "rank", Value: `back\slash "quote"` + "\nnewline"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `esc_total{rank="back\\slash \"quote\"\nnewline"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped sample missing:\nwant %s\ngot  %s", want, b.String())
	}
	// The cheap path: a clean value must come through verbatim.
	if got := escapeLabelValue("rank-3"); got != "rank-3" {
		t.Fatalf("clean value mangled: %q", got)
	}
}

// TestDebugVarsSnapshot checks /debug/vars carries the registry
// snapshot under the "telemetry" key with live values.
func TestDebugVarsSnapshot(t *testing.T) {
	r := New()
	r.Counter("vars_probe_total").Add(5)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Telemetry Snapshot `json:"telemetry"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	// expvar publishing is process-global and bound to the first registry
	// that served; accept either that registry's counter or ours, but the
	// key itself must decode as a Snapshot.
	if vars.Telemetry.Counters == nil {
		t.Fatalf("/debug/vars %q key missing or not a snapshot:\n%s", "telemetry", body)
	}
}

// TestHistogramMergeAlgebra checks the merge laws the cluster roll-up
// leans on: commutativity, associativity, and agreement with a single
// histogram that observed every value — quantiles included, since they
// are recomputed from the exact merged buckets.
func TestHistogramMergeAlgebra(t *testing.T) {
	sets := [][]time.Duration{
		{5 * time.Microsecond, 3 * time.Millisecond, 3 * time.Millisecond},
		{40 * time.Millisecond, 2 * time.Second},
		{time.Hour, 700 * time.Nanosecond, 90 * time.Millisecond},
	}
	snaps := make([]HistogramSnapshot, len(sets))
	all := New().Histogram("all")
	for i, ds := range sets {
		h := New().Histogram("part")
		for _, d := range ds {
			h.Observe(d)
			all.Observe(d)
		}
		reg := h.r.Snapshot()
		snaps[i] = reg.Histograms["part"]
	}
	a, b, c := snaps[0], snaps[1], snaps[2]

	ab, ba := a.Merge(b), b.Merge(a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge not commutative:\n a·b %+v\n b·a %+v", ab, ba)
	}
	left, right := a.Merge(b).Merge(c), a.Merge(b.Merge(c))
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge not associative:\n (a·b)·c %+v\n a·(b·c) %+v", left, right)
	}
	want := all.r.Snapshot().Histograms["all"]
	if !reflect.DeepEqual(left, want) {
		t.Fatalf("merged parts differ from one histogram over all values:\n got %+v\nwant %+v",
			left, want)
	}
	if left.P99Ns == 0 || left.P50Ns > left.P99Ns {
		t.Fatalf("merged quantiles implausible: p50=%d p99=%d", left.P50Ns, left.P99Ns)
	}
}

// TestWriteClusterPrometheus checks the merged exposition: one # TYPE
// line per metric name, every snapshot's sample present under its own
// labels, names in lexical order.
func TestWriteClusterPrometheus(t *testing.T) {
	mk := func(rank string, entries int64) LabeledSnapshot {
		r := New()
		r.Counter("synth_entries_total").Add(entries)
		r.Histogram("round_seconds").Observe(time.Duration(entries) * time.Millisecond)
		return LabeledSnapshot{
			Labels: []Label{{Name: "rank", Value: rank}},
			Snap:   r.Snapshot(),
		}
	}
	var b strings.Builder
	if err := WriteClusterPrometheus(&b, []LabeledSnapshot{mk("0", 10), mk("1", 20)}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n := strings.Count(out, "# TYPE synth_entries_total counter"); n != 1 {
		t.Fatalf("want exactly one TYPE line per name, got %d:\n%s", n, out)
	}
	if n := strings.Count(out, "# TYPE round_seconds histogram"); n != 1 {
		t.Fatalf("want exactly one histogram TYPE line, got %d:\n%s", n, out)
	}
	for _, want := range []string{
		`synth_entries_total{rank="0"} 10`,
		`synth_entries_total{rank="1"} 20`,
		`round_seconds_count{rank="0"} 1`,
		`round_seconds_count{rank="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged exposition missing %q:\n%s", want, out)
		}
	}
	// Prometheus rejects interleaved TYPE blocks: both ranks' counter
	// samples must sit inside the counter's own TYPE block.
	block := out[strings.Index(out, "# TYPE synth_entries_total"):]
	if i := strings.Index(block[1:], "# TYPE"); i >= 0 {
		block = block[:i+1]
	}
	if !strings.Contains(block, `{rank="0"}`) || !strings.Contains(block, `{rank="1"}`) {
		t.Fatalf("counter samples interleave across TYPE blocks:\n%s", out)
	}
}
