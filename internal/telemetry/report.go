package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// This file defines the machine-readable run report: the single JSON
// document a run writes with -report out.json and `netstat report`
// renders as per-stage / per-rank timing tables. The report is the
// paper's Fig. 6/7 load-balancing analysis in file form — per-rank
// busy/comm/idle attribution plus the full metric snapshot.

// StageReport attributes wall clock (and optionally volume) to one
// pipeline stage.
type StageReport struct {
	Name   string `json:"name"`
	WallNs int64  `json:"wall_ns"`
	Count  int64  `json:"count,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
}

// RankReport is one rank's roll-up: where its wall clock went
// (busy/comm/idle), what it processed, and what faults it saw.
// SynthesizeDistributed gathers one of these per rank over the
// transport; single-process runs emit exactly one.
type RankReport struct {
	Rank   int   `json:"rank"`
	WallNs int64 `json:"wall_ns"`
	BusyNs int64 `json:"busy_ns"`
	CommNs int64 `json:"comm_ns"`
	IdleNs int64 `json:"idle_ns"`

	Entries   int64 `json:"entries"`
	Places    int64 `json:"places,omitempty"`
	WorkUnits int64 `json:"work_units,omitempty"`
	Splits    int64 `json:"splits,omitempty"`

	FaultsInjected  int64 `json:"faults_injected,omitempty"`
	FaultsRecovered int64 `json:"faults_recovered,omitempty"`

	// TraceID is the cluster trace this rank participated in (FormatID
	// hex), and Spans are the rank's completed local span subtrees for
	// that trace — shipped over the same best-effort report gather and
	// grafted under the coordinator's root span.
	TraceID string       `json:"trace_id,omitempty"`
	Spans   []SpanReport `json:"spans,omitempty"`
}

// EncodeRank serializes a RankReport for a transport gather.
func EncodeRank(r RankReport) ([]byte, error) { return json.Marshal(r) }

// DecodeRank reverses EncodeRank.
func DecodeRank(b []byte) (RankReport, error) {
	var r RankReport
	if err := json.Unmarshal(b, &r); err != nil {
		return RankReport{}, fmt.Errorf("telemetry: rank report: %w", err)
	}
	return r, nil
}

// BusyImbalance returns max(busy)/mean(busy) across ranks — the Fig.
// 6/7 load-balance figure of merit. It returns 0 when there is nothing
// to measure (no ranks, or no busy time anywhere).
func BusyImbalance(ranks []RankReport) float64 {
	var max, sum int64
	for _, r := range ranks {
		sum += r.BusyNs
		if r.BusyNs > max {
			max = r.BusyNs
		}
	}
	if len(ranks) == 0 || sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(ranks))
	return float64(max) / mean
}

// SupervisionRank is one supervised rank process's lifecycle roll-up.
type SupervisionRank struct {
	Rank int `json:"rank"`
	// Restarts is how many times the supervisor relaunched this rank.
	Restarts int `json:"restarts"`
	// Degraded marks a rank whose restart budget ran out; the run
	// continued without it (the synthesis re-striped its files).
	Degraded bool `json:"degraded,omitempty"`
	// PeakRSSKiB is the maximum resident set size across the rank's
	// incarnations, in KiB.
	PeakRSSKiB int64 `json:"peak_rss_kib,omitempty"`
	// ExitCode is the final incarnation's exit code.
	ExitCode int `json:"exit_code"`
}

// SupervisionReport summarizes what a supervisor (cmd/netlaunch) did to
// keep a multi-process run alive: restarts, gang relaunches, storms,
// and which ranks the run ultimately gave up on.
type SupervisionReport struct {
	// Mode is the supervision strategy: "gang" (simulation phase,
	// restart everyone with -resume) or "per-rank" (synthesis phase,
	// claim-token rejoin).
	Mode string `json:"mode"`
	// GangRestarts counts whole-gang relaunches (gang mode only).
	GangRestarts int `json:"gang_restarts,omitempty"`
	// Storm marks a restart storm: the supervisor stopped restarting
	// and let the run degrade.
	Storm bool `json:"storm,omitempty"`
	// WallNs is the phase's wall clock under supervision.
	WallNs int64 `json:"wall_ns"`
	// Ranks holds the per-rank lifecycle roll-ups.
	Ranks []SupervisionRank `json:"ranks,omitempty"`
}

// Report is the machine-readable run report.
type Report struct {
	// Command names the producing tool ("netsynth", "chisim", ...).
	Command string `json:"command"`
	// CreatedUnixNs is the report creation time (UnixNano; an integer
	// so the document round-trips exactly).
	CreatedUnixNs int64 `json:"created_unix_ns"`
	// Stages attributes wall clock per pipeline stage.
	Stages []StageReport `json:"stages,omitempty"`
	// Ranks holds the per-rank roll-ups.
	Ranks []RankReport `json:"ranks,omitempty"`
	// Supervision, when present, summarizes the process supervision a
	// launcher applied to the run (restarts, storms, degraded ranks).
	Supervision []SupervisionReport `json:"supervision,omitempty"`
	// Metrics is the full registry snapshot at report time.
	Metrics Snapshot `json:"metrics"`
	// Spans are the retained completed root span trees.
	Spans []SpanReport `json:"spans,omitempty"`
	// TraceID names the distributed trace this report's span trees
	// stitch into, when the run produced one (FormatID hex).
	TraceID string `json:"trace_id,omitempty"`
}

// Report builds a run report from the registry's current state.
// Callers append Stages and Ranks before writing it out.
func (r *Registry) Report(command string) *Report {
	return &Report{
		Command:       command,
		CreatedUnixNs: time.Now().UnixNano(),
		Metrics:       r.Snapshot(),
		Spans:         r.RootSpans(),
	}
}

// WriteFile writes the report as indented JSON.
func (rep *Report) WriteFile(path string) error {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// ReadReportFile reads a report written by WriteFile.
func ReadReportFile(path string) (*Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("telemetry: %s: %w", path, err)
	}
	return &rep, nil
}

// fmtNs renders a nanosecond quantity as a rounded duration.
func fmtNs(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// Render writes the human-readable per-stage / per-rank timing tables —
// the `netstat report` view of the document.
func (rep *Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "run report: %s (created %s)\n",
		rep.Command, time.Unix(0, rep.CreatedUnixNs).UTC().Format(time.RFC3339))

	if len(rep.Stages) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "\nstage\twall\tcount\tbytes\n")
		var total int64
		for _, st := range rep.Stages {
			total += st.WallNs
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", st.Name, fmtNs(st.WallNs), orDash(st.Count), orDash(st.Bytes))
		}
		fmt.Fprintf(tw, "total\t%s\t\t\n", fmtNs(total))
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(rep.Ranks) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "\nrank\twall\tbusy\tcomm\tidle\tentries\tplaces\tunits\tfaults inj/rec\n")
		for _, r := range rep.Ranks {
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%d\t%s\t%s\t%d/%d\n",
				r.Rank, fmtNs(r.WallNs), fmtNs(r.BusyNs), fmtNs(r.CommNs), fmtNs(r.IdleNs),
				r.Entries, orDash(r.Places), orDash(r.WorkUnits),
				r.FaultsInjected, r.FaultsRecovered)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(w, "busy imbalance (max/mean): %.2f\n", BusyImbalance(rep.Ranks))
	}

	for _, sup := range rep.Supervision {
		fmt.Fprintf(w, "\nsupervision (%s): wall %s", sup.Mode, fmtNs(sup.WallNs))
		if sup.GangRestarts > 0 {
			fmt.Fprintf(w, ", %d gang restart(s)", sup.GangRestarts)
		}
		if sup.Storm {
			fmt.Fprintf(w, ", restart storm")
		}
		fmt.Fprintln(w)
		if len(sup.Ranks) > 0 {
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintf(tw, "rank\trestarts\tdegraded\tpeak rss\texit\n")
			for _, r := range sup.Ranks {
				deg := "-"
				if r.Degraded {
					deg = "yes"
				}
				fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%d\n",
					r.Rank, r.Restarts, deg, fmtKiB(r.PeakRSSKiB), r.ExitCode)
			}
			if err := tw.Flush(); err != nil {
				return err
			}
		}
	}

	if len(rep.Metrics.Histograms) > 0 {
		names := sortedKeys(rep.Metrics.Histograms)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "\ntiming series\tcount\ttotal\tp50\tp95\tp99\n")
		for _, name := range names {
			h := rep.Metrics.Histograms[name]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n",
				name, h.Count, fmtNs(h.SumNs), fmtNs(h.P50Ns), fmtNs(h.P95Ns), fmtNs(h.P99Ns))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(rep.Metrics.Counters) > 0 {
		type kv struct {
			k string
			v int64
		}
		var nonzero []kv
		for k, v := range rep.Metrics.Counters {
			if v != 0 {
				nonzero = append(nonzero, kv{k, v})
			}
		}
		sort.Slice(nonzero, func(i, j int) bool { return nonzero[i].k < nonzero[j].k })
		if len(nonzero) > 0 {
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintf(tw, "\ncounter\tvalue\n")
			for _, c := range nonzero {
				fmt.Fprintf(tw, "%s\t%d\n", c.k, c.v)
			}
			if err := tw.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// AttachRemoteSpans grafts kids (span subtrees shipped from other
// processes) under the retained root span whose span id matches
// rootSpanID. If no retained root matches, a synthetic root is
// appended so the spans are never dropped.
func (rep *Report) AttachRemoteSpans(rootSpanID string, kids []SpanReport) {
	if len(kids) == 0 {
		return
	}
	for i := range rep.Spans {
		if rep.Spans[i].SpanID == rootSpanID {
			rep.Spans[i].Children = append(rep.Spans[i].Children, kids...)
			return
		}
	}
	rep.Spans = append(rep.Spans, SpanReport{
		Name:     "remote",
		SpanID:   rootSpanID,
		Children: kids,
	})
}

// ---------------------------------------------------------------------------
// Trace rendering (`netstat trace`, flight recorder)

// renderSpanTree writes one span subtree as an indented tree. Child
// ranks inherit the parent's unless the report carries its own — a
// grafted remote subtree announces its rank once at its root.
func renderSpanTree(w io.Writer, sp SpanReport, indent string, parentRank int) {
	rank := sp.Rank
	if rank == 0 && parentRank != 0 {
		rank = parentRank
	}
	fmt.Fprintf(w, "%s%s  %s", indent, sp.Name, fmtNs(sp.WallNs))
	if rank != parentRank || indent == "" {
		fmt.Fprintf(w, "  [rank %d]", rank)
	}
	if sp.Bytes > 0 {
		fmt.Fprintf(w, "  %d B", sp.Bytes)
	}
	if sp.Count > 0 {
		fmt.Fprintf(w, "  n=%d", sp.Count)
	}
	fmt.Fprintln(w)
	for _, c := range sp.Children {
		renderSpanTree(w, c, indent+"  ", rank)
	}
}

// collectRanks folds the distinct ranks of a span subtree into set.
func collectRanks(sp SpanReport, inherited int, set map[int]bool) {
	rank := sp.Rank
	if rank == 0 && inherited != 0 {
		rank = inherited
	}
	set[rank] = true
	for _, c := range sp.Children {
		collectRanks(c, rank, set)
	}
}

// RenderTrace writes the report's distributed trace view: every
// retained root span tree that belongs to rep.TraceID (all of them
// when the report predates tracing), with per-rank annotations and a
// summary line counting spans and distinct ranks — the `netstat trace`
// output.
func (rep *Report) RenderTrace(w io.Writer) error {
	trees := rep.Spans
	if rep.TraceID != "" {
		trees = nil
		for _, sp := range rep.Spans {
			if sp.TraceID == rep.TraceID || sp.TraceID == "" {
				trees = append(trees, sp)
			}
		}
	}
	if len(trees) == 0 {
		fmt.Fprintln(w, "no span trees in report")
		return nil
	}
	if rep.TraceID != "" {
		fmt.Fprintf(w, "trace %s (%s)\n", rep.TraceID, rep.Command)
	} else {
		fmt.Fprintf(w, "trace (%s, untraced report)\n", rep.Command)
	}
	ranks := map[int]bool{}
	spans := 0
	var count func(sp SpanReport)
	count = func(sp SpanReport) {
		spans++
		for _, c := range sp.Children {
			count(c)
		}
	}
	for _, sp := range trees {
		renderSpanTree(w, sp, "", 0)
		collectRanks(sp, 0, ranks)
		count(sp)
	}
	rankList := make([]int, 0, len(ranks))
	for r := range ranks {
		rankList = append(rankList, r)
	}
	sort.Ints(rankList)
	parts := make([]string, len(rankList))
	for i, r := range rankList {
		parts[i] = fmt.Sprintf("%d", r)
	}
	fmt.Fprintf(w, "%d span(s) across %d rank(s): %s\n",
		spans, len(rankList), strings.Join(parts, ","))
	return nil
}

func orDash(v int64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// fmtKiB renders a KiB quantity at MiB granularity when large.
func fmtKiB(kib int64) string {
	if kib <= 0 {
		return "-"
	}
	if kib >= 1<<10 {
		return fmt.Sprintf("%.1f MiB", float64(kib)/(1<<10))
	}
	return fmt.Sprintf("%d KiB", kib)
}
