package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden pins the exact text exposition for a small,
// deterministic registry. Any format change must update this golden —
// scrapers depend on the stability of this output.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("synth_entries_total").Add(12345)
	r.Counter("abm_hours_total").Add(168)
	r.Gauge("fault_points_armed").Set(2)
	h := r.Histogram("synth_gram_seconds")
	h.Observe(500 * time.Nanosecond) // bucket 0 (≤ 1µs)
	h.Observe(3 * time.Microsecond)  // bucket 2 (≤ 4µs)
	h.Observe(3 * time.Microsecond)  // bucket 2
	h.Observe(100 * time.Hour)       // overflow

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}

	var want strings.Builder
	want.WriteString("# TYPE abm_hours_total counter\nabm_hours_total 168\n")
	want.WriteString("# TYPE synth_entries_total counter\nsynth_entries_total 12345\n")
	want.WriteString("# TYPE fault_points_armed gauge\nfault_points_armed 2\n")
	want.WriteString("# TYPE synth_gram_seconds histogram\n")
	cum := 0
	for i := 0; i < NumBuckets; i++ {
		switch i {
		case 0:
			cum = 1
		case 2:
			cum = 3
		}
		fmt.Fprintf(&want, "synth_gram_seconds_bucket{le=%q} %d\n", formatSeconds(BucketBound(i)), cum)
	}
	want.WriteString("synth_gram_seconds_bucket{le=\"+Inf\"} 4\n")
	fmt.Fprintf(&want, "synth_gram_seconds_sum %s\n", formatSeconds(int64(500+3000+3000)+int64(100*time.Hour)))
	want.WriteString("synth_gram_seconds_count 4\n")

	if sb.String() != want.String() {
		t.Fatalf("prometheus exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want.String())
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[int64]string{
		1000:          "1e-06",
		1500000:       "0.0015",
		1000000000:    "1",
		2500000000000: "2500",
	}
	for ns, want := range cases {
		if got := formatSeconds(ns); got != want {
			t.Errorf("formatSeconds(%d) = %q, want %q", ns, got, want)
		}
	}
}

// TestServeEndpoints spins up the HTTP endpoint and checks /metrics,
// /debug/vars and /debug/pprof all answer.
func TestServeEndpoints(t *testing.T) {
	r := New()
	r.Counter("synth_entries_total").Add(9)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "synth_entries_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "\"telemetry\"") {
		t.Fatalf("/debug/vars missing telemetry var:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
