package telemetry

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestReportRoundTrip writes a fully-populated run report to disk,
// reads it back, and requires exact equality — the -report documents
// must survive the netsynth → netstat handoff bit-for-bit.
func TestReportRoundTrip(t *testing.T) {
	r := New()
	r.Counter("synth_entries_total").Add(42)
	r.Gauge("fault_points_armed").Set(1)
	r.Histogram("synth_gram_seconds").Observe(3 * time.Millisecond)
	_, sp := r.StartSpan(context.Background(), "synth/file")
	sp.AddCount(42)
	sp.End()

	rep := r.Report("netsynth")
	rep.Stages = []StageReport{
		{Name: "synth/load", WallNs: int64(12 * time.Millisecond), Count: 42, Bytes: 840},
		{Name: "synth/gram", WallNs: int64(3 * time.Millisecond)},
	}
	rep.Ranks = []RankReport{
		{Rank: 0, WallNs: 100, BusyNs: 70, CommNs: 20, IdleNs: 10, Entries: 42, Places: 3, WorkUnits: 5, Splits: 1, FaultsInjected: 2, FaultsRecovered: 2},
		{Rank: 1, WallNs: 90, BusyNs: 40, CommNs: 30, IdleNs: 20, Entries: 17},
	}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Fatalf("report did not round-trip:\n got %+v\nwant %+v", got, rep)
	}

	// The round-tripped report renders through the netstat view.
	var sb strings.Builder
	if err := got.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"run report: netsynth", "synth/load", "rank", "busy imbalance", "synth_gram_seconds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestRankReportEncodeDecode(t *testing.T) {
	in := RankReport{Rank: 3, WallNs: 5, BusyNs: 4, CommNs: 1, Entries: 9, FaultsInjected: 1}
	blob, err := EncodeRank(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRank(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("rank report round-trip: got %+v, want %+v", out, in)
	}
	if _, err := DecodeRank([]byte("not json")); err == nil {
		t.Fatal("DecodeRank accepted garbage")
	}
}

func TestBusyImbalance(t *testing.T) {
	cases := []struct {
		name  string
		ranks []RankReport
		want  float64
	}{
		{"empty", nil, 0},
		{"all zero", []RankReport{{}, {}}, 0},
		{"balanced", []RankReport{{BusyNs: 10}, {BusyNs: 10}}, 1},
		{"skewed", []RankReport{{BusyNs: 30}, {BusyNs: 10}}, 1.5},
		{"single", []RankReport{{BusyNs: 7}}, 1},
	}
	for _, c := range cases {
		if got := BusyImbalance(c.ranks); got != c.want {
			t.Errorf("%s: BusyImbalance = %v, want %v", c.name, got, c.want)
		}
	}
}
