package layout

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// clusteredGraph builds two dense clusters joined by one bridge edge.
func clusteredGraph() *graph.Graph {
	acc := sparse.NewAccum()
	for i := uint32(0); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			acc.Add(i, j, 1)
		}
	}
	for i := uint32(10); i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			acc.Add(i, j, 1)
		}
	}
	acc.Add(0, 10, 1)
	return graph.FromTri(acc.Tri(), 20)
}

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	acc := sparse.NewAccum()
	for k := 0; k < m; k++ {
		acc.Add(uint32(r.Intn(n)), uint32(r.Intn(n)), uint32(1+r.Intn(5)))
	}
	return graph.FromTri(acc.Tri(), n)
}

func TestLayoutFinitePositions(t *testing.T) {
	g := randomGraph(300, 1500, 1)
	pos := Layout(g, Config{Iterations: 60, Seed: 1})
	if len(pos) != 300 {
		t.Fatalf("got %d positions", len(pos))
	}
	for i, p := range pos {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			t.Fatalf("vertex %d at non-finite position %+v", i, p)
		}
	}
}

func TestLayoutDeterministic(t *testing.T) {
	g := randomGraph(100, 400, 2)
	a := Layout(g, Config{Iterations: 40, Seed: 7, Workers: 1})
	b := Layout(g, Config{Iterations: 40, Seed: 7, Workers: 1})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed layouts differ at vertex %d", i)
		}
	}
}

func TestLayoutEmptyAndSingle(t *testing.T) {
	empty := graph.FromTri(sparse.NewAccum().Tri(), 0)
	if pos := Layout(empty, Config{}); len(pos) != 0 {
		t.Fatal("empty graph produced positions")
	}
	single := graph.FromTri(sparse.NewAccum().Tri(), 1)
	if pos := Layout(single, Config{}); len(pos) != 1 {
		t.Fatal("single vertex layout wrong size")
	}
}

func TestClustersEndUpCloserThanCrossPairs(t *testing.T) {
	g := clusteredGraph()
	pos := Layout(g, Config{Iterations: 200, Seed: 3})
	meanIntra, meanCross := 0.0, 0.0
	nIntra, nCross := 0, 0
	dist := func(a, b int) float64 {
		return math.Hypot(pos[a].X-pos[b].X, pos[a].Y-pos[b].Y)
	}
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			d := dist(i, j)
			if (i < 10) == (j < 10) {
				meanIntra += d
				nIntra++
			} else {
				meanCross += d
				nCross++
			}
		}
	}
	meanIntra /= float64(nIntra)
	meanCross /= float64(nCross)
	if meanIntra >= meanCross {
		t.Fatalf("intra-cluster distance %.2f not below cross-cluster %.2f", meanIntra, meanCross)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	g := randomGraph(400, 1200, 5)
	serial := Layout(g, Config{Iterations: 20, Seed: 9, Workers: 1})
	parallel := Layout(g, Config{Iterations: 20, Seed: 9, Workers: 8})
	for i := range serial {
		if math.Abs(serial[i].X-parallel[i].X) > 1e-6 || math.Abs(serial[i].Y-parallel[i].Y) > 1e-6 {
			t.Fatalf("vertex %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

func TestWriteSVGStructure(t *testing.T) {
	g := clusteredGraph()
	pos := Layout(g, Config{Iterations: 30, Seed: 4})
	var buf bytes.Buffer
	if err := WriteSVG(&buf, g, pos, SVGOptions{Title: "test net"}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if got := strings.Count(s, "<circle"); got != 20 {
		t.Fatalf("%d circles, want 20", got)
	}
	if got := strings.Count(s, "<line"); got != g.NumEdges() {
		t.Fatalf("%d lines, want %d edges", got, g.NumEdges())
	}
	if !strings.Contains(s, "<title>test net</title>") {
		t.Fatal("missing title")
	}
}

func TestWriteSVGPositionCountMismatch(t *testing.T) {
	g := clusteredGraph()
	var buf bytes.Buffer
	if err := WriteSVG(&buf, g, make([]Point, 3), SVGOptions{}); err == nil {
		t.Fatal("mismatched position count accepted")
	}
}

func TestWriteSVGDegenerateAllSamePoint(t *testing.T) {
	g := clusteredGraph()
	pos := make([]Point, 20) // all at origin: span is zero
	var buf bytes.Buffer
	if err := WriteSVG(&buf, g, pos, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("SVG contains NaN coordinates")
	}
}

func BenchmarkLayout1kNodes(b *testing.B) {
	g := randomGraph(1000, 8000, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Layout(g, Config{Iterations: 50, Seed: 1})
	}
}
