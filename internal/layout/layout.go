// Package layout computes force-directed node positions for network
// visualization, standing in for the paper's Gephi "Force Atlas 2"
// figures (Figures 1 and 2), and renders them to SVG.
//
// The force model follows ForceAtlas2: degree-weighted repulsion between
// all node pairs, linear attraction along edges (scaled by edge weight),
// and a gravity term that keeps disconnected components from drifting
// apart. "The positioning of nodes is force-directed such that clusters
// of highly connected nodes are positioned closer, as are nodes with
// greater edge weights."
//
// Repulsion is computed exactly (O(n²) per iteration) with a parallel
// worker pool; the ego subgraphs the paper visualizes are a few thousand
// nodes, well within exact range.
package layout

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Config controls the layout computation.
type Config struct {
	// Iterations is the number of force iterations; zero selects 150.
	Iterations int
	// ScalingRatio scales repulsion (ForceAtlas2 "kr"); zero selects 2.
	ScalingRatio float64
	// Gravity pulls nodes toward the origin; zero selects 1.
	Gravity float64
	// Seed drives the initial random placement.
	Seed uint64
	// Workers is the parallel worker count; zero selects GOMAXPROCS.
	Workers int
}

func (c *Config) defaults() Config {
	out := *c
	if out.Iterations <= 0 {
		out.Iterations = 150
	}
	if out.ScalingRatio <= 0 {
		out.ScalingRatio = 2
	}
	if out.Gravity <= 0 {
		out.Gravity = 1
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	return out
}

// Point is a 2D position.
type Point struct{ X, Y float64 }

// Layout computes node positions for g.
func Layout(g *graph.Graph, cfg Config) []Point {
	c := cfg.defaults()
	n := g.NumVertices()
	pos := make([]Point, n)
	if n == 0 {
		return pos
	}
	r := rng.New(c.Seed)
	scale := math.Sqrt(float64(n)) * 10
	for i := range pos {
		pos[i] = Point{X: (r.Float64() - 0.5) * scale, Y: (r.Float64() - 0.5) * scale}
	}
	if n == 1 {
		return pos
	}

	deg := make([]float64, n)
	for v := 0; v < n; v++ {
		deg[v] = float64(g.Degree(uint32(v)))
	}

	force := make([]Point, n)
	prevForce := make([]Point, n)
	speed := 1.0

	for iter := 0; iter < c.Iterations; iter++ {
		prevForce, force = force, prevForce
		for i := range force {
			force[i] = Point{}
		}

		// Repulsion, parallel over target vertices.
		parallelRange(n, c.Workers, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				var fx, fy float64
				for u := 0; u < n; u++ {
					if u == v {
						continue
					}
					dx := pos[v].X - pos[u].X
					dy := pos[v].Y - pos[u].Y
					d2 := dx*dx + dy*dy
					if d2 < 1e-9 {
						d2 = 1e-9
					}
					f := c.ScalingRatio * (deg[v] + 1) * (deg[u] + 1) / d2
					fx += dx * f
					fy += dy * f
				}
				force[v].X += fx
				force[v].Y += fy
			}
		})

		// Attraction along edges (each edge pulled from both sides) and
		// gravity, serial: O(m + n).
		for v := 0; v < n; v++ {
			row, wts := g.Neighbors(uint32(v))
			for k, u := range row {
				dx := pos[v].X - pos[u].X
				dy := pos[v].Y - pos[u].Y
				w := 1 + math.Log1p(float64(wts[k]))
				force[v].X -= dx * w
				force[v].Y -= dy * w
			}
			d := math.Hypot(pos[v].X, pos[v].Y)
			if d > 1e-9 {
				f := c.Gravity * (deg[v] + 1) / d
				force[v].X -= pos[v].X * f
				force[v].Y -= pos[v].Y * f
			}
		}

		// Adaptive cooling: slow down when forces oscillate (swing),
		// speed up when they are steady — a simplified ForceAtlas2
		// global speed rule.
		var swing, traction float64
		for v := 0; v < n; v++ {
			dx := force[v].X - prevForce[v].X
			dy := force[v].Y - prevForce[v].Y
			sx := force[v].X + prevForce[v].X
			sy := force[v].Y + prevForce[v].Y
			swing += (deg[v] + 1) * math.Hypot(dx, dy)
			traction += (deg[v] + 1) * math.Hypot(sx, sy) / 2
		}
		if swing > 0 {
			target := 1.0 * traction / swing
			if target < speed*1.5 {
				speed = target
			} else {
				speed *= 1.5
			}
		}
		if speed > 10 {
			speed = 10
		}

		for v := 0; v < n; v++ {
			f := math.Hypot(force[v].X, force[v].Y)
			if f < 1e-12 {
				continue
			}
			// Displacement limited per node to avoid explosions.
			step := speed / (1 + speed*math.Sqrt(f))
			pos[v].X += force[v].X * step
			pos[v].Y += force[v].Y * step
		}
	}
	return pos
}

// parallelRange splits [0, n) into contiguous chunks across workers.
func parallelRange(n, workers int, fn func(lo, hi int)) {
	if workers <= 1 || n < 256 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
