package layout

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"repro/internal/graph"
)

// SVGOptions controls rendering of a laid-out graph.
type SVGOptions struct {
	// Width and Height of the canvas in pixels; zero selects 1200.
	Width, Height int
	// NodeRadius in pixels; zero selects 2.5.
	NodeRadius float64
	// Title is emitted as the SVG document title.
	Title string
}

func (o *SVGOptions) defaults() SVGOptions {
	out := *o
	if out.Width <= 0 {
		out.Width = 1200
	}
	if out.Height <= 0 {
		out.Height = 1200
	}
	if out.NodeRadius <= 0 {
		out.NodeRadius = 2.5
	}
	return out
}

// WriteSVG renders g at the given positions: edges as translucent lines,
// nodes as circles colored by degree with darker = higher degree,
// reproducing the visual convention of the paper's Figures 1-2.
func WriteSVG(w io.Writer, g *graph.Graph, pos []Point, opts SVGOptions) error {
	o := opts.defaults()
	n := g.NumVertices()
	if len(pos) != n {
		return fmt.Errorf("layout: %d positions for %d vertices", len(pos), n)
	}
	bw := bufio.NewWriter(w)

	// Fit positions into the canvas with a 5% margin.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pos {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if n == 0 {
		minX, minY, maxX, maxY = 0, 0, 1, 1
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	marginX, marginY := 0.05*float64(o.Width), 0.05*float64(o.Height)
	tx := func(x float64) float64 {
		return marginX + (x-minX)/spanX*(float64(o.Width)-2*marginX)
	}
	ty := func(y float64) float64 {
		return marginY + (y-minY)/spanY*(float64(o.Height)-2*marginY)
	}

	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		o.Width, o.Height, o.Width, o.Height)
	if o.Title != "" {
		fmt.Fprintf(bw, "<title>%s</title>\n", o.Title)
	}
	fmt.Fprintf(bw, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")

	// Edges first so nodes draw on top.
	fmt.Fprintf(bw, `<g stroke="#3060a0" stroke-opacity="0.08" stroke-width="0.5">`+"\n")
	for v := 0; v < n; v++ {
		row, _ := g.Neighbors(uint32(v))
		for _, u := range row {
			if u <= uint32(v) {
				continue
			}
			fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n",
				tx(pos[v].X), ty(pos[v].Y), tx(pos[u].X), ty(pos[u].Y))
		}
	}
	fmt.Fprintf(bw, "</g>\n")

	maxDeg := g.MaxDegree()
	if maxDeg == 0 {
		maxDeg = 1
	}
	fmt.Fprintf(bw, "<g>\n")
	for v := 0; v < n; v++ {
		// Darker with higher degree: interpolate lightness 85% -> 20%.
		frac := math.Sqrt(float64(g.Degree(uint32(v))) / float64(maxDeg))
		light := 85 - 65*frac
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="hsl(215,70%%,%.0f%%)"/>`+"\n",
			tx(pos[v].X), ty(pos[v].Y), o.NodeRadius, light)
	}
	fmt.Fprintf(bw, "</g>\n</svg>\n")
	return bw.Flush()
}
