package netserve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/gennet"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// postJSON posts body to url and decodes the response, returning the
// status code.
func postJSON(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

// pollScenario polls GET /v1/scenario/{id} until the job reaches a
// terminal state.
func pollScenario(t *testing.T, base, id string) scenario.JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var ji scenario.JobInfo
		if code := getJSON(t, base+"/v1/scenario/"+id, &ji); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if ji.Status == scenario.StatusDone || ji.Status == scenario.StatusFailed {
			return ji
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("scenario did not finish in time")
	return scenario.JobInfo{}
}

func testSpec() scenario.Spec {
	return scenario.Spec{
		Process:        scenario.ProcessSIR,
		Steps:          20,
		Seed:           7,
		Replications:   3,
		Beta:           []float64{0.2, 0.5},
		InfectiousDays: []int{2},
		Seeds:          scenario.Seeds{Policy: scenario.SeedTopDegree, Count: 2},
	}
}

func TestScenarioSubmitValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	var errResp struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}
	if code := postJSON(t, ts.URL+"/v1/scenario", []byte("{nope"), &errResp); code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d", code)
	}
	// Unknown fields are a client bug, not silently ignored knobs.
	if code := postJSON(t, ts.URL+"/v1/scenario", []byte(`{"process":"sir","stepz":9}`), &errResp); code != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", code)
	}
	bad := testSpec()
	bad.Beta = []float64{2}
	b, _ := json.Marshal(bad)
	if code := postJSON(t, ts.URL+"/v1/scenario", b, &errResp); code != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d", code)
	}
	if errResp.Error == "" {
		t.Fatal("validation error carried no message")
	}
	var raw json.RawMessage
	if code := getJSON(t, ts.URL+"/v1/scenario/s-999999", &raw); code != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", code)
	}
}

// TestScenarioHTTPDeterministic: two HTTP submissions of the same Spec
// return the same digest, and that digest equals a direct in-process
// scenario.Run over the same graph — HTTP vs CLI execution cannot
// drift.
func TestScenarioHTTPDeterministic(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	spec := testSpec()
	b, _ := json.Marshal(spec)

	var sub ScenarioSubmitResponse
	if code := postJSON(t, ts.URL+"/v1/scenario", b, &sub); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	if sub.ID == "" || sub.Generation != 1 {
		t.Fatalf("submit response %+v", sub)
	}
	first := pollScenario(t, ts.URL, sub.ID)
	if first.Status != scenario.StatusDone || first.Result == nil {
		t.Fatalf("job did not finish: %+v", first)
	}

	if code := postJSON(t, ts.URL+"/v1/scenario", b, &sub); code != http.StatusOK {
		t.Fatalf("resubmit: status %d", code)
	}
	second := pollScenario(t, ts.URL, sub.ID)
	if second.Result == nil || second.Result.Digest != first.Result.Digest {
		t.Fatalf("digests drift across submissions: %+v vs %+v", second.Result, first.Result)
	}

	direct, err := scenario.Run(context.Background(), testGraph(), spec, scenario.Config{Slots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Digest != first.Result.Digest {
		t.Fatalf("HTTP digest %s != direct digest %s", first.Result.Digest, direct.Digest)
	}
}

// TestScenarioSurvivesHotReload is the acceptance test for generation
// pinning: a scenario submitted against generation 1 keeps computing on
// that snapshot while a hot reload publishes generation 2. Without the
// pin the reload would drain and munmap the old snapshot mid-run —
// under -race/mmap that is a crash, and the vertex count in the result
// would come from the wrong graph.
func TestScenarioSurvivesHotReload(t *testing.T) {
	reg := telemetry.New()
	dir := t.TempDir()
	tri, err := gennet.BarabasiAlbert(2000, 4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	big := graph.FromTri(tri, 2000)
	path := writeTestSnapshot(t, dir, big)
	s, err := New(path, Options{Registry: reg, ScenarioSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := newHTTPServer(t, s)

	// Diffusion never burns out, so the job runs all steps — long
	// enough to overlap the reload deterministically.
	spec := scenario.Spec{
		Process:      scenario.ProcessDiffusion,
		Steps:        3000,
		Seed:         5,
		Replications: 8,
		Beta:         []float64{0.4},
		Seeds:        scenario.Seeds{Policy: scenario.SeedRandom, Count: 3},
	}
	b, _ := json.Marshal(spec)
	var sub ScenarioSubmitResponse
	if code := postJSON(t, ts.URL+"/v1/scenario", b, &sub); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}

	// Publish a different graph (different vertex count) over the same
	// path and hot-reload while the job runs.
	path2 := writeTestSnapshot(t, dir, testGraph())
	if path2 != path {
		t.Fatalf("snapshot path moved: %s vs %s", path2, path)
	}
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := s.Generation(); got != 2 {
		t.Fatalf("generation after reload = %d", got)
	}

	ji := pollScenario(t, ts.URL, sub.ID)
	if ji.Status != scenario.StatusDone || ji.Result == nil {
		t.Fatalf("job failed across reload: %+v", ji)
	}
	if ji.Generation != 1 {
		t.Fatalf("job generation = %d, want 1", ji.Generation)
	}
	// The run computed on the pinned generation-1 graph, not the
	// 6-vertex generation-2 snapshot now serving.
	if ji.Result.Outcome.Vertices != 2000 {
		t.Fatalf("scenario ran on %d vertices, want the pinned 2000", ji.Result.Outcome.Vertices)
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Vertices != 6 || stats.Generation != 2 {
		t.Fatalf("serving path not on generation 2: %+v", stats)
	}
}

// TestScenarioStoreFull: with a cap of 1 and a live job occupying it,
// a second submission is refused with 503 rather than queued unbounded.
func TestScenarioStoreFull(t *testing.T) {
	reg := telemetry.New()
	dir := t.TempDir()
	tri, err := gennet.BarabasiAlbert(1500, 4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	path := writeTestSnapshot(t, dir, graph.FromTri(tri, 1500))
	s, err := New(path, Options{Registry: reg, ScenarioStoreCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := newHTTPServer(t, s)

	long := scenario.Spec{
		Process:      scenario.ProcessDiffusion,
		Steps:        3000,
		Seed:         5,
		Replications: 8,
		Beta:         []float64{0.4},
		Seeds:        scenario.Seeds{Policy: scenario.SeedRandom, Count: 3},
	}
	b, _ := json.Marshal(long)
	var sub ScenarioSubmitResponse
	if code := postJSON(t, ts.URL+"/v1/scenario", b, &sub); code != http.StatusOK {
		t.Fatalf("first submit: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/scenario", b, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("second submit: status %d, want 503", code)
	}
	// The first job still completes and its slot becomes evictable.
	ji := pollScenario(t, ts.URL, sub.ID)
	if ji.Status != scenario.StatusDone {
		t.Fatalf("first job: %+v", ji)
	}
	if code := postJSON(t, ts.URL+"/v1/scenario", b, &sub); code != http.StatusOK {
		t.Fatalf("post-eviction submit: status %d", code)
	}
}

// TestScenarioCloseCancelsRunning: Close during a long scenario cancels
// it promptly instead of blocking shutdown on thousands of steps.
func TestScenarioCloseCancelsRunning(t *testing.T) {
	reg := telemetry.New()
	dir := t.TempDir()
	tri, err := gennet.BarabasiAlbert(1500, 4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	path := writeTestSnapshot(t, dir, graph.FromTri(tri, 1500))
	s, err := New(path, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)

	long := scenario.Spec{
		Process:      scenario.ProcessDiffusion,
		Steps:        scenario.MaxSteps,
		Seed:         5,
		Replications: 64,
		Beta:         []float64{0.4},
		Seeds:        scenario.Seeds{Policy: scenario.SeedRandom, Count: 3},
	}
	b, _ := json.Marshal(long)
	var sub ScenarioSubmitResponse
	if code := postJSON(t, ts.URL+"/v1/scenario", b, &sub); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("Close blocked on a running scenario")
	}
}

// newHTTPServer mounts an already-constructed Server on an httptest
// listener (newTestServer always builds its own fixture snapshot).
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}
