package netserve

import (
	"math/rand"
	"net/http"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// benchServer boots a server over an indexed v2 snapshot of a ~20k
// vertex scale-free-ish graph — big enough that any accidental O(V) or
// O(deg log deg) work per request would show, small enough to build in
// milliseconds.
func benchServer(b *testing.B) *Server {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	acc := sparse.NewAccum()
	const n = 20000
	for v := uint32(1); v < n; v++ {
		// Preferential-attachment flavor: bias endpoints toward low IDs.
		for e := 0; e < 4; e++ {
			u := uint32(rng.Intn(int(v)))
			if u == v {
				continue
			}
			acc.Add(u, v, uint32(rng.Intn(500)+1))
		}
	}
	g := graph.FromTri(acc.Tri(), n)
	path := filepath.Join(b.TempDir(), "bench.gsnap")
	if err := gstore.WriteFileIndexed(path, g, gstore.IndexOptions{}); err != nil {
		b.Fatal(err)
	}
	s, err := New(path, Options{Registry: telemetry.New()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

// benchEncode measures one hot endpoint's full render path — request
// parse, index lookup, pooled-buffer JSON — exactly as the serve fast
// path runs it. ReportAllocs is the regression gate: these must stay
// at 0 allocs/op (scripts/check.sh enforces a small ceiling).
func benchEncode(b *testing.B, target, pathID string, enc encodeFunc) {
	s := benchServer(b)
	gen := s.acquire()
	defer gen.unref()
	g := gen.snap.Graph()
	r, err := http.NewRequest(http.MethodGet, target, nil)
	if err != nil {
		b.Fatal(err)
	}
	if pathID != "" {
		r.SetPathValue("id", pathID)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp := getBuf()
		buf, encErr := enc(gen, g, r, bp.b[:0])
		if encErr != nil {
			b.Fatal(encErr)
		}
		buf = append(buf, '\n')
		putBuf(bp, buf)
	}
}

func BenchmarkServeHotStats(b *testing.B) {
	benchEncode(b, "/v1/stats", "", encodeStats)
}

func BenchmarkServeHotDegree(b *testing.B) {
	benchEncode(b, "/v1/degree/123", "123", encodeDegree)
}

func BenchmarkServeHotNeighbors(b *testing.B) {
	benchEncode(b, "/v1/neighbors/123?limit=32", "123", encodeNeighbors)
}

func BenchmarkServeHotClustering(b *testing.B) {
	benchEncode(b, "/v1/clustering/123", "123", encodeClustering)
}

func BenchmarkServeHotDegreeDist(b *testing.B) {
	benchEncode(b, "/v1/degree-dist", "", encodeDegreeDist)
}

// BenchmarkServeHotHTTP measures the same endpoints through the full
// HTTP mux (still in-process, no sockets) for context. The HTTP layer
// itself allocates; the per-endpoint figures above isolate our code.
func BenchmarkServeHotHTTP(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	reqs := make([]*http.Request, 0, 4)
	for _, target := range []string{
		"/v1/stats", "/v1/degree/123", "/v1/neighbors/123?limit=32", "/v1/clustering/123",
	} {
		r, err := http.NewRequest(http.MethodGet, target, nil)
		if err != nil {
			b.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	w := nopResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, reqs[i%len(reqs)])
	}
}

type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.h }
func (w nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w nopResponseWriter) WriteHeader(int)             {}

// BenchmarkWriteError keeps the error path honest too: rendering a 400
// must not allocate beyond the error value itself.
func BenchmarkWriteError(b *testing.B) {
	s := benchServer(b)
	err := badRequest("bad vertex %q", "zzz")
	w := nopResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.writeError(w, nil, err)
	}
}
