package netserve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/graph"
	"repro/internal/scenario"
)

// maxScenarioBody bounds a scenario submission body; a Spec is a few
// hundred bytes of JSON, so 1 MiB is generous while still refusing
// abuse before parsing.
const maxScenarioBody = 1 << 20

// ScenarioSubmitResponse is POST /v1/scenario: the job id to poll plus
// the snapshot generation the run is pinned to.
type ScenarioSubmitResponse struct {
	ID         string          `json:"id"`
	Status     scenario.Status `json:"status"`
	Generation uint64          `json:"generation"`
}

// handleScenarioSubmit accepts a scenario.Spec, validates it fail-closed
// against the current graph, registers a job, and runs it in the
// background — against the generation that was current at submission.
// The generation is explicitly pinned (one extra reference) for the
// job's lifetime, so a snapshot hot-reload mid-run swaps the serving
// pointer but cannot unmap the graph under the running scenario.
func (s *Server) handleScenarioSubmit(g *graph.Graph, gen *generation, r *http.Request) (any, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxScenarioBody+1))
	if err != nil {
		return nil, badRequest("reading body: %v", err)
	}
	if len(body) > maxScenarioBody {
		return nil, badRequest("scenario spec exceeds %d bytes", maxScenarioBody)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var spec scenario.Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, badRequest("parsing scenario spec: %v", err)
	}
	if err := spec.Validate(g); err != nil {
		return nil, badRequest("%v", err)
	}

	id, err := s.scenStore.Add(gen.num)
	if err != nil {
		return nil, &apiError{code: http.StatusServiceUnavailable, msg: err.Error()}
	}

	// Pin the generation beyond this request: the background job holds
	// its own reference, released only when the run finishes.
	gen.refs.Add(1)
	s.scenWG.Add(1)
	go func() {
		defer s.scenWG.Done()
		defer gen.unref()
		// One scenario executes at a time; queued submissions stay
		// pending. Shutdown drains the queue by failing pending jobs.
		select {
		case s.scenSem <- struct{}{}:
			defer func() { <-s.scenSem }()
		case <-s.scenCtx.Done():
			s.scenStore.Finish(id, nil, s.scenCtx.Err())
			return
		}
		s.scenStore.SetRunning(id)
		res, runErr := scenario.Run(s.scenCtx, gen.snap.Graph(), spec,
			scenario.Config{Slots: s.opts.ScenarioSlots})
		s.scenStore.Finish(id, res, runErr)
	}()
	return ScenarioSubmitResponse{ID: id, Status: scenario.StatusPending, Generation: gen.num}, nil
}

// handleScenarioGet polls a submitted job: pending/running carry no
// result yet; done carries the full scenario.Result including the
// deterministic outcome digest; failed carries the error.
func (s *Server) handleScenarioGet(_ *graph.Graph, _ *generation, r *http.Request) (any, error) {
	id := r.PathValue("id")
	ji, ok := s.scenStore.Get(id)
	if !ok {
		return nil, notFound("no scenario job %q (unknown or evicted)", id)
	}
	return ji, nil
}
