package netserve

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/telemetry"
)

// TestRetryAfterOnSaturation mounts the hardened handler, saturates the
// single worker slot, and checks the 503 rejection carries a
// Retry-After hint so clients back off.
func TestRetryAfterOnSaturation(t *testing.T) {
	s, _, _ := newTestServer(t, Options{
		Registry:       telemetry.New(),
		Workers:        1,
		RequestTimeout: 150 * time.Millisecond,
	})
	ts := httptest.NewServer(s.HardenedHandler())
	defer ts.Close()

	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	entered := make(chan struct{})
	var once sync.Once
	s.route("GET /v1/testhold", "testhold", false,
		func(g *graph.Graph, gen *generation, r *http.Request) (any, error) {
			once.Do(func() { close(entered) })
			<-release
			return map[string]bool{"ok": true}, nil
		})

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/v1/testhold")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: status = %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("503 without Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer ≥ 1", ra)
	}
	releaseOnce()
	<-done
}

// TestRetryAfterNotOnSuccess: the header must only ride on 503s.
func TestRetryAfterNotOnSuccess(t *testing.T) {
	s, _, _ := newTestServer(t, Options{Registry: telemetry.New()})
	ts := httptest.NewServer(s.HardenedHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Fatalf("success response carries Retry-After %q", ra)
	}
}

// TestTimeoutBackstopWedgedHandler proves the http.TimeoutHandler layer
// catches a handler that ignores its context entirely: the client gets
// a prompt 503 with Retry-After instead of a hung connection.
func TestTimeoutBackstopWedgedHandler(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	wedged := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // never honors r.Context()
	})
	ts := httptest.NewServer(WithBackpressure(wedged, 100*time.Millisecond, time.Second))
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("wedged handler: status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("backstop 503 without Retry-After header")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("backstop took %v, want ≲ timeout + grace", elapsed)
	}
}
