package netserve

import (
	"net/http"
	"testing"
)

// hotProbe is one hot endpoint exercised by HotAllocs, hitting the
// same encodeFunc the serve fast path dispatches to.
type hotProbe struct {
	name   string
	target string
	pathID string // {id} wildcard value, "" for none
	enc    encodeFunc
}

func hotProbes(n int) []hotProbe {
	mid := "0"
	if n > 1 {
		mid = "1"
	}
	return []hotProbe{
		{"stats", "/v1/stats", "", encodeStats},
		{"degree", "/v1/degree/" + mid, mid, encodeDegree},
		{"neighbors", "/v1/neighbors/" + mid + "?limit=32", mid, encodeNeighbors},
		{"clustering", "/v1/clustering/" + mid, mid, encodeClustering},
		{"degree_dist", "/v1/degree-dist", "", encodeDegreeDist},
	}
}

// HotAllocs measures steady-state heap allocations per response render
// for every hot endpoint, by running each encodeFunc against the
// current generation the way the serve fast path does (pooled buffer
// in, rendered bytes out). The figures land in BENCH_serve.json and
// back the zero-alloc regression gate; BenchmarkServeHot* report the
// same numbers through the testing framework.
func (s *Server) HotAllocs() map[string]float64 {
	gen := s.acquire()
	if gen == nil {
		return nil
	}
	defer gen.unref()
	g := gen.snap.Graph()

	out := make(map[string]float64, 5)
	for _, p := range hotProbes(g.NumVertices()) {
		r, err := http.NewRequest(http.MethodGet, p.target, nil)
		if err != nil {
			continue
		}
		if p.pathID != "" {
			r.SetPathValue("id", p.pathID)
		}
		render := func() {
			bp := getBuf()
			b, encErr := p.enc(gen, g, r, bp.b[:0])
			if encErr == nil {
				b = append(b, '\n')
			}
			putBuf(bp, b)
		}
		render() // warm the buffer pool before measuring
		out[p.name] = testing.AllocsPerRun(200, render)
	}
	return out
}
