package netserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// testGraph is the deterministic fixture shared by the endpoint tests:
//
//	0 --5-- 1
//	|      /
//	1    3
//	|  /
//	2 --10-- 3        4, 5 isolated
//
// clustering(0)=1, neighbors(0) weight-desc = [(1,5),(2,1)],
// BFS 0→3 = [0,2,3], weighted 0→3 = [0,1,2,3] (1/5+1/3+1/10 < 1+1/10).
func testGraph() *graph.Graph {
	return graph.FromTri(&sparse.Tri{
		I: []uint32{0, 0, 1, 2},
		J: []uint32{1, 2, 2, 3},
		W: []uint32{5, 1, 3, 10},
	}, 6)
}

// writeTestSnapshot writes g as a .gsnap into dir and returns its path.
func writeTestSnapshot(t *testing.T, dir string, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(dir, "test.gsnap")
	if err := gstore.WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

// newTestServer boots a Server over the fixture graph with an isolated
// telemetry registry and mounts it on an httptest listener.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, string) {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = telemetry.New()
	}
	path := writeTestSnapshot(t, t.TempDir(), testGraph())
	s, err := New(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, path
}

// getJSON fetches url and decodes the body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: Content-Type = %q, want application/json", url, ct)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

func TestStatsEndpoint(t *testing.T) {
	_, ts, path := newTestServer(t, Options{})
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	want := StatsResponse{
		Vertices: 6, VerticesWithEdges: 4, Edges: 4, TotalWeight: 19,
		MaxDegree: 3, Generation: 1, SnapshotPath: path,
	}
	if st.Vertices != want.Vertices || st.VerticesWithEdges != want.VerticesWithEdges ||
		st.Edges != want.Edges || st.TotalWeight != want.TotalWeight ||
		st.MaxDegree != want.MaxDegree || st.Generation != want.Generation ||
		st.SnapshotPath != want.SnapshotPath {
		t.Fatalf("stats = %+v, want fields of %+v", st, want)
	}
	if st.SnapshotBytes <= 0 {
		t.Fatalf("snapshot_bytes = %d", st.SnapshotBytes)
	}
}

func TestDegreeEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	var d DegreeResponse
	if code := getJSON(t, ts.URL+"/v1/degree/2", &d); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if d.ID != 2 || d.Degree != 3 || d.Strength != 14 {
		t.Fatalf("degree(2) = %+v, want id=2 degree=3 strength=14", d)
	}
}

func TestNeighborsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	var nb NeighborsResponse
	if code := getJSON(t, ts.URL+"/v1/neighbors/0", &nb); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	want := []Neighbor{{ID: 1, Weight: 5}, {ID: 2, Weight: 1}}
	if nb.Degree != 2 || !reflect.DeepEqual(nb.Neighbors, want) {
		t.Fatalf("neighbors(0) = %+v, want %v weight-descending", nb, want)
	}

	// Pagination: offset=1&limit=1 returns only the weaker tie.
	if code := getJSON(t, ts.URL+"/v1/neighbors/0?offset=1&limit=1", &nb); code != http.StatusOK {
		t.Fatalf("paginated status = %d", code)
	}
	if nb.Offset != 1 || nb.Returned != 1 || !reflect.DeepEqual(nb.Neighbors, want[1:]) {
		t.Fatalf("paginated neighbors = %+v, want offset=1 returned=1 %v", nb, want[1:])
	}

	// Offset past the end is clamped, not an error.
	if code := getJSON(t, ts.URL+"/v1/neighbors/0?offset=99", &nb); code != http.StatusOK {
		t.Fatalf("clamped status = %d", code)
	}
	if nb.Returned != 0 {
		t.Fatalf("clamped returned = %d, want 0", nb.Returned)
	}
}

func TestEgoEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	var ego EgoResponse
	if code := getJSON(t, ts.URL+"/v1/ego/0?radius=1", &ego); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ego.Size != 3 || ego.Edges != 3 || !reflect.DeepEqual(ego.Members, []uint32{0, 1, 2}) {
		t.Fatalf("ego(0,1) = %+v, want members [0 1 2] edges 3 (triangle)", ego)
	}
	// Radius 2 pulls in vertex 3; induced edges = all 4.
	if code := getJSON(t, ts.URL+"/v1/ego/0?radius=2", &ego); code != http.StatusOK {
		t.Fatalf("radius=2 status = %d", code)
	}
	if ego.Size != 4 || ego.Edges != 4 {
		t.Fatalf("ego(0,2) = %+v, want size 4 edges 4", ego)
	}
}

func TestEgoTruncation(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{MaxEgoMembers: 2})
	var ego EgoResponse
	if code := getJSON(t, ts.URL+"/v1/ego/0?radius=2", &ego); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !ego.Truncated || len(ego.Members) != 2 || ego.Size != 4 {
		t.Fatalf("ego truncation = %+v, want truncated member list of 2 with size 4", ego)
	}
}

func TestPathEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	var p PathResponse
	if code := getJSON(t, ts.URL+"/v1/path?from=0&to=3", &p); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !p.Found || p.Hops != 2 || !reflect.DeepEqual(p.Path, []uint32{0, 2, 3}) {
		t.Fatalf("BFS path = %+v, want [0 2 3]", p)
	}

	// Weighted search prefers strong ties: 0-1-2-3 beats 0-2-3.
	if code := getJSON(t, ts.URL+"/v1/path?from=0&to=3&weighted=1", &p); code != http.StatusOK {
		t.Fatalf("weighted status = %d", code)
	}
	if !p.Found || !reflect.DeepEqual(p.Path, []uint32{0, 1, 2, 3}) {
		t.Fatalf("weighted path = %+v, want [0 1 2 3]", p)
	}
	wantCost := 1.0/5 + 1.0/3 + 1.0/10
	if diff := p.Cost - wantCost; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("weighted cost = %v, want %v", p.Cost, wantCost)
	}

	// Disconnected pair: found=false, empty path.
	if code := getJSON(t, ts.URL+"/v1/path?from=0&to=4", &p); code != http.StatusOK {
		t.Fatalf("disconnected status = %d", code)
	}
	if p.Found || len(p.Path) != 0 {
		t.Fatalf("disconnected path = %+v, want found=false", p)
	}
}

func TestDegreeDistEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	var dd DegreeDistResponse
	if code := getJSON(t, ts.URL+"/v1/degree-dist", &dd); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	want := []int{2, 1, 2, 1} // degrees: 4,5→0; 3→1; 0,1→2; 2→3
	if dd.MaxDegree != 3 || !reflect.DeepEqual(dd.Histogram, want) {
		t.Fatalf("degree-dist = %+v, want histogram %v", dd, want)
	}
}

func TestClusteringEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	var c ClusteringResponse
	if code := getJSON(t, ts.URL+"/v1/clustering/0", &c); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if c.Clustering != 1.0 {
		t.Fatalf("clustering(0) = %+v, want 1.0 (its two neighbors are linked)", c)
	}
	if code := getJSON(t, ts.URL+"/v1/clustering/3", &c); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if c.Clustering != 0 {
		t.Fatalf("clustering(3) = %+v, want 0 for a degree-1 vertex", c)
	}
}

// TestErrorResponses covers the 400/404/405 surface of every endpoint.
func TestErrorResponses(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	cases := []struct {
		url  string
		code int
	}{
		{"/v1/degree/abc", http.StatusBadRequest},
		{"/v1/degree/-1", http.StatusBadRequest},
		{"/v1/degree/99", http.StatusNotFound},           // outside vertex space
		{"/v1/degree/4294967296", http.StatusBadRequest}, // uint32 overflow
		{"/v1/neighbors/99", http.StatusNotFound},
		{"/v1/neighbors/0?limit=0", http.StatusBadRequest},      // below minimum
		{"/v1/neighbors/0?limit=100000", http.StatusBadRequest}, // above maximum
		{"/v1/neighbors/0?offset=x", http.StatusBadRequest},
		{"/v1/ego/99", http.StatusNotFound},
		{"/v1/ego/0?radius=7", http.StatusBadRequest},
		{"/v1/ego/0?radius=junk", http.StatusBadRequest},
		{"/v1/path?to=3", http.StatusBadRequest},   // missing from
		{"/v1/path?from=0", http.StatusBadRequest}, // missing to
		{"/v1/path?from=0&to=99", http.StatusNotFound},
		{"/v1/clustering/banana", http.StatusBadRequest},
		{"/v1/nope", http.StatusNotFound},
		{"/", http.StatusNotFound},
	}
	for _, tc := range cases {
		var e struct {
			Error  string `json:"error"`
			Status int    `json:"status"`
		}
		if code := getJSON(t, ts.URL+tc.url, &e); code != tc.code {
			t.Errorf("GET %s: status = %d, want %d", tc.url, code, tc.code)
		} else if e.Status != tc.code || e.Error == "" {
			t.Errorf("GET %s: error body = %+v, want status %d with message", tc.url, e, tc.code)
		}
	}

	// Wrong method on a registered route falls through to the catch-all
	// (the mux prefers the matching "/" pattern over a 405).
	resp, err := http.Post(ts.URL+"/v1/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/stats: status = %d, want 404", resp.StatusCode)
	}
}

// TestCacheHits verifies the second identical request is served from the
// LRU and counted, while the non-cacheable degree endpoint never caches.
func TestCacheHits(t *testing.T) {
	reg := telemetry.New()
	s, ts, _ := newTestServer(t, Options{Registry: reg})

	var first, second EgoResponse
	getJSON(t, ts.URL+"/v1/ego/0?radius=2", &first)
	hits0 := reg.Counter("serve_cache_hits_total").Value()
	getJSON(t, ts.URL+"/v1/ego/0?radius=2", &second)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached response differs: %+v vs %+v", first, second)
	}
	if got := reg.Counter("serve_cache_hits_total").Value(); got != hits0+1 {
		t.Fatalf("serve_cache_hits_total = %d, want %d", got, hits0+1)
	}
	if got := reg.Counter("serve_ego_cache_hits_total").Value(); got != 1 {
		t.Fatalf("serve_ego_cache_hits_total = %d, want 1", got)
	}
	if s.cache.len() == 0 {
		t.Fatal("cache is empty after a cacheable request")
	}

	// Different query string is a different key.
	getJSON(t, ts.URL+"/v1/ego/0?radius=1", &first)
	if got := reg.Counter("serve_cache_hits_total").Value(); got != hits0+1 {
		t.Fatalf("distinct query counted as hit: %d", got)
	}

	// Point lookups bypass the cache entirely.
	n := s.cache.len()
	getJSON(t, ts.URL+"/v1/degree/0", nil)
	getJSON(t, ts.URL+"/v1/degree/0", nil)
	if s.cache.len() != n {
		t.Fatal("degree endpoint populated the cache")
	}
	if got := reg.Counter("serve_degree_cache_hits_total").Value(); got != 0 {
		t.Fatalf("serve_degree_cache_hits_total = %d, want 0", got)
	}
}

func TestCacheDisabled(t *testing.T) {
	s, ts, _ := newTestServer(t, Options{CacheBytes: -1})
	if s.cache != nil {
		t.Fatal("negative CacheBytes should disable the cache")
	}
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("uncached serve failed: %d", code)
	}
}

// TestCoalescing blocks a custom cacheable route and piles concurrent
// identical requests onto it: exactly one computation must run, the rest
// share its result and count as coalesced.
func TestCoalescing(t *testing.T) {
	reg := telemetry.New()
	// Coalesced waiters each hold a worker slot while they block on the
	// shared computation, so the pool must fit every client at once.
	s, ts, _ := newTestServer(t, Options{
		Registry:       reg,
		Workers:        16,
		RequestTimeout: 30 * time.Second,
	})

	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce() // unblock handlers even if an assertion fails
	var computations atomic.Int64
	s.route("GET /v1/testblock", "testblock", true,
		func(g *graph.Graph, gen *generation, r *http.Request) (any, error) {
			computations.Add(1)
			<-release
			return map[string]int{"n": g.NumVertices()}, nil
		})

	const clients = 4
	key := "testblock|1|/v1/testblock?"
	var wg sync.WaitGroup
	bodies := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/testblock")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			bodies[i] = string(b)
		}(i)
	}

	// Wait until clients-1 callers have piggybacked on the in-flight
	// computation, then let it finish.
	deadline := time.Now().Add(10 * time.Second)
	for s.flight.waiters(key) != clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters coalesced onto %q", s.flight.waiters(key), key)
		}
		time.Sleep(time.Millisecond)
	}
	releaseOnce()
	wg.Wait()

	if got := computations.Load(); got != 1 {
		t.Fatalf("computations = %d, want 1", got)
	}
	if got := reg.Counter("serve_coalesced_total").Value(); got != clients-1 {
		t.Fatalf("serve_coalesced_total = %d, want %d", got, clients-1)
	}
	for i := 1; i < clients; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("coalesced bodies differ: %q vs %q", bodies[i], bodies[0])
		}
	}
}

// TestHotReload swaps the snapshot file for a bigger graph and verifies
// the generation bump, the new topology, and cache invalidation.
func TestHotReload(t *testing.T) {
	reg := telemetry.New()
	s, ts, path := newTestServer(t, Options{Registry: reg})

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Generation != 1 || st.Vertices != 6 {
		t.Fatalf("initial stats = %+v", st)
	}

	// Rewrite the snapshot with a different graph and reload.
	bigger := graph.FromTri(&sparse.Tri{
		I: []uint32{0, 1, 2},
		J: []uint32{1, 2, 3},
		W: []uint32{1, 1, 1},
	}, 9)
	if err := gstore.WriteFile(path, bigger); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", s.Generation())
	}

	// The cached generation-1 stats must not resurface.
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Generation != 2 || st.Vertices != 9 {
		t.Fatalf("post-reload stats = %+v, want generation 2 / 9 vertices", st)
	}
	if got := reg.Counter("serve_reloads_total").Value(); got != 2 { // initial load + reload
		t.Fatalf("serve_reloads_total = %d, want 2", got)
	}
}

// TestFailedReloadKeepsServing corrupts the snapshot on disk: Reload
// must fail typed, count the failure, and leave generation 1 serving.
// Restoring the bytes (XOR is an involution) makes reload work again.
func TestFailedReloadKeepsServing(t *testing.T) {
	reg := telemetry.New()
	s, ts, path := newTestServer(t, Options{Registry: reg})

	if err := faultinject.CorruptFile(path, -4, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err == nil {
		t.Fatal("reload of a corrupt snapshot succeeded")
	}
	if got := reg.Counter("serve_reload_failures_total").Value(); got != 1 {
		t.Fatalf("serve_reload_failures_total = %d, want 1", got)
	}

	// The old generation still answers correctly.
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats after failed reload: %d", code)
	}
	if st.Generation != 1 || st.Vertices != 6 {
		t.Fatalf("stats after failed reload = %+v, want generation 1 intact", st)
	}

	// Un-corrupt and reload: back in business on generation 2.
	if err := faultinject.CorruptFile(path, -4, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err != nil {
		t.Fatalf("reload after restore: %v", err)
	}
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Generation != 2 {
		t.Fatalf("generation after recovery = %d, want 2", st.Generation)
	}
}

// TestDrainOldGeneration pins generation 1 across a reload: the old
// snapshot must stay usable until the pin is released, then close.
func TestDrainOldGeneration(t *testing.T) {
	s, _, path := newTestServer(t, Options{})

	g1, gen1, releaseFn := s.Acquire()
	if gen1 != 1 {
		t.Fatalf("pinned generation = %d, want 1", gen1)
	}
	old := s.cur.Load()

	if err := gstore.WriteFile(path, testGraph()); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}

	// Superseded but pinned: refcount > 0 and the graph still reads.
	if refs := old.refs.Load(); refs != 1 {
		t.Fatalf("old generation refs = %d, want 1 (our pin)", refs)
	}
	if n := g1.NumVertices(); n != 6 {
		t.Fatalf("pinned graph read %d vertices, want 6", n)
	}

	releaseFn()
	releaseFn() // release is idempotent
	if refs := old.refs.Load(); refs != 0 {
		t.Fatalf("old generation refs after release = %d, want 0", refs)
	}
}

// TestSaturation fills the single worker slot with a blocked request;
// the next request must time out waiting for the semaphore and get 503.
func TestSaturation(t *testing.T) {
	reg := telemetry.New()
	s, ts, _ := newTestServer(t, Options{
		Registry:       reg,
		Workers:        1,
		RequestTimeout: 150 * time.Millisecond,
	})

	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce() // unblock the holder even if an assertion fails
	entered := make(chan struct{})
	var once sync.Once
	s.route("GET /v1/testhold", "testhold", false,
		func(g *graph.Graph, gen *generation, r *http.Request) (any, error) {
			once.Do(func() { close(entered) })
			<-release
			return map[string]bool{"ok": true}, nil
		})

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/v1/testhold")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the only worker slot is now held

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: status = %d, want 503", resp.StatusCode)
	}
	if got := reg.Counter("serve_saturated_total").Value(); got == 0 {
		t.Fatal("serve_saturated_total not incremented")
	}
	releaseOnce()
	<-done
}

// TestWatchLoopReloads exercises the mtime watcher end to end.
func TestWatchLoopReloads(t *testing.T) {
	s, _, path := newTestServer(t, Options{WatchInterval: 5 * time.Millisecond})
	if err := gstore.WriteFile(path, testGraph()); err != nil {
		t.Fatal(err)
	}
	// Force a visible mtime change regardless of filesystem granularity.
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("watcher never reloaded; generation = %d", s.Generation())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWatchLoopCatchesSameMtimePublishes is the reload-race regression
// test: two generations published back-to-back can land with identical
// mtime (filesystem timestamp granularity) and identical size — only
// the inode differs, because rename-based publishing always creates a
// fresh file. A watcher that compares mtime alone skips the second
// generation forever; the file-signature watcher must pick up both,
// with a monotonically increasing generation number.
func TestWatchLoopCatchesSameMtimePublishes(t *testing.T) {
	s, _, path := newTestServer(t, Options{WatchInterval: 2 * time.Millisecond})
	fix := time.Now().Add(-time.Minute).Truncate(time.Second)

	// publish mimics gstore.Publisher's atomic rename, pinning the mtime
	// so back-to-back generations are stat-identical except for inode.
	publish := func(g *graph.Graph) {
		t.Helper()
		tmp := path + ".next"
		if err := gstore.WriteFile(tmp, g); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(tmp, fix, fix); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
	}
	waitGen := func(min uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for s.Generation() < min {
			if time.Now().After(deadline) {
				t.Fatalf("watcher stuck at generation %d, want >= %d", s.Generation(), min)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	publish(testGraph())
	waitGen(2)
	// Identical bytes (deterministic write → same size), identical
	// forced mtime, fresh inode: the historical skip case.
	publish(testGraph())
	waitGen(3)
}

// TestRunLoadSmoke drives the benchmark harness briefly against the
// test server and sanity-checks its report.
func TestRunLoadSmoke(t *testing.T) {
	s, ts, _ := newTestServer(t, Options{})
	g, _, releaseFn := s.Acquire()
	defer releaseFn()
	res, err := RunLoad(context.Background(), ts.URL, g, BenchConfig{
		Concurrency: 4,
		Duration:    250 * time.Millisecond,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("load generator made no requests")
	}
	if res.Errors != 0 {
		t.Fatalf("load generator saw %d errors", res.Errors)
	}
	if res.QPS <= 0 || res.P99Ms < res.P50Ms {
		t.Fatalf("implausible report: %+v", res)
	}
	if len(res.PerEndpoint) == 0 {
		t.Fatal("per-endpoint counts empty")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := res.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	var back BenchResult
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Requests != res.Requests {
		t.Fatalf("round-tripped report requests = %d, want %d", back.Requests, res.Requests)
	}
}

// TestNewRejectsMissingSnapshot is the constructor's fail-closed path.
func TestNewRejectsMissingSnapshot(t *testing.T) {
	_, err := New(filepath.Join(t.TempDir(), "absent.gsnap"), Options{Registry: telemetry.New()})
	if err == nil {
		t.Fatal("New succeeded on a missing snapshot")
	}
}

func ExampleServer() {
	// Build a snapshot, serve it, query it: the minimal end-to-end loop.
	dir, _ := os.MkdirTemp("", "netserve-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "net.gsnap")
	_ = gstore.WriteFile(path, testGraph())
	s, _ := New(path, Options{Registry: telemetry.New()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/degree/2")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var d DegreeResponse
	_ = json.NewDecoder(resp.Body).Decode(&d)
	fmt.Printf("vertex %d: degree %d, strength %d\n", d.ID, d.Degree, d.Strength)
	// Output: vertex 2: degree 3, strength 14
}
