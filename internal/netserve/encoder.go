// Zero-allocation JSON encoding for the hot endpoints.
//
// The hot query paths (/v1/degree, /v1/clustering, /v1/neighbors page
// one, /v1/stats, /v1/degree-dist and every error body) do not go
// through encoding/json: responses are appended into pooled []byte
// buffers with the helpers below, which reproduce encoding/json's
// exact output byte-for-byte — same string escaping (HTML escaping
// included), same float formatting — so clients and the v1↔v2
// equivalence tests cannot tell the difference. Steady state the
// buffers come from a sync.Pool and every append fits capacity:
// amortized zero allocations per request.

package netserve

import (
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// respBuf is a pooled response buffer.
type respBuf struct {
	b []byte
}

// bufPool recycles response buffers across requests. Buffers that grew
// beyond maxPooledBuf (a deep fallback neighbors page, a giant error)
// are dropped instead of pinning memory in the pool.
var bufPool = sync.Pool{
	New: func() any { return &respBuf{b: make([]byte, 0, 4096)} },
}

const maxPooledBuf = 64 << 10

func getBuf() *respBuf { return bufPool.Get().(*respBuf) }

func putBuf(bp *respBuf, b []byte) {
	if cap(b) > maxPooledBuf {
		return
	}
	bp.b = b[:0]
	bufPool.Put(bp)
}

// appendUint appends v in base 10.
func appendUint(b []byte, v uint64) []byte { return strconv.AppendUint(b, v, 10) }

// appendInt appends v in base 10.
func appendInt(b []byte, v int64) []byte { return strconv.AppendInt(b, v, 10) }

// appendBool appends true/false.
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// appendFloat appends f exactly as encoding/json renders a float64:
// shortest round-trip representation, 'f' form except for very small
// or very large magnitudes, with Go's "e-09" exponent shortened to
// "e-9". NaN and infinities (which json.Marshal refuses) render as 0 —
// no handler produces them.
func appendFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// jsonSafe marks the bytes encoding/json emits verbatim inside a
// string when HTML escaping is on (its default, which we match):
// printable ASCII minus `"`, `\`, `<`, `>`, `&`.
var jsonSafe = [utf8.RuneSelf]bool{}

func init() {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		jsonSafe[c] = true
	}
	for _, c := range []byte{'"', '\\', '<', '>', '&'} {
		jsonSafe[c] = false
	}
}

const hexDigits = "0123456789abcdef"

// appendString appends s as a quoted JSON string, byte-identical to
// json.Marshal(s): short escapes for \", \\, \n, \r, \t; \u00xx for
// other control bytes and for <, >, & (HTML escaping); � for
// invalid UTF-8; \u2028 and \u2029 escaped for JS embedding.
func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if jsonSafe[c] {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
