package netserve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

func newTestCache(budget int64) (*lruCache, *telemetry.Registry) {
	reg := telemetry.New()
	return newLRUCache(budget, reg.Counter("ev"), reg.Gauge("by")), reg
}

func TestLRUCacheEvictsOldest(t *testing.T) {
	c, reg := newTestCache(10)
	c.put("a", 1, []byte("aaaa")) // 4 bytes
	c.put("b", 1, []byte("bbbb")) // 8 bytes
	c.put("c", 1, []byte("cccc")) // 12 > 10: evicts "a" (LRU)
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived past the byte budget")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted prematurely", k)
		}
	}
	if got := reg.Counter("ev").Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := reg.Gauge("by").Value(); got != 8 {
		t.Fatalf("cache bytes gauge = %d, want 8", got)
	}
}

func TestLRUCacheGetRefreshesRecency(t *testing.T) {
	c, _ := newTestCache(10)
	c.put("a", 1, []byte("aaaa"))
	c.put("b", 1, []byte("bbbb"))
	c.get("a")                    // a is now most recent
	c.put("c", 1, []byte("cccc")) // evicts b, not a
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently-used a was evicted")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("least-recently-used b survived")
	}
}

func TestLRUCacheUpdateExistingKey(t *testing.T) {
	c, _ := newTestCache(100)
	c.put("a", 1, []byte("xx"))
	c.put("a", 2, []byte("yyyy"))
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 after update", c.len())
	}
	if v, _ := c.get("a"); string(v) != "yyyy" {
		t.Fatalf("get after update = %q", v)
	}
	if c.used != 4 {
		t.Fatalf("used = %d, want 4 (old size released)", c.used)
	}
}

func TestLRUCacheRejectsOversized(t *testing.T) {
	c, _ := newTestCache(4)
	c.put("big", 1, []byte("too large for budget"))
	if c.len() != 0 {
		t.Fatal("oversized value was cached")
	}
}

func TestLRUCachePurgeBelow(t *testing.T) {
	c, _ := newTestCache(1 << 20)
	c.put("old1", 1, []byte("a"))
	c.put("old2", 1, []byte("b"))
	c.put("new", 2, []byte("c"))
	c.purgeBelow(2)
	if c.len() != 1 {
		t.Fatalf("len after purge = %d, want 1", c.len())
	}
	if _, ok := c.get("new"); !ok {
		t.Fatal("current-generation entry purged")
	}
	if c.used != 1 {
		t.Fatalf("used after purge = %d, want 1", c.used)
	}
}

func TestLRUCacheNilSafe(t *testing.T) {
	var c *lruCache // budget <= 0 → newLRUCache returns nil
	if newLRUCache(0, nil, nil) != nil || newLRUCache(-5, nil, nil) != nil {
		t.Fatal("non-positive budget should disable the cache")
	}
	c.put("a", 1, []byte("x")) // all methods are nil-safe no-ops
	c.purgeBelow(9)
	if _, ok := c.get("a"); ok || c.len() != 0 {
		t.Fatal("nil cache returned data")
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	var fg flightGroup
	var calls atomic.Int64
	block := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	sharedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := fg.do("k", func() ([]byte, error) {
				calls.Add(1)
				<-block
				return []byte("result"), nil
			})
			if err != nil || string(v) != "result" {
				t.Errorf("do = %q, %v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Wait for everyone else to pile onto the in-flight call.
	for fg.waiters("k") != n-1 {
		runtime.Gosched() // single-CPU boxes need the yield
	}
	close(block)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Fatalf("shared = %d, want %d", got, n-1)
	}
	// The key is free again: a fresh call recomputes.
	_, _, shared := fg.do("k", func() ([]byte, error) { return nil, nil })
	if shared {
		t.Fatal("fresh call after drain reported shared")
	}
}

func TestFlightGroupPropagatesError(t *testing.T) {
	var fg flightGroup
	sentinel := errors.New("boom")
	_, err, _ := fg.do("k", func() ([]byte, error) { return nil, sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestFlightGroupDistinctKeysIndependent(t *testing.T) {
	var fg flightGroup
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		v, err, shared := fg.do(key, func() ([]byte, error) {
			return []byte(key), nil
		})
		if err != nil || shared || string(v) != key {
			t.Fatalf("do(%s) = %q, %v, shared=%v", key, v, err, shared)
		}
	}
}
