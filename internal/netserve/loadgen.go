package netserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/telemetry"
)

// BenchConfig drives the mixed-query load generator behind
// `netserve -selfbench`.
type BenchConfig struct {
	// Concurrency is the number of closed-loop client goroutines.
	Concurrency int
	// Duration is how long to drive load.
	Duration time.Duration
	// Seed makes the query mix reproducible.
	Seed int64
}

// BenchResult is the load generator's report, written to
// BENCH_serve.json by scripts/bench.sh. The serve_qps / serve_p99_ms
// keys are the scripted figures of merit.
type BenchResult struct {
	// Meta is the shared provenance stamp (telemetry.NewBenchMeta):
	// producing tool, toolchain, GOMAXPROCS, config echo. The driver
	// (cmd/netserve -selfbench) fills it before WriteFile.
	Meta telemetry.BenchMeta `json:"meta"`

	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_s"`
	QPS         float64 `json:"serve_qps"`
	P50Ms       float64 `json:"serve_p50_ms"`
	P95Ms       float64 `json:"serve_p95_ms"`
	P99Ms       float64 `json:"serve_p99_ms"`
	MaxMs       float64 `json:"serve_max_ms"`
	Vertices    int     `json:"vertices"`
	Edges       int     `json:"edges"`

	// PerEndpoint counts how often each endpoint family was hit.
	PerEndpoint map[string]int64 `json:"per_endpoint"`

	// HotAllocsPerOp is steady-state heap allocations per response
	// render for each hot endpoint (Server.HotAllocs); the zero-alloc
	// gate in scripts/check.sh reads these out of BENCH_serve.json.
	HotAllocsPerOp map[string]float64 `json:"hot_allocs_per_op,omitempty"`
}

// queryKind is one entry of the mixed workload with its weight.
type queryKind struct {
	name   string
	weight int
	build  func(rng *rand.Rand, g *graph.Graph) string
}

// workloadMix is the benchmark's query distribution: dominated by the
// cheap point lookups a contact-tracing consumer issues per person —
// the index-backed O(1) endpoints, with neighbors requesting the first
// page at the baked top-k budget — plus a tail of genuinely expensive
// neighborhood and path queries. Path queries target a vertex a few
// random hops away from the source, the "did my contact's contact reach
// me" question; at million-vertex scale an all-pairs random path would
// measure BFS flood time, not serving overhead.
var workloadMix = []queryKind{
	{"degree", 30, func(rng *rand.Rand, g *graph.Graph) string {
		return fmt.Sprintf("/v1/degree/%d", rng.Intn(g.NumVertices()))
	}},
	{"neighbors", 25, func(rng *rand.Rand, g *graph.Graph) string {
		return fmt.Sprintf("/v1/neighbors/%d?limit=32", rng.Intn(g.NumVertices()))
	}},
	{"clustering", 15, func(rng *rand.Rand, g *graph.Graph) string {
		return fmt.Sprintf("/v1/clustering/%d", rng.Intn(g.NumVertices()))
	}},
	{"stats", 10, func(_ *rand.Rand, _ *graph.Graph) string { return "/v1/stats" }},
	{"degree-dist", 8, func(_ *rand.Rand, _ *graph.Graph) string { return "/v1/degree-dist" }},
	{"ego1", 5, func(rng *rand.Rand, g *graph.Graph) string {
		return fmt.Sprintf("/v1/ego/%d?radius=1", rng.Intn(g.NumVertices()))
	}},
	{"path", 4, func(rng *rand.Rand, g *graph.Graph) string {
		src := uint32(rng.Intn(g.NumVertices()))
		return fmt.Sprintf("/v1/path?from=%d&to=%d", src, nearbyTarget(rng, g, src))
	}},
	{"ego2", 3, func(rng *rand.Rand, g *graph.Graph) string {
		return fmt.Sprintf("/v1/ego/%d?radius=2", rng.Intn(g.NumVertices()))
	}},
}

// nearbyTarget random-walks up to three hops from src, giving path
// queries a destination whose BFS ball is small.
func nearbyTarget(rng *rand.Rand, g *graph.Graph, src uint32) uint32 {
	dst := src
	for hop := 0; hop < 3; hop++ {
		row, _ := g.Neighbors(dst)
		if len(row) == 0 {
			break
		}
		dst = row[rng.Intn(len(row))]
	}
	return dst
}

// pickQuery samples the mix.
func pickQuery(rng *rand.Rand, g *graph.Graph) (string, string) {
	total := 0
	for _, k := range workloadMix {
		total += k.weight
	}
	t := rng.Intn(total)
	for _, k := range workloadMix {
		if t < k.weight {
			return k.name, k.build(rng, g)
		}
		t -= k.weight
	}
	k := workloadMix[0]
	return k.name, k.build(rng, g)
}

// RunLoad drives concurrent mixed queries against baseURL (a running
// netserve) for the configured duration and reports QPS and latency
// quantiles. g is the served graph, used only to draw valid vertex IDs.
func RunLoad(ctx context.Context, baseURL string, g *graph.Graph, cfg BenchConfig) (*BenchResult, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 16
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("netserve: cannot bench an empty graph")
	}
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency * 2,
			MaxIdleConnsPerHost: cfg.Concurrency * 2,
		},
	}
	defer client.CloseIdleConnections()

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	type workerStats struct {
		lats     []time.Duration
		errs     int64
		perQuery map[string]int64
	}
	stats := make([]workerStats, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for wi := 0; wi < cfg.Concurrency; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(wi)*7919))
			ws := &stats[wi]
			ws.perQuery = make(map[string]int64)
			for ctx.Err() == nil {
				kind, q := pickQuery(rng, g)
				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+q, nil)
				if err != nil {
					ws.errs++
					continue
				}
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return // deadline, not a server error
					}
					ws.errs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					ws.errs++
					continue
				}
				ws.lats = append(ws.lats, time.Since(t0))
				ws.perQuery[kind]++
			}
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	res := &BenchResult{
		Concurrency: cfg.Concurrency,
		DurationSec: elapsed.Seconds(),
		Vertices:    n,
		Edges:       g.NumEdges(),
		PerEndpoint: make(map[string]int64),
	}
	for i := range stats {
		all = append(all, stats[i].lats...)
		res.Errors += stats[i].errs
		for k, v := range stats[i].perQuery {
			res.PerEndpoint[k] += v
		}
	}
	res.Requests = int64(len(all))
	if res.Requests == 0 {
		return nil, fmt.Errorf("netserve: bench made no successful requests (%d errors)", res.Errors)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Millisecond)
	}
	res.QPS = float64(res.Requests) / elapsed.Seconds()
	res.P50Ms = q(0.50)
	res.P95Ms = q(0.95)
	res.P99Ms = q(0.99)
	res.MaxMs = float64(all[len(all)-1]) / float64(time.Millisecond)
	return res, nil
}

// WriteFile writes the result as indented JSON to path.
func (r *BenchResult) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
