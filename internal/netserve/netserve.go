// Package netserve is the serving stage of the pipeline: a resident,
// concurrent HTTP JSON query service over a synthesized collocation
// network — the paper's Section II contact-tracing reading of the
// network as a repeatedly-interrogated substrate.
//
// The design centers on an atomically swappable snapshot generation:
//
//   - the current gstore.Snapshot lives behind an atomic.Pointer; every
//     request takes a reference, so a hot reload (SIGHUP, or an mtime
//     watcher noticing netsynth rewrote the file) swaps the pointer and
//     the old generation drains — it is closed only when its last
//     in-flight request finishes. A failed reload (corrupt snapshot)
//     leaves the old generation serving.
//   - a bounded worker semaphore caps concurrent query evaluation;
//     requests that cannot get a slot within their deadline get 503.
//   - identical in-flight expensive queries are coalesced (single
//     flight) and results land in a byte-budgeted LRU keyed by snapshot
//     generation, so a reload invalidates the cache wholesale.
//   - every endpoint reports request/latency/in-flight/cache-hit series
//     into the shared telemetry registry (prefix serve_), exposed on
//     the same -telemetry-addr Prometheus endpoint as the rest of the
//     pipeline.
package netserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/telemetry"
)

// Options configures a Server. Zero values select the documented
// defaults.
type Options struct {
	// Workers bounds concurrent query evaluation (default 2×CPUs).
	Workers int
	// CacheBytes budgets the LRU result cache (default 32 MiB;
	// negative disables caching).
	CacheBytes int64
	// RequestTimeout bounds each query (default 5s; negative disables).
	RequestTimeout time.Duration
	// WatchInterval polls the snapshot file's mtime for hot reload
	// (default off; set > 0 to enable).
	WatchInterval time.Duration
	// Registry receives the serve_* telemetry series (default
	// telemetry.Default).
	Registry *telemetry.Registry
	// MaxEgoMembers caps the member list returned by /v1/ego
	// (default 10000).
	MaxEgoMembers int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2 * runtime.NumCPU()
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 32 << 20
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.Registry == nil {
		o.Registry = telemetry.Default
	}
	if o.MaxEgoMembers <= 0 {
		o.MaxEgoMembers = 10000
	}
	return o
}

// generation is one published snapshot plus its reference count. The
// publisher holds one reference; every in-flight request holds one
// more. The snapshot is closed exactly once, when the count reaches
// zero after the generation has been superseded.
type generation struct {
	num      uint64
	snap     *gstore.Snapshot
	mtime    time.Time
	loadedAt time.Time
	refs     atomic.Int64
	closed   sync.Once
}

func (g *generation) unref() {
	if g.refs.Add(-1) == 0 {
		g.closed.Do(func() { g.snap.Close() })
	}
}

// Server is the query service. Create with New, mount Handler on an
// http.Server, and Close when done.
type Server struct {
	opts Options
	path string

	cur      atomic.Pointer[generation]
	genSeq   atomic.Uint64
	reloadMu sync.Mutex

	sem    chan struct{}
	cache  *lruCache
	flight flightGroup
	mux    *http.ServeMux

	stopWatch chan struct{}
	watchDone chan struct{}

	// Global series.
	mRequests    *telemetry.Counter
	mErrors      *telemetry.Counter
	mCoalesced   *telemetry.Counter
	mCacheHits   *telemetry.Counter
	mCacheMisses *telemetry.Counter
	mReloads     *telemetry.Counter
	mReloadFails *telemetry.Counter
	mGeneration  *telemetry.Gauge
	mSaturated   *telemetry.Counter
}

// endpoint bundles one route's handler with its telemetry series.
type endpoint struct {
	name      string
	cacheable bool
	fn        func(g *graph.Graph, gen *generation, r *http.Request) (any, error)

	requests  *telemetry.Counter
	errors    *telemetry.Counter
	latency   *telemetry.Histogram
	inflight  *telemetry.Gauge
	cacheHits *telemetry.Counter
}

// apiError is a handler failure with an HTTP status.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &apiError{code: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// New loads the snapshot at path (a .gsnap snapshot or a TSV edge list,
// sniffed by magic bytes) and returns a ready Server. The mtime watcher
// starts only when Options.WatchInterval > 0.
func New(path string, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	reg := opts.Registry
	s := &Server{
		opts: opts,
		path: path,
		sem:  make(chan struct{}, opts.Workers),

		mRequests:    reg.Counter("serve_requests_total"),
		mErrors:      reg.Counter("serve_errors_total"),
		mCoalesced:   reg.Counter("serve_coalesced_total"),
		mCacheHits:   reg.Counter("serve_cache_hits_total"),
		mCacheMisses: reg.Counter("serve_cache_misses_total"),
		mReloads:     reg.Counter("serve_reloads_total"),
		mReloadFails: reg.Counter("serve_reload_failures_total"),
		mGeneration:  reg.Gauge("serve_generation"),
		mSaturated:   reg.Counter("serve_saturated_total"),
	}
	s.cache = newLRUCache(opts.CacheBytes,
		reg.Counter("serve_cache_evictions_total"), reg.Gauge("serve_cache_bytes"))
	if err := s.Reload(); err != nil {
		return nil, err
	}
	s.buildMux()
	if opts.WatchInterval > 0 {
		s.stopWatch = make(chan struct{})
		s.watchDone = make(chan struct{})
		go s.watchLoop()
	}
	return s, nil
}

// Reload (re)loads the snapshot file and atomically publishes it as a
// new generation. On failure the previous generation keeps serving and
// the error is returned; serve_reload_failures_total counts it.
func (s *Server) Reload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	var mtime time.Time
	if fi, err := os.Stat(s.path); err == nil {
		mtime = fi.ModTime()
	}
	snap, err := gstore.LoadGraphFile(s.path, 0)
	if err != nil {
		s.mReloadFails.Inc()
		return fmt.Errorf("netserve: reload %s: %w", s.path, err)
	}
	gen := &generation{
		num:      s.genSeq.Add(1),
		snap:     snap,
		mtime:    mtime,
		loadedAt: time.Now(),
	}
	gen.refs.Store(1) // publisher reference
	old := s.cur.Swap(gen)
	s.mGeneration.Set(int64(gen.num))
	s.mReloads.Inc()
	s.cache.purgeBelow(gen.num)
	if old != nil {
		old.unref() // drains: closed when the last in-flight request ends
	}
	return nil
}

// acquire takes a reference on the current generation. The
// load-increment-recheck loop guarantees the reference is valid: the
// publisher drops its own reference only after swapping the pointer,
// so observing cur == g after incrementing proves the publisher still
// held its reference when we incremented.
func (s *Server) acquire() *generation {
	for {
		g := s.cur.Load()
		if g == nil {
			return nil
		}
		g.refs.Add(1)
		if s.cur.Load() == g {
			return g
		}
		g.unref() // superseded under us; retry on the new generation
	}
}

// Acquire pins the current generation and returns its graph, its
// generation number, and a release func that must be called when the
// caller is done — the generation cannot be drained (and its mmap
// cannot be unmapped) until then. Callers outside the request path
// (startup banners, self-bench drivers) use this instead of re-opening
// the snapshot file.
func (s *Server) Acquire() (*graph.Graph, uint64, func()) {
	gen := s.acquire()
	if gen == nil {
		return nil, 0, func() {}
	}
	var once sync.Once
	return gen.snap.Graph(), gen.num, func() { once.Do(gen.unref) }
}

// Generation returns the current snapshot generation number.
func (s *Server) Generation() uint64 {
	if g := s.cur.Load(); g != nil {
		return g.num
	}
	return 0
}

// watchLoop polls the snapshot file's mtime and hot-reloads on change.
func (s *Server) watchLoop() {
	defer close(s.watchDone)
	t := time.NewTicker(s.opts.WatchInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopWatch:
			return
		case <-t.C:
			g := s.cur.Load()
			fi, err := os.Stat(s.path)
			if err != nil || g == nil {
				continue
			}
			if !fi.ModTime().Equal(g.mtime) {
				s.Reload() // failure keeps the old generation; counted
			}
		}
	}
}

// Close stops the watcher and releases the current generation. It does
// not touch any http.Server mounted on Handler — drain that first
// (http.Server.Shutdown), then Close.
func (s *Server) Close() error {
	if s.stopWatch != nil {
		close(s.stopWatch)
		<-s.watchDone
		s.stopWatch = nil
	}
	if g := s.cur.Swap(nil); g != nil {
		g.unref()
	}
	return nil
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler { return s.mux }

// HardenedHandler returns Handler wrapped with the process-level
// robustness middleware from WithBackpressure, using the server's
// request timeout and a 1-second Retry-After hint. The daemon
// (cmd/netserve) mounts this one.
func (s *Server) HardenedHandler() http.Handler {
	return WithBackpressure(s.mux, s.opts.RequestTimeout, time.Second)
}

// WithBackpressure wraps h with two robustness layers:
//
//   - an http.TimeoutHandler backstop slightly above timeout, so a
//     handler that wedges without honoring its context still produces
//     a 503 instead of holding the connection forever (the context
//     deadline inside Server.serve remains the first line of defense
//     and wins on well-behaved paths);
//   - a Retry-After header injected into every 503 response — both
//     the semaphore's "server saturated" rejection and the timeout
//     backstop — so clients back off instead of hammering a saturated
//     service.
//
// The Retry-After layer sits outside the timeout layer so it sees the
// backstop's 503s too. Zero timeout disables the backstop; zero
// retryAfter disables the header.
func WithBackpressure(h http.Handler, timeout, retryAfter time.Duration) http.Handler {
	if timeout > 0 {
		h = http.TimeoutHandler(h, timeout+250*time.Millisecond, `{"error":"request timed out"}`)
	}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		val := strconv.FormatInt(secs, 10)
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			inner.ServeHTTP(&retryAfterWriter{ResponseWriter: w, seconds: val}, r)
		})
	}
	return h
}

// retryAfterWriter injects a Retry-After header the moment a 503
// status is committed — headers cannot be added after WriteHeader, so
// this is the only point where the hint can ride along.
type retryAfterWriter struct {
	http.ResponseWriter
	seconds string
}

func (w *retryAfterWriter) WriteHeader(code int) {
	if code == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", w.seconds)
	}
	w.ResponseWriter.WriteHeader(code)
}

// ---------------------------------------------------------------------------
// Routing

func (s *Server) buildMux() {
	s.mux = http.NewServeMux()
	s.route("GET /v1/stats", "stats", true, s.handleStats)
	s.route("GET /v1/degree/{id}", "degree", false, s.handleDegree)
	s.route("GET /v1/neighbors/{id}", "neighbors", true, s.handleNeighbors)
	s.route("GET /v1/ego/{id}", "ego", true, s.handleEgo)
	s.route("GET /v1/path", "path", true, s.handlePath)
	s.route("GET /v1/degree-dist", "degree_dist", true, s.handleDegreeDist)
	s.route("GET /v1/clustering/{id}", "clustering", true, s.handleClustering)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, nil, notFound("no such endpoint %q", r.URL.Path))
	})
}

func (s *Server) route(pattern, name string, cacheable bool,
	fn func(g *graph.Graph, gen *generation, r *http.Request) (any, error)) {
	reg := s.opts.Registry
	ep := &endpoint{
		name:      name,
		cacheable: cacheable,
		fn:        fn,
		requests:  reg.Counter("serve_" + name + "_requests_total"),
		errors:    reg.Counter("serve_" + name + "_errors_total"),
		latency:   reg.Histogram("serve_" + name + "_seconds"),
		inflight:  reg.Gauge("serve_" + name + "_inflight"),
		cacheHits: reg.Counter("serve_" + name + "_cache_hits_total"),
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.serve(ep, w, r)
	})
}

// serve is the request spine shared by every endpoint: timeout,
// semaphore, generation reference, cache, singleflight, telemetry.
func (s *Server) serve(ep *endpoint, w http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	ep.requests.Inc()
	ep.inflight.Add(1)
	defer ep.inflight.Add(-1)
	sw := s.opts.Registry.Clock()
	defer func() { sw.Observe(ep.latency) }()

	ctx := r.Context()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}

	// Bounded worker pool: wait for a slot within the deadline.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.mSaturated.Inc()
		s.writeError(w, ep, &apiError{code: http.StatusServiceUnavailable, msg: "server saturated"})
		return
	}

	gen := s.acquire()
	if gen == nil {
		s.writeError(w, ep, &apiError{code: http.StatusServiceUnavailable, msg: "shutting down"})
		return
	}
	defer gen.unref()
	g := gen.snap.Graph()

	if !ep.cacheable || s.cache == nil {
		v, err := ep.fn(g, gen, r)
		if err != nil {
			s.writeError(w, ep, err)
			return
		}
		s.writeJSON(w, ep, v)
		return
	}

	key := cacheKey(ep.name, gen.num, r)
	if b, ok := s.cache.get(key); ok {
		s.mCacheHits.Inc()
		ep.cacheHits.Inc()
		writeJSONBytes(w, http.StatusOK, b)
		return
	}
	s.mCacheMisses.Inc()
	b, err, shared := s.flight.do(key, func() ([]byte, error) {
		v, ferr := ep.fn(g, gen, r)
		if ferr != nil {
			return nil, ferr
		}
		mb, merr := json.Marshal(v)
		if merr != nil {
			return nil, merr
		}
		s.cache.put(key, gen.num, mb)
		return mb, nil
	})
	if shared {
		s.mCoalesced.Inc()
	}
	if err != nil {
		s.writeError(w, ep, err)
		return
	}
	writeJSONBytes(w, http.StatusOK, b)
}

// cacheKey canonicalizes a request: endpoint, generation, path, and
// the sorted query encoding (url.Values.Encode sorts by key).
func cacheKey(name string, gen uint64, r *http.Request) string {
	return name + "|" + strconv.FormatUint(gen, 10) + "|" + r.URL.Path + "?" + r.URL.Query().Encode()
}

func (s *Server) writeJSON(w http.ResponseWriter, ep *endpoint, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		s.writeError(w, ep, err)
		return
	}
	writeJSONBytes(w, http.StatusOK, b)
}

func writeJSONBytes(w http.ResponseWriter, code int, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
	w.Write([]byte{'\n'})
}

func (s *Server) writeError(w http.ResponseWriter, ep *endpoint, err error) {
	s.mErrors.Inc()
	if ep != nil {
		ep.errors.Inc()
	}
	code := http.StatusInternalServerError
	var ae *apiError
	if errors.As(err, &ae) {
		code = ae.code
	}
	b, _ := json.Marshal(map[string]any{"error": err.Error(), "status": code})
	writeJSONBytes(w, code, b)
}

// ---------------------------------------------------------------------------
// Request parsing

// vertexArg parses a vertex ID path/query argument against the graph:
// 400 for junk, 404 for IDs outside the vertex space.
func vertexArg(g *graph.Graph, raw, what string) (uint32, error) {
	if raw == "" {
		return 0, badRequest("missing %s", what)
	}
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, badRequest("bad %s %q: %v", what, raw, err)
	}
	if int(v) >= g.NumVertices() {
		return 0, notFound("%s %d outside vertex space [0,%d)", what, v, g.NumVertices())
	}
	return uint32(v), nil
}

// intArg parses an optional bounded integer query parameter.
func intArg(r *http.Request, name string, def, lo, hi int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("bad %s %q: %v", name, raw, err)
	}
	if v < lo || v > hi {
		return 0, badRequest("%s %d outside [%d,%d]", name, v, lo, hi)
	}
	return v, nil
}

// ---------------------------------------------------------------------------
// Endpoints

// StatsResponse is /v1/stats.
type StatsResponse struct {
	Vertices          int    `json:"vertices"`
	VerticesWithEdges int    `json:"vertices_with_edges"`
	Edges             int    `json:"edges"`
	TotalWeight       uint64 `json:"total_weight"`
	MaxDegree         int    `json:"max_degree"`
	Generation        uint64 `json:"generation"`
	SnapshotPath      string `json:"snapshot_path"`
	SnapshotBytes     int64  `json:"snapshot_bytes"`
	Mapped            bool   `json:"mapped"`
	LoadedAt          string `json:"loaded_at"`
}

func (s *Server) handleStats(g *graph.Graph, gen *generation, _ *http.Request) (any, error) {
	return StatsResponse{
		Vertices:          g.NumVertices(),
		VerticesWithEdges: g.VerticesWithEdges(),
		Edges:             g.NumEdges(),
		TotalWeight:       g.TotalWeight(),
		MaxDegree:         g.MaxDegree(),
		Generation:        gen.num,
		SnapshotPath:      gen.snap.Path(),
		SnapshotBytes:     gen.snap.SizeBytes(),
		Mapped:            gen.snap.Mapped(),
		LoadedAt:          gen.loadedAt.UTC().Format(time.RFC3339Nano),
	}, nil
}

// DegreeResponse is /v1/degree/{id}.
type DegreeResponse struct {
	ID       uint32 `json:"id"`
	Degree   int    `json:"degree"`
	Strength uint64 `json:"strength"`
}

func (s *Server) handleDegree(g *graph.Graph, _ *generation, r *http.Request) (any, error) {
	v, err := vertexArg(g, r.PathValue("id"), "vertex")
	if err != nil {
		return nil, err
	}
	return DegreeResponse{ID: v, Degree: g.Degree(v), Strength: g.Strength(v)}, nil
}

// Neighbor is one weighted adjacency in /v1/neighbors/{id}.
type Neighbor struct {
	ID     uint32 `json:"id"`
	Weight uint32 `json:"weight"`
}

// NeighborsResponse is /v1/neighbors/{id}: the strongest contacts
// first (weight descending, ID ascending on ties), paginated.
type NeighborsResponse struct {
	ID        uint32     `json:"id"`
	Degree    int        `json:"degree"`
	Offset    int        `json:"offset"`
	Returned  int        `json:"returned"`
	Neighbors []Neighbor `json:"neighbors"`
}

func (s *Server) handleNeighbors(g *graph.Graph, _ *generation, r *http.Request) (any, error) {
	v, err := vertexArg(g, r.PathValue("id"), "vertex")
	if err != nil {
		return nil, err
	}
	offset, err := intArg(r, "offset", 0, 0, 1<<31-1)
	if err != nil {
		return nil, err
	}
	limit, err := intArg(r, "limit", 50, 1, 1000)
	if err != nil {
		return nil, err
	}
	ids, wts := g.Neighbors(v)
	all := make([]Neighbor, len(ids))
	for k := range ids {
		all[k] = Neighbor{ID: ids[k], Weight: wts[k]}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Weight != all[j].Weight {
			return all[i].Weight > all[j].Weight
		}
		return all[i].ID < all[j].ID
	})
	if offset > len(all) {
		offset = len(all)
	}
	page := all[offset:]
	if len(page) > limit {
		page = page[:limit]
	}
	return NeighborsResponse{
		ID: v, Degree: len(all), Offset: offset, Returned: len(page), Neighbors: page,
	}, nil
}

// EgoResponse is /v1/ego/{id}: the radius-k ego network (the paper's
// V = v ∪ V1 ∪ V2 construction) with its induced edge count.
type EgoResponse struct {
	ID        uint32   `json:"id"`
	Radius    int      `json:"radius"`
	Size      int      `json:"size"`
	Edges     int      `json:"edges"`
	Members   []uint32 `json:"members"`
	Truncated bool     `json:"truncated"`
}

func (s *Server) handleEgo(g *graph.Graph, _ *generation, r *http.Request) (any, error) {
	v, err := vertexArg(g, r.PathValue("id"), "vertex")
	if err != nil {
		return nil, err
	}
	radius, err := intArg(r, "radius", 2, 0, 6)
	if err != nil {
		return nil, err
	}
	members := g.Ego(v, radius)
	inSet := make(map[uint32]struct{}, len(members))
	for _, m := range members {
		inSet[m] = struct{}{}
	}
	edges := 0
	for _, m := range members {
		row, _ := g.Neighbors(m)
		for _, u := range row {
			if u > m {
				if _, ok := inSet[u]; ok {
					edges++
				}
			}
		}
	}
	resp := EgoResponse{ID: v, Radius: radius, Size: len(members), Edges: edges, Members: members}
	if len(resp.Members) > s.opts.MaxEgoMembers {
		resp.Members = resp.Members[:s.opts.MaxEgoMembers]
		resp.Truncated = true
	}
	return resp, nil
}

// PathResponse is /v1/path?from=&to=[&weighted=1]. Unweighted searches
// minimize hops (BFS); weighted searches run Dijkstra with edge cost
// 1/weight, preferring strong collocation ties.
type PathResponse struct {
	From     uint32   `json:"from"`
	To       uint32   `json:"to"`
	Weighted bool     `json:"weighted"`
	Found    bool     `json:"found"`
	Hops     int      `json:"hops"`
	Cost     float64  `json:"cost"`
	Path     []uint32 `json:"path"`
}

func (s *Server) handlePath(g *graph.Graph, _ *generation, r *http.Request) (any, error) {
	from, err := vertexArg(g, r.URL.Query().Get("from"), "from")
	if err != nil {
		return nil, err
	}
	to, err := vertexArg(g, r.URL.Query().Get("to"), "to")
	if err != nil {
		return nil, err
	}
	weighted := r.URL.Query().Get("weighted") == "1"
	resp := PathResponse{From: from, To: to, Weighted: weighted}
	if weighted {
		path, cost, ok := g.ShortestPathWeighted(from, to)
		if ok {
			resp.Found, resp.Path, resp.Cost, resp.Hops = true, path, cost, len(path)-1
		}
	} else {
		path, ok := g.ShortestPathBFS(from, to)
		if ok {
			resp.Found, resp.Path, resp.Hops = true, path, len(path)-1
			resp.Cost = float64(len(path) - 1)
		}
	}
	return resp, nil
}

// DegreeDistResponse is /v1/degree-dist: the dense degree histogram
// (slot k = number of vertices with degree k), deterministic across
// runs.
type DegreeDistResponse struct {
	Vertices  int   `json:"vertices"`
	MaxDegree int   `json:"max_degree"`
	Histogram []int `json:"histogram"`
}

func (s *Server) handleDegreeDist(g *graph.Graph, _ *generation, _ *http.Request) (any, error) {
	hist := g.DegreeHistogram()
	return DegreeDistResponse{
		Vertices:  g.NumVertices(),
		MaxDegree: len(hist) - 1,
		Histogram: hist,
	}, nil
}

// ClusteringResponse is /v1/clustering/{id}.
type ClusteringResponse struct {
	ID         uint32  `json:"id"`
	Degree     int     `json:"degree"`
	Clustering float64 `json:"clustering"`
}

func (s *Server) handleClustering(g *graph.Graph, _ *generation, r *http.Request) (any, error) {
	v, err := vertexArg(g, r.PathValue("id"), "vertex")
	if err != nil {
		return nil, err
	}
	return ClusteringResponse{ID: v, Degree: g.Degree(v), Clustering: g.LocalClustering(v)}, nil
}
