// Package netserve is the serving stage of the pipeline: a resident,
// concurrent HTTP JSON query service over a synthesized collocation
// network — the paper's Section II contact-tracing reading of the
// network as a repeatedly-interrogated substrate.
//
// The design centers on an atomically swappable snapshot generation:
//
//   - the current gstore.Snapshot lives behind an atomic.Pointer; every
//     request takes a reference, so a hot reload (SIGHUP, or an mtime
//     watcher noticing netsynth rewrote the file) swaps the pointer and
//     the old generation drains — it is closed only when its last
//     in-flight request finishes. A failed reload (corrupt snapshot)
//     leaves the old generation serving.
//   - a bounded worker semaphore caps concurrent query evaluation;
//     requests that cannot get a slot within their deadline get 503.
//   - hot endpoints (/v1/stats, /v1/degree, /v1/clustering,
//     /v1/degree-dist, and page one of /v1/neighbors) are O(1) reads
//     off the snapshot's precomputed v2 index sections when present,
//     rendered through a pooled append-based JSON encoder — amortized
//     zero allocations per request. v1 snapshots (no index) serve the
//     same byte-identical responses through live computation, with the
//     degree histogram and global stats precomputed once per reload.
//   - identical in-flight expensive queries are coalesced (single
//     flight) and results land in a byte-budgeted LRU keyed by snapshot
//     generation, so a reload invalidates the cache wholesale — this
//     path now backs only the expensive endpoints (/v1/ego, /v1/path).
//   - every endpoint reports request/latency/in-flight/cache-hit series
//     into the shared telemetry registry (prefix serve_), exposed on
//     the same -telemetry-addr Prometheus endpoint as the rest of the
//     pipeline.
package netserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// Options configures a Server. Zero values select the documented
// defaults.
type Options struct {
	// Workers bounds concurrent query evaluation (default 2×CPUs).
	Workers int
	// CacheBytes budgets the LRU result cache (default 32 MiB;
	// negative disables caching).
	CacheBytes int64
	// RequestTimeout bounds each query (default 5s; negative disables).
	RequestTimeout time.Duration
	// WatchInterval polls the snapshot file's mtime for hot reload
	// (default off; set > 0 to enable).
	WatchInterval time.Duration
	// Registry receives the serve_* telemetry series (default
	// telemetry.Default).
	Registry *telemetry.Registry
	// MaxEgoMembers caps the member list returned by /v1/ego
	// (default 10000).
	MaxEgoMembers int
	// AccessLog, when non-nil, receives one structured JSON line per
	// completed request: timestamp, method, path, query, endpoint,
	// status, duration, and a "slow":true flag past SlowThreshold.
	// Nil (the default) disables access logging with zero per-request
	// overhead — the hot path never touches the logger.
	AccessLog io.Writer
	// SlowThreshold is the duration at or beyond which an access-log
	// line is flagged slow (default 500ms). Only meaningful with a
	// non-nil AccessLog.
	SlowThreshold time.Duration
	// ScenarioSlots bounds concurrent replications inside a running
	// scenario (default Workers). Scenario runs themselves execute one
	// at a time.
	ScenarioSlots int
	// ScenarioStoreCap bounds the in-memory scenario job store
	// (default scenario.DefaultStoreCap).
	ScenarioStoreCap int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2 * runtime.NumCPU()
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 32 << 20
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.Registry == nil {
		o.Registry = telemetry.Default
	}
	if o.MaxEgoMembers <= 0 {
		o.MaxEgoMembers = 10000
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = 500 * time.Millisecond
	}
	if o.ScenarioSlots <= 0 {
		o.ScenarioSlots = o.Workers
	}
	if o.ScenarioStoreCap <= 0 {
		o.ScenarioStoreCap = scenario.DefaultStoreCap
	}
	return o
}

// generation is one published snapshot plus its reference count. The
// publisher holds one reference; every in-flight request holds one
// more. The snapshot is closed exactly once, when the count reaches
// zero after the generation has been superseded.
type generation struct {
	num      uint64
	snap     *gstore.Snapshot
	idx      *gstore.Index // nil for v1 snapshots / TSV loads
	sig      fileSig
	loadedAt time.Time
	refs     atomic.Int64
	closed   sync.Once

	// Freshness context from the publisher's meta sidecar
	// (gstore.ReadSnapshotMeta), zero when the snapshot was published
	// without one (batch netsynth, TSV loads).
	publishedAt   time.Time
	lastEventHour uint32

	// Responses that depend only on the snapshot, rendered once at
	// reload (from the index when present, live otherwise) so /v1/stats
	// and /v1/degree-dist are memcpys at request time. statsJSON is the
	// static prefix WITHOUT the closing brace — encodeStats appends the
	// per-request age_s field and closes the object.
	statsJSON []byte
	histJSON  []byte

	// Per-generation scratch pools for the live fallbacks: clustering
	// marker arrays (O(V) each) and BFS path state.
	markPool sync.Pool
	pathPool sync.Pool
}

func (g *generation) unref() {
	if g.refs.Add(-1) == 0 {
		g.closed.Do(func() { g.snap.Close() })
	}
}

// precompute renders the snapshot-static responses and wires the
// fallback scratch pools. For a v2 snapshot the histogram and global
// stats come straight off the index sections; for v1 they are computed
// live — but exactly once per reload, never per request.
func (g *generation) precompute() {
	gr := g.snap.Graph()
	n := gr.NumVertices()
	g.markPool.New = func() any {
		mark := make([]bool, n)
		return &mark
	}
	g.pathPool.New = func() any { return new(graph.PathScratch) }

	var hist []int64
	if g.idx != nil && g.idx.Histogram != nil {
		hist = g.idx.Histogram
	} else {
		h := gr.DegreeHistogram()
		hist = make([]int64, len(h))
		for i, c := range h {
			hist[i] = int64(c)
		}
	}
	var withEdges, totalWeight, maxDeg uint64
	if g.idx != nil && g.idx.Stats != nil {
		st := g.idx.Stats
		withEdges, totalWeight, maxDeg = st.VerticesWithEdges, st.TotalWeight, st.MaxDegree
	} else {
		withEdges = uint64(gr.VerticesWithEdges())
		totalWeight = gr.TotalWeight()
		maxDeg = uint64(gr.MaxDegree())
	}

	// Byte-identical to json.Marshal(StatsResponse{...}) modulo the
	// closing brace: the buffer stops after the last static field so
	// encodeStats can append the live age_s and close the object.
	b := append([]byte(nil), `{"vertices":`...)
	b = appendInt(b, int64(n))
	b = append(b, `,"vertices_with_edges":`...)
	b = appendUint(b, withEdges)
	b = append(b, `,"edges":`...)
	b = appendInt(b, int64(gr.NumEdges()))
	b = append(b, `,"total_weight":`...)
	b = appendUint(b, totalWeight)
	b = append(b, `,"max_degree":`...)
	b = appendUint(b, maxDeg)
	b = append(b, `,"generation":`...)
	b = appendUint(b, g.num)
	b = append(b, `,"snapshot_path":`...)
	b = appendString(b, g.snap.Path())
	b = append(b, `,"snapshot_bytes":`...)
	b = appendInt(b, g.snap.SizeBytes())
	b = append(b, `,"mapped":`...)
	b = appendBool(b, g.snap.Mapped())
	b = append(b, `,"loaded_at":`...)
	b = appendString(b, g.loadedAt.UTC().Format(time.RFC3339Nano))
	b = append(b, `,"snapshot_version":`...)
	b = appendInt(b, int64(g.snap.Version()))
	b = append(b, `,"index_sections":[`...)
	if g.idx != nil {
		for i, sec := range g.idx.Sections() {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendString(b, sec)
		}
	}
	b = append(b, ']')
	if !g.publishedAt.IsZero() {
		b = append(b, `,"published_at":`...)
		b = appendString(b, g.publishedAt.UTC().Format(time.RFC3339Nano))
	}
	if g.lastEventHour != 0 {
		b = append(b, `,"last_event_hour":`...)
		b = appendUint(b, uint64(g.lastEventHour))
	}
	g.statsJSON = b

	// Byte-identical to json.Marshal(DegreeDistResponse{...}).
	b = append([]byte(nil), `{"vertices":`...)
	b = appendInt(b, int64(n))
	b = append(b, `,"max_degree":`...)
	b = appendInt(b, int64(len(hist)-1))
	b = append(b, `,"histogram":[`...)
	for i, c := range hist {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendInt(b, c)
	}
	g.histJSON = append(b, ']', '}')
}

// Server is the query service. Create with New, mount Handler on an
// http.Server, and Close when done.
type Server struct {
	opts Options
	path string

	cur      atomic.Pointer[generation]
	genSeq   atomic.Uint64
	reloadMu sync.Mutex

	sem    chan struct{}
	cache  *lruCache
	flight flightGroup
	mux    *http.ServeMux
	logMu  sync.Mutex // serializes AccessLog writes

	stopWatch chan struct{}
	watchDone chan struct{}

	// Scenario job execution: bounded store, one-at-a-time execution
	// semaphore, and a context + waitgroup so Close can drain running
	// jobs (each of which pins its submission-time generation).
	scenStore  *scenario.Store
	scenSem    chan struct{}
	scenCtx    context.Context
	scenCancel context.CancelFunc
	scenWG     sync.WaitGroup

	// Global series.
	mRequests    *telemetry.Counter
	mErrors      *telemetry.Counter
	mCoalesced   *telemetry.Counter
	mCacheHits   *telemetry.Counter
	mCacheMisses *telemetry.Counter
	mReloads     *telemetry.Counter
	mReloadFails *telemetry.Counter
	mGeneration  *telemetry.Gauge
	mSaturated   *telemetry.Counter
}

// encodeFunc renders a hot endpoint's response directly into b (the
// appender convention: return the extended slice). It must not retain
// b, and on error the partial bytes are discarded.
type encodeFunc func(gen *generation, g *graph.Graph, r *http.Request, b []byte) ([]byte, error)

// endpoint bundles one route's handler with its telemetry series.
// Exactly one of encode (hot: pooled zero-alloc rendering, no cache)
// or fn (cold: json.Marshal + LRU + singleflight) is set.
type endpoint struct {
	name      string
	cacheable bool
	fn        func(g *graph.Graph, gen *generation, r *http.Request) (any, error)
	encode    encodeFunc

	requests  *telemetry.Counter
	errors    *telemetry.Counter
	latency   *telemetry.Histogram
	inflight  *telemetry.Gauge
	cacheHits *telemetry.Counter
}

// apiError is a handler failure with an HTTP status.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &apiError{code: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// New loads the snapshot at path (a .gsnap snapshot or a TSV edge list,
// sniffed by magic bytes) and returns a ready Server. The mtime watcher
// starts only when Options.WatchInterval > 0.
func New(path string, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	reg := opts.Registry
	s := &Server{
		opts: opts,
		path: path,
		sem:  make(chan struct{}, opts.Workers),

		mRequests:    reg.Counter("serve_requests_total"),
		mErrors:      reg.Counter("serve_errors_total"),
		mCoalesced:   reg.Counter("serve_coalesced_total"),
		mCacheHits:   reg.Counter("serve_cache_hits_total"),
		mCacheMisses: reg.Counter("serve_cache_misses_total"),
		mReloads:     reg.Counter("serve_reloads_total"),
		mReloadFails: reg.Counter("serve_reload_failures_total"),
		mGeneration:  reg.Gauge("serve_generation"),
		mSaturated:   reg.Counter("serve_saturated_total"),
	}
	s.cache = newLRUCache(opts.CacheBytes,
		reg.Counter("serve_cache_evictions_total"), reg.Gauge("serve_cache_bytes"))
	s.scenStore = scenario.NewStore(opts.ScenarioStoreCap)
	s.scenSem = make(chan struct{}, 1)
	s.scenCtx, s.scenCancel = context.WithCancel(context.Background())
	if err := s.Reload(); err != nil {
		return nil, err
	}
	s.buildMux()
	if opts.WatchInterval > 0 {
		s.stopWatch = make(chan struct{})
		s.watchDone = make(chan struct{})
		go s.watchLoop()
	}
	return s, nil
}

// fileSig identifies the exact snapshot file a generation was loaded
// from. ModTime alone is not enough: two generations published
// back-to-back can land within the filesystem's timestamp granularity
// and compare mtime-equal, making a watcher that only checks mtime skip
// the second one forever. Size and file identity (dev+inode via
// os.SameFile) disambiguate — the atomic-rename publish discipline
// (gstore.Publisher / writeFileWith) guarantees every generation
// arrives on a freshly created inode.
type fileSig struct {
	fi os.FileInfo // nil when the file could not be statted
}

func statSig(path string) fileSig {
	fi, err := os.Stat(path)
	if err != nil {
		return fileSig{}
	}
	return fileSig{fi: fi}
}

// same reports whether b plausibly refers to the same published file:
// equal mtime, equal size, and same dev+inode.
func (a fileSig) same(b fileSig) bool {
	if a.fi == nil || b.fi == nil {
		return a.fi == nil && b.fi == nil
	}
	return a.fi.ModTime().Equal(b.fi.ModTime()) &&
		a.fi.Size() == b.fi.Size() &&
		os.SameFile(a.fi, b.fi)
}

// Reload (re)loads the snapshot file and atomically publishes it as a
// new generation with a monotonic sequence number (genSeq). On failure
// the previous generation keeps serving and the error is returned;
// serve_reload_failures_total counts it.
//
// The file signature recorded on the generation is taken *before* the
// load. If a publisher renames a newer generation over the path while
// the load is in flight, the recorded signature cannot match the file
// on disk, so the next watch tick reloads again — a reload can be
// momentarily stale but never sticks: the watcher always converges on
// the latest published generation.
func (s *Server) Reload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	sig := statSig(s.path)
	snap, err := gstore.LoadGraphFile(s.path, 0)
	if err != nil {
		s.mReloadFails.Inc()
		return fmt.Errorf("netserve: reload %s: %w", s.path, err)
	}
	gen := &generation{
		num:      s.genSeq.Add(1),
		snap:     snap,
		idx:      snap.Index(),
		sig:      sig,
		loadedAt: time.Now(),
	}
	// The publisher's freshness sidecar is written before the snapshot
	// rename, so a watcher that saw the new generation always finds meta
	// at least as new. Absence (batch snapshots, TSV) is not an error.
	if m, merr := gstore.ReadSnapshotMeta(s.path); merr == nil {
		if m.PublishedUnixNs != 0 {
			gen.publishedAt = time.Unix(0, m.PublishedUnixNs)
		}
		gen.lastEventHour = m.LastEventHour
	}
	gen.precompute()
	gen.refs.Store(1) // publisher reference
	old := s.cur.Swap(gen)
	s.mGeneration.Set(int64(gen.num))
	s.mReloads.Inc()
	s.cache.purgeBelow(gen.num)
	if old != nil {
		old.unref() // drains: closed when the last in-flight request ends
	}
	return nil
}

// acquire takes a reference on the current generation. The
// load-increment-recheck loop guarantees the reference is valid: the
// publisher drops its own reference only after swapping the pointer,
// so observing cur == g after incrementing proves the publisher still
// held its reference when we incremented.
func (s *Server) acquire() *generation {
	for {
		g := s.cur.Load()
		if g == nil {
			return nil
		}
		g.refs.Add(1)
		if s.cur.Load() == g {
			return g
		}
		g.unref() // superseded under us; retry on the new generation
	}
}

// Acquire pins the current generation and returns its graph, its
// generation number, and a release func that must be called when the
// caller is done — the generation cannot be drained (and its mmap
// cannot be unmapped) until then. Callers outside the request path
// (startup banners, self-bench drivers) use this instead of re-opening
// the snapshot file.
func (s *Server) Acquire() (*graph.Graph, uint64, func()) {
	gen := s.acquire()
	if gen == nil {
		return nil, 0, func() {}
	}
	var once sync.Once
	return gen.snap.Graph(), gen.num, func() { once.Do(gen.unref) }
}

// Generation returns the current snapshot generation number.
func (s *Server) Generation() uint64 {
	if g := s.cur.Load(); g != nil {
		return g.num
	}
	return 0
}

// watchLoop polls the snapshot file's signature (mtime, size, identity)
// and hot-reloads on any change — including a generation published
// while a previous reload was still draining, whose mtime may collide
// with the previous one within the filesystem timestamp granularity.
func (s *Server) watchLoop() {
	defer close(s.watchDone)
	t := time.NewTicker(s.opts.WatchInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopWatch:
			return
		case <-t.C:
			g := s.cur.Load()
			sig := statSig(s.path)
			if sig.fi == nil || g == nil {
				continue
			}
			if !g.sig.same(sig) {
				s.Reload() // failure keeps the old generation; counted
			}
		}
	}
}

// Close stops the watcher, cancels and drains any running scenario
// jobs (each releases its pinned generation), and releases the current
// generation. It does not touch any http.Server mounted on Handler —
// drain that first (http.Server.Shutdown), then Close.
func (s *Server) Close() error {
	if s.stopWatch != nil {
		close(s.stopWatch)
		<-s.watchDone
		s.stopWatch = nil
	}
	if s.scenCancel != nil {
		s.scenCancel()
		s.scenWG.Wait()
	}
	if g := s.cur.Swap(nil); g != nil {
		g.unref()
	}
	return nil
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler { return s.mux }

// HardenedHandler returns Handler wrapped with the process-level
// robustness middleware from WithBackpressure, using the server's
// request timeout and a 1-second Retry-After hint. The daemon
// (cmd/netserve) mounts this one.
func (s *Server) HardenedHandler() http.Handler {
	return WithBackpressure(s.mux, s.opts.RequestTimeout, time.Second)
}

// WithBackpressure wraps h with two robustness layers:
//
//   - an http.TimeoutHandler backstop slightly above timeout, so a
//     handler that wedges without honoring its context still produces
//     a 503 instead of holding the connection forever (the context
//     deadline inside Server.serve remains the first line of defense
//     and wins on well-behaved paths);
//   - a Retry-After header injected into every 503 response — both
//     the semaphore's "server saturated" rejection and the timeout
//     backstop — so clients back off instead of hammering a saturated
//     service.
//
// The Retry-After layer sits outside the timeout layer so it sees the
// backstop's 503s too. Zero timeout disables the backstop; zero
// retryAfter disables the header.
func WithBackpressure(h http.Handler, timeout, retryAfter time.Duration) http.Handler {
	if timeout > 0 {
		h = http.TimeoutHandler(h, timeout+250*time.Millisecond, `{"error":"request timed out"}`)
	}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		val := strconv.FormatInt(secs, 10)
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			inner.ServeHTTP(&retryAfterWriter{ResponseWriter: w, seconds: val}, r)
		})
	}
	return h
}

// retryAfterWriter injects a Retry-After header the moment a 503
// status is committed — headers cannot be added after WriteHeader, so
// this is the only point where the hint can ride along.
type retryAfterWriter struct {
	http.ResponseWriter
	seconds string
}

func (w *retryAfterWriter) WriteHeader(code int) {
	if code == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", w.seconds)
	}
	w.ResponseWriter.WriteHeader(code)
}

// ---------------------------------------------------------------------------
// Routing

func (s *Server) buildMux() {
	s.mux = http.NewServeMux()
	s.routeHot("GET /v1/stats", "stats", encodeStats)
	s.routeHot("GET /v1/degree/{id}", "degree", encodeDegree)
	s.routeHot("GET /v1/neighbors/{id}", "neighbors", encodeNeighbors)
	s.route("GET /v1/ego/{id}", "ego", true, s.handleEgo)
	s.route("GET /v1/path", "path", true, s.handlePath)
	s.route("POST /v1/scenario", "scenario_submit", false, s.handleScenarioSubmit)
	s.route("GET /v1/scenario/{id}", "scenario_get", false, s.handleScenarioGet)
	s.routeHot("GET /v1/degree-dist", "degree_dist", encodeDegreeDist)
	s.routeHot("GET /v1/clustering/{id}", "clustering", encodeClustering)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, nil, notFound("no such endpoint %q", r.URL.Path))
	})
}

func (s *Server) route(pattern, name string, cacheable bool,
	fn func(g *graph.Graph, gen *generation, r *http.Request) (any, error)) {
	s.mount(pattern, &endpoint{name: name, cacheable: cacheable, fn: fn})
}

func (s *Server) routeHot(pattern, name string, enc encodeFunc) {
	s.mount(pattern, &endpoint{name: name, encode: enc})
}

func (s *Server) mount(pattern string, ep *endpoint) {
	reg := s.opts.Registry
	ep.requests = reg.Counter("serve_" + ep.name + "_requests_total")
	ep.errors = reg.Counter("serve_" + ep.name + "_errors_total")
	ep.latency = reg.Histogram("serve_" + ep.name + "_seconds")
	ep.inflight = reg.Gauge("serve_" + ep.name + "_inflight")
	ep.cacheHits = reg.Counter("serve_" + ep.name + "_cache_hits_total")
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.serve(ep, w, r)
	})
}

// serve is the request spine shared by every endpoint: timeout,
// semaphore, generation reference, cache, singleflight, telemetry.
func (s *Server) serve(ep *endpoint, w http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	ep.requests.Inc()
	ep.inflight.Add(1)
	defer ep.inflight.Add(-1)
	sw := s.opts.Registry.Clock()
	defer func() { sw.Observe(ep.latency) }()

	// Opt-in access log: wrap the writer to capture the committed
	// status. The nil-AccessLog hot path skips all of this.
	if s.opts.AccessLog != nil {
		lw := &statusWriter{ResponseWriter: w}
		w = lw
		start := time.Now()
		defer func() { s.logAccess(ep, r, lw.status(), time.Since(start)) }()
	}

	// Bounded worker pool. The common case — a free slot — is a
	// non-blocking send, so hot requests pay no context allocation;
	// only a saturated server falls back to the deadline wait.
	select {
	case s.sem <- struct{}{}:
	default:
		ctx := r.Context()
		if s.opts.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
			defer cancel()
		}
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			s.mSaturated.Inc()
			s.writeError(w, ep, &apiError{code: http.StatusServiceUnavailable, msg: "server saturated"})
			return
		}
	}
	defer func() { <-s.sem }()

	gen := s.acquire()
	if gen == nil {
		s.writeError(w, ep, &apiError{code: http.StatusServiceUnavailable, msg: "shutting down"})
		return
	}
	defer gen.unref()
	g := gen.snap.Graph()

	// Hot path: render straight into a pooled buffer — no cache, no
	// singleflight, no json.Marshal. The work per request is O(1) off
	// the index sections (or a cheap fallback), so coalescing would
	// cost more than recomputing.
	if ep.encode != nil {
		bp := getBuf()
		b, err := ep.encode(gen, g, r, bp.b[:0])
		if err != nil {
			putBuf(bp, b)
			s.writeError(w, ep, err)
			return
		}
		b = append(b, '\n')
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(b)
		putBuf(bp, b)
		return
	}

	if !ep.cacheable || s.cache == nil {
		v, err := ep.fn(g, gen, r)
		if err != nil {
			s.writeError(w, ep, err)
			return
		}
		s.writeJSON(w, ep, v)
		return
	}

	key := cacheKey(ep.name, gen.num, r)
	if b, ok := s.cache.get(key); ok {
		s.mCacheHits.Inc()
		ep.cacheHits.Inc()
		writeJSONBytes(w, http.StatusOK, b)
		return
	}
	s.mCacheMisses.Inc()
	b, err, shared := s.flight.do(key, func() ([]byte, error) {
		v, ferr := ep.fn(g, gen, r)
		if ferr != nil {
			return nil, ferr
		}
		mb, merr := json.Marshal(v)
		if merr != nil {
			return nil, merr
		}
		s.cache.put(key, gen.num, mb)
		return mb, nil
	})
	if shared {
		s.mCoalesced.Inc()
	}
	if err != nil {
		s.writeError(w, ep, err)
		return
	}
	writeJSONBytes(w, http.StatusOK, b)
}

// statusWriter records the first committed status code so the access
// log can report it; an implicit 200 (Write before WriteHeader) reads
// back as http.StatusOK.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// logAccess emits one structured JSON line per completed request. The
// line is rendered through the same pinned appenders as the response
// encoders and written under a mutex so concurrent requests never
// interleave bytes. Requests at or beyond SlowThreshold carry
// "slow":true — the grep handle for slow-query triage.
func (s *Server) logAccess(ep *endpoint, r *http.Request, status int, d time.Duration) {
	b := make([]byte, 0, 256)
	b = append(b, `{"ts":`...)
	b = appendString(b, time.Now().UTC().Format(time.RFC3339Nano))
	b = append(b, `,"method":`...)
	b = appendString(b, r.Method)
	b = append(b, `,"path":`...)
	b = appendString(b, r.URL.Path)
	if r.URL.RawQuery != "" {
		b = append(b, `,"query":`...)
		b = appendString(b, r.URL.RawQuery)
	}
	b = append(b, `,"endpoint":`...)
	b = appendString(b, ep.name)
	b = append(b, `,"status":`...)
	b = appendInt(b, int64(status))
	b = append(b, `,"dur_ms":`...)
	b = appendFloat(b, float64(d)/float64(time.Millisecond))
	if d >= s.opts.SlowThreshold {
		b = append(b, `,"slow":true`...)
	}
	b = append(b, '}', '\n')
	s.logMu.Lock()
	s.opts.AccessLog.Write(b)
	s.logMu.Unlock()
}

// cacheKey canonicalizes a request: endpoint, generation, path, and
// the sorted query encoding (url.Values.Encode sorts by key).
func cacheKey(name string, gen uint64, r *http.Request) string {
	return name + "|" + strconv.FormatUint(gen, 10) + "|" + r.URL.Path + "?" + r.URL.Query().Encode()
}

func (s *Server) writeJSON(w http.ResponseWriter, ep *endpoint, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		s.writeError(w, ep, err)
		return
	}
	writeJSONBytes(w, http.StatusOK, b)
}

var newline = []byte{'\n'}

func writeJSONBytes(w http.ResponseWriter, code int, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
	w.Write(newline)
}

// writeError emits {"error":...,"status":N} through the pooled
// appender — same key order json.Marshal gave the old map form, no
// per-error marshal allocations, and never an empty body: a nil or
// message-less error still produces a generic 500 payload.
func (s *Server) writeError(w http.ResponseWriter, ep *endpoint, err error) {
	s.mErrors.Inc()
	if ep != nil {
		ep.errors.Inc()
	}
	code := http.StatusInternalServerError
	msg := ""
	if err != nil {
		msg = err.Error()
		var ae *apiError
		if errors.As(err, &ae) {
			code = ae.code
		}
	}
	if msg == "" {
		msg = "internal server error"
	}
	bp := getBuf()
	b := append(bp.b[:0], `{"error":`...)
	b = appendString(b, msg)
	b = append(b, `,"status":`...)
	b = appendInt(b, int64(code))
	b = append(b, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
	putBuf(bp, b)
}

// ---------------------------------------------------------------------------
// Request parsing

// vertexArg parses a vertex ID path/query argument against the graph:
// 400 for junk, 404 for IDs outside the vertex space.
func vertexArg(g *graph.Graph, raw, what string) (uint32, error) {
	if raw == "" {
		return 0, badRequest("missing %s", what)
	}
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, badRequest("bad %s %q: %v", what, raw, err)
	}
	if int(v) >= g.NumVertices() {
		return 0, notFound("%s %d outside vertex space [0,%d)", what, v, g.NumVertices())
	}
	return uint32(v), nil
}

// queryGet returns the first value of key in the request's raw query
// without materializing a url.Values map (which allocates on every
// request). Values containing percent- or plus-escapes fall back to
// the full parser; the hot endpoints take only small integers, so the
// fallback never triggers on well-formed traffic.
func queryGet(r *http.Request, key string) string {
	raw := r.URL.RawQuery
	for len(raw) > 0 {
		var kv string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			kv, raw = raw[:i], raw[i+1:]
		} else {
			kv, raw = raw, ""
		}
		k, v := kv, ""
		if j := strings.IndexByte(kv, '='); j >= 0 {
			k, v = kv[:j], kv[j+1:]
		}
		if k != key {
			continue
		}
		if strings.IndexByte(v, '%') >= 0 || strings.IndexByte(v, '+') >= 0 {
			return r.URL.Query().Get(key) // escaped: defer to net/url
		}
		return v
	}
	return ""
}

// intArg parses an optional bounded integer query parameter.
func intArg(r *http.Request, name string, def, lo, hi int) (int, error) {
	raw := queryGet(r, name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("bad %s %q: %v", name, raw, err)
	}
	if v < lo || v > hi {
		return 0, badRequest("%s %d outside [%d,%d]", name, v, lo, hi)
	}
	return v, nil
}

// ---------------------------------------------------------------------------
// Endpoints

// StatsResponse is /v1/stats. The served bytes are rendered once per
// reload (generation.precompute) byte-identically to json.Marshal of
// this struct; the type remains the schema of record for clients.
type StatsResponse struct {
	Vertices          int      `json:"vertices"`
	VerticesWithEdges int      `json:"vertices_with_edges"`
	Edges             int      `json:"edges"`
	TotalWeight       uint64   `json:"total_weight"`
	MaxDegree         int      `json:"max_degree"`
	Generation        uint64   `json:"generation"`
	SnapshotPath      string   `json:"snapshot_path"`
	SnapshotBytes     int64    `json:"snapshot_bytes"`
	Mapped            bool     `json:"mapped"`
	LoadedAt          string   `json:"loaded_at"`
	SnapshotVersion   int      `json:"snapshot_version"`
	IndexSections     []string `json:"index_sections"`
	PublishedAt       string   `json:"published_at,omitempty"`
	LastEventHour     uint32   `json:"last_event_hour,omitempty"`
	// AgeS is the generation's age at response time: seconds since the
	// publisher's sidecar publish instant when one exists, else since
	// this process loaded the snapshot. The one dynamic stats field —
	// appended per request onto the precomputed prefix.
	AgeS float64 `json:"age_s,omitempty"`
}

func encodeStats(gen *generation, _ *graph.Graph, _ *http.Request, b []byte) ([]byte, error) {
	b = append(b, gen.statsJSON...)
	base := gen.publishedAt
	if base.IsZero() {
		base = gen.loadedAt
	}
	if age := time.Since(base).Seconds(); age != 0 {
		b = append(b, `,"age_s":`...)
		b = appendFloat(b, age)
	}
	return append(b, '}'), nil
}

// DegreeResponse is /v1/degree/{id}.
type DegreeResponse struct {
	ID       uint32 `json:"id"`
	Degree   int    `json:"degree"`
	Strength uint64 `json:"strength"`
}

func encodeDegree(gen *generation, g *graph.Graph, r *http.Request, b []byte) ([]byte, error) {
	v, err := vertexArg(g, r.PathValue("id"), "vertex")
	if err != nil {
		return b, err
	}
	var deg int
	var str uint64
	if ix := gen.idx; ix != nil && ix.Degrees != nil && ix.Strengths != nil {
		deg, str = int(ix.Degrees[v]), ix.Strengths[v] // O(1) section reads
	} else {
		deg, str = g.Degree(v), g.Strength(v)
	}
	b = append(b, `{"id":`...)
	b = appendUint(b, uint64(v))
	b = append(b, `,"degree":`...)
	b = appendInt(b, int64(deg))
	b = append(b, `,"strength":`...)
	b = appendUint(b, str)
	return append(b, '}'), nil
}

// Neighbor is one weighted adjacency in /v1/neighbors/{id}.
type Neighbor struct {
	ID     uint32 `json:"id"`
	Weight uint32 `json:"weight"`
}

// NeighborsResponse is /v1/neighbors/{id}: the strongest contacts
// first (weight descending, ID ascending on ties), paginated.
type NeighborsResponse struct {
	ID        uint32     `json:"id"`
	Degree    int        `json:"degree"`
	Offset    int        `json:"offset"`
	Returned  int        `json:"returned"`
	Neighbors []Neighbor `json:"neighbors"`
}

func encodeNeighbors(gen *generation, g *graph.Graph, r *http.Request, b []byte) ([]byte, error) {
	v, err := vertexArg(g, r.PathValue("id"), "vertex")
	if err != nil {
		return b, err
	}
	offset, err := intArg(r, "offset", 0, 0, 1<<31-1)
	if err != nil {
		return b, err
	}
	limit, err := intArg(r, "limit", 50, 1, 1000)
	if err != nil {
		return b, err
	}
	deg := g.Degree(v)

	// Fast path: page one served straight off the baked top-k rows —
	// already sorted weight-descending, ID-ascending. Usable when the
	// row can fill the page: either the page fits inside the row, or
	// the row holds the vertex's entire adjacency (degree ≤ k).
	if ix := gen.idx; offset == 0 && ix != nil && ix.TopKOff != nil {
		row := ix.TopKRow(v) // interleaved (id, weight) pairs
		cnt := len(row) / 2
		if limit <= cnt || cnt == deg {
			n := cnt
			if limit < n {
				n = limit
			}
			return appendNeighborsPage(b, v, deg, 0, row[:2*n]), nil
		}
	}

	// Fallback: deep pages, or no top-k section. Allocates (sort of the
	// full adjacency) — acceptable off the hot path.
	ids, wts := g.Neighbors(v)
	all := make([]Neighbor, len(ids))
	for k := range ids {
		all[k] = Neighbor{ID: ids[k], Weight: wts[k]}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Weight != all[j].Weight {
			return all[i].Weight > all[j].Weight
		}
		return all[i].ID < all[j].ID
	})
	if offset > len(all) {
		offset = len(all)
	}
	page := all[offset:]
	if len(page) > limit {
		page = page[:limit]
	}
	pairs := make([]uint32, 0, 2*len(page))
	for _, nb := range page {
		pairs = append(pairs, nb.ID, nb.Weight)
	}
	return appendNeighborsPage(b, v, len(all), offset, pairs), nil
}

// appendNeighborsPage renders a NeighborsResponse byte-identically to
// json.Marshal from interleaved (id, weight) pairs.
func appendNeighborsPage(b []byte, v uint32, degree, offset int, pairs []uint32) []byte {
	b = append(b, `{"id":`...)
	b = appendUint(b, uint64(v))
	b = append(b, `,"degree":`...)
	b = appendInt(b, int64(degree))
	b = append(b, `,"offset":`...)
	b = appendInt(b, int64(offset))
	b = append(b, `,"returned":`...)
	b = appendInt(b, int64(len(pairs)/2))
	b = append(b, `,"neighbors":[`...)
	for k := 0; k+1 < len(pairs); k += 2 {
		if k > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"id":`...)
		b = appendUint(b, uint64(pairs[k]))
		b = append(b, `,"weight":`...)
		b = appendUint(b, uint64(pairs[k+1]))
		b = append(b, '}')
	}
	return append(b, ']', '}')
}

// EgoResponse is /v1/ego/{id}: the radius-k ego network (the paper's
// V = v ∪ V1 ∪ V2 construction) with its induced edge count.
type EgoResponse struct {
	ID        uint32   `json:"id"`
	Radius    int      `json:"radius"`
	Size      int      `json:"size"`
	Edges     int      `json:"edges"`
	Members   []uint32 `json:"members"`
	Truncated bool     `json:"truncated"`
}

func (s *Server) handleEgo(g *graph.Graph, _ *generation, r *http.Request) (any, error) {
	v, err := vertexArg(g, r.PathValue("id"), "vertex")
	if err != nil {
		return nil, err
	}
	radius, err := intArg(r, "radius", 2, 0, 6)
	if err != nil {
		return nil, err
	}
	members := g.Ego(v, radius)
	inSet := make(map[uint32]struct{}, len(members))
	for _, m := range members {
		inSet[m] = struct{}{}
	}
	edges := 0
	for _, m := range members {
		row, _ := g.Neighbors(m)
		for _, u := range row {
			if u > m {
				if _, ok := inSet[u]; ok {
					edges++
				}
			}
		}
	}
	resp := EgoResponse{ID: v, Radius: radius, Size: len(members), Edges: edges, Members: members}
	if len(resp.Members) > s.opts.MaxEgoMembers {
		resp.Members = resp.Members[:s.opts.MaxEgoMembers]
		resp.Truncated = true
	}
	return resp, nil
}

// PathResponse is /v1/path?from=&to=[&weighted=1]. Unweighted searches
// minimize hops (BFS); weighted searches run Dijkstra with edge cost
// 1/weight, preferring strong collocation ties.
type PathResponse struct {
	From     uint32   `json:"from"`
	To       uint32   `json:"to"`
	Weighted bool     `json:"weighted"`
	Found    bool     `json:"found"`
	Hops     int      `json:"hops"`
	Cost     float64  `json:"cost"`
	Path     []uint32 `json:"path"`
}

func (s *Server) handlePath(g *graph.Graph, gen *generation, r *http.Request) (any, error) {
	from, err := vertexArg(g, queryGet(r, "from"), "from")
	if err != nil {
		return nil, err
	}
	to, err := vertexArg(g, queryGet(r, "to"), "to")
	if err != nil {
		return nil, err
	}
	weighted := queryGet(r, "weighted") == "1"
	resp := PathResponse{From: from, To: to, Weighted: weighted}
	if weighted {
		path, cost, ok := g.ShortestPathWeighted(from, to)
		if ok {
			resp.Found, resp.Path, resp.Cost, resp.Hops = true, path, cost, len(path)-1
		}
	} else {
		// Pooled epoch-stamped scratch: repeated BFS queries reuse the
		// parent/visited arrays instead of reallocating O(V) each time.
		ps := gen.pathPool.Get().(*graph.PathScratch)
		path, ok := g.ShortestPathBFSScratch(from, to, ps)
		gen.pathPool.Put(ps)
		if ok {
			resp.Found, resp.Path, resp.Hops = true, path, len(path)-1
			resp.Cost = float64(len(path) - 1)
		}
	}
	return resp, nil
}

// DegreeDistResponse is /v1/degree-dist: the dense degree histogram
// (slot k = number of vertices with degree k), deterministic across
// runs.
type DegreeDistResponse struct {
	Vertices  int   `json:"vertices"`
	MaxDegree int   `json:"max_degree"`
	Histogram []int `json:"histogram"`
}

func encodeDegreeDist(gen *generation, _ *graph.Graph, _ *http.Request, b []byte) ([]byte, error) {
	return append(b, gen.histJSON...), nil
}

// ClusteringResponse is /v1/clustering/{id}.
type ClusteringResponse struct {
	ID         uint32  `json:"id"`
	Degree     int     `json:"degree"`
	Clustering float64 `json:"clustering"`
}

func encodeClustering(gen *generation, g *graph.Graph, r *http.Request, b []byte) ([]byte, error) {
	v, err := vertexArg(g, r.PathValue("id"), "vertex")
	if err != nil {
		return b, err
	}
	var c float64
	if ix := gen.idx; ix != nil && ix.Clustering != nil {
		c = ix.Clustering[v] // O(1) section read
	} else {
		markp := gen.markPool.Get().(*[]bool)
		c = g.LocalClusteringScratch(v, *markp)
		gen.markPool.Put(markp)
	}
	b = append(b, `{"id":`...)
	b = appendUint(b, uint64(v))
	b = append(b, `,"degree":`...)
	b = appendInt(b, int64(g.Degree(v)))
	b = append(b, `,"clustering":`...)
	b = appendFloat(b, c)
	return append(b, '}'), nil
}
