package netserve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// ---------------------------------------------------------------------------
// Size-budgeted LRU result cache

// lruCache is a byte-budgeted LRU of marshaled JSON responses. Keys
// embed the snapshot generation, so a hot reload implicitly invalidates
// every cached result; purgeBelow additionally drops stale generations
// eagerly so they stop occupying budget.
type lruCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element

	evictions *telemetry.Counter
	bytes     *telemetry.Gauge
}

type cacheEntry struct {
	key string
	gen uint64
	val []byte
}

func newLRUCache(budget int64, evictions *telemetry.Counter, bytes *telemetry.Gauge) *lruCache {
	if budget <= 0 {
		return nil
	}
	return &lruCache{
		budget:    budget,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		evictions: evictions,
		bytes:     bytes,
	}
}

// get returns the cached response and marks it most recently used.
func (c *lruCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put inserts a response, evicting least-recently-used entries until
// the byte budget holds. Values larger than the whole budget are not
// cached.
func (c *lruCache) put(key string, gen uint64, val []byte) {
	if c == nil || int64(len(val)) > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.used += int64(len(val)) - int64(len(ent.val))
		ent.val = val
		ent.gen = gen
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, gen: gen, val: val})
		c.items[key] = el
		c.used += int64(len(val))
	}
	for c.used > c.budget {
		c.evictLocked(c.ll.Back())
		c.evictions.Inc()
	}
	c.bytes.Set(c.used)
}

// purgeBelow drops every entry from a generation older than gen —
// called on hot reload so stale results free their budget immediately.
func (c *lruCache) purgeBelow(gen uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*cacheEntry).gen < gen {
			c.evictLocked(el)
		}
	}
	c.bytes.Set(c.used)
}

func (c *lruCache) evictLocked(el *list.Element) {
	if el == nil {
		return
	}
	ent := c.ll.Remove(el).(*cacheEntry)
	delete(c.items, ent.key)
	c.used -= int64(len(ent.val))
}

// len returns the number of cached entries (tests).
func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// ---------------------------------------------------------------------------
// Singleflight

// flightGroup coalesces concurrent identical expensive queries: the
// first caller computes, the rest block on the same call and share the
// result. Keys embed the snapshot generation, so callers on different
// generations never share.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
	dups atomic.Int64 // callers that piggybacked on this computation
}

// waiters returns how many callers are currently coalesced onto key
// (tests use this to sequence concurrency deterministically).
func (g *flightGroup) waiters(key string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.dups.Load()
	}
	return 0
}

// do runs fn once per concurrent key, returning the shared result and
// whether this caller piggybacked on another's computation.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.dups.Add(1)
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
