package netserve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/gstore"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// equivGraph is a ~500-vertex graph with hubs beyond the top-k budget,
// triangles, chains, and isolated vertices — enough structure that
// every endpoint's fast path and fallback both get exercised.
func equivGraph() *graph.Graph {
	rng := rand.New(rand.NewSource(42))
	acc := sparse.NewAccum()
	const n = 500
	for v := uint32(1); v < 80; v++ { // hub 0: degree 79 > DefaultTopK
		acc.Add(0, v, uint32(rng.Intn(900)+1))
	}
	for v := uint32(1); v < n-20; v++ {
		acc.Add(v, v+1, uint32(rng.Intn(60)+1))
	}
	for k := 0; k < 800; k++ {
		i, j := uint32(rng.Intn(n-20)), uint32(rng.Intn(n-20))
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		acc.Add(i, j, uint32(rng.Intn(100)+1))
	}
	return graph.FromTri(acc.Tri(), n)
}

// fetchBody returns status and raw body (trailing newline included).
func fetchBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestV1V2EndpointEquivalence runs the same query battery against a
// server loaded from a v1 snapshot (live fallback) and one loaded from
// the indexed v2 write of the same graph: every response must match
// byte for byte — same JSON, same status codes — except the volatile
// stats fields that necessarily differ between the two files.
func TestV1V2EndpointEquivalence(t *testing.T) {
	g := equivGraph()
	dir := t.TempDir()
	v1Path := filepath.Join(dir, "v1.gsnap")
	v2Path := filepath.Join(dir, "v2.gsnap")
	if err := gstore.WriteFile(v1Path, g); err != nil {
		t.Fatal(err)
	}
	if err := gstore.WriteFileIndexed(v2Path, g, gstore.IndexOptions{}); err != nil {
		t.Fatal(err)
	}

	servers := make([]*httptest.Server, 2)
	for i, p := range []string{v1Path, v2Path} {
		s, err := New(p, Options{Registry: telemetry.New()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		if i == 1 && s.cur.Load().idx == nil {
			t.Fatal("v2 server loaded without an index")
		}
		if i == 0 && s.cur.Load().idx != nil {
			t.Fatal("v1 server unexpectedly has an index")
		}
		servers[i] = httptest.NewServer(s.Handler())
		t.Cleanup(servers[i].Close)
	}

	var queries []string
	for _, v := range []int{0, 1, 5, 77, 200, 481, 499} { // hub, mid, isolated
		queries = append(queries,
			fmt.Sprintf("/v1/degree/%d", v),
			fmt.Sprintf("/v1/clustering/%d", v),
			fmt.Sprintf("/v1/neighbors/%d", v),
			fmt.Sprintf("/v1/neighbors/%d?limit=32", v),
			fmt.Sprintf("/v1/neighbors/%d?limit=5", v),
			fmt.Sprintf("/v1/neighbors/%d?limit=1000", v), // beyond top-k: fallback
			fmt.Sprintf("/v1/neighbors/%d?offset=3&limit=2", v),
			fmt.Sprintf("/v1/neighbors/%d?offset=100000", v),
			fmt.Sprintf("/v1/ego/%d?radius=1", v),
			fmt.Sprintf("/v1/ego/%d?radius=2", v),
		)
	}
	queries = append(queries,
		"/v1/degree-dist",
		"/v1/path?from=0&to=250",
		"/v1/path?from=0&to=250&weighted=1",
		"/v1/path?from=481&to=0", // isolated: not found
		"/v1/path?from=3&to=3",
		// Error paths must match too.
		"/v1/degree/999999",
		"/v1/degree/bogus",
		"/v1/neighbors/2?limit=0",
		"/v1/neighbors/2?limit=junk",
		"/v1/clustering/-1",
		"/v1/path?from=0",
		"/v1/nope",
	)

	for _, q := range queries {
		c1, b1 := fetchBody(t, servers[0].URL+q)
		c2, b2 := fetchBody(t, servers[1].URL+q)
		if c1 != c2 {
			t.Errorf("%s: status %d (v1) vs %d (v2)", q, c1, c2)
			continue
		}
		if b1 != b2 {
			t.Errorf("%s: bodies differ\n  v1: %s  v2: %s", q, b1, b2)
		}
	}

	// Stats: compare everything except the fields tied to the file
	// identity (path, size), the load instant, and the snapshot format
	// itself (v1 and v2 legitimately differ in version, index sections,
	// and request-time age).
	_, s1 := fetchBody(t, servers[0].URL+"/v1/stats")
	_, s2 := fetchBody(t, servers[1].URL+"/v1/stats")
	var m1, m2 map[string]any
	if err := json.Unmarshal([]byte(s1), &m1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(s2), &m2); err != nil {
		t.Fatal(err)
	}
	for _, volatile := range []string{
		"snapshot_path", "snapshot_bytes", "loaded_at",
		"snapshot_version", "index_sections", "published_at", "last_event_hour", "age_s",
	} {
		delete(m1, volatile)
		delete(m2, volatile)
	}
	r1, _ := json.Marshal(m1)
	r2, _ := json.Marshal(m2)
	if string(r1) != string(r2) {
		t.Errorf("stats differ:\n  v1: %s\n  v2: %s", r1, r2)
	}
}

// TestHotResponsesMatchEncodingJSON re-renders every hot endpoint's
// response through encoding/json from the exported response structs and
// checks the served bytes are identical — the pooled encoder is not
// allowed to drift from the documented schema.
func TestHotResponsesMatchEncodingJSON(t *testing.T) {
	g := equivGraph()
	path := filepath.Join(t.TempDir(), "v2.gsnap")
	if err := gstore.WriteFileIndexed(path, g, gstore.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	s, err := New(path, Options{Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for _, v := range []uint32{0, 5, 77, 481} {
		_, body := fetchBody(t, fmt.Sprintf("%s/v1/degree/%d", ts.URL, v))
		want, _ := json.Marshal(DegreeResponse{ID: v, Degree: g.Degree(v), Strength: g.Strength(v)})
		if body != string(want)+"\n" {
			t.Errorf("degree/%d: got %q want %q", v, body, want)
		}

		_, body = fetchBody(t, fmt.Sprintf("%s/v1/clustering/%d", ts.URL, v))
		want, _ = json.Marshal(ClusteringResponse{ID: v, Degree: g.Degree(v), Clustering: g.LocalClustering(v)})
		if body != string(want)+"\n" {
			t.Errorf("clustering/%d: got %q want %q", v, body, want)
		}
	}

	_, body := fetchBody(t, ts.URL+"/v1/degree-dist")
	hist := g.DegreeHistogram()
	want, _ := json.Marshal(DegreeDistResponse{
		Vertices: g.NumVertices(), MaxDegree: len(hist) - 1, Histogram: hist,
	})
	if body != string(want)+"\n" {
		t.Errorf("degree-dist: got %q want %q", body, want)
	}

	// Stats: the pre-rendered bytes must parse back into the struct
	// with every field populated the way handleStats used to.
	_, body = fetchBody(t, ts.URL+"/v1/stats")
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats: %v", err)
	}
	roundTrip, _ := json.Marshal(st)
	if body != string(roundTrip)+"\n" {
		t.Errorf("stats: served %q, round-trip %q", body, roundTrip)
	}
	if st.Vertices != g.NumVertices() || st.Edges != g.NumEdges() ||
		st.MaxDegree != g.MaxDegree() || st.SnapshotPath != path {
		t.Errorf("stats fields wrong: %+v", st)
	}
}

// TestAppendStringMatchesJSON drives the encoder's string escaping
// against encoding/json across the tricky cases: HTML escaping,
// control bytes, invalid UTF-8, U+2028/29.
func TestAppendStringMatchesJSON(t *testing.T) {
	cases := []string{
		"", "plain", "/tmp/net.gsnap", `quote " backslash \`,
		"tab\tnewline\ncr\r", "bell\x07null\x00", "<script>&amp;</script>",
		"néé 世界", "line sep ", "bad\xff\xfeutf8",
		strings.Repeat("x", 5000) + "<",
	}
	for _, c := range cases {
		want, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		got := appendString(nil, c)
		if string(got) != string(want) {
			t.Errorf("appendString(%q) = %q, want %q", c, got, want)
		}
	}
}

// TestAppendFloatMatchesJSON pins the float renderer to encoding/json
// across magnitude regimes, including the e-notation cutoffs.
func TestAppendFloatMatchesJSON(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, 1.0 / 3.0, 2.0 / 3.0, 0.1, 3.14159265358979,
		1e-5, 1e-6, 9.999e-7, 1e-7, 1e-21, 5e-324, math.MaxFloat64,
		1e20, 1e21, 1.5e21, -2.5e-8, 0.9999999999999999, 123456789.123456789,
	}
	// Every representable clustering coefficient shape: 2t/(d(d-1)).
	for d := 2; d < 40; d++ {
		for tri := 0; tri <= d*(d-1)/2; tri += 7 {
			cases = append(cases, float64(2*tri)/float64(d*(d-1)))
		}
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		got := appendFloat(nil, f)
		if string(got) != string(want) {
			t.Errorf("appendFloat(%v) = %q, want %q", f, got, want)
		}
	}
}

// TestWriteErrorNeverEmpty: every error shape — typed, wrapped, nil,
// empty-message — must yield a well-formed non-empty JSON body with
// matching status, in the exact key order json.Marshal used to emit.
func TestWriteErrorNeverEmpty(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	cases := []struct {
		err      error
		wantCode int
		wantBody string
	}{
		{badRequest("bad input %d", 7), 400, `{"error":"bad input 7","status":400}`},
		{notFound("nope"), 404, `{"error":"nope","status":404}`},
		{fmt.Errorf("wrapped: %w", badRequest("inner")), 400, `{"error":"wrapped: inner","status":400}`},
		{fmt.Errorf("plain failure"), 500, `{"error":"plain failure","status":500}`},
		{fmt.Errorf(`quoted "html" <&>`), 500, `{"error":"quoted \"html\" \u003c\u0026\u003e","status":500}`},
		{nil, 500, `{"error":"internal server error","status":500}`},
		{fmt.Errorf(""), 500, `{"error":"internal server error","status":500}`},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		s.writeError(rec, nil, c.err)
		if rec.Code != c.wantCode {
			t.Errorf("writeError(%v): code %d, want %d", c.err, rec.Code, c.wantCode)
		}
		if got := rec.Body.String(); got != c.wantBody+"\n" {
			t.Errorf("writeError(%v): body %q, want %q", c.err, got, c.wantBody+"\n")
		}
		// The body must also be parseable JSON with both keys.
		var m map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Errorf("writeError(%v): invalid JSON %q", c.err, rec.Body.String())
		}
	}
}
