package faultinject

// Process-level injectors: the chaos tools for the supervised
// multi-process deployment. Where the wrappers in faultinject.go fail
// I/O *inside* a process, these kill whole rank processes and degrade
// the TCP links between them — the failure modes a real cluster run
// actually produces (OOM-killer, dead switch port, flaky NIC).

import (
	"encoding/binary"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------------
// Process kills

// Kill9 delivers an uncatchable kill to the process with the given pid
// (SIGKILL on unix). The victim gets no chance to flush, close sockets,
// or run deferred cleanup — exactly the crash the supervision layer must
// recover from.
func Kill9(pid int) error {
	p, err := os.FindProcess(pid)
	if err != nil {
		return err
	}
	if err := p.Kill(); err != nil {
		return err
	}
	mInjected.Inc()
	return nil
}

// KillAfter arms a timer that Kill9s pid after delay. The returned
// cancel stops the timer if it has not fired (it does not un-kill).
func KillAfter(pid int, delay time.Duration) (cancel func()) {
	t := time.AfterFunc(delay, func() { Kill9(pid) })
	return func() { t.Stop() }
}

// ---------------------------------------------------------------------------
// Chaos proxy

// LinkFaults schedules faults for one direction of a proxied TCP link.
// Frame counts are 1-based and refer to mpinet frames (the 4-byte
// little-endian length prefix plus body); the join handshake is passed
// through intact and not counted. Zero values disable each fault.
type LinkFaults struct {
	// Delay is added before forwarding every frame (slow link).
	Delay time.Duration
	// CutAfterFrames closes the link (both directions) once this many
	// frames have been forwarded this direction — a connection reset the
	// peer observes promptly.
	CutAfterFrames int
	// BlackholeAfterFrames silently stops forwarding after this many
	// frames without closing anything — a hung link only heartbeat
	// timeouts can detect.
	BlackholeAfterFrames int
	// CorruptFrame flips bits in the opcode byte of the Nth frame,
	// modelling on-the-wire corruption. mpinet rejects the bad opcode
	// and treats the link as dead.
	CorruptFrame int
}

// Proxy is a frame-aware TCP man-in-the-middle for chaos-testing
// mpinet links: clients join the cluster through proxy.Addr() and the
// proxy forwards to the real coordinator, applying the configured
// per-direction fault schedule to every proxied connection.
//
// It understands just enough of the mpinet wire protocol to pass the
// variable-length join handshake through untouched and then operate on
// whole frames, so a fault lands on an exact protocol unit (e.g.
// "corrupt the 3rd heartbeat") rather than an arbitrary byte offset.
type Proxy struct {
	ln       net.Listener
	target   string
	toServer LinkFaults // client → coordinator direction
	toClient LinkFaults // coordinator → client direction

	mu     sync.Mutex
	conns  []net.Conn
	closed atomic.Bool

	// Fired counts per direction, across all proxied connections.
	cuts, blackholes, corruptions atomic.Int64
}

// NewProxy listens on listenAddr (e.g. "127.0.0.1:0") and forwards each
// accepted connection to target with the given fault schedules.
func NewProxy(listenAddr, target string, toServer, toClient LinkFaults) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, toServer: toServer, toClient: toClient}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — the address chaos'd clients
// should Join.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Faulted reports whether any scheduled fault has fired yet.
func (p *Proxy) Faulted() bool {
	return p.cuts.Load()+p.blackholes.Load()+p.corruptions.Load() > 0
}

// Close stops the proxy and severs every proxied connection.
func (p *Proxy) Close() error {
	p.closed.Store(true)
	err := p.ln.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
	return err
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns = append(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		p.track(client)
		p.track(server)
		closeBoth := func() {
			client.Close()
			server.Close()
		}
		go p.pipe(client, server, p.toServer, true, closeBoth)
		go p.pipe(server, client, p.toClient, false, closeBoth)
	}
}

// mpinet handshake geometry (mirrored here so the proxy can skip it;
// the transport owns the format).
const (
	proxyHelloSize    = 16 // magic | claim i32 | token u64
	proxyReplyHdrSize = 20 // magic | rank u32 | size u32 | seq u32 | ndead u32
)

// passHandshake forwards the direction's handshake bytes verbatim:
// the fixed-size client hello, or the reply header plus its
// ndead-dependent dead-rank list.
func passHandshake(dst io.Writer, src io.Reader, clientToServer bool) error {
	if clientToServer {
		var hello [proxyHelloSize]byte
		if _, err := io.ReadFull(src, hello[:]); err != nil {
			return err
		}
		_, err := dst.Write(hello[:])
		return err
	}
	var hdr [proxyReplyHdrSize]byte
	if _, err := io.ReadFull(src, hdr[:]); err != nil {
		return err
	}
	if _, err := dst.Write(hdr[:]); err != nil {
		return err
	}
	ndead := binary.LittleEndian.Uint32(hdr[16:])
	if ndead > 0 && ndead < 1<<16 {
		rest := make([]byte, 4*ndead)
		if _, err := io.ReadFull(src, rest); err != nil {
			return err
		}
		if _, err := dst.Write(rest); err != nil {
			return err
		}
	}
	return nil
}

// pipe forwards src→dst frame by frame, applying faults.
func (p *Proxy) pipe(src, dst net.Conn, f LinkFaults, clientToServer bool, closeBoth func()) {
	defer closeBoth()
	if err := passHandshake(dst, src, clientToServer); err != nil {
		return
	}
	var lenBuf [4]byte
	frames := 0
	for {
		if _, err := io.ReadFull(src, lenBuf[:]); err != nil {
			return
		}
		total := binary.LittleEndian.Uint32(lenBuf[:])
		if total == 0 || total > 256<<20 {
			return
		}
		body := make([]byte, total)
		if _, err := io.ReadFull(src, body); err != nil {
			return
		}
		frames++
		if f.BlackholeAfterFrames > 0 && frames > f.BlackholeAfterFrames {
			if frames == f.BlackholeAfterFrames+1 {
				p.blackholes.Add(1)
				mInjected.Inc()
			}
			continue // swallow the frame; keep draining so the sender never blocks
		}
		if f.CorruptFrame > 0 && frames == f.CorruptFrame {
			body[0] ^= 0x80 // invalid opcode: the receiver declares the link dead
			p.corruptions.Add(1)
			mInjected.Inc()
		}
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if _, err := dst.Write(lenBuf[:]); err != nil {
			return
		}
		if _, err := dst.Write(body); err != nil {
			return
		}
		if f.CutAfterFrames > 0 && frames >= f.CutAfterFrames {
			p.cuts.Add(1)
			mInjected.Inc()
			return // defer closes both sides: connection reset
		}
	}
}
