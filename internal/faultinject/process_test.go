package faultinject_test

// The chaos proxy is tested against a real mpinet cluster (an external
// test package avoids the import cycle): each fault mode must surface
// as a typed rank failure at the survivors, never as a hang or a
// corrupted round.

import (
	"context"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mpi"
	"repro/internal/mpinet"
)

func fastOpts() mpinet.Options {
	return mpinet.Options{
		DialTimeout:       5 * time.Second,
		IOTimeout:         5 * time.Second,
		HeartbeatInterval: 30 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
	}
}

// proxiedPair starts a 3-rank cluster where rank `victim`'s link runs
// through a chaos proxy; returns host, direct bystander, proxied victim.
func proxiedCluster(t *testing.T, toServer, toClient faultinject.LinkFaults) (host, bystander, victim *mpinet.Node, proxy *faultinject.Proxy) {
	t.Helper()
	opts := fastOpts()
	h, err := mpinet.Host("127.0.0.1:0", 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := faultinject.NewProxy("127.0.0.1:0", h.Addr(), toServer, toClient)
	if err != nil {
		h.Close()
		t.Fatal(err)
	}
	v, err := mpinet.Join(p.Addr(), opts)
	if err != nil {
		h.Close()
		p.Close()
		t.Fatal(err)
	}
	b, err := mpinet.Join(h.Addr(), opts)
	if err != nil {
		h.Close()
		p.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close(); b.Close(); v.Close(); p.Close() })
	return h, b, v, p
}

func barrier3(host, bystander, victim *mpinet.Node, withVictim bool) (hostErr, byErr, vicErr error) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); hostErr = host.Barrier(context.Background()) }()
	go func() { defer wg.Done(); byErr = bystander.Barrier(context.Background()) }()
	if withVictim {
		wg.Add(1)
		go func() { defer wg.Done(); vicErr = victim.Barrier(context.Background()) }()
	}
	wg.Wait()
	return
}

func wantFailedRank(t *testing.T, err error, rank int) {
	t.Helper()
	rf, ok := mpi.AsRankFailed(err)
	if !ok {
		t.Fatalf("want RankFailedError, got %v", err)
	}
	if rf.Rank != rank {
		t.Fatalf("want failed rank %d, got %d (%v)", rank, rf.Rank, err)
	}
}

// TestProxyPassthrough: with no faults armed the proxied link is
// transparent — handshake and collectives work normally.
func TestProxyPassthrough(t *testing.T) {
	host, bystander, victim, proxy := proxiedCluster(t, faultinject.LinkFaults{}, faultinject.LinkFaults{})
	for i := 0; i < 3; i++ {
		hostErr, byErr, vicErr := barrier3(host, bystander, victim, true)
		if hostErr != nil || byErr != nil || vicErr != nil {
			t.Fatalf("round %d: %v / %v / %v", i, hostErr, byErr, vicErr)
		}
	}
	if proxy.Faulted() {
		t.Fatal("passthrough proxy reported a fault")
	}
}

// TestProxyCutAfterFrames: cutting the link after the victim's first
// collective frame resets the connection; survivors get the typed
// failure promptly.
func TestProxyCutAfterFrames(t *testing.T) {
	// The victim's heartbeats are frames too, so frame 1 in the
	// client→server direction fires on whichever the victim sends first;
	// if that was its barrier contribution, the cut surfaces one round
	// later, when the closed link is noticed.
	host, bystander, victim, proxy := proxiedCluster(t,
		faultinject.LinkFaults{CutAfterFrames: 1}, faultinject.LinkFaults{})
	go victim.Barrier(context.Background()) // errors once the cut fires
	var hostErr, byErr error
	for i := 0; i < 10; i++ {
		hostErr, byErr, _ = barrier3(host, bystander, nil, false)
		if hostErr != nil || byErr != nil {
			break
		}
	}
	wantFailedRank(t, hostErr, victim.Rank())
	wantFailedRank(t, byErr, victim.Rank())
	if !proxy.Faulted() {
		t.Fatal("cut never fired")
	}
	// Survivors keep working.
	hostErr, byErr, _ = barrier3(host, bystander, nil, false)
	if hostErr != nil || byErr != nil {
		t.Fatalf("survivors: %v / %v", hostErr, byErr)
	}
}

// TestProxyBlackholeDetectedByHeartbeat: a silently hung link (frames
// swallowed, nothing closed) is exactly what connection errors cannot
// catch — only the heartbeat timeout detects it, within its window.
func TestProxyBlackholeDetectedByHeartbeat(t *testing.T) {
	host, bystander, victim, proxy := proxiedCluster(t,
		faultinject.LinkFaults{BlackholeAfterFrames: 1}, faultinject.LinkFaults{})
	start := time.Now()
	go victim.Barrier(context.Background()) // hangs in the blackhole until declared dead
	var hostErr, byErr error
	for i := 0; i < 10; i++ {
		hostErr, byErr, _ = barrier3(host, bystander, nil, false)
		if hostErr != nil || byErr != nil {
			break
		}
	}
	elapsed := time.Since(start)
	wantFailedRank(t, hostErr, victim.Rank())
	wantFailedRank(t, byErr, victim.Rank())
	if !proxy.Faulted() {
		t.Fatal("blackhole never fired")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("detection took %v, want within a few heartbeat windows", elapsed)
	}
}

// TestProxyCorruptHeartbeat: a corrupted opcode on the wire must be
// rejected by the receiver and converted into a rank death, not enter a
// collective round.
func TestProxyCorruptHeartbeat(t *testing.T) {
	host, bystander, victim, proxy := proxiedCluster(t,
		faultinject.LinkFaults{CorruptFrame: 1}, faultinject.LinkFaults{})
	hostErr, byErr, _ := barrier3(host, bystander, victim, true)
	wantFailedRank(t, hostErr, victim.Rank())
	wantFailedRank(t, byErr, victim.Rank())
	if !proxy.Faulted() {
		t.Fatal("corruption never fired")
	}
	hostErr, byErr, _ = barrier3(host, bystander, nil, false)
	if hostErr != nil || byErr != nil {
		t.Fatalf("survivors: %v / %v", hostErr, byErr)
	}
}

// TestProxyDelaySlowsButDelivers: a delayed link is slow, not dead —
// collectives still complete as long as heartbeats keep the detector
// fed.
func TestProxyDelaySlowsButDelivers(t *testing.T) {
	host, bystander, victim, _ := proxiedCluster(t,
		faultinject.LinkFaults{Delay: 50 * time.Millisecond},
		faultinject.LinkFaults{Delay: 50 * time.Millisecond})
	hostErr, byErr, vicErr := barrier3(host, bystander, victim, true)
	if hostErr != nil || byErr != nil || vicErr != nil {
		t.Fatalf("delayed barrier: %v / %v / %v", hostErr, byErr, vicErr)
	}
}

// TestKill9 really kills a child process with an uncatchable signal.
func TestKill9(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperSleep", "-test.v")
	cmd.Env = append(os.Environ(), "FAULTINJECT_HELPER_SLEEP=1")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Kill9(cmd.Process.Pid); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Fatal("killed child exited cleanly")
	}
	if ee, ok := err.(*exec.ExitError); ok && ee.Exited() {
		t.Fatalf("child ran to completion: %v", err)
	}
}

// TestKillAfterCancel: a canceled kill timer must not fire.
func TestKillAfterCancel(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperSleep", "-test.v")
	cmd.Env = append(os.Environ(), "FAULTINJECT_HELPER_SLEEP=1")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	cancel := faultinject.KillAfter(cmd.Process.Pid, 10*time.Second)
	cancel()
	// The helper sleeps briefly and exits 0; if the timer fired early the
	// wait would report a signal death.
	if err := cmd.Wait(); err != nil {
		t.Fatalf("child should have exited cleanly: %v", err)
	}
}

// TestHelperSleep is not a real test: it is the body of the child
// process the kill tests spawn.
func TestHelperSleep(t *testing.T) {
	if os.Getenv("FAULTINJECT_HELPER_SLEEP") == "" {
		t.Skip("helper body; only runs in a spawned child")
	}
	time.Sleep(300 * time.Millisecond)
}
