// Package faultinject provides deterministic, seeded fault injectors for
// chaos-testing the I/O and transport layers of the pipeline.
//
// The injectors are plain wrappers around io.Writer / io.ReaderAt /
// net.Conn that fail on a precise, reproducible schedule (fail after N
// bytes, short writes, connection resets after N frames), plus a global
// crash-point registry that lets tests arm named points inside production
// code paths (e.g. "eventlog.flush") and observe how recovery behaves
// when the process "dies" exactly there.
//
// Everything in this package is deterministic: the same configuration
// produces the same failure at the same byte. The chaos tests in
// internal/h5, internal/eventlog, internal/mpinet and internal/core rely
// on this to assert that recovery yields exactly the reference result or
// a well-defined intact prefix.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Telemetry series for the fault layer. fault_points_armed tracks the
// crash-point registry live; fault_injected_total counts every fault
// that actually fired (crash points and flaky I/O alike).
// fault_recovered_total is shared by name with the recovery paths
// (internal/core's distributed retry, resume flows) — they bump the
// same series without importing this package.
var (
	mInjected    = telemetry.C("fault_injected_total")
	mPointsArmed = telemetry.G("fault_points_armed")
	_            = telemetry.C("fault_recovered_total")
)

// ErrInjected is the default error returned by armed injectors. Callers
// can detect injected faults with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// ---------------------------------------------------------------------------
// FlakyWriter

// FlakyWriter wraps an io.Writer and fails deterministically once
// FailAfter bytes have been written through it. When Short is true the
// failing Write first delivers the bytes that fit under the budget (a
// torn/short write, as a crashing process or full disk produces);
// otherwise the failing Write delivers nothing.
//
// After the first failure every subsequent Write fails immediately,
// modelling a dead file descriptor.
type FlakyWriter struct {
	W         io.Writer
	FailAfter int64 // byte budget; < 0 means never fail
	Short     bool  // deliver the partial write before failing
	Err       error // error to return; nil selects ErrInjected

	written int64
	failed  bool
}

// Write implements io.Writer.
func (w *FlakyWriter) Write(p []byte) (int, error) {
	if w.failed {
		return 0, w.err()
	}
	if w.FailAfter < 0 || w.written+int64(len(p)) <= w.FailAfter {
		n, err := w.W.Write(p)
		w.written += int64(n)
		return n, err
	}
	w.failed = true
	mInjected.Inc()
	if !w.Short {
		return 0, w.err()
	}
	keep := w.FailAfter - w.written
	if keep < 0 {
		keep = 0
	}
	n, err := w.W.Write(p[:keep])
	w.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, w.err()
}

// Written returns the number of bytes delivered to the underlying writer.
func (w *FlakyWriter) Written() int64 { return w.written }

// Failed reports whether the injected fault has fired.
func (w *FlakyWriter) Failed() bool { return w.failed }

func (w *FlakyWriter) err() error {
	if w.Err != nil {
		return w.Err
	}
	return ErrInjected
}

// ---------------------------------------------------------------------------
// FlakyReaderAt

// FlakyReaderAt wraps an io.ReaderAt and fails deterministically once
// FailAfter total bytes have been served. Reads that would cross the
// budget return the bytes under the budget together with the injected
// error (a short read).
type FlakyReaderAt struct {
	R         io.ReaderAt
	FailAfter int64 // byte budget; < 0 means never fail
	Err       error // error to return; nil selects ErrInjected

	served int64
	fired  bool
}

// ReadAt implements io.ReaderAt.
func (r *FlakyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if r.FailAfter >= 0 && r.served >= r.FailAfter {
		return 0, r.err()
	}
	if r.FailAfter >= 0 && r.served+int64(len(p)) > r.FailAfter {
		keep := r.FailAfter - r.served
		n, err := r.R.ReadAt(p[:keep], off)
		r.served += int64(n)
		if err != nil {
			return n, err
		}
		return n, r.err()
	}
	n, err := r.R.ReadAt(p, off)
	r.served += int64(n)
	return n, err
}

func (r *FlakyReaderAt) err() error {
	if !r.fired {
		r.fired = true
		mInjected.Inc()
	}
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// ---------------------------------------------------------------------------
// FlakyConn

// ConnFaults configures a FlakyConn. Zero values disable each fault.
type ConnFaults struct {
	// CutAfterWriteBytes hard-closes the connection once this many bytes
	// have been written through it (0 disables).
	CutAfterWriteBytes int64
	// CutAfterReadBytes hard-closes the connection once this many bytes
	// have been read through it (0 disables).
	CutAfterReadBytes int64
	// WriteDelay is added before every write, modelling a slow link.
	WriteDelay time.Duration
	// Err is the error surfaced on the cut; nil selects ErrInjected.
	Err error
}

// FlakyConn wraps a net.Conn and severs it deterministically after a
// configured number of bytes in either direction, modelling a rank that
// dies mid-frame. It is safe for the usual one-reader/one-writer
// net.Conn concurrency.
type FlakyConn struct {
	net.Conn
	f ConnFaults

	read, wrote atomic.Int64
	cut         atomic.Bool
}

// NewFlakyConn wraps c with the given fault schedule.
func NewFlakyConn(c net.Conn, f ConnFaults) *FlakyConn {
	return &FlakyConn{Conn: c, f: f}
}

func (c *FlakyConn) errCut() error {
	if c.f.Err != nil {
		return c.f.Err
	}
	return ErrInjected
}

// sever closes the underlying conn so the peer observes a reset/EOF, the
// behaviour of a killed process.
func (c *FlakyConn) sever() error {
	if c.cut.CompareAndSwap(false, true) {
		mInjected.Inc()
		c.Conn.Close()
	}
	return c.errCut()
}

// Read implements net.Conn.
func (c *FlakyConn) Read(p []byte) (int, error) {
	if c.cut.Load() {
		return 0, c.errCut()
	}
	lim := c.f.CutAfterReadBytes
	if lim > 0 {
		if rem := lim - c.read.Load(); rem <= 0 {
			return 0, c.sever()
		} else if int64(len(p)) > rem {
			p = p[:rem]
		}
	}
	n, err := c.Conn.Read(p)
	c.read.Add(int64(n))
	if lim > 0 && c.read.Load() >= lim {
		c.sever()
		if err == nil {
			err = c.errCut()
		}
	}
	return n, err
}

// Write implements net.Conn.
func (c *FlakyConn) Write(p []byte) (int, error) {
	if c.f.WriteDelay > 0 {
		time.Sleep(c.f.WriteDelay)
	}
	if c.cut.Load() {
		return 0, c.errCut()
	}
	lim := c.f.CutAfterWriteBytes
	if lim > 0 {
		rem := lim - c.wrote.Load()
		if rem <= 0 {
			return 0, c.sever()
		}
		if int64(len(p)) > rem {
			// Torn frame: deliver the prefix, then die.
			n, _ := c.Conn.Write(p[:rem])
			c.wrote.Add(int64(n))
			return n, c.sever()
		}
	}
	n, err := c.Conn.Write(p)
	c.wrote.Add(int64(n))
	return n, err
}

// Severed reports whether the injected cut has fired.
func (c *FlakyConn) Severed() bool { return c.cut.Load() }

// ---------------------------------------------------------------------------
// File corruption

// CorruptFile deterministically corrupts n bytes of the file at path
// starting at byte offset off by XOR-ing each with 0xFF (so corrupting
// the same range twice restores the original — tests can un-inject).
// A negative off counts back from the end of the file. The same
// (path, off, n) always produces the same damage, in keeping with the
// package's determinism contract. Used by the snapshot-store tests to
// prove gstore.Open fails closed and netserve keeps serving the
// previous generation after a bad reload.
func CorruptFile(path string, off int64, n int) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	if off < 0 {
		off += size
	}
	if off < 0 || off >= size {
		return fmt.Errorf("faultinject: corrupt offset %d outside file of %d bytes", off, size)
	}
	if int64(n) > size-off {
		n = int(size - off)
	}
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		return err
	}
	for i := range buf {
		buf[i] ^= 0xFF
	}
	if _, err := f.WriteAt(buf, off); err != nil {
		return err
	}
	mInjected.Inc()
	return nil
}

// TruncateFile chops the file at path to size bytes, modelling a crash
// mid-write (torn tail). Negative size counts back from the end.
func TruncateFile(path string, size int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if size < 0 {
		size += fi.Size()
	}
	if size < 0 || size > fi.Size() {
		return fmt.Errorf("faultinject: truncate size %d outside file of %d bytes", size, fi.Size())
	}
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	mInjected.Inc()
	return nil
}

// ---------------------------------------------------------------------------
// Crash-point registry

// The registry lets tests arm named crash points compiled into
// production code. A production call site does
//
//	if err := faultinject.Hit("eventlog.flush"); err != nil { return err }
//
// and pays a single atomic load when nothing is armed. A test arms the
// point with Arm("eventlog.flush", 3) to make the 3rd hit fail.

var (
	crashArmed atomic.Int32 // number of armed points; fast-path gate
	crashMu    sync.Mutex
	crashPts   = map[string]*crashPoint{}
)

type crashPoint struct {
	after int   // remaining hits before firing
	fired int   // times this point has fired
	err   error // error returned when firing
}

// Arm makes the nth subsequent Hit(name) (1-based) and every later one
// return an error. err may be nil to use ErrInjected.
func Arm(name string, nth int, err error) {
	if nth < 1 {
		nth = 1
	}
	crashMu.Lock()
	defer crashMu.Unlock()
	if _, ok := crashPts[name]; !ok {
		crashArmed.Add(1)
	}
	crashPts[name] = &crashPoint{after: nth - 1, err: err}
	mPointsArmed.Set(int64(crashArmed.Load()))
}

// Disarm removes a single crash point.
func Disarm(name string) {
	crashMu.Lock()
	defer crashMu.Unlock()
	if _, ok := crashPts[name]; ok {
		delete(crashPts, name)
		crashArmed.Add(-1)
	}
	mPointsArmed.Set(int64(crashArmed.Load()))
}

// Reset disarms every crash point.
func Reset() {
	crashMu.Lock()
	defer crashMu.Unlock()
	crashArmed.Store(0)
	crashPts = map[string]*crashPoint{}
	mPointsArmed.Set(0)
}

// Fired returns how many times the named point has fired.
func Fired(name string) int {
	crashMu.Lock()
	defer crashMu.Unlock()
	if p, ok := crashPts[name]; ok {
		return p.fired
	}
	return 0
}

// Hit reports the named crash point. It returns nil when the point is
// not armed or its countdown has not elapsed; otherwise it returns the
// armed error. The unarmed fast path is one atomic load.
func Hit(name string) error {
	if crashArmed.Load() == 0 {
		return nil
	}
	crashMu.Lock()
	defer crashMu.Unlock()
	p, ok := crashPts[name]
	if !ok {
		return nil
	}
	if p.after > 0 {
		p.after--
		return nil
	}
	p.fired++
	mInjected.Inc()
	if p.err != nil {
		return p.err
	}
	return fmt.Errorf("%w: crash point %q", ErrInjected, name)
}
