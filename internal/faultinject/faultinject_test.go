package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
)

func TestFlakyWriterFailsAfterBudget(t *testing.T) {
	var buf bytes.Buffer
	w := &FlakyWriter{W: &buf, FailAfter: 10}
	if _, err := w.Write(make([]byte, 10)); err != nil {
		t.Fatalf("write inside budget failed: %v", err)
	}
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if buf.Len() != 10 {
		t.Fatalf("underlying got %d bytes, want 10", buf.Len())
	}
	// Dead after first failure.
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write after failure: %v", err)
	}
	if !w.Failed() || w.Written() != 10 {
		t.Fatalf("state: failed=%v written=%d", w.Failed(), w.Written())
	}
}

func TestFlakyWriterShortWrite(t *testing.T) {
	var buf bytes.Buffer
	w := &FlakyWriter{W: &buf, FailAfter: 7, Short: true}
	n, err := w.Write(make([]byte, 20))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n != 7 || buf.Len() != 7 {
		t.Fatalf("short write delivered %d (%d underlying), want 7", n, buf.Len())
	}
}

func TestFlakyWriterNeverFails(t *testing.T) {
	var buf bytes.Buffer
	w := &FlakyWriter{W: &buf, FailAfter: -1}
	for i := 0; i < 100; i++ {
		if _, err := w.Write(make([]byte, 97)); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() != 9700 {
		t.Fatal("bytes lost")
	}
}

func TestFlakyWriterCustomError(t *testing.T) {
	myErr := errors.New("disk on fire")
	w := &FlakyWriter{W: io.Discard, FailAfter: 0, Err: myErr}
	if _, err := w.Write([]byte{1}); !errors.Is(err, myErr) {
		t.Fatalf("want custom error, got %v", err)
	}
}

func TestFlakyReaderAt(t *testing.T) {
	src := bytes.NewReader([]byte(strings.Repeat("x", 100)))
	r := &FlakyReaderAt{R: src, FailAfter: 30}
	p := make([]byte, 20)
	if _, err := r.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	// Crosses the budget: short read + error.
	n, err := r.ReadAt(p, 20)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n != 10 {
		t.Fatalf("short read %d, want 10", n)
	}
	if _, err := r.ReadAt(p, 50); !errors.Is(err, ErrInjected) {
		t.Fatal("reader revived after failure")
	}
}

func TestFlakyConnCutsAfterWrites(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := NewFlakyConn(a, ConnFaults{CutAfterWriteBytes: 8})
	go io.Copy(io.Discard, b) //nolint:errcheck
	if _, err := fc.Write(make([]byte, 8)); err != nil {
		t.Fatalf("write inside budget: %v", err)
	}
	if _, err := fc.Write(make([]byte, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !fc.Severed() {
		t.Fatal("conn not severed")
	}
	if _, err := fc.Write([]byte{1}); err == nil {
		t.Fatal("write on severed conn succeeded")
	}
}

func TestFlakyConnTornWriteDeliversPrefix(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := NewFlakyConn(a, ConnFaults{CutAfterWriteBytes: 5})
	got := make(chan []byte, 1)
	go func() {
		p := make([]byte, 16)
		n, _ := io.ReadFull(b, p)
		got <- p[:n]
	}()
	n, err := fc.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n != 5 {
		t.Fatalf("torn write delivered %d, want 5", n)
	}
	if string(<-got) != "01234" {
		t.Fatal("peer did not observe torn prefix")
	}
}

func TestFlakyConnCutsAfterReads(t *testing.T) {
	a, b := net.Pipe()
	fc := NewFlakyConn(a, ConnFaults{CutAfterReadBytes: 6})
	go b.Write(make([]byte, 64)) //nolint:errcheck
	p := make([]byte, 6)
	if _, err := io.ReadFull(fc, p); err == nil {
		// Reaching the budget severs on the boundary; a follow-up read
		// must fail.
		if _, err2 := fc.Read(p); !errors.Is(err2, ErrInjected) {
			t.Fatalf("read past budget: %v", err2)
		}
	}
	if !fc.Severed() {
		t.Fatal("conn not severed after read budget")
	}
	b.Close()
}

func TestCrashPointRegistry(t *testing.T) {
	defer Reset()
	Reset()
	if err := Hit("unarmed"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	Arm("p", 3, nil)
	if err := Hit("p"); err != nil {
		t.Fatal("fired on hit 1")
	}
	if err := Hit("p"); err != nil {
		t.Fatal("fired on hit 2")
	}
	if err := Hit("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 3 should fire, got %v", err)
	}
	if err := Hit("p"); !errors.Is(err, ErrInjected) {
		t.Fatal("hit 4 should keep firing")
	}
	if Fired("p") != 2 {
		t.Fatalf("Fired = %d, want 2", Fired("p"))
	}
	Disarm("p")
	if err := Hit("p"); err != nil {
		t.Fatal("disarmed point fired")
	}
	// Custom error.
	myErr := errors.New("boom")
	Arm("q", 1, myErr)
	if err := Hit("q"); !errors.Is(err, myErr) {
		t.Fatalf("custom error not returned: %v", err)
	}
}
