package eventlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// testEntry is a deterministic entry generator: entry i stops at hour
// i/4+1 so several entries share a Stop hour (as in a real log where all
// segments ending at hour h are logged together) and Stop is
// nondecreasing in log order.
func testEntry(i int) Entry {
	return Entry{
		Start:    uint32(i),
		Stop:     uint32(i/4 + 1),
		Person:   uint32(100 + i),
		Activity: uint32(i % 7),
		Place:    uint32(i % 5),
	}
}

func writeLog(t *testing.T, path string, cfg Config, n int, ext bool) {
	t.Helper()
	l, err := Create(path, cfg)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < n; i++ {
		var err error
		if ext {
			err = l.Log(testEntry(i), uint32(i*3))
		} else {
			err = l.Log(testEntry(i))
		}
		if err != nil {
			t.Fatalf("Log %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func readAll(t *testing.T, path string) ([]Entry, [][]uint32) {
	t.Helper()
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	var es []Entry
	var xs [][]uint32
	err = r.ForEach(func(e Entry, ext []uint32) error {
		es = append(es, e)
		xs = append(xs, append([]uint32(nil), ext...))
		return nil
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	return es, xs
}

func TestResumeCompleteFile(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "log.h5")
			cfg := Config{CacheEntries: 4, Compress: compress}
			writeLog(t, path, cfg, 10, false)

			l, info, err := Resume(path, cfg)
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			if !info.Complete {
				t.Errorf("Complete = false, want true for cleanly closed file")
			}
			if info.RecoveredEntries != 10 || info.DroppedEntries != 0 {
				t.Errorf("recovered %d dropped %d, want 10/0", info.RecoveredEntries, info.DroppedEntries)
			}
			if info.MaxStop != testEntry(9).Stop {
				t.Errorf("MaxStop = %d, want %d", info.MaxStop, testEntry(9).Stop)
			}
			if l.Logged() != 10 {
				t.Errorf("Logged() = %d, want 10", l.Logged())
			}
			// Continue appending.
			for i := 10; i < 15; i++ {
				if err := l.Log(testEntry(i)); err != nil {
					t.Fatalf("Log after resume: %v", err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			es, _ := readAll(t, path)
			if len(es) != 15 {
				t.Fatalf("reopened file has %d entries, want 15", len(es))
			}
			for i, e := range es {
				if e != testEntry(i) {
					t.Fatalf("entry %d = %+v, want %+v", i, e, testEntry(i))
				}
			}
		})
	}
}

// TestResumeTruncateEveryByte is the crash-anywhere property: truncating
// a log at every byte offset and resuming must always yield a prefix of
// whole entries (never a torn or corrupt entry), and appending after the
// resume must produce a fully valid file.
func TestResumeTruncateEveryByte(t *testing.T) {
	const n = 10
	cfg := Config{CacheEntries: 4}
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.h5")
	writeLog(t, ref, cfg, n, false)
	data, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	work := filepath.Join(dir, "cut.h5")
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(work, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, info, err := Resume(work, cfg)
		if err != nil {
			// Legitimate only when even the header is torn.
			continue
		}
		rec := int(info.RecoveredEntries)
		if rec%cfg.CacheEntries != 0 && rec != n {
			t.Errorf("cut %d: recovered %d entries, not a whole-chunk prefix", cut, rec)
		}
		// Append one sentinel and close; the file must then be fully
		// readable with the recovered prefix intact.
		sentinel := Entry{Start: 999, Stop: 1000, Person: 7, Activity: 1, Place: 2}
		if err := l.Log(sentinel); err != nil {
			t.Fatalf("cut %d: Log: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		es, _ := readAll(t, work)
		if len(es) != rec+1 {
			t.Fatalf("cut %d: reopened file has %d entries, want %d", cut, len(es), rec+1)
		}
		for i := 0; i < rec; i++ {
			if es[i] != testEntry(i) {
				t.Fatalf("cut %d: entry %d = %+v, want %+v", cut, i, es[i], testEntry(i))
			}
		}
		if es[rec] != sentinel {
			t.Fatalf("cut %d: sentinel = %+v", cut, es[rec])
		}
	}
}

// TestResumeBefore trims the suffix with Stop >= M, including the case
// where the cut falls inside a chunk (surviving boundary entries are
// re-staged through the cache).
func TestResumeBefore(t *testing.T) {
	const n = 14 // entries 0..13, Stop = i/4+1 in {1,1,1,1,2,2,2,2,3,3,3,3,4,4}
	cfg := Config{CacheEntries: 4, ExtColumns: []string{"state"}}
	path := filepath.Join(t.TempDir(), "log.h5")
	writeLog(t, path, cfg, n, true)

	const m = 3 // drop Stop >= 3: keeps entries 0..7, drops 8..13
	l, info, err := ResumeBefore(path, cfg, func(e Entry, _ []uint32) bool {
		return e.Stop >= m
	})
	if err != nil {
		t.Fatalf("ResumeBefore: %v", err)
	}
	if info.RecoveredEntries != 8 || info.DroppedEntries != 6 {
		t.Errorf("recovered %d dropped %d, want 8/6", info.RecoveredEntries, info.DroppedEntries)
	}
	if info.MaxStop != 2 {
		t.Errorf("MaxStop = %d, want 2", info.MaxStop)
	}
	// Re-log the dropped range as a re-simulation would.
	for i := 8; i < n; i++ {
		if err := l.Log(testEntry(i), uint32(i*3)); err != nil {
			t.Fatalf("Log: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	es, xs := readAll(t, path)
	if len(es) != n {
		t.Fatalf("file has %d entries, want %d", len(es), n)
	}
	for i := range es {
		if es[i] != testEntry(i) {
			t.Fatalf("entry %d = %+v, want %+v", i, es[i], testEntry(i))
		}
		if len(xs[i]) != 1 || xs[i][0] != uint32(i*3) {
			t.Fatalf("entry %d ext = %v, want [%d]", i, xs[i], i*3)
		}
	}
}

func TestResumeBeforeCutInsideChunk(t *testing.T) {
	// Cache 4, 10 entries -> chunks [0..3][4..7][8..9]. Cut at entry 6:
	// chunk 1 is partially kept, entries 4..5 must be re-staged.
	cfg := Config{CacheEntries: 4}
	path := filepath.Join(t.TempDir(), "log.h5")
	writeLog(t, path, cfg, 10, false)

	l, info, err := ResumeBefore(path, cfg, func(e Entry, _ []uint32) bool {
		return e.Start >= 6
	})
	if err != nil {
		t.Fatalf("ResumeBefore: %v", err)
	}
	if info.RecoveredEntries != 6 || info.DroppedEntries != 4 {
		t.Errorf("recovered %d dropped %d, want 6/4", info.RecoveredEntries, info.DroppedEntries)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	es, _ := readAll(t, path)
	if len(es) != 6 {
		t.Fatalf("file has %d entries, want 6", len(es))
	}
	for i, e := range es {
		if e != testEntry(i) {
			t.Fatalf("entry %d = %+v, want %+v", i, e, testEntry(i))
		}
	}
}

func TestResumeBeforeRequiresPredicate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.h5")
	writeLog(t, path, Config{}, 1, false)
	if _, _, err := ResumeBefore(path, Config{}, nil); err == nil {
		t.Fatal("ResumeBefore(nil) succeeded, want error")
	}
}

func TestResumeConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	base := Config{CacheEntries: 4}
	path := filepath.Join(dir, "log.h5")
	writeLog(t, path, base, 5, false)

	cases := []struct {
		name string
		cfg  Config
	}{
		{"ext columns added", Config{CacheEntries: 4, ExtColumns: []string{"state"}}},
		{"compression mismatch", Config{CacheEntries: 4, Compress: true}},
		{"checksum mismatch", Config{CacheEntries: 4, DisableChecksums: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Resume(path, tc.cfg); err == nil {
				t.Fatalf("Resume with %s succeeded, want error", tc.name)
			}
		})
	}
	// Renamed ext column.
	p2 := filepath.Join(dir, "ext.h5")
	writeLog(t, p2, Config{CacheEntries: 4, ExtColumns: []string{"state"}}, 5, true)
	if _, _, err := Resume(p2, Config{CacheEntries: 4, ExtColumns: []string{"other"}}); err == nil {
		t.Fatal("Resume with renamed ext column succeeded, want error")
	}
}

func TestInspectDoesNotModify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.h5")
	cfg := Config{CacheEntries: 4}
	writeLog(t, path, cfg, 10, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate to simulate a crash, then Inspect.
	cut := data[:len(data)-25]
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(path)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.Complete {
		t.Error("Complete = true for truncated file")
	}
	if info.RecoveredEntries == 0 || info.MaxStop == 0 {
		t.Errorf("Inspect recovered %d entries MaxStop %d, want nonzero", info.RecoveredEntries, info.MaxStop)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(cut) {
		t.Errorf("Inspect modified the file: %d -> %d bytes", len(cut), len(after))
	}
}

// TestResumeAfterCrashFlush arms the eventlog flush crash point so the
// logger dies exactly at its Nth cache flush, then verifies Resume
// recovers every entry from the flushes that completed.
func TestResumeAfterCrashFlush(t *testing.T) {
	defer faultinject.Reset()
	cfg := Config{CacheEntries: 4}
	path := filepath.Join(t.TempDir(), "log.h5")
	l, err := Create(path, cfg)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	faultinject.Arm(CrashFlush, 3, faultinject.ErrInjected) // die at 3rd flush
	var crashed error
	i := 0
	for ; i < 100; i++ {
		if err := l.Log(testEntry(i)); err != nil {
			crashed = err
			break
		}
	}
	if crashed == nil {
		t.Fatal("crash point never fired")
	}
	if !errors.Is(crashed, faultinject.ErrInjected) {
		t.Fatalf("crash error = %v, want ErrInjected", crashed)
	}
	faultinject.Reset()
	// Do NOT close the logger: simulate the process dying. The file on
	// disk has 2 complete chunks (8 entries) and no footer.
	l2, info, err := Resume(path, cfg)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if info.Complete {
		t.Error("Complete = true for crashed file")
	}
	if info.RecoveredEntries != 8 {
		t.Errorf("recovered %d entries, want 8 (2 complete flushes)", info.RecoveredEntries)
	}
	// Finish the run from where the log left off.
	for j := int(info.RecoveredEntries); j < 12; j++ {
		if err := l2.Log(testEntry(j)); err != nil {
			t.Fatalf("Log: %v", err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	es, _ := readAll(t, path)
	if len(es) != 12 {
		t.Fatalf("file has %d entries, want 12", len(es))
	}
	for k, e := range es {
		if e != testEntry(k) {
			t.Fatalf("entry %d = %+v, want %+v", k, e, testEntry(k))
		}
	}
}

func TestResumeRejectsNonEventLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-log")
	if err := os.WriteFile(path, []byte("not an h5 file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(path, Config{}); err == nil {
		t.Fatal("Resume on garbage succeeded, want error")
	}
	if _, err := Inspect(path); err == nil {
		t.Fatal("Inspect on garbage succeeded, want error")
	}
}
