package eventlog

// This file defines EntrySource, the streaming interface between the
// logging layer and everything downstream (synthesis, tracing, series
// analysis). The paper's pipeline only scales to millions of agents
// because no stage ever materializes the whole event stream at once;
// EntrySource makes that property a first-class contract: consumers pull
// bounded batches, producers hold at most one decoded chunk in memory,
// and multi-file runs are streamed one file at a time.

import (
	"context"
	"fmt"
	"io"
)

// EntrySource is a pull iterator over a stream of time-filtered log
// entries.
//
// Next returns the next non-empty batch of entries, or (nil, io.EOF)
// once the stream is exhausted. The returned slice is only valid until
// the following Next or Close call — implementations reuse the backing
// array — so consumers must copy any entries they retain. Batch sizes
// are implementation-defined but bounded (typically one log chunk), so
// a consumer that processes batch-by-batch holds O(chunk) memory no
// matter how large the underlying log set is.
//
// Close releases underlying resources and is idempotent. After Close,
// Next returns io.EOF.
type EntrySource interface {
	Next() ([]Entry, error)
	Close() error
}

// sliceBatch bounds the batch size of SliceSource so consumers see the
// same bounded-batch behaviour they would get from a file-backed source.
const sliceBatch = 8192

// sliceSource streams an in-memory entry slice.
type sliceSource struct {
	ctx     context.Context
	entries []Entry
	t0, t1  uint32
	pos     int
	buf     []Entry
	closed  bool
}

// SliceSource returns an EntrySource over in-memory entries, yielding
// only those whose activity interval overlaps [t0, t1). It adapts
// slice-of-everything callers to streaming consumers. Once ctx is done,
// Next returns an error wrapping ctx.Err() — the pipeline-wide
// cancellation contract (wrapped, never bare, so errors.Is works and
// the message says who was canceled).
func SliceSource(ctx context.Context, entries []Entry, t0, t1 uint32) EntrySource {
	return &sliceSource{ctx: ctx, entries: entries, t0: t0, t1: t1}
}

func (s *sliceSource) Next() ([]Entry, error) {
	if s.closed {
		return nil, io.EOF
	}
	if err := s.ctx.Err(); err != nil {
		return nil, fmt.Errorf("eventlog: slice source: %w", err)
	}
	s.buf = s.buf[:0]
	for s.pos < len(s.entries) {
		e := s.entries[s.pos]
		s.pos++
		if e.Start < s.t1 && e.Stop > s.t0 {
			s.buf = append(s.buf, e)
			if len(s.buf) >= sliceBatch {
				return s.buf, nil
			}
		}
	}
	if len(s.buf) > 0 {
		return s.buf, nil
	}
	return nil, io.EOF
}

func (s *sliceSource) Close() error {
	s.closed = true
	s.entries = nil
	s.buf = nil
	return nil
}

// readerSource streams the time slice of one open log file, decoding one
// chunk at a time. Peak memory is one chunk payload plus one decoded
// batch, independent of the file size.
type readerSource struct {
	r          *Reader
	t0, t1     uint32
	chunk      int
	buf        []Entry
	closed     bool
	ownsReader bool
}

// Source returns an EntrySource over the entries of r whose activity
// interval overlaps [t0, t1). The source reads chunk-by-chunk and does
// NOT close r; the caller remains responsible for the Reader. Multiple
// sequential sources may be taken from the same Reader.
func (r *Reader) Source(t0, t1 uint32) EntrySource {
	return &readerSource{r: r, t0: t0, t1: t1}
}

// OpenSource opens path and returns an EntrySource over its [t0, t1)
// slice. Closing the source closes the underlying file.
func OpenSource(path string, t0, t1 uint32) (EntrySource, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	return &readerSource{r: r, t0: t0, t1: t1, ownsReader: true}, nil
}

func (s *readerSource) Next() ([]Entry, error) {
	if s.closed {
		return nil, io.EOF
	}
	rec := s.r.recordSize()
	for s.chunk < s.r.r.NumChunks() {
		payload, err := s.r.r.ReadChunk(s.chunk)
		if err != nil {
			return nil, err
		}
		s.chunk++
		s.buf = s.buf[:0]
		for off := 0; off < len(payload); off += rec {
			e := decodeEntry(payload[off:])
			if e.Start < s.t1 && e.Stop > s.t0 {
				s.buf = append(s.buf, e)
			}
		}
		if len(s.buf) > 0 {
			return s.buf, nil
		}
	}
	return nil, io.EOF
}

func (s *readerSource) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.buf = nil
	if s.ownsReader {
		return s.r.Close()
	}
	return nil
}

// filesSource concatenates the slices of several log files, opening each
// file lazily so at most one file is open — and one chunk resident — at
// any time.
type filesSource struct {
	paths  []string
	t0, t1 uint32
	idx    int
	cur    EntrySource
	closed bool
}

// OpenFilesSource returns an EntrySource streaming the [t0, t1) slices
// of the given log files in order. Files are opened lazily one at a
// time, so the source's footprint is bounded by a single chunk
// regardless of how many files (or how large a run) it covers. Errors
// are annotated with the offending path.
func OpenFilesSource(paths []string, t0, t1 uint32) EntrySource {
	return &filesSource{paths: paths, t0: t0, t1: t1}
}

func (s *filesSource) Next() ([]Entry, error) {
	if s.closed {
		return nil, io.EOF
	}
	for {
		if s.cur == nil {
			if s.idx >= len(s.paths) {
				return nil, io.EOF
			}
			src, err := OpenSource(s.paths[s.idx], s.t0, s.t1)
			if err != nil {
				return nil, fmt.Errorf("eventlog: %s: %w", s.paths[s.idx], err)
			}
			s.cur = src
		}
		batch, err := s.cur.Next()
		if err == io.EOF {
			cerr := s.cur.Close()
			s.cur = nil
			s.idx++
			if cerr != nil {
				return nil, fmt.Errorf("eventlog: %s: %w", s.paths[s.idx-1], cerr)
			}
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("eventlog: %s: %w", s.paths[s.idx], err)
		}
		return batch, nil
	}
}

func (s *filesSource) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.cur != nil {
		err := s.cur.Close()
		s.cur = nil
		return err
	}
	return nil
}

// MultiSource concatenates any number of already-constructed sources.
// Each source is drained and closed in order; Close closes the remaining
// unread sources.
func MultiSource(srcs ...EntrySource) EntrySource {
	return &multiSource{srcs: srcs}
}

type multiSource struct {
	srcs   []EntrySource
	idx    int
	closed bool
}

func (s *multiSource) Next() ([]Entry, error) {
	if s.closed {
		return nil, io.EOF
	}
	for s.idx < len(s.srcs) {
		batch, err := s.srcs[s.idx].Next()
		if err == io.EOF {
			if cerr := s.srcs[s.idx].Close(); cerr != nil {
				return nil, cerr
			}
			s.idx++
			continue
		}
		return batch, err
	}
	return nil, io.EOF
}

func (s *multiSource) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for ; s.idx < len(s.srcs); s.idx++ {
		if err := s.srcs[s.idx].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReadAll drains src into a slice, growing it normally. It does not
// close src. Prefer batch-wise consumption via Next for bounded memory;
// ReadAll exists for callers that genuinely need the whole slice.
func ReadAll(src EntrySource) ([]Entry, error) {
	var out []Entry
	for {
		batch, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, batch...)
	}
}
