package eventlog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "rank0.h5l")
}

func TestLogRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, err := Create(path, Config{CacheEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{
		{0, 8, 100, 1, 50},
		{8, 9, 100, 2, 51},
		{9, 17, 100, 3, 52},
		{0, 24, 101, 1, 50},
		{5, 6, 102, 4, 53},
	}
	for _, e := range want {
		if err := l.Log(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumEntries() != uint64(len(want)) {
		t.Fatalf("NumEntries = %d, want %d", r.NumEntries(), len(want))
	}
	var got []Entry
	if err := r.ForEach(func(e Entry, _ []uint32) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestFlushBoundariesLoseNothing(t *testing.T) {
	// Cache sizes that do and do not divide the entry count evenly.
	for _, cache := range []int{1, 3, 7, 100} {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("c%d.h5l", cache))
		l, err := Create(path, Config{CacheEntries: cache})
		if err != nil {
			t.Fatal(err)
		}
		const n = 23
		for i := uint32(0); i < n; i++ {
			if err := l.Log(Entry{Start: i, Stop: i + 1, Person: i, Activity: 1, Place: 2}); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		count := uint32(0)
		if err := r.ForEach(func(e Entry, _ []uint32) error {
			if e.Start != count {
				t.Fatalf("cache %d: entry %d has Start %d (order broken)", cache, count, e.Start)
			}
			count++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		r.Close()
		if count != n {
			t.Fatalf("cache %d: read %d entries, want %d", cache, count, n)
		}
	}
}

func TestFlushCountMatchesCacheSize(t *testing.T) {
	path := tmpLog(t)
	l, err := Create(path, Config{CacheEntries: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		if err := l.Log(Entry{}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Flushes() != 3 {
		t.Fatalf("Flushes = %d, want 3 (35 entries / cache 10)", l.Flushes())
	}
	if l.Logged() != 35 {
		t.Fatalf("Logged = %d, want 35", l.Logged())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestExtColumns(t *testing.T) {
	path := tmpLog(t)
	l, err := Create(path, Config{CacheEntries: 2, ExtColumns: []string{"disease", "dose"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Log(Entry{Person: 1}, 7, 9); err != nil {
		t.Fatal(err)
	}
	if err := l.Log(Entry{Person: 2}, 8, 10); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if cols := r.ExtColumns(); len(cols) != 2 || cols[0] != "disease" || cols[1] != "dose" {
		t.Fatalf("ExtColumns = %v", cols)
	}
	var exts [][]uint32
	if err := r.ForEach(func(e Entry, ext []uint32) error {
		cp := append([]uint32{}, ext...)
		exts = append(exts, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(exts) != 2 || exts[0][0] != 7 || exts[0][1] != 9 || exts[1][0] != 8 || exts[1][1] != 10 {
		t.Fatalf("ext values = %v", exts)
	}
}

func TestExtArityMismatch(t *testing.T) {
	path := tmpLog(t)
	l, err := Create(path, Config{ExtColumns: []string{"disease"}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Log(Entry{}); err == nil {
		t.Error("missing ext value accepted")
	}
	if err := l.Log(Entry{}, 1, 2); err == nil {
		t.Error("extra ext value accepted")
	}
}

func TestEntryIs20Bytes(t *testing.T) {
	path := tmpLog(t)
	l, err := Create(path, Config{CacheEntries: 1000})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		if err := l.Log(Entry{Start: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// File = header + chunk headers + index + footer + n*20 payload.
	payload := int64(n * BaseEntrySize)
	if st.Size() < payload || st.Size() > payload+4096 {
		t.Fatalf("file size %d not consistent with %d bytes of 20-byte entries", st.Size(), payload)
	}
}

func TestTimeSlice(t *testing.T) {
	path := tmpLog(t)
	l, err := Create(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	entries := []Entry{
		{Start: 0, Stop: 10, Person: 1, Place: 1},   // overlaps [5,15)
		{Start: 10, Stop: 20, Person: 2, Place: 1},  // overlaps
		{Start: 15, Stop: 16, Person: 3, Place: 2},  // inside? [15,16) vs [5,15): no
		{Start: 20, Stop: 30, Person: 4, Place: 2},  // after
		{Start: 0, Stop: 5, Person: 5, Place: 3},    // ends exactly at t0: no
		{Start: 14, Stop: 100, Person: 6, Place: 3}, // spans
	}
	for _, e := range entries {
		if err := l.Log(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.TimeSlice(5, 15)
	if err != nil {
		t.Fatal(err)
	}
	var persons []uint32
	for _, e := range got {
		persons = append(persons, e.Person)
	}
	want := []uint32{1, 2, 6}
	if len(persons) != len(want) {
		t.Fatalf("TimeSlice persons = %v, want %v", persons, want)
	}
	for i := range want {
		if persons[i] != want[i] {
			t.Fatalf("TimeSlice persons = %v, want %v", persons, want)
		}
	}
}

func TestGroupByPlaceAndPlaces(t *testing.T) {
	entries := []Entry{
		{Place: 5, Person: 1},
		{Place: 3, Person: 2},
		{Place: 5, Person: 3},
	}
	g := GroupByPlace(entries)
	if len(g) != 2 || len(g[5]) != 2 || len(g[3]) != 1 {
		t.Fatalf("GroupByPlace = %v", g)
	}
	p := Places(entries)
	if len(p) != 2 || p[0] != 3 || p[1] != 5 {
		t.Fatalf("Places = %v", p)
	}
}

func TestOpenRejectsWrongSchema(t *testing.T) {
	// A raw h5 file with a record size that is not 4-aligned above 20.
	path := tmpLog(t)
	l, err := Create(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Corrupt the recordSize field in the header (offset 8..12).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[8] = 19
	bad := path + ".bad"
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Fatal("wrong record size accepted")
	}
}

// Property: per-rank logs merge to exactly the global event multiset —
// distributing events across loggers loses and duplicates nothing.
func TestQuickShardedLogsMergeToWhole(t *testing.T) {
	dir := t.TempDir()
	iter := 0
	f := func(seed uint64) bool {
		iter++
		r := rng.New(seed)
		const ranks = 4
		loggers := make([]*Logger, ranks)
		paths := make([]string, ranks)
		for i := range loggers {
			paths[i] = filepath.Join(dir, fmt.Sprintf("i%d-r%d.h5l", iter, i))
			l, err := Create(paths[i], Config{CacheEntries: 3})
			if err != nil {
				return false
			}
			loggers[i] = l
		}
		want := make(map[Entry]int)
		n := r.Intn(60)
		for k := 0; k < n; k++ {
			e := Entry{
				Start:    uint32(r.Intn(100)),
				Stop:     uint32(r.Intn(100)),
				Person:   uint32(r.Intn(20)),
				Activity: uint32(r.Intn(5)),
				Place:    uint32(r.Intn(10)),
			}
			want[e]++
			if err := loggers[r.Intn(ranks)].Log(e); err != nil {
				return false
			}
		}
		for _, l := range loggers {
			if err := l.Close(); err != nil {
				return false
			}
		}
		got := make(map[Entry]int)
		for _, p := range paths {
			rd, err := Open(p)
			if err != nil {
				return false
			}
			err = rd.ForEach(func(e Entry, _ []uint32) error {
				got[e]++
				return nil
			})
			rd.Close()
			if err != nil {
				return false
			}
		}
		if len(got) != len(want) {
			return false
		}
		for e, c := range want {
			if got[e] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLog(b *testing.B) {
	l, err := Create(filepath.Join(b.TempDir(), "bench.h5l"), Config{CacheEntries: 10000})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.SetBytes(BaseEntrySize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Log(Entry{Start: uint32(i), Stop: uint32(i + 1), Person: uint32(i % 1000), Activity: 1, Place: uint32(i % 100)}); err != nil {
			b.Fatal(err)
		}
	}
}
