// Package eventlog implements the paper's parallel event-based logging
// framework (Section III).
//
// A log entry is recorded each time a person agent changes activities and
// contains the start and stop times of the activity plus unique IDs for
// the person, activity and place, all stored as 4-byte unsigned integers —
// 20 bytes per entry. Entries can be extended with additional integer
// columns (e.g. a disease state).
//
// One Logger is created per simulation process (rank); each logger caches
// entries in memory (nominal cache 10,000 entries) and writes the whole
// cache to its own H5-lite file in one chunked operation when the cache
// fills. This parallelizes logging across process CPUs, memory and disk
// I/O exactly as the paper describes: a smaller cache reduces memory but
// costs more write operations; a larger cache trades memory for fewer
// writes.
package eventlog

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/faultinject"
	"repro/internal/h5"
	"repro/internal/telemetry"
)

// Telemetry series for the logging stage. Entries are counted at flush
// time (batch-sized adds), not per Log call, so the per-entry logging
// hot path carries zero telemetry cost.
var (
	mEntries      = telemetry.C("eventlog_entries_total")
	mFlushes      = telemetry.C("eventlog_flushes_total")
	mFlushBytes   = telemetry.C("eventlog_flush_bytes_total")
	mFlushSeconds = telemetry.H("eventlog_flush_seconds")
)

// CrashFlush is the crash-point name armed by chaos tests to kill a
// logger exactly at a cache flush (see internal/faultinject).
const CrashFlush = "eventlog.flush"

// BaseColumns are the five mandatory entry fields, in storage order.
var BaseColumns = []string{"start", "stop", "person", "activity", "place"}

// BaseEntrySize is the paper's 20-byte entry: five 4-byte unsigned ints.
const BaseEntrySize = 20

// DefaultCacheEntries is the paper's nominal in-memory cache size.
const DefaultCacheEntries = 10000

// Entry is one activity-change event: the person did the activity at the
// place during simulation time slots [Start, Stop).
type Entry struct {
	Start    uint32
	Stop     uint32
	Person   uint32
	Activity uint32
	Place    uint32
}

var le = binary.LittleEndian

// decodeEntry decodes the five base fields from the head of a record.
func decodeEntry(b []byte) Entry {
	return Entry{
		Start:    le.Uint32(b[0:4]),
		Stop:     le.Uint32(b[4:8]),
		Person:   le.Uint32(b[8:12]),
		Activity: le.Uint32(b[12:16]),
		Place:    le.Uint32(b[16:20]),
	}
}

// Config configures a Logger.
type Config struct {
	// CacheEntries is the number of entries buffered in memory before a
	// chunked flush to disk. Zero selects DefaultCacheEntries.
	CacheEntries int
	// ExtColumns names optional extra uint32 columns appended to every
	// entry (such as a disease state). May be empty.
	ExtColumns []string
	// Compress enables per-chunk DEFLATE in the output file.
	Compress bool
	// DisableChecksums turns off the per-chunk CRC32 trailers that are
	// written by default. Checksums cost 4 bytes per chunk and protect
	// long-running logs against silent corruption; they also let
	// Resume distinguish intact chunks from torn tails after a crash.
	DisableChecksums bool
}

func (c *Config) flags() uint16 {
	var flags uint16
	if c.Compress {
		flags |= h5.FlagDeflate
	}
	if !c.DisableChecksums {
		flags |= h5.FlagCRC32
	}
	return flags
}

func (c *Config) schema() h5.Schema {
	return h5.Schema{
		RecordSize: c.recordSize(),
		Columns:    append(append([]string{}, BaseColumns...), c.ExtColumns...),
	}
}

func (c *Config) cacheEntries() int {
	if c.CacheEntries <= 0 {
		return DefaultCacheEntries
	}
	return c.CacheEntries
}

func (c *Config) recordSize() int { return 4 * (5 + len(c.ExtColumns)) }

// Logger is a per-rank event logger. It is owned by a single simulation
// rank and is not safe for concurrent use, matching the paper's
// one-static-logger-per-process architecture.
type Logger struct {
	w       *h5.Writer
	cfg     Config
	rec     int // record size in bytes
	cache   []byte
	n       int // entries currently cached
	flushes int
	logged  uint64
}

// Create opens path and returns a Logger writing to it.
func Create(path string, cfg Config) (*Logger, error) {
	w, err := h5.Create(path, cfg.schema(), cfg.flags())
	if err != nil {
		return nil, err
	}
	return &Logger{
		w:     w,
		cfg:   cfg,
		rec:   cfg.recordSize(),
		cache: make([]byte, 0, cfg.cacheEntries()*cfg.recordSize()),
	}, nil
}

// Log records one entry with the configured extension values. The number
// of ext values must match Config.ExtColumns.
func (l *Logger) Log(e Entry, ext ...uint32) error {
	if len(ext) != len(l.cfg.ExtColumns) {
		return fmt.Errorf("eventlog: %d ext values for %d ext columns", len(ext), len(l.cfg.ExtColumns))
	}
	var rec [4]byte
	for _, v := range [5]uint32{e.Start, e.Stop, e.Person, e.Activity, e.Place} {
		le.PutUint32(rec[:], v)
		l.cache = append(l.cache, rec[:]...)
	}
	for _, v := range ext {
		le.PutUint32(rec[:], v)
		l.cache = append(l.cache, rec[:]...)
	}
	l.n++
	l.logged++
	if l.n >= l.cfg.cacheEntries() {
		return l.Flush()
	}
	return nil
}

// Flush writes all cached entries to disk as one chunk. Flushing an empty
// cache is a no-op.
func (l *Logger) Flush() error {
	if l.n == 0 {
		return nil
	}
	if err := faultinject.Hit(CrashFlush); err != nil {
		return err
	}
	sw := telemetry.Clock()
	if err := l.w.WriteChunk(l.cache); err != nil {
		return err
	}
	sw.Observe(mFlushSeconds)
	mEntries.Add(int64(l.n))
	mFlushes.Inc()
	mFlushBytes.Add(int64(len(l.cache)))
	l.cache = l.cache[:0]
	l.n = 0
	l.flushes++
	return nil
}

// Close flushes remaining entries and finalizes the file.
func (l *Logger) Close() error {
	if err := l.Flush(); err != nil {
		return err
	}
	return l.w.Close()
}

// Flushes returns the number of disk write operations performed so far —
// the cost metric of the paper's cache-size tradeoff.
func (l *Logger) Flushes() int { return l.flushes }

// Logged returns the total number of entries logged so far.
func (l *Logger) Logged() uint64 { return l.logged }

// Reader reads a log file written by Logger.
type Reader struct {
	r    *h5.Reader
	next int // ext column count
}

// Open opens a log file for reading.
func Open(path string) (*Reader, error) {
	r, err := h5.Open(path)
	if err != nil {
		return nil, err
	}
	s := r.Schema()
	if s.RecordSize < BaseEntrySize || s.RecordSize%4 != 0 {
		r.Close()
		return nil, fmt.Errorf("eventlog: record size %d is not a valid entry size", s.RecordSize)
	}
	if len(s.Columns) < len(BaseColumns) {
		r.Close()
		return nil, fmt.Errorf("eventlog: file has %d columns, want at least %d", len(s.Columns), len(BaseColumns))
	}
	for i, c := range BaseColumns {
		if s.Columns[i] != c {
			r.Close()
			return nil, fmt.Errorf("eventlog: column %d is %q, want %q", i, s.Columns[i], c)
		}
	}
	return &Reader{r: r, next: s.RecordSize/4 - 5}, nil
}

// ExtColumns returns the names of the extension columns in the file.
func (r *Reader) ExtColumns() []string {
	return r.r.Schema().Columns[len(BaseColumns):]
}

// NumEntries returns the total entry count without reading chunk bodies.
func (r *Reader) NumEntries() uint64 { return r.r.NumRecords() }

// Close releases the underlying file.
func (r *Reader) Close() error { return r.r.Close() }

// recordSize returns the byte size of one on-disk record.
func (r *Reader) recordSize() int { return 4 * (5 + r.next) }

// ForEach invokes fn for every entry in file order. ext holds the entry's
// extension values and is reused between calls; copy it to retain.
func (r *Reader) ForEach(fn func(e Entry, ext []uint32) error) error {
	rec := r.recordSize()
	ext := make([]uint32, r.next)
	return r.r.ForEachChunk(func(_ int, payload []byte) error {
		for off := 0; off < len(payload); off += rec {
			b := payload[off : off+rec]
			e := decodeEntry(b)
			for k := 0; k < r.next; k++ {
				ext[k] = le.Uint32(b[20+4*k:])
			}
			if err := fn(e, ext); err != nil {
				return err
			}
		}
		return nil
	})
}

// TimeSlice returns all entries whose activity interval overlaps
// [t0, t1), the sub-setting step the paper performs with data.table. The
// ext values of each returned entry are dropped; use ForEach for them.
//
// TimeSlice is a thin materializing wrapper over Source: it grows the
// result normally from streamed batches, so a narrow window over a huge
// file allocates proportionally to the matches, not to the file. (It
// previously pre-sized to NumEntries() regardless of the window.)
// Callers that can consume batch-wise should use Source directly.
func (r *Reader) TimeSlice(t0, t1 uint32) ([]Entry, error) {
	src := r.Source(t0, t1)
	defer src.Close()
	return ReadAll(src)
}

// GroupByPlace buckets entries by place ID.
func GroupByPlace(entries []Entry) map[uint32][]Entry {
	m := make(map[uint32][]Entry)
	for _, e := range entries {
		m[e.Place] = append(m[e.Place], e)
	}
	return m
}

// Places returns the sorted-unique place IDs occurring in entries.
func Places(entries []Entry) []uint32 {
	seen := make(map[uint32]struct{})
	for _, e := range entries {
		seen[e.Place] = struct{}{}
	}
	out := make([]uint32, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
