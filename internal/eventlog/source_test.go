package eventlog

import (
	"context"
	"io"
	"path/filepath"
	"testing"

	"repro/internal/rng"
)

func sourceTestEntries(n int, hours uint32) []Entry {
	r := rng.New(99)
	entries := make([]Entry, n)
	for i := range entries {
		start := uint32(r.Intn(int(hours)))
		entries[i] = Entry{
			Start:    start,
			Stop:     start + 1 + uint32(r.Intn(6)),
			Person:   uint32(r.Intn(500)),
			Activity: uint32(r.Intn(4)),
			Place:    uint32(r.Intn(40)),
		}
	}
	return entries
}

func writeSourceLog(t *testing.T, entries []Entry, cfg Config) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "src.h5l")
	l, err := Create(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := l.Log(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// sliceFilter is the reference semantics every source must match:
// entries overlapping [t0, t1), in log order.
func sliceFilter(entries []Entry, t0, t1 uint32) []Entry {
	var out []Entry
	for _, e := range entries {
		if e.Start < t1 && e.Stop > t0 {
			out = append(out, e)
		}
	}
	return out
}

func drain(t *testing.T, src EntrySource) []Entry {
	t.Helper()
	var out []Entry
	for {
		batch, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		// Batches are only valid until the next call: copy.
		out = append(out, batch...)
	}
	return out
}

func TestSliceSourceMatchesFilter(t *testing.T) {
	entries := sourceTestEntries(20000, 100)
	src := SliceSource(context.Background(), entries, 10, 40)
	got := drain(t, src)
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	want := sliceFilter(entries, 10, 40)
	if len(got) != len(want) {
		t.Fatalf("drained %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSliceSourceBatchesAreBounded(t *testing.T) {
	entries := sourceTestEntries(50000, 50)
	src := SliceSource(context.Background(), entries, 0, ^uint32(0))
	defer src.Close()
	batches := 0
	for {
		batch, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) > 8192 {
			t.Fatalf("batch of %d entries exceeds the documented bound", len(batch))
		}
		batches++
	}
	if batches < 2 {
		t.Fatalf("50000 entries drained in %d batch(es); expected streaming", batches)
	}
}

func TestReaderSourceMatchesTimeSlice(t *testing.T) {
	entries := sourceTestEntries(5000, 100)
	path := writeSourceLog(t, entries, Config{CacheEntries: 128})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, w := range [][2]uint32{{0, 100}, {25, 60}, {99, 100}, {200, 300}} {
		want, err := r.TimeSlice(w[0], w[1])
		if err != nil {
			t.Fatal(err)
		}
		src := r.Source(w[0], w[1])
		got := drain(t, src)
		src.Close()
		if len(got) != len(want) {
			t.Fatalf("window %v: source drained %d, TimeSlice %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("window %v entry %d: %+v != %+v", w, i, got[i], want[i])
			}
		}
	}
}

func TestOpenFilesSourceConcatenates(t *testing.T) {
	a := sourceTestEntries(700, 50)
	b := sourceTestEntries(300, 50)
	pa := writeSourceLog(t, a, Config{CacheEntries: 64})
	pb := writeSourceLog(t, b, Config{CacheEntries: 64, Compress: true})

	src := OpenFilesSource([]string{pa, pb}, 5, 30)
	got := drain(t, src)
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	want := append(sliceFilter(a, 5, 30), sliceFilter(b, 5, 30)...)
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestOpenFilesSourceMissingFile(t *testing.T) {
	src := OpenFilesSource([]string{filepath.Join(t.TempDir(), "absent.h5l")}, 0, 10)
	defer src.Close()
	if _, err := src.Next(); err == nil || err == io.EOF {
		t.Fatalf("missing file: err = %v, want open failure", err)
	}
}

func TestMultiSourceConcatenates(t *testing.T) {
	a := sourceTestEntries(100, 20)
	b := sourceTestEntries(50, 20)
	src := MultiSource(SliceSource(context.Background(), a, 0, 20), SliceSource(context.Background(), b, 0, 20))
	got := drain(t, src)
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	want := append(sliceFilter(a, 0, 20), sliceFilter(b, 0, 20)...)
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
}

func TestReadAllEmptySource(t *testing.T) {
	got, err := ReadAll(SliceSource(context.Background(), nil, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d entries from empty source", len(got))
	}
}

// TestTimeSliceDoesNotOverAllocate pins the satellite fix: slicing a
// narrow window out of a large log must not allocate capacity
// proportional to the whole file.
func TestTimeSliceDoesNotOverAllocate(t *testing.T) {
	const n = 40000
	r := rng.New(7)
	entries := make([]Entry, n)
	for i := range entries {
		start := uint32(r.Intn(400))
		entries[i] = Entry{Start: start, Stop: start + 1, Person: uint32(i), Place: uint32(r.Intn(16))}
	}
	path := writeSourceLog(t, entries, Config{CacheEntries: 1024})
	rd, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	got, err := rd.TimeSlice(100, 102)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("window unexpectedly empty")
	}
	if cap(got) >= n/4 {
		t.Fatalf("TimeSlice of %d entries allocated capacity %d (file has %d): over-allocation",
			len(got), cap(got), n)
	}
}
