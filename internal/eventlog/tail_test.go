package eventlog

import (
	"context"
	"errors"
	"io"
	"path/filepath"
	"testing"
	"time"
)

// fastPoll keeps the tail tests quick without busy-waiting.
const fastPoll = 2 * time.Millisecond

// drainAsync drains a source on a goroutine so the test can keep
// writing to the tailed file concurrently.
func drainAsync(src EntrySource) (<-chan []Entry, <-chan error) {
	out := make(chan []Entry, 1)
	errc := make(chan error, 1)
	go func() {
		var all []Entry
		for {
			batch, err := src.Next()
			if err == io.EOF {
				out <- all
				errc <- nil
				return
			}
			if err != nil {
				out <- all
				errc <- err
				return
			}
			all = append(all, batch...)
		}
	}()
	return out, errc
}

// TestTailClosedFile: over an already-closed log, a tail behaves like
// OpenSource — same entries, same order, EOF at the end.
func TestTailClosedFile(t *testing.T) {
	entries := sourceTestEntries(5000, 100)
	path := writeSourceLog(t, entries, Config{CacheEntries: 128})
	for _, w := range [][2]uint32{{0, 200}, {25, 60}, {300, 400}} {
		src := OpenTail(context.Background(), path, w[0], w[1], TailOptions{Poll: fastPoll})
		got := drain(t, src)
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
		want := sliceFilter(entries, w[0], w[1])
		if len(got) != len(want) {
			t.Fatalf("window %v: drained %d entries, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("window %v entry %d: %+v != %+v", w, i, got[i], want[i])
			}
		}
	}
}

// TestTailFollowsLiveWrites is the live contract: the tail is opened
// before the file exists, observes entries as flushes make them
// durable, and reports EOF only once the writer has closed the log
// with a valid footer.
func TestTailFollowsLiveWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.h5l")
	src := OpenTail(context.Background(), path, 0, ^uint32(0), TailOptions{Poll: fastPoll})
	defer src.Close()
	out, errc := drainAsync(src)

	entries := sourceTestEntries(900, 50)
	l, err := Create(path, Config{CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	third := len(entries) / 3
	for i, e := range entries {
		if err := l.Log(e); err != nil {
			t.Fatal(err)
		}
		// Two mid-file durability points, like a simulator's hourly
		// flushes; the tail must pick each up without a footer.
		if i == third || i == 2*third {
			if err := l.Flush(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(5 * fastPoll) // let the tail observe a mid-write state
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got := <-out
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("tailed %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
}

// TestTailCanceledWhileBlocked: cancelling the context unblocks a Next
// that is waiting for a file that never appears, and the error wraps
// (not is) context.Canceled, per the pipeline-wide contract.
func TestTailCanceledWhileBlocked(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	src := OpenTail(ctx, filepath.Join(t.TempDir(), "never.h5l"), 0, 100, TailOptions{Poll: time.Hour})
	defer src.Close()
	_, errc := drainAsync(src)

	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
		if err == context.Canceled {
			t.Fatal("bare context.Canceled; the tail must wrap it with its own context")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not unblock on cancellation")
	}
}

// TestTailCanceledBeforeNext: a pre-cancelled context fails the first
// Next immediately with the wrapped error, even over a complete file.
func TestTailCanceledBeforeNext(t *testing.T) {
	path := writeSourceLog(t, sourceTestEntries(10, 10), Config{CacheEntries: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := OpenTail(ctx, path, 0, 100, TailOptions{Poll: fastPoll})
	defer src.Close()
	_, err := src.Next()
	if !errors.Is(err, context.Canceled) || err == context.Canceled {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestSliceSourceCanceledWrapped pins the same contract for the
// in-memory source: cancellation surfaces as a wrapped (never bare)
// context error from Next.
func TestSliceSourceCanceledWrapped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := SliceSource(ctx, sourceTestEntries(10, 10), 0, 100)
	defer src.Close()
	_, err := src.Next()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if err == context.Canceled {
		t.Fatal("bare context.Canceled; SliceSource must wrap it")
	}
}
