// Crash recovery for event logs.
//
// A rank killed mid-run (node failure, OOM kill, wall-clock limit)
// leaves its log without the chunk index that h5.Writer.Close writes.
// Resume reopens such a file via the h5 salvage scanner, truncates the
// torn tail, and returns a Logger that continues appending — so a killed
// simulation loses at most one cache-worth of entries (the paper's cache
// tradeoff, Sec. III, gains a durability axis: a larger cache now also
// means a larger crash-loss window).
//
// ResumeBefore additionally trims a suffix of recovered entries chosen
// by a predicate. Deterministic re-simulation uses it to cut the log at
// a simulation-hour boundary so the rerun can regenerate exactly the
// missing entries without duplicating the survivors (see abm.ResumeRank).
package eventlog

import (
	"fmt"

	"repro/internal/h5"
)

// ResumeInfo reports what Resume salvaged.
type ResumeInfo struct {
	// RecoveredEntries is the number of entries preserved in the
	// resumed log (including entries of a partially-kept chunk that
	// were re-staged into the cache).
	RecoveredEntries uint64
	// DroppedEntries counts intact entries removed by a ResumeBefore
	// predicate (zero for plain Resume).
	DroppedEntries uint64
	// Chunks is the number of intact chunks found on disk.
	Chunks int
	// Complete reports whether the file had a valid footer — i.e. the
	// previous run closed cleanly and nothing was lost.
	Complete bool
	// TruncatedBytes is the torn tail discarded by the salvage.
	TruncatedBytes int64
	// MaxStop is the largest Stop hour among recovered entries (zero
	// when none were recovered).
	MaxStop uint32
}

// Resume reopens a (possibly crashed) log file and returns a Logger that
// appends after the longest intact chunk prefix. The configuration must
// match the one the file was created with; mismatches are rejected
// rather than silently corrupting the record layout.
func Resume(path string, cfg Config) (*Logger, *ResumeInfo, error) {
	return resume(path, cfg, nil)
}

// ResumeBefore is Resume plus a boundary trim: the maximal suffix of
// recovered entries for which drop returns true is discarded before
// appending resumes. The log's entries must be ordered so that the
// entries to drop form a suffix (event logs are written in nondecreasing
// Stop order, so predicates of the form Stop >= M qualify).
func ResumeBefore(path string, cfg Config, drop func(e Entry, ext []uint32) bool) (*Logger, *ResumeInfo, error) {
	if drop == nil {
		return nil, nil, fmt.Errorf("eventlog: ResumeBefore requires a predicate")
	}
	return resume(path, cfg, drop)
}

// Inspect runs the salvage scan without modifying the file and reports
// what Resume would recover. MaxStop is the key output for computing a
// cross-rank resume boundary.
func Inspect(path string) (*ResumeInfo, error) {
	sal, err := h5.Recover(path)
	if err != nil {
		return nil, err
	}
	if err := checkSalvageSchema(sal, nil); err != nil {
		return nil, err
	}
	info := &ResumeInfo{
		RecoveredEntries: sal.Records(),
		Chunks:           sal.Chunks(),
		Complete:         sal.Complete(),
		TruncatedBytes:   sal.TruncatedBytes(),
	}
	rd, err := sal.Reader()
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	err = forEachSalvaged(rd, func(e Entry, _ []uint32) error {
		if e.Stop > info.MaxStop {
			info.MaxStop = e.Stop
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return info, nil
}

func resume(path string, cfg Config, drop func(Entry, []uint32) bool) (*Logger, *ResumeInfo, error) {
	sal, err := h5.Recover(path)
	if err != nil {
		return nil, nil, err
	}
	if err := checkSalvageSchema(sal, &cfg); err != nil {
		return nil, nil, err
	}

	info := &ResumeInfo{
		Chunks:         sal.Chunks(),
		Complete:       sal.Complete(),
		TruncatedBytes: sal.TruncatedBytes(),
	}

	// Scan every salvaged entry: validates payload decoding end to end,
	// finds the trim boundary, and computes MaxStop.
	rd, err := sal.Reader()
	if err != nil {
		return nil, nil, err
	}
	rec := sal.Schema().RecordSize
	total := int(sal.Records())
	// cut is the index just past the last entry to KEEP: entries in
	// [cut, total) form the maximal suffix with drop == true.
	cut := total
	type kept struct {
		e   Entry
		ext []uint32
	}
	chunkOfEntry := make([]int, 0, total) // chunk index of each entry
	err = rd.ForEachChunk(func(chunk int, payload []byte) error {
		for off := 0; off < len(payload); off += rec {
			chunkOfEntry = append(chunkOfEntry, chunk)
		}
		return nil
	})
	if err != nil {
		rd.Close()
		return nil, nil, fmt.Errorf("eventlog: salvage scan: %w", err)
	}
	entries := make([]kept, 0, total)
	if err := forEachSalvaged(rd, func(e Entry, ext []uint32) error {
		entries = append(entries, kept{e: e, ext: append([]uint32(nil), ext...)})
		return nil
	}); err != nil {
		rd.Close()
		return nil, nil, fmt.Errorf("eventlog: salvage scan: %w", err)
	}
	rd.Close()
	if drop != nil {
		for cut > 0 && drop(entries[cut-1].e, entries[cut-1].ext) {
			cut--
		}
	}

	// keepChunks = chunks whose entries all fall below the cut.
	keepChunks := sal.Chunks()
	if cut < total {
		keepChunks = chunkOfEntry[cut] // first affected chunk is rewritten
	}
	// Entries of the boundary chunk that survive the cut get re-staged
	// through the cache.
	var restage []kept
	if cut < total {
		for i := cut - 1; i >= 0 && chunkOfEntry[i] == keepChunks; i-- {
			restage = append(restage, entries[i])
		}
		// reverse to restore order
		for i, j := 0, len(restage)-1; i < j; i, j = i+1, j-1 {
			restage[i], restage[j] = restage[j], restage[i]
		}
	}

	w, err := sal.Resume(keepChunks)
	if err != nil {
		return nil, nil, err
	}
	var fullyKept uint64
	for i := 0; i < cut; i++ {
		if chunkOfEntry[i] < keepChunks {
			fullyKept++
		}
	}
	l := &Logger{
		w:      w,
		cfg:    cfg,
		rec:    rec,
		cache:  make([]byte, 0, cfg.cacheEntries()*rec),
		logged: fullyKept,
	}
	for _, k := range restage {
		if err := l.Log(k.e, k.ext...); err != nil {
			l.w.Close()
			return nil, nil, err
		}
	}
	info.RecoveredEntries = uint64(cut)
	info.DroppedEntries = uint64(total - cut)
	for i := 0; i < cut; i++ {
		if s := entries[i].e.Stop; s > info.MaxStop {
			info.MaxStop = s
		}
	}
	return l, info, nil
}

// checkSalvageSchema verifies the salvaged file is an event log and, when
// cfg is non-nil, that it matches the logger configuration.
func checkSalvageSchema(sal *h5.Salvage, cfg *Config) error {
	s := sal.Schema()
	if s.RecordSize < BaseEntrySize || s.RecordSize%4 != 0 {
		return fmt.Errorf("eventlog: record size %d is not a valid entry size", s.RecordSize)
	}
	if len(s.Columns) < len(BaseColumns) {
		return fmt.Errorf("eventlog: file has %d columns, want at least %d", len(s.Columns), len(BaseColumns))
	}
	for i, c := range BaseColumns {
		if s.Columns[i] != c {
			return fmt.Errorf("eventlog: column %d is %q, want %q", i, s.Columns[i], c)
		}
	}
	if cfg == nil {
		return nil
	}
	want := cfg.schema()
	if s.RecordSize != want.RecordSize {
		return fmt.Errorf("eventlog: resume config has record size %d, file has %d", want.RecordSize, s.RecordSize)
	}
	if len(s.Columns) != len(want.Columns) {
		return fmt.Errorf("eventlog: resume config has %d columns, file has %d", len(want.Columns), len(s.Columns))
	}
	for i := range want.Columns {
		if s.Columns[i] != want.Columns[i] {
			return fmt.Errorf("eventlog: resume column %d is %q, config says %q", i, s.Columns[i], want.Columns[i])
		}
	}
	if sal.Flags() != cfg.flags() {
		return fmt.Errorf("eventlog: resume config flags %#x, file flags %#x", cfg.flags(), sal.Flags())
	}
	return nil
}

// forEachSalvaged decodes every entry of a salvaged reader in order.
func forEachSalvaged(rd *h5.Reader, fn func(e Entry, ext []uint32) error) error {
	rec := rd.Schema().RecordSize
	next := rec/4 - 5
	ext := make([]uint32, next)
	return rd.ForEachChunk(func(_ int, payload []byte) error {
		for off := 0; off < len(payload); off += rec {
			b := payload[off : off+rec]
			e := decodeEntry(b)
			for k := 0; k < next; k++ {
				ext[k] = le.Uint32(b[20+4*k:])
			}
			if err := fn(e, ext); err != nil {
				return err
			}
		}
		return nil
	})
}
