package eventlog

// Live tailing of event logs.
//
// A batch pipeline replays closed log files; a streaming pipeline must
// consume a log *while the simulation is still appending to it*. Tail
// turns a (possibly not-yet-existing) log path into an EntrySource that
// blocks in Next until new durable chunks appear, yields them, and
// returns io.EOF only once the writer has closed the file (valid
// footer). It reuses the crash-recovery machinery's chunk validation —
// every yielded chunk passed the same structural/CRC/deflate checks as
// a salvage scan — and h5.RecoverFrom's byte cursor so each poll costs
// O(new data), not O(file).
//
// Torn tails are safe by construction: the logger appends sequentially
// to an os.File, so the file size only covers fully-written bytes, and
// scanChunks refuses any chunk whose declared stride overruns the
// current size. A chunk mid-write is simply not yielded until its last
// byte (and CRC trailer, when enabled) is on disk; the next poll picks
// it up.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"time"

	"repro/internal/h5"
	"repro/internal/telemetry"
)

// DefaultTailPoll is the poll interval used when TailOptions.Poll is
// zero.
const DefaultTailPoll = 200 * time.Millisecond

// mTailStalenessMs is the time since the polling tail last observed new
// durable bytes — the front end of the end-to-end freshness chain (log
// staleness → window close → publish → serve). Tails sharing a registry
// overwrite each other at poll cadence, so the gauge reads as "how
// stale is what the follower is currently waiting on": near the flush
// cadence when healthy, climbing monotonically when the writer stalls.
var mTailStalenessMs = telemetry.G("eventlog_tail_staleness_ms")

// TailOptions configures OpenTail.
type TailOptions struct {
	// Poll is the interval between growth checks while the tail is
	// waiting for the file to appear or to grow. Zero means
	// DefaultTailPoll.
	Poll time.Duration
}

// tailSource tails one growing log file.
type tailSource struct {
	ctx    context.Context
	path   string
	t0, t1 uint32
	poll   time.Duration

	pos        int64      // h5 salvage byte cursor (Salvage.End)
	rd         *h5.Reader // reader over the most recent batch of new chunks
	rec        int        // record size, learned from the first salvage
	chunk      int        // next chunk to decode within rd
	done       bool       // writer closed the file (valid footer)
	buf        []Entry
	closed     bool
	lastGrowth time.Time // when the cursor last advanced (staleness gauge)
}

// OpenTail returns an EntrySource that follows the log file at path as
// it is written, yielding entries whose activity interval overlaps
// [t0, t1). The file need not exist yet — the source waits for it.
// Next blocks (polling at opts.Poll) until a new durable chunk is
// available, the file gains a valid footer (then io.EOF after the last
// entries), or ctx is done (then an error wrapping ctx.Err()).
//
// Entries are yielded in chunk order, i.e. in the nondecreasing-Stop
// order the simulation logged them — the property window-close logic in
// the streaming synthesizer depends on.
func OpenTail(ctx context.Context, path string, t0, t1 uint32, opts TailOptions) EntrySource {
	poll := opts.Poll
	if poll <= 0 {
		poll = DefaultTailPoll
	}
	return &tailSource{ctx: ctx, path: path, t0: t0, t1: t1, poll: poll}
}

func (s *tailSource) Next() ([]Entry, error) {
	if s.closed {
		return nil, io.EOF
	}
	for {
		if err := s.ctx.Err(); err != nil {
			return nil, fmt.Errorf("eventlog: tail %s: %w", s.path, err)
		}
		// Drain the reader over the chunks the last poll validated.
		if s.rd != nil {
			for s.chunk < s.rd.NumChunks() {
				payload, err := s.rd.ReadChunk(s.chunk)
				if err != nil {
					return nil, fmt.Errorf("eventlog: tail %s: %w", s.path, err)
				}
				s.chunk++
				s.buf = s.buf[:0]
				for off := 0; off < len(payload); off += s.rec {
					e := decodeEntry(payload[off:])
					if e.Start < s.t1 && e.Stop > s.t0 {
						s.buf = append(s.buf, e)
					}
				}
				if len(s.buf) > 0 {
					return s.buf, nil
				}
			}
			s.rd.Close()
			s.rd = nil
		}
		if s.done {
			s.closed = true
			return nil, io.EOF
		}
		// Poll for growth past the cursor.
		if s.lastGrowth.IsZero() {
			s.lastGrowth = time.Now()
		}
		sal, err := h5.RecoverFrom(s.path, s.pos)
		if err == nil && sal.End() > s.pos {
			s.lastGrowth = time.Now()
		}
		mTailStalenessMs.Set(time.Since(s.lastGrowth).Milliseconds())
		switch {
		case err == nil:
			if serr := checkSalvageSchema(sal, nil); serr != nil {
				return nil, fmt.Errorf("eventlog: tail %s: %w", s.path, serr)
			}
			s.done = sal.Complete()
			if sal.Chunks() > 0 {
				rd, rerr := sal.Reader()
				if rerr != nil {
					return nil, fmt.Errorf("eventlog: tail %s: %w", s.path, rerr)
				}
				s.rd, s.chunk = rd, 0
				s.rec = sal.Schema().RecordSize
				s.pos = sal.End()
				continue
			}
			s.pos = sal.End()
			if s.done {
				continue // footer appeared with no new chunks: EOF
			}
		case errors.Is(err, fs.ErrNotExist):
			// Not created yet; keep waiting.
		default:
			// The header is written in one shot at Create, so a header
			// that does not parse is an in-flight creation (or a crash
			// artifact about to be resumed) — transient either way.
		}
		select {
		case <-s.ctx.Done():
			return nil, fmt.Errorf("eventlog: tail %s: %w", s.path, s.ctx.Err())
		case <-time.After(s.poll):
		}
	}
}

func (s *tailSource) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.buf = nil
	if s.rd != nil {
		err := s.rd.Close()
		s.rd = nil
		return err
	}
	return nil
}

// OpenTails returns one tailing EntrySource per path, all sharing ctx
// and opts. It is the multi-rank companion of OpenTail: one source per
// rank log of a running simulation.
func OpenTails(ctx context.Context, paths []string, t0, t1 uint32, opts TailOptions) []EntrySource {
	srcs := make([]EntrySource, len(paths))
	for i, p := range paths {
		srcs[i] = OpenTail(ctx, p, t0, t1, opts)
	}
	return srcs
}
