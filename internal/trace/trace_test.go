package trace

import (
	"context"
	"testing"

	"repro/internal/abm"
	"repro/internal/disease"
	"repro/internal/eventlog"
	"repro/internal/schedule"
	"repro/internal/synthpop"
)

func TestContactsBasic(t *testing.T) {
	// Persons 1 and 2 share place 7 during [3,6); person 3 elsewhere.
	entries := []eventlog.Entry{
		{Start: 0, Stop: 6, Person: 1, Place: 7},
		{Start: 3, Stop: 10, Person: 2, Place: 7},
		{Start: 0, Stop: 10, Person: 3, Place: 8},
	}
	ix := NewIndex(entries)
	cs := ix.Contacts(1, 0, 24)
	if len(cs) != 1 {
		t.Fatalf("contacts = %v, want 1", cs)
	}
	if cs[0].Person != 2 || cs[0].Hours != 3 || cs[0].FirstHour != 3 || cs[0].Place != 7 {
		t.Fatalf("contact = %+v", cs[0])
	}
}

func TestContactsWindowClipping(t *testing.T) {
	entries := []eventlog.Entry{
		{Start: 0, Stop: 10, Person: 1, Place: 7},
		{Start: 0, Stop: 10, Person: 2, Place: 7},
	}
	ix := NewIndex(entries)
	cs := ix.Contacts(1, 4, 6)
	if len(cs) != 1 || cs[0].Hours != 2 {
		t.Fatalf("clipped contacts = %v", cs)
	}
	if cs := ix.Contacts(1, 20, 30); len(cs) != 0 {
		t.Fatalf("out-of-window contacts = %v", cs)
	}
}

func TestContactsAccumulateAcrossPlaces(t *testing.T) {
	entries := []eventlog.Entry{
		{Start: 0, Stop: 2, Person: 1, Place: 7},
		{Start: 0, Stop: 2, Person: 2, Place: 7},
		{Start: 5, Stop: 8, Person: 1, Place: 9},
		{Start: 5, Stop: 8, Person: 2, Place: 9},
	}
	ix := NewIndex(entries)
	cs := ix.Contacts(1, 0, 24)
	if len(cs) != 1 || cs[0].Hours != 5 {
		t.Fatalf("multi-place contact = %v", cs)
	}
	if cs[0].FirstHour != 0 || cs[0].Place != 7 {
		t.Fatalf("first contact attribution wrong: %+v", cs[0])
	}
}

func TestContactsSortedByHours(t *testing.T) {
	entries := []eventlog.Entry{
		{Start: 0, Stop: 10, Person: 1, Place: 7},
		{Start: 0, Stop: 2, Person: 2, Place: 7},
		{Start: 0, Stop: 9, Person: 3, Place: 7},
	}
	ix := NewIndex(entries)
	cs := ix.Contacts(1, 0, 24)
	if len(cs) != 2 || cs[0].Person != 3 || cs[1].Person != 2 {
		t.Fatalf("ordering = %v", cs)
	}
}

func TestContactsAt(t *testing.T) {
	entries := []eventlog.Entry{
		{Start: 0, Stop: 10, Person: 1, Place: 7},
		{Start: 5, Stop: 6, Person: 2, Place: 7},
		{Start: 6, Stop: 7, Person: 3, Place: 7},
	}
	ix := NewIndex(entries)
	got := ix.ContactsAt(1, 5)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("ContactsAt(5) = %v", got)
	}
}

func TestTraceToPatientZeroSyntheticChain(t *testing.T) {
	// 0 infects 1 at hour 10 (shared place A), 1 infects 2 at hour 30
	// (shared place B).
	entries := []eventlog.Entry{
		{Start: 8, Stop: 12, Person: 0, Place: 100},
		{Start: 9, Stop: 12, Person: 1, Place: 100},
		{Start: 28, Stop: 32, Person: 1, Place: 200},
		{Start: 29, Stop: 33, Person: 2, Place: 200},
	}
	ix := NewIndex(entries)
	exposedAt := map[uint32]uint32{0: 0, 1: 10, 2: 30}
	chain, err := TraceToPatientZero(ix, exposedAt, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{2, 1, 0}
	if len(chain) != 3 {
		t.Fatalf("chain = %v, want %v", chain, want)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
}

func TestTraceRejectsUninfected(t *testing.T) {
	ix := NewIndex(nil)
	if _, err := TraceToPatientZero(ix, map[uint32]uint32{}, 1, 5); err == nil {
		t.Fatal("uninfected person accepted")
	}
}

func TestTraceIncubationFilter(t *testing.T) {
	// Person 1 and 2 collocated at hour 10; 2 exposed at hour 9 — too
	// recent to be infectious with incubation 4 → chain stops at 1.
	entries := []eventlog.Entry{
		{Start: 8, Stop: 12, Person: 1, Place: 100},
		{Start: 8, Stop: 12, Person: 2, Place: 100},
	}
	ix := NewIndex(entries)
	chain, err := TraceToPatientZero(ix, map[uint32]uint32{1: 10, 2: 9}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0] != 1 {
		t.Fatalf("chain = %v, want just [1]", chain)
	}
}

// End-to-end: run an epidemic over the ABM with disease-state logging,
// rebuild the chain from the logs alone, and validate every hop against
// the model's ground truth contacts.
func TestEndToEndLogTraceback(t *testing.T) {
	pop, err := synthpop.Generate(synthpop.Config{Persons: 1500, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, 33)
	m := disease.New(pop.NumPersons(), disease.Config{
		Beta: 0.06, IncubationHours: 24, InfectiousHours: 96, Seed: 33,
	})
	m.SeedCase(11)
	res, err := abm.Run(context.Background(), abm.Config{
		Pop: pop, Gen: gen, Ranks: 4, Days: 8,
		LogDir:   t.TempDir(),
		Log:      eventlog.Config{ExtColumns: []string{"disease"}},
		Interact: m.Hook(),
		LogExt: func(person, _ uint32) []uint32 {
			return []uint32{uint32(m.State(person))}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalInfections() < 5 {
		t.Skip("epidemic fizzled at this seed; nothing to trace")
	}

	ix, err := FromFiles(res.LogPaths)
	if err != nil {
		t.Fatal(err)
	}
	// Exposure hours from the model (an analyst would read these from
	// the disease-state column transitions; the model is the oracle
	// here).
	exposedAt := make(map[uint32]uint32)
	for p := uint32(0); p < uint32(pop.NumPersons()); p++ {
		if m.State(p) != disease.Susceptible {
			exposedAt[p] = m.ExposedAt(p)
		}
	}

	// Pick a late case and trace it.
	var last uint32
	for p, h := range exposedAt {
		if h > exposedAt[last] {
			last = p
		}
	}
	chain, err := TraceToPatientZero(ix, exposedAt, 24, last)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) < 2 {
		t.Fatalf("no chain reconstructed for person %d", last)
	}
	if chain[len(chain)-1] != 11 {
		t.Fatalf("log trace ended at %d, want patient zero 11 (chain %v)", chain[len(chain)-1], chain)
	}
	// Every hop must be a genuine collocation at the infectee's exposure
	// hour.
	for i := 0; i+1 < len(chain); i++ {
		infectee, infector := chain[i], chain[i+1]
		hour := exposedAt[infectee]
		found := false
		for _, c := range ix.ContactsAt(infectee, hour) {
			if c == infector {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("hop %d→%d not supported by logs at hour %d", infectee, infector, hour)
		}
	}
}

// The disease-state ext column must round-trip through the log files.
func TestDiseaseStateColumnLogged(t *testing.T) {
	pop, err := synthpop.Generate(synthpop.Config{Persons: 400, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	gen := schedule.NewGenerator(pop, 44)
	m := disease.New(pop.NumPersons(), disease.Config{Beta: 0.05, IncubationHours: 12, InfectiousHours: 48, Seed: 44})
	m.SeedCase(0)
	res, err := abm.Run(context.Background(), abm.Config{
		Pop: pop, Gen: gen, Ranks: 2, Days: 3,
		LogDir:   t.TempDir(),
		Log:      eventlog.Config{ExtColumns: []string{"disease"}},
		Interact: m.Hook(),
		LogExt:   func(person, _ uint32) []uint32 { return []uint32{uint32(m.State(person))} },
	})
	if err != nil {
		t.Fatal(err)
	}
	states := make(map[uint32]bool)
	for _, p := range res.LogPaths {
		r, err := eventlog.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		if cols := r.ExtColumns(); len(cols) != 1 || cols[0] != "disease" {
			t.Fatalf("ext columns = %v", cols)
		}
		err = r.ForEach(func(e eventlog.Entry, ext []uint32) error {
			states[ext[0]] = true
			return nil
		})
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if !states[uint32(disease.Susceptible)] {
		t.Fatal("no susceptible states logged")
	}
	if len(states) < 2 {
		t.Fatalf("only states %v logged; expected disease progression visible", states)
	}
}
