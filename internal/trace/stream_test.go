package trace

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/eventlog"
)

func streamTestEntries() []eventlog.Entry {
	return []eventlog.Entry{
		{Start: 0, Stop: 5, Person: 1, Place: 10},
		{Start: 1, Stop: 4, Person: 2, Place: 10},
		{Start: 3, Stop: 8, Person: 3, Place: 10},
		{Start: 6, Stop: 9, Person: 1, Place: 11},
		{Start: 6, Stop: 9, Person: 4, Place: 11},
		{Start: 20, Stop: 24, Person: 1, Place: 12},
		{Start: 21, Stop: 23, Person: 5, Place: 12},
	}
}

func writeTraceLog(t *testing.T, entries []eventlog.Entry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.h5l")
	l, err := eventlog.Create(path, eventlog.Config{CacheEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := l.Log(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestNewIndexFromReaderMatchesNewIndex: the streaming constructor must
// answer queries identically to the materialize-everything one.
func TestNewIndexFromReaderMatchesNewIndex(t *testing.T) {
	entries := streamTestEntries()
	path := writeTraceLog(t, entries)

	want := NewIndex(entries)

	r, err := eventlog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := NewIndexFromReader(r, 0, ^uint32(0))
	if err != nil {
		t.Fatal(err)
	}

	for _, person := range []uint32{1, 2, 3, 4, 5} {
		cw := want.Contacts(person, 0, 24)
		cg := got.Contacts(person, 0, 24)
		if !reflect.DeepEqual(cw, cg) {
			t.Fatalf("person %d: streaming contacts %+v, in-memory %+v", person, cg, cw)
		}
	}
}

// TestNewIndexFromReaderWindow: the [t0, t1) window restricts which
// entries are indexed.
func TestNewIndexFromReaderWindow(t *testing.T) {
	path := writeTraceLog(t, streamTestEntries())
	r, err := eventlog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ix, err := NewIndexFromReader(r, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Person 1's place-12 stay starts at hour 20, outside the window.
	if got := ix.Entries(1, 0, ^uint32(0)); len(got) != 2 {
		t.Fatalf("windowed index holds %d entries for person 1, want 2", len(got))
	}
	if cs := ix.Contacts(1, 0, 24); len(cs) != 3 {
		t.Fatalf("windowed contacts = %d, want 3 (persons 2, 3, 4)", len(cs))
	}
}

// TestNewIndexFromSourceMatchesFromFiles: FromFiles streams via the
// same path; both must agree with the slice-based constructor.
func TestNewIndexFromSourceMatchesFromFiles(t *testing.T) {
	entries := streamTestEntries()
	path := writeTraceLog(t, entries)

	ix, err := FromFiles([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	src := eventlog.SliceSource(context.Background(), entries, 0, ^uint32(0))
	defer src.Close()
	ix2, err := NewIndexFromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	want := NewIndex(entries)
	for _, person := range []uint32{1, 3, 5} {
		a := want.Contacts(person, 0, 24)
		b := ix.Contacts(person, 0, 24)
		c := ix2.Contacts(person, 0, 24)
		if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
			t.Fatalf("person %d: constructors disagree: %+v / %+v / %+v", person, a, b, c)
		}
	}
}
