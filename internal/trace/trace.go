// Package trace reconstructs agent contact histories from simulation
// event logs — the application the paper gives for its logging framework
// (Section II): "the log can be used to reconstruct all the agents that
// an agent had contact with over the course of an epidemic simulation,
// and used to trace back to patient zero, the agent who initiated the
// disease outbreak."
//
// Unlike package disease (which holds the epidemic ground truth in
// memory), everything here is computed purely from log entries, i.e.
// from what an analyst would actually have on disk after a run.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/eventlog"
)

// Contact summarizes one person's collocation with another during a
// query window.
type Contact struct {
	Person uint32
	// Hours is the number of shared place-hours in the window.
	Hours uint32
	// FirstHour is the earliest shared hour.
	FirstHour uint32
	// Place is the place of the earliest shared hour.
	Place uint32
}

// Index answers collocation queries over a set of log entries.
type Index struct {
	byPerson map[uint32][]eventlog.Entry
	byPlace  map[uint32][]eventlog.Entry
}

// NewIndex builds an index over already-materialized entries.
//
// Deprecated-style note: callers holding a log file (or a time window of
// one) should prefer NewIndexFromSource or NewIndexFromReader, which
// stream entries batch-by-batch into the index instead of requiring the
// whole []Entry slice up front. NewIndex remains for in-memory entry
// sets (e.g. test fixtures).
func NewIndex(entries []eventlog.Entry) *Index {
	ix := newEmptyIndex()
	ix.addAll(entries)
	ix.finish()
	return ix
}

func newEmptyIndex() *Index {
	return &Index{
		byPerson: make(map[uint32][]eventlog.Entry),
		byPlace:  make(map[uint32][]eventlog.Entry),
	}
}

func (ix *Index) addAll(entries []eventlog.Entry) {
	for _, e := range entries {
		ix.byPerson[e.Person] = append(ix.byPerson[e.Person], e)
		ix.byPlace[e.Place] = append(ix.byPlace[e.Place], e)
	}
}

// finish sorts the per-person and per-place posting lists; the index is
// queryable only after finish.
func (ix *Index) finish() {
	for _, es := range ix.byPerson {
		sort.Slice(es, func(i, j int) bool { return es[i].Start < es[j].Start })
	}
	for _, es := range ix.byPlace {
		sort.Slice(es, func(i, j int) bool { return es[i].Start < es[j].Start })
	}
}

// NewIndexFromSource builds an index by draining src batch-by-batch, so
// the caller never materializes the full entry slice; transient memory
// is one source batch plus the index itself. The source is not closed.
func NewIndexFromSource(src eventlog.EntrySource) (*Index, error) {
	ix := newEmptyIndex()
	for {
		batch, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		ix.addAll(batch)
	}
	ix.finish()
	return ix, nil
}

// NewIndexFromReader builds an index over the [t0, t1) slice of an open
// log file without materializing the slice first. Pass t0=0,
// t1=^uint32(0) to index the whole file.
func NewIndexFromReader(r *eventlog.Reader, t0, t1 uint32) (*Index, error) {
	src := r.Source(t0, t1)
	defer src.Close()
	return NewIndexFromSource(src)
}

// FromFiles builds an index over all entries of the given log files,
// streaming one chunk at a time.
func FromFiles(paths []string) (*Index, error) {
	src := eventlog.OpenFilesSource(paths, 0, ^uint32(0))
	defer src.Close()
	return NewIndexFromSource(src)
}

// Entries returns person's log entries overlapping [t0, t1), in start
// order.
func (ix *Index) Entries(person, t0, t1 uint32) []eventlog.Entry {
	var out []eventlog.Entry
	for _, e := range ix.byPerson[person] {
		if e.Start < t1 && e.Stop > t0 {
			out = append(out, e)
		}
	}
	return out
}

// Contacts returns everyone who shared a place-hour with person during
// [t0, t1), with shared-hour counts, sorted by decreasing Hours then
// increasing person ID. This is the paper's "reconstruct all the agents
// that an agent had contact with" query.
func (ix *Index) Contacts(person, t0, t1 uint32) []Contact {
	type acc struct {
		hours     uint32
		firstHour uint32
		place     uint32
	}
	found := make(map[uint32]*acc)
	for _, mine := range ix.Entries(person, t0, t1) {
		lo, hi := maxU32(mine.Start, t0), minU32(mine.Stop, t1)
		for _, other := range ix.byPlace[mine.Place] {
			if other.Person == person {
				continue
			}
			s, e := maxU32(other.Start, lo), minU32(other.Stop, hi)
			if s >= e {
				continue
			}
			a := found[other.Person]
			if a == nil {
				a = &acc{firstHour: s, place: mine.Place}
				found[other.Person] = a
			}
			a.hours += e - s
			if s < a.firstHour {
				a.firstHour = s
				a.place = mine.Place
			}
		}
	}
	out := make([]Contact, 0, len(found))
	for p, a := range found {
		out = append(out, Contact{Person: p, Hours: a.hours, FirstHour: a.firstHour, Place: a.place})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hours != out[j].Hours {
			return out[i].Hours > out[j].Hours
		}
		return out[i].Person < out[j].Person
	})
	return out
}

// ContactsAt returns the persons sharing a place with person during the
// single hour h, sorted by ID.
func (ix *Index) ContactsAt(person, h uint32) []uint32 {
	seen := make(map[uint32]struct{})
	for _, c := range ix.Contacts(person, h, h+1) {
		seen[c.Person] = struct{}{}
	}
	out := make([]uint32, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// TraceToPatientZero reconstructs an infection chain from logs alone:
// given each infected person's exposure hour (as recovered e.g. from a
// disease-state log column), it walks backwards from `from`, at each
// step selecting among the contacts present at the exposure hour those
// who were already infectious (exposed at least incubation hours
// earlier), preferring the earliest-exposed candidate. The walk ends at
// a person with no earlier-exposed contact — patient zero.
//
// exposedAt must contain every infected person; persons absent from the
// map are treated as never infected.
func TraceToPatientZero(ix *Index, exposedAt map[uint32]uint32, incubation uint32, from uint32) ([]uint32, error) {
	if _, ok := exposedAt[from]; !ok {
		return nil, fmt.Errorf("trace: person %d was never infected", from)
	}
	chain := []uint32{from}
	seen := map[uint32]bool{from: true}
	cur := from
	for {
		hour := exposedAt[cur]
		// Tier 1: contacts whose exposure predates `hour` by at least
		// the incubation period (plausibly infectious). Tier 2, only
		// within the first incubation window of the run: any strictly
		// earlier-exposed contact — infections that early can only come
		// from index cases, which are seeded directly infectious and
		// would fail the incubation test.
		var best uint32
		bestExposed := uint32(0)
		bestTier := 0
		for _, p := range ix.ContactsAt(cur, hour) {
			pe, infected := exposedAt[p]
			if !infected || seen[p] || pe >= hour {
				continue
			}
			tier := 0
			switch {
			case pe+incubation <= hour:
				tier = 1
			case hour < incubation:
				tier = 2
			default:
				continue
			}
			better := bestTier == 0 ||
				tier < bestTier ||
				(tier == bestTier && (pe < bestExposed || (pe == bestExposed && p < best)))
			if better {
				best, bestExposed, bestTier = p, pe, tier
			}
		}
		if bestTier == 0 {
			return chain, nil
		}
		seen[best] = true
		chain = append(chain, best)
		cur = best
	}
}
