package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteGraphML serializes the graph in GraphML, the format the paper's
// workflow passes from igraph to Gephi. Node ids are "n<index>"; when
// origIDs is non-nil it must have one entry per vertex and is emitted as
// a "person" attribute (the original person ID of an induced subgraph).
// Degree is emitted per node and weight per edge, which is what Gephi's
// appearance/layout settings consume.
func (g *Graph) WriteGraphML(w io.Writer, origIDs []uint32) error {
	if origIDs != nil && len(origIDs) != g.NumVertices() {
		return fmt.Errorf("graph: %d orig IDs for %d vertices", len(origIDs), g.NumVertices())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, `<?xml version="1.0" encoding="UTF-8"?>`)
	fmt.Fprintln(bw, `<graphml xmlns="http://graphml.graphdrawing.org/xmlns">`)
	fmt.Fprintln(bw, `  <key id="person" for="node" attr.name="person" attr.type="long"/>`)
	fmt.Fprintln(bw, `  <key id="degree" for="node" attr.name="degree" attr.type="int"/>`)
	fmt.Fprintln(bw, `  <key id="weight" for="edge" attr.name="weight" attr.type="int"/>`)
	fmt.Fprintln(bw, `  <graph edgedefault="undirected">`)
	for v := 0; v < g.NumVertices(); v++ {
		person := uint32(v)
		if origIDs != nil {
			person = origIDs[v]
		}
		fmt.Fprintf(bw, "    <node id=\"n%d\"><data key=\"person\">%d</data><data key=\"degree\">%d</data></node>\n",
			v, person, g.Degree(uint32(v)))
	}
	edge := 0
	for v := 0; v < g.NumVertices(); v++ {
		row, wts := g.Neighbors(uint32(v))
		for k, u := range row {
			if u <= uint32(v) {
				continue
			}
			fmt.Fprintf(bw, "    <edge id=\"e%d\" source=\"n%d\" target=\"n%d\"><data key=\"weight\">%d</data></edge>\n",
				edge, v, u, wts[k])
			edge++
		}
	}
	fmt.Fprintln(bw, `  </graph>`)
	fmt.Fprintln(bw, `</graphml>`)
	return bw.Flush()
}
