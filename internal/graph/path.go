package graph

import "container/heap"

// ShortestPathBFS returns a minimum-hop path from src to dst (inclusive
// of both endpoints) via breadth-first search, and whether one exists.
// A vertex's path to itself is [src].
func (g *Graph) ShortestPathBFS(src, dst uint32) ([]uint32, bool) {
	return g.ShortestPathBFSScratch(src, dst, &PathScratch{})
}

// PathScratch holds the reusable state of a BFS shortest-path search.
// A zero PathScratch is ready; arrays grow to NumVertices on first use
// and subsequent searches reuse them without re-zeroing (visited marks
// are epoch-stamped), so a pooled scratch makes repeated path queries
// allocation-free apart from the returned path itself.
type PathScratch struct {
	parent []uint32
	stamp  []uint32
	queue  []uint32
	epoch  uint32
}

// grow sizes the scratch for an n-vertex graph and opens a new epoch.
func (s *PathScratch) grow(n int) {
	if len(s.parent) < n {
		s.parent = make([]uint32, n)
		s.stamp = make([]uint32, n)
	}
	s.epoch++
	if s.epoch == 0 { // stamp wraparound: re-zero once every 2^32 searches
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
}

// ShortestPathBFSScratch is ShortestPathBFS with caller-owned scratch
// state — the allocation-free variant for hot callers.
func (g *Graph) ShortestPathBFSScratch(src, dst uint32, s *PathScratch) ([]uint32, bool) {
	n := g.NumVertices()
	if int(src) >= n || int(dst) >= n {
		return nil, false
	}
	if src == dst {
		return []uint32{src}, true
	}
	s.grow(n)
	s.stamp[src] = s.epoch
	s.parent[src] = src
	queue := append(s.queue[:0], src)
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		row, _ := g.Neighbors(v)
		for _, u := range row {
			if s.stamp[u] == s.epoch {
				continue
			}
			s.stamp[u] = s.epoch
			s.parent[u] = v
			if u == dst {
				s.queue = queue
				return tracePath(s.parent, src, dst), true
			}
			queue = append(queue, u)
		}
	}
	s.queue = queue
	return nil, false
}

// ShortestPathWeighted returns the minimum-cost path from src to dst
// under Dijkstra, where traversing an edge of collocation weight w
// costs 1/w — strongly collocated pairs are "close", so the returned
// path prefers strong ties (the contact-tracing reading of the
// network). It returns the path, its total cost, and whether a path
// exists.
func (g *Graph) ShortestPathWeighted(src, dst uint32) ([]uint32, float64, bool) {
	n := g.NumVertices()
	if int(src) >= n || int(dst) >= n {
		return nil, 0, false
	}
	if src == dst {
		return []uint32{src}, 0, true
	}
	const none = ^uint32(0)
	dist := make([]float64, n)
	parent := make([]uint32, n)
	done := make([]bool, n)
	for i := range parent {
		parent[i] = none
		dist[i] = -1 // unreached
	}
	dist[src] = 0
	parent[src] = src
	pq := &pathHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pathItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		if it.v == dst {
			return tracePath(parent, src, dst), it.d, true
		}
		row, wts := g.Neighbors(it.v)
		for k, u := range row {
			if done[u] {
				continue
			}
			w := wts[k]
			if w == 0 {
				continue // zero-weight edges carry no contact signal
			}
			nd := it.d + 1/float64(w)
			if dist[u] < 0 || nd < dist[u] {
				dist[u] = nd
				parent[u] = it.v
				heap.Push(pq, pathItem{v: u, d: nd})
			}
		}
	}
	return nil, 0, false
}

// tracePath rebuilds the src→dst path from the parent array.
func tracePath(parent []uint32, src, dst uint32) []uint32 {
	var rev []uint32
	for v := dst; ; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	out := make([]uint32, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

type pathItem struct {
	v uint32
	d float64
}

type pathHeap []pathItem

func (h pathHeap) Len() int           { return len(h) }
func (h pathHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h pathHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x any)        { *h = append(*h, x.(pathItem)) }
func (h *pathHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
