package graph

import "fmt"

// CSR exposes the graph's raw compressed-sparse-row storage: offsets
// (len NumVertices+1), neighbor IDs and parallel edge weights (both len
// 2·NumEdges). The slices alias the graph's storage — callers must
// treat them as read-only. This is the serialization surface used by
// internal/gstore's snapshot format.
func (g *Graph) CSR() (offsets []int64, nbrs, weights []uint32) {
	return g.offsets, g.nbrs, g.weights
}

// NewCSR builds a Graph directly from CSR storage, adopting the slices
// without copying (the zero-copy mmap load path of internal/gstore
// depends on this). The arrays are validated structurally:
//
//   - offsets must be non-empty, start at 0, be non-decreasing, and end
//     at len(nbrs)
//   - nbrs and weights must have equal length, which must be even
//     (every undirected edge is stored from both endpoints)
//   - every neighbor ID must be < NumVertices
//   - every row must be strictly increasing (sorted, no duplicates, no
//     self-loops)
//
// Validation is a single O(V+E) pass; it does not verify that the two
// half-edges of each undirected edge agree (gstore's checksums cover
// byte-level corruption, and Write only emits symmetric CSR).
func NewCSR(offsets []int64, nbrs, weights []uint32) (*Graph, error) {
	if len(offsets) < 1 {
		return nil, fmt.Errorf("graph: csr: empty offsets")
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: csr: offsets[0] = %d, want 0", offsets[0])
	}
	if len(nbrs) != len(weights) {
		return nil, fmt.Errorf("graph: csr: %d neighbors but %d weights", len(nbrs), len(weights))
	}
	if len(nbrs)%2 != 0 {
		return nil, fmt.Errorf("graph: csr: odd half-edge count %d", len(nbrs))
	}
	n := len(offsets) - 1
	if last := offsets[n]; last != int64(len(nbrs)) {
		return nil, fmt.Errorf("graph: csr: offsets end at %d, want %d", last, len(nbrs))
	}
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		if hi < lo {
			return nil, fmt.Errorf("graph: csr: offsets decrease at vertex %d (%d → %d)", v, lo, hi)
		}
		prev := int64(-1)
		for k := lo; k < hi; k++ {
			u := nbrs[k]
			if int(u) >= n {
				return nil, fmt.Errorf("graph: csr: vertex %d has neighbor %d ≥ %d", v, u, n)
			}
			if int64(u) <= prev {
				return nil, fmt.Errorf("graph: csr: row %d not strictly increasing at slot %d", v, k-lo)
			}
			if int(u) == v {
				return nil, fmt.Errorf("graph: csr: self-loop at vertex %d", v)
			}
			prev = int64(u)
		}
	}
	return &Graph{offsets: offsets, nbrs: nbrs, weights: weights}, nil
}

// DegreeHistogram returns the dense degree histogram: slot k holds the
// number of vertices with degree exactly k, and the slice has length
// MaxDegree()+1 (empty for an empty graph). Unlike the map-returning
// DegreeDistribution, the result is deterministic across runs and
// serializes to stable JSON.
func (g *Graph) DegreeHistogram() []int {
	n := g.NumVertices()
	if n == 0 {
		return []int{}
	}
	hist := make([]int, g.MaxDegree()+1)
	for v := 0; v < n; v++ {
		hist[g.Degree(uint32(v))]++
	}
	return hist
}

// TotalWeight returns the sum of all undirected edge weights — the
// network's total collocated person-hours.
func (g *Graph) TotalWeight() uint64 {
	var s uint64
	for _, w := range g.weights {
		s += uint64(w)
	}
	return s / 2 // each edge's weight is stored from both endpoints
}

// VerticesWithEdges returns the number of non-isolated vertices.
func (g *Graph) VerticesWithEdges() int {
	count := 0
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(uint32(v)) > 0 {
			count++
		}
	}
	return count
}
