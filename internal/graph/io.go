package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// WriteEdgeList writes the strict upper triangle of t as a three-column
// TSV (person_i, person_j, weight) with a comment header.
func WriteEdgeList(w io.Writer, t *sparse.Tri) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# person_i\tperson_j\tcollocated_hours"); err != nil {
		return err
	}
	for k := range t.I {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\n", t.I[k], t.J[k], t.W[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// edgeListBufSize is the read-ahead of ReadEdgeList's streaming reader —
// large enough that multi-GB edge lists are consumed in few syscalls,
// small enough to be irrelevant against the parsed output.
const edgeListBufSize = 1 << 20

// ErrEdgeList tags every parse failure of ReadEdgeList; the concrete
// error carries the 1-based line number and offending text.
var ErrEdgeList = errors.New("graph: malformed edge list")

// lineError builds a line-numbered ErrEdgeList.
func lineError(line int, text, msg string) error {
	if len(text) > 64 {
		text = text[:61] + "..."
	}
	return fmt.Errorf("%w: line %d: %s: %q", ErrEdgeList, line, msg, text)
}

// parseID parses one uint32 field, rejecting overflow and junk
// explicitly (strconv with bitSize 32, base 10 only).
func parseID(field string) (uint32, error) {
	v, err := strconv.ParseUint(field, 10, 32)
	if err != nil {
		return 0, err
	}
	return uint32(v), nil
}

// ReadEdgeList parses a TSV edge list produced by WriteEdgeList into a
// sparse triangular matrix. Lines beginning with '#' and blank lines
// are ignored; fields may be separated by tabs or spaces. Every other
// line must hold exactly three base-10 fields that fit in uint32 —
// malformed, overflowing, or self-loop lines fail with a line-numbered
// error wrapping ErrEdgeList rather than being skipped. The input is
// streamed line-by-line through a sized bufio.Reader — unlike the old
// Scanner path there is no fixed maximum line length, and whole files
// are never materialized.
func ReadEdgeList(r io.Reader) (*sparse.Tri, error) {
	acc := sparse.NewAccum()
	br := bufio.NewReaderSize(r, edgeListBufSize)
	line := 0
	for {
		text, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return nil, err
		}
		if text == "" && err == io.EOF {
			break
		}
		line++
		if perr := parseEdgeLine(acc, line, text); perr != nil {
			return nil, perr
		}
		if err == io.EOF {
			break
		}
	}
	return acc.Tri(), nil
}

// parseEdgeLine parses one line into the accumulator.
func parseEdgeLine(acc *sparse.Accum, line int, text string) error {
	text = strings.TrimSpace(text)
	if text == "" || strings.HasPrefix(text, "#") {
		return nil
	}
	fields := strings.Fields(text)
	if len(fields) != 3 {
		return lineError(line, text, fmt.Sprintf("want 3 fields, have %d", len(fields)))
	}
	i, err := parseID(fields[0])
	if err != nil {
		return lineError(line, text, "bad person_i: "+err.Error())
	}
	j, err := parseID(fields[1])
	if err != nil {
		return lineError(line, text, "bad person_j: "+err.Error())
	}
	w, err := parseID(fields[2])
	if err != nil {
		return lineError(line, text, "bad weight: "+err.Error())
	}
	if i == j {
		return lineError(line, text, fmt.Sprintf("self-loop %d", i))
	}
	acc.Add(i, j, w)
	return nil
}
