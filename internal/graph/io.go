package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/sparse"
)

// WriteEdgeList writes the strict upper triangle of t as a three-column
// TSV (person_i, person_j, weight) with a comment header.
func WriteEdgeList(w io.Writer, t *sparse.Tri) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# person_i\tperson_j\tcollocated_hours"); err != nil {
		return err
	}
	for k := range t.I {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\n", t.I[k], t.J[k], t.W[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a TSV edge list produced by WriteEdgeList (lines
// beginning with '#' are ignored) into a sparse triangular matrix.
func ReadEdgeList(r io.Reader) (*sparse.Tri, error) {
	acc := sparse.NewAccum()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var i, j, w uint32
		if _, err := fmt.Sscanf(text, "%d\t%d\t%d", &i, &j, &w); err != nil {
			// Accept space-separated too.
			if _, err2 := fmt.Sscanf(text, "%d %d %d", &i, &j, &w); err2 != nil {
				return nil, fmt.Errorf("graph: edge list line %d: %q: %w", line, text, err)
			}
		}
		if i == j {
			return nil, fmt.Errorf("graph: edge list line %d: self-loop %d", line, i)
		}
		acc.Add(i, j, w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return acc.Tri(), nil
}
