// Package graph provides the network-analysis layer of the pipeline,
// standing in for the paper's use of igraph (Section V): CSR graphs built
// from sparse adjacency matrices, degree distributions, local clustering
// coefficients, radius-k ego networks, induced subgraphs and connected
// components.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// Telemetry series for the analysis stage: one count per CSR build,
// plus edge volume and build latency.
var (
	mGraphBuilds  = telemetry.C("analysis_graph_builds_total")
	mGraphEdges   = telemetry.C("analysis_graph_edges_total")
	mBuildSeconds = telemetry.H("analysis_graph_build_seconds")
)

// Graph is an undirected weighted graph in compressed sparse row form.
// Vertex IDs are dense in [0, NumVertices); neighbor lists are sorted.
type Graph struct {
	offsets []int64
	nbrs    []uint32
	weights []uint32
}

// FromTri builds a Graph from a sparse upper-triangular adjacency
// matrix. n is the vertex-space size; pass 0 to size it from the largest
// referenced ID. Vertices with no edges are retained as isolated.
func FromTri(t *sparse.Tri, n int) *Graph {
	sw := telemetry.Clock()
	defer func() {
		sw.Observe(mBuildSeconds)
		mGraphBuilds.Inc()
		mGraphEdges.Add(int64(t.NNZ()))
	}()
	if n == 0 && t.NNZ() > 0 {
		n = int(t.MaxVertex()) + 1
	}
	deg := make([]int64, n)
	for k := range t.I {
		deg[t.I[k]]++
		deg[t.J[k]]++
	}
	g := &Graph{
		offsets: make([]int64, n+1),
		nbrs:    make([]uint32, 2*t.NNZ()),
		weights: make([]uint32, 2*t.NNZ()),
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	cursor := make([]int64, n)
	copy(cursor, g.offsets[:n])
	for k := range t.I {
		i, j, w := t.I[k], t.J[k], t.W[k]
		g.nbrs[cursor[i]], g.weights[cursor[i]] = j, w
		cursor[i]++
		g.nbrs[cursor[j]], g.weights[cursor[j]] = i, w
		cursor[j]++
	}
	// Tri entries are sorted by (I, J), so rows built this way already
	// have J ascending for the I side; the J side accumulates I values
	// in ascending order as well. Sort defensively anyway (cheap, and
	// keeps the invariant independent of Tri ordering).
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		row := g.nbrs[lo:hi]
		wts := g.weights[lo:hi]
		sort.Sort(&rowSorter{row, wts})
	}
	return g
}

type rowSorter struct {
	ids []uint32
	wts []uint32
}

func (r *rowSorter) Len() int           { return len(r.ids) }
func (r *rowSorter) Less(i, j int) bool { return r.ids[i] < r.ids[j] }
func (r *rowSorter) Swap(i, j int) {
	r.ids[i], r.ids[j] = r.ids[j], r.ids[i]
	r.wts[i], r.wts[j] = r.wts[j], r.wts[i]
}

// NumVertices returns the vertex count, including isolated vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return len(g.nbrs) / 2 }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v uint32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns v's sorted neighbor IDs and the parallel edge
// weights. The slices alias the graph's storage; callers must not modify
// them.
func (g *Graph) Neighbors(v uint32) (ids, weights []uint32) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.nbrs[lo:hi], g.weights[lo:hi]
}

// HasEdge reports whether u and v are adjacent, by binary search on the
// smaller neighbor list.
func (g *Graph) HasEdge(u, v uint32) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	row, _ := g.Neighbors(u)
	i := sort.Search(len(row), func(k int) bool { return row[k] >= v })
	return i < len(row) && row[i] == v
}

// EdgeWeight returns the weight of edge (u, v), 0 when absent.
func (g *Graph) EdgeWeight(u, v uint32) uint32 {
	row, wts := g.Neighbors(u)
	i := sort.Search(len(row), func(k int) bool { return row[k] >= v })
	if i < len(row) && row[i] == v {
		return wts[i]
	}
	return 0
}

// Strength returns the sum of v's edge weights (weighted degree) — total
// collocated person-hours for a collocation network.
func (g *Graph) Strength(v uint32) uint64 {
	_, wts := g.Neighbors(v)
	var s uint64
	for _, w := range wts {
		s += uint64(w)
	}
	return s
}

// DegreeDistribution returns a map from vertex degree to the number of
// vertices with that degree. Isolated vertices appear under degree 0.
func (g *Graph) DegreeDistribution() map[int]int {
	out := make(map[int]int)
	for v := 0; v < g.NumVertices(); v++ {
		out[g.Degree(uint32(v))]++
	}
	return out
}

// MaxDegree returns the largest vertex degree, 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(uint32(v)); d > max {
			max = d
		}
	}
	return max
}

// triangles returns twice the number of triangles through v, using a
// marker array owned by the caller (len NumVertices, all false on entry
// and restored to all false on exit).
func (g *Graph) triangles(v uint32, mark []bool) int64 {
	row, _ := g.Neighbors(v)
	for _, u := range row {
		mark[u] = true
	}
	var count int64
	for _, u := range row {
		urow, _ := g.Neighbors(u)
		for _, w := range urow {
			if w != v && mark[w] {
				count++
			}
		}
	}
	for _, u := range row {
		mark[u] = false
	}
	return count / 2 // each triangle (v,u,w) seen from both u and w
}

// LocalClustering returns the local clustering coefficient of v: the
// fraction of pairs of v's neighbors that are themselves connected
// (Wasserman & Faust). Vertices of degree < 2 return 0.
func (g *Graph) LocalClustering(v uint32) float64 {
	return g.LocalClusteringScratch(v, make([]bool, g.NumVertices()))
}

// LocalClusteringScratch is LocalClustering with a caller-owned marker
// array (len NumVertices, all false on entry, restored to all false on
// exit), so hot callers — netserve's per-request fallback path — avoid
// the O(V) allocation.
func (g *Graph) LocalClusteringScratch(v uint32, mark []bool) float64 {
	d := g.Degree(v)
	if d < 2 {
		return 0
	}
	t := g.triangles(v, mark)
	return float64(2*t) / float64(d*(d-1))
}

// ClusteringAll computes the local clustering coefficient of every
// vertex in parallel with the given worker count (0 → 1).
func (g *Graph) ClusteringAll(workers int) []float64 {
	if workers <= 0 {
		workers = 1
	}
	n := g.NumVertices()
	out := make([]float64, n)
	var next int64
	var mu sync.Mutex
	const block = 1024
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mark := make([]bool, n)
			for {
				mu.Lock()
				lo := next
				next += block
				mu.Unlock()
				if lo >= int64(n) {
					return
				}
				hi := lo + block
				if hi > int64(n) {
					hi = int64(n)
				}
				for v := lo; v < hi; v++ {
					d := g.Degree(uint32(v))
					if d < 2 {
						continue
					}
					t := g.triangles(uint32(v), mark)
					out[v] = float64(2*t) / float64(d*(d-1))
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// Ego returns the sorted vertex set within BFS distance radius of v,
// including v itself — the paper's V = v ∪ V1 ∪ V2 construction for
// radius 2.
func (g *Graph) Ego(v uint32, radius int) []uint32 {
	if int(v) >= g.NumVertices() {
		panic(fmt.Sprintf("graph: ego seed %d out of range", v))
	}
	dist := map[uint32]int{v: 0}
	frontier := []uint32{v}
	for d := 0; d < radius; d++ {
		var nextFrontier []uint32
		for _, u := range frontier {
			row, _ := g.Neighbors(u)
			for _, w := range row {
				if _, ok := dist[w]; !ok {
					dist[w] = d + 1
					nextFrontier = append(nextFrontier, w)
				}
			}
		}
		frontier = nextFrontier
	}
	out := make([]uint32, 0, len(dist))
	for u := range dist {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Induced returns the subgraph induced by the given vertices (which must
// be sorted and unique): all edges with both endpoints in the set are
// preserved. The second result maps new vertex IDs back to the original
// ones.
func (g *Graph) Induced(vs []uint32) (*Graph, []uint32) {
	index := make(map[uint32]uint32, len(vs))
	for i, v := range vs {
		index[v] = uint32(i)
	}
	acc := sparse.NewAccum()
	for _, v := range vs {
		row, wts := g.Neighbors(v)
		for k, u := range row {
			if u <= v {
				continue // each undirected edge once
			}
			if _, ok := index[u]; ok {
				acc.Add(index[v], index[u], wts[k])
			}
		}
	}
	orig := make([]uint32, len(vs))
	copy(orig, vs)
	return FromTri(acc.Tri(), len(vs)), orig
}

// ConnectedComponents labels each vertex with a component ID in
// [0, count) and returns the labels and component count.
func (g *Graph) ConnectedComponents() (labels []int, count int) {
	n := g.NumVertices()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []uint32
	for s := 0; s < n; s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = count
		queue = append(queue[:0], uint32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			row, _ := g.Neighbors(v)
			for _, u := range row {
				if labels[u] == -1 {
					labels[u] = count
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return labels, count
}

// GiantComponentSize returns the size of the largest connected
// component, 0 for an empty graph.
func (g *Graph) GiantComponentSize() int {
	labels, count := g.ConnectedComponents()
	if count == 0 {
		return 0
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return max
}
